// Package falcon is a Go reproduction of "Falcon: Fast OLTP Engine for
// Persistent Cache and Non-Volatile Memory" (SOSP 2023).
//
// It bundles a functional simulation of eADR-enabled persistent memory (CPU
// cache inside the persistence domain, Optane-style 256 B media blocks with
// an XPBuffer write-combining layer) with a full OLTP storage engine built
// on it: Falcon's small log window and selective data flush, plus the
// baseline engines the paper compares against (Inp, Outp, ZenS) as
// configuration presets. Throughput and latency are measured in virtual
// time; see DESIGN.md for the methodology.
//
// Quick start:
//
//	db, err := falcon.Open(falcon.Options{
//	    Config:  falcon.FalconConfig(),
//	    Tables:  []falcon.TableSpec{{Name: "kv", Schema: schema, Capacity: 1 << 20, IndexKind: falcon.Hash}},
//	})
//	err = db.Run(0, func(tx *falcon.Txn) error {
//	    return tx.Insert(db.Table("kv"), key, payload)
//	})
package falcon

import (
	"falcon/internal/cc"
	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/layout"
	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// Re-exported engine types. The engine API lives on these.
type (
	// Engine is an OLTP storage engine instance.
	Engine = core.Engine
	// Txn is a transaction handle (single worker thread).
	Txn = core.Txn
	// Table is one relation.
	Table = core.Table
	// Config selects the engine design point (update scheme, log scheme,
	// flush policy, index placement, CC algorithm).
	Config = core.Config
	// TableSpec declares a table at engine creation.
	TableSpec = core.TableSpec
	// RecoveryReport details where recovery time went.
	RecoveryReport = core.RecoveryReport
	// Schema describes a fixed-width tuple layout.
	Schema = layout.Schema
	// Column is one schema column.
	Column = layout.Column
	// System is the simulated persistent-memory machine.
	System = pmem.System
	// MemConfig parameterizes the simulated memory system.
	MemConfig = pmem.Config
	// Clock is a worker's virtual clock.
	Clock = sim.Clock
	// CostModel holds the virtual-time latency constants.
	CostModel = sim.CostModel
	// CCAlgo selects a concurrency-control algorithm.
	CCAlgo = cc.Algo
	// StatsRegistry is the engine's unified observability registry
	// (Engine.Obs); tools may register extra collectors on it.
	StatsRegistry = obs.Registry
	// StatsSnapshot is one observability snapshot — commit-path phase nanos,
	// abort taxonomy, WAL/hot-set gauges, pmem hardware counters — with
	// Text/JSON renderers and Sub for warmup exclusion (Engine.ObsSnapshot).
	StatsSnapshot = obs.Snapshot
)

// Column kinds.
const (
	Int64   = layout.Int64
	Uint64  = layout.Uint64
	Float64 = layout.Float64
	Bytes   = layout.Bytes
)

// Index kinds.
const (
	// Hash is the Dash-style bucketized hash index (point lookups).
	Hash = index.Hash
	// BTree is the NBTree-style ordered index (lookups + range scans).
	BTree = index.BTree
)

// Concurrency-control algorithms (paper §5.2.1).
const (
	TwoPL = cc.TwoPL
	TO    = cc.TO
	OCC   = cc.OCC
	MV2PL = cc.MV2PL
	MVTO  = cc.MVTO
	MVOCC = cc.MVOCC
)

// Persistence domains of the simulated cache.
const (
	// EADR keeps the CPU cache in the persistence domain (the paper's
	// setting).
	EADR = pmem.EADR
	// ADR loses unflushed cache lines on crash (first-generation NVM).
	ADR = pmem.ADR
)

// Common errors.
var (
	ErrConflict     = core.ErrConflict
	ErrNotFound     = core.ErrNotFound
	ErrDuplicateKey = core.ErrDuplicateKey
	ErrRollback     = core.ErrRollback
	ErrCanceled     = core.ErrCanceled
	ErrTxnTooLarge  = core.ErrTxnTooLarge
	ErrTableFull    = core.ErrTableFull
)

// Engine presets (paper Table 1 / Figure 10).
var (
	FalconConfig          = core.FalconConfig
	FalconNoFlushConfig   = core.FalconNoFlushConfig
	FalconAllFlushConfig  = core.FalconAllFlushConfig
	FalconDRAMIndexConfig = core.FalconDRAMIndexConfig
	InpConfig             = core.InpConfig
	InpNoFlushConfig      = core.InpNoFlushConfig
	InpSLWConfig          = core.InpSmallLogWindowConfig
	InpHTTConfig          = core.InpHotTupleTrackingConfig
	OutpConfig            = core.OutpConfig
	ZenSConfig            = core.ZenSConfig
	ZenSNoFlushConfig     = core.ZenSNoFlushConfig
)

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return layout.NewSchema(cols...) }

// Options bundles everything Open needs.
type Options struct {
	// Config selects the engine design point; defaults to FalconConfig().
	Config Config
	// Tables declares the relations.
	Tables []TableSpec
	// Mem parameterizes the simulated memory system; zero values pick
	// defaults (eADR, 64 MiB device, 2 MiB cache).
	Mem MemConfig
}

// DB is an engine plus its simulated machine.
type DB struct {
	*Engine
}

// Open creates a fresh database on a new simulated machine.
func Open(opts Options) (*DB, error) {
	if opts.Config.Name == "" {
		opts.Config = core.FalconConfig()
	}
	sys := pmem.NewSystem(opts.Mem)
	e, err := core.New(sys, opts.Config, opts.Tables)
	if err != nil {
		return nil, err
	}
	return &DB{Engine: e}, nil
}

// Crash simulates a power failure on the database's machine and returns the
// post-crash system image, ready for Recover.
func (db *DB) Crash() *System { return db.System().Crash() }

// Recover reopens an engine from a post-crash system image.
func Recover(sys *System, cfg Config) (*DB, *RecoveryReport, error) {
	e, rep, err := core.Recover(sys, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &DB{Engine: e}, rep, nil
}

// NewSystem builds a standalone simulated machine (advanced use: sharing a
// device image across crash cycles).
func NewSystem(cfg MemConfig) *System { return pmem.NewSystem(cfg) }

// NewEngine creates an engine on an existing system.
func NewEngine(sys *System, cfg Config, tables []TableSpec) (*Engine, error) {
	return core.New(sys, cfg, tables)
}

// DefaultCostModel returns the calibrated virtual-time latency constants.
func DefaultCostModel() CostModel { return sim.DefaultCostModel() }
