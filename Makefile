# Convenience targets; everything also works with plain go commands.

.PHONY: build test race race-par bench bench-quick sweep phase-tables trace-check soak loadgen-smoke

build:
	go build ./...

test:
	go test ./...

# The race lane CI runs: -short trims property-check sample counts.
race:
	go test -race -short ./internal/obs ./internal/bench ./internal/pmem ./internal/core

# Worker-parallel race lane: the same engine/simulation packages plus the
# crash-consistency oracle, with GOMAXPROCS=4 so the group scheduler's round
# barriers, per-worker timing partitions, and the free-running spin-locked
# paths actually interleave across cores under the race detector.
race-par:
	GOMAXPROCS=4 go test -race -short ./internal/crashtest ./internal/core ./internal/pmem ./internal/bench

# Append a full host-performance run (micro ops, one YCSB cell, the default
# Figure-11 grid) to BENCH_hostperf.json. Compare entries against the first
# (baseline) run; see README "Tracking host performance".
bench:
	go run ./cmd/falcon-hostbench -label "$(shell git rev-parse --short HEAD)"

# Grid-free variant for quick checks (~10 s).
bench-quick:
	go run ./cmd/falcon-hostbench -quick -label "$(shell git rev-parse --short HEAD)-quick"

sweep:
	go run ./cmd/falcon-sweep

# Regenerate the phase-share tables in EXPERIMENTS.md from a fresh Figure-11
# sweep (the marker-delimited generated section; hand-written text survives).
# Regenerate the EXPERIMENTS.md phase-share tables: the per-commit baseline
# grid, then the same grid through leader-based group commit (its own marker
# section, so the two render side by side for the log+flush comparison).
phase-tables:
	go run ./cmd/falcon-sweep -md EXPERIMENTS.md
	go run ./cmd/falcon-sweep -md EXPERIMENTS.md -groupcommit

# Server soak: the serving layer (admission, deadlines, idempotent replay,
# drain) and every loadgen scenario — including overload at 2x the saturation
# knee and the retry storm — under the race detector against in-process
# servers (same lane CI runs).
soak:
	go test -race ./internal/server/... ./internal/loadgen

# End-to-end serving smoke: boot falcon-serve, drive one closed-loop loadgen
# round, check the falcon/loadgen/v1 report stamp and /metrics exposition,
# then SIGTERM-drain (same lane CI runs).
loadgen-smoke:
	./scripts/loadgen_smoke.sh

# Produce a tiny trace and validate it against the Chrome trace-event schema
# (same lane CI runs).
trace-check:
	go run ./cmd/falcon-ycsb -threads 2 -records 2000 -txns 50 -warmup 10 -workloads A -trace /tmp/falcon-trace.json
	go run ./cmd/falcon-tracecheck /tmp/falcon-trace.json
