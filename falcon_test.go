package falcon_test

import (
	"errors"
	"testing"

	"falcon"
)

func kvOptions(cfg falcon.Config) falcon.Options {
	schema := falcon.NewSchema(
		falcon.Column{Name: "id", Kind: falcon.Uint64},
		falcon.Column{Name: "value", Kind: falcon.Int64},
	)
	return falcon.Options{
		Config: cfg,
		Tables: []falcon.TableSpec{{
			Name: "kv", Schema: schema, Capacity: 10000, IndexKind: falcon.Hash,
		}},
		Mem: falcon.MemConfig{DeviceBytes: 128 << 20},
	}
}

func TestOpenRunCrashRecover(t *testing.T) {
	cfg := falcon.FalconConfig()
	cfg.Threads = 2
	db, err := falcon.Open(kvOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("kv")
	s := tbl.Schema()
	payload := make([]byte, s.TupleSize())
	s.PutUint64(payload, 0, 7)
	s.PutInt64(payload, 1, 77)
	if err := db.Run(0, func(tx *falcon.Txn) error {
		return tx.Insert(tbl, 7, payload)
	}); err != nil {
		t.Fatal(err)
	}

	db2, rep, err := falcon.Recover(db.Crash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalNanos == 0 {
		t.Error("recovery reported zero virtual time")
	}
	tbl2 := db2.Table("kv")
	buf := make([]byte, s.TupleSize())
	if err := db2.RunRO(0, func(tx *falcon.Txn) error { return tx.Read(tbl2, 7, buf) }); err != nil {
		t.Fatal(err)
	}
	if s.GetInt64(buf, 1) != 77 {
		t.Fatalf("recovered value = %d", s.GetInt64(buf, 1))
	}
}

func TestFacadeErrorsExported(t *testing.T) {
	cfg := falcon.FalconConfig()
	cfg.Threads = 1
	db, err := falcon.Open(kvOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("kv")
	buf := make([]byte, tbl.Schema().TupleSize())
	err = db.RunRO(0, func(tx *falcon.Txn) error { return tx.Read(tbl, 42, buf) })
	if !errors.Is(err, falcon.ErrNotFound) {
		t.Fatalf("err = %v, want falcon.ErrNotFound", err)
	}
}

func TestDefaultConfigIsFalcon(t *testing.T) {
	db, err := falcon.Open(kvOptions(falcon.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if db.Config().Name != "Falcon" {
		t.Fatalf("default config = %q", db.Config().Name)
	}
}
