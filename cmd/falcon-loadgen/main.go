// falcon-loadgen drives a falcon-serve endpoint with closed- or open-loop
// load and reports per-round throughput, shed counts, and latency quantiles.
// Scenarios: closed (back-to-back clients), open (fixed-rate arrivals), knee
// (doubling QPS ladder to the saturation knee), overload (find the knee, then
// drive 2x it — graceful degradation check), retrystorm (aggressive retries
// against a small service window — convergence check).
//
// With -json the full report (falcon/loadgen/v1 schema) is written for
// offline diffing; latency histograms use the same log2 buckets as the bench
// harness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"falcon/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "falcon-serve base URL")
	scenario := flag.String("scenario", loadgen.ScenarioClosed, "closed | open | knee | overload | retrystorm")
	table := flag.String("table", "kv", "served table to drive")
	keys := flag.Uint64("keys", 1024, "key-space size (keys [0,n) are pre-seeded)")
	clients := flag.Int("clients", 8, "closed-loop concurrency / open-loop in-flight cap")
	requests := flag.Int("requests", 200, "closed-loop total request count")
	qps := flag.Float64("qps", 50, "open-loop target QPS (knee/overload: ladder start)")
	dur := flag.Duration("dur", time.Second, "open-loop round duration")
	writePct := flag.Int("write-pct", 50, "percent of requests that are adds (rest are gets)")
	deadlineMs := flag.Int("deadline-ms", 1000, "per-request deadline header")
	attempts := flag.Int("attempts", 5, "max client attempts per request (retries on shed/timeout)")
	seed := flag.Uint64("seed", 1, "PRNG seed for keys and retry jitter")
	idemBase := flag.Uint64("idembase", 0, "idempotency-key offset (distinct runs against one server must differ)")
	jsonPath := flag.String("json", "", "write the full report (falcon/loadgen/v1) to this file")
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL: *target, Table: *table, Keys: *keys,
		Clients: *clients, Requests: *requests, DeadlineMs: *deadlineMs,
		MaxAttempts: *attempts, Seed: *seed, WritePct: *writePct, IdemBase: *idemBase,
	}
	rep, err := loadgen.RunScenario(*scenario, cfg, *qps, *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %s against %s\n", rep.Scenario, rep.Target)
	if rep.KneeQPS > 0 {
		fmt.Printf("saturation knee: %.1f QPS\n", rep.KneeQPS)
	}
	fmt.Printf("%-20s %10s %8s %8s %8s %8s %8s %8s %10s %10s %10s %12s\n",
		"round", "target", "offered", "ok", "errors", "sheds", "retries", "replay",
		"achieved", "p50", "p99", "accepted-p99")
	for _, r := range rep.Rounds {
		fmt.Printf("%-20s %10.1f %8d %8d %8d %8d %8d %8d %10.1f %10v %10v %12v\n",
			r.Label, r.TargetQPS, r.Offered, r.OK, r.Errors, r.Sheds, r.Retries, r.Replayed,
			r.AchievedQPS, time.Duration(r.P50Nanos), time.Duration(r.P99Nanos),
			time.Duration(r.AcceptedP99Nanos))
	}

	if *jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: encode report:", err)
			os.Exit(1)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*jsonPath, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("report (%s) written to %s\n", rep.Schema, *jsonPath)
	}
}
