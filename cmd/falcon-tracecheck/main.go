// falcon-tracecheck validates Chrome trace-event JSON files produced by the
// -trace flag (or by the crash matrix's -trace-dir): the schema checks that
// Perfetto / chrome://tracing rely on, without loading a UI. Exit status 0
// means every file passed.
//
//	falcon-tracecheck out.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"falcon/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: falcon-tracecheck <trace.json> [...]")
		os.Exit(2)
	}
	exit := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateChromeTrace(data)
		}
		if err != nil {
			fmt.Printf("%s: INVALID: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	os.Exit(exit)
}
