// falcon-ycsb regenerates the paper's Figure 9: YCSB throughput for
// workloads A–F under Uniform and Zipfian(0.99) request distributions, for
// every engine, using OCC (the paper reports OCC and notes other algorithms
// behave similarly).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"falcon/internal/bench"
	"falcon/internal/cc"
	"falcon/internal/workload/ycsb"
)

func main() {
	threads := flag.Int("threads", 8, "worker threads (the paper uses 48)")
	records := flag.Uint64("records", 100_000, "table records (paper: 256M)")
	txns := flag.Int("txns", 1000, "measured transactions per worker")
	warmup := flag.Int("warmup", 300, "warmup transactions per worker")
	workloads := flag.String("workloads", "A,B,C,D,E,F", "comma-separated workload letters")
	cf := bench.RegisterCommonFlags(true)
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*workloads, ",") {
		want[strings.TrimSpace(strings.ToUpper(s))] = true
	}

	fmt.Printf("Figure 9: YCSB throughput (MTxn/s), OCC, %d threads, %d records\n", *threads, *records)
	fmt.Printf("%-24s", "engine")
	var cells []ycsb.Config
	for _, w := range ycsb.AllWorkloads {
		letter := strings.TrimPrefix(w.String(), "YCSB-")
		if !want[letter] {
			continue
		}
		for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			cells = append(cells, ycsb.Config{Records: *records, Workload: w, Distribution: dist})
			fmt.Printf("%12s", fmt.Sprintf("%s/%s", letter, dist.String()[:3]))
		}
	}
	fmt.Println()

	for _, ecfg := range bench.EngineConfigs() {
		ecfg = cf.Group.Apply(ecfg)
		ecfg.Threads = *threads
		ecfg.CC = cc.OCC
		fmt.Printf("%-24s", ecfg.Name)
		var blocks []string
		for _, wcfg := range cells {
			e, d, err := bench.NewYCSB(ecfg, wcfg)
			if err != nil {
				fmt.Printf("%12s", "ERR")
				fmt.Fprintln(os.Stderr, ecfg.Name, wcfg.Workload, err)
				continue
			}
			res, err := bench.Run(e, wcfg.Workload.String(),
				cf.Options(bench.Options{Workers: *threads, TxnsPerWorker: *txns, WarmupPerWorker: *warmup}),
				func(w int) (int, error) { return 0, d.Next(w) })
			if err != nil {
				fmt.Printf("%12s", "ERR")
				fmt.Fprintln(os.Stderr, ecfg.Name, wcfg.Workload, err)
				continue
			}
			label := fmt.Sprintf("%s/%s/%s", ecfg.Name, wcfg.Workload, wcfg.Distribution)
			cf.Collect(label, res)
			fmt.Printf("%12.3f", res.MTxnPerSec)
			if txt := cf.CellText(label, res); txt != "" {
				blocks = append(blocks, txt)
			}
		}
		fmt.Println()
		for _, b := range blocks {
			fmt.Print(b)
		}
	}
	cf.Finish()
}
