// falcon-tpcc regenerates the paper's Figure 7 (TPC-C throughput for every
// engine × concurrency-control algorithm) and, with -latency, Figure 8
// (NewOrder and Payment latency under OCC).
package main

import (
	"flag"
	"fmt"
	"os"

	"falcon/internal/bench"
	"falcon/internal/cc"
	"falcon/internal/core"
	"falcon/internal/workload/tpcc"
)

func main() {
	threads := flag.Int("threads", 8, "worker threads (the paper uses 48)")
	warehouses := flag.Int("warehouses", 0, "warehouses (default = threads/2, min 2)")
	items := flag.Int("items", 2000, "catalog size (spec: 100000)")
	customers := flag.Int("customers", 120, "customers per district (spec: 3000)")
	txns := flag.Int("txns", 400, "measured transactions per worker")
	warmup := flag.Int("warmup", 100, "warmup transactions per worker")
	latency := flag.Bool("latency", false, "run Figure 8 (latency, OCC) instead of Figure 7")
	algos := flag.String("cc", "", "comma-free CC filter, e.g. OCC (default: all six)")
	cf = bench.RegisterCommonFlags(true)
	flag.Parse()

	if *warehouses == 0 {
		*warehouses = *threads / 2
		if *warehouses < 2 {
			*warehouses = 2
		}
	}
	wcfg := tpcc.Config{Warehouses: *warehouses, Items: *items, CustomersPerDistrict: *customers}
	opts := cf.Options(bench.Options{Workers: *threads, TxnsPerWorker: *txns, WarmupPerWorker: *warmup,
		Classes: 5})

	if *latency {
		fig8(wcfg, opts)
		cf.Finish()
		return
	}

	ccList := cc.All
	if *algos != "" {
		ccList = nil
		for _, a := range cc.All {
			if a.String() == *algos {
				ccList = append(ccList, a)
			}
		}
		if len(ccList) == 0 {
			fmt.Fprintf(os.Stderr, "unknown cc %q\n", *algos)
			os.Exit(1)
		}
	}

	fmt.Printf("Figure 7: TPC-C throughput (MTxn/s), %d threads, %d warehouses\n", *threads, *warehouses)
	fmt.Printf("%-24s", "engine")
	for _, a := range ccList {
		fmt.Printf("%10s", a.String())
	}
	fmt.Println()
	for _, ecfg := range bench.EngineConfigs() {
		fmt.Printf("%-24s", ecfg.Name)
		var blocks []string
		for _, a := range ccList {
			res, err := runOne(ecfg, a, wcfg, opts)
			if err != nil {
				fmt.Printf("%10s", "ERR")
				fmt.Fprintln(os.Stderr, ecfg.Name, a, err)
				continue
			}
			label := fmt.Sprintf("%s/%s", ecfg.Name, a)
			cf.Collect(label, res)
			fmt.Printf("%10.3f", res.MTxnPerSec)
			if txt := cf.CellText(label, res); txt != "" {
				blocks = append(blocks, txt)
			}
		}
		fmt.Println()
		for _, b := range blocks {
			fmt.Print(b)
		}
	}
	cf.Finish()
}

// cf carries the tool-shared flags (-trace*, -groupcommit, -stats, -contend,
// -prom) for both figure modes.
var cf *bench.CommonFlags

func runOne(ecfg core.Config, algo cc.Algo, wcfg tpcc.Config, opts bench.Options) (*bench.Result, error) {
	ecfg = cf.Group.Apply(ecfg)
	ecfg.Threads = opts.Workers
	ecfg.CC = algo
	e, d, err := bench.NewTPCC(ecfg, wcfg)
	if err != nil {
		return nil, err
	}
	return bench.Run(e, "TPC-C", opts, func(w int) (int, error) {
		ty, err := d.NextTyped(w)
		return int(ty), err
	})
}

func fig8(wcfg tpcc.Config, opts bench.Options) {
	fmt.Printf("Figure 8: TPC-C latency (virtual µs), OCC, %d threads\n", opts.Workers)
	fmt.Printf("%-24s %12s %12s %12s %12s\n", "engine",
		"NewOrd avg", "NewOrd p95", "Paymnt avg", "Paymnt p95")
	for _, ecfg := range bench.EngineConfigs() {
		res, err := runOne(ecfg, cc.OCC, wcfg, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, ecfg.Name, err)
			continue
		}
		label := ecfg.Name + "/OCC"
		cf.Collect(label, res)
		no, pay := int(tpcc.TxnNewOrder), int(tpcc.TxnPayment)
		fmt.Printf("%-24s %12.2f %12.2f %12.2f %12.2f\n", ecfg.Name,
			us(res.LatAvgNanos[no]), us(res.LatP95Nanos[no]),
			us(res.LatAvgNanos[pay]), us(res.LatP95Nanos[pay]))
		if txt := cf.CellText(label, res); txt != "" {
			fmt.Print(txt)
		}
	}
}

func us(n uint64) float64 { return float64(n) / 1000 }
