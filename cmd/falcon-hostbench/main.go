// falcon-hostbench measures the HOST cost of the simulation: wall-clock
// nanoseconds per simulated pmem operation, per YCSB transaction, and for
// the default falcon-sweep Figure-11 grid. Virtual-time results (the
// numbers the paper reports) are independent of everything measured here —
// this harness tracks how much sweep fits in a CI budget, and whether a
// change regressed the engine's host hot path.
//
// Results append to a JSON baseline file (default BENCH_hostperf.json).
// Each run adds one entry; speedups are reported against the file's first
// entry, so the first committed entry is the tracked baseline. Compare runs
// with: jq '.runs[] | {label, grid_s, pmem_store64_ns}' BENCH_hostperf.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/pmem"
	"falcon/internal/sim"
	"falcon/internal/workload/tpcc"
	"falcon/internal/workload/ycsb"
)

// Run is one measurement session appended to the baseline file.
type Run struct {
	Label      string `json:"label"`
	Date       string `json:"date"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick,omitempty"`
	// WorkerPar records whether the timed cells ran their workers through
	// the deterministic group scheduler (-parworkers) instead of the default
	// free-running mode. The two modes are different simulated machines, so
	// entries are only comparable to entries with the same setting.
	WorkerPar bool `json:"worker_par,omitempty"`
	// GroupCommit records whether the timed cells committed through
	// leader-based group commit (-groupcommit). Like WorkerPar, entries are
	// only comparable to entries with the same setting.
	GroupCommit bool `json:"group_commit,omitempty"`
	// Host nanoseconds per simulated 64 B operation (32 MiB working set on
	// a 64 MiB device — miss-heavy, the expensive path).
	PmemStore64Ns   float64 `json:"pmem_store64_ns"`
	PmemLoad64Ns    float64 `json:"pmem_load64_ns"`
	PmemStoreCLWBNs float64 `json:"pmem_store_clwb_ns"`
	// One end-to-end YCSB-A Zipfian cell (50k records, 8 workers, 600 txns
	// + 150 warmup each): host seconds for the whole cell including load,
	// and host nanoseconds per measured transaction.
	YCSBCellS        float64 `json:"ycsb_cell_s"`
	YCSBCellNsPerTxn float64 `json:"ycsb_cell_host_ns_per_txn"`
	// Host seconds for the default falcon-sweep Figure-11 grid
	// (3 workloads x 5 engines x threads 2,4,8,12,16). Omitted by -quick.
	GridS float64 `json:"grid_s,omitempty"`
	// Speedup of this run's grid vs the file's first entry with a grid.
	GridSpeedupVsBase float64 `json:"grid_speedup_vs_baseline,omitempty"`
}

// Baseline is the tracked file layout.
type Baseline struct {
	Schema      string `json:"schema,omitempty"`
	Description string `json:"description"`
	Runs        []Run  `json:"runs"`
}

// parWorkers is set by -parworkers: timed cells run their workers through
// the deterministic group scheduler. cf carries the tool-shared flags,
// applied to every timed cell's engine config (-groupcommit) and to the
// extra untimed instrumented cell (-trace*, -stats, -contend, -prom).
var (
	parWorkers bool
	cf         *bench.CommonFlags
)

// gridRegressionLimit is the -check gate: the run fails when grid_s exceeds
// the comparable baseline entry by more than this factor.
const gridRegressionLimit = 1.10

func main() {
	out := flag.String("out", "BENCH_hostperf.json", "baseline file to append this run to")
	label := flag.String("label", "", "label for this run (default: hostbench-<date>)")
	quick := flag.Bool("quick", false, "skip the full Figure-11 grid (CI-friendly, ~10s)")
	par := flag.Int("par", 0, "concurrent grid cells (0 = GOMAXPROCS)")
	procs := flag.Int("gomaxprocs", 0, "set runtime.GOMAXPROCS before timing (0 = leave as-is); the effective value is recorded in the run entry")
	flag.BoolVar(&parWorkers, "parworkers", false, "run the timed cells' workers through the deterministic group scheduler; recorded per entry as worker_par")
	check := flag.Bool("check", false, "regression gate: compare this run's grid_s against the baseline's first comparable gridded entry and exit 1 on a >10% regression; the run is not appended to the baseline")
	cf = bench.RegisterCommonFlags(true)
	flag.Parse()

	if *check && *quick {
		fmt.Fprintln(os.Stderr, "-check needs the full Figure-11 grid; drop -quick")
		os.Exit(2)
	}

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	r := Run{
		Label:       *label,
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Quick:       *quick,
		WorkerPar:   parWorkers,
		GroupCommit: cf.Group.Enable,
	}
	if r.Label == "" {
		r.Label = "hostbench-" + r.Date
	}

	// Micro loops and the cell take the best of three passes: host noise is
	// strictly additive, so the minimum is the stablest estimator.
	r.PmemStore64Ns, r.PmemLoad64Ns, r.PmemStoreCLWBNs = best3(func() (float64, float64, float64) {
		return pmemMicro(2_000_000)
	})
	fmt.Printf("pmem store64:     %8.1f host-ns/op\n", r.PmemStore64Ns)
	fmt.Printf("pmem load64:      %8.1f host-ns/op\n", r.PmemLoad64Ns)
	fmt.Printf("pmem store+clwb:  %8.1f host-ns/op\n", r.PmemStoreCLWBNs)

	r.YCSBCellS, r.YCSBCellNsPerTxn, _ = best3(func() (float64, float64, float64) {
		s, ns := ycsbCell()
		return s, ns, 0
	})
	fmt.Printf("ycsb cell:        %8.3f host-s  (%0.f host-ns/txn)\n", r.YCSBCellS, r.YCSBCellNsPerTxn)

	if !*quick {
		r.GridS = fig11Grid(*par)
		fmt.Printf("fig11 grid:       %8.2f host-s\n", r.GridS)
	}

	base := load(*out)
	if r.GridS > 0 {
		// The comparison baseline is the file's first gridded entry with the
		// same worker-scheduler and commit-path settings (different settings
		// time different machines).
		for _, prev := range base.Runs {
			if prev.GridS > 0 && prev.WorkerPar == r.WorkerPar && prev.GroupCommit == r.GroupCommit {
				r.GridSpeedupVsBase = prev.GridS / r.GridS
				fmt.Printf("grid speedup vs %q: %.2fx\n", prev.Label, r.GridSpeedupVsBase)
				if *check && r.GridS > prev.GridS*gridRegressionLimit {
					fmt.Fprintf(os.Stderr, "check: grid_s %.2fs regressed more than %.0f%% vs baseline %q (%.2fs)\n",
						r.GridS, (gridRegressionLimit-1)*100, prev.Label, prev.GridS)
					os.Exit(1)
				}
				break
			}
		}
	}
	if *check {
		if r.GridSpeedupVsBase == 0 {
			fmt.Fprintf(os.Stderr, "check: no comparable gridded baseline in %s; nothing to gate against\n", *out)
		} else {
			fmt.Println("check: grid_s within the regression limit")
		}
		return
	}
	base.Runs = append(base.Runs, r)
	save(*out, base)
	fmt.Println("appended run to", *out)

	// Instrumentation is never armed during the timed loops above — it would
	// taint the baseline. With -trace / -stats / -contend / -prom, one extra
	// untimed cell runs instrumented instead.
	if cf.Trace.Enabled() || cf.Stats || cf.Contend || cf.PromPath != "" {
		instrumentedCell()
	}
	cf.Finish()
}

// instrumentedCell runs the same YCSB cell shape as ycsbCell with the flag-
// requested instrumentation armed, outside any timed section.
func instrumentedCell() {
	const workers, txns, warmup = 8, 600, 150
	cfg := cf.Group.Apply(core.FalconConfig())
	cfg.Threads = workers
	e, d, err := bench.NewYCSB(cfg, ycsb.Config{Records: 50_000, Workload: ycsb.A, Distribution: ycsb.Zipfian})
	if err == nil {
		var res *bench.Result
		res, err = bench.Run(e, "YCSB-A",
			cf.Options(bench.Options{Workers: workers, TxnsPerWorker: txns, WarmupPerWorker: warmup}),
			func(w int) (int, error) { return 0, d.Next(w) })
		if err == nil {
			label := "Falcon/YCSB-A Zipfian/8 (extra instrumented cell)"
			cf.Collect(label, res)
			fmt.Print(cf.CellText(label, res))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrumented cell:", err)
		os.Exit(1)
	}
}

// runSchema returns the JSON field names this binary writes for a Run entry.
func runSchema() map[string]bool {
	fields := map[string]bool{}
	t := reflect.TypeOf(Run{})
	for i := 0; i < t.NumField(); i++ {
		name := strings.Split(t.Field(i).Tag.Get("json"), ",")[0]
		if name != "" && name != "-" {
			fields[name] = true
		}
	}
	return fields
}

// checkSchema refuses to append to a baseline whose entries carry fields this
// binary does not know: appending would mix two incompatible run schemas in
// one tracked file and silently strip the unknown fields on rewrite. Entries
// merely missing newer fields are fine — the schema only grows.
func checkSchema(path string, data []byte) {
	var raw struct {
		Runs []map[string]json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return // load reports malformed files separately
	}
	known := runSchema()
	for i, run := range raw.Runs {
		for k := range run {
			if !known[k] {
				fmt.Fprintf(os.Stderr, "%s: run %d has field %q outside this binary's run schema; refusing to append (migrate the baseline or rebuild falcon-hostbench)\n", path, i, k)
				os.Exit(1)
			}
		}
	}
}

func load(path string) Baseline {
	b := Baseline{Description: "Host wall-clock cost of the simulation; virtual-time results are unaffected. First entry is the tracked baseline."}
	data, err := os.ReadFile(path)
	if err != nil {
		return b
	}
	checkSchema(path, data)
	if err := json.Unmarshal(data, &b); err != nil {
		fmt.Fprintf(os.Stderr, "warning: %s is not a baseline file (%v); starting fresh\n", path, err)
		return Baseline{Description: b.Description}
	}
	return b
}

func save(path string, b Baseline) {
	b.Schema = bench.HostPerfSchema
	data, err := json.MarshalIndent(b, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "write baseline:", err)
		os.Exit(1)
	}
}

// pmemMicro mirrors internal/pmem's BenchmarkHost* loop shapes exactly:
// 64 B ops striding a 32 MiB working set on a 64 MiB device.
func pmemMicro(n int) (store, loadNs, storeCLWB float64) {
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 64 << 20, CacheBytes: 2 << 20})
	clk := sim.NewClock()
	buf := make([]byte, 64)

	start := time.Now()
	for i := 0; i < n; i++ {
		sys.Space.Write(clk, uint64(i*64)%(32<<20), buf)
	}
	store = float64(time.Since(start).Nanoseconds()) / float64(n)

	start = time.Now()
	for i := 0; i < n; i++ {
		sys.Space.Read(clk, uint64(i*64)%(32<<20), buf)
	}
	loadNs = float64(time.Since(start).Nanoseconds()) / float64(n)

	start = time.Now()
	for i := 0; i < n; i++ {
		a := uint64(i*64) % (32 << 20)
		sys.Space.Write(clk, a, buf)
		sys.Space.CLWB(clk, a, 64)
	}
	storeCLWB = float64(time.Since(start).Nanoseconds()) / float64(n)
	return store, loadNs, storeCLWB
}

// best3 runs f three times and keeps the pass with the smallest first
// value; the values of one pass stay together (mixing minima across passes
// would fabricate a measurement no pass produced).
func best3(f func() (float64, float64, float64)) (a, b, c float64) {
	a, b, c = f()
	for i := 0; i < 2; i++ {
		x, y, z := f()
		if x < a {
			a, b, c = x, y, z
		}
	}
	return a, b, c
}

func ycsbCell() (seconds, nsPerTxn float64) {
	const workers, txns, warmup = 8, 600, 150
	cfg := cf.Group.Apply(core.FalconConfig())
	cfg.Threads = workers
	start := time.Now()
	e, d, err := bench.NewYCSB(cfg, ycsb.Config{Records: 50_000, Workload: ycsb.A, Distribution: ycsb.Zipfian})
	if err == nil {
		_, err = bench.Run(e, "YCSB-A",
			bench.Options{Workers: workers, TxnsPerWorker: txns, WarmupPerWorker: warmup, ParWorkers: parWorkers},
			func(w int) (int, error) { return 0, d.Next(w) })
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsb cell:", err)
		os.Exit(1)
	}
	seconds = time.Since(start).Seconds()
	return seconds, seconds * 1e9 / float64(workers*txns)
}

// fig11Grid times the default falcon-sweep Figure-11 grid: the same cells
// cmd/falcon-sweep builds with no flags (threads 2,4,8,12,16, 600 txns +
// 150 warmup per worker, 50k YCSB records, all five ablation engines).
func fig11Grid(par int) float64 {
	threads := []int{2, 4, 8, 12, 16}
	const txns, warmup = 600, 150
	const records = 50_000

	type workload struct {
		name string
		run  func(ecfg core.Config, th int) (*bench.Result, error)
	}
	ycsbRun := func(dist ycsb.Distribution) func(core.Config, int) (*bench.Result, error) {
		return func(ecfg core.Config, th int) (*bench.Result, error) {
			e, d, err := bench.NewYCSB(ecfg, ycsb.Config{Records: records, Workload: ycsb.A, Distribution: dist})
			if err != nil {
				return nil, err
			}
			return bench.Run(e, "YCSB-A",
				bench.Options{Workers: th, TxnsPerWorker: txns, WarmupPerWorker: warmup, ParWorkers: parWorkers},
				func(w int) (int, error) { return 0, d.Next(w) })
		}
	}
	workloads := []workload{
		{"TPC-C", func(ecfg core.Config, th int) (*bench.Result, error) {
			w := th / 2
			if w < 2 {
				w = 2
			}
			e, d, err := bench.NewTPCC(ecfg, tpcc.Config{Warehouses: w, Items: 2000, CustomersPerDistrict: 120})
			if err != nil {
				return nil, err
			}
			return bench.Run(e, "TPC-C",
				bench.Options{Workers: th, TxnsPerWorker: txns, WarmupPerWorker: warmup, ParWorkers: parWorkers},
				func(w int) (int, error) { return 0, d.Next(w) })
		}},
		{"YCSB-A Uniform", ycsbRun(ycsb.Uniform)},
		{"YCSB-A Zipfian", ycsbRun(ycsb.Zipfian)},
	}

	var cells []bench.Cell
	for _, wl := range workloads {
		for _, ecfg := range bench.AblationConfigs() {
			for _, th := range threads {
				wlRun, eng, t := wl.run, cf.Group.Apply(ecfg), th
				cells = append(cells, bench.Cell{
					Label: fmt.Sprintf("%s/%s/%d", eng.Name, wl.name, t),
					Run: func() (*bench.Result, error) {
						cfg := eng
						cfg.Threads = t
						return wlRun(cfg, t)
					},
				})
			}
		}
	}

	start := time.Now()
	results := bench.RunCells(cells, par)
	elapsed := time.Since(start).Seconds()
	for _, cr := range results {
		if cr.Err != nil {
			fmt.Fprintln(os.Stderr, "grid cell", cr.Label, "failed:", cr.Err)
			os.Exit(1)
		}
	}
	return elapsed
}
