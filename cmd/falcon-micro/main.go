// falcon-micro regenerates the paper's Figure 3: NVM store bandwidth with
// and without clwb hints, at 256 B / 128 B / 64 B write granularities.
//
// The experiment writes random aligned chunks one million times (configurable)
// and reports effective bandwidth in virtual time. The paper's point: with
// persistent cache, clwb is unnecessary for correctness, yet flushing
// adjacent lines together lets the NVM module's XPBuffer merge them into
// full-block media writes, avoiding read-modify-write amplification.
package main

import (
	"flag"
	"fmt"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

func main() {
	writes := flag.Int("writes", 1_000_000, "number of random writes per configuration")
	region := flag.Uint64("region", 512<<20, "target region size in bytes")
	flag.Parse()

	fmt.Println("Figure 3: bandwidth for data stores w/wo clwbs (eADR)")
	fmt.Printf("%-8s %-18s %-18s\n", "size", "store+sfence", "store+clwb+sfence")
	for _, size := range []int{256, 128, 64} {
		plain := run(*writes, size, *region, false)
		hinted := run(*writes, size, *region, true)
		fmt.Printf("%-8d %-18s %-18s\n", size, fmtBW(plain), fmtBW(hinted))
	}
}

// run measures one configuration and returns bytes/virtual-second.
func run(writes, size int, region uint64, clwb bool) float64 {
	sys := pmem.NewSystem(pmem.Config{
		Mode:        pmem.EADR,
		DeviceBytes: region,
	})
	clk := sim.NewClock()
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	// xorshift for the random aligned addresses (the paper's setup).
	state := uint64(0x9E3779B97F4A7C15)
	mask := region/uint64(size) - 1
	for i := 0; i < writes; i++ {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		addr := (state * 2685821657736338717 & mask) * uint64(size)
		sys.Space.Write(clk, addr, buf)
		if clwb {
			sys.Space.SFence(clk) // the paper's <sfence + clwbs> sequence
			sys.Space.CLWB(clk, addr, size)
		} else {
			sys.Space.SFence(clk)
		}
	}
	sys.Cache.FlushAll(clk)
	total := float64(writes) * float64(size)
	return total / (float64(clk.Nanos()) / 1e9)
}

func fmtBW(bps float64) string {
	return fmt.Sprintf("%.2f GB/s", bps/1e9)
}
