// falcon-micro regenerates the paper's Figure 3: NVM store bandwidth with
// and without clwb hints, at 256 B / 128 B / 64 B write granularities.
//
// The experiment writes random aligned chunks one million times (configurable)
// and reports effective bandwidth in virtual time. The paper's point: with
// persistent cache, clwb is unnecessary for correctness, yet flushing
// adjacent lines together lets the NVM module's XPBuffer merge them into
// full-block media writes, avoiding read-modify-write amplification.
package main

import (
	"flag"
	"fmt"

	"falcon/internal/bench"
	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
)

func main() {
	writes := flag.Int("writes", 1_000_000, "number of random writes per configuration")
	region := flag.Uint64("region", 512<<20, "target region size in bytes")
	cf := bench.RegisterCommonFlags(false) // no engine: group commit / contend do not apply
	flag.Parse()

	fmt.Println("Figure 3: bandwidth for data stores w/wo clwbs (eADR)")
	fmt.Printf("%-8s %-18s %-18s\n", "size", "store+sfence", "store+clwb+sfence")
	for _, size := range []int{256, 128, 64} {
		plain, psnap, pdump := run(*writes, size, *region, false, cf.Trace.Options())
		hinted, hsnap, hdump := run(*writes, size, *region, true, cf.Trace.Options())
		plainLabel := fmt.Sprintf("%dB/store+sfence", size)
		hintLabel := fmt.Sprintf("%dB/store+clwb+sfence", size)
		cf.Trace.Collect(plainLabel, pdump)
		cf.Trace.Collect(hintLabel, hdump)
		cf.CollectSnapshot(plainLabel, psnap)
		cf.CollectSnapshot(hintLabel, hsnap)
		fmt.Printf("%-8d %-18s %-18s\n", size, fmtBW(plain), fmtBW(hinted))
		if cf.Stats {
			fmt.Printf("--- stats: size=%d store+sfence ---\n%s", size, psnap.Text())
			fmt.Printf("--- stats: size=%d store+clwb+sfence ---\n%s", size, hsnap.Text())
		}
	}
	cf.Finish()
}

// run measures one configuration and returns bytes/virtual-second plus the
// observability snapshot of the run. The tool has no engine, so it registers
// its own bare phase set over the store loop: stores are heap-write time,
// sfence/clwb are flush time. With topt set it also arms a single-worker
// tracer: phase segments and XPBuffer evictions land in the ring (the ring
// keeps the tail of the run; there are no transactions here, so no sampling).
func run(writes, size int, region uint64, clwb bool, topt *obs.TraceOptions) (float64, obs.Snapshot, *obs.TraceDump) {
	sys := pmem.NewSystem(pmem.Config{
		Mode:        pmem.EADR,
		DeviceBytes: region,
	})
	clk := sim.NewClock()
	reg := obs.NewRegistry()
	var ps obs.PhaseSet
	reg.Register("store", func(s *obs.Snapshot) { ps.AddTo(&s.PhaseNanos) })
	reg.Register("pmem", func(s *obs.Snapshot) { s.Mem = sys.Dev.Stats().Snapshot() })
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	var pt obs.PhaseTimer
	pt.Start(&ps, clk)
	var tr *obs.Tracer
	if topt != nil {
		tr = obs.NewTracer(1, *topt)
		pt.AttachTrace(tr.Worker(0)) // after Start: Start clears the trace hook
		sys.SetTrace(tr.PmemTrace)
	}
	pt.To(obs.PhaseHeapWrite)
	// xorshift for the random aligned addresses (the paper's setup).
	state := uint64(0x9E3779B97F4A7C15)
	mask := region/uint64(size) - 1
	for i := 0; i < writes; i++ {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		addr := (state * 2685821657736338717 & mask) * uint64(size)
		sys.Space.Write(clk, addr, buf)
		pt.To(obs.PhaseFlush)
		if clwb {
			sys.Space.SFence(clk) // the paper's <sfence + clwbs> sequence
			sys.Space.CLWB(clk, addr, size)
		} else {
			sys.Space.SFence(clk)
		}
		pt.To(obs.PhaseHeapWrite)
	}
	pt.To(obs.PhaseFlush)
	sys.Cache.FlushAll(clk)
	pt.Finish()
	total := float64(writes) * float64(size)
	var dump *obs.TraceDump
	if tr != nil {
		dump = tr.Dump()
	}
	return total / (float64(clk.Nanos()) / 1e9), reg.Snapshot(), dump
}

func fmtBW(bps float64) string {
	return fmt.Sprintf("%.2f GB/s", bps/1e9)
}
