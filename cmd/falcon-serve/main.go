// falcon-serve exposes one Falcon engine over HTTP: an admission-controlled
// request path (bounded worker pool, deadline-aware shedding) with
// exactly-once retry semantics backed by the engine-resident idempotency
// table. SIGTERM/SIGINT triggers a graceful drain: admission stops, in-flight
// requests finish, and the group-commit epoch is sealed before exit.
//
// Endpoints: POST /v1/txn (Idempotency-Key header required, optional
// X-Deadline-Ms), POST /v1/read (gets only, no key needed), GET /metrics
// (Prometheus exposition), GET /healthz, GET /readyz (503 while draining).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/pmem"
	"falcon/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	preset := flag.String("preset", "Falcon", "engine preset by name (case-insensitive; see -list-presets)")
	list := flag.Bool("list-presets", false, "print the available engine presets and exit")
	threads := flag.Int("threads", 4, "engine worker threads")
	workers := flag.Int("workers", 0, "serving pool size (0 = threads; capped at threads)")
	queue := flag.Int("queue", 0, "admission queue depth, queued + running (0 = 4x workers)")
	deadlineMs := flag.Int("deadline-ms", 1000, "default per-request deadline when X-Deadline-Ms is absent")
	floorMs := flag.Int("floor-ms", 0, "pad accepted requests to this service floor, for load experiments (0 = off)")
	records := flag.Uint64("records", 100_000, "rows preloaded into the kv table (key k -> val k)")
	capacity := flag.Uint64("capacity", 0, "kv table capacity (0 = 2x records, min 65536)")
	idemCap := flag.Uint64("idemcap", 1<<20, "idempotency table capacity (one row per committed request key)")
	pad := flag.Int("pad", 0, "extra payload bytes per kv tuple")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on waiting for in-flight requests at shutdown")
	var group bench.GroupFlag
	group.Register()
	flag.Parse()

	if *list {
		for _, c := range presets() {
			fmt.Println(c.Name)
		}
		return
	}
	cfg, err := findPreset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Threads = *threads
	cfg = group.Apply(cfg)

	cap := *capacity
	if cap == 0 {
		cap = 2 * *records
		if cap < 1<<16 {
			cap = 1 << 16
		}
	}
	specs := server.WithIdemTable([]core.TableSpec{{
		Name: "kv", Schema: server.ServeSchema(*pad), Capacity: cap,
		KeyCol: 0, IndexKind: index.Hash,
	}}, *idemCap)
	sys := pmem.NewSystem(pmem.Config{
		DeviceBytes: bench.EstimateDeviceBytes(cfg, specs),
		CacheBytes:  bench.CacheBytesFor(cfg.Threads),
	})
	e, err := core.New(sys, cfg, specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "engine:", err)
		os.Exit(1)
	}
	if err := preload(e, *records); err != nil {
		fmt.Fprintln(os.Stderr, "preload:", err)
		os.Exit(1)
	}

	srv, err := server.New(e, server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: time.Duration(*deadlineMs) * time.Millisecond,
		ServiceFloor:    time.Duration(*floorMs) * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("falcon-serve: %s on %s (%d engine threads, %d pool workers, queue %d, %d kv rows)\n",
		cfg.Name, *addr, cfg.Threads, srvWorkers(*workers, cfg.Threads), srvQueue(*queue, *workers, cfg.Threads), *records)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("falcon-serve: %s — draining (new requests shed, in-flight finishing)\n", s)
		drained := srv.Drain(*drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = hs.Shutdown(ctx)
		cancel()
		if !drained {
			fmt.Fprintln(os.Stderr, "falcon-serve: drain timed out with requests still in flight")
			os.Exit(1)
		}
		fmt.Println("falcon-serve: drained, durability epoch sealed")
	}
}

// presets lists the selectable engine configurations (paper Figures 7-11),
// deduplicated by name.
func presets() []core.Config {
	seen := map[string]bool{}
	var out []core.Config
	for _, c := range append(bench.EngineConfigs(), bench.AblationConfigs()...) {
		if !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c)
		}
	}
	return out
}

func findPreset(name string) (core.Config, error) {
	for _, c := range presets() {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	names := make([]string, 0)
	for _, c := range presets() {
		names = append(names, c.Name)
	}
	return core.Config{}, fmt.Errorf("unknown -preset %q (have: %s)", name, strings.Join(names, ", "))
}

// preload inserts the initial kv rows directly through the engine before the
// serving pool starts — batched, rotating across the engine workers so every
// thread's heap range fills evenly (slots are partitioned per thread).
func preload(e *core.Engine, records uint64) error {
	t := e.Table("kv")
	s := t.Schema()
	threads := e.Config().Threads
	const batch = 256
	for lo := uint64(0); lo < records; lo += batch {
		hi := lo + batch
		if hi > records {
			hi = records
		}
		err := e.Run(int(lo/batch)%threads, func(tx *core.Txn) error {
			buf := make([]byte, s.TupleSize())
			for k := lo; k < hi; k++ {
				s.PutUint64(buf, 0, k)
				s.PutInt64(buf, 1, int64(k))
				if err := tx.Insert(t, k, buf); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("rows [%d,%d): %w", lo, hi, err)
		}
	}
	return nil
}

// srvWorkers/srvQueue mirror server.New's defaulting for the startup banner.
func srvWorkers(w, threads int) int {
	if w <= 0 || w > threads {
		return threads
	}
	return w
}

func srvQueue(q, w, threads int) int {
	if q > 0 {
		return q
	}
	return 4 * srvWorkers(w, threads)
}
