// falcon-sweep regenerates the paper's scalability and tuple-size studies:
//
//	default:    Figure 11 — the ablation engines (Inp, Inp+SLW, Inp NoFlush,
//	            Inp+HTT, Falcon) across thread counts on TPC-C, YCSB-A
//	            Uniform and YCSB-A Zipfian.
//	-tuplesize: Figure 12 — Falcon vs Inp vs Outp on YCSB-A Uniform across
//	            tuple sizes, at two thread counts, showing where the small
//	            log window stops helping.
//
// Every grid cell builds its own isolated engine, so cells run concurrently
// (-par) on multi-core hosts; measurements are taken in virtual time, so
// parallel execution changes wall-clock only. Tables always render in grid
// order, identical to a sequential run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/obs"
	"falcon/internal/workload/tpcc"
	"falcon/internal/workload/ycsb"
)

func main() {
	threadList := flag.String("threads", "2,4,8,12,16", "comma-separated thread counts (paper: 8..48)")
	txns := flag.Int("txns", 600, "measured transactions per worker")
	warmup := flag.Int("warmup", 150, "warmup transactions per worker")
	records := flag.Uint64("records", 50_000, "YCSB records")
	tupleSize := flag.Bool("tuplesize", false, "run Figure 12 (tuple-size sweep) instead of Figure 11")
	par := flag.Int("par", 0, "concurrent sweep cells (0 = GOMAXPROCS)")
	flag.BoolVar(&parWorkers, "parworkers", false, "run each cell's workers through the deterministic group scheduler (results independent of GOMAXPROCS; a different simulated machine than the default free-running mode)")
	jsonPath := flag.String("json", "", "also write per-cell results (incl. latency histograms) as JSON to this file")
	flag.StringVar(&mdPath, "md", "", "splice generated phase-share tables into this markdown file (e.g. EXPERIMENTS.md)")
	streamPath := flag.String("stream", "", "stream per-epoch snapshots as JSON lines to this file while cells run")
	flag.IntVar(&streamEvery, "stream-every", 200, "with -stream: epoch size in transactions per worker")
	cf = bench.RegisterCommonFlags(true)
	flag.Parse()

	if *streamPath != "" {
		f, err := os.Create(*streamPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			os.Exit(1)
		}
		defer f.Close()
		streamW = bench.NewStreamWriter(f)
	}

	threads := parseInts(*threadList)
	if *tupleSize {
		fig12(threads, *txns, *warmup, *par, *jsonPath)
	} else {
		fig11(threads, *txns, *warmup, *records, *par, *jsonPath)
	}
	cf.Finish()
}

// cf carries the tool-shared flags (-trace*, -groupcommit, -stats, -contend,
// -prom); mdPath/streamW/streamEvery the markdown and streaming exports;
// parWorkers flips every cell into the deterministic worker-parallel
// scheduler. All are written once in main before any cell runs.
var (
	cf          *bench.CommonFlags
	mdPath      string
	streamW     *bench.StreamWriter
	streamEvery int
	parWorkers  bool
)

// cellOptions decorates a cell's bench.Options with the sweep-wide trace,
// observatory and streaming hooks. label is the cell's grid label, used to
// tag trace tracks and stream lines.
func cellOptions(label string, opts bench.Options) bench.Options {
	opts = cf.Options(opts)
	opts.ParWorkers = parWorkers
	if streamW != nil && streamEvery > 0 {
		opts.EpochTxns = streamEvery
		opts.OnEpoch = func(epoch int, snap obs.Snapshot) {
			if err := streamW.Emit(bench.EpochSnapshotLine(label, epoch, snap)); err != nil {
				fmt.Fprintln(os.Stderr, "stream:", err)
			}
		}
	}
	return opts
}

// collectCell routes one finished cell into the trace file, the -prom export
// and the stream.
func collectCell(label string, res *bench.Result) {
	cf.Collect(label, res)
	if streamW != nil {
		if err := streamW.Emit(bench.CellDoneLine(label, res)); err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
		}
	}
}

// writeMD splices the phase-share tables derived from the finished grid into
// the -md target. A -groupcommit sweep writes its own marker section, so the
// file keeps the per-commit baseline and the group-commit tables side by
// side — the before/after comparison reads off the log+flush column.
func writeMD(meta []jsonCell) {
	if mdPath == "" {
		return
	}
	grid := make([]bench.GridCell, 0, len(meta))
	for _, m := range meta {
		grid = append(grid, bench.GridCell{
			Figure: m.Figure, Workload: m.Workload, Engine: m.Engine,
			Threads: m.Threads, Extra: m.Extra, Result: m.Result,
		})
	}
	marker := "phase-shares"
	if cf.Group.Enable {
		marker = "phase-shares-groupcommit"
	}
	if err := bench.SpliceMarkdown(mdPath, marker, bench.PhaseShareMarkdown(grid)); err != nil {
		fmt.Fprintln(os.Stderr, "md export:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "phase-share tables spliced into %s (%s)\n", mdPath, marker)
	if cf.Group.Enable {
		return // the tables below are grid-independent; one copy suffices
	}

	// The host-speedup table times its own worker-parallel cell at each
	// GOMAXPROCS setting; it is independent of the grid just swept.
	speedup, err := bench.HostSpeedupMarkdown([]int{1, 2, 4}, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "md export:", err)
		return
	}
	if err := bench.SpliceMarkdown(mdPath, "host-speedup", speedup); err != nil {
		fmt.Fprintln(os.Stderr, "md export:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "host-speedup table spliced into %s\n", mdPath)

	// The hot-key heat tables run their own observatory-armed Uniform vs
	// Zipfian cells — also grid-independent.
	heat, err := bench.HeatTablesMarkdown()
	if err != nil {
		fmt.Fprintln(os.Stderr, "md export:", err)
		return
	}
	if err := bench.SpliceMarkdown(mdPath, "hot-key-heat", heat); err != nil {
		fmt.Fprintln(os.Stderr, "md export:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "hot-key heat tables spliced into %s\n", mdPath)
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad thread count:", f)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

// jsonCell is one grid cell in the -json export.
type jsonCell struct {
	Schema   string        `json:"schema"`
	Figure   string        `json:"figure"`
	Workload string        `json:"workload"`
	Engine   string        `json:"engine"`
	Threads  int           `json:"threads"`
	Extra    string        `json:"extra,omitempty"`
	Result   *bench.Result `json:"result,omitempty"`
	Err      string        `json:"err,omitempty"`
}

func writeJSON(path string, cells []jsonCell) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(cells, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "json export:", err)
	}
}

func fig11(threads []int, txns, warmup int, records uint64, par int, jsonPath string) {
	type workload struct {
		name string
		run  func(ecfg core.Config, th int, label string) (*bench.Result, error)
	}
	workloads := []workload{
		{"TPC-C", func(ecfg core.Config, th int, label string) (*bench.Result, error) {
			w := th / 2
			if w < 2 {
				w = 2
			}
			e, d, err := bench.NewTPCC(ecfg, tpcc.Config{Warehouses: w, Items: 2000, CustomersPerDistrict: 120})
			if err != nil {
				return nil, err
			}
			return bench.Run(e, "TPC-C",
				cellOptions(label, bench.Options{Workers: th, TxnsPerWorker: txns, WarmupPerWorker: warmup}),
				func(w int) (int, error) { return 0, d.Next(w) })
		}},
		{"YCSB-A Uniform", ycsbRunner(records, ycsb.Uniform, txns, warmup)},
		{"YCSB-A Zipfian", ycsbRunner(records, ycsb.Zipfian, txns, warmup)},
	}

	// Build the full grid as isolated cells (workload-major, engine, thread —
	// the same order the tables render in), run them, then render.
	engines := bench.AblationConfigs()
	for i := range engines {
		engines[i] = cf.Group.Apply(engines[i])
	}
	var cells []bench.Cell
	var meta []jsonCell
	for _, wl := range workloads {
		for _, ecfg := range engines {
			for _, th := range threads {
				wlRun, eng, t := wl.run, ecfg, th
				label := fmt.Sprintf("%s/%s/%d", eng.Name, wl.name, th)
				cells = append(cells, bench.Cell{
					Label: label,
					Run: func() (*bench.Result, error) {
						cfg := eng
						cfg.Threads = t
						return wlRun(cfg, t, label)
					},
				})
				meta = append(meta, jsonCell{Schema: bench.SweepCellSchema,
					Figure: "11", Workload: wl.name, Engine: ecfg.Name, Threads: th})
			}
		}
	}
	results := bench.RunCells(cells, par)
	for i := range results {
		if results[i].Err != nil {
			meta[i].Err = results[i].Err.Error()
		} else {
			meta[i].Result = results[i].Res
			collectCell(cells[i].Label, results[i].Res)
		}
	}
	writeJSON(jsonPath, meta)
	writeMD(meta)

	i := 0
	for _, wl := range workloads {
		fmt.Printf("Figure 11 (%s): throughput (MTxn/s) by thread count\n", wl.name)
		fmt.Printf("%-26s", "engine")
		for _, th := range threads {
			fmt.Printf("%10d", th)
		}
		fmt.Println()
		for _, ecfg := range engines {
			fmt.Printf("%-26s", ecfg.Name)
			var blocks []string
			for _, th := range threads {
				cr := results[i]
				i++
				if cr.Err != nil {
					fmt.Printf("%10s", "ERR")
					fmt.Fprintln(os.Stderr, ecfg.Name, th, cr.Err)
					continue
				}
				fmt.Printf("%10.3f", cr.Res.MTxnPerSec)
				if txt := cf.CellText(fmt.Sprintf("%s/%s/%d", ecfg.Name, wl.name, th), cr.Res); txt != "" {
					blocks = append(blocks, txt)
				}
			}
			fmt.Println()
			for _, b := range blocks {
				fmt.Print(b)
			}
		}
		fmt.Println()
	}
}

func ycsbRunner(records uint64, dist ycsb.Distribution, txns, warmup int) func(core.Config, int, string) (*bench.Result, error) {
	return func(ecfg core.Config, th int, label string) (*bench.Result, error) {
		e, d, err := bench.NewYCSB(ecfg, ycsb.Config{Records: records, Workload: ycsb.A, Distribution: dist})
		if err != nil {
			return nil, err
		}
		return bench.Run(e, "YCSB-A",
			cellOptions(label, bench.Options{Workers: th, TxnsPerWorker: txns, WarmupPerWorker: warmup}),
			func(w int) (int, error) { return 0, d.Next(w) })
	}
}

// fig12 sweeps tuple size. The paper sweeps 64 KB – 1 MB on 256 GB of PMem;
// scaled down we sweep 256 B – 64 KB, which crosses the same regimes: redo
// fits the small log window → spills to overflow → overflow dominates.
func fig12(threads []int, txns, warmup, par int, jsonPath string) {
	sizes := []int{256, 1024, 4096, 16 << 10, 64 << 10}
	engines := []core.Config{core.FalconConfig(), core.InpConfig(), core.OutpConfig()}
	for i := range engines {
		engines[i] = cf.Group.Apply(engines[i])
	}
	if len(threads) > 2 {
		threads = []int{threads[1], threads[len(threads)-1]}
	}

	var cells []bench.Cell
	var meta []jsonCell
	for _, th := range threads {
		for _, ecfg := range engines {
			for _, sz := range sizes {
				eng, t, s := ecfg, th, sz
				label := fmt.Sprintf("%s-%d/%s", eng.Name, t, fmtSize(s))
				cells = append(cells, bench.Cell{
					Label: label,
					Run: func() (*bench.Result, error) {
						cfg := eng
						cfg.Threads = t
						return runTupleSize(cfg, t, s, txns, warmup, label)
					},
				})
				meta = append(meta, jsonCell{Schema: bench.SweepCellSchema,
					Figure: "12", Workload: "YCSB-A Uniform",
					Engine: ecfg.Name, Threads: th, Extra: fmtSize(sz)})
			}
		}
	}
	results := bench.RunCells(cells, par)
	for i := range results {
		if results[i].Err != nil {
			meta[i].Err = results[i].Err.Error()
		} else {
			meta[i].Result = results[i].Res
			collectCell(cells[i].Label, results[i].Res)
		}
	}
	writeJSON(jsonPath, meta)
	writeMD(meta)

	fmt.Println("Figure 12: YCSB-A Uniform throughput (KTxn/s) by tuple size")
	fmt.Printf("%-20s", "engine-threads")
	for _, sz := range sizes {
		fmt.Printf("%10s", fmtSize(sz))
	}
	fmt.Println()
	i := 0
	for _, th := range threads {
		for _, ecfg := range engines {
			fmt.Printf("%-20s", fmt.Sprintf("%s-%d", ecfg.Name, th))
			var blocks []string
			for _, sz := range sizes {
				cr := results[i]
				i++
				if cr.Err != nil {
					fmt.Printf("%10s", "ERR")
					fmt.Fprintln(os.Stderr, ecfg.Name, th, sz, cr.Err)
					continue
				}
				fmt.Printf("%10.1f", cr.Res.MTxnPerSec*1000)
				if txt := cf.CellText(fmt.Sprintf("%s-%d/%s", ecfg.Name, th, fmtSize(sz)), cr.Res); txt != "" {
					blocks = append(blocks, txt)
				}
			}
			fmt.Println()
			for _, b := range blocks {
				fmt.Print(b)
			}
		}
	}
}

func runTupleSize(ecfg core.Config, th, size, txns, warmup int, label string) (*bench.Result, error) {
	fields := 8
	fieldBytes := (size - 8) / fields
	if fieldBytes < 8 {
		fields, fieldBytes = 1, size-8
	}
	records := uint64(256 << 20 / size) // hold the heap near 256 MB
	if records > 50_000 {
		records = 50_000
	}
	if records < 2048 {
		records = 2048
	}
	// Larger tuples need a larger log overflow area and fewer transactions
	// to keep host time in check.
	ecfg.Window.OverflowBytes = size + 64<<10
	t := txns
	if size >= 16<<10 {
		t = txns / 4
	}
	e, d, err := bench.NewYCSB(ecfg, ycsb.Config{
		Records: records, Fields: fields, FieldBytes: fieldBytes,
		Workload: ycsb.A, Distribution: ycsb.Uniform,
	})
	if err != nil {
		return nil, err
	}
	return bench.Run(e, "YCSB-A",
		cellOptions(label, bench.Options{Workers: th, TxnsPerWorker: t, WarmupPerWorker: warmup / 2}),
		func(w int) (int, error) { return 0, d.Next(w) })
}

func fmtSize(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
