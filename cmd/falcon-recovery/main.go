// falcon-recovery regenerates the paper's §6.5 recovery study: crash a
// loaded, actively-updating database and measure recovery time. Falcon
// recovers in (virtual) milliseconds independent of data size — catalog read
// + instant NVM-index recovery + replay of the tiny log windows — while
// ZenS-style engines scan the whole tuple heap to rebuild their DRAM index,
// so their recovery time grows with the data.
//
// With -faults N it instead runs the crash-consistency matrix: N seeded
// mid-transaction crashes per engine preset per persistence mode, each
// recovered and checked against a golden model of acknowledged commits.
// A failing seed prints a one-line repro command.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/crashtest"
	"falcon/internal/workload/ycsb"
)

func main() {
	threads := flag.Int("threads", 8, "worker threads")
	txns := flag.Int("txns", 300, "transactions per worker before the crash")
	faults := flag.Int("faults", 0, "run the crash-consistency matrix with this many seeded crashes per cell")
	seed := flag.Uint64("seed", 1, "first crash seed (seeds run seed..seed+faults-1)")
	preset := flag.String("preset", "", "restrict the crash matrix to one engine preset by name")
	mode := flag.String("mode", "", "restrict the crash matrix to one persistence mode: eadr or adr")
	traceDir := flag.String("trace-dir", "", "with -faults: write each failing seed's pre-crash Chrome trace into this directory")
	cf = bench.RegisterCommonFlags(true)
	flag.Parse()
	stats := &cf.Stats

	if *faults > 0 {
		os.Exit(runCrashMatrix(*faults, *seed, *preset, *mode, *traceDir))
	}

	recordCounts := []uint64{20_000, 50_000, 100_000, 200_000}
	engines := []core.Config{core.FalconConfig(), core.FalconDRAMIndexConfig(), core.InpConfig(), core.ZenSConfig()}
	for i := range engines {
		engines[i] = cf.Group.Apply(engines[i])
	}

	fmt.Printf("Recovery time (virtual ms) vs data size, %d threads\n", *threads)
	fmt.Printf("%-24s", "engine")
	for _, r := range recordCounts {
		fmt.Printf("%12s", fmt.Sprintf("%dk rec", r/1000))
	}
	fmt.Println()

	for _, ecfg := range engines {
		ecfg.Threads = *threads
		fmt.Printf("%-24s", ecfg.Name)
		for _, records := range recordCounts {
			_, rep, err := crashRecover(ecfg, records, *threads, *txns,
				fmt.Sprintf("%s/%dk (pre-crash)", ecfg.Name, records/1000))
			if err != nil {
				fmt.Printf("%12s", "ERR")
				fmt.Fprintln(os.Stderr, ecfg.Name, records, err)
				continue
			}
			fmt.Printf("%12.3f", float64(rep.TotalNanos)/1e6)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Breakdown for the largest configuration:")
	for _, ecfg := range engines {
		ecfg.Threads = *threads
		e2, rep, err := crashRecover(ecfg, recordCounts[len(recordCounts)-1], *threads, *txns,
			fmt.Sprintf("%s/breakdown (pre-crash)", ecfg.Name))
		if err != nil {
			continue
		}
		fmt.Printf("%-24s catalog %8.3f ms  index %8.3f ms  replay %8.3f ms  (scanned %d tuples, replayed %d records)\n",
			ecfg.Name, float64(rep.CatalogNanos)/1e6, float64(rep.IndexNanos)/1e6,
			float64(rep.ReplayNanos)/1e6, rep.TuplesScanned, rep.RecordsReplayed)
		if *stats {
			fmt.Println(e2.ObsSnapshot().Text())
		}
	}
	cf.Finish()
}

// cf carries the tool-shared flags. -trace captures the pre-crash workload
// of each cell (the crash matrix uses -trace-dir instead); -groupcommit
// flips the recovery-study engines into group commit (the crash matrix
// carries its own group-commit cells); -stats prints the recovery-phase
// breakdown; -contend arms the observatory over the pre-crash workload, whose
// report reaches the -prom export.
var cf *bench.CommonFlags

// runCrashMatrix runs the seeded crash-consistency matrix and returns the
// process exit code (1 if any cell had an oracle violation).
func runCrashMatrix(faults int, firstSeed uint64, preset, mode, traceDir string) int {
	var cells []crashtest.Cell
	for _, c := range crashtest.Matrix() {
		if preset != "" && !strings.EqualFold(c.Config.Name, preset) {
			continue
		}
		if mode != "" && !strings.EqualFold(crashtest.ModeName(c.Mode), mode) {
			continue
		}
		cells = append(cells, c)
	}
	if len(cells) == 0 {
		fmt.Fprintf(os.Stderr, "no matrix cell matches -preset %q -mode %q\n", preset, mode)
		return 2
	}

	fmt.Printf("Crash-consistency matrix: %d seeded crashes per cell, seeds %d..%d\n\n",
		faults, firstSeed, firstSeed+uint64(faults)-1)
	fmt.Printf("%-22s %-5s %7s %8s %6s %8s %9s %10s %8s  %s\n",
		"preset", "mode", "oracle", "crashes", "torn", "corrupt", "det.torn", "det.corr", "dropped", "verdict")

	exit := 0
	for _, cell := range cells {
		res := crashtest.RunCell(cell, crashtest.Options{Seeds: faults, FirstSeed: firstSeed, TraceDir: traceDir})
		oracle := "contain"
		if res.Strict {
			oracle = "strict"
		}
		verdict := "PASS"
		if !res.Passed() {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			exit = 1
		}
		fmt.Printf("%-22s %-5s %7s %8d %6d %8d %9d %10d %8d  %s\n",
			cell.Config.Name, crashtest.ModeName(cell.Mode), oracle,
			res.Crashes, res.Torn, res.Corrupt, res.DetectedTorn, res.DetectedCorrupt,
			res.DroppedUnsealed, verdict)
		for _, v := range res.Violations {
			fmt.Printf("    seed %d: %s\n      repro: %s\n", v.Seed, v.Detail, cell.Repro(v.Seed))
			if v.TracePath != "" {
				fmt.Printf("      trace: %s\n", v.TracePath)
			}
		}
	}
	return exit
}

func crashRecover(ecfg core.Config, records uint64, threads, txns int, label string) (*core.Engine, *core.RecoveryReport, error) {
	e, d, err := bench.NewYCSB(ecfg, ycsb.Config{Records: records, Workload: ycsb.A})
	if err != nil {
		return nil, nil, err
	}
	res, err := bench.Run(e, "pre-crash", cf.Options(bench.Options{Workers: threads, TxnsPerWorker: txns}),
		func(w int) (int, error) { return 0, d.Next(w) })
	if err != nil {
		return nil, nil, err
	}
	cf.Collect(label, res)
	sys := e.System().Crash()
	e2, rep, err := core.Recover(sys, ecfg)
	return e2, rep, err
}
