// falcon-recovery regenerates the paper's §6.5 recovery study: crash a
// loaded, actively-updating database and measure recovery time. Falcon
// recovers in (virtual) milliseconds independent of data size — catalog read
// + instant NVM-index recovery + replay of the tiny log windows — while
// ZenS-style engines scan the whole tuple heap to rebuild their DRAM index,
// so their recovery time grows with the data.
package main

import (
	"flag"
	"fmt"
	"os"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/workload/ycsb"
)

func main() {
	threads := flag.Int("threads", 8, "worker threads")
	txns := flag.Int("txns", 300, "transactions per worker before the crash")
	flag.Parse()

	recordCounts := []uint64{20_000, 50_000, 100_000, 200_000}
	engines := []core.Config{core.FalconConfig(), core.FalconDRAMIndexConfig(), core.InpConfig(), core.ZenSConfig()}

	fmt.Printf("Recovery time (virtual ms) vs data size, %d threads\n", *threads)
	fmt.Printf("%-24s", "engine")
	for _, r := range recordCounts {
		fmt.Printf("%12s", fmt.Sprintf("%dk rec", r/1000))
	}
	fmt.Println()

	for _, ecfg := range engines {
		ecfg.Threads = *threads
		fmt.Printf("%-24s", ecfg.Name)
		for _, records := range recordCounts {
			rep, err := crashRecover(ecfg, records, *threads, *txns)
			if err != nil {
				fmt.Printf("%12s", "ERR")
				fmt.Fprintln(os.Stderr, ecfg.Name, records, err)
				continue
			}
			fmt.Printf("%12.3f", float64(rep.TotalNanos)/1e6)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Breakdown for the largest configuration:")
	for _, ecfg := range engines {
		ecfg.Threads = *threads
		rep, err := crashRecover(ecfg, recordCounts[len(recordCounts)-1], *threads, *txns)
		if err != nil {
			continue
		}
		fmt.Printf("%-24s catalog %8.3f ms  index %8.3f ms  replay %8.3f ms  (scanned %d tuples, replayed %d records)\n",
			ecfg.Name, float64(rep.CatalogNanos)/1e6, float64(rep.IndexNanos)/1e6,
			float64(rep.ReplayNanos)/1e6, rep.TuplesScanned, rep.RecordsReplayed)
	}
}

func crashRecover(ecfg core.Config, records uint64, threads, txns int) (*core.RecoveryReport, error) {
	e, d, err := bench.NewYCSB(ecfg, ycsb.Config{Records: records, Workload: ycsb.A})
	if err != nil {
		return nil, err
	}
	if _, err := bench.Run(e, "pre-crash", bench.Options{Workers: threads, TxnsPerWorker: txns},
		func(w int) (int, error) { return 0, d.Next(w) }); err != nil {
		return nil, err
	}
	sys := e.System().Crash()
	_, rep, err := core.Recover(sys, ecfg)
	return rep, err
}
