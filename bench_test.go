// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each Benchmark* corresponds to one figure; the series it prints are
// the figure's data points, measured in virtual time (see DESIGN.md §5).
// These run at reduced scale so `go test -bench=.` finishes in minutes; the
// cmd/falcon-* tools expose the full parameter space.
package falcon_test

import (
	"fmt"
	"sync"
	"testing"

	"falcon/internal/bench"
	"falcon/internal/cc"
	"falcon/internal/core"
	"falcon/internal/pmem"
	"falcon/internal/sim"
	"falcon/internal/workload/tpcc"
	"falcon/internal/workload/ycsb"
)

const benchThreads = 4

func tpccCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 2, Items: 1000, CustomersPerDistrict: 90}
}

func ycsbCfg(w ycsb.Workload, d ycsb.Distribution) ycsb.Config {
	return ycsb.Config{Records: 30_000, Workload: w, Distribution: d}
}

// benchCache memoizes each sub-benchmark's measurement: these benchmarks
// report simulated (virtual) time, so re-running the workload for larger
// b.N would only repeat the identical measurement. The metrics are
// re-reported on every framework round so they appear in the final output.
var benchCache sync.Map // b.Name() -> map[string]float64

func runCached(b *testing.B, fn func(b *testing.B) map[string]float64) {
	b.Helper()
	v, ok := benchCache.Load(b.Name())
	if !ok {
		v = fn(b)
		benchCache.Store(b.Name(), v)
	}
	for name, val := range v.(map[string]float64) {
		b.ReportMetric(val, name)
	}
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkFig3ClwbBandwidth — §3.3 Figure 3: store bandwidth with and
// without clwb hints at 256/128/64 B granularity.
func BenchmarkFig3ClwbBandwidth(b *testing.B) {
	for _, size := range []int{256, 128, 64} {
		for _, clwb := range []bool{false, true} {
			name := fmt.Sprintf("%dB/store+sfence", size)
			if clwb {
				name = fmt.Sprintf("%dB/store+clwb+sfence", size)
			}
			size, clwb := size, clwb
			b.Run(name, func(b *testing.B) {
				runCached(b, func(b *testing.B) map[string]float64 {
					sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
					clk := sim.NewClock()
					buf := make([]byte, size)
					state := uint64(0x9E3779B97F4A7C15)
					mask := sys.Space.Size()/uint64(size) - 1
					const writes = 200_000
					for i := 0; i < writes; i++ {
						state ^= state >> 12
						state ^= state << 25
						state ^= state >> 27
						addr := (state * 2685821657736338717 & mask) * uint64(size)
						sys.Space.Write(clk, addr, buf)
						sys.Space.SFence(clk)
						if clwb {
							sys.Space.CLWB(clk, addr, size)
						}
					}
					sys.Cache.FlushAll(clk)
					gbps := float64(writes) * float64(size) / float64(clk.Nanos())
					return map[string]float64{"GB/s(virtual)": gbps}
				})
			})
		}
	}
}

func runTPCC(b *testing.B, ecfg core.Config, algo cc.Algo, txns int) *bench.Result {
	b.Helper()
	ecfg.Threads = benchThreads
	ecfg.CC = algo
	e, d, err := bench.NewTPCC(ecfg, tpccCfg())
	if err != nil {
		b.Fatal(err)
	}
	res, err := bench.Run(e, "TPC-C",
		bench.Options{Workers: benchThreads, TxnsPerWorker: txns, WarmupPerWorker: txns / 4, Classes: 5},
		func(w int) (int, error) {
			ty, err := d.NextTyped(w)
			return int(ty), err
		})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig7TPCCThroughput — Figure 7: TPC-C throughput for all engines
// under all six concurrency-control algorithms.
func BenchmarkFig7TPCCThroughput(b *testing.B) {
	for _, ecfg := range bench.EngineConfigs() {
		for _, algo := range cc.All {
			ecfg, algo := ecfg, algo
			b.Run(fmt.Sprintf("%s/%s", ecfg.Name, algo), func(b *testing.B) {
				runCached(b, func(b *testing.B) map[string]float64 {
					res := runTPCC(b, ecfg, algo, 300)
					return map[string]float64{"MTxn/s(virtual)": res.MTxnPerSec}
				})
			})
		}
	}
}

// BenchmarkFig8TPCCLatency — Figure 8: NewOrder and Payment latency
// (average and 95th percentile) under OCC.
func BenchmarkFig8TPCCLatency(b *testing.B) {
	for _, ecfg := range bench.EngineConfigs() {
		ecfg := ecfg
		b.Run(ecfg.Name, func(b *testing.B) {
			runCached(b, func(b *testing.B) map[string]float64 {
				res := runTPCC(b, ecfg, cc.OCC, 300)
				no, pay := int(tpcc.TxnNewOrder), int(tpcc.TxnPayment)
				return map[string]float64{
					"NewOrder-avg-us": float64(res.LatAvgNanos[no]) / 1e3,
					"NewOrder-p95-us": float64(res.LatP95Nanos[no]) / 1e3,
					"Payment-avg-us":  float64(res.LatAvgNanos[pay]) / 1e3,
					"Payment-p95-us":  float64(res.LatP95Nanos[pay]) / 1e3,
				}
			})
		})
	}
}

// BenchmarkFig9YCSBThroughput — Figure 9: YCSB throughput under Uniform and
// Zipfian distributions. The default run covers the write workloads the
// paper focuses on (A and F); cmd/falcon-ycsb covers A–F.
func BenchmarkFig9YCSBThroughput(b *testing.B) {
	for _, ecfg := range bench.EngineConfigs() {
		for _, w := range []ycsb.Workload{ycsb.A, ycsb.F} {
			for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
				ecfg, w, dist := ecfg, w, dist
				b.Run(fmt.Sprintf("%s/%s/%s", ecfg.Name, w, dist), func(b *testing.B) {
					runCached(b, func(b *testing.B) map[string]float64 {
						cfg := ecfg
						cfg.Threads = benchThreads
						cfg.CC = cc.OCC
						e, d, err := bench.NewYCSB(cfg, ycsbCfg(w, dist))
						if err != nil {
							b.Fatal(err)
						}
						res, err := bench.Run(e, w.String(),
							bench.Options{Workers: benchThreads, TxnsPerWorker: 800, WarmupPerWorker: 200},
							func(w int) (int, error) { return 0, d.Next(w) })
						if err != nil {
							b.Fatal(err)
						}
						return map[string]float64{"MTxn/s(virtual)": res.MTxnPerSec}
					})
				})
			}
		}
	}
}

// BenchmarkFig11Scalability — Figures 10/11: the individual-optimization
// (ablation) engines across thread counts on TPC-C and YCSB-A.
func BenchmarkFig11Scalability(b *testing.B) {
	threadCounts := []int{2, 4, 8}
	type wl struct {
		name string
		run  func(b *testing.B, ecfg core.Config, th int) *bench.Result
	}
	wls := []wl{
		{"TPC-C", func(b *testing.B, ecfg core.Config, th int) *bench.Result {
			e, d, err := bench.NewTPCC(ecfg, tpccCfg())
			if err != nil {
				b.Fatal(err)
			}
			res, err := bench.Run(e, "TPC-C",
				bench.Options{Workers: th, TxnsPerWorker: 250, WarmupPerWorker: 60},
				func(w int) (int, error) { return 0, d.Next(w) })
			if err != nil {
				b.Fatal(err)
			}
			return res
		}},
		{"YCSB-A-Uniform", ycsbScaler(ycsb.Uniform)},
		{"YCSB-A-Zipfian", ycsbScaler(ycsb.Zipfian)},
	}
	for _, w := range wls {
		for _, ecfg := range bench.AblationConfigs() {
			for _, th := range threadCounts {
				w, ecfg, th := w, ecfg, th
				b.Run(fmt.Sprintf("%s/%s/threads=%d", w.name, ecfg.Name, th), func(b *testing.B) {
					runCached(b, func(b *testing.B) map[string]float64 {
						cfg := ecfg
						cfg.Threads = th
						res := w.run(b, cfg, th)
						return map[string]float64{"MTxn/s(virtual)": res.MTxnPerSec}
					})
				})
			}
		}
	}
}

func ycsbScaler(dist ycsb.Distribution) func(*testing.B, core.Config, int) *bench.Result {
	return func(b *testing.B, ecfg core.Config, th int) *bench.Result {
		e, d, err := bench.NewYCSB(ecfg, ycsbCfg(ycsb.A, dist))
		if err != nil {
			b.Fatal(err)
		}
		res, err := bench.Run(e, "YCSB-A",
			bench.Options{Workers: th, TxnsPerWorker: 500, WarmupPerWorker: 120},
			func(w int) (int, error) { return 0, d.Next(w) })
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
}

// BenchmarkFig12TupleSize — Figure 12: YCSB-A throughput as the tuple (and
// therefore redo-log) size grows past the small log window.
func BenchmarkFig12TupleSize(b *testing.B) {
	engines := []core.Config{core.FalconConfig(), core.InpConfig(), core.OutpConfig()}
	for _, ecfg := range engines {
		for _, size := range []int{256, 1024, 4096, 16 << 10, 64 << 10} {
			ecfg, size := ecfg, size
			b.Run(fmt.Sprintf("%s/size=%d", ecfg.Name, size), func(b *testing.B) {
				runCached(b, func(b *testing.B) map[string]float64 {
					cfg := ecfg
					cfg.Threads = benchThreads
					cfg.Window.OverflowBytes = size + 64<<10
					fields := 8
					fieldBytes := (size - 8) / fields
					records := uint64(64 << 20 / size)
					if records > 20_000 {
						records = 20_000
					}
					if records < 1024 {
						records = 1024
					}
					txns := 400
					if size >= 16<<10 {
						txns = 100
					}
					e, d, err := bench.NewYCSB(cfg, ycsb.Config{
						Records: records, Fields: fields, FieldBytes: fieldBytes,
						Workload: ycsb.A, Distribution: ycsb.Uniform,
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := bench.Run(e, "YCSB-A",
						bench.Options{Workers: benchThreads, TxnsPerWorker: txns, WarmupPerWorker: txns / 4},
						func(w int) (int, error) { return 0, d.Next(w) })
					if err != nil {
						b.Fatal(err)
					}
					return map[string]float64{"KTxn/s(virtual)": res.MTxnPerSec * 1e3}
				})
			})
		}
	}
}

// BenchmarkRecovery — §6.5: recovery time after a crash, by engine and data
// size. Falcon's is milliseconds and size-independent; heap-scanning engines
// grow linearly.
func BenchmarkRecovery(b *testing.B) {
	engines := []core.Config{
		core.FalconConfig(), core.FalconDRAMIndexConfig(), core.InpConfig(), core.ZenSConfig(),
	}
	for _, ecfg := range engines {
		for _, records := range []uint64{20_000, 80_000} {
			ecfg, records := ecfg, records
			b.Run(fmt.Sprintf("%s/records=%d", ecfg.Name, records), func(b *testing.B) {
				runCached(b, func(b *testing.B) map[string]float64 {
					cfg := ecfg
					cfg.Threads = benchThreads
					e, d, err := bench.NewYCSB(cfg, ycsb.Config{Records: records, Workload: ycsb.A})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := bench.Run(e, "pre-crash",
						bench.Options{Workers: benchThreads, TxnsPerWorker: 150},
						func(w int) (int, error) { return 0, d.Next(w) }); err != nil {
						b.Fatal(err)
					}
					sys := e.System().Crash()
					_, rep, err := core.Recover(sys, cfg)
					if err != nil {
						b.Fatal(err)
					}
					return map[string]float64{
						"recovery-ms(virtual)": float64(rep.TotalNanos) / 1e6,
						"tuples-scanned":       float64(rep.TuplesScanned),
					}
				})
			})
		}
	}
}

// BenchmarkTable1EngineMatrix — Table 1: prints the feature matrix of the
// engines under comparison (configuration, not measurement).
func BenchmarkTable1EngineMatrix(b *testing.B) {
	runCached(b, func(b *testing.B) map[string]float64 {
		for _, cfg := range bench.EngineConfigs() {
			c := cfg
			b.Logf("%-24s update=%-12s log=%-12s flush=%-9s index=%-4s tuple-cache=%v",
				c.Name, c.Update, c.Log, c.Flush, c.Index, c.TupleCacheBytes > 0)
		}
		return map[string]float64{"engines": float64(len(bench.EngineConfigs()))}
	})
}
