// Ablation benchmarks for the design parameters the paper discusses but
// does not sweep: the XPBuffer capacity (§5.5 suggests enlarging it
// alleviates uncontrolled-eviction amplification), the small log window's
// slot count (§4.3 picks 2–3 transactions), and the hot-tuple LRU capacity
// (§4.4 says only "a small LRU cache"). Shapes, not absolutes.
package falcon_test

import (
	"fmt"
	"testing"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/pmem"
	"falcon/internal/workload/ycsb"
)

func runYCSBWith(b *testing.B, ecfg core.Config, wcfg ycsb.Config, mem pmem.Config) *bench.Result {
	b.Helper()
	sys := pmem.NewSystem(mem)
	e, err := core.New(sys, ecfg, ycsb.TableSpecs(wcfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := ycsb.Load(e, wcfg); err != nil {
		b.Fatal(err)
	}
	d, err := ycsb.NewDriver(e, wcfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := bench.Run(e, wcfg.Workload.String(),
		bench.Options{Workers: ecfg.Threads, TxnsPerWorker: 600, WarmupPerWorker: 150},
		func(w int) (int, error) { return 0, d.Next(w) })
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationXPBufferSize: a larger write-combining buffer merges more
// of the unflushed engine's scattered evictions, narrowing the gap to the
// hinted-flush engine — the paper's §5.5 prediction.
func BenchmarkAblationXPBufferSize(b *testing.B) {
	wcfg := ycsb.Config{Records: 30_000, Workload: ycsb.A, Distribution: ycsb.Uniform}
	for _, kb := range []int{16, 64, 256, 1024} {
		for _, ecfg := range []core.Config{core.FalconConfig(), core.FalconNoFlushConfig()} {
			kb, ecfg := kb, ecfg
			b.Run(fmt.Sprintf("xpbuffer=%dKiB/%s", kb, ecfg.Name), func(b *testing.B) {
				runCached(b, func(b *testing.B) map[string]float64 {
					cfg := ecfg
					cfg.Threads = benchThreads
					mem := pmem.Config{
						DeviceBytes:   bench.EstimateDeviceBytes(cfg, ycsb.TableSpecs(wcfg)),
						CacheBytes:    bench.CacheBytesFor(benchThreads),
						XPBufferBytes: kb << 10,
					}
					res := runYCSBWith(b, cfg, wcfg, mem)
					return map[string]float64{
						"MTxn/s(virtual)": res.MTxnPerSec,
						"write-amp":       res.WriteAmp,
					}
				})
			})
		}
	}
}

// BenchmarkAblationWindowSlots: more window slots delay slot reuse without
// changing durability; the window only needs to cover in-flight
// transactions, which is why the paper picks 2–3.
func BenchmarkAblationWindowSlots(b *testing.B) {
	wcfg := ycsb.Config{Records: 30_000, Workload: ycsb.A, Distribution: ycsb.Uniform}
	for _, slots := range []int{2, 3, 8, 32} {
		slots := slots
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			runCached(b, func(b *testing.B) map[string]float64 {
				cfg := core.FalconConfig()
				cfg.Threads = benchThreads
				cfg.Window.Slots = slots
				mem := pmem.Config{
					DeviceBytes: bench.EstimateDeviceBytes(cfg, ycsb.TableSpecs(wcfg)) + 64<<20,
					CacheBytes:  bench.CacheBytesFor(benchThreads),
				}
				res := runYCSBWith(b, cfg, wcfg, mem)
				return map[string]float64{"MTxn/s(virtual)": res.MTxnPerSec}
			})
		})
	}
}

// BenchmarkAblationHotTupleCap: the hot-tuple LRU capacity trades flush
// elision against mistracking lukewarm tuples whose dirty lines get evicted
// (amplified) anyway. Under Zipfian access the sweet spot tracks the
// cache-resident hot set.
func BenchmarkAblationHotTupleCap(b *testing.B) {
	wcfg := ycsb.Config{Records: 30_000, Workload: ycsb.A, Distribution: ycsb.Zipfian}
	for _, cap := range []int{16, 64, 256, 1024} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			runCached(b, func(b *testing.B) map[string]float64 {
				cfg := core.FalconConfig()
				cfg.Threads = benchThreads
				cfg.HotTupleCap = cap
				mem := pmem.Config{
					DeviceBytes: bench.EstimateDeviceBytes(cfg, ycsb.TableSpecs(wcfg)),
					CacheBytes:  bench.CacheBytesFor(benchThreads),
				}
				res := runYCSBWith(b, cfg, wcfg, mem)
				return map[string]float64{
					"MTxn/s(virtual)": res.MTxnPerSec,
					"media-writes":    float64(res.MediaWrites),
				}
			})
		})
	}
}
