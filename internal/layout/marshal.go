package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AppendBinary serializes the schema for the persistent catalog.
func (s *Schema) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.cols)))
	for _, c := range s.cols {
		if len(c.Name) > 255 {
			panic("layout: column name too long: " + c.Name)
		}
		dst = append(dst, byte(len(c.Name)))
		dst = append(dst, c.Name...)
		dst = append(dst, byte(c.Kind))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Size))
	}
	return dst
}

// DecodeSchema parses a schema serialized by AppendBinary, returning the
// schema and the number of bytes consumed.
func DecodeSchema(src []byte) (*Schema, int, error) {
	if len(src) < 2 {
		return nil, 0, errors.New("layout: truncated schema header")
	}
	n := int(binary.LittleEndian.Uint16(src))
	pos := 2
	cols := make([]Column, 0, n)
	for i := 0; i < n; i++ {
		if pos >= len(src) {
			return nil, 0, fmt.Errorf("layout: truncated schema at column %d", i)
		}
		nameLen := int(src[pos])
		pos++
		if pos+nameLen+5 > len(src) {
			return nil, 0, fmt.Errorf("layout: truncated schema at column %d", i)
		}
		name := string(src[pos : pos+nameLen])
		pos += nameLen
		kind := Kind(src[pos])
		pos++
		size := int(binary.LittleEndian.Uint32(src[pos:]))
		pos += 4
		cols = append(cols, Column{Name: name, Kind: kind, Size: size})
	}
	return NewSchema(cols...), pos, nil
}
