package layout

import (
	"bytes"
	"testing"
	"testing/quick"
)

func demoSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: Uint64},
		Column{Name: "balance", Kind: Int64},
		Column{Name: "name", Kind: Bytes, Size: 16},
		Column{Name: "score", Kind: Float64},
	)
}

func TestSchemaOffsets(t *testing.T) {
	s := demoSchema()
	if s.TupleSize() != 8+8+16+8 {
		t.Fatalf("TupleSize = %d, want 40", s.TupleSize())
	}
	wantOffsets := []int{0, 8, 16, 32}
	for i, w := range wantOffsets {
		if got := s.Offset(i); got != w {
			t.Errorf("Offset(%d) = %d, want %d", i, got, w)
		}
	}
	if s.ColumnIndex("name") != 2 || s.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex lookup broken")
	}
}

func TestFieldRoundTrip(t *testing.T) {
	s := demoSchema()
	buf := make([]byte, s.TupleSize())
	s.PutUint64(buf, 0, 42)
	s.PutInt64(buf, 1, -7)
	s.PutString(buf, 2, "alice")
	if got := s.GetUint64(buf, 0); got != 42 {
		t.Errorf("GetUint64 = %d", got)
	}
	if got := s.GetInt64(buf, 1); got != -7 {
		t.Errorf("GetInt64 = %d", got)
	}
	if got := s.GetString(buf, 2); got != "alice" {
		t.Errorf("GetString = %q", got)
	}
}

func TestPutBytesPadsAndTruncates(t *testing.T) {
	s := demoSchema()
	buf := bytes.Repeat([]byte{0xFF}, s.TupleSize())
	s.PutString(buf, 2, "bob")
	b := s.GetBytes(buf, 2)
	if !bytes.Equal(b[:3], []byte("bob")) {
		t.Fatal("prefix not written")
	}
	for _, c := range b[3:] {
		if c != 0 {
			t.Fatal("padding not zeroed")
		}
	}
	s.PutString(buf, 2, "this-name-is-longer-than-sixteen-bytes")
	if got := len(s.GetBytes(buf, 2)); got != 16 {
		t.Fatalf("column width changed to %d", got)
	}
}

func TestSchemaMarshalRoundTrip(t *testing.T) {
	s := demoSchema()
	enc := s.AppendBinary(nil)
	dec, n, err := DecodeSchema(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if dec.TupleSize() != s.TupleSize() || dec.NumColumns() != s.NumColumns() {
		t.Fatal("shape mismatch after round trip")
	}
	for i := 0; i < s.NumColumns(); i++ {
		if dec.Column(i) != s.Column(i) {
			t.Fatalf("column %d mismatch: %+v vs %+v", i, dec.Column(i), s.Column(i))
		}
	}
}

func TestDecodeSchemaTruncated(t *testing.T) {
	enc := demoSchema().AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeSchema(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes are self-consistent (fewer columns); only the
			// header-level truncations must fail.
			if cut < 2 {
				t.Fatalf("DecodeSchema accepted a %d-byte prefix", cut)
			}
		}
	}
}

func TestQuickFieldRoundTrip(t *testing.T) {
	s := demoSchema()
	f := func(id uint64, bal int64, name []byte) bool {
		buf := make([]byte, s.TupleSize())
		s.PutUint64(buf, 0, id)
		s.PutInt64(buf, 1, bal)
		s.PutBytes(buf, 2, name)
		if s.GetUint64(buf, 0) != id || s.GetInt64(buf, 1) != bal {
			return false
		}
		want := name
		if len(want) > 16 {
			want = want[:16]
		}
		return bytes.Equal(s.GetBytes(buf, 2)[:len(want)], want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
