// Package layout defines table schemas and the fixed-width tuple encoding
// used by the engine. Tuples are flat byte strings with statically computed
// field offsets, so field reads and in-place field updates translate directly
// into sub-tuple loads and stores on the simulated NVM — which is what makes
// the paper's partial-update write-amplification effects observable.
package layout

import (
	"encoding/binary"
	"fmt"
)

// Kind is a column type.
type Kind uint8

const (
	// Int64 is a signed 64-bit integer (8 bytes).
	Int64 Kind = iota
	// Uint64 is an unsigned 64-bit integer (8 bytes).
	Uint64
	// Float64 is an IEEE-754 double (8 bytes).
	Float64
	// Bytes is a fixed-width opaque byte string (Size bytes). Strings are
	// stored as Bytes, zero-padded.
	Bytes
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Uint64:
		return "uint64"
	case Float64:
		return "float64"
	case Bytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Column describes one fixed-width column.
type Column struct {
	Name string
	Kind Kind
	// Size is the width in bytes; ignored (forced to 8) for numeric kinds.
	Size int
}

// Schema is an ordered set of columns with precomputed offsets.
type Schema struct {
	cols    []Column
	offsets []int
	size    int
	byName  map[string]int
}

// NewSchema builds a schema from columns. It panics on duplicate or empty
// column names or non-positive Bytes sizes, since schemas are static program
// data.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{byName: make(map[string]int, len(cols))}
	off := 0
	for _, c := range cols {
		if c.Name == "" {
			panic("layout: empty column name")
		}
		if _, dup := s.byName[c.Name]; dup {
			panic("layout: duplicate column " + c.Name)
		}
		if c.Kind != Bytes {
			c.Size = 8
		} else if c.Size <= 0 {
			panic("layout: bytes column " + c.Name + " needs a positive size")
		}
		s.byName[c.Name] = len(s.cols)
		s.cols = append(s.cols, c)
		s.offsets = append(s.offsets, off)
		off += c.Size
	}
	s.size = off
	return s
}

// TupleSize is the encoded width of one tuple in bytes.
func (s *Schema) TupleSize() int { return s.size }

// NumColumns returns the column count.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns column i.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Offset returns the byte offset of column i within the tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// --- field accessors over raw tuple bytes ---

// GetInt64 reads column col from an encoded tuple.
func (s *Schema) GetInt64(tuple []byte, col int) int64 {
	return int64(binary.LittleEndian.Uint64(tuple[s.offsets[col]:]))
}

// PutInt64 writes column col in an encoded tuple.
func (s *Schema) PutInt64(tuple []byte, col int, v int64) {
	binary.LittleEndian.PutUint64(tuple[s.offsets[col]:], uint64(v))
}

// GetUint64 reads column col as uint64.
func (s *Schema) GetUint64(tuple []byte, col int) uint64 {
	return binary.LittleEndian.Uint64(tuple[s.offsets[col]:])
}

// PutUint64 writes column col as uint64.
func (s *Schema) PutUint64(tuple []byte, col int, v uint64) {
	binary.LittleEndian.PutUint64(tuple[s.offsets[col]:], v)
}

// GetBytes returns the raw bytes of column col (a sub-slice of tuple).
func (s *Schema) GetBytes(tuple []byte, col int) []byte {
	off := s.offsets[col]
	return tuple[off : off+s.cols[col].Size]
}

// PutBytes copies v into column col, zero-padding or truncating to width.
func (s *Schema) PutBytes(tuple []byte, col int, v []byte) {
	off := s.offsets[col]
	w := s.cols[col].Size
	n := copy(tuple[off:off+w], v)
	for ; n < w; n++ {
		tuple[off+n] = 0
	}
}

// GetString reads column col as a string, trimming zero padding.
func (s *Schema) GetString(tuple []byte, col int) string {
	b := s.GetBytes(tuple, col)
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return string(b[:end])
}

// PutString writes a string into column col.
func (s *Schema) PutString(tuple []byte, col int, v string) {
	s.PutBytes(tuple, col, []byte(v))
}
