package wal

import (
	"bytes"
	"testing"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

func newTestWindow(cfg Config) (*Window, *pmem.System) {
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 16 << 20})
	return NewWindow(sys.Space, 0, cfg), sys
}

func TestCommitRecordRoundTrip(t *testing.T) {
	w, sys := newTestWindow(Config{Slots: 3, SlotBytes: 1024, OverflowBytes: 1024})
	clk := sim.NewClock()

	l := w.Begin(clk, 42)
	if l.AppendUpdate(clk, 1, 7, 99, 16, []byte("abcd")) < 0 {
		t.Fatal("append failed")
	}
	if l.AppendInsert(clk, 2, 8, 100, bytes.Repeat([]byte{5}, 32)) < 0 {
		t.Fatal("append failed")
	}
	if l.AppendDelete(clk, 1, 9, 101) < 0 {
		t.Fatal("append failed")
	}
	l.Commit(clk)

	recs, _ := ReadRecords(sys.Space, clk, 0, Config{Slots: 3, SlotBytes: 1024, OverflowBytes: 1024})
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.TID != 42 || len(r.Ops) != 3 {
		t.Fatalf("record = %+v", r)
	}
	if r.Ops[0].Type != OpUpdate || r.Ops[0].Slot != 7 || r.Ops[0].Off != 16 || !bytes.Equal(r.Ops[0].Data, []byte("abcd")) {
		t.Errorf("op0 = %+v", r.Ops[0])
	}
	if r.Ops[1].Type != OpInsert || r.Ops[1].Key != 100 || len(r.Ops[1].Data) != 32 {
		t.Errorf("op1 = %+v", r.Ops[1])
	}
	if r.Ops[2].Type != OpDelete || r.Ops[2].Key != 101 {
		t.Errorf("op2 = %+v", r.Ops[2])
	}
}

func TestUncommittedRecordsIgnored(t *testing.T) {
	w, sys := newTestWindow(Config{Slots: 2, SlotBytes: 512})
	clk := sim.NewClock()
	l := w.Begin(clk, 1)
	l.AppendUpdate(clk, 0, 0, 0, 0, []byte("x"))
	// no Commit
	recs, _ := ReadRecords(sys.Space, clk, 0, Config{Slots: 2, SlotBytes: 512})
	if len(recs) != 0 {
		t.Fatalf("uncommitted record surfaced: %+v", recs)
	}
}

func TestAbortFreesSlot(t *testing.T) {
	w, sys := newTestWindow(Config{Slots: 2, SlotBytes: 512})
	clk := sim.NewClock()
	l := w.Begin(clk, 1)
	l.AppendUpdate(clk, 0, 0, 0, 0, []byte("x"))
	l.Abort(clk)
	recs, _ := ReadRecords(sys.Space, clk, 0, Config{Slots: 2, SlotBytes: 512})
	if len(recs) != 0 {
		t.Fatal("aborted record surfaced")
	}
}

func TestWindowReuseOverwritesOldRecords(t *testing.T) {
	cfg := Config{Slots: 2, SlotBytes: 512}
	w, sys := newTestWindow(cfg)
	clk := sim.NewClock()
	for tid := uint64(1); tid <= 5; tid++ {
		l := w.Begin(clk, tid)
		l.AppendUpdate(clk, 0, tid, tid, 0, []byte{byte(tid)})
		l.Commit(clk)
	}
	recs, _ := ReadRecords(sys.Space, clk, 0, cfg)
	if len(recs) != 2 {
		t.Fatalf("window with 2 slots kept %d records", len(recs))
	}
	SortRecords(recs)
	if recs[0].TID != 4 || recs[1].TID != 5 {
		t.Fatalf("kept TIDs %d,%d; want 4,5", recs[0].TID, recs[1].TID)
	}
}

func TestRecordsSurviveCrashUnflushed(t *testing.T) {
	// The core property of the small log window: records are durable under
	// eADR even though no clwb is ever issued.
	cfg := Config{Slots: 3, SlotBytes: 1024}
	w, sys := newTestWindow(cfg)
	clk := sim.NewClock()
	l := w.Begin(clk, 77)
	l.AppendUpdate(clk, 1, 5, 50, 8, []byte("durable"))
	l.Commit(clk)

	st := sys.Dev.Stats().Snapshot()
	if st.MediaWrites != 0 {
		t.Fatalf("small log window generated %d media writes during normal operation", st.MediaWrites)
	}

	sys2 := sys.Crash()
	recs, _ := ReadRecords(sys2.Space, clk, 0, cfg)
	if len(recs) != 1 || recs[0].TID != 77 || !bytes.Equal(recs[0].Ops[0].Data, []byte("durable")) {
		t.Fatalf("record lost across eADR crash: %+v", recs)
	}
}

func TestRecordsLostInADRWithoutFlush(t *testing.T) {
	cfg := Config{Slots: 3, SlotBytes: 1024}
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 16 << 20, Mode: pmem.ADR})
	w := NewWindow(sys.Space, 0, cfg)
	clk := sim.NewClock()
	l := w.Begin(clk, 77)
	l.AppendUpdate(clk, 1, 5, 50, 8, []byte("gone"))
	l.Commit(clk)

	sys2 := sys.Crash()
	recs, _ := ReadRecords(sys2.Space, clk, 0, cfg)
	if len(recs) != 0 {
		t.Fatal("unflushed log survived an ADR crash; the simulator is too forgiving")
	}
}

func TestFlushedLogSurvivesADRCrash(t *testing.T) {
	cfg := Config{Slots: 3, SlotBytes: 1024, Flush: true}
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 16 << 20, Mode: pmem.ADR})
	w := NewWindow(sys.Space, 0, cfg)
	clk := sim.NewClock()
	l := w.Begin(clk, 78)
	l.AppendUpdate(clk, 1, 5, 50, 8, []byte("safe"))
	l.Commit(clk)

	sys2 := sys.Crash()
	recs, _ := ReadRecords(sys2.Space, clk, 0, cfg)
	if len(recs) != 1 || recs[0].TID != 78 {
		t.Fatal("flushed (Inp-style) log lost under ADR crash")
	}
}

func TestOverflowSpillAndReadback(t *testing.T) {
	cfg := Config{Slots: 2, SlotBytes: 256, OverflowBytes: 4096}
	w, sys := newTestWindow(cfg)
	clk := sim.NewClock()
	big := bytes.Repeat([]byte{0xEE}, 1000) // much larger than the slot
	l := w.Begin(clk, 9)
	if l.AppendInsert(clk, 0, 1, 2, big) < 0 {
		t.Fatal("append of oversized op failed despite overflow capacity")
	}
	if !l.Overflowed() {
		t.Fatal("record should have spilled")
	}
	l.Commit(clk)

	recs, _ := ReadRecords(sys.Space, clk, 0, cfg)
	if len(recs) != 1 || !bytes.Equal(recs[0].Ops[0].Data, big) {
		t.Fatal("overflowed record corrupted")
	}
}

func TestOverflowExhaustionMarksFull(t *testing.T) {
	cfg := Config{Slots: 2, SlotBytes: 256, OverflowBytes: 256}
	w, _ := newTestWindow(cfg)
	clk := sim.NewClock()
	l := w.Begin(clk, 9)
	if l.AppendInsert(clk, 0, 1, 2, bytes.Repeat([]byte{1}, 10000)) >= 0 {
		t.Fatal("append succeeded beyond capacity")
	}
	if !l.Full() {
		t.Fatal("Full() not reported")
	}
}

func TestReadOpDuringExecution(t *testing.T) {
	w, _ := newTestWindow(Config{Slots: 2, SlotBytes: 512})
	clk := sim.NewClock()
	l := w.Begin(clk, 3)
	l.AppendUpdate(clk, 4, 10, 20, 8, []byte("one"))
	l.AppendUpdate(clk, 4, 11, 21, 0, []byte("two"))

	op, next := l.ReadOp(clk, 0)
	if op.Slot != 10 || !bytes.Equal(op.Data, []byte("one")) {
		t.Fatalf("op0 = %+v", op)
	}
	op, _ = l.ReadOp(clk, next)
	if op.Slot != 11 || !bytes.Equal(op.Data, []byte("two")) {
		t.Fatalf("op1 = %+v", op)
	}
}

func TestSmallWindowStaysCacheResident(t *testing.T) {
	// Run many transactions through a window while touching a large data
	// region; the window lines must mostly stay cached (few media writes
	// attributable to the log).
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 32 << 20, CacheBytes: 256 << 10})
	cfg := Config{Slots: 3, SlotBytes: 2048}
	w := NewWindow(sys.Space, 0, cfg)
	clk := sim.NewClock()

	dataBase := uint64(1 << 20)
	payload := make([]byte, 128)
	for tid := uint64(1); tid <= 2000; tid++ {
		l := w.Begin(clk, tid)
		l.AppendUpdate(clk, 0, tid%512, tid, 0, payload)
		l.Commit(clk)
		// Simulated tuple traffic sweeping a 4 MiB region.
		addr := dataBase + (tid*8192)%(4<<20)
		sys.Space.Write(clk, addr, payload)
		sys.Space.CLWB(clk, addr, len(payload))
	}
	st := sys.Dev.Stats().Snapshot()
	// The window occupies [0, ~18KB); count media writes to that range is
	// not directly tracked, but overall dirty evictions should be dominated
	// by the data sweep. As a proxy: the window is 9 KiB over 2000 txns of
	// ~160B each; if every log byte were evicted we would see >5000 extra
	// partial writes. Require the total stays well below that.
	dataWrites := 2000 * 3 // 128B clwb'd = 2-3 lines -> <=3 blocks per txn
	if st.MediaWrites > uint64(dataWrites)+1500 {
		t.Fatalf("media writes %d suggest log window thrashing (data-only bound %d)",
			st.MediaWrites, dataWrites)
	}
}

func TestWindowStats(t *testing.T) {
	w, _ := newTestWindow(Config{Slots: 2, SlotBytes: 256, OverflowBytes: 256})
	clk := sim.NewClock()

	// Txn 1: small committed record.
	l := w.Begin(clk, 1)
	l.AppendUpdate(clk, 0, 0, 0, 0, []byte("abcd"))
	l.Commit(clk)
	// Txn 2: aborted.
	l = w.Begin(clk, 2)
	l.Abort(clk)
	// Txn 3: wraps the 2-slot window and spills into overflow.
	l = w.Begin(clk, 3)
	big := bytes.Repeat([]byte{9}, 300)
	if l.AppendUpdate(clk, 0, 0, 0, 0, big) < 0 {
		t.Fatal("append should spill, not fail")
	}
	l.Commit(clk)
	// Txn 4: exhausts even the overflow region.
	l = w.Begin(clk, 4)
	if l.AppendUpdate(clk, 0, 0, 0, 0, bytes.Repeat([]byte{9}, 1024)) >= 0 {
		t.Fatal("append should fail")
	}

	s := w.Stats()
	if s.Begins != 4 || s.Wraps != 2 {
		t.Errorf("begins/wraps = %d/%d, want 4/2", s.Begins, s.Wraps)
	}
	if s.Commits != 2 || s.Aborts != 1 {
		t.Errorf("commits/aborts = %d/%d, want 2/1", s.Commits, s.Aborts)
	}
	if s.Overflows != 1 || s.OverflowBytes == 0 {
		t.Errorf("overflows = %d (%d B), want 1 spilled record", s.Overflows, s.OverflowBytes)
	}
	if s.FullRejects != 1 {
		t.Errorf("full rejects = %d, want 1", s.FullRejects)
	}
	if s.MaxRecordBytes <= s.MeanRecordBytes() || s.SlotBytes != 256 {
		t.Errorf("record gauges: max %d mean %d slot %d", s.MaxRecordBytes, s.MeanRecordBytes(), s.SlotBytes)
	}

	w.ResetStats()
	if w.Stats().Begins != 0 || w.Stats().Commits != 0 {
		t.Error("ResetStats must zero the gauges")
	}
}
