package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// TestQuickRecordRoundTrip: arbitrary committed op sequences must survive an
// eADR crash and deserialize identically, including slot/overflow splits.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Slots:         rng.Intn(4) + 2,
			SlotBytes:     256 * (rng.Intn(8) + 1),
			OverflowBytes: 8 << 10,
		}
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 16 << 20})
		w := NewWindow(sys.Space, 0, cfg)
		clk := sim.NewClock()

		tid := uint64(rng.Intn(1000) + 1)
		l := w.Begin(clk, tid)
		type op struct {
			typ   uint8
			table uint8
			slot  uint64
			key   uint64
			off   int
			data  []byte
		}
		var want []op
		nops := rng.Intn(12) + 1
		for i := 0; i < nops; i++ {
			o := op{
				typ:   uint8(rng.Intn(3) + 1),
				table: uint8(rng.Intn(8)),
				slot:  uint64(rng.Intn(1 << 20)),
				key:   uint64(rng.Int63()),
			}
			switch o.typ {
			case OpUpdate:
				o.off = rng.Intn(512)
				o.data = make([]byte, rng.Intn(200)+1)
				rng.Read(o.data)
				if l.AppendUpdate(clk, o.table, o.slot, o.key, o.off, o.data) < 0 {
					return true // overflow exhausted: not a round-trip case
				}
			case OpInsert:
				o.data = make([]byte, rng.Intn(400)+1)
				rng.Read(o.data)
				if l.AppendInsert(clk, o.table, o.slot, o.key, o.data) < 0 {
					return true
				}
			default:
				if l.AppendDelete(clk, o.table, o.slot, o.key) < 0 {
					return true
				}
			}
			want = append(want, o)
		}
		l.Commit(clk)

		recs, _ := ReadRecords(sys.Crash().Space, clk, 0, cfg)
		if len(recs) != 1 || recs[0].TID != tid || len(recs[0].Ops) != len(want) {
			return false
		}
		for i, g := range recs[0].Ops {
			w := want[i]
			if g.Type != w.typ || g.Table != w.table || g.Slot != w.slot ||
				g.Key != w.key || g.Off != w.off || !bytes.Equal(g.Data, w.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
