// Durability epochs: the state machine behind leader-based group commit.
//
// With group commit enabled, a committing transaction no longer drains its
// record individually. Commit splits into two points:
//
//   - the *publish* point: the record is written with StatePublished and its
//     epoch id, the transaction's conflict window closes (locks release, the
//     caller is acknowledged), but nothing is fenced or flushed;
//   - the *durable* point: the record's durability epoch is sealed — every
//     enlisted record's dirty ranges are batched into hinted multi-line flush
//     trains (pmem.Space.CLWBTrain), one drain is issued, and the epoch's id
//     is persisted in the durable epoch marker.
//
// Epoch membership is a pure function of virtual time — epoch id
// v/EpochNanos+1 — so group formation is byte-identical across GOMAXPROCS in
// the deterministic worker-parallel mode. A publisher whose clock lags behind
// the sealed marker (its epoch already sealed) cannot re-open the sealed id —
// that would regress the marker. Free-running workers future-date such
// records into the first unsealed epoch (coalescing survives clock drift;
// reclaims still never stall because the reclaimer seals immediately), while
// deterministic group mode falls back to the per-commit drain (epoch 0) so a
// laggard's slot reclaims never chain to the fastest clock in the system
// through the bounded timeout.
// Leadership is implicit and also virtual-time-derived: whichever committer
// first crosses an epoch's boundary seals everything that expired before it
// (sealExpired), playing the leader's role of batching the enlisted windows'
// lines and releasing the followers; a worker that must reclaim a log slot
// whose record sits in an unsealed epoch becomes that epoch's leader and
// seals it on the spot (reclaimWait — the group-wait phase). The epoch
// boundary is an upper bound on an epoch's lifetime, never a lower one, so
// singleton commits stall at most one epoch and slot reclaims do not stall at
// all outside deterministic group mode (where seals must defer to the round
// barrier and the reclaimer pays the bounded timeout instead).
//
// Crash atomicity per epoch: the seal orders record trains → fence → marker
// publish → fence → data trains. The XPBuffer drains even on an ADR crash,
// so a clwb'd line is durable at the crash instant; by the time any data
// line of an epoch is flushed, the marker (and with it the replayability of
// every record in the epoch) is already durable. Recovery replays a
// StatePublished record only when its epoch is covered by the recovered
// marker (ADR) — or unconditionally under eADR, where the publish point is
// physically durable — so an epoch's transactions surface all-or-nothing.
package wal

import (
	"sync"

	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// DefaultEpochNanos is the default durability-epoch length (and therefore
// the bounded group-commit timeout) in virtual nanoseconds. Transactions run
// a couple of microseconds, so a 4 µs epoch typically coalesces several
// commits per thread while a singleton commit waits at most one epoch.
const DefaultEpochNanos = 4096

// pendingEpoch is one open (published but unsealed) durability epoch.
type pendingEpoch struct {
	id uint64
	// firstV is the earliest publish time in the epoch; pubV the publish
	// time of every enlisted record (durable-lag accounting).
	firstV uint64
	pubV   []uint64
	// recSpans are the log-record ranges that must be durable before the
	// marker publishes; dataSpans the deferred tuple flushes that follow it.
	recSpans  []pmem.Span
	dataSpans []pmem.Span
}

// EpochBoard is the engine-wide group-commit coordinator: the set of open
// epochs, the durable epoch marker, and the seal machinery. Windows publish
// into it; any committer crossing an epoch boundary seals what expired.
//
// The mutex serializes free-running workers. In deterministic group mode
// every state mutation happens inside the round barrier (publishes run in
// the canonical replay) except reclaimWait, which only advances the calling
// worker's clock and counters — deferSeal keeps worker-side callers from
// sealing outside the barrier.
type EpochBoard struct {
	mu         sync.Mutex
	space      pmem.Space
	markerOff  uint64
	epochNanos uint64
	// marker mirrors the durable epoch marker: the highest sealed epoch id.
	marker  uint64
	pending []*pendingEpoch // ascending id
	// deferSeal, set while the deterministic group scheduler is active,
	// forbids sealing from worker-side call sites (reclaimWait); expired
	// epochs then seal inside the round barrier via sealExpired.
	deferSeal bool

	// stats, guarded by mu; snapshots are taken while workers are quiescent.
	sealed          uint64
	records         uint64
	trainSpans      uint64
	forcedSeals     uint64
	forcedWaitNanos uint64
	sizeHist        obs.Histogram
	lagHist         obs.Histogram
}

// NewEpochBoard creates a board whose durable marker lives at markerOff (one
// 8-byte word; the caller provides a 64 B line). epochNanos of 0 selects
// DefaultEpochNanos. The marker starts at zero — no epoch sealed — which the
// caller must have made durable (fresh engines allocate it zeroed; recovery
// resets it after consuming the old value).
func NewEpochBoard(space pmem.Space, markerOff, epochNanos uint64) *EpochBoard {
	if epochNanos == 0 {
		epochNanos = DefaultEpochNanos
	}
	return &EpochBoard{space: space, markerOff: markerOff, epochNanos: epochNanos}
}

// EpochNanos returns the configured epoch length.
func (b *EpochBoard) EpochNanos() uint64 { return b.epochNanos }

// epochOf maps a virtual time to its epoch id (ids start at 1; 0 means "no
// epoch" in the marker).
func (b *EpochBoard) epochOf(v uint64) uint64 { return v/b.epochNanos + 1 }

// EnterGroup switches the board into deterministic group mode: worker-side
// slot reclaims stop sealing (the round barrier seals instead). Must be
// called while workers are quiescent.
func (b *EpochBoard) EnterGroup() { b.deferSeal = true }

// LeaveGroup reverts EnterGroup.
func (b *EpochBoard) LeaveGroup() { b.deferSeal = false }

// enlist assigns the publishing record its virtual time's epoch and stores
// the record's flush obligations for the seal. The span slices are copied.
//
// A publisher whose clock lags the sealed marker (its own epoch already
// sealed) is handled per mode. Free-running workers future-date the record
// into the first unsealed epoch: drifted clocks keep coalescing into shared
// epochs, and nothing ever stalls on the future boundary because a
// free-running reclaimer seals on the spot. In deterministic group mode a
// future-dated epoch would pin the laggard's slot reclaims to the bounded
// timeout — the fastest clock in the system — so enlist instead returns 0
// and records nothing: the caller drains the record per-commit, keeping
// laggards (rare there; round barriers hold clocks together) independent of
// the leaders' clocks.
func (b *EpochBoard) enlist(clk *sim.Clock, recSpans, dataSpans []pmem.Span) uint64 {
	v := clk.Nanos()
	b.mu.Lock()
	id := b.epochOf(v)
	if id <= b.marker {
		if b.deferSeal {
			b.mu.Unlock()
			return 0
		}
		id = b.marker + 1
	}
	p := b.pendingFor(id)
	if len(p.pubV) == 0 {
		p.firstV = v
	}
	p.pubV = append(p.pubV, v)
	p.recSpans = append(p.recSpans, recSpans...)
	p.dataSpans = append(p.dataSpans, dataSpans...)
	b.records++
	b.mu.Unlock()
	return id
}

// enlistData adds deferred tuple-flush spans to an already-published
// record's epoch. If the epoch sealed in the meantime (another worker's
// virtual time crossed its boundary while this publisher was applying heap
// writes), the spans are flushed directly — they were due at that seal, and
// re-opening a sealed id would regress the marker.
func (b *EpochBoard) enlistData(clk *sim.Clock, epoch uint64, spans []pmem.Span) {
	if len(spans) == 0 {
		return
	}
	b.mu.Lock()
	if epoch <= b.marker {
		b.space.CLWBTrain(clk, spans)
		b.mu.Unlock()
		return
	}
	p := b.pendingFor(epoch)
	p.dataSpans = append(p.dataSpans, spans...)
	b.mu.Unlock()
}

// pendingFor returns (creating if needed) the open epoch with the given id,
// keeping b.pending sorted ascending. Caller holds b.mu.
func (b *EpochBoard) pendingFor(id uint64) *pendingEpoch {
	for i := len(b.pending) - 1; i >= 0; i-- {
		if b.pending[i].id == id {
			return b.pending[i]
		}
		if b.pending[i].id < id {
			break
		}
	}
	p := &pendingEpoch{id: id}
	b.pending = append(b.pending, p)
	for i := len(b.pending) - 1; i > 0 && b.pending[i-1].id > id; i-- {
		b.pending[i], b.pending[i-1] = b.pending[i-1], b.pending[i]
	}
	return p
}

// sealExpired seals, in ascending id order, every open epoch whose boundary
// lies behind the caller's virtual time — the lazy leader step run by each
// publisher after it enlists.
func (b *EpochBoard) sealExpired(clk *sim.Clock, tr *obs.WorkerTracer) {
	if len(b.pending) == 0 { // unsynchronized peek: publishers race to help, the lock below decides
		return
	}
	b.mu.Lock()
	b.sealUpToLocked(clk, tr, b.epochOf(clk.Nanos())-1)
	b.mu.Unlock()
}

// SealAll drains every open epoch (clean shutdown, quiesce points, the end
// of a measured benchmark phase).
func (b *EpochBoard) SealAll(clk *sim.Clock, tr *obs.WorkerTracer) {
	b.mu.Lock()
	b.sealUpToLocked(clk, tr, ^uint64(0))
	b.mu.Unlock()
}

// reclaimWait resolves the group-commit slot-reclaim hazard: the calling
// worker needs to reclaim a log slot whose record belongs to epoch id, which
// is not sealed yet — overwriting it before the seal would void the epoch's
// durability. The reclaimer becomes the epoch's leader and seals through id
// on the spot: sealing early is always permitted (the boundary bounds an
// epoch's lifetime from above) and strictly better than stalling. In
// deterministic group mode worker-side sealing would race the round barrier,
// so the worker instead advances to the epoch boundary — the bounded
// timeout — and its own commit tail, then past the boundary, seals the epoch
// in canonical order (sealExpired). Returns the virtual nanoseconds the
// reclaim cost; the caller attributes them to the group-wait phase.
func (b *EpochBoard) reclaimWait(clk *sim.Clock, tr *obs.WorkerTracer, id uint64) uint64 {
	b.mu.Lock()
	if id <= b.marker {
		b.mu.Unlock()
		return 0
	}
	start := clk.Nanos()
	b.forcedSeals++
	if b.deferSeal {
		if bound := id * b.epochNanos; bound > start {
			clk.Advance(bound - start)
		}
	} else {
		b.sealUpToLocked(clk, tr, id)
	}
	waited := clk.Nanos() - start
	b.forcedWaitNanos += waited
	b.mu.Unlock()
	return waited
}

// sealUpToLocked seals every open epoch with id <= upTo, ascending. Caller
// holds b.mu.
func (b *EpochBoard) sealUpToLocked(clk *sim.Clock, tr *obs.WorkerTracer, upTo uint64) {
	n := 0
	for n < len(b.pending) && b.pending[n].id <= upTo {
		b.sealOneLocked(clk, tr, b.pending[n])
		n++
	}
	if n > 0 {
		b.pending = append(b.pending[:0], b.pending[n:]...)
	}
}

// sealOneLocked is the epoch drain itself. Order matters for crash
// atomicity: record trains, fence, marker publish, fence, data trains,
// fence. Once the marker covers the epoch, every record needed to replay it
// is durable; the data trains that follow are then recoverable even when the
// crash interrupts them mid-train.
func (b *EpochBoard) sealOneLocked(clk *sim.Clock, tr *obs.WorkerTracer, p *pendingEpoch) {
	startV := clk.Nanos()
	if len(p.recSpans) > 0 {
		b.space.CLWBTrain(clk, p.recSpans)
	}
	b.space.SFence(clk)
	b.space.WriteU64(clk, b.markerOff, p.id)
	b.space.CLWB(clk, b.markerOff, 8)
	b.space.SFence(clk)
	if len(p.dataSpans) > 0 {
		b.space.CLWBTrain(clk, p.dataSpans)
		b.space.SFence(clk)
	}
	b.marker = p.id

	b.sealed++
	b.trainSpans += uint64(len(p.recSpans) + len(p.dataSpans))
	b.sizeHist.Observe(uint64(len(p.pubV)))
	sealV := clk.Nanos()
	for _, v := range p.pubV {
		// Publish times come from other workers' clocks; free-running clocks
		// drift apart, so a seal can sit "before" a publish. Clamp to zero.
		if sealV > v {
			b.lagHist.Observe(sealV - v)
		} else {
			b.lagHist.Observe(0)
		}
	}
	if tr != nil {
		tr.Span(obs.EvEpochSeal, startV, sealV, p.id, uint64(len(p.pubV)))
	}
}

// Marker returns the highest sealed epoch id (the volatile mirror of the
// durable marker word).
func (b *EpochBoard) Marker() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.marker
}

// Stats snapshots the board's observability gauges.
func (b *EpochBoard) Stats() obs.EpochStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return obs.EpochStats{
		Sealed:          b.sealed,
		Pending:         uint64(len(b.pending)),
		Records:         b.records,
		TrainSpans:      b.trainSpans,
		ForcedSeals:     b.forcedSeals,
		ForcedWaitNanos: b.forcedWaitNanos,
		EpochSize:       b.sizeHist.Dump(),
		DurableLag:      b.lagHist.Dump(),
	}
}

// ResetStats zeroes the board's gauges (between benchmark phases); open
// epochs and the marker are untouched.
func (b *EpochBoard) ResetStats() {
	b.mu.Lock()
	b.sealed, b.records, b.trainSpans = 0, 0, 0
	b.forcedSeals, b.forcedWaitNanos = 0, 0
	b.sizeHist.Reset()
	b.lagHist.Reset()
	b.mu.Unlock()
}
