// Package wal implements Falcon's redo logging (paper §4.3, §5.2.2).
//
// Each worker thread owns a small log window: a circular set of K transaction
// slots holding the redo log (= the write set) of the K most recent
// transactions. The window is written through the simulated cache and — this
// is the paper's central observation — never explicitly flushed: under
// persistent cache (eADR) the stores are durable the moment they execute, and
// because the window is small and constantly reused, its lines stay
// cache-resident and generate no NVM media traffic at all.
//
// The same structure doubles as the classic flushed redo log used by the Inp
// baseline: with Flush set, Commit issues clwb over the whole record. The
// record bytes are sequential, so those flushes merge into full-block media
// writes — the log path of a conventional NVM engine.
//
// Records larger than a slot spill into a per-slot overflow region; overflow
// bytes are flushed at commit, modelling the paper's Fig. 12 regime where
// oversized transactions erode the small-log-window advantage.
package wal

import (
	"encoding/binary"
	"hash/crc32"
	"sort"

	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// DisableChecksumVerify turns off CRC verification in ReadRecords. It exists
// only so tests can demonstrate what a checksum-less build mis-replays; it
// must never be set outside a test.
var DisableChecksumVerify bool

// Transaction-slot states (durable header word).
const (
	// StateFree marks a never-used or released slot.
	StateFree uint64 = 0
	// StateUncommitted marks an in-progress transaction; its ops are ignored
	// by recovery.
	StateUncommitted uint64 = 1
	// StateCommitted marks a durably committed transaction; recovery replays
	// its ops (idempotently, guarded by tuple timestamps).
	StateCommitted uint64 = 2
	// StatePublished marks a group-commit record at its publish point: the
	// transaction's conflict window has closed but its durability epoch may
	// not be sealed yet. Recovery replays it like StateCommitted under
	// persistent cache (eADR); under ADR only when the durable epoch marker
	// covers its epoch — the per-epoch all-or-nothing gate.
	StatePublished uint64 = 3
)

// Op types.
const (
	// OpUpdate is an in-place field update: Data overwrites payload bytes
	// [Off, Off+len(Data)) of (Table, Slot).
	OpUpdate uint8 = 1
	// OpInsert installs a fresh tuple: Data is the full payload and Key is
	// the index key.
	OpInsert uint8 = 2
	// OpDelete marks (Table, Slot) deleted and removes Key from the index.
	OpDelete uint8 = 3
)

const (
	hdrState   = 0
	hdrTID     = 8
	hdrNops    = 16 // u32
	hdrLen     = 20 // u32: payload bytes used in the slot
	hdrExtLen  = 24 // u32: payload bytes continued in the overflow region
	hdrCRC     = 28 // u32: CRC32 (IEEE) over tid, payload, count words, and epoch
	hdrEpoch   = 32 // u64: durability epoch id (0 on the per-commit path)
	hdrBytes   = 64
	opHdrBytes = 1 + 1 + 2 + 8 + 8 + 4 + 4 // type, table, pad, slot, key, off, len
)

// Config sizes one thread's window.
type Config struct {
	// Slots is the number of transaction slots (the paper uses 2–3).
	Slots int
	// SlotBytes is the redo capacity of one slot, header included.
	SlotBytes int
	// OverflowBytes is the per-slot spill capacity for oversized
	// transactions.
	OverflowBytes int
	// Flush selects the classic flushed-log behaviour (Inp baseline):
	// Commit clwbs the whole record.
	Flush bool
}

func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 3
	}
	if c.SlotBytes == 0 {
		c.SlotBytes = 4096
	}
	return c
}

// BytesNeeded returns the persistent footprint of one thread's window.
func BytesNeeded(c Config) uint64 {
	c = c.withDefaults()
	return uint64(c.Slots) * uint64(c.SlotBytes+c.OverflowBytes)
}

// Window is one thread's log window. It is single-writer (the owning
// thread); recovery reads it via ReadRecords.
type Window struct {
	space pmem.Space
	base  uint64
	cfg   Config
	cur   int // round-robin slot cursor (volatile; rebuilt trivially)
	// stats accumulates the window's observability gauges. Single-writer
	// like the window itself: only the owning thread updates it, and
	// snapshots are taken while workers are quiescent.
	stats obs.WALStats
	// tr, when armed, receives slot-claim and flush-train trace events.
	// Owned by the same worker goroutine as the window (single-writer); nil
	// when tracing is off, so the fast path pays one pointer test.
	tr *obs.WorkerTracer
	// contend, when armed, receives flush-line and group-wait attribution
	// events (see ContendSink). Same single-owner, one-pointer-test
	// discipline as tr.
	contend ContendSink
	// scratch is the window's reusable header buffer. Headers must be
	// written and parsed as multi-word images (one simulated store or load),
	// so the word-at-a-time Space helpers do not apply; a stack buffer
	// heap-escapes through the Space interface on every call. Safe to share
	// across Begin/Commit/appendOp/ReadOp because the window is single-owner
	// like the rest of its state.
	scratch [40]byte
	// board, when set, enables group commit: Publish enlists records into
	// durability epochs on it and GroupWait backpressures slot reclaims
	// against unsealed epochs. slotEpoch mirrors, per slot, the epoch of the
	// published record occupying it (volatile bookkeeping; 0 = none).
	board     *EpochBoard
	slotEpoch []uint64
}

// SetBoard attaches the shared group-commit epoch board (nil detaches).
// Must be called while the owning worker is quiescent.
func (w *Window) SetBoard(b *EpochBoard) {
	w.board = b
	if b != nil && w.slotEpoch == nil {
		w.slotEpoch = make([]uint64, w.cfg.Slots)
	}
}

// GroupWait is the group-commit backpressure point, called before Begin
// reclaims the next slot: if the slot's previous record belongs to an epoch
// that is not sealed yet, the worker stalls until that epoch's boundary (the
// bounded timeout) and forces the seal. Returns the virtual nanoseconds
// stalled; the caller attributes them to the group-wait phase.
func (w *Window) GroupWait(clk *sim.Clock) uint64 {
	if w.board == nil || w.slotEpoch == nil {
		return 0
	}
	id := w.slotEpoch[w.cur]
	if id == 0 {
		return 0
	}
	n := w.board.reclaimWait(clk, w.tr, id)
	if n > 0 && w.contend != nil {
		w.contend.WALGroupWaitNanos(n)
	}
	return n
}

// ContendSink receives the window's flush-traffic contributions for the
// contention observatory: lines the per-commit drain path issued clwb for,
// and virtual nanoseconds stalled on group-commit slot reclaim. Implemented
// by the observatory's per-worker recorder; like the window itself it is
// single-owner, so implementations need no synchronisation.
type ContendSink interface {
	WALFlushLines(lines uint64)
	WALGroupWaitNanos(nanos uint64)
}

// SetTrace arms (or with nil, disarms) trace-event capture on the window.
// Must be called while the owning worker is quiescent.
func (w *Window) SetTrace(tr *obs.WorkerTracer) { w.tr = tr }

// SetContend arms (or with nil, disarms) flush-traffic attribution on the
// window. Must be called while the owning worker is quiescent.
func (w *Window) SetContend(sink ContendSink) { w.contend = sink }

// Stats returns a copy of the window's accumulated gauges, with the slot
// capacity filled in as the occupancy denominator.
func (w *Window) Stats() obs.WALStats {
	s := w.stats
	s.SlotBytes = uint64(w.cfg.SlotBytes)
	return s
}

// ResetStats zeroes the window's gauges (between benchmark phases).
func (w *Window) ResetStats() { w.stats = obs.WALStats{} }

// NewWindow creates a window at base. The caller provides a region of
// BytesNeeded(cfg) bytes. Slots are formatted as StateFree.
func NewWindow(space pmem.Space, base uint64, cfg Config) *Window {
	cfg = cfg.withDefaults()
	w := &Window{space: space, base: base, cfg: cfg}
	for i := 0; i < cfg.Slots; i++ {
		space.BulkWriteU64(w.slotOff(i)+hdrState, 0)
	}
	return w
}

// OpenWindow reattaches to an existing window (post-recovery reuse; contents
// are consumed by ReadRecords first, then the window is reformatted).
func OpenWindow(space pmem.Space, base uint64, cfg Config) *Window {
	cfg = cfg.withDefaults()
	return &Window{space: space, base: base, cfg: cfg}
}

func (w *Window) slotOff(i int) uint64 {
	return w.base + uint64(i)*uint64(w.cfg.SlotBytes)
}

func (w *Window) ovfOff(i int) uint64 {
	return w.base + uint64(w.cfg.Slots)*uint64(w.cfg.SlotBytes) + uint64(i)*uint64(w.cfg.OverflowBytes)
}

// Begin claims the next slot round-robin and opens a transaction log with
// the given TID. Claiming overwrites the previous record in that slot, which
// is safe: any transaction K slots back is either aborted or committed with
// all its updates already durable (persistent cache), so its log is dead
// (§4.2 "lifetime of logs").
func (w *Window) Begin(clk *sim.Clock, tid uint64) *TxnLog {
	i := w.cur
	w.cur = (w.cur + 1) % w.cfg.Slots
	w.stats.Begins++
	wrapped := w.stats.Begins > uint64(w.cfg.Slots)
	if wrapped {
		w.stats.Wraps++ // reclaiming a previously used slot: the window cycled
	}
	if w.tr != nil {
		var wr uint64
		if wrapped {
			wr = 1
		}
		w.tr.Instant(obs.EvWALClaim, clk.Nanos(), uint64(i), wr)
	}
	if w.slotEpoch != nil {
		w.slotEpoch[i] = 0 // the previous record's epoch was sealed by GroupWait
	}
	l := &TxnLog{w: w, slot: i, pos: hdrBytes}
	hdr := w.scratch[:32]
	for b := range hdr {
		hdr[b] = 0
	}
	binary.LittleEndian.PutUint64(hdr[hdrState:], StateUncommitted)
	binary.LittleEndian.PutUint64(hdr[hdrTID:], tid)
	// nops/len/extlen/crc cleared; written at commit.
	w.space.Write(clk, w.slotOff(i), hdr[:])
	// The record checksum is maintained incrementally host-side (it is
	// engine bookkeeping, not a simulated memory access): seeded over the
	// TID, extended by every appended byte, finalized over the count words.
	l.crc = crc32.Update(0, crc32.IEEETable, hdr[hdrTID:hdrTID+8])
	return l
}

// TxnLog is the active transaction's redo log / write set.
type TxnLog struct {
	w      *Window
	slot   int
	pos    int // next write offset within the slot region
	extPos int // bytes used in the overflow region
	nops   int
	full   bool   // ran out of overflow space; ops beyond this are lost
	crc    uint32 // running record checksum (host-side, published at commit)
}

// Overflowed reports whether the record spilled past the slot into the
// overflow region.
func (l *TxnLog) Overflowed() bool { return l.extPos > 0 }

// Full reports whether even the overflow region was exhausted. The engine
// must abort such transactions: their redo is incomplete.
func (l *TxnLog) Full() bool { return l.full }

// TID returns the owning transaction id (read back from the header line —
// a cache hit).
func (l *TxnLog) TID(clk *sim.Clock) uint64 {
	return l.w.space.ReadU64(clk, l.w.slotOff(l.slot)+hdrTID)
}

// append writes raw bytes at the log cursor, spilling to overflow as needed.
// It returns the logical record offset of the first byte written, or -1 when
// space ran out.
func (l *TxnLog) append(clk *sim.Clock, b []byte) int {
	if l.full {
		return -1
	}
	logical := l.pos - hdrBytes + l.extPos
	rem := len(b)
	src := b
	// Fill the slot region first.
	if l.pos < l.w.cfg.SlotBytes {
		n := l.w.cfg.SlotBytes - l.pos
		if n > rem {
			n = rem
		}
		l.w.space.Write(clk, l.w.slotOff(l.slot)+uint64(l.pos), src[:n])
		l.pos += n
		src = src[n:]
		rem -= n
	}
	if rem > 0 {
		if l.extPos+rem > l.w.cfg.OverflowBytes {
			l.full = true
			l.w.stats.FullRejects++
			return -1
		}
		l.w.space.Write(clk, l.w.ovfOff(l.slot)+uint64(l.extPos), src)
		l.extPos += rem
	}
	l.crc = crc32.Update(l.crc, crc32.IEEETable, b)
	return logical
}

// appendOp serializes one op, returning its logical record position or -1
// when the window (including overflow) is exhausted. Data may be nil
// (deletes).
func (l *TxnLog) appendOp(clk *sim.Clock, typ, table uint8, slot, key uint64, off int, data []byte) int {
	hdr := l.w.scratch[:opHdrBytes]
	hdr[0] = typ
	hdr[1] = table
	hdr[2], hdr[3] = 0, 0 // reserved bytes: the buffer is reused, keep them zero
	binary.LittleEndian.PutUint64(hdr[4:], slot)
	binary.LittleEndian.PutUint64(hdr[12:], key)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(off))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(data)))
	pos := l.append(clk, hdr)
	if pos < 0 {
		return -1
	}
	if len(data) > 0 && l.append(clk, data) < 0 {
		return -1
	}
	l.nops++
	return pos
}

// AppendUpdate logs an in-place field update, returning the op's record
// position (-1 on overflow exhaustion). The logged value is the post-image,
// which keeps replay idempotent (§5.2.2: non-idempotent operations must be
// converted by recording updated values).
func (l *TxnLog) AppendUpdate(clk *sim.Clock, table uint8, slot, key uint64, off int, data []byte) int {
	return l.appendOp(clk, OpUpdate, table, slot, key, off, data)
}

// AppendInsert logs a tuple insert with its full payload.
func (l *TxnLog) AppendInsert(clk *sim.Clock, table uint8, slot, key uint64, payload []byte) int {
	return l.appendOp(clk, OpInsert, table, slot, key, 0, payload)
}

// AppendDelete logs a tuple delete.
func (l *TxnLog) AppendDelete(clk *sim.Clock, table uint8, slot, key uint64) int {
	return l.appendOp(clk, OpDelete, table, slot, key, 0, nil)
}

// commitStats accumulates the window gauges common to both commit flavours.
func (l *TxnLog) commitStats() {
	recBytes := uint64(l.pos-hdrBytes) + uint64(l.extPos)
	l.w.stats.Commits++
	l.w.stats.BytesLogged += recBytes
	if recBytes > l.w.stats.MaxRecordBytes {
		l.w.stats.MaxRecordBytes = recBytes
	}
	if l.extPos > 0 {
		l.w.stats.Overflows++
		l.w.stats.OverflowBytes += uint64(l.extPos)
	}
}

// publishHeader writes the record's count image and state word. Counts,
// checksum, and epoch share the header cache line and publish in one store:
// nops, slot length, overflow length, CRC, epoch — the CRC finalized over the
// three count words and the epoch word, so a torn or flipped count (or a
// record attributed to the wrong epoch) is caught by the same checksum that
// protects the payload. No fence: the caller decides the drain.
func (l *TxnLog) publishHeader(clk *sim.Clock, state, epoch uint64) {
	base := l.w.slotOff(l.slot)
	cnt := l.w.scratch[:24]
	binary.LittleEndian.PutUint32(cnt[0:], uint32(l.nops))
	binary.LittleEndian.PutUint32(cnt[4:], uint32(l.pos-hdrBytes))
	binary.LittleEndian.PutUint32(cnt[8:], uint32(l.extPos))
	binary.LittleEndian.PutUint64(cnt[16:], epoch)
	crc := crc32.Update(l.crc, crc32.IEEETable, cnt[0:12])
	crc = crc32.Update(crc, crc32.IEEETable, cnt[16:24])
	binary.LittleEndian.PutUint32(cnt[12:], crc)
	l.w.space.Write(clk, base+hdrNops, cnt)
	l.w.space.WriteU64(clk, base+hdrState, state)
}

// pendingSpans appends the byte ranges this record must force to the media
// to be durable: the whole record region when the window is a flushed log
// (classic NVM logging — the record is contiguous, so the clwbs merge into
// full blocks), and the overflow bytes whenever present (they are written
// once and not reused, so they will not stay cached; eagerly flushing them is
// the cost that erodes the small-log-window benefit for oversized
// transactions). Shared by the per-commit drain and the epoch seal's train
// assembly.
func (l *TxnLog) pendingSpans(spans []pmem.Span) []pmem.Span {
	if l.w.cfg.Flush {
		spans = append(spans, pmem.Span{Off: l.w.slotOff(l.slot), N: l.pos})
	}
	if l.extPos > 0 {
		spans = append(spans, pmem.Span{Off: l.w.ovfOff(l.slot), N: l.extPos})
	}
	return spans
}

// drainPending is the per-commit durable point: clwb over the record's
// pending spans, then one fence that both orders the state publish and
// drains the flushes. A single trailing fence replaces the per-site fences
// the commit path used to issue — fences are pure cost in the simulator
// (durability depends only on write-back timing), so consolidating them is
// semantics-preserving.
func (l *TxnLog) drainPending(clk *sim.Clock) {
	var buf [2]pmem.Span
	spans := l.pendingSpans(buf[:0])
	if len(spans) == 0 {
		l.w.space.SFence(clk)
		return
	}
	flushStart := clk.Nanos()
	var lines uint64
	for _, sp := range spans {
		l.w.space.CLWB(clk, sp.Off, sp.N)
		lines += uint64(sp.Lines())
	}
	l.w.space.SFence(clk)
	if l.w.tr != nil {
		l.w.tr.Span(obs.EvFlushTrain, flushStart, clk.Nanos(), lines, 0)
	}
	if l.w.contend != nil {
		l.w.contend.WALFlushLines(lines)
	}
}

// Commit publishes the record — op counts, then the COMMITTED state — and
// drains it: from the trailing fence the transaction is durable (Algorithm 1
// line 2). This is the per-commit path; group commit uses Publish instead.
func (l *TxnLog) Commit(clk *sim.Clock) {
	l.commitStats()
	l.publishHeader(clk, StateCommitted, 0)
	l.drainPending(clk)
}

// Publish is the group-commit publish point: the record becomes visible
// (StatePublished, tagged with its durability epoch) and its record spans
// enlist on the epoch board, but nothing is fenced or flushed here. The
// durable point comes when the epoch seals. The caller enlists its deferred
// tuple spans via EnlistData and then plays lazy leader with SealExpired.
// Returns the epoch id the record joined — or 0 when the publisher's clock
// lags the sealed marker, in which case the record is drained per-commit on
// the spot (it is durable from the return, like the classic Commit path) and
// never waits on a leader.
func (l *TxnLog) Publish(clk *sim.Clock) uint64 {
	l.commitStats()
	var buf [2]pmem.Span
	epoch := l.w.board.enlist(clk, l.pendingSpans(buf[:0]), nil)
	l.publishHeader(clk, StatePublished, epoch)
	l.w.slotEpoch[l.slot] = epoch
	if epoch == 0 {
		l.drainPending(clk)
	}
	return epoch
}

// EnlistData adds deferred tuple-flush spans to the record's epoch (they
// ride the seal's data trains, after the marker publish).
func (l *TxnLog) EnlistData(clk *sim.Clock, epoch uint64, spans []pmem.Span) {
	l.w.board.enlistData(clk, epoch, spans)
}

// SealExpired is the lazy leader step: the worker seals every epoch whose
// boundary its own virtual time has passed, releasing those epochs'
// followers. Publishers call it once per commit, after EnlistData.
func (w *Window) SealExpired(clk *sim.Clock) {
	if w.board != nil {
		w.board.sealExpired(clk, w.tr)
	}
}

// Abort releases the slot without publishing (state back to FREE).
func (l *TxnLog) Abort(clk *sim.Clock) {
	l.w.stats.Aborts++
	l.w.space.WriteU64(clk, l.w.slotOff(l.slot)+hdrState, StateFree)
	l.w.space.SFence(clk)
}

// Op is a deserialized redo operation.
type Op struct {
	Type  uint8
	Table uint8
	Slot  uint64
	Key   uint64
	Off   int
	Data  []byte
}

// ReadOp reads back the op at logical record offset pos (as returned during
// execution) — used by the engine at apply time, reading the write set from
// the window (cache hits).
func (l *TxnLog) ReadOp(clk *sim.Clock, pos int) (Op, int) {
	r := recordReader{space: l.w.space, slotOff: l.w.slotOff(l.slot), ovfOff: l.w.ovfOff(l.slot),
		slotCap: l.w.cfg.SlotBytes - hdrBytes, scratch: &l.w.scratch}
	return r.readOp(clk, pos)
}

// Record is one recovered transaction record.
type Record struct {
	TID   uint64
	State uint64
	// Epoch is the durability epoch the record published into (0 on the
	// per-commit path). Recovery under ADR replays a StatePublished record
	// only when the durable epoch marker covers this id.
	Epoch uint64
	Ops   []Op
}

// recordReader reads record bytes across the slot/overflow split. When crc
// is non-nil every byte read streams through the running checksum — record
// verification costs no simulated reads beyond the parse itself.
type recordReader struct {
	space   pmem.Space
	slotOff uint64 // data begins at slotOff+hdrBytes
	ovfOff  uint64
	slotCap int // payload bytes that fit in the slot region
	crc     *uint32
	// scratch receives op headers; the caller provides a long-lived buffer
	// so each parsed op does not heap-allocate one (see Window.scratch).
	scratch *[40]byte
}

func (r recordReader) read(clk *sim.Clock, pos int, dst []byte) {
	full := dst
	n := len(dst)
	if pos < r.slotCap {
		k := r.slotCap - pos
		if k > n {
			k = n
		}
		r.space.Read(clk, r.slotOff+hdrBytes+uint64(pos), dst[:k])
		pos += k
		dst = dst[k:]
		n -= k
	}
	if n > 0 {
		r.space.Read(clk, r.ovfOff+uint64(pos-r.slotCap), dst)
	}
	if r.crc != nil {
		*r.crc = crc32.Update(*r.crc, crc32.IEEETable, full)
	}
}

func (r recordReader) readOp(clk *sim.Clock, pos int) (Op, int) {
	op, pos, _ := r.readOpBounded(clk, pos, 1<<31-1)
	return op, pos
}

// readOpBounded parses one op, refusing (ok=false) any header or payload
// that would extend past limit — the defence that keeps a torn or corrupt
// record from driving a huge allocation or an out-of-range read.
func (r recordReader) readOpBounded(clk *sim.Clock, pos, limit int) (op Op, next int, ok bool) {
	if pos+opHdrBytes > limit {
		return Op{}, pos, false
	}
	hdr := r.scratch[:opHdrBytes]
	r.read(clk, pos, hdr)
	op = Op{
		Type:  hdr[0],
		Table: hdr[1],
		Slot:  binary.LittleEndian.Uint64(hdr[4:]),
		Key:   binary.LittleEndian.Uint64(hdr[12:]),
		Off:   int(binary.LittleEndian.Uint32(hdr[20:])),
	}
	dataLen := int(binary.LittleEndian.Uint32(hdr[24:]))
	pos += opHdrBytes
	if dataLen > 0 {
		if pos+dataLen > limit {
			return Op{}, pos, false
		}
		op.Data = make([]byte, dataLen)
		r.read(clk, pos, op.Data)
		pos += dataLen
	}
	return op, pos, true
}

// ScanReport classifies what a window scan saw. Torn and corrupt records are
// skipped (treated as uncommitted — the transaction's durable point was
// never reached intact), never replayed and never fatal: recovery proceeds
// on the surviving prefix and reports the damage.
type ScanReport struct {
	// Committed counts well-formed committed records returned for replay.
	Committed int
	// Torn counts committed-state slots whose structure is inconsistent
	// (lengths out of range, ops past the record end) — the signature of a
	// record that lost lines to a torn write or an unflushed cache.
	Torn int
	// Corrupt counts structurally valid records whose CRC32 failed — bit
	// damage the structure checks cannot see.
	Corrupt int
}

// Add sums o into r (aggregation across windows).
func (r *ScanReport) Add(o ScanReport) {
	r.Committed += o.Committed
	r.Torn += o.Torn
	r.Corrupt += o.Corrupt
}

// ReadRecords scans one thread's window (post-crash image) and returns the
// committed records plus a classification of what it skipped. Uncommitted
// and free slots are skipped silently — those transactions never touched any
// tuple (Algorithm 1 orders the state write before any in-place update).
// Committed slots are validated structurally and against their CRC before
// being returned; failures are classified in the report, never returned as
// records and never as an error — a damaged tail must not block recovery of
// the records that did survive.
func ReadRecords(space pmem.Space, clk *sim.Clock, base uint64, cfg Config) ([]Record, ScanReport) {
	cfg = cfg.withDefaults()
	w := &Window{space: space, base: base, cfg: cfg}
	var out []Record
	var rep ScanReport
	slotCap := cfg.SlotBytes - hdrBytes
	for i := 0; i < cfg.Slots; i++ {
		var hdr [40]byte
		space.Read(clk, w.slotOff(i), hdr[:])
		state := binary.LittleEndian.Uint64(hdr[hdrState:])
		if state != StateCommitted && state != StatePublished {
			continue
		}
		tid := binary.LittleEndian.Uint64(hdr[hdrTID:])
		nops := int(binary.LittleEndian.Uint32(hdr[hdrNops:]))
		slotLen := int(binary.LittleEndian.Uint32(hdr[hdrLen:]))
		extLen := int(binary.LittleEndian.Uint32(hdr[hdrExtLen:]))
		epoch := binary.LittleEndian.Uint64(hdr[hdrEpoch:])
		if slotLen < 0 || slotLen > slotCap || extLen < 0 || extLen > cfg.OverflowBytes ||
			nops < 0 || nops > (slotLen+extLen)/opHdrBytes {
			rep.Torn++
			continue
		}
		total := slotLen + extLen
		crc := crc32.Update(0, crc32.IEEETable, hdr[hdrTID:hdrTID+8])
		r := recordReader{space: space, slotOff: w.slotOff(i), ovfOff: w.ovfOff(i), slotCap: slotCap, crc: &crc, scratch: &w.scratch}
		rec := Record{TID: tid, State: state, Epoch: epoch}
		pos, torn := 0, false
		for k := 0; k < nops; k++ {
			var op Op
			var ok bool
			op, pos, ok = r.readOpBounded(clk, pos, total)
			if !ok {
				torn = true
				break
			}
			rec.Ops = append(rec.Ops, op)
		}
		if torn || pos != total {
			rep.Torn++
			continue
		}
		var cnt [20]byte
		binary.LittleEndian.PutUint32(cnt[0:], uint32(nops))
		binary.LittleEndian.PutUint32(cnt[4:], uint32(slotLen))
		binary.LittleEndian.PutUint32(cnt[8:], uint32(extLen))
		binary.LittleEndian.PutUint64(cnt[12:], epoch)
		crc = crc32.Update(crc, crc32.IEEETable, cnt[:])
		if !DisableChecksumVerify && crc != binary.LittleEndian.Uint32(hdr[hdrCRC:]) {
			rep.Corrupt++
			continue
		}
		rep.Committed++
		out = append(out, rec)
	}
	return out, rep
}

// Reset reformats the window's slot states to FREE through the cache
// (post-recovery reuse; BulkWrite would go stale against resident lines).
func (w *Window) Reset(clk *sim.Clock) {
	for i := 0; i < w.cfg.Slots; i++ {
		w.space.WriteU64(clk, w.slotOff(i)+hdrState, 0)
	}
	w.space.SFence(clk)
	w.cur = 0
	for i := range w.slotEpoch {
		w.slotEpoch[i] = 0
	}
}

// MaxTID returns the largest TID recorded in any slot header of the window,
// committed or not. Every transaction writes its TID at Begin, so the
// maximum across all windows is the newest TID ever issued — what recovery
// feeds to TIDGen.Restore.
func MaxTID(space pmem.Space, clk *sim.Clock, base uint64, cfg Config) uint64 {
	cfg = cfg.withDefaults()
	w := &Window{space: space, base: base, cfg: cfg}
	var max uint64
	for i := 0; i < cfg.Slots; i++ {
		var hdr [16]byte
		space.Read(clk, w.slotOff(i), hdr[:])
		state := binary.LittleEndian.Uint64(hdr[:8])
		tid := binary.LittleEndian.Uint64(hdr[8:])
		if state != StateFree && tid > max {
			max = tid
		}
	}
	return max
}

// SortRecords orders records by TID ascending — the replay order. Tuple
// timestamp guards make replay idempotent, but ordering keeps the final
// state equal to the newest committed write even when several surviving
// records touch the same tuple.
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].TID < recs[j].TID })
}
