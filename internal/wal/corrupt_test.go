package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// walImage holds a post-crash raw image of one window region plus the records
// that were durably committed into it, keyed by TID.
type walImage struct {
	cfg  Config
	img  []byte
	want map[uint64]Record
}

// buildImage commits txns transactions into a fresh window, crashes, and
// snapshots the raw media bytes of the window region. Records are generated
// from seed; the last cfg.Slots commits are the survivors, but want keeps
// every committed TID so containment checks work under wrap-around.
func buildImage(seed int64, cfg Config, txns int) walImage {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 16 << 20})
	w := NewWindow(sys.Space, 0, cfg)
	clk := sim.NewClock()
	want := make(map[uint64]Record)
	for tid := uint64(1); tid <= uint64(txns); tid++ {
		l := w.Begin(clk, tid)
		rec := Record{TID: tid, State: StateCommitted}
		nops := rng.Intn(4) + 1
		for i := 0; i < nops; i++ {
			op := Op{
				Type:  uint8(rng.Intn(3) + 1),
				Table: uint8(rng.Intn(4)),
				Slot:  uint64(rng.Intn(1 << 16)),
				Key:   uint64(rng.Int63()),
			}
			switch op.Type {
			case OpUpdate:
				op.Off = rng.Intn(64)
				op.Data = make([]byte, rng.Intn(120)+1)
				rng.Read(op.Data)
				l.AppendUpdate(clk, op.Table, op.Slot, op.Key, op.Off, op.Data)
			case OpInsert:
				op.Data = make([]byte, rng.Intn(300)+1)
				rng.Read(op.Data)
				l.AppendInsert(clk, op.Table, op.Slot, op.Key, op.Data)
			default:
				l.AppendDelete(clk, op.Table, op.Slot, op.Key)
			}
			rec.Ops = append(rec.Ops, op)
		}
		l.Commit(clk)
		want[tid] = rec
	}
	img := make([]byte, BytesNeeded(cfg))
	sys.Crash().Dev.RawRead(0, img)
	return walImage{cfg: cfg, img: img, want: want}
}

// scan loads a (possibly damaged) image onto a fresh device and parses it.
func (wi walImage) scan(img []byte) ([]Record, ScanReport) {
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 16 << 20})
	sys.Dev.RawWrite(0, img)
	return ReadRecords(sys.Crash().Space, sim.NewClock(), 0, wi.cfg)
}

// checkNoPhantoms fails unless every returned record deep-equals the
// committed record with the same TID: damage may lose records, never invent
// or alter them.
func checkNoPhantoms(t *testing.T, wi walImage, recs []Record, what string) {
	t.Helper()
	for _, r := range recs {
		orig, ok := wi.want[r.TID]
		if !ok {
			t.Fatalf("%s: phantom record TID %d (never committed)", what, r.TID)
		}
		if len(r.Ops) != len(orig.Ops) {
			t.Fatalf("%s: TID %d returned %d ops, committed %d", what, r.TID, len(r.Ops), len(orig.Ops))
		}
		for i, g := range r.Ops {
			o := orig.Ops[i]
			if g.Type != o.Type || g.Table != o.Table || g.Slot != o.Slot ||
				g.Key != o.Key || g.Off != o.Off || !bytes.Equal(g.Data, o.Data) {
				t.Fatalf("%s: TID %d op %d differs from committed original", what, r.TID, i)
			}
		}
	}
}

// TestQuickTruncationNoPhantoms: zeroing an arbitrary suffix of the window —
// the shape of an unflushed tail — must never panic and must never yield a
// record that differs from what was committed.
func TestQuickTruncationNoPhantoms(t *testing.T) {
	f := func(seed int64, cut uint16) bool {
		cfg := Config{Slots: 3, SlotBytes: 512, OverflowBytes: 2 << 10}
		wi := buildImage(seed, cfg, 5)
		img := append([]byte(nil), wi.img...)
		from := int(uint64(cut) % uint64(len(img)))
		for i := from; i < len(img); i++ {
			img[i] = 0
		}
		recs, _ := wi.scan(img)
		checkNoPhantoms(t, wi, recs, "truncation")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomFlipsNeverPanic: arbitrary multi-byte damage anywhere in the
// window must never panic the scanner, and survivors must equal originals.
func TestQuickRandomFlipsNeverPanic(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{Slots: 3, SlotBytes: 512, OverflowBytes: 2 << 10}
		wi := buildImage(seed, cfg, 5)
		rng := rand.New(rand.NewSource(seed ^ 0x51ab))
		img := append([]byte(nil), wi.img...)
		for n := rng.Intn(16) + 1; n > 0; n-- {
			img[rng.Intn(len(img))] ^= byte(rng.Intn(255) + 1)
		}
		recs, _ := wi.scan(img)
		checkNoPhantoms(t, wi, recs, "random flips")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumCatchesEverySingleByteFlip walks every byte the record CRC
// covers — TID, count words, stored CRC, slot payload, and overflow payload —
// flips it, and requires the scanner to reject the record (as torn when the
// structure no longer parses, otherwise as corrupt). One committed record per
// image keeps the accounting exact: after the flip, zero records survive.
func TestChecksumCatchesEverySingleByteFlip(t *testing.T) {
	// SlotBytes 256 gives slotCap 192; the generated insert payloads (up to
	// 300 B) force some seeds to spill into overflow so both regions get
	// walked. Try seeds until one overflows.
	cfg := Config{Slots: 1, SlotBytes: 256, OverflowBytes: 2 << 10}
	var wi walImage
	for seed := int64(1); ; seed++ {
		wi = buildImage(seed, cfg, 1)
		extLen := int(le32(wi.img[hdrExtLen:]))
		if extLen > 0 {
			break
		}
	}
	slotLen := int(le32(wi.img[hdrLen:]))
	extLen := int(le32(wi.img[hdrExtLen:]))
	if recs, rep := wi.scan(wi.img); len(recs) != 1 || rep.Committed != 1 {
		t.Fatalf("pristine image did not parse: %d records, %+v", len(recs), rep)
	}

	ovfOff := cfg.Slots * cfg.SlotBytes // overflow region of slot 0
	var covered []int
	for b := hdrTID; b < hdrCRC+4; b++ { // TID, nops, lengths, stored CRC
		covered = append(covered, b)
	}
	for b := hdrBytes; b < hdrBytes+slotLen; b++ {
		covered = append(covered, b)
	}
	for b := ovfOff; b < ovfOff+extLen; b++ {
		covered = append(covered, b)
	}

	for _, off := range covered {
		for _, flip := range []byte{0x01, 0x80} {
			img := append([]byte(nil), wi.img...)
			img[off] ^= flip
			recs, rep := wi.scan(img)
			if len(recs) != 0 {
				t.Fatalf("flip 0x%02x at byte %d survived: record still returned", flip, off)
			}
			if rep.Torn+rep.Corrupt != 1 {
				t.Fatalf("flip 0x%02x at byte %d not classified: %+v", flip, off, rep)
			}
		}
	}

	// The same flips with verification disabled demonstrate what a
	// checksum-less build would silently replay: at least one structurally
	// valid but wrong record gets through.
	DisableChecksumVerify = true
	defer func() { DisableChecksumVerify = false }()
	leaked := 0
	for _, off := range covered {
		img := append([]byte(nil), wi.img...)
		img[off] ^= 0x01
		recs, _ := wi.scan(img)
		if len(recs) != 0 {
			leaked++
		}
	}
	if leaked == 0 {
		t.Fatal("with checksums disabled no damaged record leaked — the CRC is not what is catching these flips")
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
