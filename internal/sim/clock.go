// Package sim provides the virtual-time framework used by the Falcon
// reproduction.
//
// The paper's evaluation ran on a 48-core machine with real Intel Optane
// persistent memory; this reproduction runs on commodity hardware with no
// persistent memory and possibly a single core. Wall-clock measurements would
// therefore be meaningless. Instead, every simulated hardware event (cache
// hit, cache-line eviction, NVM media read/write, fence, ...) charges a
// calibrated number of virtual nanoseconds to the worker that caused it.
// Throughput is computed from virtual time, so "48 workers" behaves like 48
// hardware threads regardless of the host's core count.
//
// Contention remains meaningful under virtual time because every concurrency
// control algorithm in this system uses a no-wait/abort-retry policy: conflict
// cost manifests as *retried work*, which is charged to the clocks like any
// other work. Cross-thread cache and write-buffer interference is captured
// functionally, because the simulated cache and XPBuffer state is shared.
package sim

// Clock is a per-worker virtual clock. It is owned by exactly one worker
// goroutine and therefore needs no synchronization for Advance; Nanos may be
// read by other goroutines only after the worker has stopped (or through
// Snapshot, which callers must externally order).
type Clock struct {
	nanos uint64
	// shard is the owning worker's id, used by per-worker sharded counters
	// (pmem.Stats) to pick an uncontended counter block. Anonymous clocks
	// (tests, setup, crash flushes) share shard 0.
	shard uint64
	// pad keeps two clocks from sharing a cache line when allocated in a
	// slice; clocks are updated on every simulated event, so false sharing
	// between workers would distort host-side performance.
	_ [6]uint64
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// NewWorkerClock returns a clock at virtual time zero owned by worker w.
// The worker id doubles as the shard hint for per-worker sharded counters.
func NewWorkerClock(w int) *Clock {
	if w < 0 {
		w = 0
	}
	return &Clock{shard: uint64(w)}
}

// ShardID returns the owning worker's shard hint (0 for anonymous or nil
// clocks).
func (c *Clock) ShardID() uint64 {
	if c == nil {
		return 0
	}
	return c.shard
}

// Advance adds ns virtual nanoseconds to the clock.
func (c *Clock) Advance(ns uint64) {
	if c == nil {
		return
	}
	c.nanos += ns
}

// Nanos returns the current virtual time in nanoseconds.
func (c *Clock) Nanos() uint64 {
	if c == nil {
		return 0
	}
	return c.nanos
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.nanos = 0 }

// MaxNanos returns the largest virtual time among the clocks. When a group of
// workers each execute a fixed share of a workload, the slowest clock is the
// virtual completion time of the run.
func MaxNanos(clocks []*Clock) uint64 {
	var max uint64
	for _, c := range clocks {
		if n := c.Nanos(); n > max {
			max = n
		}
	}
	return max
}

// SumNanos returns the total virtual work across the clocks.
func SumNanos(clocks []*Clock) uint64 {
	var sum uint64
	for _, c := range clocks {
		sum += c.Nanos()
	}
	return sum
}

// Throughput converts a committed-operation count and a set of worker clocks
// into operations per virtual second. The completion time of the run is the
// maximum clock value (workers run in parallel in virtual time).
func Throughput(ops uint64, clocks []*Clock) float64 {
	t := MaxNanos(clocks)
	if t == 0 {
		return 0
	}
	return float64(ops) / (float64(t) / 1e9)
}
