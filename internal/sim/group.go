package sim

import (
	"sort"
	"sync"
)

// Group is the deterministic round-barrier scheduler behind worker-parallel
// cells (bulk-synchronous, in the spirit of conservative parallel
// discrete-event simulation).
//
// Workers run as real goroutines, each advancing its own virtual clock
// freely while every access it makes stays in worker-private state (private
// timing caches, a private log window, a private concurrency-control word
// overlay). A worker's crossing into shared simulated state — installing a
// commit, publishing versions, retiring heap slots — is *deferred*: the
// worker packages the crossing as an Attempt and parks in Submit. When every
// live worker of the round has submitted (or left), the last arrival replays
// all attempts in canonical merge order — ascending Attempt.Order, which
// callers derive from (virtual time, worker id) — with every other worker
// parked, then releases the round. The replay is single-threaded and its
// order is a pure function of virtual time, so results are byte-identical
// for any host interleaving and any GOMAXPROCS.
//
// A round therefore spans exactly one transaction attempt per worker: a
// worker that aborts against round-frozen state submits an empty attempt and
// retries in the next round (see Engine.Run), preserving the no-wait
// abort-retry cost model in virtual time.
type Group struct {
	mu   sync.Mutex
	cond *sync.Cond
	// replay applies the round's attempts in canonical order. It runs on
	// whichever worker goroutine arrived last, with all other workers parked
	// and g.mu held: it has exclusive access to all shared state.
	replay func(atts []*Attempt)
	// active is the number of workers still running in the current phase.
	active int
	// pending holds this round's submissions.
	pending []*Attempt
	// round increments after each barrier; parked workers wait on it.
	round uint64
}

// Attempt is one worker's deferred crossing into shared state.
type Attempt struct {
	// Order is the canonical merge key: callers pack (virtual time,
	// worker id) so ties across workers cannot occur.
	Order uint64
	// Data is the scheduler-opaque payload (the engine's transaction).
	// Nil marks an empty attempt: a worker that already aborted against
	// round-frozen state and only needs to wait out the round.
	Data any
	// OK and Reason carry the replay verdict back to the submitting worker.
	OK     bool
	Reason int
}

// NewGroup returns a scheduler that applies each round's attempts with
// replay. See Group for the threading contract.
func NewGroup(replay func(atts []*Attempt)) *Group {
	g := &Group{replay: replay}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Begin opens a phase with n live workers. The caller must be quiescent (no
// worker inside Submit).
func (g *Group) Begin(n int) {
	g.mu.Lock()
	g.active = n
	g.mu.Unlock()
}

// Submit hands in the worker's attempt for this round and parks until the
// round's barrier has replayed it; the verdict is in att.OK / att.Reason on
// return. The last worker to arrive runs the replay itself.
func (g *Group) Submit(att *Attempt) {
	g.mu.Lock()
	g.pending = append(g.pending, att)
	if len(g.pending) >= g.active {
		g.runBarrierLocked()
	} else {
		r := g.round
		for g.round == r {
			g.cond.Wait()
		}
	}
	g.mu.Unlock()
}

// Leave retires the calling worker from the phase (it finished its quota or
// failed). If it was the last worker the round was waiting on, the barrier
// runs on this goroutine.
func (g *Group) Leave() {
	g.mu.Lock()
	if g.active > 0 {
		g.active--
	}
	if len(g.pending) > 0 && len(g.pending) >= g.active {
		g.runBarrierLocked()
	}
	g.mu.Unlock()
}

// runBarrierLocked replays the round and wakes the parked workers. Called
// with g.mu held.
func (g *Group) runBarrierLocked() {
	atts := g.pending
	g.pending = nil
	sort.Slice(atts, func(i, j int) bool { return atts[i].Order < atts[j].Order })
	if g.replay != nil {
		g.replay(atts)
	}
	g.round++
	g.cond.Broadcast()
}
