package sim

import (
	"runtime"
	"sync"
	"testing"
)

// TestGroupCanonicalOrder drives N workers through R rounds with
// deliberately skewed virtual orders and asserts every round's replay sees
// the attempts sorted by Order, regardless of goroutine arrival order.
func TestGroupCanonicalOrder(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const workers, rounds = 8, 50
	var replayed [][]uint64
	g := NewGroup(func(atts []*Attempt) {
		var orders []uint64
		for _, a := range atts {
			orders = append(orders, a.Order)
			a.OK = true
		}
		replayed = append(replayed, orders)
	})
	g.Begin(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer g.Leave()
			for r := 0; r < rounds; r++ {
				// Skew orders so the canonical order differs from worker
				// order: worker w submits (rounds-r)*100 + w.
				att := &Attempt{Order: uint64((rounds-r)*100 + w)}
				g.Submit(att)
				if !att.OK {
					t.Errorf("worker %d round %d: verdict not delivered", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if len(replayed) != rounds {
		t.Fatalf("got %d rounds, want %d", len(replayed), rounds)
	}
	for r, orders := range replayed {
		if len(orders) != workers {
			t.Fatalf("round %d: %d attempts, want %d", r, len(orders), workers)
		}
		for i := 1; i < len(orders); i++ {
			if orders[i-1] >= orders[i] {
				t.Fatalf("round %d: replay out of canonical order: %v", r, orders)
			}
		}
	}
}

// TestGroupEarlyLeave retires workers at different rounds and checks the
// remaining workers keep making progress: a departing worker must release
// any round that was only waiting on it.
func TestGroupEarlyLeave(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const workers = 6
	var mu sync.Mutex
	perRound := make(map[int]int)
	g := NewGroup(func(atts []*Attempt) {
		mu.Lock()
		perRound[len(perRound)] = len(atts)
		mu.Unlock()
		for _, a := range atts {
			a.OK = true
		}
	})
	g.Begin(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer g.Leave()
			// Worker w participates in w+1 rounds, so the live set shrinks
			// by one each round.
			for r := 0; r <= w; r++ {
				g.Submit(&Attempt{Order: uint64(r*workers + w)})
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(perRound) != workers {
		t.Fatalf("got %d rounds, want %d", len(perRound), workers)
	}
	for r := 0; r < workers; r++ {
		if perRound[r] != workers-r {
			t.Fatalf("round %d: %d attempts, want %d", r, perRound[r], workers-r)
		}
	}
}

// TestGroupEmptyAttempts mixes nil-Data (abort wait-out) attempts with real
// ones and checks both park until the same barrier.
func TestGroupEmptyAttempts(t *testing.T) {
	g := NewGroup(func(atts []*Attempt) {
		for _, a := range atts {
			a.OK = a.Data != nil
		}
	})
	g.Begin(2)
	done := make(chan *Attempt, 2)
	go func() {
		a := &Attempt{Order: 1, Data: "txn"}
		g.Submit(a)
		done <- a
	}()
	go func() {
		a := &Attempt{Order: 2}
		g.Submit(a)
		done <- a
	}()
	a1, a2 := <-done, <-done
	if a1.Data == nil {
		a1, a2 = a2, a1
	}
	if !a1.OK || a2.OK {
		t.Fatalf("verdicts: real=%v empty=%v, want true/false", a1.OK, a2.OK)
	}
	g.Leave()
	g.Leave()
}
