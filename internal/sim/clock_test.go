package sim

import "testing"

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Nanos() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Nanos())
	}
	c.Advance(5)
	c.Advance(7)
	if c.Nanos() != 12 {
		t.Fatalf("clock at %d, want 12", c.Nanos())
	}
	c.Reset()
	if c.Nanos() != 0 {
		t.Fatalf("reset clock at %d, want 0", c.Nanos())
	}
}

func TestNilClockIsSafe(t *testing.T) {
	var c *Clock
	c.Advance(10) // must not panic
	if c.Nanos() != 0 {
		t.Fatalf("nil clock Nanos = %d, want 0", c.Nanos())
	}
}

func TestMaxSumNanos(t *testing.T) {
	a, b, c := NewClock(), NewClock(), NewClock()
	a.Advance(10)
	b.Advance(30)
	c.Advance(20)
	clocks := []*Clock{a, b, c}
	if got := MaxNanos(clocks); got != 30 {
		t.Errorf("MaxNanos = %d, want 30", got)
	}
	if got := SumNanos(clocks); got != 60 {
		t.Errorf("SumNanos = %d, want 60", got)
	}
}

func TestThroughput(t *testing.T) {
	a := NewClock()
	a.Advance(1e9) // one virtual second
	got := Throughput(1000, []*Clock{a})
	if got != 1000 {
		t.Errorf("Throughput = %f, want 1000", got)
	}
	if Throughput(1000, nil) != 0 {
		t.Errorf("Throughput with no clocks should be 0")
	}
}

func TestDefaultCostModelPopulated(t *testing.T) {
	cm := DefaultCostModel()
	if cm.MediaReadBlock == 0 || cm.MediaWriteBlock == 0 || cm.Sfence == 0 {
		t.Fatalf("default cost model has zero core latencies: %+v", cm)
	}
	if cm.MediaReadBlock <= cm.DRAMFirstLine {
		t.Errorf("NVM media read (%d) should be slower than DRAM (%d)",
			cm.MediaReadBlock, cm.DRAMFirstLine)
	}
}
