package sim

// CostModel holds the virtual-time latency constants, in nanoseconds, charged
// for simulated hardware events. The defaults are calibrated from published
// characterizations of Intel Optane DC Persistent Memory (Yang et al.,
// FAST '20 "An Empirical Guide to the Behavior and Use of Scalable Persistent
// Memory"; Gugnani et al., VLDB '21) and ordinary DDR4 latencies. Absolute
// throughput derived from these constants is plausible but approximate; the
// reproduction claims only relative comparisons between engines.
type CostModel struct {
	// CacheHitLine is charged per 64 B line accessed that hits the simulated
	// CPU cache (load or store).
	CacheHitLine uint64
	// CacheMissLine is the bookkeeping cost of installing a line on a miss,
	// in addition to whatever fill cost applies (XPBufferHit or
	// MediaReadBlock).
	CacheMissLine uint64
	// MediaReadBlock is charged for fetching a 256 B block from the NVM
	// storage media (3D XPoint read latency).
	MediaReadBlock uint64
	// MediaWriteBlock is charged for writing a 256 B block from the XPBuffer
	// to the storage media. A partial-block eviction additionally charges
	// MediaReadBlock (read-modify-write; this is the write amplification the
	// paper is built around).
	MediaWriteBlock uint64
	// XPBufferHit is charged when a load miss is served from the NVM
	// module's internal write-combining buffer instead of the media.
	XPBufferHit uint64
	// LineWriteback is charged for transferring one dirty 64 B line from the
	// CPU cache into the XPBuffer (eviction or clwb write-back).
	LineWriteback uint64
	// ClwbIssue is charged for issuing one clwb instruction. Falcon's hinted
	// flush uses <sfence + clwb*>, i.e. it does not wait for completion, so
	// only the issue cost applies.
	ClwbIssue uint64
	// ClwbTrainNext is charged for each additional line of a hinted multi-line
	// flush train after the first (Space.CLWBTrain): the front end amortizes
	// decode/issue across the adjacent lines of a span, so trailing lines cost
	// a fraction of a standalone ClwbIssue.
	ClwbTrainNext uint64
	// Sfence is charged per sfence instruction.
	Sfence uint64
	// DRAMFirstLine and DRAMNextLine are charged for accesses to simulated
	// DRAM-resident structures (version heap, DRAM indexes, tuple cache):
	// the first 64 B line of an access costs DRAMFirstLine and each
	// subsequent contiguous line costs DRAMNextLine (streaming).
	DRAMFirstLine uint64
	DRAMNextLine  uint64
	// TxnOverhead is the fixed CPU cost per transaction (begin/commit
	// bookkeeping, TID generation).
	TxnOverhead uint64
	// OpOverhead is the fixed CPU cost per tuple operation (call overhead,
	// predicate evaluation).
	OpOverhead uint64
	// AbortOverhead is the extra CPU cost of rolling back an aborted
	// transaction attempt (on top of the work already charged).
	AbortOverhead uint64
}

// DefaultCostModel returns the calibrated latency constants used throughout
// the evaluation.
func DefaultCostModel() CostModel {
	return CostModel{
		CacheHitLine:    4,
		CacheMissLine:   10,
		MediaReadBlock:  300,
		MediaWriteBlock: 170,
		XPBufferHit:     90,
		LineWriteback:   10,
		ClwbIssue:       8,
		ClwbTrainNext:   2,
		Sfence:          20,
		DRAMFirstLine:   70,
		DRAMNextLine:    15,
		TxnOverhead:     150,
		OpOverhead:      60,
		AbortOverhead:   120,
	}
}
