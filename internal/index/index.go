// Package index provides the two persistent-memory index structures the
// paper evaluates Falcon with: a bucketized hash table in the spirit of Dash
// (Lu et al., VLDB '20) and a B+-tree with 256 B nodes and leaf links in the
// spirit of NBTree (Zhang et al., VLDB '22).
//
// Both structures are written against pmem.Space, so the same code serves
// the paper's two placements: on NVM (index survives crashes structurally —
// "instant recovery") and in DRAM (faster probes, but the index must be
// rebuilt from a full heap scan after a crash). Node and bucket sizes equal
// the 256 B NVM media block, the layout trick prior persistent indexes use
// to avoid write amplification (§3.2).
//
// Because Falcon updates tuples in place, tuple addresses never change and
// indexes are not touched by updates at all — only by inserts and deletes.
// Out-of-place engines additionally use Update to repoint keys at new tuple
// versions.
package index

import (
	"errors"

	"falcon/internal/sim"
)

// Kind identifies an index structure.
type Kind uint8

const (
	// Hash is the Dash-style bucketized hash index (point lookups only).
	Hash Kind = iota
	// BTree is the NBTree-style B+-tree (point lookups and range scans).
	BTree
)

func (k Kind) String() string {
	switch k {
	case Hash:
		return "hash"
	case BTree:
		return "btree"
	default:
		return "unknown"
	}
}

// ErrFull is returned when an index cannot accommodate another key.
var ErrFull = errors.New("index: full")

// ErrDuplicate is returned by Insert when the key is already present.
var ErrDuplicate = errors.New("index: duplicate key")

// ErrUnordered is returned by Scan on indexes without ordered iteration.
var ErrUnordered = errors.New("index: structure does not support scans")

// Index maps uint64 keys to uint64 values (tuple slot numbers).
// Implementations are safe for concurrent use.
type Index interface {
	// Get returns the value for key.
	Get(clk *sim.Clock, key uint64) (uint64, bool)
	// Insert adds key with val; ErrDuplicate if present.
	Insert(clk *sim.Clock, key, val uint64) error
	// Update repoints an existing key; it reports whether the key existed.
	Update(clk *sim.Clock, key, val uint64) bool
	// Delete removes key, reporting whether it existed.
	Delete(clk *sim.Clock, key uint64) bool
	// Scan iterates keys >= from in ascending order until fn returns false.
	// Hash indexes return ErrUnordered.
	Scan(clk *sim.Clock, from uint64, fn func(key, val uint64) bool) error
	// Kind identifies the structure.
	Kind() Kind
	// Bytes is the persistent footprint of the region the index occupies.
	Bytes() uint64
}

// hash64 is a Fibonacci/splitmix-style mixer for bucket selection.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
