package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// TestQuickBTreeScanMatchesSortedReference: after arbitrary insert/delete
// sequences, every range scan must return exactly the live keys in order.
func TestQuickBTreeScanMatchesSortedReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 64 << 20})
		bt, err := NewBTree(sys.Space, 0, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		clk := sim.NewClock()
		ref := map[uint64]uint64{}
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(3000))
			if rng.Intn(3) == 0 {
				got := bt.Delete(clk, k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			} else {
				err := bt.Insert(clk, k, k*7)
				if _, dup := ref[k]; dup {
					if err != ErrDuplicate {
						return false
					}
				} else if err != nil {
					return false
				} else {
					ref[k] = k * 7
				}
			}
		}
		// Full scan from a random start point.
		from := uint64(rng.Intn(3000))
		var wantKeys []uint64
		for k := range ref {
			if k >= from {
				wantKeys = append(wantKeys, k)
			}
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		var got []uint64
		if err := bt.Scan(clk, from, func(k, v uint64) bool {
			if v != k*7 {
				return false
			}
			got = append(got, k)
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(wantKeys) {
			return false
		}
		for i := range got {
			if got[i] != wantKeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHashSurvivesCrashImage: after random mutations and an eADR
// crash, the reopened hash index must serve exactly the reference contents.
func TestQuickHashSurvivesCrashImage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 64 << 20})
		h, err := NewHash(sys.Space, 0, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		clk := sim.NewClock()
		ref := map[uint64]uint64{}
		for i := 0; i < 1500; i++ {
			k := uint64(rng.Intn(2500))
			switch rng.Intn(4) {
			case 0:
				if h.Delete(clk, k) != (func() bool { _, ok := ref[k]; return ok })() {
					return false
				}
				delete(ref, k)
			case 1:
				v := uint64(rng.Int63())
				if h.Update(clk, k, v) {
					ref[k] = v
				}
			default:
				v := uint64(rng.Int63())
				if err := h.Insert(clk, k, v); err == nil {
					ref[k] = v
				}
			}
		}
		h2, err := OpenHash(sys.Crash().Space, clk, 0)
		if err != nil {
			return false
		}
		for k := uint64(0); k < 2500; k++ {
			got, ok := h2.Get(clk, k)
			want, exists := ref[k]
			if ok != exists || (ok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
