package index

import (
	"encoding/binary"
	"fmt"
	"sync"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

const (
	btreeMagic = 0xFA1C0B7E_00000001

	nodeBytes   = pmem.BlockSize // one NVM media block per node
	nodeEntries = 15             // 16 B header + 15 × 16 B entries
	maxDepth    = 24
)

// BTreeIndex is a B+-tree with 256 B nodes, leaf sibling links and lazy
// deletes (no rebalancing; empty leaves stay linked, which is harmless for
// routing). Writers are serialized by a tree lock; readers share it. In the
// virtual-time model host lock waits are free, so the coarse lock does not
// distort measured results.
type BTreeIndex struct {
	space pmem.Space
	base  uint64
	cap   uint64 // node capacity

	mu sync.RWMutex
	// root and nextFree mirror the persistent header (single-writer under
	// mu; rebuilt from the header on Open).
	root     uint64
	nextFree uint64
}

// BTreeBytes returns the persistent footprint for a capacity-key tree.
func BTreeBytes(capacity uint64) uint64 {
	return 64 + btreeNodes(capacity)*nodeBytes
}

func btreeNodes(capacity uint64) uint64 {
	// Leaves fill to ~half after random inserts; add ~20% for inner nodes.
	n := capacity/6 + 64
	return n
}

type node struct {
	id  uint64
	buf [nodeBytes]byte
}

func (n *node) leaf() bool { return n.buf[0] == 0 }
func (n *node) setKind(inner bool) {
	if inner {
		n.buf[0] = 1
	} else {
		n.buf[0] = 0
	}
}
func (n *node) count() int     { return int(n.buf[1]) }
func (n *node) setCount(c int) { n.buf[1] = byte(c) }
func (n *node) next() (uint64, bool) {
	v := binary.LittleEndian.Uint64(n.buf[8:16])
	return v - 1, v != 0
}
func (n *node) setNext(id uint64, ok bool) {
	if ok {
		binary.LittleEndian.PutUint64(n.buf[8:16], id+1)
	} else {
		binary.LittleEndian.PutUint64(n.buf[8:16], 0)
	}
}
func (n *node) key(i int) uint64 { return binary.LittleEndian.Uint64(n.buf[16+16*i:]) }
func (n *node) val(i int) uint64 { return binary.LittleEndian.Uint64(n.buf[24+16*i:]) }
func (n *node) set(i int, k, v uint64) {
	binary.LittleEndian.PutUint64(n.buf[16+16*i:], k)
	binary.LittleEndian.PutUint64(n.buf[24+16*i:], v)
}

// insertAt shifts entries right and places (k,v) at position i.
func (n *node) insertAt(i int, k, v uint64) {
	c := n.count()
	copy(n.buf[16+16*(i+1):16+16*(c+1)], n.buf[16+16*i:16+16*c])
	n.set(i, k, v)
	n.setCount(c + 1)
}

// removeAt shifts entries left over position i.
func (n *node) removeAt(i int) {
	c := n.count()
	copy(n.buf[16+16*i:16+16*(c-1)], n.buf[16+16*(i+1):16+16*c])
	n.setCount(c - 1)
}

// searchLeaf returns the position of key, or (insert position, false).
func (n *node) searchLeaf(key uint64) (int, bool) {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.key(mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < n.count() && n.key(lo) == key
}

// childFor returns the entry index to descend for key: the last separator
// <= key, defaulting to 0.
func (n *node) childFor(key uint64) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.key(mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// NewBTree formats a tree at base sized for capacity keys.
func NewBTree(space pmem.Space, base uint64, capacity uint64) (*BTreeIndex, error) {
	t := &BTreeIndex{space: space, base: base, cap: btreeNodes(capacity)}
	if base+t.Bytes() > space.Size() {
		return nil, fmt.Errorf("index: btree at %d (%d nodes) overflows space", base, t.cap)
	}
	var hdr [64]byte
	binary.LittleEndian.PutUint64(hdr[0:], btreeMagic)
	binary.LittleEndian.PutUint64(hdr[8:], 0) // root = node 0
	binary.LittleEndian.PutUint64(hdr[16:], 1)
	binary.LittleEndian.PutUint64(hdr[24:], t.cap)
	space.BulkWrite(base, hdr[:])
	// Node 0: empty leaf.
	zero := make([]byte, nodeBytes)
	space.BulkWrite(t.nodeOff(0), zero)
	t.root, t.nextFree = 0, 1
	return t, nil
}

// OpenBTree reattaches to a tree at base (instant recovery).
func OpenBTree(space pmem.Space, clk *sim.Clock, base uint64) (*BTreeIndex, error) {
	var hdr [64]byte
	space.Read(clk, base, hdr[:])
	if binary.LittleEndian.Uint64(hdr[0:]) != btreeMagic {
		return nil, fmt.Errorf("index: no btree at %d", base)
	}
	return &BTreeIndex{
		space:    space,
		base:     base,
		root:     binary.LittleEndian.Uint64(hdr[8:]),
		nextFree: binary.LittleEndian.Uint64(hdr[16:]),
		cap:      binary.LittleEndian.Uint64(hdr[24:]),
	}, nil
}

// Kind returns BTree.
func (t *BTreeIndex) Kind() Kind { return BTree }

// Bytes returns the persistent footprint.
func (t *BTreeIndex) Bytes() uint64 { return 64 + t.cap*nodeBytes }

func (t *BTreeIndex) nodeOff(id uint64) uint64 { return t.base + 64 + id*nodeBytes }

func (t *BTreeIndex) loadInto(clk *sim.Clock, id uint64, n *node) *node {
	n.id = id
	t.space.Read(clk, t.nodeOff(id), n.buf[:])
	return n
}

func (t *BTreeIndex) store(clk *sim.Clock, n *node) {
	t.space.Write(clk, t.nodeOff(n.id), n.buf[:])
}

func (t *BTreeIndex) allocNode(clk *sim.Clock) (uint64, error) {
	if t.nextFree >= t.cap {
		return 0, ErrFull
	}
	id := t.nextFree
	t.nextFree++
	t.space.WriteU64(clk, t.base+16, t.nextFree)
	return id, nil
}

func (t *BTreeIndex) setRoot(clk *sim.Clock, id uint64) {
	t.root = id
	t.space.WriteU64(clk, t.base+8, id)
}

// treeWalk holds the reusable per-operation state of a root-to-leaf walk:
// one node buffer per level plus the recorded path. Every tree operation
// descends, and allocating (and zeroing) a fresh 256 B node per level was a
// measurable slice of sweep host time, so walks come from a pool. Split
// nodes are still allocated fresh: their zeroed buffers are what the store
// persists beyond the entry count.
type treeWalk struct {
	nodes [maxDepth + 1]node
	path  [maxDepth]pathEntry
}

var walkPool = sync.Pool{New: func() any { return new(treeWalk) }}

// descend walks from the root to the leaf for key using w's node buffers,
// recording the path of (node, childEntry) when record is true. npath is the
// leaf's depth; w.path[:npath] is valid when recorded.
func (t *BTreeIndex) descend(clk *sim.Clock, key uint64, w *treeWalk, record bool) (n *node, npath int) {
	n = t.loadInto(clk, t.root, &w.nodes[0])
	for !n.leaf() {
		if npath >= maxDepth {
			panic("index: btree deeper than maxDepth")
		}
		i := n.childFor(key)
		child := n.val(i)
		if record {
			w.path[npath] = pathEntry{n: n, idx: i}
		}
		npath++
		n = t.loadInto(clk, child, &w.nodes[npath])
	}
	return n, npath
}

type pathEntry struct {
	n   *node
	idx int
}

// Get returns the value for key.
func (t *BTreeIndex) Get(clk *sim.Clock, key uint64) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	w := walkPool.Get().(*treeWalk)
	n, _ := t.descend(clk, key, w, false)
	i, ok := n.searchLeaf(key)
	var v uint64
	if ok {
		v = n.val(i)
	}
	walkPool.Put(w)
	return v, ok
}

// Insert adds key→val, splitting nodes as needed.
func (t *BTreeIndex) Insert(clk *sim.Clock, key, val uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	w := walkPool.Get().(*treeWalk)
	defer walkPool.Put(w)
	n, npath := t.descend(clk, key, w, true)
	i, exists := n.searchLeaf(key)
	if exists {
		return ErrDuplicate
	}
	if n.count() < nodeEntries {
		n.insertAt(i, key, val)
		t.store(clk, n)
		return nil
	}
	// Split the leaf, then propagate.
	rightID, err := t.allocNode(clk)
	if err != nil {
		return err
	}
	right := &node{id: rightID}
	mid := nodeEntries / 2 // left keeps [0,mid), right gets [mid,count)
	copy(right.buf[16:], n.buf[16+16*mid:16+16*nodeEntries])
	right.setKind(false)
	right.setCount(nodeEntries - mid)
	if nxt, ok := n.next(); ok {
		right.setNext(nxt, true)
	}
	n.setCount(mid)
	n.setNext(rightID, true)
	sep := right.key(0)
	if key < sep {
		n.insertAt(i, key, val)
	} else {
		j, _ := right.searchLeaf(key)
		right.insertAt(j, key, val)
	}
	t.store(clk, right)
	t.store(clk, n)
	return t.insertParent(clk, w.path[:npath], n.id, sep, rightID)
}

// insertParent inserts separator sep pointing at rightID above the split
// child, recursively splitting inner nodes.
func (t *BTreeIndex) insertParent(clk *sim.Clock, path []pathEntry, leftID, sep, rightID uint64) error {
	if len(path) == 0 {
		// Root split: new root with two children.
		newRootID, err := t.allocNode(clk)
		if err != nil {
			return err
		}
		r := &node{id: newRootID}
		r.setKind(true)
		r.set(0, 0, leftID)
		r.set(1, sep, rightID)
		r.setCount(2)
		t.store(clk, r)
		t.setRoot(clk, newRootID)
		return nil
	}
	p := path[len(path)-1]
	n := p.n
	i := p.idx + 1 // new separator goes right after the descended entry
	if n.count() < nodeEntries {
		n.insertAt(i, sep, rightID)
		t.store(clk, n)
		return nil
	}
	// Split the inner node.
	newID, err := t.allocNode(clk)
	if err != nil {
		return err
	}
	right := &node{id: newID}
	mid := nodeEntries / 2
	copy(right.buf[16:], n.buf[16+16*mid:16+16*nodeEntries])
	right.setKind(true)
	right.setCount(nodeEntries - mid)
	n.setCount(mid)
	upSep := right.key(0)
	if i <= mid {
		n.insertAt(i, sep, rightID)
	} else {
		right.insertAt(i-mid, sep, rightID)
	}
	t.store(clk, right)
	t.store(clk, n)
	return t.insertParent(clk, path[:len(path)-1], n.id, upSep, newID)
}

// Update repoints an existing key.
func (t *BTreeIndex) Update(clk *sim.Clock, key, val uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := walkPool.Get().(*treeWalk)
	defer walkPool.Put(w)
	n, _ := t.descend(clk, key, w, false)
	i, ok := n.searchLeaf(key)
	if !ok {
		return false
	}
	n.set(i, key, val)
	t.space.Write(clk, t.nodeOff(n.id)+uint64(16+16*i), n.buf[16+16*i:16+16*(i+1)])
	return true
}

// Delete removes key (lazy: no rebalancing).
func (t *BTreeIndex) Delete(clk *sim.Clock, key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := walkPool.Get().(*treeWalk)
	defer walkPool.Put(w)
	n, _ := t.descend(clk, key, w, false)
	i, ok := n.searchLeaf(key)
	if !ok {
		return false
	}
	n.removeAt(i)
	t.store(clk, n)
	return true
}

// Scan iterates keys >= from in ascending order until fn returns false.
func (t *BTreeIndex) Scan(clk *sim.Clock, from uint64, fn func(key, val uint64) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	w := walkPool.Get().(*treeWalk)
	defer walkPool.Put(w)
	n, _ := t.descend(clk, from, w, false)
	i, _ := n.searchLeaf(from)
	for {
		for ; i < n.count(); i++ {
			if !fn(n.key(i), n.val(i)) {
				return nil
			}
		}
		nxt, ok := n.next()
		if !ok {
			return nil
		}
		n = t.loadInto(clk, nxt, n)
		i = 0
	}
}
