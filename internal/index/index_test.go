package index

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

func newSys() *pmem.System {
	return pmem.NewSystem(pmem.Config{DeviceBytes: 128 << 20})
}

// build creates each index kind for table-driven tests.
func buildIndexes(t *testing.T, capacity uint64) map[string]Index {
	t.Helper()
	sys := newSys()
	h, err := NewHash(sys.Space, 0, capacity)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBTree(sys.Space, 32<<20, capacity)
	if err != nil {
		t.Fatal(err)
	}
	cost := sim.DefaultCostModel()
	dh, err := NewHash(pmem.NewDRAMSpace(32<<20, cost), 0, capacity)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewBTree(pmem.NewDRAMSpace(64<<20, cost), 0, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Index{"hash-nvm": h, "btree-nvm": bt, "hash-dram": dh, "btree-dram": db}
}

func TestIndexBasicOps(t *testing.T) {
	for name, idx := range buildIndexes(t, 10000) {
		t.Run(name, func(t *testing.T) {
			clk := sim.NewClock()
			if _, ok := idx.Get(clk, 5); ok {
				t.Fatal("empty index returned a value")
			}
			if err := idx.Insert(clk, 5, 50); err != nil {
				t.Fatal(err)
			}
			if err := idx.Insert(clk, 5, 51); !errors.Is(err, ErrDuplicate) {
				t.Fatalf("duplicate insert err = %v", err)
			}
			if v, ok := idx.Get(clk, 5); !ok || v != 50 {
				t.Fatalf("Get = %d,%v", v, ok)
			}
			if !idx.Update(clk, 5, 99) {
				t.Fatal("Update of existing key failed")
			}
			if v, _ := idx.Get(clk, 5); v != 99 {
				t.Fatalf("after Update, Get = %d", v)
			}
			if idx.Update(clk, 6, 1) {
				t.Fatal("Update of missing key succeeded")
			}
			if !idx.Delete(clk, 5) {
				t.Fatal("Delete failed")
			}
			if idx.Delete(clk, 5) {
				t.Fatal("double Delete succeeded")
			}
			if _, ok := idx.Get(clk, 5); ok {
				t.Fatal("deleted key still present")
			}
		})
	}
}

func TestIndexMatchesReferenceMap(t *testing.T) {
	for name, idx := range buildIndexes(t, 20000) {
		t.Run(name, func(t *testing.T) {
			clk := sim.NewClock()
			rng := rand.New(rand.NewSource(7))
			ref := map[uint64]uint64{}
			for step := 0; step < 20000; step++ {
				key := uint64(rng.Intn(4000))
				switch rng.Intn(4) {
				case 0, 1: // insert
					err := idx.Insert(clk, key, key*3)
					if _, exists := ref[key]; exists {
						if !errors.Is(err, ErrDuplicate) {
							t.Fatalf("step %d: insert dup err = %v", step, err)
						}
					} else if err != nil {
						t.Fatalf("step %d: insert err = %v", step, err)
					} else {
						ref[key] = key * 3
					}
				case 2: // delete
					got := idx.Delete(clk, key)
					_, exists := ref[key]
					if got != exists {
						t.Fatalf("step %d: delete(%d) = %v, want %v", step, key, got, exists)
					}
					delete(ref, key)
				case 3: // update
					got := idx.Update(clk, key, key+1)
					_, exists := ref[key]
					if got != exists {
						t.Fatalf("step %d: update(%d) = %v, want %v", step, key, got, exists)
					}
					if exists {
						ref[key] = key + 1
					}
				}
			}
			for k, v := range ref {
				if got, ok := idx.Get(clk, k); !ok || got != v {
					t.Fatalf("final: Get(%d) = %d,%v want %d", k, got, ok, v)
				}
			}
		})
	}
}

func TestBTreeScanOrder(t *testing.T) {
	sys := newSys()
	bt, _ := NewBTree(sys.Space, 0, 100000)
	clk := sim.NewClock()
	rng := rand.New(rand.NewSource(3))
	keys := rng.Perm(5000)
	for _, k := range keys {
		if err := bt.Insert(clk, uint64(k)*2, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := bt.Scan(clk, 0, func(k, v uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 {
		t.Fatalf("scan visited %d keys, want 5000", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
}

func TestBTreeScanFromMidAndEarlyStop(t *testing.T) {
	sys := newSys()
	bt, _ := NewBTree(sys.Space, 0, 10000)
	clk := sim.NewClock()
	for k := uint64(0); k < 100; k++ {
		bt.Insert(clk, k*10, k)
	}
	var got []uint64
	bt.Scan(clk, 305, func(k, v uint64) bool {
		got = append(got, k)
		return len(got) < 5
	})
	want := []uint64{310, 320, 330, 340, 350}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestHashScanUnsupported(t *testing.T) {
	sys := newSys()
	h, _ := NewHash(sys.Space, 0, 100)
	if err := h.Scan(sim.NewClock(), 0, nil); !errors.Is(err, ErrUnordered) {
		t.Fatalf("err = %v, want ErrUnordered", err)
	}
}

func TestIndexesSurviveCrash(t *testing.T) {
	sys := newSys()
	clk := sim.NewClock()
	h, _ := NewHash(sys.Space, 0, 10000)
	bt, _ := NewBTree(sys.Space, 32<<20, 10000)
	for k := uint64(0); k < 2000; k++ {
		h.Insert(clk, k, k+1)
		bt.Insert(clk, k, k+2)
	}
	sys2 := sys.Crash()

	h2, err := OpenHash(sys2.Space, clk, 0)
	if err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBTree(sys2.Space, clk, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		if v, ok := h2.Get(clk, k); !ok || v != k+1 {
			t.Fatalf("hash lost key %d after crash (got %d,%v)", k, v, ok)
		}
		if v, ok := bt2.Get(clk, k); !ok || v != k+2 {
			t.Fatalf("btree lost key %d after crash (got %d,%v)", k, v, ok)
		}
	}
	// Instant recovery must also keep allocation state: inserting new keys
	// must not corrupt existing ones.
	for k := uint64(2000); k < 2500; k++ {
		if err := bt2.Insert(clk, k, k); err != nil {
			t.Fatal(err)
		}
		if err := h2.Insert(clk, k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 2500; k++ {
		if _, ok := bt2.Get(clk, k); !ok {
			t.Fatalf("btree key %d lost after post-crash inserts", k)
		}
	}
}

func TestIndexConcurrentDisjointWriters(t *testing.T) {
	sys := newSys()
	h, _ := NewHash(sys.Space, 0, 100000)
	bt, _ := NewBTree(sys.Space, 64<<20, 100000)
	for _, idx := range []Index{h, bt} {
		const workers, per = 8, 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				clk := sim.NewClock()
				for i := 0; i < per; i++ {
					k := uint64(w*per + i)
					if err := idx.Insert(clk, k, k^7); err != nil {
						t.Errorf("insert %d: %v", k, err)
						return
					}
					if v, ok := idx.Get(clk, k); !ok || v != k^7 {
						t.Errorf("readback %d failed", k)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		clk := sim.NewClock()
		for k := uint64(0); k < workers*per; k++ {
			if _, ok := idx.Get(clk, k); !ok {
				t.Fatalf("%s: key %d missing after concurrent inserts", idx.Kind(), k)
			}
		}
	}
}

func TestHashFillToCapacityAndErrFull(t *testing.T) {
	sys := newSys()
	// Tiny index: 64 buckets minimum * 15 entries = 960 capacity.
	h, _ := NewHash(sys.Space, 0, 10)
	clk := sim.NewClock()
	inserted := uint64(0)
	for k := uint64(0); k < 5000; k++ {
		if err := h.Insert(clk, k, k); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatal(err)
			}
			break
		}
		inserted++
	}
	if inserted < 500 {
		t.Fatalf("only %d keys fit before ErrFull; probing too weak", inserted)
	}
	for k := uint64(0); k < inserted; k++ {
		if _, ok := h.Get(clk, k); !ok {
			t.Fatalf("key %d lost in a nearly-full table", k)
		}
	}
}

func TestNVMIndexChargesMoreThanDRAM(t *testing.T) {
	capacity := uint64(50000)
	sys := newSys()
	nvm, _ := NewBTree(sys.Space, 0, capacity)
	dram, _ := NewBTree(pmem.NewDRAMSpace(64<<20, sim.DefaultCostModel()), 0, capacity)

	run := func(idx Index) uint64 {
		clk := sim.NewClock()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 20000; i++ {
			idx.Insert(clk, uint64(rng.Int63()), 1)
		}
		return clk.Nanos()
	}
	nvmT := run(nvm)
	dramT := run(dram)
	if nvmT <= dramT {
		t.Fatalf("NVM index (%d ns) not slower than DRAM index (%d ns)", nvmT, dramT)
	}
}
