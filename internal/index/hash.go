package index

import (
	"encoding/binary"
	"fmt"
	"sync"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

const (
	hashMagic = 0xFA1C0DA5_00000001

	bucketBytes   = pmem.BlockSize // one NVM media block per bucket
	bucketEntries = 15             // 8 B header + 15 × 16 B entries = 248 B
	maxProbe      = 16             // linear-probe window in buckets

	// stripeShift groups buckets into lock stripes of 2^stripeShift; a probe
	// window spans at most two stripes.
	stripeShift = 5
)

// HashIndex is a bucketized linear-probing hash table over a Space. Each
// bucket is one 256 B block holding up to 15 entries; inserts that overflow
// a bucket probe forward and set the origin's overflow marker so lookups
// know to keep probing.
type HashIndex struct {
	space    pmem.Space
	base     uint64
	nbuckets uint64
	locks    []sync.RWMutex
}

// HashBytes returns the persistent footprint for a capacity-key index.
func HashBytes(capacity uint64) uint64 {
	return 64 + hashBuckets(capacity)*bucketBytes
}

func hashBuckets(capacity uint64) uint64 {
	// Size for ~60% bucket load so probe chains stay short.
	n := capacity/(bucketEntries*6/10) + 1
	b := uint64(1)
	for b < n {
		b <<= 1
	}
	if b < 64 {
		b = 64
	}
	return b
}

// NewHash formats a hash index at base sized for capacity keys.
func NewHash(space pmem.Space, base uint64, capacity uint64) (*HashIndex, error) {
	nb := hashBuckets(capacity)
	h := &HashIndex{space: space, base: base, nbuckets: nb}
	if base+h.Bytes() > space.Size() {
		return nil, fmt.Errorf("index: hash at %d (%d buckets) overflows space", base, nb)
	}
	var hdr [64]byte
	binary.LittleEndian.PutUint64(hdr[0:], hashMagic)
	binary.LittleEndian.PutUint64(hdr[8:], nb)
	space.BulkWrite(base, hdr[:])
	// Buckets start zeroed (count 0): the device/DRAM space is zero-filled,
	// but the region may be reused, so clear headers explicitly.
	for i := uint64(0); i < nb; i++ {
		space.BulkWriteU64(h.bucketOff(i), 0)
	}
	h.locks = make([]sync.RWMutex, nb>>stripeShift+1)
	return h, nil
}

// OpenHash reattaches to a hash index at base (instant recovery: the
// structure is already in NVM).
func OpenHash(space pmem.Space, clk *sim.Clock, base uint64) (*HashIndex, error) {
	var hdr [64]byte
	space.Read(clk, base, hdr[:])
	if binary.LittleEndian.Uint64(hdr[0:]) != hashMagic {
		return nil, fmt.Errorf("index: no hash index at %d", base)
	}
	h := &HashIndex{space: space, base: base, nbuckets: binary.LittleEndian.Uint64(hdr[8:])}
	h.locks = make([]sync.RWMutex, h.nbuckets>>stripeShift+1)
	return h, nil
}

// Kind returns Hash.
func (h *HashIndex) Kind() Kind { return Hash }

// Bytes returns the persistent footprint.
func (h *HashIndex) Bytes() uint64 { return 64 + h.nbuckets*bucketBytes }

func (h *HashIndex) bucketOff(i uint64) uint64 { return h.base + 64 + i*bucketBytes }

// lockSpan write- or read-locks the (at most two) stripes covering the probe
// window starting at bucket b, in index order to avoid deadlock. It returns
// the locked stripe range for unlockSpan. The lock/unlock pair is split into
// plain methods (rather than a returned unlock closure) because every index
// operation crosses it: the three closures the old shape allocated per call
// were a measurable slice of sweep host time.
func (h *HashIndex) lockSpan(b uint64, write bool) (lo, hi uint64) {
	s1 := b >> stripeShift
	s2 := ((b + maxProbe - 1) & (h.nbuckets - 1)) >> stripeShift
	lo, hi = s1, s2
	if lo > hi {
		lo, hi = hi, lo
	}
	if write {
		h.locks[lo].Lock()
		if hi != lo {
			h.locks[hi].Lock()
		}
	} else {
		h.locks[lo].RLock()
		if hi != lo {
			h.locks[hi].RLock()
		}
	}
	return lo, hi
}

// unlockSpan releases the stripes locked by lockSpan.
func (h *HashIndex) unlockSpan(lo, hi uint64, write bool) {
	if write {
		if hi != lo {
			h.locks[hi].Unlock()
		}
		h.locks[lo].Unlock()
	} else {
		if hi != lo {
			h.locks[hi].RUnlock()
		}
		h.locks[lo].RUnlock()
	}
}

// bucket image helpers: a bucket is read and written as one 256 B block.

type bucketBuf [bucketBytes]byte

// bucketBufs recycles bucket images. The buffers are only ever stack-shaped
// (acquired and released within one index operation), but they are handed to
// Space.Read through the pmem.Space interface, which forces them to the heap;
// pooling turns a 256 B allocation per index operation into a pool hit.
var bucketBufs = sync.Pool{New: func() any { return new(bucketBuf) }}

func (b *bucketBuf) count() int     { return int(binary.LittleEndian.Uint16(b[0:2])) }
func (b *bucketBuf) setCount(n int) { binary.LittleEndian.PutUint16(b[0:2], uint16(n)) }
func (b *bucketBuf) overflow() bool { return b[2] != 0 }
func (b *bucketBuf) setOverflow(v bool) {
	if v {
		b[2] = 1
	} else {
		b[2] = 0
	}
}
func (b *bucketBuf) key(i int) uint64 { return binary.LittleEndian.Uint64(b[8+16*i:]) }
func (b *bucketBuf) val(i int) uint64 { return binary.LittleEndian.Uint64(b[16+16*i:]) }
func (b *bucketBuf) set(i int, k, v uint64) {
	binary.LittleEndian.PutUint64(b[8+16*i:], k)
	binary.LittleEndian.PutUint64(b[16+16*i:], v)
}

// Get returns the value for key.
func (h *HashIndex) Get(clk *sim.Clock, key uint64) (uint64, bool) {
	start := hash64(key) & (h.nbuckets - 1)
	lo, hi := h.lockSpan(start, false)
	defer h.unlockSpan(lo, hi, false)

	buf := bucketBufs.Get().(*bucketBuf)
	defer bucketBufs.Put(buf)
	for p := uint64(0); p < maxProbe; p++ {
		bi := (start + p) & (h.nbuckets - 1)
		h.space.Read(clk, h.bucketOff(bi), buf[:])
		n := buf.count()
		for i := 0; i < n; i++ {
			if buf.key(i) == key {
				return buf.val(i), true
			}
		}
		if n < bucketEntries && !buf.overflow() {
			return 0, false
		}
	}
	return 0, false
}

// Insert adds key→val.
func (h *HashIndex) Insert(clk *sim.Clock, key, val uint64) error {
	start := hash64(key) & (h.nbuckets - 1)
	lo, hi := h.lockSpan(start, true)
	defer h.unlockSpan(lo, hi, true)

	buf := bucketBufs.Get().(*bucketBuf)
	defer bucketBufs.Put(buf)
	// First pass: duplicate check across the probe window.
	for p := uint64(0); p < maxProbe; p++ {
		bi := (start + p) & (h.nbuckets - 1)
		h.space.Read(clk, h.bucketOff(bi), buf[:])
		n := buf.count()
		for i := 0; i < n; i++ {
			if buf.key(i) == key {
				return ErrDuplicate
			}
		}
		if n < bucketEntries && !buf.overflow() {
			break
		}
	}
	// Second pass: place in the first bucket with room, marking overflow on
	// the full buckets we skip.
	for p := uint64(0); p < maxProbe; p++ {
		bi := (start + p) & (h.nbuckets - 1)
		h.space.Read(clk, h.bucketOff(bi), buf[:])
		n := buf.count()
		if n == bucketEntries {
			if !buf.overflow() {
				buf.setOverflow(true)
				h.space.Write(clk, h.bucketOff(bi), buf[:8])
			}
			continue
		}
		buf.set(n, key, val)
		buf.setCount(n + 1)
		// Persist entry then header; both are within one block, usually one
		// or two cache lines.
		h.space.Write(clk, h.bucketOff(bi)+uint64(8+16*n), buf[8+16*n:8+16*n+16])
		h.space.Write(clk, h.bucketOff(bi), buf[:8])
		return nil
	}
	return ErrFull
}

// findMut locates key for mutation, returning bucket index and entry slot.
func (h *HashIndex) findMut(clk *sim.Clock, buf *bucketBuf, start, key uint64) (uint64, int, bool) {
	for p := uint64(0); p < maxProbe; p++ {
		bi := (start + p) & (h.nbuckets - 1)
		h.space.Read(clk, h.bucketOff(bi), buf[:])
		n := buf.count()
		for i := 0; i < n; i++ {
			if buf.key(i) == key {
				return bi, i, true
			}
		}
		if n < bucketEntries && !buf.overflow() {
			return 0, 0, false
		}
	}
	return 0, 0, false
}

// Update repoints an existing key at a new value (out-of-place engines).
func (h *HashIndex) Update(clk *sim.Clock, key, val uint64) bool {
	start := hash64(key) & (h.nbuckets - 1)
	lo, hi := h.lockSpan(start, true)
	defer h.unlockSpan(lo, hi, true)

	buf := bucketBufs.Get().(*bucketBuf)
	defer bucketBufs.Put(buf)
	bi, i, ok := h.findMut(clk, buf, start, key)
	if !ok {
		return false
	}
	buf.set(i, key, val)
	h.space.Write(clk, h.bucketOff(bi)+uint64(8+16*i), buf[8+16*i:8+16*i+16])
	return true
}

// Delete removes key by swapping the last entry into its hole.
func (h *HashIndex) Delete(clk *sim.Clock, key uint64) bool {
	start := hash64(key) & (h.nbuckets - 1)
	lo, hi := h.lockSpan(start, true)
	defer h.unlockSpan(lo, hi, true)

	buf := bucketBufs.Get().(*bucketBuf)
	defer bucketBufs.Put(buf)
	bi, i, ok := h.findMut(clk, buf, start, key)
	if !ok {
		return false
	}
	n := buf.count()
	if i != n-1 {
		buf.set(i, buf.key(n-1), buf.val(n-1))
		h.space.Write(clk, h.bucketOff(bi)+uint64(8+16*i), buf[8+16*i:8+16*i+16])
	}
	buf.setCount(n - 1)
	h.space.Write(clk, h.bucketOff(bi), buf[:8])
	return true
}

// Scan is unsupported on hash indexes.
func (h *HashIndex) Scan(clk *sim.Clock, from uint64, fn func(key, val uint64) bool) error {
	return ErrUnordered
}
