package heap

import (
	"bytes"
	"errors"
	"testing"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

func newTestHeap(t *testing.T, cfg Config) (*Heap, *pmem.System) {
	t.Helper()
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 64 << 20})
	h, err := New(sys.Space, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, sys
}

func TestHeapGeometry(t *testing.T) {
	h, _ := newTestHeap(t, Config{SlotSize: 100, NSlots: 64, NThreads: 4})
	if h.SlotSize() != 100 {
		t.Errorf("SlotSize = %d", h.SlotSize())
	}
	// 100 + 16 header = 116, rounded to the next line = 128.
	if h.stride != 128 {
		t.Errorf("stride = %d, want 128", h.stride)
	}
	if h.Owner(0) != 0 || h.Owner(16) != 1 || h.Owner(63) != 3 {
		t.Error("Owner partitioning wrong")
	}
}

func TestHeapPayloadRoundTrip(t *testing.T) {
	h, _ := newTestHeap(t, Config{SlotSize: 128, NSlots: 16, NThreads: 2})
	clk := sim.NewClock()
	slot, err := h.Alloc(clk, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.Repeat([]byte{0xAD}, 128)
	h.WritePayload(clk, slot, src)
	dst := make([]byte, 128)
	h.ReadPayload(clk, slot, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("payload round trip failed")
	}

	patch := []byte("xyz")
	h.WriteRange(clk, slot, 10, patch)
	h.ReadRange(clk, slot, 10, dst[:3])
	if !bytes.Equal(dst[:3], patch) {
		t.Fatal("range update failed")
	}
}

func TestHeapAllocPerThreadRanges(t *testing.T) {
	h, _ := newTestHeap(t, Config{SlotSize: 64, NSlots: 40, NThreads: 4})
	clk := sim.NewClock()
	for th := 0; th < 4; th++ {
		for i := 0; i < 10; i++ {
			slot, err := h.Alloc(clk, th, 0)
			if err != nil {
				t.Fatalf("thread %d alloc %d: %v", th, i, err)
			}
			if h.Owner(slot) != th {
				t.Fatalf("thread %d got slot %d owned by %d", th, slot, h.Owner(slot))
			}
		}
		if _, err := h.Alloc(clk, th, 0); !errors.Is(err, ErrHeapFull) {
			t.Fatalf("thread %d: 11th alloc err = %v, want ErrHeapFull", th, err)
		}
	}
}

func TestHeapRetireAndRecycle(t *testing.T) {
	h, _ := newTestHeap(t, Config{SlotSize: 64, NSlots: 8, NThreads: 1})
	clk := sim.NewClock()
	s1, _ := h.Alloc(clk, 0, 0)
	h.SetOccupied(clk, s1)
	h.Retire(clk, s1, 100, 100, false)

	if h.IsLive(clk, s1) {
		t.Fatal("retired slot still live")
	}
	// minActive 50 < deletion ts 100: a running txn might still read it.
	s2, _ := h.Alloc(clk, 0, 50)
	if s2 == s1 {
		t.Fatal("slot recycled while still visible to active transactions")
	}
	// minActive 200 > 100: reclaimable now.
	s3, _ := h.Alloc(clk, 0, 200)
	if s3 != s1 {
		t.Fatalf("slot %d not recycled (got %d)", s1, s3)
	}
}

func TestHeapRetireOrderFIFO(t *testing.T) {
	h, _ := newTestHeap(t, Config{SlotSize: 64, NSlots: 8, NThreads: 1})
	clk := sim.NewClock()
	a, _ := h.Alloc(clk, 0, 0)
	b, _ := h.Alloc(clk, 0, 0)
	h.Retire(clk, a, 10, 10, false)
	h.Retire(clk, b, 20, 20, false)
	got1, _ := h.Alloc(clk, 0, 1000)
	got2, _ := h.Alloc(clk, 0, 1000)
	if got1 != a || got2 != b {
		t.Fatalf("recycle order (%d,%d), want (%d,%d) — deleted list must be timestamp-ordered", got1, got2, a, b)
	}
}

func TestHeapSurvivesCrash(t *testing.T) {
	cfg := Config{SlotSize: 96, NSlots: 16, NThreads: 2}
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 64 << 20})
	h, err := New(sys.Space, 4096, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock()
	slot, _ := h.Alloc(clk, 1, 0)
	h.SetOccupied(clk, slot)
	payload := bytes.Repeat([]byte{7}, 96)
	h.WritePayload(clk, slot, payload)
	h.WriteTS(clk, slot, 42)

	sys2 := sys.Crash() // eADR: dirty lines persist
	h2, err := Open(sys2.Space, clk, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NSlots() != h.NSlots() || h2.SlotSize() != cfg.SlotSize {
		t.Fatal("geometry lost across crash")
	}
	got := make([]byte, 96)
	h2.ReadPayload(clk, slot, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload lost across eADR crash")
	}
	if ts := h2.ReadTS(clk, slot); ts != 42 {
		t.Fatalf("ts = %d, want 42", ts)
	}
	// Allocation cursor must have survived: a new alloc must not hand out
	// the same slot again.
	s2, err := h2.Alloc(clk, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == slot {
		t.Fatal("allocation cursor lost: slot handed out twice")
	}
}

func TestHeapScanVisitsLiveTuples(t *testing.T) {
	h, _ := newTestHeap(t, Config{SlotSize: 64, NSlots: 16, NThreads: 2})
	clk := sim.NewClock()
	want := map[uint64]byte{}
	for i := 0; i < 3; i++ {
		slot, _ := h.Alloc(clk, 0, 0)
		h.SetOccupied(clk, slot)
		h.WriteTS(clk, slot, uint64(i+1))
		h.WritePayload(clk, slot, bytes.Repeat([]byte{byte(i + 1)}, 64))
		want[slot] = byte(i + 1)
	}
	got := map[uint64]byte{}
	h.Scan(clk, func(slot uint64, ts uint64, flags uint8, payload []byte) {
		got[slot] = payload[0]
	})
	if len(got) != len(want) {
		t.Fatalf("scan visited %d slots, want %d", len(got), len(want))
	}
	for s, b := range want {
		if got[s] != b {
			t.Errorf("slot %d payload %d, want %d", s, got[s], b)
		}
	}
}

func TestHeapScanChargesTraffic(t *testing.T) {
	h, sys := newTestHeap(t, Config{SlotSize: 1024, NSlots: 256, NThreads: 1})
	clk := sim.NewClock()
	for i := 0; i < 256; i++ {
		slot, _ := h.Alloc(clk, 0, 0)
		h.SetOccupied(clk, slot)
	}
	sys.Cache.FlushAll(clk)
	before := clk.Nanos()
	h.Scan(clk, func(uint64, uint64, uint8, []byte) {})
	if clk.Nanos()-before < 256*100 {
		t.Fatal("heap scan charged almost no virtual time; recovery costs would be wrong")
	}
}

func TestHeapMetaIndependentPerSlot(t *testing.T) {
	h, _ := newTestHeap(t, Config{SlotSize: 64, NSlots: 8, NThreads: 1})
	l0, r0 := h.Meta(0)
	l1, _ := h.Meta(1)
	l0.Store(7)
	r0.Store(9)
	if l1.Load() != 0 {
		t.Fatal("meta words shared between slots")
	}
	if l0.Load() != 7 || r0.Load() != 9 {
		t.Fatal("meta words lost values")
	}
}
