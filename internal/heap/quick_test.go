package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// TestQuickAllocRetireNoDoubleHandout: under arbitrary alloc/retire
// interleavings with advancing horizons, the heap must never hand the same
// slot to two live owners, and recycled slots must respect their reclaim
// horizons.
func TestQuickAllocRetireNoDoubleHandout(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 32 << 20})
		h, err := New(sys.Space, 0, Config{SlotSize: 64, NSlots: 64, NThreads: 2})
		if err != nil {
			t.Fatal(err)
		}
		clk := sim.NewClock()
		live := map[uint64]bool{}
		retired := map[uint64]uint64{} // slot -> horizon
		now := uint64(100)
		for i := 0; i < 500; i++ {
			now += uint64(rng.Intn(5))
			th := rng.Intn(2)
			if rng.Intn(2) == 0 {
				slot, err := h.Alloc(clk, th, now)
				if err != nil {
					continue // exhausted or horizon-blocked: fine
				}
				if live[slot] {
					return false // double handout to a live owner
				}
				if hz, wasRetired := retired[slot]; wasRetired && hz >= now {
					return false // recycled before its horizon passed
				}
				delete(retired, slot)
				live[slot] = true
			} else if len(live) > 0 {
				// Retire a random live slot with a fresh horizon.
				var slot uint64
				for s := range live {
					slot = s
					break
				}
				delete(live, slot)
				hz := now + uint64(rng.Intn(10))
				h.Retire(clk, slot, now, hz, rng.Intn(2) == 0)
				retired[slot] = hz
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFreeListSurvivesCrash: the durable deleted list must reproduce
// the DRAM mirror after a crash (horizons reset; membership preserved).
func TestQuickFreeListSurvivesCrash(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 32 << 20})
		h, _ := New(sys.Space, 0, Config{SlotSize: 64, NSlots: 32, NThreads: 1})
		clk := sim.NewClock()
		var freed []uint64
		for i := 0; i < 16; i++ {
			slot, err := h.Alloc(clk, 0, 0)
			if err != nil {
				break
			}
			h.SetOccupied(clk, slot)
			if rng.Intn(2) == 0 {
				h.Retire(clk, slot, uint64(i+1), uint64(i+1), false)
				freed = append(freed, slot)
			}
		}
		h2, err := Open(sys.Crash().Space, clk, 0)
		if err != nil {
			return false
		}
		// Every freed slot must come back, in FIFO order, with horizon 0.
		for _, want := range freed {
			got, err := h2.Alloc(clk, 0, 1)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
