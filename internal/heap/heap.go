// Package heap implements the in-NVM tuple heap (paper §5.1). All tuples
// live in a fixed-stride slot array on the simulated persistent space. The
// same layout serves both update disciplines:
//
//   - in-place engines keep exactly one slot per logical tuple and overwrite
//     fields through the cache;
//   - out-of-place engines allocate a fresh slot per update (the new version)
//     and invalidate the predecessor.
//
// Slots are partitioned statically across worker threads; each thread
// allocates from its own range with a persistent bump cursor and recycles
// from a persistent per-thread deleted list, exactly as described in §5.4
// (the deleted list is threaded through the slot headers in NVM so it
// survives crashes under persistent cache).
//
// Concurrency-control metadata (lock word, read timestamp) is kept in a
// native shadow array: logically it is the paper's 8-byte metadata field
// inside the tuple, but it must support host-atomic CAS, which the simulated
// cache cannot provide. The shadow is identical for every engine under test
// and is reinitialized on recovery (the paper's "clear the lock bits" step).
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

const (
	heapMagic = 0xFA1C04EA_90000001

	// header field offsets within the 64-byte global header
	hdrMagic    = 0
	hdrSlotSize = 8  // u32 payload bytes
	hdrStride   = 12 // u32 slot stride
	hdrNSlots   = 16 // u64
	hdrNThreads = 24 // u32

	// per-thread block (64 bytes each, after the global header)
	thrCursor  = 0 // u64: next never-allocated slot in the thread's range
	thrDelHead = 8 // u64: slot+1 of the head of the deleted list, 0 = nil
	thrDelTail = 16

	// slot header: [0:8] write timestamp, [8:16] flags+link word
	slotHdrBytes = 16

	// flags word layout: low 8 bits flags, bits 8..63 next-deleted link
	// (slot+1).

	// FlagOccupied marks an ever-populated slot.
	FlagOccupied = 1 << 0
	// FlagDeleted marks a deleted tuple awaiting recycling.
	FlagDeleted = 1 << 1
	// FlagInvalidated marks a superseded out-of-place version.
	FlagInvalidated = 1 << 2
)

// ErrHeapFull is returned when a thread's slot range and deleted list are
// both exhausted.
var ErrHeapFull = errors.New("heap: no free slots for thread")

// ErrReclaimPending is returned when free slots exist but are still inside
// some running transaction's visibility horizon. Callers should treat it as
// a transient conflict (abort and retry) — backpressure, not capacity
// exhaustion.
var ErrReclaimPending = errors.New("heap: free slots pending reclaim")

// Config sizes a new heap.
type Config struct {
	// SlotSize is the tuple payload width in bytes.
	SlotSize int
	// NSlots is the total slot count, split evenly across threads.
	NSlots uint64
	// NThreads is the number of worker threads owning slot ranges.
	NThreads int
}

// Heap is a tuple heap over a persistent (or DRAM) space.
type Heap struct {
	space pmem.Space
	base  uint64

	slotSize  int
	stride    uint64
	nslots    uint64
	nthreads  int
	perThread uint64
	slotsBase uint64

	meta []slotMeta
	// listMu serializes each thread's allocation cursor and deleted list:
	// transactions retire superseded versions to the slot owner's list,
	// which may be another thread's.
	listMu []sync.Mutex
	// free mirrors the persistent deleted lists in DRAM, carrying the
	// reclaim horizon for each entry. The horizon is a FRESH timestamp
	// drawn when the slot is linked — not the retiring transaction's TID —
	// because a concurrent reader that resolved the slot through the index
	// may carry a TID larger than the retiring transaction's. Any such
	// reader began before the link, so its TID is below the fresh
	// timestamp, and the slot stays unreclaimed until that reader is gone.
	free [][]freeEntry
}

type freeEntry struct {
	slot uint64
	ts   uint64 // reclaim horizon; 0 = immediately reclaimable
}

type slotMeta struct {
	lock   atomic.Uint64 // CC word; interpretation is up to the CC algorithm
	readTS atomic.Uint64
}

// BytesNeeded returns the persistent footprint of a heap with cfg,
// accounting for the rounding of NSlots to a thread multiple that New
// performs.
func BytesNeeded(cfg Config) uint64 {
	stride := slotStride(cfg.SlotSize)
	return headerBytes(cfg.NThreads) + stride*roundSlots(cfg.NSlots, cfg.NThreads)
}

// roundSlots pads the slot count to a multiple of the thread count so the
// per-thread ranges are equal.
func roundSlots(n uint64, threads int) uint64 {
	if threads <= 0 {
		return n
	}
	if rem := n % uint64(threads); rem != 0 {
		n += uint64(threads) - rem
	}
	return n
}

func slotStride(slotSize int) uint64 {
	return (uint64(slotSize) + slotHdrBytes + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
}

func headerBytes(nthreads int) uint64 {
	return 64 + 64*uint64(nthreads)
}

// New formats a heap at base in space. The region [base, base+BytesNeeded)
// must be owned by the caller. Initial contents are installed with BulkWrite
// (zeroed slots), matching a freshly created database file.
func New(space pmem.Space, base uint64, cfg Config) (*Heap, error) {
	if cfg.SlotSize <= 0 || cfg.NSlots == 0 || cfg.NThreads <= 0 {
		return nil, fmt.Errorf("heap: bad config %+v", cfg)
	}
	cfg.NSlots = roundSlots(cfg.NSlots, cfg.NThreads)
	h := &Heap{
		space:     space,
		base:      base,
		slotSize:  cfg.SlotSize,
		stride:    slotStride(cfg.SlotSize),
		nslots:    cfg.NSlots,
		nthreads:  cfg.NThreads,
		perThread: cfg.NSlots / uint64(cfg.NThreads),
	}
	h.slotsBase = base + headerBytes(cfg.NThreads)
	if h.slotsBase+h.stride*h.nslots > space.Size() {
		return nil, fmt.Errorf("heap: region at %d overflows space (%d slots of stride %d)", base, h.nslots, h.stride)
	}
	h.meta = make([]slotMeta, h.nslots)
	h.listMu = make([]sync.Mutex, cfg.NThreads)
	h.free = make([][]freeEntry, cfg.NThreads)

	var hdr [64]byte
	binary.LittleEndian.PutUint64(hdr[hdrMagic:], heapMagic)
	binary.LittleEndian.PutUint32(hdr[hdrSlotSize:], uint32(h.slotSize))
	binary.LittleEndian.PutUint32(hdr[hdrStride:], uint32(h.stride))
	binary.LittleEndian.PutUint64(hdr[hdrNSlots:], h.nslots)
	binary.LittleEndian.PutUint32(hdr[hdrNThreads:], uint32(h.nthreads))
	space.BulkWrite(base, hdr[:])
	for t := 0; t < h.nthreads; t++ {
		var blk [64]byte
		binary.LittleEndian.PutUint64(blk[thrCursor:], uint64(t)*h.perThread)
		space.BulkWrite(h.thrOff(t), blk[:])
	}
	return h, nil
}

// Open reattaches to a heap previously formatted at base (recovery). Shadow
// CC metadata is reset — the "clear lock bits" step of recovery.
func Open(space pmem.Space, clk *sim.Clock, base uint64) (*Heap, error) {
	var hdr [64]byte
	space.Read(clk, base, hdr[:])
	if binary.LittleEndian.Uint64(hdr[hdrMagic:]) != heapMagic {
		return nil, errors.New("heap: no heap header at base")
	}
	h := &Heap{
		space:    space,
		base:     base,
		slotSize: int(binary.LittleEndian.Uint32(hdr[hdrSlotSize:])),
		stride:   uint64(binary.LittleEndian.Uint32(hdr[hdrStride:])),
		nslots:   binary.LittleEndian.Uint64(hdr[hdrNSlots:]),
		nthreads: int(binary.LittleEndian.Uint32(hdr[hdrNThreads:])),
	}
	h.perThread = h.nslots / uint64(h.nthreads)
	h.slotsBase = base + headerBytes(h.nthreads)
	h.meta = make([]slotMeta, h.nslots)
	h.listMu = make([]sync.Mutex, h.nthreads)
	h.free = make([][]freeEntry, h.nthreads)
	// Rebuild the DRAM free mirror from the durable lists. Horizons reset
	// to zero: after a crash no transaction can hold stale references.
	// Under ADR the list head/tail words and the per-slot link words are
	// cached state that may be stale or torn on the media, so the walk is
	// defensive: an out-of-range link or a list longer than the thread's
	// slot range (a cycle) terminates the walk instead of looping or
	// mirroring garbage. Out-of-place recovery additionally discards these
	// lists wholesale and rebuilds them from the heap scan.
	for t := 0; t < h.nthreads; t++ {
		for link := h.readThr(clk, t, thrDelHead); link != 0; {
			slot := link - 1
			if slot >= h.nslots || uint64(len(h.free[t])) >= h.perThread {
				break
			}
			h.free[t] = append(h.free[t], freeEntry{slot: slot})
			link = h.readFlagsWord(clk, slot) >> 8
		}
	}
	return h, nil
}

// ---- geometry ----

// NSlots returns the slot capacity.
func (h *Heap) NSlots() uint64 { return h.nslots }

// SlotSize returns the payload width.
func (h *Heap) SlotSize() int { return h.slotSize }

// NThreads returns the owning thread count.
func (h *Heap) NThreads() int { return h.nthreads }

// Owner returns the thread that owns slot's range.
func (h *Heap) Owner(slot uint64) int { return int(slot / h.perThread) }

// Bytes returns the persistent footprint.
func (h *Heap) Bytes() uint64 { return headerBytes(h.nthreads) + h.stride*h.nslots }

func (h *Heap) thrOff(t int) uint64        { return h.base + 64 + 64*uint64(t) }
func (h *Heap) slotOff(slot uint64) uint64 { return h.slotsBase + slot*h.stride }

// PayloadAddr returns the absolute space offset of the slot's payload, used
// for hinted flushes and diagnostics.
func (h *Heap) PayloadAddr(slot uint64) uint64 { return h.slotOff(slot) + slotHdrBytes }

// Meta returns the shadow CC metadata words for slot.
func (h *Heap) Meta(slot uint64) (lock, readTS *atomic.Uint64) {
	m := &h.meta[slot]
	return &m.lock, &m.readTS
}

// ---- persistent slot access ----

// WriteTS durably records the writer timestamp of slot.
func (h *Heap) WriteTS(clk *sim.Clock, slot uint64, ts uint64) {
	h.space.WriteU64(clk, h.slotOff(slot), ts)
}

// ReadTS reads the durable writer timestamp of slot.
func (h *Heap) ReadTS(clk *sim.Clock, slot uint64) uint64 {
	return h.space.ReadU64(clk, h.slotOff(slot))
}

// ReadFlags returns the flags byte of slot (low bits of the flags word).
func (h *Heap) ReadFlags(clk *sim.Clock, slot uint64) uint8 {
	return uint8(h.space.ReadU64(clk, h.slotOff(slot)+8) & 0xFF)
}

func (h *Heap) writeFlagsWord(clk *sim.Clock, slot uint64, w uint64) {
	h.space.WriteU64(clk, h.slotOff(slot)+8, w)
}

func (h *Heap) readFlagsWord(clk *sim.Clock, slot uint64) uint64 {
	return h.space.ReadU64(clk, h.slotOff(slot)+8)
}

// SetOccupied marks slot live (insert path).
func (h *Heap) SetOccupied(clk *sim.Clock, slot uint64) {
	h.writeFlagsWord(clk, slot, FlagOccupied)
}

// SetInvalidated marks an out-of-place version as superseded.
func (h *Heap) SetInvalidated(clk *sim.Clock, slot uint64) {
	w := h.readFlagsWord(clk, slot)
	h.writeFlagsWord(clk, slot, w|FlagInvalidated)
}

// IsLive reports whether slot holds a current tuple (occupied, not deleted,
// not invalidated).
func (h *Heap) IsLive(clk *sim.Clock, slot uint64) bool {
	f := h.ReadFlags(clk, slot)
	return f&FlagOccupied != 0 && f&(FlagDeleted|FlagInvalidated) == 0
}

// ReadPayload copies the whole tuple payload into dst (len >= SlotSize).
func (h *Heap) ReadPayload(clk *sim.Clock, slot uint64, dst []byte) {
	h.space.Read(clk, h.PayloadAddr(slot), dst[:h.slotSize])
}

// ReadRange copies payload bytes [off, off+len(dst)).
func (h *Heap) ReadRange(clk *sim.Clock, slot uint64, off int, dst []byte) {
	h.space.Read(clk, h.PayloadAddr(slot)+uint64(off), dst)
}

// ReadRangeU64 reads the little-endian word at payload offset off — the
// scratch-free form of an 8-byte ReadRange (key and secondary-key probes).
func (h *Heap) ReadRangeU64(clk *sim.Clock, slot uint64, off int) uint64 {
	return h.space.ReadU64(clk, h.PayloadAddr(slot)+uint64(off))
}

// WritePayload overwrites the whole payload.
func (h *Heap) WritePayload(clk *sim.Clock, slot uint64, src []byte) {
	h.space.Write(clk, h.PayloadAddr(slot), src[:h.slotSize])
}

// WriteRange overwrites payload bytes [off, off+len(src)) — an in-place
// field update.
func (h *Heap) WriteRange(clk *sim.Clock, slot uint64, off int, src []byte) {
	h.space.Write(clk, h.PayloadAddr(slot)+uint64(off), src)
}

// CLWBSlot issues write-back hints for the slot header and payload range
// [off, off+n). Part of the hinted flush: the caller issues SFence first.
func (h *Heap) CLWBSlot(clk *sim.Clock, slot uint64, off, n int) {
	start := h.slotOff(slot) // include the header lines: ts lives there
	end := h.PayloadAddr(slot) + uint64(off+n)
	if off > 0 {
		start = h.PayloadAddr(slot) + uint64(off)
		// still flush the header word separately: it carries the durable ts
		h.space.CLWB(clk, h.slotOff(slot), slotHdrBytes)
	}
	h.space.CLWB(clk, start, int(end-start))
}

// FlushSpans appends the byte ranges CLWBSlot would flush for (slot, off, n)
// without issuing the write-backs — group commit collects them into the
// epoch seal's flush trains instead of flushing per commit.
func (h *Heap) FlushSpans(slot uint64, off, n int, spans []pmem.Span) []pmem.Span {
	start := h.slotOff(slot) // include the header lines: ts lives there
	end := h.PayloadAddr(slot) + uint64(off+n)
	if off > 0 {
		start = h.PayloadAddr(slot) + uint64(off)
		spans = append(spans, pmem.Span{Off: h.slotOff(slot), N: slotHdrBytes})
	}
	return append(spans, pmem.Span{Off: start, N: int(end - start)})
}

// SFence orders prior stores.
func (h *Heap) SFence(clk *sim.Clock) { h.space.SFence(clk) }

// BulkInstall writes a tuple during initial load, bypassing simulation.
// Loaders should pass ts 0 so recovery classifies the tuple as committed
// regardless of per-thread commit markers.
func (h *Heap) BulkInstall(slot uint64, ts uint64, payload []byte) {
	h.space.BulkWriteU64(h.slotOff(slot), ts)
	h.space.BulkWriteU64(h.slotOff(slot)+8, FlagOccupied)
	h.space.BulkWrite(h.PayloadAddr(slot), payload[:h.slotSize])
}

// ---- allocation ----

// readThr / writeThr access a field in the per-thread persistent block.
func (h *Heap) readThr(clk *sim.Clock, t int, field uint64) uint64 {
	return h.space.ReadU64(clk, h.thrOff(t)+field)
}

func (h *Heap) writeThr(clk *sim.Clock, t int, field uint64, v uint64) {
	h.space.WriteU64(clk, h.thrOff(t)+field, v)
}

// Alloc returns a free slot for thread t. It prefers the head of the
// thread's deleted list when that tuple's deletion timestamp is older than
// minActive (no running transaction can still see it); otherwise it bumps
// the thread's cursor. minActive may be 0 to disable recycling.
func (h *Heap) Alloc(clk *sim.Clock, t int, minActive uint64) (uint64, error) {
	h.listMu[t].Lock()
	defer h.listMu[t].Unlock()
	if len(h.free[t]) > 0 && minActive != 0 {
		e := h.free[t][0]
		if e.ts < minActive {
			h.free[t] = h.free[t][1:]
			// Keep the durable list in sync: pop its head too.
			w := h.readFlagsWord(clk, e.slot)
			next := w >> 8
			h.writeThr(clk, t, thrDelHead, next)
			if next == 0 {
				h.writeThr(clk, t, thrDelTail, 0)
			}
			h.writeFlagsWord(clk, e.slot, 0)
			return e.slot, nil
		}
		// Head not yet reclaimable; entries are horizon-ordered (the
		// horizon clock is monotone), so no later entry is either.
	}
	cur := h.readThr(clk, t, thrCursor)
	limit := (uint64(t) + 1) * h.perThread
	if cur >= limit {
		if len(h.free[t]) > 0 {
			return 0, fmt.Errorf("%w (thread %d, %d pending)", ErrReclaimPending, t, len(h.free[t]))
		}
		return 0, fmt.Errorf("%w %d", ErrHeapFull, t)
	}
	h.writeThr(clk, t, thrCursor, cur+1)
	return cur, nil
}

// MarkDeleted durably records that slot was deleted at ts, without linking
// it for recycling. Out-of-place engines use the flag + timestamp as their
// durable delete record ahead of the commit marker; linking happens after.
func (h *Heap) MarkDeleted(clk *sim.Clock, slot uint64, ts uint64) {
	h.WriteTS(clk, slot, ts)
	h.writeFlagsWord(clk, slot, FlagOccupied|FlagDeleted)
}

// MarkInvalidated durably records that slot's version was superseded at ts.
//
// Store order matters for crash consistency: the flag must land before the
// timestamp. Invalidation runs after the commit marker, so a crash between
// the two stores must leave the old version either fully live with its
// ORIGINAL timestamp (flag not yet written — recovery's newest-version scan
// then prefers the new version, whose TID is higher) or dead (flag written —
// recovery relinks it). Stamping ts first would, on a crash between the
// stores, leave TWO live versions of the key carrying the same TID, and the
// scan could repoint the index at the superseded payload. MarkDeleted is the
// opposite: its timestamp IS the durable commit protocol (written before the
// marker), so there ts must land first.
func (h *Heap) MarkInvalidated(clk *sim.Clock, slot uint64, ts uint64) {
	h.writeFlagsWord(clk, slot, FlagOccupied|FlagInvalidated)
	h.WriteTS(clk, slot, ts)
}

// ClearDeleted rolls back an uncommitted delete record (recovery only).
func (h *Heap) ClearDeleted(clk *sim.Clock, slot uint64) {
	h.writeFlagsWord(clk, slot, FlagOccupied)
}

// Link appends an already-marked slot to its owner's deleted list for
// recycling, with the given reclaim horizon: the slot is handed out again
// only once every running transaction's TID exceeds reclaimTS. The list is
// appended at the tail so it stays horizon-ordered (§5.4). Safe for
// cross-thread use.
func (h *Heap) Link(clk *sim.Clock, slot uint64, reclaimTS uint64) {
	t := h.Owner(slot)
	h.listMu[t].Lock()
	defer h.listMu[t].Unlock()
	if tail := h.readThr(clk, t, thrDelTail); tail != 0 {
		prev := tail - 1
		w := h.readFlagsWord(clk, prev)
		h.writeFlagsWord(clk, prev, (w&0xFF)|((slot+1)<<8))
	} else {
		h.writeThr(clk, t, thrDelHead, slot+1)
	}
	h.writeThr(clk, t, thrDelTail, slot+1)
	h.free[t] = append(h.free[t], freeEntry{slot: slot, ts: reclaimTS})
}

// Retire marks slot deleted (or invalidated) with durable timestamp ts and
// links it with reclaim horizon reclaimTS (pass a freshly drawn TID during
// normal operation; 0 during recovery or for never-published slots).
func (h *Heap) Retire(clk *sim.Clock, slot uint64, ts, reclaimTS uint64, invalidated bool) {
	if invalidated {
		h.MarkInvalidated(clk, slot, ts)
	} else {
		h.MarkDeleted(clk, slot, ts)
	}
	h.Link(clk, slot, reclaimTS)
}

// FreeStats reports, for diagnostics, each thread's free-list length and
// head horizon.
func (h *Heap) FreeStats() (lens []int, heads []uint64) {
	for t := 0; t < h.nthreads; t++ {
		h.listMu[t].Lock()
		lens = append(lens, len(h.free[t]))
		if len(h.free[t]) > 0 {
			heads = append(heads, h.free[t][0].ts)
		} else {
			heads = append(heads, 0)
		}
		h.listMu[t].Unlock()
	}
	return
}

// IsDeleted reports the deleted flag.
func (h *Heap) IsDeleted(clk *sim.Clock, slot uint64) bool {
	return h.ReadFlags(clk, slot)&FlagDeleted != 0
}

// AllocatedBound returns, for scan purposes, the per-thread cursor positions:
// all slots below a thread's cursor within its range have been allocated at
// some point.
func (h *Heap) AllocatedBound(clk *sim.Clock, t int) uint64 {
	return h.readThr(clk, t, thrCursor)
}

// Scan invokes fn for every ever-allocated slot, passing the durable ts and
// flags and the payload. It charges full read traffic — this is the
// expensive, heap-size-proportional operation that out-of-place engines must
// run during recovery to rebuild their DRAM index.
func (h *Heap) Scan(clk *sim.Clock, fn func(slot uint64, ts uint64, flags uint8, payload []byte)) {
	for t := 0; t < h.nthreads; t++ {
		h.scanRange(clk, uint64(t)*h.perThread, h.AllocatedBound(clk, t), fn)
	}
}

// ScanAll is Scan over each thread's entire slot range, ignoring the
// allocation cursors. The cursors are written through the cache and never
// flushed on the hot path, so after an ADR crash they can revert to a stale
// value — a cursor-bounded scan would then miss durably committed versions
// past the stale cursor. Crash recovery scans the whole heap (the paper's
// §6.5 full-scan recovery) and repairs the cursors with EnsureCursorPast.
func (h *Heap) ScanAll(clk *sim.Clock, fn func(slot uint64, ts uint64, flags uint8, payload []byte)) {
	for t := 0; t < h.nthreads; t++ {
		h.scanRange(clk, uint64(t)*h.perThread, (uint64(t)+1)*h.perThread, fn)
	}
}

func (h *Heap) scanRange(clk *sim.Clock, lo, hi uint64, fn func(slot uint64, ts uint64, flags uint8, payload []byte)) {
	buf := make([]byte, h.slotSize)
	var hdr [16]byte
	for slot := lo; slot < hi; slot++ {
		h.space.Read(clk, h.slotOff(slot), hdr[:])
		ts := binary.LittleEndian.Uint64(hdr[0:])
		flags := uint8(binary.LittleEndian.Uint64(hdr[8:]) & 0xFF)
		if flags&FlagOccupied == 0 {
			continue
		}
		h.space.Read(clk, h.PayloadAddr(slot), buf)
		fn(slot, ts, flags, buf)
	}
}

// EnsureCursorPast bumps the owning thread's allocation cursor to slot+1 if
// it is behind. Recovery calls this for every occupied slot it accepts, so a
// crash-reverted cursor cannot hand a recovered tuple's slot out again.
func (h *Heap) EnsureCursorPast(clk *sim.Clock, slot uint64) {
	t := h.Owner(slot)
	h.listMu[t].Lock()
	defer h.listMu[t].Unlock()
	if cur := h.readThr(clk, t, thrCursor); cur <= slot {
		h.writeThr(clk, t, thrCursor, slot+1)
	}
}

// ScrubDeletedLists drops from each thread's deleted list every entry whose
// slot is live again, and rewrites the durable chain so the media and the
// DRAM mirror agree. Two crash shapes leave a live slot listed: replay can
// transiently relink a slot that a later committed record re-inserts (the
// delete's timestamp guard cannot see heap writes that were still in the
// lost cache when the re-inserting WAL record was published), and under ADR
// the durable list head itself may be stale — still naming a slot whose
// reclaiming pop was cached and lost while the re-allocating insert
// committed. Either way, handing the slot out again would clobber a durably
// committed tuple. In-place recovery calls this after log replay, once every
// durable flag is final: only slots still marked dead stay listed. Horizons
// reset to zero (no pre-crash transaction survives). Returns the number of
// entries dropped.
func (h *Heap) ScrubDeletedLists(clk *sim.Clock) (dropped int) {
	for t := 0; t < h.nthreads; t++ {
		h.listMu[t].Lock()
		kept := h.free[t][:0]
		seen := make(map[uint64]bool, len(h.free[t]))
		for _, e := range h.free[t] {
			if seen[e.slot] {
				dropped++
				continue
			}
			seen[e.slot] = true
			if h.ReadFlags(clk, e.slot)&(FlagDeleted|FlagInvalidated) == 0 {
				dropped++
				continue
			}
			kept = append(kept, freeEntry{slot: e.slot})
		}
		if len(kept) == 0 {
			h.writeThr(clk, t, thrDelHead, 0)
			h.writeThr(clk, t, thrDelTail, 0)
		} else {
			h.writeThr(clk, t, thrDelHead, kept[0].slot+1)
			h.writeThr(clk, t, thrDelTail, kept[len(kept)-1].slot+1)
			for i, e := range kept {
				var next uint64
				if i+1 < len(kept) {
					next = kept[i+1].slot + 1
				}
				w := h.readFlagsWord(clk, e.slot)
				h.writeFlagsWord(clk, e.slot, (w&0xFF)|(next<<8))
			}
		}
		h.free[t] = kept
		h.listMu[t].Unlock()
	}
	return dropped
}

// ResetDeletedLists clears every thread's durable deleted list and its DRAM
// mirror. The list head/tail and per-slot link words are written through the
// cache on the hot path, so after an ADR crash the media may hold a stale
// list that still references slots re-allocated (and live) before the crash
// — recycling such an entry would clobber a committed tuple. Out-of-place
// recovery already classifies every slot via its full heap scan, so it calls
// this first and relinks the dead slots it finds, rebuilding the lists from
// scratch.
func (h *Heap) ResetDeletedLists(clk *sim.Clock) {
	for t := 0; t < h.nthreads; t++ {
		h.listMu[t].Lock()
		h.writeThr(clk, t, thrDelHead, 0)
		h.writeThr(clk, t, thrDelTail, 0)
		h.free[t] = nil
		h.listMu[t].Unlock()
	}
}
