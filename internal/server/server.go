package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/obs"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the pool size; each pool worker is pinned to the engine
	// worker of the same id, so Workers must not exceed the engine's
	// configured Threads. 0 means all engine threads.
	Workers int
	// QueueDepth bounds admitted-but-unfinished requests (queued + running);
	// 0 means 4× Workers.
	QueueDepth int
	// DefaultDeadline applies when a request carries no X-Deadline-Ms
	// header; 0 means 1s.
	DefaultDeadline time.Duration
	// ServiceFloor, when > 0, pads every accepted request's service time up
	// to this duration. It pins the admission controller's operating point
	// for load tests: with a floor, saturation QPS is Workers/floor
	// regardless of host speed, and service time dominates scheduler jitter.
	ServiceFloor time.Duration
	// SeedServiceNanos seeds the EWMA service-time estimate before the
	// first completion; 0 means 1ms.
	SeedServiceNanos uint64
	// Stop, when non-nil, is the shared drain flag: once raised (SIGTERM),
	// admission refuses new requests while in-flight ones finish. A nil
	// Stop gets a private flag.
	Stop *bench.StopFlag
}

// pending is one admitted request waiting for a pool worker.
type pending struct {
	req      *TxnRequest
	idemKey  uint64
	readOnly bool
	deadline time.Time
	enqueued time.Time
	endpoint string
	done     chan result
}

type result struct {
	resp   *TxnResponse
	status int
}

// Server is the admission-controlled serving front-end over one engine.
type Server struct {
	e   *core.Engine
	cfg Config
	adm *admission
	// execMu serializes request execution (read side) against observability
	// snapshots (write side): the engine's phase sets and WAL gauges are
	// single-owner accumulators whose snapshot contract is quiescence, so
	// /metrics takes the write lock to get a true quiescent point.
	execMu sync.RWMutex
	// gate orders enqueues against drain: handlers enqueue under the read
	// lock, and Drain takes the write lock after raising the flag, so once
	// Drain proceeds no request can slip into the queue behind the exiting
	// workers.
	gate     sync.RWMutex
	queue    chan *pending
	quit     chan struct{}
	quitOnce sync.Once
	stop     *bench.StopFlag
	wg       sync.WaitGroup

	statsMu   sync.Mutex
	endpoints map[string]*endpointCounters
}

// endpointCounters is the live accumulator behind obs.EndpointStats.
type endpointCounters struct {
	obs.EndpointStats
	latency obs.Histogram
}

// New builds a Server over an already-opened engine (which must include the
// idempotency table — WithIdemTable) and starts its worker pool.
func New(e *core.Engine, cfg Config) (*Server, error) {
	if e.Table(IdemTable) == nil {
		return nil, fmt.Errorf("server: engine has no %s table (see WithIdemTable)", IdemTable)
	}
	if cfg.Workers <= 0 || cfg.Workers > e.Config().Threads {
		cfg.Workers = e.Config().Threads
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = time.Second
	}
	if cfg.SeedServiceNanos == 0 {
		cfg.SeedServiceNanos = uint64(time.Millisecond)
	}
	if cfg.ServiceFloor > 0 && cfg.SeedServiceNanos < uint64(cfg.ServiceFloor) {
		cfg.SeedServiceNanos = uint64(cfg.ServiceFloor)
	}
	stop := cfg.Stop
	if stop == nil {
		stop = &bench.StopFlag{}
	}
	s := &Server{
		e:         e,
		cfg:       cfg,
		adm:       newAdmission(cfg.QueueDepth, cfg.Workers, cfg.SeedServiceNanos),
		queue:     make(chan *pending, cfg.QueueDepth),
		quit:      make(chan struct{}),
		stop:      stop,
		endpoints: map[string]*endpointCounters{},
	}
	e.Obs().Register("server", s.collect)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// Engine returns the served engine.
func (s *Server) Engine() *core.Engine { return s.e }

// Stop returns the drain flag (shared with bench.Run when Config.Stop was).
func (s *Server) Stop() *bench.StopFlag { return s.stop }

func (s *Server) worker(w int) {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.queue:
			s.serve(w, p)
		case <-s.quit:
			// Drain started: finish whatever is still queued (those requests
			// were admitted before the flag rose), then exit.
			for {
				select {
				case p := <-s.queue:
					s.serve(w, p)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) serve(w int, p *pending) {
	start := time.Now()
	defer s.adm.release()
	if start.After(p.deadline) {
		s.count(p.endpoint, func(c *endpointCounters) { c.Expired++ })
		p.done <- result{&TxnResponse{Outcome: "error", Error: "deadline expired in queue"}, http.StatusGatewayTimeout}
		return
	}
	canceled := func() bool { return time.Now().After(p.deadline) }
	s.execMu.RLock()
	var resp *TxnResponse
	var err error
	if p.readOnly {
		resp, err = ApplyRO(s.e, w, p.req, canceled)
	} else {
		resp, err = Apply(s.e, w, p.idemKey, p.req, canceled)
	}
	s.execMu.RUnlock()
	if s.cfg.ServiceFloor > 0 {
		if pad := s.cfg.ServiceFloor - time.Since(start); pad > 0 {
			time.Sleep(pad)
		}
	}
	service := uint64(time.Since(start))
	s.adm.observe(service)

	var res result
	switch {
	case err == nil:
		res = result{resp, http.StatusOK}
		s.count(p.endpoint, func(c *endpointCounters) {
			c.OK++
			if resp.Replayed {
				c.Replayed++
			}
			c.latency.Observe(service)
		})
	case err == core.ErrCanceled || time.Now().After(p.deadline):
		s.count(p.endpoint, func(c *endpointCounters) { c.Expired++ })
		res = result{&TxnResponse{Outcome: "error", Error: "deadline expired"}, http.StatusGatewayTimeout}
	default:
		status := http.StatusInternalServerError
		if err == core.ErrDuplicateKey {
			status = http.StatusConflict
		}
		s.count(p.endpoint, func(c *endpointCounters) { c.Errors++ })
		res = result{&TxnResponse{Outcome: "error", Error: err.Error()}, status}
	}
	p.done <- res
}

// count applies fn to the endpoint's live counters under the stats lock.
func (s *Server) count(endpoint string, fn func(*endpointCounters)) {
	s.statsMu.Lock()
	c := s.endpoints[endpoint]
	if c == nil {
		c = &endpointCounters{}
		s.endpoints[endpoint] = c
	}
	fn(c)
	s.statsMu.Unlock()
}

// collect is the registry collector contributing Snapshot.Server.
func (s *Server) collect(snap *obs.Snapshot) {
	sv := &obs.ServerStats{
		Endpoints:       map[string]obs.EndpointStats{},
		QueueDepth:      uint64(max64(s.adm.depth.Load(), 0)),
		QueueCap:        uint64(s.cfg.QueueDepth),
		Workers:         uint64(s.cfg.Workers),
		EstServiceNanos: s.adm.ewma.Load(),
		Draining:        s.adm.draining.Load(),
	}
	s.statsMu.Lock()
	for name, c := range s.endpoints {
		ep := c.EndpointStats
		ep.Latency = c.latency.Dump()
		sv.Endpoints[name] = ep
	}
	s.statsMu.Unlock()
	snap.Server = sv
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Handler returns the HTTP mux: /v1/txn, /v1/read, /metrics, /healthz,
// /readyz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/txn", func(w http.ResponseWriter, r *http.Request) { s.handleTxn(w, r, false) })
	mux.HandleFunc("/v1/read", func(w http.ResponseWriter, r *http.Request) { s.handleTxn(w, r, true) })
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.stop.Stopped() || s.adm.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request, readOnly bool) {
	endpoint := "/v1/txn"
	if readOnly {
		endpoint = "/v1/read"
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.count(endpoint, func(c *endpointCounters) { c.Requests++ })

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.replyError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	req, err := ParseRequest(body)
	if err != nil {
		s.replyError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	var idemKey uint64
	if !readOnly {
		idemKey, err = strconv.ParseUint(r.Header.Get("Idempotency-Key"), 10, 64)
		if err != nil {
			s.replyError(w, endpoint, http.StatusBadRequest,
				fmt.Errorf("missing or malformed Idempotency-Key header"))
			return
		}
	}
	now := time.Now()
	deadline := now.Add(s.cfg.DefaultDeadline)
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseUint(h, 10, 32)
		if err != nil {
			s.replyError(w, endpoint, http.StatusBadRequest, fmt.Errorf("malformed X-Deadline-Ms"))
			return
		}
		deadline = now.Add(time.Duration(ms) * time.Millisecond)
	}

	p := &pending{
		req: req, idemKey: idemKey, readOnly: readOnly,
		deadline: deadline, enqueued: now, endpoint: endpoint,
		done: make(chan result, 1),
	}
	s.gate.RLock()
	// The drain flag sheds before the admission bookkeeping runs.
	if s.stop.Stopped() {
		s.gate.RUnlock()
		s.shed(w, endpoint, shedDraining, s.adm.estWait(1))
		return
	}
	reason, wait := s.adm.admit(now, deadline)
	if reason != shedNone {
		s.gate.RUnlock()
		s.shed(w, endpoint, reason, wait)
		return
	}
	s.queue <- p // admit() bounded the depth, so the buffer always has room
	s.gate.RUnlock()
	res := <-p.done
	writeJSON(w, res.status, res.resp)
}

// shed writes an admission rejection with Retry-After hints (whole seconds
// per RFC 9110, plus a millisecond-precision extension header for clients
// that can use it).
func (s *Server) shed(w http.ResponseWriter, endpoint string, reason shedReason, wait time.Duration) {
	s.count(endpoint, func(c *endpointCounters) {
		switch reason {
		case shedDraining:
			c.ShedDraining++
		case shedQueue:
			c.ShedQueue++
		case shedDeadline:
			c.ShedDeadline++
		}
	})
	if wait <= 0 {
		wait = time.Duration(s.adm.ewma.Load())
	}
	secs := int64(wait / time.Second)
	if wait%time.Second != 0 {
		secs++ // round up: "retry no sooner than"
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("Retry-After-Ms", strconv.FormatInt(int64(wait/time.Millisecond)+1, 10))
	status := http.StatusTooManyRequests
	msg := "shed: queue full"
	switch reason {
	case shedDeadline:
		msg = "shed: deadline unmeetable"
	case shedDraining:
		status = http.StatusServiceUnavailable
		msg = "shed: draining"
	}
	writeJSON(w, status, &TxnResponse{Outcome: "error", Error: msg})
}

func (s *Server) replyError(w http.ResponseWriter, endpoint string, status int, err error) {
	s.count(endpoint, func(c *endpointCounters) { c.Errors++ })
	writeJSON(w, status, &TxnResponse{Outcome: "error", Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleMetrics serves the Prometheus exposition. It quiesces the request
// path (write lock on execMu) so the single-owner engine accumulators are
// coherent — the same contract bench.Run's snapshots rely on.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.execMu.Lock()
	snap := s.e.ObsSnapshot()
	s.execMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = obs.WritePrometheus(w, snap, nil)
}

// Snapshot returns a quiesced observability snapshot (the same view
// /metrics serves).
func (s *Server) Snapshot() obs.Snapshot {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.e.ObsSnapshot()
}

// Drain performs the graceful shutdown: raise the stop flag (no new
// admissions), wait for in-flight requests to finish (bounded by timeout),
// then seal the group-commit epoch and sync the device so every
// acknowledged commit is durable. Returns false if in-flight work was still
// running at the timeout.
func (s *Server) Drain(timeout time.Duration) bool {
	s.stop.Stop()
	s.adm.draining.Store(true)
	// Wait out in-flight enqueues: after this, every admitted request is in
	// the queue and no new one can enter (handlers re-check the flag under
	// the read lock).
	s.gate.Lock()
	s.gate.Unlock() //nolint:staticcheck // empty critical section is the barrier
	s.quitOnce.Do(func() { close(s.quit) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	drained := true
	select {
	case <-done:
	case <-time.After(timeout):
		drained = false
	}
	if drained {
		// Quiescent: seal every open durability epoch and flush the device.
		s.e.Sync(s.e.Clock(0))
	}
	return drained
}
