package server

import (
	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/layout"
)

// IdemTable is the name of the idempotency table. It is a first-class engine
// table: the request's effects and its idempotency record commit in ONE
// transaction, so the record exists if and only if the request's effects are
// durable — the "detectable operation" invariant the crash cells verify.
const IdemTable = "__idem"

// idemSchema is the idempotency record layout: request key, result digest,
// outcome code.
func idemSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "k", Kind: layout.Uint64},
		layout.Column{Name: "digest", Kind: layout.Uint64},
		layout.Column{Name: "outcome", Kind: layout.Int64},
	)
}

// IdemSpec returns the idempotency table's spec. Engine tables are fixed at
// core.New, so callers append this to their table list before opening the
// engine (WithIdemTable does).
func IdemSpec(capacity uint64) core.TableSpec {
	return core.TableSpec{
		Name:      IdemTable,
		Schema:    idemSchema(),
		Capacity:  capacity,
		KeyCol:    0,
		IndexKind: index.Hash,
	}
}

// WithIdemTable appends the idempotency table (with the given record
// capacity) to a table list, unless one is already present.
func WithIdemTable(specs []core.TableSpec, capacity uint64) []core.TableSpec {
	for _, s := range specs {
		if s.Name == IdemTable {
			return specs
		}
	}
	return append(append([]core.TableSpec(nil), specs...), IdemSpec(capacity))
}

// outcome codes stored in the idempotency record.
const outcomeOK int64 = 1
