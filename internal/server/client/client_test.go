package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"falcon/internal/server"
)

// TestClientRetriesShedsThenSucceeds: the client retries 429s (honoring the
// Retry-After-Ms hint) and reuses the idempotency key on every attempt.
func TestClientRetriesShedsThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	keys := make(chan string, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys <- r.Header.Get("Idempotency-Key")
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Retry-After-Ms", "20")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(&server.TxnResponse{Outcome: "error", Error: "shed: queue full"})
			return
		}
		json.NewEncoder(w).Encode(&server.TxnResponse{Outcome: "ok", Digest: "00000000000000aa"})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: ts.URL,
		Backoff: NewBackoff(time.Millisecond, 100*time.Millisecond, 1),
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	resp, err := c.Do(99, &server.TxnRequest{Ops: []server.Op{{Op: "get", Table: "kv", Key: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Digest != "00000000000000aa" {
		t.Fatalf("digest = %s", resp.Digest)
	}
	if c.Retries != 2 || c.Sheds != 2 {
		t.Fatalf("retries %d sheds %d, want 2/2", c.Retries, c.Sheds)
	}
	close(keys)
	for k := range keys {
		if k != "99" {
			t.Fatalf("idempotency key changed across retries: %q", k)
		}
	}
	// The 20ms hint dominates the 1ms backoff base.
	for _, d := range slept {
		if d < 20*time.Millisecond {
			t.Fatalf("slept %v, less than the server's 20ms hint", d)
		}
	}
}

// TestClientGivesUpAfterMaxAttempts and does not retry terminal errors.
func TestClientAttemptPolicy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(&server.TxnResponse{Outcome: "error", Error: "shed"})
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, MaxAttempts: 3,
		Backoff: NewBackoff(time.Microsecond, time.Millisecond, 1),
		Sleep:   func(time.Duration) {}}
	if _, err := c.Do(1, &server.TxnRequest{Ops: []server.Op{{Op: "get", Table: "kv"}}}); err == nil {
		t.Fatal("exhausted retries did not error")
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d attempts, want 3", calls.Load())
	}

	calls.Store(0)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(&server.TxnResponse{Outcome: "error", Error: "duplicate key"})
	}))
	defer ts2.Close()
	c2 := &Client{BaseURL: ts2.URL, Sleep: func(time.Duration) {}}
	if _, err := c2.Do(1, &server.TxnRequest{Ops: []server.Op{{Op: "insert", Table: "kv"}}}); err == nil {
		t.Fatal("terminal 409 did not error")
	}
	if calls.Load() != 1 {
		t.Fatalf("terminal error retried: %d attempts", calls.Load())
	}
}
