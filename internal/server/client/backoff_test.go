package client

import (
	"sort"
	"testing"
	"time"
)

// TestBackoffDeterministic: same seed → identical delay sequence; different
// seed → different sequence.
func TestBackoffDeterministic(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		b := NewBackoff(10*time.Millisecond, 2*time.Second, seed)
		out := make([]time.Duration, 12)
		for i := range out {
			out[i] = b.Delay(i)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v != %v with same seed", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestBackoffCapAndGrowth: delays grow roughly exponentially, stay within
// [cap/2, cap) once capped, and never exceed the cap.
func TestBackoffCapAndGrowth(t *testing.T) {
	base, cap := 10*time.Millisecond, 500*time.Millisecond
	b := NewBackoff(base, cap, 3)
	for attempt := 0; attempt < 20; attempt++ {
		d := b.Delay(attempt)
		raw := base << uint(attempt)
		if attempt > 20 || raw > cap || raw <= 0 {
			raw = cap
		}
		if d >= cap {
			t.Fatalf("attempt %d: delay %v >= cap %v", attempt, d, cap)
		}
		if d < raw/2 {
			t.Fatalf("attempt %d: delay %v below half the window %v", attempt, d, raw)
		}
	}
	// Late attempts must sit in the cap's jitter window.
	for i := 0; i < 50; i++ {
		d := b.Delay(15)
		if d < cap/2 || d >= cap {
			t.Fatalf("capped delay %v outside [%v, %v)", d, cap/2, cap)
		}
	}
}

// TestBackoffNoHerd: 64 clients shed at the same instant must NOT retry in
// lockstep — their first-retry times spread across the jitter window rather
// than collapsing onto a few instants.
func TestBackoffNoHerd(t *testing.T) {
	const clients = 64
	delays := make([]time.Duration, clients)
	for i := range delays {
		delays[i] = NewBackoff(10*time.Millisecond, 2*time.Second, uint64(i+1)).Delay(0)
	}
	sorted := append([]time.Duration(nil), delays...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Distinctness: at least half the clients land on distinct instants.
	distinct := 1
	for i := 1; i < clients; i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	if distinct < clients/2 {
		t.Fatalf("only %d distinct retry instants across %d clients", distinct, clients)
	}
	// Spread: the population uses a meaningful fraction of the [5ms, 10ms)
	// jitter window, not one tight cluster.
	if spread := sorted[clients-1] - sorted[0]; spread < time.Millisecond {
		t.Fatalf("retry spread %v too tight — synchronized herd", spread)
	}
	// No instant carries more than a quarter of the clients.
	counts := map[time.Duration]int{}
	for _, d := range delays {
		counts[d]++
		if counts[d] > clients/4 {
			t.Fatalf("%d clients share retry instant %v", counts[d], d)
		}
	}
}
