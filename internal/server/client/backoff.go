// Package client is the retrying falcon-serve client: capped exponential
// backoff with seeded deterministic jitter, idempotency-key reuse across
// retries (the server's idempotency table turns retries into replays), and
// Retry-After honoring so a shed burst does not reconverge as a
// synchronized herd.
package client

import "time"

// Backoff computes retry delays: capped exponential growth with
// deterministic jitter drawn from a seeded splitmix64 stream. Two Backoffs
// with the same seed produce identical delay sequences (testable,
// reproducible load scenarios); different seeds decorrelate, which is what
// breaks up a retry herd after a synchronized shed.
type Backoff struct {
	// Base is the attempt-0 delay; Cap bounds the exponential growth.
	Base, Cap time.Duration
	state     uint64
}

// NewBackoff seeds a backoff policy. base and cap default to 10ms and 2s.
func NewBackoff(base, cap time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	return &Backoff{Base: base, Cap: cap, state: seed}
}

// splitmix64 advances the jitter stream.
func (b *Backoff) next() uint64 {
	b.state += 0x9e3779b97f4a7c15
	z := b.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Delay returns the wait before retry `attempt` (0-based): min(Cap,
// Base<<attempt) scaled by a jitter factor in [0.5, 1.0). The full-jitter
// halving keeps the expected delay growing exponentially while spreading
// simultaneous retriers across half the window.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Cap; i++ {
		d *= 2
	}
	if d > b.Cap {
		d = b.Cap
	}
	// jitter in [0.5, 1.0): high bit fixed, rest uniform.
	j := 0.5 + 0.5*float64(b.next()>>11)/float64(1<<53)
	return time.Duration(float64(d) * j)
}
