package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"falcon/internal/server"
)

// Client submits transactions to a falcon-serve endpoint with retries. The
// idempotency key is fixed per logical request and reused across retries, so
// a retry after a timeout or crash is answered from the server's idempotency
// table instead of re-executing.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Backoff paces retries; nil means NewBackoff defaults with seed 1.
	Backoff *Backoff
	// MaxAttempts bounds tries per request (0 means 5).
	MaxAttempts int
	// DeadlineMs is sent as X-Deadline-Ms when > 0.
	DeadlineMs int
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)

	// Retries counts extra attempts made; Sheds counts 429/503 responses
	// observed. Single-goroutine counters for the load generator.
	Retries uint64
	Sheds   uint64
}

// retryable reports whether a response status warrants another attempt.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter extracts the server's wait hint, preferring the
// millisecond-precision extension header.
func retryAfter(h http.Header) (time.Duration, bool) {
	if v := h.Get("Retry-After-Ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms >= 0 {
			return time.Duration(ms) * time.Millisecond, true
		}
	}
	if v := h.Get("Retry-After"); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil && s >= 0 {
			return time.Duration(s) * time.Second, true
		}
	}
	return 0, false
}

// Do submits one transaction under the given idempotency key, retrying
// sheds, timeouts, and transport errors with capped jittered backoff. The
// returned response may be a replay (resp.Replayed) — by the idempotency
// contract its digest equals the original execution's.
func (c *Client) Do(idemKey uint64, req *server.TxnRequest) (*server.TxnResponse, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	bo := c.Backoff
	if bo == nil {
		bo = NewBackoff(0, 0, 1)
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.Retries++
		}
		resp, status, hdr, err := c.once(hc, idemKey, body)
		switch {
		case err != nil:
			lastErr = err // transport error: retry
		case status == http.StatusOK:
			return resp, nil
		case retryable(status):
			c.Sheds++
			lastErr = fmt.Errorf("status %d: %s", status, resp.Error)
		default:
			// Protocol or application error: retrying cannot help.
			return resp, fmt.Errorf("status %d: %s", status, resp.Error)
		}
		if attempt == attempts-1 {
			break
		}
		wait := bo.Delay(attempt)
		if hinted, ok := retryAfter(hdr); ok && hinted > wait {
			// The server knows its drain time; never retry sooner than its
			// hint, but keep our jitter on top so hinted clients spread out.
			wait = hinted + bo.Delay(attempt)/2
		}
		sleep(wait)
	}
	return nil, fmt.Errorf("client: %d attempts exhausted: %w", attempts, lastErr)
}

func (c *Client) once(hc *http.Client, idemKey uint64, body []byte) (*server.TxnResponse, int, http.Header, error) {
	hr, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/txn", bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Idempotency-Key", strconv.FormatUint(idemKey, 10))
	if c.DeadlineMs > 0 {
		hr.Header.Set("X-Deadline-Ms", strconv.Itoa(c.DeadlineMs))
	}
	resp, err := hc.Do(hr)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, resp.StatusCode, resp.Header, err
	}
	var tr server.TxnResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		return nil, resp.StatusCode, resp.Header, fmt.Errorf("bad response body: %w", err)
	}
	return &tr, resp.StatusCode, resp.Header, nil
}
