package server

import (
	"encoding/binary"
	"errors"
	"fmt"

	"falcon/internal/core"
)

// errReplayed signals that the idempotency table answered the request. It
// wraps ErrRollback so the (side-effect-free) lookup transaction aborts under
// the user-rollback taxonomy and Engine.Run does not retry it.
var errReplayed = fmt.Errorf("server: idempotent replay (%w)", core.ErrRollback)

// errIdemRace signals that another in-flight execution of the same
// idempotency key committed between our lookup and our record insert; the
// caller loops back and serves the replay.
var errIdemRace = fmt.Errorf("server: idempotency-key race (%w)", core.ErrRollback)

// Apply executes one request transaction on the given engine worker with
// exactly-once semantics: the idempotency record for idemKey is read first
// (a hit short-circuits to a replay), and on a fresh execution the record —
// key, result digest, outcome — is inserted in the SAME transaction as the
// request's effects, so a crash either persists both or neither. canceled
// (may be nil) is the deadline hook threaded into core.RunCancelable.
//
// Apply is transport-independent: the HTTP pool and the crashtest cells both
// call it, which is what lets the golden-model oracle judge the serving
// path's crash behaviour.
func Apply(e *core.Engine, worker int, idemKey uint64, req *TxnRequest, canceled func() bool) (*TxnResponse, error) {
	idem := e.Table(IdemTable)
	if idem == nil {
		return nil, fmt.Errorf("server: engine has no %s table (see WithIdemTable)", IdemTable)
	}
	is := idem.Schema()
	buf := make([]byte, is.TupleSize())
	resp := &TxnResponse{}
	for {
		err := e.RunCancelable(worker, canceled, func(tx *core.Txn) error {
			err := tx.Read(idem, idemKey, buf)
			if err == nil {
				resp.Outcome = "ok"
				resp.Replayed = true
				resp.Results = nil
				resp.Digest = fmt.Sprintf("%016x", is.GetUint64(buf, 1))
				return errReplayed
			}
			if !errors.Is(err, core.ErrNotFound) {
				return err
			}

			results, err := execOps(e, tx, req)
			if err != nil {
				return err
			}
			digest := digestResults(results)
			row := make([]byte, is.TupleSize())
			is.PutUint64(row, 0, idemKey)
			is.PutUint64(row, 1, digest)
			is.PutInt64(row, 2, outcomeOK)
			if err := tx.Insert(idem, idemKey, row); err != nil {
				if errors.Is(err, core.ErrDuplicateKey) {
					return errIdemRace
				}
				return err
			}
			resp.Outcome = "ok"
			resp.Replayed = false
			resp.Results = results
			resp.Digest = fmt.Sprintf("%016x", digest)
			return nil
		})
		switch {
		case err == nil, errors.Is(err, errReplayed):
			return resp, nil
		case errors.Is(err, errIdemRace):
			continue // the winner committed; next pass serves the replay
		default:
			return nil, err
		}
	}
}

// ApplyRO executes a read-only op list (gets only) with no idempotency
// bookkeeping — reads are naturally idempotent.
func ApplyRO(e *core.Engine, worker int, req *TxnRequest, canceled func() bool) (*TxnResponse, error) {
	for _, op := range req.Ops {
		if op.Op != "get" {
			return nil, fmt.Errorf("server: read-only request carries %q op", op.Op)
		}
	}
	var results []OpResult
	err := e.RunROCancelable(worker, canceled, func(tx *core.Txn) error {
		var err error
		results, err = execOps(e, tx, req)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &TxnResponse{Outcome: "ok", Results: results, Digest: fmt.Sprintf("%016x", digestResults(results))}, nil
}

// execOps runs the request's ops inside tx against serving-schema tables.
func execOps(e *core.Engine, tx *core.Txn, req *TxnRequest) ([]OpResult, error) {
	results := make([]OpResult, 0, len(req.Ops))
	for i, op := range req.Ops {
		t := e.Table(op.Table)
		if t == nil {
			return nil, fmt.Errorf("op %d: no such table %q", i, op.Table)
		}
		s := t.Schema()
		buf := make([]byte, s.TupleSize())
		var res OpResult
		switch op.Op {
		case "get":
			err := tx.Read(t, op.Key, buf)
			switch {
			case err == nil:
				res = OpResult{Val: s.GetInt64(buf, 1), Found: true}
			case errors.Is(err, core.ErrNotFound):
				res = OpResult{Found: false}
			default:
				return nil, err
			}
		case "put":
			var vb [8]byte
			binary.LittleEndian.PutUint64(vb[:], uint64(op.Val))
			err := tx.UpdateField(t, op.Key, 1, vb[:])
			if errors.Is(err, core.ErrNotFound) {
				s.PutUint64(buf, 0, op.Key)
				s.PutInt64(buf, 1, op.Val)
				err = tx.Insert(t, op.Key, buf)
			}
			if err != nil {
				return nil, err
			}
			res = OpResult{Val: op.Val, Found: true}
		case "insert":
			s.PutUint64(buf, 0, op.Key)
			s.PutInt64(buf, 1, op.Val)
			if err := tx.Insert(t, op.Key, buf); err != nil {
				return nil, err
			}
			res = OpResult{Val: op.Val, Found: true}
		case "add":
			if err := tx.Read(t, op.Key, buf); err != nil {
				return nil, err
			}
			v := s.GetInt64(buf, 1) + op.Val
			var vb [8]byte
			binary.LittleEndian.PutUint64(vb[:], uint64(v))
			if err := tx.UpdateField(t, op.Key, 1, vb[:]); err != nil {
				return nil, err
			}
			res = OpResult{Val: v, Found: true}
		case "delete":
			err := tx.Delete(t, op.Key)
			switch {
			case err == nil:
				res = OpResult{Found: true}
			case errors.Is(err, core.ErrNotFound):
				res = OpResult{Found: false}
			default:
				return nil, err
			}
		default:
			return nil, fmt.Errorf("op %d: unknown verb %q", i, op.Op)
		}
		results = append(results, res)
	}
	return results, nil
}

// DigestOf renders the response digest for an op-result list — the value the
// idempotency table stores and replays. The crash harness's golden model uses
// it to predict what a replayed retry must return.
func DigestOf(results []OpResult) string {
	return fmt.Sprintf("%016x", digestResults(results))
}

// digestResults hashes the op results with FNV-1a over (index, val, found):
// deterministic, order-sensitive, and cheap.
func digestResults(results []OpResult) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	}
	for i, r := range results {
		mix(uint64(i))
		mix(uint64(r.Val))
		if r.Found {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}
