package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/pmem"
)

func testSpecs() []core.TableSpec {
	return WithIdemTable([]core.TableSpec{{
		Name: "kv", Schema: ServeSchema(0), Capacity: 1 << 14,
		KeyCol: 0, IndexKind: index.Hash,
	}}, 1<<14)
}

func newTestEngine(t *testing.T, threads int) *core.Engine {
	t.Helper()
	cfg := core.FalconConfig()
	cfg.Threads = threads
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 64 << 20})
	e, err := core.New(sys, cfg, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, 4)
	s, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Drain(5 * time.Second) })
	return s, ts
}

func postTxn(t *testing.T, url string, idemKey uint64, req *TxnRequest, hdrs map[string]string) (*TxnResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/txn", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Idempotency-Key", fmt.Sprint(idemKey))
	for k, v := range hdrs {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var tr TxnResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("bad response body %q: %v", raw, err)
	}
	return &tr, resp.StatusCode
}

func TestServerBasicTxn(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	r1, code := postTxn(t, ts.URL, 1, &TxnRequest{Ops: []Op{
		{Op: "insert", Table: "kv", Key: 10, Val: 100},
		{Op: "get", Table: "kv", Key: 10},
	}}, nil)
	if code != http.StatusOK || r1.Outcome != "ok" || r1.Replayed {
		t.Fatalf("insert+get: code %d resp %+v", code, r1)
	}
	if len(r1.Results) != 2 || r1.Results[1].Val != 100 || !r1.Results[1].Found {
		t.Fatalf("results: %+v", r1.Results)
	}

	r2, code := postTxn(t, ts.URL, 2, &TxnRequest{Ops: []Op{
		{Op: "add", Table: "kv", Key: 10, Val: 5},
	}}, nil)
	if code != http.StatusOK || r2.Results[0].Val != 105 {
		t.Fatalf("add: code %d resp %+v", code, r2)
	}

	// get of a missing key is Found=false, not an error.
	r3, code := postTxn(t, ts.URL, 3, &TxnRequest{Ops: []Op{
		{Op: "get", Table: "kv", Key: 999},
	}}, nil)
	if code != http.StatusOK || r3.Results[0].Found {
		t.Fatalf("missing get: code %d resp %+v", code, r3)
	}
}

// TestServerIdempotentRetry: re-sending a committed request's key returns
// the original digest without re-executing the (non-idempotent) add.
func TestServerIdempotentRetry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	if _, code := postTxn(t, ts.URL, 1, &TxnRequest{Ops: []Op{
		{Op: "insert", Table: "kv", Key: 7, Val: 50},
	}}, nil); code != http.StatusOK {
		t.Fatalf("seed insert: code %d", code)
	}

	addReq := &TxnRequest{Ops: []Op{{Op: "add", Table: "kv", Key: 7, Val: 3}}}
	first, code := postTxn(t, ts.URL, 42, addReq, nil)
	if code != http.StatusOK || first.Replayed {
		t.Fatalf("first add: code %d resp %+v", code, first)
	}
	if first.Results[0].Val != 53 {
		t.Fatalf("first add val = %d", first.Results[0].Val)
	}

	retry, code := postTxn(t, ts.URL, 42, addReq, nil)
	if code != http.StatusOK || !retry.Replayed {
		t.Fatalf("retry: code %d resp %+v", code, retry)
	}
	if retry.Digest != first.Digest {
		t.Fatalf("retry digest %s != original %s", retry.Digest, first.Digest)
	}

	// The add must have executed exactly once: value is 53, not 56.
	check, _ := postTxn(t, ts.URL, 43, &TxnRequest{Ops: []Op{
		{Op: "get", Table: "kv", Key: 7},
	}}, nil)
	if check.Results[0].Val != 53 {
		t.Fatalf("value after retry = %d, want 53 (exactly-once violated)", check.Results[0].Val)
	}
}

// TestServerConcurrentSameKey: N racers with one idempotency key commit the
// add exactly once; every response agrees on the digest.
func TestServerConcurrentSameKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	if _, code := postTxn(t, ts.URL, 1, &TxnRequest{Ops: []Op{
		{Op: "insert", Table: "kv", Key: 5, Val: 0},
	}}, nil); code != http.StatusOK {
		t.Fatal("seed failed")
	}

	const racers = 8
	req := &TxnRequest{Ops: []Op{{Op: "add", Table: "kv", Key: 5, Val: 1}}}
	digests := make([]string, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, code := postTxn(t, ts.URL, 777, req, map[string]string{"X-Deadline-Ms": "5000"})
			if code == http.StatusOK {
				digests[i] = r.Digest
			}
		}(i)
	}
	wg.Wait()

	var want string
	for _, d := range digests {
		if d == "" {
			continue
		}
		if want == "" {
			want = d
		} else if d != want {
			t.Fatalf("digest disagreement: %s vs %s", d, want)
		}
	}
	if want == "" {
		t.Fatal("no racer succeeded")
	}
	check, _ := postTxn(t, ts.URL, 2, &TxnRequest{Ops: []Op{
		{Op: "get", Table: "kv", Key: 5},
	}}, nil)
	if check.Results[0].Val != 1 {
		t.Fatalf("value = %d after %d same-key racers, want 1", check.Results[0].Val, racers)
	}
}

// TestServerShedsWhenSaturated: with slow service and a tiny queue, excess
// concurrent requests are rejected with 429 + Retry-After instead of queuing.
func TestServerShedsWhenSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, ServiceFloor: 50 * time.Millisecond,
	})
	const clients = 12
	var wg sync.WaitGroup
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(&TxnRequest{Ops: []Op{{Op: "put", Table: "kv", Key: uint64(i), Val: 1}}})
			hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/txn", bytes.NewReader(body))
			hr.Header.Set("Idempotency-Key", fmt.Sprint(1000+i))
			hr.Header.Set("X-Deadline-Ms", "2000")
			resp, err := http.DefaultClient.Do(hr)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	if shed == 0 {
		t.Fatalf("no sheds with %d clients, 1 worker, queue 2 (codes %v)", clients, codes)
	}
	if ok == 0 {
		t.Fatal("no request succeeded under overload")
	}
	snap := s.Snapshot()
	if snap.Server == nil || snap.Server.Endpoints["/v1/txn"].Shed() == 0 {
		t.Fatal("sheds not counted in ServerStats")
	}
}

// TestServerDeadlineExpiry: a deadline shorter than the service floor makes
// the request fail with 504 and an expired counter, not hang.
func TestServerDeadlineExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		ServiceFloor:     30 * time.Millisecond,
		SeedServiceNanos: 1, // keep admission from shedding on estimate
	})
	_, code := postTxn(t, ts.URL, 9, &TxnRequest{Ops: []Op{
		{Op: "put", Table: "kv", Key: 1, Val: 1},
	}}, map[string]string{"X-Deadline-Ms": "1"})
	if code != http.StatusGatewayTimeout && code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 504 (expired) or 429 (deadline shed)", code)
	}
	snap := s.Snapshot()
	ep := snap.Server.Endpoints["/v1/txn"]
	if ep.Expired == 0 && ep.ShedDeadline == 0 {
		t.Fatalf("neither expired nor deadline-shed counted: %+v", ep)
	}
}

// TestServerHealthAndMetrics: /healthz always 200; /readyz flips to 503 on
// drain; /metrics serves the Prometheus exposition with server families.
func TestServerHealthAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if _, code := postTxn(t, ts.URL, 1, &TxnRequest{Ops: []Op{
		{Op: "put", Table: "kv", Key: 1, Val: 1},
	}}, nil); code != http.StatusOK {
		t.Fatal("seed request failed")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"falcon_server_requests_total", "falcon_commits_total", "falcon_server_queue_cap",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %s:\n%s", want, body)
		}
	}

	if !s.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d after drain, want 503", code)
	}
	// New work is shed with 503 while draining.
	if _, code := postTxn(t, ts.URL, 2, &TxnRequest{Ops: []Op{
		{Op: "put", Table: "kv", Key: 2, Val: 2},
	}}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain txn = %d, want 503", code)
	}
	// Drained engine: acked commits are durable (the Sync ran); snapshot is
	// coherent and the idempotency record is present.
	snap := s.Snapshot()
	if snap.Commits == 0 {
		t.Fatal("no commits after drain")
	}
}

// TestServerReadEndpoint: /v1/read serves get-only op lists without an
// idempotency key and rejects writes.
func TestServerReadEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	if _, code := postTxn(t, ts.URL, 1, &TxnRequest{Ops: []Op{
		{Op: "insert", Table: "kv", Key: 3, Val: 33},
	}}, nil); code != http.StatusOK {
		t.Fatal("seed failed")
	}

	post := func(req *TxnRequest) (*TxnResponse, int) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/read", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var tr TxnResponse
		_ = json.Unmarshal(raw, &tr)
		return &tr, resp.StatusCode
	}

	r, code := post(&TxnRequest{Ops: []Op{{Op: "get", Table: "kv", Key: 3}}})
	if code != http.StatusOK || r.Results[0].Val != 33 {
		t.Fatalf("read: code %d resp %+v", code, r)
	}
	if _, code := post(&TxnRequest{Ops: []Op{{Op: "put", Table: "kv", Key: 3, Val: 1}}}); code == http.StatusOK {
		t.Fatal("write accepted on read endpoint")
	}
}

// TestParseRequestValidation covers the protocol-level rejects.
func TestParseRequestValidation(t *testing.T) {
	if _, err := ParseRequest([]byte(`{"ops":[]}`)); err == nil {
		t.Fatal("empty ops accepted")
	}
	if _, err := ParseRequest([]byte(`{"ops":[{"op":"frob","table":"kv"}]}`)); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if _, err := ParseRequest([]byte(`{"ops":[{"op":"get"}]}`)); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := ParseRequest([]byte(`not json`)); err == nil {
		t.Fatal("malformed body accepted")
	}
	if _, err := ParseRequest([]byte(`{"ops":[{"op":"get","table":"kv","key":1}]}`)); err != nil {
		t.Fatal(err)
	}
}
