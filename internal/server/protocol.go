// Package server is the networked serving front-end over core.Engine: an
// HTTP request path with a bounded worker pool, a deadline-aware admission
// controller that sheds before saturation, and exactly-once retry semantics
// backed by an idempotency table stored as a first-class engine table (a
// "detectable operation": after a timeout or crash, a retried request can
// tell whether its original attempt took effect, and if so gets the original
// result digest back without re-executing).
//
// Served tables use the serving schema: a uint64 key in column 0 and an
// int64 value in column 1 (ServeSchema builds one). Transactions are
// submitted as op lists; `add` is the deliberately non-idempotent probe the
// exactly-once machinery is judged by.
package server

import (
	"encoding/json"
	"fmt"

	"falcon/internal/layout"
)

// Op is one operation inside a request transaction.
type Op struct {
	// Op is the verb: "get", "put" (upsert), "insert" (duplicate is an
	// error), "add" (read-modify-write: value += Val, result is the new
	// value — non-idempotent, so retries must not re-execute), or "delete".
	Op string `json:"op"`
	// Table names the target table (must use the serving schema).
	Table string `json:"table"`
	// Key is the primary key.
	Key uint64 `json:"key"`
	// Val is the value for put/insert, the delta for add; ignored otherwise.
	Val int64 `json:"val,omitempty"`
}

// TxnRequest is one transaction: its ops commit atomically.
type TxnRequest struct {
	Ops []Op `json:"ops"`
}

// OpResult is one op's outcome inside a committed transaction.
type OpResult struct {
	// Val is the value read (get), written (put/insert), the new value
	// (add), or 0 (delete).
	Val int64 `json:"val"`
	// Found reports key presence: false for a get/delete of a missing key.
	Found bool `json:"found"`
}

// TxnResponse is the reply for a transaction request.
type TxnResponse struct {
	// Outcome is "ok" for a commit (fresh or replayed) and "error" otherwise.
	Outcome string `json:"outcome"`
	// Results holds one entry per op, in order — empty on a replay (only the
	// digest survives the idempotency table).
	Results []OpResult `json:"results,omitempty"`
	// Digest is the FNV-1a hash of the results, as fixed-width hex. On a
	// replay it is the original attempt's digest, which is how a client
	// verifies its retry observed the first execution.
	Digest string `json:"digest"`
	// Replayed reports that the idempotency table answered this request: the
	// transaction had already committed under this key and was not re-run.
	Replayed bool `json:"replayed,omitempty"`
	// Error carries the failure detail when Outcome is "error".
	Error string `json:"error,omitempty"`
}

// ServeSchema returns the fixed serving-layer tuple layout: uint64 key,
// int64 value, plus padBytes of payload filler.
func ServeSchema(padBytes int) *layout.Schema {
	cols := []layout.Column{
		{Name: "k", Kind: layout.Uint64},
		{Name: "v", Kind: layout.Int64},
	}
	if padBytes > 0 {
		cols = append(cols, layout.Column{Name: "pad", Kind: layout.Bytes, Size: padBytes})
	}
	return layout.NewSchema(cols...)
}

// ParseRequest decodes and validates a transaction request body.
func ParseRequest(body []byte) (*TxnRequest, error) {
	var req TxnRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if len(req.Ops) == 0 {
		return nil, fmt.Errorf("empty op list")
	}
	for i, op := range req.Ops {
		switch op.Op {
		case "get", "put", "insert", "add", "delete":
		default:
			return nil, fmt.Errorf("op %d: unknown verb %q", i, op.Op)
		}
		if op.Table == "" {
			return nil, fmt.Errorf("op %d: missing table", i)
		}
	}
	return &req, nil
}
