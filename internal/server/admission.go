package server

import (
	"sync/atomic"
	"time"
)

// admission is the controller in front of the worker pool: a bounded queue
// plus an EWMA service-time estimate. It sheds BEFORE saturation: a request
// is rejected when the queue is at capacity, or when the estimated queue
// wait already exceeds the request's deadline — queuing it would only
// manufacture a timeout storm. Rejections carry a Retry-After hint sized to
// the estimated drain time.
type admission struct {
	depth    atomic.Int64  // requests admitted but not yet completed
	capacity int64         // queue bound (admitted requests, queued + running)
	workers  int64         // pool size (service parallelism)
	ewma     atomic.Uint64 // service-time estimate, host nanos
	draining atomic.Bool
}

// shedReason classifies an admission rejection.
type shedReason int

const (
	shedNone shedReason = iota
	shedDraining
	shedQueue
	shedDeadline
)

func newAdmission(capacity, workers int, seedServiceNanos uint64) *admission {
	a := &admission{capacity: int64(capacity), workers: int64(workers)}
	a.ewma.Store(seedServiceNanos)
	return a
}

// admit decides whether a request with the given deadline may enter the
// queue. On success the depth is already incremented (release undoes it).
// On a shed it returns the reason and a suggested retry-after duration.
func (a *admission) admit(now, deadline time.Time) (shedReason, time.Duration) {
	if a.draining.Load() {
		return shedDraining, a.estWait(1)
	}
	d := a.depth.Add(1)
	if d > a.capacity {
		a.depth.Add(-1)
		return shedQueue, a.estWait(a.capacity)
	}
	// Deadline-aware rejection: with d-1 requests ahead and `workers`-way
	// service, the expected wait is ceil((d-1)/workers) service times; if
	// even starting execution would blow the deadline, shed now instead of
	// queuing into a timeout.
	wait := a.estWait(d - 1)
	if deadline.Before(now.Add(wait + time.Duration(a.ewma.Load()))) {
		a.depth.Add(-1)
		return shedDeadline, wait
	}
	return shedNone, 0
}

// release returns an admitted request's slot.
func (a *admission) release() { a.depth.Add(-1) }

// estWait estimates the queue wait with `ahead` admitted requests in front.
func (a *admission) estWait(ahead int64) time.Duration {
	if ahead <= 0 {
		return 0
	}
	rounds := (ahead + a.workers - 1) / a.workers
	return time.Duration(rounds * int64(a.ewma.Load()))
}

// observe folds one completed request's service time into the EWMA
// (alpha = 1/8: new = old*7/8 + sample/8, lock-free via CAS-less store —
// the estimate tolerates lost updates).
func (a *admission) observe(serviceNanos uint64) {
	old := a.ewma.Load()
	a.ewma.Store(old - old/8 + serviceNanos/8)
}
