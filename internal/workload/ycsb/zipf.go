package ycsb

import (
	"math"
	"sync"
)

// zipfGen draws Zipf-distributed values in [0, n) with skew theta, using the
// Gray et al. "Quickly generating billion-record synthetic databases"
// rejection-free method — the standard YCSB generator. It is NOT safe for
// concurrent use; create one per worker.
type zipfGen struct {
	n          uint64
	theta      float64
	alpha      float64
	zetan      float64
	eta        float64
	zeta2theta float64
	state      uint64
}

func newZipf(n uint64, theta float64, seed uint64) *zipfGen {
	z := &zipfGen{n: n, theta: theta, state: seed | 1}
	z.zeta2theta = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

// zetaCache memoizes zetaStatic: every worker of every sweep cell builds a
// generator over the same (n, theta), and the O(n) math.Pow loop showed up
// as a few percent of sweep host time. The function is pure, so caching
// cannot change any drawn value.
var zetaCache sync.Map // zetaKey -> float64

type zetaKey struct {
	n     uint64
	theta float64
}

// zetaStatic computes the generalized harmonic number of order theta.
// O(n) on first use per (n, theta); memoized afterwards.
func zetaStatic(n uint64, theta float64) float64 {
	k := zetaKey{n, theta}
	if v, ok := zetaCache.Load(k); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(k, sum)
	return sum
}

func (z *zipfGen) rand01() float64 {
	// xorshift64*
	z.state ^= z.state >> 12
	z.state ^= z.state << 25
	z.state ^= z.state >> 27
	return float64(z.state*2685821657736338717>>11) / float64(uint64(1)<<53)
}

// Next draws the next Zipf value in [0, n).
func (z *zipfGen) Next() uint64 {
	u := z.rand01()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// scramble spreads hot Zipf ranks across the keyspace (YCSB's scrambled
// Zipfian), so hotness is not correlated with key locality.
func scramble(v, n uint64) uint64 {
	h := v
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h % n
}
