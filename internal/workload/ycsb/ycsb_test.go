package ycsb

import (
	"math"
	"sync"
	"testing"

	"falcon/internal/core"
	"falcon/internal/pmem"
)

func smallCfg(w Workload, d Distribution) Config {
	return Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: w, Distribution: d}
}

func newLoaded(t *testing.T, ecfg core.Config, cfg Config) (*core.Engine, *Driver) {
	t.Helper()
	ecfg.Threads = 4
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := core.New(sys, ecfg, TableSpecs(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(e, cfg); err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestLoadAndReadBack(t *testing.T) {
	cfg := smallCfg(C, Uniform)
	e, _ := newLoaded(t, core.FalconConfig(), cfg)
	tbl := e.Table(TableName)
	s := tbl.Schema()
	buf := make([]byte, s.TupleSize())
	for _, k := range []uint64{0, 999, 1999} {
		if err := e.RunRO(0, func(tx *core.Txn) error { return tx.Read(tbl, k, buf) }); err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if got := s.GetUint64(buf, 0); got != k {
			t.Fatalf("key column = %d, want %d", got, k)
		}
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range AllWorkloads {
		for _, dist := range []Distribution{Uniform, Zipfian} {
			w, dist := w, dist
			t.Run(w.String()+"/"+dist.String(), func(t *testing.T) {
				cfg := smallCfg(w, dist)
				_, d := newLoaded(t, core.FalconConfig(), cfg)
				for i := 0; i < 100; i++ {
					if err := d.Next(i % 4); err != nil {
						t.Fatalf("txn %d: %v", i, err)
					}
				}
			})
		}
	}
}

func TestWorkloadAcrossEngines(t *testing.T) {
	for _, ecfg := range []core.Config{core.FalconConfig(), core.InpConfig(), core.OutpConfig(), core.ZenSConfig()} {
		ecfg := ecfg
		t.Run(ecfg.Name, func(t *testing.T) {
			cfg := smallCfg(A, Zipfian)
			_, d := newLoaded(t, ecfg, cfg)
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						if err := d.Next(w); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
		})
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	const n = 10000
	z := newZipf(n, 0.99, 42)
	counts := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate: with θ=0.99 it draws ~10% of mass.
	if counts[0] < 200000/20 {
		t.Fatalf("rank 0 drawn %d times; distribution not skewed", counts[0])
	}
	if counts[0] <= counts[100] {
		t.Fatal("rank 0 not hotter than rank 100")
	}
}

func TestZetaFinite(t *testing.T) {
	for _, n := range []uint64{1, 10, 100000} {
		z := zetaStatic(n, 0.99)
		if math.IsNaN(z) || math.IsInf(z, 0) || z <= 0 {
			t.Fatalf("zeta(%d) = %f", n, z)
		}
	}
}

func TestScrambleStaysInRange(t *testing.T) {
	for v := uint64(0); v < 10000; v++ {
		if s := scramble(v, 1000); s >= 1000 {
			t.Fatalf("scramble(%d) = %d out of range", v, s)
		}
	}
}

func TestInsertsGrowTable(t *testing.T) {
	cfg := smallCfg(D, Uniform)
	e, d := newLoaded(t, core.FalconConfig(), cfg)
	for i := 0; i < 200; i++ {
		if err := d.Next(i % 4); err != nil {
			t.Fatal(err)
		}
	}
	// Frontier beyond the initial records implies inserts landed.
	var frontier uint64
	stride := uint64(len(d.workers))
	for w := range d.workers {
		if end := cfg.Records + d.workers[w].insSeq*stride + uint64(w); d.workers[w].insSeq > 0 && end > frontier {
			frontier = end
		}
	}
	if frontier == 0 {
		t.Skip("mix produced no inserts in 200 draws (unlikely)")
	}
	tbl := e.Table(TableName)
	buf := make([]byte, tbl.Schema().TupleSize())
	found := false
	for k := cfg.Records; k < frontier; k++ {
		if err := e.RunRO(0, func(tx *core.Txn) error { return tx.Read(tbl, k, buf) }); err == nil {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no inserted key readable")
	}
}
