package ycsb

import (
	"fmt"

	"falcon/internal/core"
)

// Driver issues YCSB transactions against an engine. One Driver serves all
// workers; per-worker state (generators, scratch) is internal.
type Driver struct {
	cfg     Config
	e       *core.Engine
	tbl     *core.Table
	workers []workerState
}

type workerState struct {
	zipf *zipfGen
	rng  uint64
	// insSeq counts this worker's key draws for workloads D and E: fresh
	// keys come from per-worker interleaved sequences above cfg.Records
	// (schedule-independent, unlike a shared counter).
	insSeq  uint64
	buf     []byte
	fullVal []byte
	_       [4]uint64
}

// NewDriver prepares per-worker generators. The engine must already contain
// the loaded table.
func NewDriver(e *core.Engine, cfg Config) (*Driver, error) {
	cfg = cfg.withDefaults()
	tbl := e.Table(TableName)
	if tbl == nil {
		return nil, fmt.Errorf("ycsb: table %q missing", TableName)
	}
	d := &Driver{cfg: cfg, e: e, tbl: tbl}
	d.workers = make([]workerState, e.Config().Threads)
	s := tbl.Schema()
	for w := range d.workers {
		ws := &d.workers[w]
		ws.rng = splitmix(uint64(w) + 0xD1B54A32D192ED03)
		if cfg.Distribution == Zipfian {
			ws.zipf = newZipf(cfg.Records, cfg.Theta, splitmix(uint64(w)+0x9E3779B97F4A7C15))
		}
		ws.buf = make([]byte, s.TupleSize())
		ws.fullVal = make([]byte, s.TupleSize())
		fillTuple(s, ws.fullVal, 0, cfg)
	}
	return d, nil
}

// splitmix finalizes a seed into a well-mixed generator state.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (d *Driver) rand(w int) uint64 {
	ws := &d.workers[w]
	ws.rng ^= ws.rng >> 12
	ws.rng ^= ws.rng << 25
	ws.rng ^= ws.rng >> 27
	return ws.rng * 2685821657736338717
}

// key draws a request key per the configured distribution.
func (d *Driver) key(w int) uint64 {
	if d.cfg.Distribution == Zipfian {
		return scramble(d.workers[w].zipf.Next(), d.cfg.Records)
	}
	return d.rand(w) % d.cfg.Records
}

// Next executes one YCSB transaction on worker w, returning an error only on
// engine failures (conflicts are retried internally).
func (d *Driver) Next(w int) error {
	roll := d.rand(w) % 100
	switch d.cfg.Workload {
	case A:
		if roll < 50 {
			return d.doRead(w)
		}
		return d.doUpdate(w)
	case B:
		if roll < 95 {
			return d.doRead(w)
		}
		return d.doUpdate(w)
	case C:
		return d.doRead(w)
	case D:
		if roll < 95 {
			return d.doReadLatest(w)
		}
		return d.doInsert(w)
	case E:
		if roll < 95 {
			return d.doScan(w)
		}
		return d.doInsert(w)
	default: // F
		if roll < 50 {
			return d.doRead(w)
		}
		return d.doRMW(w)
	}
}

func (d *Driver) doRead(w int) error {
	key := d.key(w)
	ws := &d.workers[w]
	return d.e.RunRO(w, func(tx *core.Txn) error {
		err := tx.Read(d.tbl, key, ws.buf)
		if err == core.ErrNotFound {
			return nil // deleted/unloaded key: counts as a served request
		}
		return err
	})
}

// doUpdate reads and updates all fields of one tuple (paper §6.1: "Each
// transaction reads and updates all fields"; YCSB-A updates are blind —
// "Updates in this workload do not require the original record to be read
// first").
func (d *Driver) doUpdate(w int) error {
	key := d.key(w)
	ws := &d.workers[w]
	s := d.tbl.Schema()
	// Overwrite every value field (the whole payload after the key column).
	off := s.Offset(1)
	val := ws.fullVal[off:]
	return d.e.Run(w, func(tx *core.Txn) error {
		err := tx.Update(d.tbl, key, off, val)
		if err == core.ErrNotFound {
			return nil
		}
		return err
	})
}

func (d *Driver) doRMW(w int) error {
	key := d.key(w)
	ws := &d.workers[w]
	s := d.tbl.Schema()
	off := s.Offset(1)
	return d.e.Run(w, func(tx *core.Txn) error {
		err := tx.Read(d.tbl, key, ws.buf)
		if err == core.ErrNotFound {
			return nil
		}
		if err != nil {
			return err
		}
		// Modify: rotate the first field's first byte, then write all
		// fields back (idempotent post-image goes to the log).
		ws.buf[off]++
		return tx.Update(d.tbl, key, off, ws.buf[off:])
	})
}

func (d *Driver) doReadLatest(w int) error {
	// Read keys near this worker's own insertion frontier (reads on not-yet
	// inserted keys from other workers' residues count as served requests).
	ws := &d.workers[w]
	limit := d.cfg.Records + ws.insSeq*uint64(len(d.workers))
	span := uint64(1000)
	if limit < span {
		span = limit
	}
	key := limit - 1 - d.rand(w)%span
	return d.e.RunRO(w, func(tx *core.Txn) error {
		err := tx.Read(d.tbl, key, ws.buf)
		if err == core.ErrNotFound {
			return nil
		}
		return err
	})
}

func (d *Driver) doInsert(w int) error {
	ws := &d.workers[w]
	key := d.cfg.Records + ws.insSeq*uint64(len(d.workers)) + uint64(w)
	ws.insSeq++
	s := d.tbl.Schema()
	fillTuple(s, ws.buf, key, d.cfg)
	return d.e.Run(w, func(tx *core.Txn) error {
		err := tx.Insert(d.tbl, key, ws.buf)
		if err == core.ErrDuplicateKey {
			return nil
		}
		return err
	})
}

func (d *Driver) doScan(w int) error {
	from := d.key(w)
	n := 1 + int(d.rand(w)%uint64(d.cfg.ScanLen))
	return d.e.RunRO(w, func(tx *core.Txn) error {
		_, err := tx.Scan(d.tbl, from, n, func(uint64, []byte) bool { return true })
		return err
	})
}
