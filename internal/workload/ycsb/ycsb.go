// Package ycsb implements the YCSB benchmark as configured in the paper's
// §6.1: one table, an 8-byte key and 10 columns of 100 bytes (≈1 KB tuples),
// six core workloads (A–F) under Uniform and Zipfian (θ = 0.99) request
// distributions. Following the paper, update transactions read and update
// all fields of one tuple.
package ycsb

import (
	"encoding/binary"
	"fmt"

	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/layout"
)

// Workload identifies a YCSB core workload.
type Workload uint8

const (
	// A is update-heavy: 50% reads, 50% updates.
	A Workload = iota
	// B is read-heavy: 95% reads, 5% updates.
	B
	// C is read-only.
	C
	// D is read-latest: 95% reads, 5% inserts; reads favour recent keys.
	D
	// E is scan-heavy: 95% short scans, 5% inserts.
	E
	// F is read-modify-write: 50% reads, 50% RMW.
	F
)

func (w Workload) String() string {
	return [...]string{"YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "YCSB-E", "YCSB-F"}[w]
}

// AllWorkloads lists A–F in paper order.
var AllWorkloads = []Workload{A, B, C, D, E, F}

// Distribution selects the request key distribution.
type Distribution uint8

const (
	// Uniform draws keys uniformly.
	Uniform Distribution = iota
	// Zipfian draws keys from a Zipf(θ=0.99) distribution over the keyspace.
	Zipfian
)

func (d Distribution) String() string {
	if d == Zipfian {
		return "Zipfian"
	}
	return "Uniform"
}

// Config parameterizes a YCSB run.
type Config struct {
	// Records is the initial table size (the paper loads 256 M; scale
	// down).
	Records uint64
	// Fields is the number of value columns (default 10).
	Fields int
	// FieldBytes is the width of each value column (default 100).
	FieldBytes int
	// Workload selects A–F.
	Workload Workload
	// Distribution selects Uniform or Zipfian(0.99).
	Distribution Distribution
	// Theta is the Zipfian skew (default 0.99).
	Theta float64
	// ScanLen is the maximum scan length for workload E (default 100).
	ScanLen int
}

func (c Config) withDefaults() Config {
	if c.Records == 0 {
		c.Records = 100_000
	}
	if c.Fields == 0 {
		c.Fields = 10
	}
	if c.FieldBytes == 0 {
		c.FieldBytes = 100
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.ScanLen == 0 {
		c.ScanLen = 100
	}
	return c
}

// TableName is the YCSB table.
const TableName = "usertable"

// Schema builds the usertable schema: key column plus Fields × FieldBytes.
func Schema(cfg Config) *layout.Schema {
	cfg = cfg.withDefaults()
	cols := make([]layout.Column, 0, cfg.Fields+1)
	cols = append(cols, layout.Column{Name: "ycsb_key", Kind: layout.Uint64})
	for i := 0; i < cfg.Fields; i++ {
		cols = append(cols, layout.Column{
			Name: fmt.Sprintf("field%d", i), Kind: layout.Bytes, Size: cfg.FieldBytes,
		})
	}
	return layout.NewSchema(cols...)
}

// TableSpecs returns the engine table declaration. Workloads D/E insert, so
// capacity leaves headroom; E scans, so the primary is a btree.
func TableSpecs(cfg Config) []core.TableSpec {
	cfg = cfg.withDefaults()
	kind := index.Hash
	if cfg.Workload == E {
		kind = index.BTree
	}
	return []core.TableSpec{{
		Name:      TableName,
		Schema:    Schema(cfg),
		Capacity:  cfg.Records + cfg.Records/4 + 1024,
		KeyCol:    0,
		IndexKind: kind,
	}}
}

// Load bulk-loads the initial records (outside measurement, like the
// paper's table initialization).
func Load(e *core.Engine, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := e.Table(TableName)
	if tbl == nil {
		return fmt.Errorf("ycsb: table %q missing", TableName)
	}
	s := tbl.Schema()
	h := tbl.Heap()
	buf := make([]byte, s.TupleSize())
	perThread := cfg.Records/uint64(e.Config().Threads) + 1
	var loaded uint64
	for th := 0; th < e.Config().Threads && loaded < cfg.Records; th++ {
		for i := uint64(0); i < perThread && loaded < cfg.Records; i++ {
			key := loaded
			fillTuple(s, buf, key, cfg)
			slot, err := h.Alloc(nil, th, 0)
			if err != nil {
				return err
			}
			h.BulkInstall(slot, 0, buf)
			if err := tbl.BulkIndexInsert(key, slot); err != nil {
				return err
			}
			loaded++
		}
	}
	return nil
}

// fillTuple deterministically generates the tuple payload for key. Loading
// dominates the host cost of a sweep cell (every cell bulk-loads its own
// table), so the generator stores raw 64-bit xorshift words — eight payload
// bytes per state update, no per-byte mapping. Nothing in the engine or the
// driver branches on payload values, so the bytes need only be a pure
// function of (key, field): reloads and recovery comparisons see identical
// tuples, and virtual-time results are unaffected by the content choice.
func fillTuple(s *layout.Schema, buf []byte, key uint64, cfg Config) {
	s.PutUint64(buf, 0, key)
	for f := 1; f <= cfg.Fields; f++ {
		field := s.GetBytes(buf, f)
		seed := key*1099511628211 + uint64(f)
		i := 0
		for ; i+8 <= len(field); i += 8 {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			binary.LittleEndian.PutUint64(field[i:], seed)
		}
		if i < len(field) {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			for x := seed; i < len(field); i++ {
				field[i] = byte(x)
				x >>= 8
			}
		}
	}
}
