package tpcc

// Composite-key packing. Warehouse ids start at 1; districts 1..10;
// customers 1..C; orders grow from 1. Bit budgets: w ≤ 2^16, d ≤ 2^6,
// c ≤ 2^20, o ≤ 2^28, ol ≤ 2^4.

func wKey(w int) uint64 { return uint64(w) }

func dKey(w, d int) uint64 { return uint64(w)<<8 | uint64(d) }

func cKey(w, d, c int) uint64 {
	return uint64(w)<<28 | uint64(d)<<22 | uint64(c)
}

func iKey(i int) uint64 { return uint64(i) }

func sKey(w, i int) uint64 { return uint64(w)<<28 | uint64(i) }

func oKey(w, d, o int) uint64 {
	return uint64(w)<<40 | uint64(d)<<34 | uint64(o)
}

// oKeyPrefix is the first possible order key of (w, d).
func oKeyPrefix(w, d int) uint64 { return oKey(w, d, 0) }

func noKey(w, d, o int) uint64 { return oKey(w, d, o) }

func olKey(w, d, o, ol int) uint64 {
	return uint64(w)<<44 | uint64(d)<<38 | uint64(o)<<6 | uint64(ol)
}

func olKeyPrefix(w, d, o int) uint64 { return olKey(w, d, o, 0) }

// oSecKey orders a customer's orders for the OrderStatus "most recent order"
// lookup: scan forward from oSecPrefix and keep the last matching entry.
func oSecKey(w, d, c, o int) uint64 {
	return uint64(w)<<44 | uint64(d)<<38 | uint64(c)<<16 | uint64(o&0xFFFF)
}

func oSecPrefix(w, d, c int) uint64 { return oSecKey(w, d, c, 0) }

// cSecKey supports the Payment/OrderStatus lookup by last name: a 16-bit
// hash of the name, disambiguated by the customer id so secondary keys stay
// unique. Customers sharing a last name are adjacent in the btree.
func cSecKey(w, d int, last []byte, c int) uint64 {
	return uint64(w)<<44 | uint64(d)<<38 | uint64(nameHash(last))<<22 | uint64(c)
}

func cSecPrefix(w, d int, last []byte) uint64 { return cSecKey(w, d, last, 0) }

func nameHash(last []byte) uint16 {
	var h uint32 = 2166136261
	for _, b := range last {
		if b == 0 {
			break
		}
		h = (h ^ uint32(b)) * 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// TPC-C generates last names from three syllable indexes (spec 4.3.2.3).
var nameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// lastName builds the spec's synthetic last name for a number in [0, 999].
func lastName(num int, dst []byte) []byte {
	dst = dst[:0]
	dst = append(dst, nameSyllables[num/100]...)
	dst = append(dst, nameSyllables[(num/10)%10]...)
	dst = append(dst, nameSyllables[num%10]...)
	return dst
}
