package tpcc

import (
	"errors"
	"fmt"
	"sync/atomic"

	"falcon/internal/core"
	"falcon/internal/heap"
	"falcon/internal/sim"
)

// Driver issues TPC-C transactions. One Driver serves all workers.
type Driver struct {
	cfg Config
	e   *core.Engine

	warehouse, district, customer, history  *core.Table
	newOrder, order, orderLine, item, stock *core.Table
	workers                                 []tpccWorker
	// hbase is the first free history key at attach time; fresh keys are
	// drawn from per-worker interleaved sequences above it (see nextHKey).
	hbase uint64

	// per-type commit counters for mix verification and reporting
	counts [5]atomic.Uint64
}

type tpccWorker struct {
	rng  uint64
	dseq uint64 // logical-date draws by this worker
	hseq uint64 // history-key draws by this worker
	cbuf []byte // customer scratch
	obuf []byte
	sbuf []byte
	dbuf []byte
	_    [4]uint64
}

// TxnType enumerates the five transaction profiles.
type TxnType int

// Transaction types in mix order.
const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
)

func (t TxnType) String() string {
	return [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}[t]
}

// NewDriver binds a driver to a loaded engine.
func NewDriver(e *core.Engine, cfg Config) (*Driver, error) {
	cfg = cfg.withDefaults()
	d := &Driver{cfg: cfg, e: e}
	for _, bind := range []struct {
		name string
		dst  **core.Table
	}{
		{TWarehouse, &d.warehouse}, {TDistrict, &d.district}, {TCustomer, &d.customer},
		{THistory, &d.history}, {TNewOrder, &d.newOrder}, {TOrder, &d.order},
		{TOrderLine, &d.orderLine}, {TItem, &d.item}, {TStock, &d.stock},
	} {
		*bind.dst = e.Table(bind.name)
		if *bind.dst == nil {
			return nil, fmt.Errorf("tpcc: table %q missing", bind.name)
		}
	}
	d.hbase = historyFrontier(e, d.history)
	d.workers = make([]tpccWorker, e.Config().Threads)
	for w := range d.workers {
		ws := &d.workers[w]
		ws.rng = splitmixSeed(uint64(w) + 12345)
		ws.cbuf = make([]byte, d.customer.Schema().TupleSize())
		ws.obuf = make([]byte, d.order.Schema().TupleSize())
		ws.sbuf = make([]byte, d.stock.Schema().TupleSize())
		ws.dbuf = make([]byte, d.district.Schema().TupleSize())
	}
	return d, nil
}

// nextDate returns a fresh logical date. Dates come from per-worker
// interleaved sequences (worker w draws w, w+T, w+2T, ... above the load
// epoch) rather than a shared counter: the values a worker stamps into
// tuples are then a pure function of that worker's own history, which the
// deterministic group scheduler requires for schedule-independent results.
func (d *Driver) nextDate(w int) int64 {
	ws := &d.workers[w]
	v := int64(3) + int64(ws.dseq*uint64(len(d.workers))+uint64(w))
	ws.dseq++
	return v
}

// nextHKey returns a fresh history primary key, unique across workers
// (disjoint residues mod the worker count) and schedule-independent.
func (d *Driver) nextHKey(w int) uint64 {
	ws := &d.workers[w]
	v := d.hbase + ws.hseq*uint64(len(d.workers)) + uint64(w)
	ws.hseq++
	return v
}

// splitmixSeed finalizes a seed into a well-mixed generator state.
func splitmixSeed(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (d *Driver) rand(w int) uint64 {
	ws := &d.workers[w]
	ws.rng ^= ws.rng >> 12
	ws.rng ^= ws.rng << 25
	ws.rng ^= ws.rng >> 27
	return ws.rng * 2685821657736338717
}

func (d *Driver) randN(w, n int) int { return int(d.rand(w) % uint64(n)) }

// nuRandW draws from the spec's non-uniform distribution using the worker's
// generator.
func (d *Driver) nuRand(w, a, x, y int) int {
	return (((d.randN(w, a+1) | (d.randN(w, y-x+1) + x)) + a/2) % (y - x + 1)) + x
}

// homeWarehouse pins each worker to a home warehouse (standard terminal
// binding: contention comes from remote accesses and shared districts).
func (d *Driver) homeWarehouse(w int) int {
	return w%d.cfg.Warehouses + 1
}

// nameNum draws a last-name number that exists in the scaled-down database:
// the spec's NURand(255, 0, 999) assumes ≥1000 sequentially-named customers
// per district.
func (d *Driver) nameNum(w int) int {
	n := d.nuRand(w, 255, 0, 999)
	if d.cfg.CustomersPerDistrict < 1000 {
		n %= d.cfg.CustomersPerDistrict
	}
	return n
}

// Mix returns the transaction type for a roll of [0,100): 45/43/4/4/4.
func Mix(roll int) TxnType {
	switch {
	case roll < 45:
		return TxnNewOrder
	case roll < 88:
		return TxnPayment
	case roll < 92:
		return TxnOrderStatus
	case roll < 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// Next executes one transaction from the standard mix on worker w.
func (d *Driver) Next(w int) error {
	_, err := d.NextTyped(w)
	return err
}

// NextTyped executes one mixed transaction and reports its type (latency
// class for the harness).
func (d *Driver) NextTyped(w int) (TxnType, error) {
	t := Mix(d.randN(w, 100))
	return t, d.Exec(w, t)
}

// Exec runs one transaction of the given type.
func (d *Driver) Exec(w int, t TxnType) error {
	var err error
	switch t {
	case TxnNewOrder:
		err = d.NewOrderTxn(w)
		if errors.Is(err, core.ErrRollback) {
			err = nil // the 1% intentional rollback still counts as served
		}
	case TxnPayment:
		err = d.PaymentTxn(w)
	case TxnOrderStatus:
		err = d.OrderStatusTxn(w)
	case TxnDelivery:
		err = d.DeliveryTxn(w)
	default:
		err = d.StockLevelTxn(w)
	}
	if err == nil {
		d.counts[t].Add(1)
	} else {
		err = fmt.Errorf("%v: %w", t, err)
	}
	return err
}

// Counts reports per-type committed counts.
func (d *Driver) Counts() map[string]uint64 {
	out := make(map[string]uint64, 5)
	for i := range d.counts {
		out[TxnType(i).String()] = d.counts[i].Load()
	}
	return out
}

// NewOrderTxn implements the NewOrder profile (spec 2.4): read warehouse and
// customer, bump the district's next order id, insert order + new-order, and
// for 5–15 lines read the item and update the stock. 1% of transactions roll
// back on an invalid item.
func (d *Driver) NewOrderTxn(w int) error {
	home := d.homeWarehouse(w)
	did := d.randN(w, Districts) + 1
	cid := d.nuRand(w, 1023, 1, d.cfg.CustomersPerDistrict)
	olCnt := d.randN(w, 11) + 5
	rollback := d.randN(w, 100) == 0

	type line struct {
		item   int
		supply int
		qty    int64
		remote bool
	}
	lines := make([]line, olCnt)
	for i := range lines {
		it := d.nuRand(w, 8191, 1, d.cfg.Items)
		supply := home
		remote := false
		if d.cfg.Warehouses > 1 && d.randN(w, 100) == 0 {
			supply = d.randN(w, d.cfg.Warehouses) + 1
			remote = supply != home
		}
		lines[i] = line{item: it, supply: supply, qty: int64(d.randN(w, 10) + 1), remote: remote}
	}
	date := d.nextDate(w)

	return d.e.Run(w, func(tx *core.Txn) error {
		ws := &d.workers[w]
		ds, cs, is, ss := d.district.Schema(), d.customer.Schema(), d.item.Schema(), d.stock.Schema()

		var wtax [8]byte
		if err := tx.ReadField(d.warehouse, wKey(home), WTax, wtax[:]); err != nil {
			return err
		}
		if err := tx.Read(d.customer, cKey(home, did, cid), ws.cbuf); err != nil {
			return err
		}
		_ = cs

		// District: read tax + next_o_id, bump next_o_id (select-for-update
		// — the district row is the NewOrder contention point).
		if err := tx.ReadForUpdate(d.district, dKey(home, did), ws.dbuf); err != nil {
			return err
		}
		oid := int(ds.GetInt64(ws.dbuf, DNextOID))
		var next [8]byte
		putI64(next[:], int64(oid+1))
		if err := tx.UpdateField(d.district, dKey(home, did), DNextOID, next[:]); err != nil {
			return err
		}

		// Insert ORDER and NEW-ORDER.
		os := d.order.Schema()
		obuf := ws.obuf
		for j := range obuf {
			obuf[j] = 0
		}
		os.PutUint64(obuf, OKey, oKey(home, did, oid))
		os.PutUint64(obuf, OSecKey, oSecKey(home, did, cid, oid))
		os.PutInt64(obuf, OCID, int64(cid))
		os.PutInt64(obuf, OEntryD, date)
		os.PutInt64(obuf, OOlCnt, int64(olCnt))
		os.PutInt64(obuf, OAllLocal, 1)
		if err := tx.Insert(d.order, oKey(home, did, oid), obuf); err != nil {
			if errors.Is(err, core.ErrDuplicateKey) {
				// OCC read the district's next_o_id optimistically; a racer
				// committed the same oid first. Validation would abort us
				// anyway — retry now.
				return core.ErrConflict
			}
			return err
		}
		nos := d.newOrder.Schema()
		nobuf := make([]byte, nos.TupleSize())
		nos.PutUint64(nobuf, NOKey, noKey(home, did, oid))
		if err := tx.Insert(d.newOrder, noKey(home, did, oid), nobuf); err != nil {
			if errors.Is(err, core.ErrDuplicateKey) {
				return core.ErrConflict
			}
			return err
		}

		ols := d.orderLine.Schema()
		olbuf := make([]byte, ols.TupleSize())
		for i, ln := range lines {
			if rollback && i == len(lines)-1 {
				return core.ErrRollback // invalid item: spec's 1% rollback
			}
			var price [8]byte
			if err := tx.ReadField(d.item, iKey(ln.item), IPrice, price[:]); err != nil {
				return err
			}
			_ = is

			// Stock: read, then update quantity/ytd/order_cnt(/remote_cnt).
			if err := tx.ReadForUpdate(d.stock, sKey(ln.supply, ln.item), ws.sbuf); err != nil {
				return err
			}
			qty := ss.GetInt64(ws.sbuf, SQuantity)
			if qty >= ln.qty+10 {
				qty -= ln.qty
			} else {
				qty = qty - ln.qty + 91
			}
			ss.PutInt64(ws.sbuf, SQuantity, qty)
			ss.PutInt64(ws.sbuf, SYtd, ss.GetInt64(ws.sbuf, SYtd)+ln.qty)
			ss.PutInt64(ws.sbuf, SOrderCnt, ss.GetInt64(ws.sbuf, SOrderCnt)+1)
			if ln.remote {
				ss.PutInt64(ws.sbuf, SRemoteCnt, ss.GetInt64(ws.sbuf, SRemoteCnt)+1)
			}
			// One contiguous update covering the four counters (they are
			// adjacent columns — the in-place engines' partial-write
			// advantage the paper highlights).
			start := ss.Offset(SQuantity)
			end := ss.Offset(SRemoteCnt) + 8
			if err := tx.Update(d.stock, sKey(ln.supply, ln.item), start, ws.sbuf[start:end]); err != nil {
				return err
			}

			for j := range olbuf {
				olbuf[j] = 0
			}
			amount := ln.qty * i64(price[:])
			ols.PutUint64(olbuf, OLKey, olKey(home, did, oid, i+1))
			ols.PutInt64(olbuf, OLIID, int64(ln.item))
			ols.PutInt64(olbuf, OLSupplyW, int64(ln.supply))
			ols.PutInt64(olbuf, OLQuantity, ln.qty)
			ols.PutInt64(olbuf, OLAmount, amount)
			distOff := ss.Offset(SDist) + (did-1)*24
			ols.PutBytes(olbuf, OLDistInfo, ws.sbuf[distOff:distOff+24])
			if err := tx.Insert(d.orderLine, olKey(home, did, oid, i+1), olbuf); err != nil {
				if errors.Is(err, core.ErrDuplicateKey) {
					return core.ErrConflict
				}
				return err
			}
		}
		return nil
	})
}

// PaymentTxn implements the Payment profile (spec 2.5): update warehouse and
// district YTD, select the customer by id (40%) or last name (60%), update
// the customer's balance counters, insert a history row.
func (d *Driver) PaymentTxn(w int) error {
	home := d.homeWarehouse(w)
	did := d.randN(w, Districts) + 1
	amount := int64(d.randN(w, 499901) + 100) // 1.00 .. 5000.00
	// 85% home district customer, 15% remote.
	cw, cd := home, did
	if d.cfg.Warehouses > 1 && d.randN(w, 100) >= 85 {
		for cw == home {
			cw = d.randN(w, d.cfg.Warehouses) + 1
		}
		cd = d.randN(w, Districts) + 1
	}
	byName := d.randN(w, 100) < 60
	var nameNum int
	var cid int
	if byName {
		nameNum = d.nameNum(w)
	} else {
		cid = d.nuRand(w, 1023, 1, d.cfg.CustomersPerDistrict)
	}
	date := d.nextDate(w)
	hkey := d.nextHKey(w)

	return d.e.Run(w, func(tx *core.Txn) error {
		ws := &d.workers[w]
		cs := d.customer.Schema()

		var ytd [8]byte
		if err := tx.ReadFieldForUpdate(d.warehouse, wKey(home), WYtd, ytd[:]); err != nil {
			return err
		}
		putI64(ytd[:], i64(ytd[:])+amount)
		if err := tx.UpdateField(d.warehouse, wKey(home), WYtd, ytd[:]); err != nil {
			return err
		}
		if err := tx.ReadFieldForUpdate(d.district, dKey(home, did), DYtd, ytd[:]); err != nil {
			return err
		}
		putI64(ytd[:], i64(ytd[:])+amount)
		if err := tx.UpdateField(d.district, dKey(home, did), DYtd, ytd[:]); err != nil {
			return err
		}

		key := uint64(0)
		if byName {
			k, err := d.customerByName(tx, cw, cd, nameNum, ws.cbuf)
			if err != nil {
				return err
			}
			key = k
		} else {
			key = cKey(cw, cd, cid)
			if err := tx.ReadForUpdate(d.customer, key, ws.cbuf); err != nil {
				return err
			}
		}

		cs.PutInt64(ws.cbuf, CBalance, cs.GetInt64(ws.cbuf, CBalance)-amount)
		cs.PutInt64(ws.cbuf, CYtdPayment, cs.GetInt64(ws.cbuf, CYtdPayment)+amount)
		cs.PutInt64(ws.cbuf, CPaymentCnt, cs.GetInt64(ws.cbuf, CPaymentCnt)+1)
		start := cs.Offset(CBalance)
		end := cs.Offset(CPaymentCnt) + 8
		if err := tx.Update(d.customer, key, start, ws.cbuf[start:end]); err != nil {
			return err
		}

		hs := d.history.Schema()
		hbuf := make([]byte, hs.TupleSize())
		hs.PutUint64(hbuf, HKey, hkey)
		hs.PutUint64(hbuf, HCKey, key)
		hs.PutUint64(hbuf, HDKey, dKey(home, did))
		hs.PutInt64(hbuf, HDate, date)
		hs.PutInt64(hbuf, HAmount, amount)
		return tx.Insert(d.history, hkey, hbuf)
	})
}

// customerByName resolves the spec's select-by-last-name: gather matching
// customers via the secondary index, pick the middle one (position ⌈n/2⌉).
func (d *Driver) customerByName(tx *core.Txn, w, did, nameNum int, cbuf []byte) (uint64, error) {
	var name [18]byte
	last := lastName(nameNum, name[:0])
	prefix := cSecPrefix(w, did, last)
	// All matching customers share the 42-bit (w,d,hash) prefix.
	const prefixMask = ^uint64(1<<22 - 1)
	var keys []uint64
	cs := d.customer.Schema()
	_, err := tx.ScanSecondary(d.customer, prefix, 0, func(secKey uint64, payload []byte) bool {
		if secKey&prefixMask != prefix&prefixMask {
			return false
		}
		// Hash collisions are possible; verify the actual name.
		got := cs.GetBytes(payload, CLast)
		if !bytesEqualPrefix(got, last) {
			return true
		}
		keys = append(keys, cs.GetUint64(payload, CKey))
		return true
	})
	if err != nil {
		return 0, err
	}
	if len(keys) == 0 {
		return 0, core.ErrNotFound
	}
	key := keys[len(keys)/2]
	if err := tx.Read(d.customer, key, cbuf); err != nil {
		return 0, err
	}
	return key, nil
}

// OrderStatusTxn (spec 2.6, read-only): customer by id or name, their most
// recent order, and its order lines.
func (d *Driver) OrderStatusTxn(w int) error {
	home := d.homeWarehouse(w)
	did := d.randN(w, Districts) + 1
	byName := d.randN(w, 100) < 60
	var nameNum, cid int
	if byName {
		nameNum = d.nameNum(w)
	} else {
		cid = d.nuRand(w, 1023, 1, d.cfg.CustomersPerDistrict)
	}

	return d.e.RunRO(w, func(tx *core.Txn) error {
		ws := &d.workers[w]
		cs := d.customer.Schema()
		var key uint64
		if byName {
			k, err := d.customerByName(tx, home, did, nameNum, ws.cbuf)
			if err != nil {
				if errors.Is(err, core.ErrNotFound) {
					return nil
				}
				return err
			}
			key = k
		} else {
			key = cKey(home, did, cid)
			if err := tx.Read(d.customer, key, ws.cbuf); err != nil {
				return err
			}
		}
		custID := int(cs.GetUint64(ws.cbuf, CKey) & 0x3FFFFF)

		// Most recent order via the order secondary (w,d,c | o).
		prefix := oSecPrefix(home, did, custID)
		const prefixMask = ^uint64(1<<16 - 1)
		lastOrder := uint64(0)
		if _, err := tx.ScanSecondary(d.order, prefix, 0, func(secKey uint64, payload []byte) bool {
			if secKey&prefixMask != prefix&prefixMask {
				return false
			}
			lastOrder = d.order.Schema().GetUint64(payload, OKey)
			return true
		}); err != nil {
			return err
		}
		if lastOrder == 0 {
			return nil // customer has no orders yet
		}
		// Read its order lines.
		olPrefix := olKeyPrefix(home, did, int(lastOrder&0x3FFFFFFFF))
		const olMask = ^uint64(1<<6 - 1)
		_, err := tx.Scan(d.orderLine, olPrefix, maxOrderLines, func(k uint64, payload []byte) bool {
			return k&olMask == olPrefix&olMask
		})
		return err
	})
}

// DeliveryTxn (spec 2.7): for each district, take the oldest undelivered
// order, delete its NEW-ORDER row, stamp the carrier, set the delivery date
// on each line, and credit the customer's balance.
func (d *Driver) DeliveryTxn(w int) error {
	home := d.homeWarehouse(w)
	carrier := int64(d.randN(w, 10) + 1)
	date := d.nextDate(w)

	for did := 1; did <= Districts; did++ {
		did := did
		err := d.e.Run(w, func(tx *core.Txn) error {
			// Oldest NEW-ORDER of this district.
			prefix := oKeyPrefix(home, did)
			var noK uint64
			districtShift := oKey(home, did, 0)
			if _, err := tx.Scan(d.newOrder, prefix, 1, func(k uint64, payload []byte) bool {
				if k>>34 == districtShift>>34 {
					noK = k
				}
				return false
			}); err != nil {
				return err
			}
			if noK == 0 {
				return nil // nothing to deliver here
			}
			oid := int(noK & 0x3FFFFFFFF)
			if err := tx.Delete(d.newOrder, noK); err != nil {
				if errors.Is(err, core.ErrNotFound) {
					return nil // another terminal delivered it first
				}
				return err
			}

			// Stamp the order's carrier and collect its customer + lines.
			ws := &d.workers[w]
			os := d.order.Schema()
			if err := tx.ReadForUpdate(d.order, oKey(home, did, oid), ws.obuf); err != nil {
				return err
			}
			cid := int(os.GetInt64(ws.obuf, OCID))
			var cb [8]byte
			putI64(cb[:], carrier)
			if err := tx.UpdateField(d.order, oKey(home, did, oid), OCarrierID, cb[:]); err != nil {
				return err
			}

			ols := d.orderLine.Schema()
			olPrefix := olKeyPrefix(home, did, oid)
			const olMask = ^uint64(1<<6 - 1)
			var total int64
			var lineKeys []uint64
			if _, err := tx.Scan(d.orderLine, olPrefix, maxOrderLines, func(k uint64, payload []byte) bool {
				if k&olMask != olPrefix&olMask {
					return false
				}
				total += ols.GetInt64(payload, OLAmount)
				lineKeys = append(lineKeys, k)
				return true
			}); err != nil {
				return err
			}
			var dd [8]byte
			putI64(dd[:], date)
			for _, k := range lineKeys {
				if err := tx.UpdateField(d.orderLine, k, OLDeliveryD, dd[:]); err != nil {
					return err
				}
			}

			// Credit the customer.
			cs := d.customer.Schema()
			key := cKey(home, did, cid)
			if err := tx.ReadForUpdate(d.customer, key, ws.cbuf); err != nil {
				return err
			}
			cs.PutInt64(ws.cbuf, CBalance, cs.GetInt64(ws.cbuf, CBalance)+total)
			cs.PutInt64(ws.cbuf, CDeliveryCnt, cs.GetInt64(ws.cbuf, CDeliveryCnt)+1)
			start := cs.Offset(CBalance)
			if err := tx.Update(d.customer, key, start, ws.cbuf[start:start+8]); err != nil {
				return err
			}
			return tx.UpdateField(d.customer, key, CDeliveryCnt, ws.cbuf[cs.Offset(CDeliveryCnt):cs.Offset(CDeliveryCnt)+8])
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// StockLevelTxn (spec 2.8, read-only): count distinct items from the last 20
// orders of a district whose stock is below a threshold.
func (d *Driver) StockLevelTxn(w int) error {
	home := d.homeWarehouse(w)
	did := d.randN(w, Districts) + 1
	threshold := int64(d.randN(w, 11) + 10)

	return d.e.RunRO(w, func(tx *core.Txn) error {
		ws := &d.workers[w]
		ds := d.district.Schema()
		if err := tx.Read(d.district, dKey(home, did), ws.dbuf); err != nil {
			return err
		}
		nextO := int(ds.GetInt64(ws.dbuf, DNextOID))
		firstO := nextO - 20
		if firstO < 1 {
			firstO = 1
		}
		ols := d.orderLine.Schema()
		seen := make(map[int64]struct{}, 64)
		items := make([]int64, 0, 64)
		olPrefix := olKeyPrefix(home, did, firstO)
		limit := olKeyPrefix(home, did, nextO)
		if _, err := tx.Scan(d.orderLine, olPrefix, 0, func(k uint64, payload []byte) bool {
			if k >= limit {
				return false
			}
			item := ols.GetInt64(payload, OLIID)
			if _, dup := seen[item]; !dup {
				seen[item] = struct{}{}
				items = append(items, item)
			}
			return true
		}); err != nil {
			return err
		}
		// Probe stock in scan order, not map order: ranging over the map
		// would issue the reads in Go's randomized iteration order, making
		// the simulated cache walk differ between identical runs.
		low := 0
		var q [8]byte
		for _, item := range items {
			if err := tx.ReadField(d.stock, sKey(home, int(item)), SQuantity, q[:]); err != nil {
				return err
			}
			if i64(q[:]) < threshold {
				low++
			}
		}
		_ = low
		return nil
	})
}

// historyFrontier finds the first history key above every existing one, so a
// driver attached to a recovered database continues the sequence instead of
// colliding. Per-worker interleaved key draws leave holes when workers commit
// unevenly, so this scans for the maximum rather than binary-searching a
// dense range.
func historyFrontier(e *core.Engine, hist *core.Table) uint64 {
	s := hist.Schema()
	var max uint64
	hist.Heap().Scan(sim.NewClock(), func(slot, ts uint64, flags uint8, payload []byte) {
		if flags&heap.FlagOccupied == 0 || flags&heap.FlagDeleted != 0 {
			return
		}
		if k := s.GetUint64(payload, HKey); k > max {
			max = k
		}
	})
	return max + 1
}

func putI64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func i64(b []byte) int64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}

func bytesEqualPrefix(got, want []byte) bool {
	if len(got) < len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return len(got) == len(want) || got[len(want)] == 0
}
