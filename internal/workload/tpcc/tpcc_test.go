package tpcc

import (
	"sync"
	"testing"

	"falcon/internal/cc"
	"falcon/internal/core"
	"falcon/internal/pmem"
)

func tinyConfig() Config {
	return Config{Warehouses: 2, Items: 200, CustomersPerDistrict: 30}
}

func newLoadedEngine(t *testing.T, ecfg core.Config, cfg Config) (*core.Engine, *Driver) {
	t.Helper()
	ecfg.Threads = 4
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 512 << 20})
	e, err := core.New(sys, ecfg, TableSpecs(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(e, cfg); err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestLoadPopulatesAllTables(t *testing.T) {
	cfg := tinyConfig()
	e, _ := newLoadedEngine(t, core.FalconConfig(), cfg)

	buf := make([]byte, e.Table(TWarehouse).Schema().TupleSize())
	if err := e.RunRO(0, func(tx *core.Txn) error {
		return tx.Read(e.Table(TWarehouse), wKey(1), buf)
	}); err != nil {
		t.Fatalf("warehouse 1 missing: %v", err)
	}
	cbuf := make([]byte, e.Table(TCustomer).Schema().TupleSize())
	if err := e.RunRO(0, func(tx *core.Txn) error {
		return tx.Read(e.Table(TCustomer), cKey(2, 10, 30), cbuf)
	}); err != nil {
		t.Fatalf("last customer missing: %v", err)
	}
	sbuf := make([]byte, e.Table(TStock).Schema().TupleSize())
	if err := e.RunRO(0, func(tx *core.Txn) error {
		return tx.Read(e.Table(TStock), sKey(2, 200), sbuf)
	}); err != nil {
		t.Fatalf("stock missing: %v", err)
	}
}

func TestMixRatios(t *testing.T) {
	var counts [5]int
	for roll := 0; roll < 100; roll++ {
		counts[Mix(roll)]++
	}
	want := [5]int{45, 43, 4, 4, 4}
	if counts != want {
		t.Fatalf("mix = %v, want %v", counts, want)
	}
}

func TestNewOrderCreatesOrderAndLines(t *testing.T) {
	cfg := tinyConfig()
	e, d := newLoadedEngine(t, core.FalconConfig(), cfg)
	if err := d.NewOrderTxn(0); err != nil && err != core.ErrRollback {
		t.Fatal(err)
	}
	// next_o_id of at least one district of warehouse 1 advanced.
	ds := e.Table(TDistrict).Schema()
	dbuf := make([]byte, ds.TupleSize())
	advanced := false
	for did := 1; did <= Districts; did++ {
		if err := e.RunRO(0, func(tx *core.Txn) error {
			return tx.Read(e.Table(TDistrict), dKey(1, did), dbuf)
		}); err != nil {
			t.Fatal(err)
		}
		if ds.GetInt64(dbuf, DNextOID) > int64(cfg.OrdersPerDistrict)+1 {
			advanced = true
		}
	}
	// The transaction may have rolled back (1%); tolerate only if counts say so.
	if !advanced && d.counts[TxnNewOrder].Load() > 0 {
		t.Fatal("NewOrder committed but no district next_o_id advanced")
	}
}

func TestAllTransactionTypesRun(t *testing.T) {
	cfg := tinyConfig()
	_, d := newLoadedEngine(t, core.FalconConfig(), cfg)
	for ty := TxnNewOrder; ty <= TxnStockLevel; ty++ {
		for i := 0; i < 5; i++ {
			if err := d.Exec(i%4, ty); err != nil {
				t.Fatalf("%v run %d: %v", ty, i, err)
			}
		}
	}
	counts := d.Counts()
	for ty := TxnNewOrder; ty <= TxnStockLevel; ty++ {
		if counts[ty.String()] == 0 {
			t.Errorf("%v never committed", ty)
		}
	}
}

func TestMixedWorkloadAllEngines(t *testing.T) {
	for _, ecfg := range []core.Config{
		core.FalconConfig(), core.FalconDRAMIndexConfig(), core.InpConfig(),
		core.OutpConfig(), core.ZenSConfig(),
	} {
		ecfg := ecfg
		t.Run(ecfg.Name, func(t *testing.T) {
			cfg := tinyConfig()
			_, d := newLoadedEngine(t, ecfg, cfg)
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						if err := d.Next(w); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
		})
	}
}

func TestMixedWorkloadAllCCAlgorithms(t *testing.T) {
	for _, algo := range cc.All {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			ecfg := core.FalconConfig()
			ecfg.CC = algo
			cfg := tinyConfig()
			_, d := newLoadedEngine(t, ecfg, cfg)
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						if err := d.Next(w); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
		})
	}
}

func TestDistrictOrderConsistency(t *testing.T) {
	// Invariant (TPC-C consistency condition 1-3 simplified): for each
	// district, d_next_o_id - 1 equals the maximum order id present.
	cfg := tinyConfig()
	e, d := newLoadedEngine(t, core.FalconConfig(), cfg)
	for i := 0; i < 60; i++ {
		if err := d.Exec(i%4, TxnNewOrder); err != nil {
			t.Fatal(err)
		}
	}
	ds := e.Table(TDistrict).Schema()
	dbuf := make([]byte, ds.TupleSize())
	for w := 1; w <= cfg.Warehouses; w++ {
		for did := 1; did <= Districts; did++ {
			if err := e.RunRO(0, func(tx *core.Txn) error {
				return tx.Read(e.Table(TDistrict), dKey(w, did), dbuf)
			}); err != nil {
				t.Fatal(err)
			}
			next := int(ds.GetInt64(dbuf, DNextOID))
			// The order with id next-1 must exist; next must not.
			obuf := make([]byte, e.Table(TOrder).Schema().TupleSize())
			if err := e.RunRO(0, func(tx *core.Txn) error {
				return tx.Read(e.Table(TOrder), oKey(w, did, next-1), obuf)
			}); err != nil {
				t.Fatalf("w%d d%d: order %d (next_o_id-1) missing: %v", w, did, next-1, err)
			}
			if err := e.RunRO(0, func(tx *core.Txn) error {
				return tx.Read(e.Table(TOrder), oKey(w, did, next), obuf)
			}); err == nil {
				t.Fatalf("w%d d%d: order %d (next_o_id) already exists", w, did, next)
			}
		}
	}
}

func TestDeliveryClearsNewOrders(t *testing.T) {
	cfg := tinyConfig()
	e, d := newLoadedEngine(t, core.FalconConfig(), cfg)
	before := countNewOrders(t, e, 1)
	if before == 0 {
		t.Fatal("loader created no undelivered orders")
	}
	if err := d.DeliveryTxn(0); err != nil {
		t.Fatal(err)
	}
	after := countNewOrders(t, e, 1)
	if after >= before {
		t.Fatalf("delivery removed no new-orders (%d -> %d)", before, after)
	}
}

func countNewOrders(t *testing.T, e *core.Engine, w int) int {
	t.Helper()
	n := 0
	err := e.RunRO(0, func(tx *core.Txn) error {
		n = 0
		_, err := tx.Scan(e.Table(TNewOrder), oKeyPrefix(w, 1), 0, func(k uint64, _ []byte) bool {
			if int(k>>40) != w {
				return false
			}
			n++
			return true
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCrashRecoveryPreservesTPCC(t *testing.T) {
	cfg := tinyConfig()
	ecfg := core.FalconConfig()
	e, d := newLoadedEngine(t, ecfg, cfg)
	for i := 0; i < 40; i++ {
		if err := d.Next(i % 4); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot an invariant source before crash.
	ds := e.Table(TDistrict).Schema()
	dbuf := make([]byte, ds.TupleSize())
	wantNext := map[uint64]int64{}
	for w := 1; w <= cfg.Warehouses; w++ {
		for did := 1; did <= Districts; did++ {
			if err := e.RunRO(0, func(tx *core.Txn) error {
				return tx.Read(e.Table(TDistrict), dKey(w, did), dbuf)
			}); err != nil {
				t.Fatal(err)
			}
			wantNext[dKey(w, did)] = ds.GetInt64(dbuf, DNextOID)
		}
	}

	sys2 := e.System().Crash()
	e2, _, err := core.Recover(sys2, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range wantNext {
		if err := e2.RunRO(0, func(tx *core.Txn) error {
			return tx.Read(e2.Table(TDistrict), key, dbuf)
		}); err != nil {
			t.Fatal(err)
		}
		if got := ds.GetInt64(dbuf, DNextOID); got != want {
			t.Fatalf("district %x next_o_id = %d after crash, want %d", key, got, want)
		}
	}
	// And the engine keeps working.
	d2, err := NewDriver(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d2.Next(i % 4); err != nil {
			t.Fatal(err)
		}
	}
}
