package tpcc

import (
	"fmt"
	"math/rand"

	"falcon/internal/core"
	"falcon/internal/layout"
)

// Load populates the nine tables per the spec's initial database, scaled by
// cfg. It bypasses transaction processing (bulk path, uncharged), matching
// the paper's pre-measurement table initialization.
func Load(e *core.Engine, cfg Config) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(20230101))
	l := &loader{e: e, cfg: cfg, rng: rng, seqs: make(map[string]int)}
	if err := l.items(); err != nil {
		return err
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		if err := l.warehouse(w); err != nil {
			return err
		}
	}
	return nil
}

type loader struct {
	e    *core.Engine
	cfg  Config
	rng  *rand.Rand
	hseq uint64
	seqs map[string]int // per-table round-robin thread assignment
}

// install bulk-writes one tuple and its index entries, spreading each
// table's rows round-robin across worker slot ranges so per-thread
// allocation cursors stay balanced.
func (l *loader) install(t *core.Table, _ int, key uint64, buf []byte) error {
	h := t.Heap()
	thread := l.seqs[t.Name()] % l.e.Config().Threads
	l.seqs[t.Name()]++
	slot, err := h.Alloc(nil, thread, 0)
	if err != nil {
		return fmt.Errorf("tpcc: load %s: %w", t.Name(), err)
	}
	h.BulkInstall(slot, 0, buf)
	if err := t.BulkIndexInsert(key, slot); err != nil {
		return fmt.Errorf("tpcc: load %s key %#x slot %d: %w", t.Name(), key, slot, err)
	}
	return nil
}

// thread is retained for call-site readability; install ignores it and
// assigns threads per table.
func (l *loader) thread(int) int { return 0 }

func (l *loader) fillString(s *layout.Schema, buf []byte, col, minLen, maxLen int) {
	n := minLen
	if maxLen > minLen {
		n += l.rng.Intn(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + l.rng.Intn(26))
	}
	s.PutBytes(buf, col, b)
}

func (l *loader) items() error {
	t := l.e.Table(TItem)
	s := t.Schema()
	buf := make([]byte, s.TupleSize())
	for i := 1; i <= l.cfg.Items; i++ {
		for j := range buf {
			buf[j] = 0
		}
		s.PutUint64(buf, IID, iKey(i))
		s.PutInt64(buf, IImID, int64(l.rng.Intn(10000)+1))
		s.PutInt64(buf, IPrice, int64(l.rng.Intn(9901)+100)) // 1.00..100.00 in cents
		l.fillString(s, buf, IName, 14, 24)
		l.fillString(s, buf, IData, 26, 50)
		if err := l.install(t, l.thread(i), iKey(i), buf); err != nil {
			return err
		}
	}
	return nil
}

func (l *loader) warehouse(w int) error {
	tw := l.e.Table(TWarehouse)
	s := tw.Schema()
	buf := make([]byte, s.TupleSize())
	s.PutUint64(buf, WID, wKey(w))
	s.PutInt64(buf, WTax, int64(l.rng.Intn(2001))) // 0..20.00% in bp
	s.PutInt64(buf, WYtd, 30000000)                // 300,000.00
	l.fillString(s, buf, WName, 6, 10)
	if err := l.install(tw, l.thread(w), wKey(w), buf); err != nil {
		return err
	}

	if err := l.stock(w); err != nil {
		return err
	}
	for d := 1; d <= Districts; d++ {
		if err := l.district(w, d); err != nil {
			return err
		}
	}
	return nil
}

func (l *loader) stock(w int) error {
	t := l.e.Table(TStock)
	s := t.Schema()
	buf := make([]byte, s.TupleSize())
	for i := 1; i <= l.cfg.Items; i++ {
		for j := range buf {
			buf[j] = 0
		}
		s.PutUint64(buf, SKey, sKey(w, i))
		s.PutInt64(buf, SQuantity, int64(l.rng.Intn(91)+10))
		l.fillString(s, buf, SDist, 240, 240)
		l.fillString(s, buf, SData, 26, 50)
		if err := l.install(t, l.thread(i), sKey(w, i), buf); err != nil {
			return err
		}
	}
	return nil
}

func (l *loader) district(w, d int) error {
	t := l.e.Table(TDistrict)
	s := t.Schema()
	buf := make([]byte, s.TupleSize())
	s.PutUint64(buf, DKey, dKey(w, d))
	s.PutInt64(buf, DTax, int64(l.rng.Intn(2001)))
	s.PutInt64(buf, DYtd, 3000000)
	s.PutInt64(buf, DNextOID, int64(l.cfg.OrdersPerDistrict)+1)
	l.fillString(s, buf, DName, 6, 10)
	if err := l.install(t, l.thread(w*Districts+d), dKey(w, d), buf); err != nil {
		return err
	}

	if err := l.customers(w, d); err != nil {
		return err
	}
	return l.orders(w, d)
}

func (l *loader) customers(w, d int) error {
	t := l.e.Table(TCustomer)
	s := t.Schema()
	buf := make([]byte, s.TupleSize())
	nameBuf := make([]byte, 0, 18)
	for c := 1; c <= l.cfg.CustomersPerDistrict; c++ {
		for j := range buf {
			buf[j] = 0
		}
		// Spec: first 1000 customers get sequential names, rest NURand.
		nameNum := c - 1
		if nameNum >= 1000 {
			nameNum = nuRand(l.rng, 255, 0, 999)
		}
		name := lastName(nameNum, nameBuf)
		s.PutUint64(buf, CKey, cKey(w, d, c))
		s.PutUint64(buf, CSecKey, cSecKey(w, d, name, c))
		s.PutInt64(buf, CBalance, -1000) // -10.00
		s.PutInt64(buf, CYtdPayment, 1000)
		s.PutInt64(buf, CPaymentCnt, 1)
		s.PutInt64(buf, CDiscount, int64(l.rng.Intn(5001))) // 0..50.00% bp
		s.PutInt64(buf, CCreditLim, 5000000)
		s.PutBytes(buf, CLast, name)
		l.fillString(s, buf, CFirst, 8, 16)
		s.PutString(buf, CMiddle, "OE")
		if l.rng.Intn(10) == 0 {
			s.PutString(buf, 18, "BC") // c_credit
		} else {
			s.PutString(buf, 18, "GC")
		}
		l.fillString(s, buf, 19, 100, 250) // c_data
		if err := l.install(t, l.thread(c), cKey(w, d, c), buf); err != nil {
			return err
		}

		// One history row per customer.
		th := l.e.Table(THistory)
		hs := th.Schema()
		hbuf := make([]byte, hs.TupleSize())
		l.hseq++
		hs.PutUint64(hbuf, HKey, l.hseq)
		hs.PutUint64(hbuf, HCKey, cKey(w, d, c))
		hs.PutUint64(hbuf, HDKey, dKey(w, d))
		hs.PutInt64(hbuf, HAmount, 1000)
		if err := l.install(th, l.thread(c), l.hseq, hbuf); err != nil {
			return err
		}
	}
	return nil
}

func (l *loader) orders(w, d int) error {
	to := l.e.Table(TOrder)
	tol := l.e.Table(TOrderLine)
	tno := l.e.Table(TNewOrder)
	os, ols, nos := to.Schema(), tol.Schema(), tno.Schema()
	obuf := make([]byte, os.TupleSize())
	olbuf := make([]byte, ols.TupleSize())
	nobuf := make([]byte, nos.TupleSize())

	// Orders 1..N with customers in a random permutation (spec).
	perm := l.rng.Perm(l.cfg.CustomersPerDistrict)
	for o := 1; o <= l.cfg.OrdersPerDistrict; o++ {
		c := perm[(o-1)%len(perm)] + 1
		olCnt := l.rng.Intn(11) + 5 // 5..15
		for j := range obuf {
			obuf[j] = 0
		}
		os.PutUint64(obuf, OKey, oKey(w, d, o))
		os.PutUint64(obuf, OSecKey, oSecKey(w, d, c, o))
		os.PutInt64(obuf, OCID, int64(c))
		os.PutInt64(obuf, OEntryD, 1)
		os.PutInt64(obuf, OOlCnt, int64(olCnt))
		os.PutInt64(obuf, OAllLocal, 1)
		// Last third of the orders are undelivered (spec: 2101..3000).
		delivered := o <= l.cfg.OrdersPerDistrict*2/3
		if delivered {
			os.PutInt64(obuf, OCarrierID, int64(l.rng.Intn(10)+1))
		}
		if err := l.install(to, l.thread(o), oKey(w, d, o), obuf); err != nil {
			return err
		}
		if !delivered {
			nos.PutUint64(nobuf, NOKey, noKey(w, d, o))
			if err := l.install(tno, l.thread(o), noKey(w, d, o), nobuf); err != nil {
				return err
			}
		}
		for ol := 1; ol <= olCnt; ol++ {
			for j := range olbuf {
				olbuf[j] = 0
			}
			ols.PutUint64(olbuf, OLKey, olKey(w, d, o, ol))
			ols.PutInt64(olbuf, OLIID, int64(l.rng.Intn(l.cfg.Items)+1))
			ols.PutInt64(olbuf, OLSupplyW, int64(w))
			ols.PutInt64(olbuf, OLQuantity, 5)
			if delivered {
				ols.PutInt64(olbuf, OLDeliveryD, 1)
				ols.PutInt64(olbuf, OLAmount, 0)
			} else {
				ols.PutInt64(olbuf, OLAmount, int64(l.rng.Intn(999999)+1))
			}
			l.fillString(ols, olbuf, OLDistInfo, 24, 24)
			if err := l.install(tol, l.thread(ol), olKey(w, d, o, ol), olbuf); err != nil {
				return err
			}
		}
	}
	return nil
}

// nuRand is the spec's non-uniform random distribution (4.3.2.5).
func nuRand(rng *rand.Rand, a, x, y int) int {
	c := a / 2
	return (((rng.Intn(a+1) | (rng.Intn(y-x+1) + x)) + c) % (y - x + 1)) + x
}
