// Package tpcc implements the TPC-C benchmark (paper §6.1): nine tables and
// five transaction types with the standard mix — NewOrder 45%, Payment 43%,
// OrderStatus 4%, Delivery 4%, StockLevel 4%. NewOrder and Payment are the
// short read-write transactions that dominate the workload; OrderStatus and
// StockLevel are read-only; Delivery is the long read-write transaction.
//
// Money is stored in integer cents and tax/discount rates in basis points so
// the workload is deterministic and replay-idempotent. Composite keys are
// packed into uint64s (see keys.go).
package tpcc

import (
	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/layout"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrder     = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// Config scales the benchmark. Paper defaults: 2048 warehouses, 100,000
// items, 3,000 customers per district; this reproduction scales down by
// default but keeps the structure.
type Config struct {
	// Warehouses is the warehouse count (the contention knob).
	Warehouses int
	// Items is the item/stock catalog size (default 10,000; spec 100,000).
	Items int
	// CustomersPerDistrict (default 300; spec 3,000).
	CustomersPerDistrict int
	// OrdersPerDistrict preloaded (default = CustomersPerDistrict).
	OrdersPerDistrict int
	// OrderHeadroom multiplies order/order-line/history capacity to leave
	// room for NewOrder growth during a run (default 4).
	OrderHeadroom int
}

// Districts per warehouse is fixed by the spec.
const Districts = 10

// maxOrderLines is the spec's per-order line limit.
const maxOrderLines = 15

func (c Config) withDefaults() Config {
	if c.Warehouses == 0 {
		c.Warehouses = 2
	}
	if c.Items == 0 {
		c.Items = 10_000
	}
	if c.CustomersPerDistrict == 0 {
		c.CustomersPerDistrict = 300
	}
	if c.OrdersPerDistrict == 0 {
		c.OrdersPerDistrict = c.CustomersPerDistrict
	}
	if c.OrderHeadroom == 0 {
		c.OrderHeadroom = 4
	}
	return c
}

// Column indexes used by the transactions (kept in one place so schema and
// code stay in sync).
const (
	// warehouse
	WID, WTax, WYtd, WName = 0, 1, 2, 3
	// district
	DKey, DTax, DYtd, DNextOID, DName = 0, 1, 2, 3, 4
	// customer
	CKey, CSecKey, CBalance, CYtdPayment, CPaymentCnt, CDeliveryCnt,
	CDiscount, CCreditLim, CFirst, CMiddle, CLast = 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
	// history
	HKey, HCKey, HDKey, HDate, HAmount = 0, 1, 2, 3, 4
	// new_order
	NOKey = 0
	// orders
	OKey, OSecKey, OCID, OEntryD, OCarrierID, OOlCnt, OAllLocal = 0, 1, 2, 3, 4, 5, 6
	// order_line
	OLKey, OLIID, OLSupplyW, OLDeliveryD, OLQuantity, OLAmount, OLDistInfo = 0, 1, 2, 3, 4, 5, 6
	// item
	IID, IImID, IPrice, IName, IData = 0, 1, 2, 3, 4
	// stock
	SKey, SQuantity, SYtd, SOrderCnt, SRemoteCnt, SDist, SData = 0, 1, 2, 3, 4, 5, 6
)

func warehouseSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "w_id", Kind: layout.Uint64},
		layout.Column{Name: "w_tax", Kind: layout.Int64},
		layout.Column{Name: "w_ytd", Kind: layout.Int64},
		layout.Column{Name: "w_name", Kind: layout.Bytes, Size: 10},
		layout.Column{Name: "w_street_1", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "w_street_2", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "w_city", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "w_state", Kind: layout.Bytes, Size: 2},
		layout.Column{Name: "w_zip", Kind: layout.Bytes, Size: 9},
	)
}

func districtSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "d_key", Kind: layout.Uint64},
		layout.Column{Name: "d_tax", Kind: layout.Int64},
		layout.Column{Name: "d_ytd", Kind: layout.Int64},
		layout.Column{Name: "d_next_o_id", Kind: layout.Int64},
		layout.Column{Name: "d_name", Kind: layout.Bytes, Size: 10},
		layout.Column{Name: "d_street_1", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "d_street_2", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "d_city", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "d_state", Kind: layout.Bytes, Size: 2},
		layout.Column{Name: "d_zip", Kind: layout.Bytes, Size: 9},
	)
}

func customerSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "c_key", Kind: layout.Uint64},
		layout.Column{Name: "c_seckey", Kind: layout.Uint64},
		layout.Column{Name: "c_balance", Kind: layout.Int64},
		layout.Column{Name: "c_ytd_payment", Kind: layout.Int64},
		layout.Column{Name: "c_payment_cnt", Kind: layout.Int64},
		layout.Column{Name: "c_delivery_cnt", Kind: layout.Int64},
		layout.Column{Name: "c_discount", Kind: layout.Int64},
		layout.Column{Name: "c_credit_lim", Kind: layout.Int64},
		layout.Column{Name: "c_first", Kind: layout.Bytes, Size: 16},
		layout.Column{Name: "c_middle", Kind: layout.Bytes, Size: 2},
		layout.Column{Name: "c_last", Kind: layout.Bytes, Size: 16},
		layout.Column{Name: "c_street_1", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "c_street_2", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "c_city", Kind: layout.Bytes, Size: 20},
		layout.Column{Name: "c_state", Kind: layout.Bytes, Size: 2},
		layout.Column{Name: "c_zip", Kind: layout.Bytes, Size: 9},
		layout.Column{Name: "c_phone", Kind: layout.Bytes, Size: 16},
		layout.Column{Name: "c_since", Kind: layout.Int64},
		layout.Column{Name: "c_credit", Kind: layout.Bytes, Size: 2},
		layout.Column{Name: "c_data", Kind: layout.Bytes, Size: 250},
	)
}

func historySchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "h_key", Kind: layout.Uint64},
		layout.Column{Name: "h_c_key", Kind: layout.Uint64},
		layout.Column{Name: "h_d_key", Kind: layout.Uint64},
		layout.Column{Name: "h_date", Kind: layout.Int64},
		layout.Column{Name: "h_amount", Kind: layout.Int64},
		layout.Column{Name: "h_data", Kind: layout.Bytes, Size: 24},
	)
}

func newOrderSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "no_key", Kind: layout.Uint64},
	)
}

func orderSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "o_key", Kind: layout.Uint64},
		layout.Column{Name: "o_seckey", Kind: layout.Uint64},
		layout.Column{Name: "o_c_id", Kind: layout.Int64},
		layout.Column{Name: "o_entry_d", Kind: layout.Int64},
		layout.Column{Name: "o_carrier_id", Kind: layout.Int64},
		layout.Column{Name: "o_ol_cnt", Kind: layout.Int64},
		layout.Column{Name: "o_all_local", Kind: layout.Int64},
	)
}

func orderLineSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "ol_key", Kind: layout.Uint64},
		layout.Column{Name: "ol_i_id", Kind: layout.Int64},
		layout.Column{Name: "ol_supply_w_id", Kind: layout.Int64},
		layout.Column{Name: "ol_delivery_d", Kind: layout.Int64},
		layout.Column{Name: "ol_quantity", Kind: layout.Int64},
		layout.Column{Name: "ol_amount", Kind: layout.Int64},
		layout.Column{Name: "ol_dist_info", Kind: layout.Bytes, Size: 24},
	)
}

func itemSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "i_id", Kind: layout.Uint64},
		layout.Column{Name: "i_im_id", Kind: layout.Int64},
		layout.Column{Name: "i_price", Kind: layout.Int64},
		layout.Column{Name: "i_name", Kind: layout.Bytes, Size: 24},
		layout.Column{Name: "i_data", Kind: layout.Bytes, Size: 50},
	)
}

func stockSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "s_key", Kind: layout.Uint64},
		layout.Column{Name: "s_quantity", Kind: layout.Int64},
		layout.Column{Name: "s_ytd", Kind: layout.Int64},
		layout.Column{Name: "s_order_cnt", Kind: layout.Int64},
		layout.Column{Name: "s_remote_cnt", Kind: layout.Int64},
		layout.Column{Name: "s_dist", Kind: layout.Bytes, Size: 240}, // 10 × 24
		layout.Column{Name: "s_data", Kind: layout.Bytes, Size: 50},
	)
}

// TableSpecs declares the nine tables for the engine. Ordered tables (order,
// new_order, order_line) use btrees for the scans Delivery, OrderStatus and
// StockLevel need; point-access tables use the hash index.
func TableSpecs(cfg Config) []core.TableSpec {
	cfg = cfg.withDefaults()
	w := uint64(cfg.Warehouses)
	cust := w * Districts * uint64(cfg.CustomersPerDistrict)
	orders := w * Districts * uint64(cfg.OrdersPerDistrict) * uint64(cfg.OrderHeadroom)
	return []core.TableSpec{
		{Name: TWarehouse, Schema: warehouseSchema(), Capacity: w + 1, KeyCol: WID, IndexKind: index.Hash},
		{Name: TDistrict, Schema: districtSchema(), Capacity: w*Districts + 1, KeyCol: DKey, IndexKind: index.Hash},
		{Name: TCustomer, Schema: customerSchema(), Capacity: cust + 1, KeyCol: CKey,
			IndexKind: index.Hash, SecondaryCol: CSecKey},
		{Name: THistory, Schema: historySchema(), Capacity: cust*uint64(cfg.OrderHeadroom) + 1024, KeyCol: HKey, IndexKind: index.Hash},
		{Name: TNewOrder, Schema: newOrderSchema(), Capacity: orders + 1024, KeyCol: NOKey, IndexKind: index.BTree},
		{Name: TOrder, Schema: orderSchema(), Capacity: orders + 1024, KeyCol: OKey,
			IndexKind: index.BTree, SecondaryCol: OSecKey},
		{Name: TOrderLine, Schema: orderLineSchema(), Capacity: orders*maxOrderLines + 1024, KeyCol: OLKey, IndexKind: index.BTree},
		{Name: TItem, Schema: itemSchema(), Capacity: uint64(cfg.Items) + 1, KeyCol: IID, IndexKind: index.Hash},
		{Name: TStock, Schema: stockSchema(), Capacity: w*uint64(cfg.Items) + 1, KeyCol: SKey, IndexKind: index.Hash},
	}
}
