package loadgen

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/server"
)

func newLoadTarget(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	ecfg := core.FalconConfig()
	ecfg.Threads = 4
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 64 << 20})
	specs := server.WithIdemTable([]core.TableSpec{{
		Name: "kv", Schema: server.ServeSchema(0), Capacity: 1 << 14,
		KeyCol: 0, IndexKind: index.Hash,
	}}, 1<<14)
	e, err := core.New(sys, ecfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Drain(10 * time.Second) })
	return s, ts.URL
}

// TestReportSchemaRoundTrip is the artifact-format guard: a Report survives a
// JSON round trip unchanged, carries the falcon/loadgen/v1 stamp, and exposes
// exactly the documented Round keys — a rename shows up here before it breaks
// offline consumers diffing -json artifacts.
func TestReportSchemaRoundTrip(t *testing.T) {
	var lat, latOK obs.Histogram
	for _, v := range []uint64{900, 1800, 3600, 7200} {
		lat.Observe(v)
	}
	latOK.Observe(900)
	latOK.Observe(1800)
	in := &Report{
		Schema: bench.LoadgenSchema, Scenario: ScenarioOverload,
		Target: "http://127.0.0.1:0", KneeQPS: 123.5,
		Rounds: []Round{{
			Label: "overload@2x-knee", TargetQPS: 247, Offered: 100, Completed: 90,
			OK: 60, Errors: 30, Sheds: 35, Retries: 20, Replayed: 2,
			AchievedQPS: 59.5, DurationNanos: uint64(time.Second),
			Latency: lat.Dump(), P50Nanos: lat.Quantile(0.50),
			P95Nanos: lat.Quantile(0.95), P99Nanos: lat.Quantile(0.99),
			AcceptedLatency: latOK.Dump(), AcceptedP99Nanos: latOK.Quantile(0.99),
		}},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*in, out) {
		t.Fatalf("report did not survive the round trip:\n in: %+v\nout: %+v", *in, out)
	}

	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	if got := string(top["schema"]); got != `"falcon/loadgen/v1"` {
		t.Fatalf("schema stamp = %s, want %q", got, bench.LoadgenSchema)
	}
	var rounds []map[string]json.RawMessage
	if err := json.Unmarshal(top["rounds"], &rounds); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"label", "target_qps", "offered", "completed", "ok", "errors",
		"sheds", "retries", "replayed", "achieved_qps", "duration_nanos",
		"latency", "p50_nanos", "p95_nanos", "p99_nanos",
		"accepted_latency", "accepted_p99_nanos",
	}
	for _, k := range want {
		if _, ok := rounds[0][k]; !ok {
			t.Errorf("round JSON is missing key %q — a rename needs a schema bump", k)
		}
	}
	if len(rounds[0]) != len(want) {
		keys := make([]string, 0, len(rounds[0]))
		for k := range rounds[0] {
			keys = append(keys, k)
		}
		t.Errorf("round JSON has %d keys %v, want the %d documented ones", len(rounds[0]), keys, len(want))
	}
}

// TestClosedScenarioInProcess smoke-tests the closed-loop scenario end to end
// against an in-process server: every request terminates OK and the artifact
// is well-formed.
func TestClosedScenarioInProcess(t *testing.T) {
	_, url := newLoadTarget(t, server.Config{Workers: 2})
	cfg := Config{BaseURL: url, Keys: 128, Clients: 4, Requests: 40, Seed: 7}
	rep, err := RunScenario(ScenarioClosed, cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != bench.LoadgenSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Rounds) != 1 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
	r := rep.Rounds[0]
	if r.OK != r.Offered || r.Errors != 0 {
		t.Fatalf("unloaded closed loop: ok %d errors %d of %d offered", r.OK, r.Errors, r.Offered)
	}
	if r.AcceptedLatency.Count != r.OK {
		t.Fatalf("accepted latency count %d != ok %d", r.AcceptedLatency.Count, r.OK)
	}
	if r.P99Nanos == 0 || r.AcceptedP99Nanos == 0 {
		t.Fatal("latency quantiles missing")
	}
}

// TestRetryStormConverges: a burst of aggressively-retrying clients against a
// tiny service window must drain — jittered backoff spreads the retries out
// so terminal success stays high instead of the storm compounding.
func TestRetryStormConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load test")
	}
	_, url := newLoadTarget(t, server.Config{
		Workers: 1, QueueDepth: 2, ServiceFloor: 2 * time.Millisecond,
	})
	cfg := Config{BaseURL: url, Keys: 64, Clients: 16, Requests: 96,
		DeadlineMs: 2000, Seed: 11, IdemBase: 1 << 41}
	rep, err := RunScenario(ScenarioRetryStorm, cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Rounds[0]
	if r.Sheds == 0 {
		t.Fatal("storm produced no sheds — the window was not small enough to exercise retries")
	}
	if r.OK < r.Offered*9/10 {
		t.Fatalf("storm did not converge: %d/%d ok (%d sheds, %d retries)",
			r.OK, r.Offered, r.Sheds, r.Retries)
	}
}

// TestOverloadShedsWithoutQueueCollapse is the graceful-degradation
// acceptance check: drive the server at 2x its measured saturation QPS and
// require that (a) it sheds explicitly rather than queuing into collapse and
// (b) the requests it does accept keep a p99 within 3x the unloaded p99.
//
// ServiceFloor pins the operating point: every accepted request takes >= 20ms
// of service, so saturation is Workers/floor = 100 QPS and the unloaded p99
// is at least the floor, independent of host speed.
func TestOverloadShedsWithoutQueueCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load test")
	}
	const floor = 20 * time.Millisecond
	_, url := newLoadTarget(t, server.Config{Workers: 2, ServiceFloor: floor})

	base := Config{BaseURL: url, Keys: 128, Seed: 3}
	if err := Seed(base); err != nil {
		t.Fatal(err)
	}

	// Unloaded baseline: one client, back-to-back, no retries.
	un := base
	un.Clients = 1
	un.Requests = 30
	un.MaxAttempts = 1
	unloaded := Closed(un, "unloaded")
	if unloaded.OK != unloaded.Offered {
		t.Fatalf("unloaded round had failures: %+v", unloaded)
	}
	unloadedP99 := unloaded.AcceptedP99Nanos
	if unloadedP99 < uint64(floor) {
		t.Fatalf("unloaded p99 %d below the %v service floor — floor not applied", unloadedP99, floor)
	}

	// Measure the saturation knee with an open-loop QPS ladder.
	kneeCfg := base
	kneeCfg.Clients = 32
	kneeCfg.MaxAttempts = 1
	kneeCfg.DeadlineMs = 400
	kneeCfg.IdemBase = 1 << 41
	knee, _ := FindKnee(kneeCfg, 30, 400*time.Millisecond)
	if knee <= 0 {
		t.Fatalf("knee = %v", knee)
	}

	// Overload at 2x the knee. The deadline is set to (floor + estWait
	// headroom) so the admission controller sheds deadline-unmeetable work at
	// the door; what it accepts completes near the floor.
	over := kneeCfg
	over.IdemBase = 1 << 42
	over.DeadlineMs = int(2 * floor / time.Millisecond)
	overload := Open(over, 2*knee, 600*time.Millisecond, "overload@2x-knee")

	if overload.Sheds == 0 {
		t.Fatalf("2x-knee overload produced no sheds: %+v", overload)
	}
	if overload.OK == 0 {
		t.Fatalf("2x-knee overload accepted nothing: %+v", overload)
	}
	if limit := 3 * unloadedP99; overload.AcceptedP99Nanos > limit {
		t.Fatalf("accepted p99 %v exceeds 3x unloaded p99 %v under overload (queue collapse)",
			time.Duration(overload.AcceptedP99Nanos), time.Duration(unloadedP99))
	}
	t.Logf("knee %.0f qps; overload: offered %d ok %d sheds %d; unloaded p99 %v accepted p99 %v",
		knee, overload.Offered, overload.OK, overload.Sheds,
		time.Duration(unloadedP99), time.Duration(overload.AcceptedP99Nanos))
}
