// Package loadgen drives a falcon-serve endpoint with closed- and open-loop
// load, finds the saturation knee, and exercises overload and retry-storm
// scenarios. Reports carry the falcon/loadgen/v1 schema stamp and the same
// log2 latency histograms the bench harness uses.
package loadgen

import (
	"fmt"
	"sync"
	"time"

	"falcon/internal/bench"
	"falcon/internal/obs"
	"falcon/internal/server"
	"falcon/internal/server/client"
)

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the target server root.
	BaseURL string
	// Table is the served table ops run against.
	Table string
	// Keys is the key-space size; keys [0, Keys) are pre-seeded.
	Keys uint64
	// Clients is the closed-loop concurrency (and the open loop's in-flight
	// cap). 0 means 8.
	Clients int
	// Requests is the closed-loop total request count. 0 means 200.
	Requests int
	// DeadlineMs is the per-request deadline header. 0 means 1000.
	DeadlineMs int
	// MaxAttempts bounds client retries per request. 0 means 5.
	MaxAttempts int
	// Seed drives every random choice (keys, jitter); same seed + same
	// server timing → same op stream.
	Seed uint64
	// WritePct is the percentage of requests that are adds (the rest are
	// gets). Defaults to 50.
	WritePct int
	// IdemBase offsets idempotency keys so scenarios on a shared server do
	// not collide.
	IdemBase uint64
}

func (c Config) withDefaults() Config {
	if c.Table == "" {
		c.Table = "kv"
	}
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 1000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.WritePct <= 0 {
		c.WritePct = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Round is one measured load interval.
type Round struct {
	Label     string  `json:"label"`
	TargetQPS float64 `json:"target_qps,omitempty"`
	// Offered counts logical requests issued; Completed the ones that got a
	// terminal answer (OK or exhausted retries).
	Offered   uint64 `json:"offered"`
	Completed uint64 `json:"completed"`
	OK        uint64 `json:"ok"`
	Errors    uint64 `json:"errors"`
	// Sheds counts 429/503 responses observed (pre-retry); Retries the
	// extra attempts; Replayed the responses served from the idempotency
	// table.
	Sheds    uint64 `json:"sheds"`
	Retries  uint64 `json:"retries"`
	Replayed uint64 `json:"replayed"`
	// AchievedQPS is OK / wall-clock duration.
	AchievedQPS   float64 `json:"achieved_qps"`
	DurationNanos uint64  `json:"duration_nanos"`
	// Latency is the per-request (including retries) completion-time
	// distribution in host nanos, with the usual quantile columns.
	Latency  obs.HistogramDump `json:"latency,omitempty"`
	P50Nanos uint64            `json:"p50_nanos"`
	P95Nanos uint64            `json:"p95_nanos"`
	P99Nanos uint64            `json:"p99_nanos"`
	// AcceptedLatency restricts the distribution to requests that got an OK
	// answer — the population the no-queue-collapse criterion is judged on
	// (shed requests return fast by design and would flatter the numbers).
	AcceptedLatency  obs.HistogramDump `json:"accepted_latency,omitempty"`
	AcceptedP99Nanos uint64            `json:"accepted_p99_nanos"`
}

// Report is a falcon-loadgen artifact.
type Report struct {
	// Schema is always bench.LoadgenSchema (falcon/loadgen/v1).
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	Target   string `json:"target"`
	// KneeQPS is the measured saturation knee (knee/overload scenarios).
	KneeQPS float64 `json:"knee_qps,omitempty"`
	Rounds  []Round `json:"rounds"`
}

// splitmix is the shared seeded PRNG step.
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed pre-populates the key space with puts (idempotent, so reruns against
// a warm server are safe).
func Seed(cfg Config) error {
	cfg = cfg.withDefaults()
	c := &client.Client{BaseURL: cfg.BaseURL, DeadlineMs: 10_000,
		MaxAttempts: 8, Backoff: client.NewBackoff(0, 0, cfg.Seed)}
	const batch = 64
	for lo := uint64(0); lo < cfg.Keys; lo += batch {
		hi := lo + batch
		if hi > cfg.Keys {
			hi = cfg.Keys
		}
		ops := make([]server.Op, 0, hi-lo)
		for k := lo; k < hi; k++ {
			ops = append(ops, server.Op{Op: "put", Table: cfg.Table, Key: k, Val: int64(k)})
		}
		// Seed idempotency keys live in a reserved high range.
		if _, err := c.Do(1<<63|lo, &server.TxnRequest{Ops: ops}); err != nil {
			return fmt.Errorf("seed batch %d: %w", lo, err)
		}
	}
	return nil
}

// genOp builds the n-th request of a seeded stream.
func genOp(cfg Config, rng *uint64) server.TxnRequest {
	key := splitmix(rng) % cfg.Keys
	if int(splitmix(rng)%100) < cfg.WritePct {
		return server.TxnRequest{Ops: []server.Op{{Op: "add", Table: cfg.Table, Key: key, Val: 1}}}
	}
	return server.TxnRequest{Ops: []server.Op{{Op: "get", Table: cfg.Table, Key: key}}}
}

// worker state for one closed-loop client.
type workerStats struct {
	ok, errs, replayed uint64
	lat, latOK         obs.Histogram
}

// observe records one terminal outcome into a worker's stats.
func (s *workerStats) observe(elapsed time.Duration, resp *server.TxnResponse, err error) {
	d := uint64(elapsed)
	s.lat.Observe(d)
	switch {
	case err != nil:
		s.errs++
	default:
		if resp.Replayed {
			s.replayed++
		}
		s.ok++
		s.latOK.Observe(d)
	}
}

// Closed runs a closed loop: Clients goroutines, each issuing its share of
// Requests back-to-back (a new request the moment the last completes).
func Closed(cfg Config, label string) Round {
	cfg = cfg.withDefaults()
	perClient := cfg.Requests / cfg.Clients
	if perClient == 0 {
		perClient = 1
	}
	stats := make([]workerStats, cfg.Clients)
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		clients[i] = &client.Client{
			BaseURL: cfg.BaseURL, DeadlineMs: cfg.DeadlineMs, MaxAttempts: cfg.MaxAttempts,
			Backoff: client.NewBackoff(0, 0, cfg.Seed+uint64(i)*0x10001),
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
			for n := 0; n < perClient; n++ {
				req := genOp(cfg, &rng)
				idem := cfg.IdemBase + uint64(i)*1_000_000 + uint64(n)
				t0 := time.Now()
				resp, err := clients[i].Do(idem, &req)
				stats[i].observe(time.Since(t0), resp, err)
			}
		}(i)
	}
	wg.Wait()
	return assemble(label, 0, uint64(perClient*cfg.Clients), stats, clients, time.Since(start))
}

// Open runs an open loop at targetQPS for dur: arrivals follow a seeded
// schedule regardless of completions (up to Clients in flight; beyond that
// arrivals count as offered-and-shed, the open-loop overload signature).
func Open(cfg Config, targetQPS float64, dur time.Duration, label string) Round {
	cfg = cfg.withDefaults()
	if targetQPS <= 0 {
		targetQPS = 100
	}
	interval := time.Duration(float64(time.Second) / targetQPS)
	sem := make(chan int, cfg.Clients) // tokens carry the client slot index
	for i := 0; i < cfg.Clients; i++ {
		sem <- i
	}
	stats := make([]workerStats, cfg.Clients)
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		clients[i] = &client.Client{
			BaseURL: cfg.BaseURL, DeadlineMs: cfg.DeadlineMs, MaxAttempts: cfg.MaxAttempts,
			Backoff: client.NewBackoff(0, 0, cfg.Seed+uint64(i)*0x10001),
		}
	}
	var wg sync.WaitGroup
	var offered, dropped uint64
	rng := cfg.Seed
	start := time.Now()
	next := start
	for n := 0; ; n++ {
		now := time.Now()
		if now.Sub(start) >= dur {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		offered++
		req := genOp(cfg, &rng)
		idem := cfg.IdemBase + uint64(n)
		select {
		case slot := <-sem:
			wg.Add(1)
			go func(slot int, req server.TxnRequest, idem uint64) {
				defer wg.Done()
				defer func() { sem <- slot }()
				t0 := time.Now()
				resp, err := clients[slot].Do(idem, &req)
				stats[slot].observe(time.Since(t0), resp, err)
			}(slot, req, idem)
		default:
			// All clients busy: the arrival is lost offered load (the
			// closed-loop cap is what keeps an overloaded open loop from
			// unbounded goroutine growth).
			dropped++
		}
	}
	wg.Wait()
	r := assemble(label, targetQPS, offered, stats, clients, time.Since(start))
	r.Errors += dropped
	return r
}

func assemble(label string, target float64, offered uint64, stats []workerStats, clients []*client.Client, elapsed time.Duration) Round {
	r := Round{Label: label, TargetQPS: target, Offered: offered, DurationNanos: uint64(elapsed)}
	var merged, mergedOK obs.Histogram
	for i := range stats {
		r.OK += stats[i].ok
		r.Errors += stats[i].errs
		r.Replayed += stats[i].replayed
		merged.Merge(&stats[i].lat)
		mergedOK.Merge(&stats[i].latOK)
	}
	r.AcceptedLatency = mergedOK.Dump()
	r.AcceptedP99Nanos = mergedOK.Quantile(0.99)
	for _, c := range clients {
		r.Sheds += c.Sheds
		r.Retries += c.Retries
	}
	r.Completed = r.OK + r.Errors
	if secs := elapsed.Seconds(); secs > 0 {
		r.AchievedQPS = float64(r.OK) / secs
	}
	r.Latency = merged.Dump()
	r.P50Nanos = merged.Quantile(0.50)
	r.P95Nanos = merged.Quantile(0.95)
	r.P99Nanos = merged.Quantile(0.99)
	return r
}

// FindKnee walks a QPS ladder (doubling from startQPS) until the achieved
// rate falls below 95% of the target; the knee is the last rung's achieved
// QPS. Returns the knee and the rungs measured.
func FindKnee(cfg Config, startQPS float64, rung time.Duration) (float64, []Round) {
	cfg = cfg.withDefaults()
	if startQPS <= 0 {
		startQPS = 50
	}
	var rounds []Round
	knee := startQPS
	idem := cfg.IdemBase
	for target, i := startQPS, 0; i < 12; target, i = target*2, i+1 {
		c := cfg
		c.IdemBase = idem
		r := Open(c, target, rung, fmt.Sprintf("knee@%.0fqps", target))
		rounds = append(rounds, r)
		idem += r.Offered + 1
		knee = r.AchievedQPS
		if r.AchievedQPS < 0.95*target {
			break
		}
	}
	return knee, rounds
}

// Scenario names accepted by Run.
const (
	ScenarioClosed     = "closed"
	ScenarioOpen       = "open"
	ScenarioKnee       = "knee"
	ScenarioOverload   = "overload"
	ScenarioRetryStorm = "retrystorm"
)

// RunScenario executes one named scenario and assembles the report.
// Open-loop parameters: startQPS seeds the knee ladder, dur is the
// per-round duration.
func RunScenario(scenario string, cfg Config, startQPS float64, dur time.Duration) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Schema: bench.LoadgenSchema, Scenario: scenario, Target: cfg.BaseURL}
	if err := Seed(cfg); err != nil {
		return nil, err
	}
	switch scenario {
	case ScenarioClosed:
		rep.Rounds = []Round{Closed(cfg, "closed")}
	case ScenarioOpen:
		rep.Rounds = []Round{Open(cfg, startQPS, dur, "open")}
	case ScenarioKnee:
		knee, rounds := FindKnee(cfg, startQPS, dur)
		rep.KneeQPS = knee
		rep.Rounds = rounds
	case ScenarioOverload:
		knee, rounds := FindKnee(cfg, startQPS, dur)
		rep.KneeQPS = knee
		over := cfg
		over.IdemBase = cfg.IdemBase + 1<<40
		rep.Rounds = append(rounds, Open(over, 2*knee, dur, "overload@2x-knee"))
	case ScenarioRetryStorm:
		// A burst of clients with aggressive retries against a small window:
		// convergence means the storm drains (high terminal success) instead
		// of compounding.
		storm := cfg
		storm.MaxAttempts = 8
		rep.Rounds = []Round{Closed(storm, "retrystorm")}
	default:
		return nil, fmt.Errorf("loadgen: unknown scenario %q", scenario)
	}
	return rep, nil
}
