package version

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"falcon/internal/sim"
)

func newStore() *Store {
	return NewStore(16, 2, sim.DefaultCostModel())
}

func TestPublishAndReadVisible(t *testing.T) {
	s := newStore()
	clk := sim.NewClock()
	// Tuple history: payload "v1" written at ts 10, overwritten at ts 20 by
	// "v2", overwritten at ts 30. Chain holds [v2: 20..30] -> [v1: 10..20].
	s.Publish(clk, 0, 5, 10, 20, []byte("v1"))
	s.Publish(clk, 0, 5, 20, 30, []byte("v2"))

	if v := s.ReadVisible(clk, 5, 15); v == nil || !bytes.Equal(v.Data, []byte("v1")) {
		t.Fatalf("snapshot 15 read %v, want v1", v)
	}
	if v := s.ReadVisible(clk, 5, 25); v == nil || !bytes.Equal(v.Data, []byte("v2")) {
		t.Fatalf("snapshot 25 read %v, want v2", v)
	}
	// Snapshot 35 is newer than every version: the NVM tuple applies.
	if v := s.ReadVisible(clk, 5, 35); v != nil {
		t.Fatalf("snapshot 35 read old version %v, want nil (NVM tuple)", v)
	}
	// Snapshot 5 predates tuple creation entirely.
	if v := s.ReadVisible(clk, 5, 5); v != nil {
		t.Fatalf("snapshot 5 read %v, want nil", v)
	}
}

func TestGCReclaimsPrefixOnly(t *testing.T) {
	s := newStore()
	s.Threshold = 0
	clk := sim.NewClock()
	s.Publish(clk, 0, 3, 10, 20, []byte("a"))
	s.Publish(clk, 0, 3, 20, 30, []byte("b"))
	s.Publish(clk, 0, 3, 30, 40, []byte("c"))
	if n := s.ChainLen(3); n != 3 {
		t.Fatalf("chain len %d, want 3", n)
	}
	// A transaction at TID 35 is still running: versions with EndTS < 35
	// (a: 20, b: 30) are reclaimable, c (EndTS 40) is not.
	got := s.MaybeGC(clk, 0, 35)
	if got != 2 {
		t.Fatalf("GC reclaimed %d, want 2", got)
	}
	if n := s.ChainLen(3); n != 1 {
		t.Fatalf("chain len after GC %d, want 1", n)
	}
	if v := s.ReadVisible(clk, 3, 35); v == nil || !bytes.Equal(v.Data, []byte("c")) {
		t.Fatal("survivor version lost")
	}
}

func TestGCRespectsThreshold(t *testing.T) {
	s := newStore()
	s.Threshold = 10
	clk := sim.NewClock()
	for i := uint64(0); i < 5; i++ {
		s.Publish(clk, 0, 1, i*10, i*10+10, []byte("x"))
	}
	if n := s.MaybeGC(clk, 0, math.MaxUint64); n != 0 {
		t.Fatalf("GC ran below threshold (reclaimed %d)", n)
	}
	if n := s.ForceGC(clk, 0, math.MaxUint64); n != 5 {
		t.Fatalf("ForceGC reclaimed %d, want 5", n)
	}
}

func TestResetDropsEverything(t *testing.T) {
	s := newStore()
	clk := sim.NewClock()
	s.Publish(clk, 1, 2, 1, 2, []byte("x"))
	s.Reset()
	if s.ChainLen(2) != 0 || s.QueueLen(1) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestConcurrentPublishAndRead(t *testing.T) {
	s := NewStore(4, 4, sim.DefaultCostModel())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := sim.NewClock()
			for i := uint64(0); i < 200; i++ {
				ts := i*4 + uint64(w)
				s.Publish(clk, w, uint64(w), ts, ts+1, []byte{byte(w)})
				s.ReadVisible(clk, uint64((w+1)%4), ts)
				s.MaybeGC(clk, w, ts/2)
			}
		}(w)
	}
	wg.Wait()
}

func TestVersionChargesVirtualTime(t *testing.T) {
	s := newStore()
	clk := sim.NewClock()
	s.Publish(clk, 0, 0, 1, 2, make([]byte, 1024))
	if clk.Nanos() == 0 {
		t.Fatal("Publish charged no virtual time")
	}
}
