// Package version implements the in-DRAM version heap used by Falcon's MVCC
// modes (paper §5.2.3, Figure 6). Old tuple versions are volatile by design:
// they only serve concurrent readers and are rebuilt as empty after a crash,
// which is what makes Falcon's recovery independent of MVCC state.
//
// Each tuple slot has a version-chain head; chains are ordered newest-first.
// A version carries the interval [BeginTS, EndTS) during which it was the
// visible version. Per-thread version queues (ordered by EndTS, because a
// thread's TIDs are monotone) make garbage collection a local, amortized
// operation: once EndTS is below every running transaction's TID, nobody can
// reach the version and it is recycled.
package version

import (
	"sync/atomic"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// Version is one old tuple version in DRAM.
type Version struct {
	// BeginTS is the writer timestamp the tuple had before it was
	// overwritten; the version is visible to snapshots with
	// BeginTS <= snapshot < EndTS.
	BeginTS uint64
	// EndTS is the TID of the transaction that superseded this version.
	EndTS uint64
	// prev links to the next-older version; it is atomic because GC
	// truncates chains concurrently with readers.
	prev atomic.Pointer[Version]
	// Data is the payload as of [BeginTS, EndTS); immutable after Publish.
	// It is nil for slot-reference versions.
	Data []byte
	// SlotRef, when non-zero, identifies the NVM heap slot (slot+1) that
	// still holds this version's payload — the out-of-place representation,
	// where superseded versions stay in the tuple heap until recycled.
	SlotRef uint64
}

// Prev returns the next-older version, or nil.
func (v *Version) Prev() *Version { return v.prev.Load() }

// Store manages version chains for one tuple heap.
type Store struct {
	cost  sim.CostModel
	heads []atomic.Pointer[Version]

	queues []queue // one per worker thread
	// Threshold is the queue length above which a worker attempts GC.
	Threshold int
}

type queue struct {
	entries []queued
	_       [4]uint64 // avoid false sharing between worker queues
}

type queued struct {
	slot uint64
	v    *Version
}

// NewStore creates chains for nslots tuples and nthreads worker queues.
func NewStore(nslots uint64, nthreads int, cost sim.CostModel) *Store {
	return &Store{
		cost:      cost,
		heads:     make([]atomic.Pointer[Version], nslots),
		queues:    make([]queue, nthreads),
		Threshold: 64,
	}
}

// chargeCopy accounts the DRAM traffic of touching n payload bytes.
func (s *Store) chargeCopy(clk *sim.Clock, n int) {
	lines := (n + pmem.LineSize - 1) / pmem.LineSize
	if lines < 1 {
		lines = 1
	}
	clk.Advance(s.cost.DRAMFirstLine + uint64(lines-1)*s.cost.DRAMNextLine)
}

// Publish records that thread's transaction tid overwrote slot, whose prior
// payload was data with writer timestamp beginTS. The old payload is copied
// into DRAM, linked at the head of the chain, and enqueued for GC.
func (s *Store) Publish(clk *sim.Clock, thread int, slot uint64, beginTS, tid uint64, data []byte) {
	v := &Version{BeginTS: beginTS, EndTS: tid, Data: append([]byte(nil), data...)}
	s.chargeCopy(clk, len(data))
	head := &s.heads[slot]
	for {
		old := head.Load()
		v.prev.Store(old)
		if head.CompareAndSwap(old, v) {
			break
		}
	}
	q := &s.queues[thread]
	q.entries = append(q.entries, queued{slot: slot, v: v})
}

// PublishRef records that thread's transaction tid superseded the tuple
// version living in heap slot oldSlot (writer timestamp beginTS) with a new
// version at newSlot. The old version's payload stays in NVM; the chain
// entry only references it. The chain migrates from oldSlot's head to
// newSlot's head, since readers discover chains through the index, which now
// points at newSlot.
func (s *Store) PublishRef(clk *sim.Clock, thread int, newSlot uint64, beginTS, tid, oldSlot uint64) {
	v := &Version{BeginTS: beginTS, EndTS: tid, SlotRef: oldSlot + 1}
	clk.Advance(s.cost.DRAMFirstLine)
	v.prev.Store(s.heads[oldSlot].Load())
	s.heads[oldSlot].Store(nil)
	s.heads[newSlot].Store(v)
	q := &s.queues[thread]
	q.entries = append(q.entries, queued{slot: newSlot, v: v})
}

// ReadVisible walks slot's chain for the newest version visible to a
// snapshot at ts, i.e. the newest version with BeginTS <= ts. It returns nil
// when no old version qualifies — the caller must then read the in-NVM
// tuple (which is correct exactly when the tuple's current writer timestamp
// is <= ts; the caller checks that, since the tuple is NVM-side state).
func (s *Store) ReadVisible(clk *sim.Clock, slot uint64, ts uint64) *Version {
	v := s.heads[slot].Load()
	for v != nil {
		clk.Advance(s.cost.DRAMFirstLine)
		if v.BeginTS <= ts {
			if ts < v.EndTS {
				s.chargeCopy(clk, len(v.Data))
				return v
			}
			// ts >= EndTS: the overwriting transaction is within the
			// snapshot, so a newer version (or the NVM tuple) applies.
			return nil
		}
		v = v.Prev()
	}
	return nil
}

// ChainLen reports the current chain length for slot (diagnostics, tests).
func (s *Store) ChainLen(slot uint64) int {
	n := 0
	for v := s.heads[slot].Load(); v != nil; v = v.Prev() {
		n++
	}
	return n
}

// QueueLen returns the thread's pending-GC queue length.
func (s *Store) QueueLen(thread int) int { return len(s.queues[thread].entries) }

// MaybeGC runs garbage collection for thread when its queue exceeds
// Threshold. minActive is the smallest TID of any running transaction
// (math.MaxUint64 when none). It returns the number of versions recycled.
func (s *Store) MaybeGC(clk *sim.Clock, thread int, minActive uint64) int {
	q := &s.queues[thread]
	if len(q.entries) <= s.Threshold {
		return 0
	}
	return s.gc(clk, q, minActive)
}

// ForceGC recycles everything reclaimable in the thread's queue regardless
// of the threshold.
func (s *Store) ForceGC(clk *sim.Clock, thread int, minActive uint64) int {
	return s.gc(clk, &s.queues[thread], minActive)
}

func (s *Store) gc(clk *sim.Clock, q *queue, minActive uint64) int {
	// Entries are EndTS-ordered (a thread's TIDs are monotone), so a prefix
	// is reclaimable.
	i := 0
	for i < len(q.entries) && q.entries[i].v.EndTS < minActive {
		i++
	}
	if i == 0 {
		return 0
	}
	for _, e := range q.entries[:i] {
		s.unlink(clk, e.slot, e.v)
	}
	rest := copy(q.entries, q.entries[i:])
	q.entries = q.entries[:rest]
	return i
}

// unlink removes v from slot's chain. Versions older than a reclaimable
// version are also unreachable (the chain is newest-first and every newer
// version pins only itself), so truncating at v is safe.
func (s *Store) unlink(clk *sim.Clock, slot uint64, v *Version) {
	clk.Advance(s.cost.DRAMFirstLine)
	head := &s.heads[slot]
	if head.CompareAndSwap(v, nil) {
		return
	}
	for cur := head.Load(); cur != nil; cur = cur.Prev() {
		if cur.Prev() == v {
			cur.prev.Store(nil) // truncate: v and everything older is dead
			return
		}
	}
}

// Reset drops all chains and queues (post-crash: DRAM contents are gone).
func (s *Store) Reset() {
	for i := range s.heads {
		s.heads[i].Store(nil)
	}
	for i := range s.queues {
		s.queues[i].entries = nil
	}
}
