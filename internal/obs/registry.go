package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"falcon/internal/pmem"
)

// WALStats aggregates the per-thread log-window gauges. The fields are plain
// uint64 because each wal.Window is single-writer (its owning worker); the
// engine sums all windows into one WALStats at snapshot time.
type WALStats struct {
	// Begins counts claimed transaction slots; Wraps counts claims that
	// reused a previously occupied slot (the window cycled).
	Begins uint64
	Wraps  uint64
	// Commits / Aborts count published and discarded records.
	Commits uint64
	Aborts  uint64
	// BytesLogged is the total record payload appended (headers excluded);
	// MaxRecordBytes is the largest single record. Together with the slot
	// capacity they give window occupancy.
	BytesLogged    uint64
	MaxRecordBytes uint64
	// Overflows counts records that spilled past their slot into the
	// overflow region; OverflowBytes is the spilled volume. FullRejects
	// counts appends refused because even the overflow region was exhausted
	// (the transaction then aborts with ErrTxnTooLarge).
	Overflows     uint64
	OverflowBytes uint64
	FullRejects   uint64
	// SlotBytes is the configured per-slot capacity (set by the collector;
	// gauge denominator, not a counter).
	SlotBytes uint64
}

// Add sums o into s, field-wise (gauges take the max / last non-zero).
func (s *WALStats) Add(o WALStats) {
	s.Begins += o.Begins
	s.Wraps += o.Wraps
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.BytesLogged += o.BytesLogged
	if o.MaxRecordBytes > s.MaxRecordBytes {
		s.MaxRecordBytes = o.MaxRecordBytes
	}
	s.Overflows += o.Overflows
	s.OverflowBytes += o.OverflowBytes
	s.FullRejects += o.FullRejects
	if o.SlotBytes != 0 {
		s.SlotBytes = o.SlotBytes
	}
}

// Sub returns the counter-wise difference s - o (gauges pass through).
func (s WALStats) Sub(o WALStats) WALStats {
	return WALStats{
		Begins:         s.Begins - o.Begins,
		Wraps:          s.Wraps - o.Wraps,
		Commits:        s.Commits - o.Commits,
		Aborts:         s.Aborts - o.Aborts,
		BytesLogged:    s.BytesLogged - o.BytesLogged,
		MaxRecordBytes: s.MaxRecordBytes,
		Overflows:      s.Overflows - o.Overflows,
		OverflowBytes:  s.OverflowBytes - o.OverflowBytes,
		FullRejects:    s.FullRejects - o.FullRejects,
		SlotBytes:      s.SlotBytes,
	}
}

// MeanRecordBytes returns the average committed record size.
func (s WALStats) MeanRecordBytes() uint64 {
	if s.Commits == 0 {
		return 0
	}
	return s.BytesLogged / s.Commits
}

// EpochStats summarizes the group-commit durability epochs: how many epochs
// sealed, how many records they coalesced, and the distribution of epoch
// sizes and publish→durable lag. The counters are plain uint64 (the epoch
// board guards them with its own lock and snapshots are quiescent); the
// histogram dumps are point-in-time exports and pass through Sub unchanged —
// callers that diff snapshots reset the board's stats at the measurement
// start instead (Engine.ResetCounters does).
type EpochStats struct {
	// Sealed counts sealed (drained) epochs; Pending is the number of epochs
	// still open at snapshot time (gauge).
	Sealed  uint64
	Pending uint64
	// Records counts transactions published into epochs; TrainSpans counts
	// the contiguous spans their seals coalesced into flush trains.
	Records    uint64
	TrainSpans uint64
	// ForcedSeals counts slot-reclaim waits that had to seal an epoch early;
	// ForcedWaitNanos is the virtual time those waits stalled (also visible
	// as PhaseGroupWait).
	ForcedSeals     uint64
	ForcedWaitNanos uint64
	// EpochSize is the distribution of records per sealed epoch; DurableLag
	// the distribution of publish→seal virtual nanoseconds per record.
	EpochSize  HistogramDump `json:",omitempty"`
	DurableLag HistogramDump `json:",omitempty"`
}

// Add sums o's counters into s (histograms merge by bucket list append is
// not meaningful; the engine contributes one board, so Add takes o's dumps
// when s has none).
func (s *EpochStats) Add(o EpochStats) {
	s.Sealed += o.Sealed
	s.Pending += o.Pending
	s.Records += o.Records
	s.TrainSpans += o.TrainSpans
	s.ForcedSeals += o.ForcedSeals
	s.ForcedWaitNanos += o.ForcedWaitNanos
	if s.EpochSize.Count == 0 {
		s.EpochSize = o.EpochSize
	}
	if s.DurableLag.Count == 0 {
		s.DurableLag = o.DurableLag
	}
}

// Sub returns the counter-wise difference s - o; the histogram dumps pass
// through from s (see the type comment).
func (s EpochStats) Sub(o EpochStats) EpochStats {
	return EpochStats{
		Sealed:          s.Sealed - o.Sealed,
		Pending:         s.Pending,
		Records:         s.Records - o.Records,
		TrainSpans:      s.TrainSpans - o.TrainSpans,
		ForcedSeals:     s.ForcedSeals - o.ForcedSeals,
		ForcedWaitNanos: s.ForcedWaitNanos - o.ForcedWaitNanos,
		EpochSize:       s.EpochSize,
		DurableLag:      s.DurableLag,
	}
}

// MeanEpochSize returns the average records per sealed epoch.
func (s EpochStats) MeanEpochSize() float64 {
	if s.Sealed == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Sealed)
}

// HotSetStats aggregates the per-worker hot-tuple LRU counters (selective
// data flush, §4.4). Hits are flushes elided; misses become adds, which may
// evict.
type HotSetStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Add sums o into s.
func (s *HotSetStats) Add(o HotSetStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
}

// Sub returns s - o.
func (s HotSetStats) Sub(o HotSetStats) HotSetStats {
	return HotSetStats{Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses, Evictions: s.Evictions - o.Evictions}
}

// TableStats counts per-table heap and index activity. Like the phase sets,
// the engine keeps one accumulator per worker per table (single-writer) and
// sums them at snapshot time.
type TableStats struct {
	// Reads counts tuple read attempts (point reads and scan visits).
	Reads uint64
	// Writes counts write-set entries applied at commit (inserts, updates,
	// deletes).
	Writes uint64
	// Versions counts versions installed in the version store (out-of-place
	// materializations and in-place pre-images).
	Versions uint64
	// IndexProbes counts index lookups (point gets and scan descents).
	IndexProbes uint64
}

// Add sums o into s.
func (s *TableStats) Add(o TableStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Versions += o.Versions
	s.IndexProbes += o.IndexProbes
}

// Sub returns s - o.
func (s TableStats) Sub(o TableStats) TableStats {
	return TableStats{
		Reads:       s.Reads - o.Reads,
		Writes:      s.Writes - o.Writes,
		Versions:    s.Versions - o.Versions,
		IndexProbes: s.IndexProbes - o.IndexProbes,
	}
}

// Snapshot is one observation of everything the registry knows: engine
// counters, phase accounting, abort taxonomy, WAL and hot-set gauges, and
// the pmem hardware counters. Snapshots are plain values; Sub diffs two of
// them, which is how warmup activity is excluded from measurements.
type Snapshot struct {
	Commits     uint64
	Aborts      uint64
	PhaseNanos  [NumPhases]uint64
	AbortCounts [NumAbortReasons]uint64
	WAL         WALStats
	Hot         HotSetStats
	Mem         pmem.Snapshot
	// Epochs carries the group-commit durability-epoch stats (zero when
	// group commit is off).
	Epochs EpochStats
	// Tables maps table name to its per-table counters (nil when the source
	// engine registers no tables).
	Tables map[string]TableStats `json:",omitempty"`
	// Contend carries the contention & flush-amplification observatory
	// report; nil unless the observatory was armed for the window.
	Contend *ContentionStats `json:",omitempty"`
	// Server carries the serving layer's per-endpoint counters and admission
	// gauges; nil unless a server registered a collector on this registry.
	Server *ServerStats `json:",omitempty"`
}

// SnapshotSchema versions the JSON rendering of a Snapshot. Consumers
// should reject schemas they do not know; the format only grows, so a
// version bump signals a field rename or semantic change, not an addition.
const SnapshotSchema = "falcon/obs-snapshot/v1"

// Sub returns the element-wise difference s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	out := Snapshot{
		Commits: s.Commits - o.Commits,
		Aborts:  s.Aborts - o.Aborts,
		WAL:     s.WAL.Sub(o.WAL),
		Hot:     s.Hot.Sub(o.Hot),
		Mem:     s.Mem.Sub(o.Mem),
		Epochs:  s.Epochs.Sub(o.Epochs),
	}
	for i := range s.PhaseNanos {
		out.PhaseNanos[i] = s.PhaseNanos[i] - o.PhaseNanos[i]
	}
	for i := range s.AbortCounts {
		out.AbortCounts[i] = s.AbortCounts[i] - o.AbortCounts[i]
	}
	out.Contend = s.Contend.Sub(o.Contend)
	out.Server = s.Server.Sub(o.Server)
	if s.Tables != nil {
		out.Tables = make(map[string]TableStats, len(s.Tables))
		for name, ts := range s.Tables {
			out.Tables[name] = ts.Sub(o.Tables[name])
		}
	}
	return out
}

// TotalPhaseNanos sums the phase accounting — the transactional virtual time
// across all workers.
func (s Snapshot) TotalPhaseNanos() uint64 {
	var sum uint64
	for _, n := range s.PhaseNanos {
		sum += n
	}
	return sum
}

// Text renders the snapshot as an aligned human-readable block.
func (s Snapshot) Text() string {
	var b strings.Builder
	total := s.TotalPhaseNanos()
	fmt.Fprintf(&b, "txns      commits %d  aborts %d\n", s.Commits, s.Aborts)
	if s.Aborts > 0 {
		b.WriteString("aborts   ")
		for i, n := range s.AbortCounts {
			if n > 0 {
				fmt.Fprintf(&b, " %s %d", AbortReasonNames[i], n)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "phases    total %d virtual ns\n", total)
	for i, n := range s.PhaseNanos {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n) / float64(total)
		}
		fmt.Fprintf(&b, "  %-14s %14d ns  %5.1f%%\n", PhaseNames[i], n, pct)
	}
	if s.WAL.Begins > 0 {
		fmt.Fprintf(&b, "wal       begins %d  wraps %d  commits %d  aborts %d\n",
			s.WAL.Begins, s.WAL.Wraps, s.WAL.Commits, s.WAL.Aborts)
		fmt.Fprintf(&b, "          mean record %d B (slot %d B)  max %d B  overflows %d (%d B)  full-rejects %d\n",
			s.WAL.MeanRecordBytes(), s.WAL.SlotBytes, s.WAL.MaxRecordBytes,
			s.WAL.Overflows, s.WAL.OverflowBytes, s.WAL.FullRejects)
	}
	if s.Epochs.Records > 0 || s.Epochs.Sealed > 0 {
		fmt.Fprintf(&b, "epochs    sealed %d  pending %d  records %d  mean size %.1f  train spans %d\n",
			s.Epochs.Sealed, s.Epochs.Pending, s.Epochs.Records,
			s.Epochs.MeanEpochSize(), s.Epochs.TrainSpans)
		fmt.Fprintf(&b, "          forced seals %d (%d ns group-wait)  durable lag max %d ns\n",
			s.Epochs.ForcedSeals, s.Epochs.ForcedWaitNanos, s.Epochs.DurableLag.Max)
	}
	if s.Hot.Hits+s.Hot.Misses > 0 {
		fmt.Fprintf(&b, "hot-set   hits %d  misses %d  evictions %d\n",
			s.Hot.Hits, s.Hot.Misses, s.Hot.Evictions)
	}
	if len(s.Tables) > 0 {
		names := make([]string, 0, len(s.Tables))
		for name := range s.Tables {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("tables    reads / writes / versions / index-probes\n")
		for _, name := range names {
			t := s.Tables[name]
			fmt.Fprintf(&b, "  %-14s %10d %10d %10d %10d\n",
				name, t.Reads, t.Writes, t.Versions, t.IndexProbes)
		}
	}
	fmt.Fprintf(&b, "pmem      media reads %d  writes %d (full %d, partial %d)  write-amp %.2f\n",
		s.Mem.MediaReads, s.Mem.MediaWrites, s.Mem.FullBlockWrites,
		s.Mem.PartialBlockWrites, s.Mem.WriteAmplification())
	fmt.Fprintf(&b, "          cache hits %d  misses %d  dirty-evict %d  clwb-wb %d  xpbuf merges %d\n",
		s.Mem.CacheHits, s.Mem.CacheMisses, s.Mem.DirtyEvictions,
		s.Mem.ClwbWritebacks, s.Mem.XPBufferMerges)
	if s.Server != nil {
		b.WriteString(s.Server.Text())
	}
	if s.Contend != nil {
		b.WriteString(s.Contend.Text())
	}
	return b.String()
}

// JSON renders the snapshot with named phases and abort reasons.
func (s Snapshot) JSON() ([]byte, error) {
	phases := make(map[string]uint64, NumPhases)
	for i, n := range s.PhaseNanos {
		phases[PhaseNames[i]] = n
	}
	reasons := make(map[string]uint64, NumAbortReasons)
	for i, n := range s.AbortCounts {
		reasons[AbortReasonNames[i]] = n
	}
	m := map[string]any{
		"schema":       SnapshotSchema,
		"commits":      s.Commits,
		"aborts":       s.Aborts,
		"phase_nanos":  phases,
		"abort_counts": reasons,
		"wal":          s.WAL,
		"hot_set":      s.Hot,
		"pmem":         s.Mem,
	}
	if s.Epochs.Records > 0 || s.Epochs.Sealed > 0 {
		m["epochs"] = s.Epochs
	}
	if len(s.Tables) > 0 {
		m["tables"] = s.Tables
	}
	if s.Contend != nil {
		m["contend"] = s.Contend
	}
	if s.Server != nil {
		m["server"] = s.Server
	}
	return json.MarshalIndent(m, "", "  ")
}

// Registry is the unified stats registry: named collectors contribute their
// slice of a Snapshot, and Snapshot() assembles them all at once. The engine
// registers its phase sets, abort counts, WAL windows, hot sets, and the
// pmem device; tools may register their own sources (falcon-micro registers
// a bare phase set over its store loop).
type Registry struct {
	mu         sync.Mutex
	collectors []namedCollector
}

type namedCollector struct {
	name string
	fn   func(*Snapshot)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a named collector. Collectors run in registration order, so
// later collectors may derive from earlier contributions.
func (r *Registry) Register(name string, fn func(*Snapshot)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, namedCollector{name, fn})
}

// Sources returns the registered collector names, sorted.
func (r *Registry) Sources() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.collectors))
	for i, c := range r.collectors {
		out[i] = c.name
	}
	sort.Strings(out)
	return out
}

// Snapshot runs every collector and returns the assembled snapshot. The
// single-owner sources (phase sets, WAL windows, hot sets) are only
// coherent when the workers are quiescent — the same contract as reading
// sim.Clock values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, c := range r.collectors {
		c.fn(&s)
	}
	return s
}
