package obs

import (
	"math/bits"
	"sort"
)

// histBuckets covers bits.Len64 of any uint64: bucket 0 holds the value 0,
// bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1].
const histBuckets = 65

// Histogram is a fixed-size log2-bucketed histogram of virtual-time samples.
// It replaces unbounded per-transaction sample slices: memory is constant
// (~0.5 KiB) regardless of sample count, and quantiles are recovered by
// within-bucket linear interpolation, clamped to the observed min/max so a
// single-sample histogram reports that sample exactly.
//
// Like PhaseSet it is single-owner while being written; Merge and the
// quantile queries are for after the workers have stopped.
type Histogram struct {
	counts   [histBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.counts[bits.Len64(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min and Max return the exact observed extremes (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the exact mean sample (0 when empty).
func (h *Histogram) Mean() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Merge adds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Quantile returns the q-quantile (q in [0,1]) using the same nearest-rank
// convention as sorting the samples and taking index floor(count*q), with
// linear interpolation inside the chosen bucket. Results are clamped to the
// observed [min, max], so the error is bounded by one bucket width.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	target := uint64(float64(h.count) * q)
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if target < cum+c {
			lo, hi := bucketBounds(i)
			// Interpolate at the rank's position within this bucket.
			v := lo + uint64(float64(hi-lo)*float64(target-cum)/float64(c))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// HistBucket is one non-empty histogram bucket in an export: the inclusive
// value range [Lo, Hi] and the number of samples that fell in it.
type HistBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramDump is the exportable form of a Histogram: summary fields plus
// the non-empty buckets, suitable for JSON serialization and offline
// latency-distribution analysis.
type HistogramDump struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Dump exports the histogram's summary and non-empty buckets.
func (h *Histogram) Dump() HistogramDump {
	d := HistogramDump{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		d.Buckets = append(d.Buckets, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return d
}

// Mean returns the mean sample recorded in the dump (0 when empty).
func (d HistogramDump) Mean() uint64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / d.Count
}

// Merge combines two dumps bucket-wise (buckets share the fixed log2 bounds,
// so same-Lo buckets add). Either side may be empty.
func (d HistogramDump) Merge(o HistogramDump) HistogramDump {
	if o.Count == 0 {
		return d
	}
	if d.Count == 0 {
		return o
	}
	out := HistogramDump{
		Count: d.Count + o.Count,
		Sum:   d.Sum + o.Sum,
		Min:   d.Min,
		Max:   d.Max,
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	byLo := make(map[uint64]HistBucket, len(d.Buckets)+len(o.Buckets))
	for _, b := range d.Buckets {
		byLo[b.Lo] = b
	}
	for _, b := range o.Buckets {
		if prev, ok := byLo[b.Lo]; ok {
			prev.Count += b.Count
			byLo[b.Lo] = prev
		} else {
			byLo[b.Lo] = b
		}
	}
	for _, b := range byLo {
		out.Buckets = append(out.Buckets, b)
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Lo < out.Buckets[j].Lo })
	return out
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<i - 1
}
