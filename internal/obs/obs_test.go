package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"falcon/internal/sim"
)

func TestPhaseTimerPartitionsClock(t *testing.T) {
	var ps PhaseSet
	clk := sim.NewClock()
	var pt PhaseTimer

	pt.Start(&ps, clk)
	clk.Advance(100) // exec
	prev := pt.To(PhaseCC)
	clk.Advance(30) // cc
	pt.To(prev)
	clk.Advance(20) // exec again
	pt.To(PhaseLogAppend)
	clk.Advance(50)
	pt.To(PhaseFlush)
	clk.Advance(7)
	pt.Finish()

	want := map[Phase]uint64{PhaseExec: 120, PhaseCC: 30, PhaseLogAppend: 50, PhaseFlush: 7}
	var sum uint64
	for p := Phase(0); int(p) < NumPhases; p++ {
		if got := ps.Nanos(p); got != want[p] {
			t.Errorf("phase %s = %d, want %d", p, got, want[p])
		}
		sum += ps.Nanos(p)
	}
	if sum != clk.Nanos() {
		t.Errorf("phase sum %d != clock %d — phases must partition the clock", sum, clk.Nanos())
	}
}

func TestPhaseTimerNilSetIsInert(t *testing.T) {
	clk := sim.NewClock()
	var pt PhaseTimer
	// Never started: every method must be a safe no-op.
	pt.To(PhaseCC)
	pt.Finish()
	clk.Advance(10)
	pt.To(PhaseFlush)
}

func TestPhaseSetReset(t *testing.T) {
	var ps PhaseSet
	clk := sim.NewClock()
	var pt PhaseTimer
	pt.Start(&ps, clk)
	clk.Advance(42)
	pt.Finish()
	ps.Reset()
	for p := 0; p < NumPhases; p++ {
		if ps.Nanos(Phase(p)) != 0 {
			t.Fatalf("phase %d not reset", p)
		}
	}
}

func TestAbortCountsConcurrent(t *testing.T) {
	var a AbortCounts
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Inc(AbortReason(g % NumAbortReasons))
			}
		}(g)
	}
	wg.Wait()
	if a.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", a.Total())
	}
	snap := a.Snapshot()
	var sum uint64
	for _, n := range snap {
		sum += n
	}
	if sum != a.Total() {
		t.Errorf("snapshot sum %d != total %d", sum, a.Total())
	}
	a.Inc(AbortReason(250)) // out of range folds into Other
	if a.Snapshot()[AbortOther] == 0 {
		t.Error("out-of-range reason must count as other")
	}
	a.Reset()
	if a.Total() != 0 {
		t.Error("reset must zero all reasons")
	}
}

func TestRegistrySnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	var ps PhaseSet
	var ac AbortCounts
	commits := uint64(0)
	r.Register("engine", func(s *Snapshot) {
		s.Commits = commits
		s.Aborts = ac.Total()
		ps.AddTo(&s.PhaseNanos)
		s.AbortCounts = ac.Snapshot()
	})
	r.Register("wal", func(s *Snapshot) {
		s.WAL.Add(WALStats{Begins: 5, Commits: 4, Aborts: 1, BytesLogged: 400, MaxRecordBytes: 200, SlotBytes: 4096})
	})

	clk := sim.NewClock()
	var pt PhaseTimer
	pt.Start(&ps, clk)
	clk.Advance(10)
	pt.To(PhaseCC)
	clk.Advance(5)
	pt.Finish()
	commits = 3
	ac.Inc(AbortLockConflict)

	s0 := r.Snapshot()
	if s0.Commits != 3 || s0.Aborts != 1 || s0.TotalPhaseNanos() != 15 {
		t.Fatalf("snapshot: %+v", s0)
	}
	if s0.WAL.MeanRecordBytes() != 100 {
		t.Errorf("mean record = %d, want 100", s0.WAL.MeanRecordBytes())
	}

	// More activity, then diff.
	commits = 10
	ac.Inc(AbortValidation)
	diff := r.Snapshot().Sub(s0)
	if diff.Commits != 7 || diff.Aborts != 1 {
		t.Errorf("diff commits/aborts = %d/%d, want 7/1", diff.Commits, diff.Aborts)
	}
	if diff.AbortCounts[AbortValidation] != 1 || diff.AbortCounts[AbortLockConflict] != 0 {
		t.Errorf("diff abort counts = %v", diff.AbortCounts)
	}

	if got := r.Sources(); len(got) != 2 || got[0] != "engine" || got[1] != "wal" {
		t.Errorf("sources = %v", got)
	}
}

func TestSnapshotRenderers(t *testing.T) {
	var s Snapshot
	s.Commits = 7
	s.Aborts = 2
	s.AbortCounts[AbortValidation] = 2
	s.PhaseNanos[PhaseExec] = 60
	s.PhaseNanos[PhaseLogAppend] = 40
	s.WAL = WALStats{Begins: 9, Commits: 7, Aborts: 2, BytesLogged: 700, SlotBytes: 4096}
	s.Hot = HotSetStats{Hits: 3, Misses: 4, Evictions: 1}

	text := s.Text()
	for _, want := range []string{"commits 7", "validation 2", "log-append", "40", "hot-set", "wal", "pmem"} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("JSON not parseable: %v", err)
	}
	phases, ok := decoded["phase_nanos"].(map[string]any)
	if !ok || phases["log-append"] != float64(40) {
		t.Errorf("phase_nanos = %v", decoded["phase_nanos"])
	}
	if decoded["commits"] != float64(7) {
		t.Errorf("commits = %v", decoded["commits"])
	}
}
