package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceRingWrapOldestFirst(t *testing.T) {
	tr := NewTracer(1, TraceOptions{RingCap: 8})
	w := tr.Worker(0)
	for i := 0; i < 20; i++ {
		w.Instant(EvWALClaim, uint64(100+i), uint64(i), 0)
	}
	d := tr.Dump()
	if len(d.Events) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(d.Events))
	}
	if d.Dropped != 12 {
		t.Fatalf("dropped = %d, want 12", d.Dropped)
	}
	for i, e := range d.Events {
		if e.Arg != uint64(12+i) {
			t.Fatalf("event %d has arg %d, want %d (oldest-first order)", i, e.Arg, 12+i)
		}
	}
}

func TestTraceHeadSampling(t *testing.T) {
	tr := NewTracer(1, TraceOptions{Sample: 3, RingCap: 256})
	w := tr.Worker(0)
	for i := 0; i < 9; i++ {
		start := uint64(1000 * i)
		w.TxnBegin(uint64(i+1), start)
		w.Span(EvLockWait, start+1, start+5, 7, 2)
		w.TxnEnd(start+100, -1)
	}
	d := tr.Dump()
	var txns, waits int
	for _, e := range d.Events {
		switch e.Kind {
		case EvTxn:
			txns++
		case EvLockWait:
			waits++
		}
	}
	// Transactions 0, 3, 6 are sampled; each contributes its lock-wait span
	// plus its txn span.
	if txns != 3 || waits != 3 {
		t.Fatalf("sampled %d txn / %d lock-wait events, want 3 / 3", txns, waits)
	}
	if d.Sample != 3 {
		t.Fatalf("dump sample = %d, want 3", d.Sample)
	}
}

// TestTraceExemplarsSurviveSparseSampling is the tracer's core promise:
// aborted and slowest-K transactions keep their full span stacks even when
// head sampling discards virtually everything.
func TestTraceExemplarsSurviveSparseSampling(t *testing.T) {
	tr := NewTracer(1, TraceOptions{Sample: 1_000_000, SlowK: 2, AbortCap: 4})
	w := tr.Worker(0)
	for i := 0; i < 10; i++ {
		start := uint64(10_000 * i)
		w.TxnBegin(uint64(i+1), start)
		w.PhaseSeg(PhaseExec, start, start+10)
		w.PhaseSeg(PhaseCC, start+10, start+20)
		reason := -1
		if i == 5 {
			reason = int(AbortLockConflict)
		}
		w.TxnEnd(start+uint64(100+i), reason) // txn i has duration 100+i
	}
	d := tr.Dump()

	// Only transaction 0 was sampled into the ring.
	var ringTxns int
	for _, e := range d.Events {
		if e.Kind == EvTxn {
			ringTxns++
		}
	}
	if ringTxns != 1 {
		t.Fatalf("ring has %d txn events, want 1 (sample rate 1e6)", ringTxns)
	}

	if len(d.Aborted) != 1 {
		t.Fatalf("aborted exemplars = %d, want 1", len(d.Aborted))
	}
	ab := d.Aborted[0]
	if ab.TID != 6 || ab.Abort != AbortLockConflict.String() {
		t.Fatalf("abort exemplar = tid %d reason %q", ab.TID, ab.Abort)
	}
	if len(ab.Events) != 3 { // 2 phase segments + the txn span
		t.Fatalf("abort exemplar kept %d events, want full stack of 3", len(ab.Events))
	}

	// SlowK=2 keeps the two slowest (i=9 dur 109, i=8 dur 108), slowest first.
	if len(d.Slow) != 2 {
		t.Fatalf("slow exemplars = %d, want 2", len(d.Slow))
	}
	if d.Slow[0].Dur() != 109 || d.Slow[1].Dur() != 108 {
		t.Fatalf("slow durations = %d, %d; want 109, 108", d.Slow[0].Dur(), d.Slow[1].Dur())
	}
	if len(d.Slow[0].Events) != 3 {
		t.Fatalf("slow exemplar kept %d events, want 3", len(d.Slow[0].Events))
	}
}

func TestTraceAbortRingBounded(t *testing.T) {
	tr := NewTracer(1, TraceOptions{AbortCap: 3})
	w := tr.Worker(0)
	for i := 0; i < 7; i++ {
		start := uint64(100 * i)
		w.TxnBegin(uint64(i+1), start)
		w.TxnEnd(start+10, int(AbortValidation))
	}
	d := tr.Dump()
	if len(d.Aborted) != 3 {
		t.Fatalf("aborted = %d, want cap 3", len(d.Aborted))
	}
}

func TestTracerNilSafety(t *testing.T) {
	var w *WorkerTracer
	w.TxnBegin(1, 0)
	w.TxnEnd(10, -1)
	w.Span(EvLockWait, 0, 1, 0, 0)
	w.Instant(EvWALClaim, 0, 0, 0)
	w.PhaseSeg(PhaseExec, 0, 1)
	var tr *Tracer
	if tr.Worker(0) != nil {
		t.Fatal("nil tracer must hand out nil workers")
	}
	if tr.Dump() != nil {
		t.Fatal("nil tracer must dump nil")
	}
	tr.PmemTrace(0, 0, 1, true, 0)
	// Out-of-range workers are nil too (engines arm only their own threads).
	if NewTracer(2, TraceOptions{}).Worker(5) != nil {
		t.Fatal("out-of-range worker must be nil")
	}
}

// buildGoldenDump assembles a dump exercising every event kind and both
// exemplar stores.
func buildGoldenDump() *TraceDump {
	tr := NewTracer(2, TraceOptions{Sample: 1, SlowK: 2})
	w0 := tr.Worker(0)
	w0.TxnBegin(0x10, 100)
	w0.PhaseSeg(PhaseExec, 100, 150)
	w0.Span(EvLockWait, 150, 170, 42, 3)
	w0.PhaseSeg(PhaseCC, 170, 200)
	w0.Instant(EvWALClaim, 205, 2, 1)
	w0.Span(EvFlushTrain, 210, 240, 5, 1)
	w0.TxnEnd(250, -1)
	w0.TxnBegin(0x11, 300)
	w0.PhaseSeg(PhaseExec, 300, 320)
	w0.TxnEnd(330, int(AbortValidation))
	w1 := tr.Worker(1)
	w1.Span(EvXPEvict, 400, 470, 1, 0x1000)
	tr.PmemTrace(1, 480, 500, false, 0x2000)
	return tr.Dump()
}

// TestChromeTraceGolden is the format contract: the exporter's output must
// satisfy the same schema checks falcon-tracecheck applies, carry the
// nanosecond display unit, and lay out metadata the way Perfetto expects.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	dumps := []NamedDump{{Label: "golden", Dump: buildGoldenDump()}}
	if err := WriteChromeTrace(&buf, dumps); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exporter output fails its own validator: %v", err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayUnit)
	}
	counts := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		counts[ph]++
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	if counts["M"] < 3 { // process_name + two thread_name records at least
		t.Fatalf("metadata events = %d, want >= 3", counts["M"])
	}
	if counts["X"] == 0 {
		t.Fatal("no complete (X) events emitted")
	}
	if counts["i"] == 0 {
		t.Fatal("no instant (i) events emitted")
	}
	for _, want := range []string{"exec", "cc", "lock-wait"} {
		if !names[want] {
			t.Fatalf("exported trace lacks a %q event", want)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	bad := []string{
		`{}`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"name":"x","pid":1,"tid":1}]}`,                             // no ph
		`{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1}]}`,                    // X without ts/dur
		`{"traceEvents":[{"name":"x","ph":"M","pid":1,"tid":1}]}`,                    // M without args.name
		`{"traceEvents":[{"name":"x","ph":"?","pid":1,"tid":1,"ts":0}]}`,             // unknown phase
		`{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1,"ts":5,"dur":-1}]}`,    // negative dur
		`{"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":5,"dur":1}]}`,                // no name
	}
	for _, s := range bad {
		if err := ValidateChromeTrace([]byte(s)); err == nil {
			t.Errorf("validator accepted %s", s)
		}
	}
}

func TestAutopsyRendering(t *testing.T) {
	d := buildGoldenDump()
	rep := AutopsyReport(d, 4)
	if !strings.Contains(rep, "ABORT") || !strings.Contains(rep, AbortValidation.String()) {
		t.Fatalf("autopsy report lacks the abort verdict:\n%s", rep)
	}
	if !strings.Contains(rep, "exec") || !strings.Contains(rep, "lock-wait") {
		t.Fatalf("autopsy report lacks span lines:\n%s", rep)
	}
	if !strings.Contains(rep, "COMMIT") {
		t.Fatalf("autopsy report lacks the slow committed txn:\n%s", rep)
	}
}
