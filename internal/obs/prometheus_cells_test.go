package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusCellsGrammar checks the multi-cell exposition: several
// labelled snapshots must merge into one document with a single HELP/TYPE
// header per metric family while every sample carries its cell label.
// Naively concatenating per-cell expositions would repeat the headers, which
// the text format forbids — this test fails on that shape.
func TestWritePrometheusCellsGrammar(t *testing.T) {
	cells := []NamedSnapshot{
		{Label: "Falcon/YCSB-A/8", Snap: promTestSnapshot()},
		{Label: "Inp/TPC-C/4", Snap: promTestSnapshot()},
	}
	var sb strings.Builder
	if err := WritePrometheusCells(&sb, cells); err != nil {
		t.Fatal(err)
	}
	helpSeen := map[string]bool{}
	samples := map[string]int{} // samples per cell-label value
	for ln, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if m := promHelpRe.FindStringSubmatch(line); m != nil {
			if helpSeen[m[1]] {
				t.Fatalf("line %d: duplicate HELP for %s — cells were concatenated, not merged", ln+1, m[1])
			}
			helpSeen[m[1]] = true
			continue
		}
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			if !helpSeen[m[1]] {
				t.Fatalf("line %d: TYPE for %s before its HELP", ln+1, m[1])
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid exposition line: %q", ln+1, line)
		}
		cell, ok := parseLabels(t, m[3])["cell"]
		if !ok {
			t.Fatalf("line %d: sample without a cell label: %q", ln+1, line)
		}
		samples[cell]++
	}
	if len(samples) != 2 {
		t.Fatalf("expected samples from exactly 2 cells, got %v", samples)
	}
	// The two cells hold identical snapshots, so they must contribute
	// identical sample counts; a mismatch means one cell was truncated.
	if samples["Falcon/YCSB-A/8"] != samples["Inp/TPC-C/4"] {
		t.Fatalf("identical snapshots produced different sample counts: %v", samples)
	}
	if samples["Falcon/YCSB-A/8"] == 0 {
		t.Fatal("no samples emitted")
	}
}
