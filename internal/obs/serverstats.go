package obs

import (
	"fmt"
	"sort"
	"strings"
)

// EndpointStats counts one serving endpoint's request outcomes. The serving
// layer owns the live accumulators (guarded by its own lock) and contributes
// a copy at snapshot time, so the fields here are plain values.
type EndpointStats struct {
	// Requests counts every request that reached the endpoint, accepted or
	// not; OK and Errors partition the completed ones (Errors are engine or
	// protocol failures, not sheds).
	Requests uint64
	OK       uint64
	Errors   uint64
	// ShedQueue / ShedDeadline / ShedDraining count admission rejections by
	// cause: queue at capacity, deadline unmeetable given the estimated
	// queue wait, and drain in progress. Shed requests never reach a worker.
	ShedQueue    uint64
	ShedDeadline uint64
	ShedDraining uint64
	// Expired counts admitted requests whose deadline passed before or
	// during execution (the transaction attempt was canceled).
	Expired uint64
	// Replayed counts requests answered from the idempotency table — a
	// retry whose original attempt had already committed.
	Replayed uint64
	// Retried counts requests that arrived carrying an idempotency key the
	// server had not seen complete (first attempts and true retries both
	// land in Requests; Retried is maintained by clients, so servers leave
	// it zero unless the transport conveys it).
	Retried uint64
	// Latency is the endpoint's accepted-request service-time distribution
	// in host nanoseconds (admission to response write).
	Latency HistogramDump `json:",omitempty"`
}

// Shed returns the total rejections across causes.
func (e EndpointStats) Shed() uint64 {
	return e.ShedQueue + e.ShedDeadline + e.ShedDraining
}

// Add sums o into e (histograms merge bucket-wise).
func (e *EndpointStats) Add(o EndpointStats) {
	e.Requests += o.Requests
	e.OK += o.OK
	e.Errors += o.Errors
	e.ShedQueue += o.ShedQueue
	e.ShedDeadline += o.ShedDeadline
	e.ShedDraining += o.ShedDraining
	e.Expired += o.Expired
	e.Replayed += o.Replayed
	e.Retried += o.Retried
	e.Latency = e.Latency.Merge(o.Latency)
}

// Sub returns the counter-wise difference e - o; the latency dump passes
// through from e (point-in-time export, like the epoch histograms).
func (e EndpointStats) Sub(o EndpointStats) EndpointStats {
	return EndpointStats{
		Requests:     e.Requests - o.Requests,
		OK:           e.OK - o.OK,
		Errors:       e.Errors - o.Errors,
		ShedQueue:    e.ShedQueue - o.ShedQueue,
		ShedDeadline: e.ShedDeadline - o.ShedDeadline,
		ShedDraining: e.ShedDraining - o.ShedDraining,
		Expired:      e.Expired - o.Expired,
		Replayed:     e.Replayed - o.Replayed,
		Retried:      e.Retried - o.Retried,
		Latency:      e.Latency,
	}
}

// ServerStats is the serving layer's contribution to a Snapshot: per-endpoint
// outcome counters plus the admission controller's gauges.
type ServerStats struct {
	// Endpoints maps endpoint name (e.g. "/v1/txn") to its counters.
	Endpoints map[string]EndpointStats `json:",omitempty"`
	// QueueDepth / QueueCap are the admission queue's occupancy and bound at
	// snapshot time (gauges). Workers is the pool size.
	QueueDepth uint64
	QueueCap   uint64
	Workers    uint64
	// EstServiceNanos is the admission controller's EWMA service-time
	// estimate in host nanoseconds (gauge; drives deadline-aware rejection).
	EstServiceNanos uint64
	// Draining reports that the server has stopped admitting (gauge).
	Draining bool
}

// Sub returns the endpoint-wise counter difference s - o; nil-safe on both
// sides (nil means "serving layer absent from this snapshot"), gauges pass
// through from s.
func (s *ServerStats) Sub(o *ServerStats) *ServerStats {
	if s == nil || o == nil {
		return s
	}
	out := &ServerStats{
		QueueDepth:      s.QueueDepth,
		QueueCap:        s.QueueCap,
		Workers:         s.Workers,
		EstServiceNanos: s.EstServiceNanos,
		Draining:        s.Draining,
	}
	if s.Endpoints != nil {
		out.Endpoints = make(map[string]EndpointStats, len(s.Endpoints))
		for name, ep := range s.Endpoints {
			out.Endpoints[name] = ep.Sub(o.Endpoints[name])
		}
	}
	return out
}

// Text renders the server block for Snapshot.Text.
func (s *ServerStats) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "server    workers %d  queue %d/%d  est-service %d ns  draining %v\n",
		s.Workers, s.QueueDepth, s.QueueCap, s.EstServiceNanos, s.Draining)
	names := make([]string, 0, len(s.Endpoints))
	for name := range s.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := s.Endpoints[name]
		fmt.Fprintf(&b, "  %-12s req %d  ok %d  err %d  shed %d (queue %d, deadline %d, drain %d)  expired %d  replayed %d\n",
			name, ep.Requests, ep.OK, ep.Errors, ep.Shed(),
			ep.ShedQueue, ep.ShedDeadline, ep.ShedDraining, ep.Expired, ep.Replayed)
		if ep.Latency.Count > 0 {
			fmt.Fprintf(&b, "  %-12s latency mean %d ns  max %d ns  (%d samples)\n",
				"", ep.Latency.Mean(), ep.Latency.Max, ep.Latency.Count)
		}
	}
	return b.String()
}
