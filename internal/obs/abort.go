package obs

import "sync/atomic"

// AbortReason classifies why a transaction attempt aborted. Every abort is
// attributed to exactly one reason, so the per-reason counters sum to the
// engine's total abort count.
type AbortReason uint8

const (
	// AbortLockConflict is an execution-time concurrency-control conflict:
	// a failed lock acquisition, a timestamp-order violation, or a torn read
	// under OCC/TO no-wait reads.
	AbortLockConflict AbortReason = iota
	// AbortValidation is an OCC commit-time validation failure (a read-set
	// version changed, or a write-set lock could not be taken).
	AbortValidation
	// AbortUserRollback is a caller-requested abort: ErrRollback from the
	// transaction closure (TPC-C NewOrder's 1%) or a bare Txn.Abort.
	AbortUserRollback
	// AbortTableFull is a heap-capacity failure (ErrTableFull).
	AbortTableFull
	// AbortLogFull is a redo log that exhausted the window's overflow
	// capacity (ErrTxnTooLarge).
	AbortLogFull
	// AbortCanceled is a cancellation: the transaction's deadline expired (or
	// its caller withdrew the request) mid-execution and ErrCanceled
	// propagated out of the attempt.
	AbortCanceled
	// AbortOther is any abort the engine could not attribute (e.g. an
	// application error like ErrNotFound propagating out of Engine.Run).
	AbortOther

	// NumAbortReasons is the number of reasons (array sizing).
	NumAbortReasons = int(AbortOther) + 1
)

// AbortReasonNames maps AbortReason values to stable short names.
var AbortReasonNames = [NumAbortReasons]string{
	"lock-conflict", "validation", "user-rollback", "table-full", "log-full", "canceled", "other",
}

func (r AbortReason) String() string {
	if int(r) < NumAbortReasons {
		return AbortReasonNames[r]
	}
	return "unknown"
}

// AbortCounts tallies aborts by reason. Unlike the single-owner phase
// accumulators, aborts from all workers land here, so the counters are
// atomic and safe to read at any time.
type AbortCounts struct {
	counts [NumAbortReasons]atomic.Uint64
}

// Inc records one abort for reason r (out-of-range reasons count as Other).
func (a *AbortCounts) Inc(r AbortReason) {
	if int(r) >= NumAbortReasons {
		r = AbortOther
	}
	a.counts[r].Add(1)
}

// Snapshot copies the per-reason counters.
func (a *AbortCounts) Snapshot() (out [NumAbortReasons]uint64) {
	for i := range a.counts {
		out[i] = a.counts[i].Load()
	}
	return out
}

// Total returns the sum over all reasons.
func (a *AbortCounts) Total() uint64 {
	var sum uint64
	for i := range a.counts {
		sum += a.counts[i].Load()
	}
	return sum
}

// Reset zeroes all reason counters.
func (a *AbortCounts) Reset() {
	for i := range a.counts {
		a.counts[i].Store(0)
	}
}
