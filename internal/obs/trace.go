package obs

import "time"

// EventKind classifies one trace event. Span kinds have a Start and an End
// virtual timestamp; instant kinds carry only Start.
type EventKind uint8

const (
	// EvTxn spans a whole transaction attempt, Begin to commit/abort. The
	// Abort field distinguishes outcomes; Arg is the attempt's TID.
	EvTxn EventKind = iota
	// EvPhase spans one PhaseTimer segment; the Phase field names it.
	EvPhase
	// EvLockWait spans a read stalled behind a concurrent writer's mid-apply
	// window (the snapshot-read spin). Arg is the heap slot.
	EvLockWait
	// EvWALClaim is an instant: a log-window slot claim. Arg is the slot
	// index; Arg2 is 1 when the claim wrapped onto a previously used slot.
	EvWALClaim
	// EvXPEvict is an instant (with media-latency duration): an XPBuffer slot
	// eviction to the media. Arg is 1 for a full-block write, 0 for a partial
	// read-modify-write; Arg2 is the block address.
	EvXPEvict
	// EvFlushTrain spans one selective-flush pass (the clwb train over a
	// transaction's touched tuples, or the flushed-log commit-record clwb).
	// Arg is the number of cache lines flushed; Arg2 counts flushes elided by
	// the hot set.
	EvFlushTrain
	// EvEpochSeal spans the sealing of one group-commit durability epoch: the
	// coalesced record/data flush trains, the single epoch drain, and the
	// durable-marker publish. Arg is the epoch id; Arg2 the number of records
	// the epoch coalesced.
	EvEpochSeal

	// NumEventKinds is the number of kinds (array sizing).
	NumEventKinds = int(EvEpochSeal) + 1
)

// EventKindNames maps EventKind values to stable short names.
var EventKindNames = [NumEventKinds]string{
	"txn", "phase", "lock-wait", "wal-claim", "xp-evict", "flush-train",
	"epoch-seal",
}

func (k EventKind) String() string {
	if int(k) < NumEventKinds {
		return EventKindNames[k]
	}
	return "unknown"
}

// Event is one trace record. Start/End are virtual nanoseconds from the
// owning worker's sim.Clock; Host is host wall time (nanoseconds since the
// tracer was armed) so virtual-time anomalies can be correlated with host
// behaviour. Events are plain values sized for bulk copying in and out of the
// per-worker rings.
type Event struct {
	Start uint64    `json:"start"`
	End   uint64    `json:"end"`
	Host  int64     `json:"host"`
	TID   uint64    `json:"tid"`
	Arg   uint64    `json:"arg,omitempty"`
	Arg2  uint64    `json:"arg2,omitempty"`
	Kind  EventKind `json:"kind"`
	Phase Phase     `json:"phase,omitempty"`
	// Abort is the outcome of an EvTxn event: 0 = committed, otherwise
	// AbortReason+1 (shifted so the zero value means "committed").
	Abort  int16 `json:"abort,omitempty"`
	Worker int32 `json:"worker"`
}

// Exemplar is a fully captured transaction: its complete span stack,
// regardless of the head-sampling rate. Slow and aborted transactions are
// always kept as exemplars — that is the point of the tracer.
type Exemplar struct {
	Worker int    `json:"worker"`
	TID    uint64 `json:"tid"`
	Start  uint64 `json:"start"`
	End    uint64 `json:"end"`
	// Abort names the abort reason from the taxonomy; empty for committed
	// transactions.
	Abort  string  `json:"abort,omitempty"`
	Events []Event `json:"events"`
}

// Dur returns the exemplar's virtual duration.
func (e *Exemplar) Dur() uint64 { return e.End - e.Start }

// TraceOptions configures a Tracer.
type TraceOptions struct {
	// Sample keeps every Nth transaction's spans in the ring (head sampling,
	// decided at Begin). 0 or 1 keeps every transaction. Exemplar capture is
	// unaffected: slow and aborted transactions are always captured.
	Sample int
	// RingCap is the per-worker event-ring capacity (default 8192). The ring
	// overwrites oldest events; Dropped in the dump counts the loss.
	RingCap int
	// SlowK is the number of slowest-transaction exemplars kept per worker
	// (default 8).
	SlowK int
	// AbortCap is the number of most-recent aborted-transaction exemplars
	// kept per worker (default 32).
	AbortCap int
}

func (o TraceOptions) withDefaults() TraceOptions {
	if o.Sample < 1 {
		o.Sample = 1
	}
	if o.RingCap <= 0 {
		o.RingCap = 8192
	}
	if o.SlowK <= 0 {
		o.SlowK = 8
	}
	if o.AbortCap <= 0 {
		o.AbortCap = 32
	}
	return o
}

// Tracer owns one WorkerTracer per worker. Like every other per-worker
// accumulator in this codebase (sim.Clock, PhaseSet, wal.Window) each
// WorkerTracer is single-writer: only the owning worker goroutine records
// into it, and Dump may run only when the workers are quiescent. The Tracer
// itself is immutable after construction, so handing out Worker pointers is
// race-free.
type Tracer struct {
	opt     TraceOptions
	start   time.Time
	workers []WorkerTracer
}

// NewTracer builds a tracer for the given worker count.
func NewTracer(workers int, opt TraceOptions) *Tracer {
	if workers < 1 {
		workers = 1
	}
	opt = opt.withDefaults()
	t := &Tracer{opt: opt, start: time.Now(), workers: make([]WorkerTracer, workers)}
	for i := range t.workers {
		w := &t.workers[i]
		w.tr = t
		w.worker = int32(i)
		w.ring = make([]Event, 0, opt.RingCap)
		w.slow = make([]Exemplar, 0, opt.SlowK)
		w.aborted = make([]Exemplar, opt.AbortCap)
		w.cur = make([]Event, 0, 64)
	}
	return t
}

// Workers returns the number of per-worker tracers.
func (t *Tracer) Workers() int { return len(t.workers) }

// Worker returns worker w's tracer (nil when w is out of range, so callers
// can arm exactly the workers they have).
func (t *Tracer) Worker(w int) *WorkerTracer {
	if t == nil || w < 0 || w >= len(t.workers) {
		return nil
	}
	return &t.workers[w]
}

// PmemTrace adapts the tracer to pmem's dependency-free hook signature
// (pmem cannot import obs). The shard id of the clock that caused the
// eviction doubles as the worker id — the same routing the sharded pmem
// counters use — so the single-writer rule holds: shard s events are only
// produced while worker s's goroutine runs. Anonymous clocks (setup, crash
// flushes) land on worker 0, which only records while the workers are
// stopped.
func (t *Tracer) PmemTrace(shard uint64, start, end uint64, full bool, blockAddr uint64) {
	if t == nil || shard >= uint64(len(t.workers)) {
		return
	}
	var arg uint64
	if full {
		arg = 1
	}
	w := &t.workers[shard]
	w.Span(EvXPEvict, start, end, arg, blockAddr)
}

// WorkerTracer records one worker's events. All methods are nil-receiver
// safe, so instrumentation sites pay a single pointer test when tracing is
// unarmed. While a transaction is active every event goes to the cur scratch
// buffer; TxnEnd routes the completed span stack to the ring (if sampled)
// and to the exemplar stores (always, if slow or aborted). Events outside a
// transaction (recovery phases, micro-benchmark loops) go straight to the
// ring.
type WorkerTracer struct {
	tr     *Tracer
	worker int32

	// txn-scoped scratch state (single-writer).
	cur      []Event
	active   bool
	sampled  bool
	txnStart uint64
	txnTID   uint64
	txns     uint64

	// ring is the bounded sampled-event store; n is the next write index
	// once the ring is full. dropped counts overwritten events.
	ring    []Event
	ringN   int
	dropped uint64

	// slow keeps the K slowest transactions (linear min-replace — K is
	// small); aborted is a ring of the most recent aborted transactions.
	slow     []Exemplar
	aborted  []Exemplar
	abortN   int
	abortLen int

	// pad keeps adjacent workers' hot scratch state off one cache line.
	_ [4]uint64
}

// host returns host nanoseconds since the tracer was armed.
func (w *WorkerTracer) host() int64 { return int64(time.Since(w.tr.start)) }

// TxnBegin opens a transaction scope at virtual time start. The sampling
// decision is made here (head sampling); span recording continues regardless
// so that exemplar capture can keep the full stack of slow and aborted
// transactions even when they are not sampled.
func (w *WorkerTracer) TxnBegin(tid, start uint64) {
	if w == nil {
		return
	}
	w.active = true
	w.sampled = w.txns%uint64(w.tr.opt.Sample) == 0
	w.txns++
	w.txnStart = start
	w.txnTID = tid
	w.cur = w.cur[:0]
}

// TxnEnd closes the transaction scope at virtual time end. committed
// transactions pass reason -1; aborted ones pass the taxonomy reason.
func (w *WorkerTracer) TxnEnd(end uint64, reason int) {
	if w == nil || !w.active {
		return
	}
	w.active = false
	ab := int16(0)
	if reason >= 0 {
		ab = int16(reason) + 1
	}
	w.cur = append(w.cur, Event{
		Kind: EvTxn, Start: w.txnStart, End: end, Host: w.host(),
		TID: w.txnTID, Arg: w.txnTID, Abort: ab, Worker: w.worker,
	})
	if w.sampled {
		for i := range w.cur {
			w.push(w.cur[i])
		}
	}
	if reason >= 0 {
		w.keepAborted(end, reason)
	}
	w.keepSlow(end, reason)
}

// Span records a span event [start, end] of the given kind.
func (w *WorkerTracer) Span(kind EventKind, start, end, arg, arg2 uint64) {
	if w == nil {
		return
	}
	w.record(Event{
		Kind: kind, Start: start, End: end, Host: w.host(),
		TID: w.txnTID, Arg: arg, Arg2: arg2, Worker: w.worker,
	})
}

// Instant records a zero-duration event at virtual time at.
func (w *WorkerTracer) Instant(kind EventKind, at, arg, arg2 uint64) {
	w.Span(kind, at, at, arg, arg2)
}

// PhaseSeg records one closed PhaseTimer segment (called from PhaseTimer.To
// and Finish when a trace is attached). Zero-length segments are dropped.
func (w *WorkerTracer) PhaseSeg(p Phase, start, end uint64) {
	if w == nil || start == end {
		return
	}
	w.record(Event{
		Kind: EvPhase, Phase: p, Start: start, End: end, Host: w.host(),
		TID: w.txnTID, Worker: w.worker,
	})
}

func (w *WorkerTracer) record(e Event) {
	if w.active {
		w.cur = append(w.cur, e)
		return
	}
	// Outside a transaction (recovery, micro loops): straight to the ring,
	// unconditionally — there is no txn to sample.
	w.push(e)
}

// push appends to the bounded ring, overwriting oldest events once full.
func (w *WorkerTracer) push(e Event) {
	if len(w.ring) < cap(w.ring) {
		w.ring = append(w.ring, e)
		return
	}
	w.ring[w.ringN] = e
	w.ringN++
	if w.ringN == len(w.ring) {
		w.ringN = 0
	}
	w.dropped++
}

// keepSlow admits the finished transaction to the slowest-K store if it
// beats the current minimum (linear scan; K is small).
func (w *WorkerTracer) keepSlow(end uint64, reason int) {
	dur := end - w.txnStart
	if len(w.slow) < cap(w.slow) {
		w.slow = append(w.slow, w.exemplar(end, reason))
		return
	}
	min := 0
	for i := 1; i < len(w.slow); i++ {
		if w.slow[i].Dur() < w.slow[min].Dur() {
			min = i
		}
	}
	if dur > w.slow[min].Dur() {
		ex := &w.slow[min]
		w.fillExemplar(ex, end, reason)
	}
}

// keepAborted appends the aborted transaction to the bounded exemplar ring.
func (w *WorkerTracer) keepAborted(end uint64, reason int) {
	ex := &w.aborted[w.abortN]
	w.fillExemplar(ex, end, reason)
	w.abortN++
	if w.abortN == len(w.aborted) {
		w.abortN = 0
	}
	if w.abortLen < len(w.aborted) {
		w.abortLen++
	}
}

func (w *WorkerTracer) exemplar(end uint64, reason int) Exemplar {
	var ex Exemplar
	w.fillExemplar(&ex, end, reason)
	return ex
}

// fillExemplar overwrites ex with the current transaction, reusing ex's
// event slice to stay allocation-free once the stores have warmed up.
func (w *WorkerTracer) fillExemplar(ex *Exemplar, end uint64, reason int) {
	ex.Worker = int(w.worker)
	ex.TID = w.txnTID
	ex.Start = w.txnStart
	ex.End = end
	ex.Abort = ""
	if reason >= 0 {
		ex.Abort = AbortReason(reason).String()
	}
	ex.Events = append(ex.Events[:0], w.cur...)
}

// TxnElapsed returns the active transaction's virtual duration so far, or
// 0 when no transaction is open. Observatory exemplar admission uses it to
// decide whether a capture is worth the copy.
func (w *WorkerTracer) TxnElapsed(now uint64) uint64 {
	if w == nil || !w.active {
		return 0
	}
	return now - w.txnStart
}

// CaptureCurrent fills ex with the active transaction's span stack so far —
// the observatory's slowest-exemplar capture, taken mid-transaction at a
// conflict site rather than at TxnEnd. ex's event slice is reused, keeping
// repeated captures allocation-free. Reports false when no transaction is
// open (or w is nil), leaving ex untouched.
func (w *WorkerTracer) CaptureCurrent(ex *Exemplar, end uint64, reason string) bool {
	if w == nil || !w.active {
		return false
	}
	ex.Worker = int(w.worker)
	ex.TID = w.txnTID
	ex.Start = w.txnStart
	ex.End = end
	ex.Abort = reason
	ex.Events = append(ex.Events[:0], w.cur...)
	return true
}

// TraceDump is the quiescent read-out of a Tracer: every worker's ring
// merged (oldest first per worker), plus the exemplar stores. It is the
// value carried on bench.Result and consumed by the exporters.
type TraceDump struct {
	// Sample is the head-sampling rate the trace ran with.
	Sample int `json:"sample"`
	// Workers is the worker count (Perfetto track layout).
	Workers int `json:"workers"`
	// Events is every sampled/ambient event, ordered per worker.
	Events []Event `json:"events"`
	// Slow is the merged slowest-K exemplars, slowest first.
	Slow []Exemplar `json:"slow,omitempty"`
	// Aborted is every captured aborted-transaction exemplar.
	Aborted []Exemplar `json:"aborted,omitempty"`
	// Dropped counts ring overwrites across all workers (0 = lossless).
	Dropped uint64 `json:"dropped,omitempty"`
}

// Dump assembles the trace. It must only be called while the traced workers
// are quiescent (between benchmark phases, or after Wait) — the same
// contract as reading sim.Clock or PhaseSet.
func (t *Tracer) Dump() *TraceDump {
	if t == nil {
		return nil
	}
	d := &TraceDump{Sample: t.opt.Sample, Workers: len(t.workers)}
	for i := range t.workers {
		w := &t.workers[i]
		// Ring contents oldest-first: [ringN:] then [:ringN] once wrapped.
		if len(w.ring) == cap(w.ring) && w.ringN != 0 {
			d.Events = append(d.Events, w.ring[w.ringN:]...)
			d.Events = append(d.Events, w.ring[:w.ringN]...)
		} else {
			d.Events = append(d.Events, w.ring...)
		}
		d.Dropped += w.dropped
		for j := range w.slow {
			d.Slow = append(d.Slow, cloneExemplar(&w.slow[j]))
		}
		for j := 0; j < w.abortLen; j++ {
			d.Aborted = append(d.Aborted, cloneExemplar(&w.aborted[j]))
		}
	}
	sortExemplarsByDur(d.Slow)
	return d
}

func cloneExemplar(ex *Exemplar) Exemplar {
	out := *ex
	out.Events = append([]Event(nil), ex.Events...)
	return out
}

func sortExemplarsByDur(exs []Exemplar) {
	// Insertion sort, slowest first — the lists are tiny (K per worker).
	for i := 1; i < len(exs); i++ {
		for j := i; j > 0 && exs[j].Dur() > exs[j-1].Dur(); j-- {
			exs[j], exs[j-1] = exs[j-1], exs[j]
		}
	}
}
