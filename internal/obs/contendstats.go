package obs

import (
	"fmt"
	"sort"
	"strings"
)

// ConflictKind classifies one contention event reported into the
// observatory. The taxonomy is finer than AbortReason because a single
// abort reason (e.g. AbortLockConflict) covers several distinct shadow-word
// interactions, and because some kinds (spin-wait, det-barrier) never
// surface as aborts at all.
type ConflictKind uint8

const (
	// ConflictLockFail is a read- or write-lock acquisition refused by the
	// no-wait protocol: the shadow word was locked (or read-pinned) by
	// another transaction.
	ConflictLockFail ConflictKind = iota
	// ConflictUpgrade is a 2PL shared→exclusive upgrade refused because
	// other readers still pin the tuple.
	ConflictUpgrade
	// ConflictTSOrder is a timestamp-ordering rejection: the tuple's write
	// timestamp already passed the transaction's, so reading or writing it
	// would violate TO serial order.
	ConflictTSOrder
	// ConflictTornRead is an optimistic read invalidated by a concurrent
	// writer changing the shadow word mid-copy.
	ConflictTornRead
	// ConflictValidation is an OCC validation failure at commit: a read-set
	// tuple changed, or its lock could not be taken for the write phase.
	ConflictValidation
	// ConflictSpinWait is a snapshot read stalling behind a mid-apply
	// writer (the only true wait in the no-wait engine); its WaitNanos
	// carry the virtual stall time.
	ConflictSpinWait
	// ConflictDetBarrier is a deterministic group-mode attempt rejected by
	// the round barrier's replay validation.
	ConflictDetBarrier

	NumConflictKinds = 7
)

// ConflictKindNames maps ConflictKind to its report label.
var ConflictKindNames = [NumConflictKinds]string{
	"lock-fail", "upgrade", "ts-order", "torn-read", "validation", "spin-wait", "det-barrier",
}

func (k ConflictKind) String() string {
	if int(k) < len(ConflictKindNames) {
		return ConflictKindNames[k]
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// NumPopBuckets is the number of log2 key-popularity buckets: bucket i
// means the conflicting key had been touched between 2^(i-1) and 2^i-1
// times by the reporting worker (bucket 0 = never seen before).
const NumPopBuckets = 33

// AttributionRow is one cell of the conflict-attribution table: how often a
// (table, popularity bucket, CC algorithm, conflict kind) combination
// conflicted, how long those conflicts stalled, and the slowest transaction
// that hit the bucket (when the tracer was armed alongside the observatory).
type AttributionRow struct {
	Table     string    `json:"table"`
	PopBucket int       `json:"pop_bucket"`
	Algo      string    `json:"algo"`
	Kind      string    `json:"kind"`
	Conflicts uint64    `json:"conflicts"`
	WaitNanos uint64    `json:"wait_nanos,omitempty"`
	Exemplar  *Exemplar `json:"exemplar,omitempty"`
}

// HeatDump is the merged key-space heat sketch: a power-of-two hash ring
// where every (table, slot) — or flushed tuple — hashes to one bucket, with
// separate density counters for lock conflicts, version (timestamp /
// validation) conflicts, and flush traffic.
type HeatDump struct {
	Buckets int      `json:"buckets"`
	Lock    []uint64 `json:"lock"`
	Version []uint64 `json:"version"`
	Flush   []uint64 `json:"flush"`
}

// FlushAmpRow is per-table flush-amplification accounting: logical bytes
// the application committed vs the cache-line and media churn they caused.
type FlushAmpRow struct {
	Table string `json:"table"`
	// LogicalBytes counts committed write-set payload bytes.
	LogicalBytes uint64 `json:"logical_bytes"`
	// ClwbLines counts dirty 64 B lines written back by explicit CLWB;
	// TrainLines the lines covered by hinted flush trains; EvictLines the
	// dirty lines pushed out by cache capacity replacement.
	ClwbLines  uint64 `json:"clwb_lines"`
	TrainLines uint64 `json:"train_lines"`
	EvictLines uint64 `json:"evict_lines"`
	// XPFullEvicts / XPPartialEvicts count 256 B XPBuffer block evictions
	// attributed to this table's address range; partial evictions cost a
	// read-modify-write.
	XPFullEvicts    uint64 `json:"xp_full_evicts"`
	XPPartialEvicts uint64 `json:"xp_partial_evicts"`
}

// FlushedBytes is the total line-granularity writeback volume.
func (r FlushAmpRow) FlushedBytes() uint64 {
	return 64 * (r.ClwbLines + r.TrainLines + r.EvictLines)
}

// Amplification is flushed bytes per logical byte (0 when nothing logical
// was written — e.g. the WAL region, whose logical volume is tracked by
// WALStats.BytesLogged instead).
func (r FlushAmpRow) Amplification() float64 {
	if r.LogicalBytes == 0 {
		return 0
	}
	return float64(r.FlushedBytes()) / float64(r.LogicalBytes)
}

// WaitForEdge is one edge of the lock wait-for graph: Waiter conflicted on
// a tuple whose shadow word named a transaction of Holder. In a no-wait
// engine the edge means "aborted because of", the causal equivalent of a
// blocking wait.
type WaitForEdge struct {
	Waiter int    `json:"waiter"`
	Holder int    `json:"holder"`
	Count  uint64 `json:"count"`
	// Table / Slot sample the most recent conflicting tuple on this edge.
	Table string `json:"table,omitempty"`
	Slot  uint64 `json:"slot"`
}

// WaitForVertex summarizes one worker's position in the wait-for graph.
type WaitForVertex struct {
	Worker int `json:"worker"`
	// In counts conflicts this worker caused (it held the contended word);
	// Out counts conflicts it suffered.
	In  uint64 `json:"in"`
	Out uint64 `json:"out"`
}

// WaitForDump is an on-demand snapshot of the worker-level wait-for graph,
// with cycle and hot-vertex detection. In deterministic group mode the dump
// is byte-identical across host schedules; Rounds counts the group
// scheduler's replay barriers observed while armed.
type WaitForDump struct {
	Workers int           `json:"workers"`
	Rounds  uint64        `json:"rounds,omitempty"`
	Edges   []WaitForEdge `json:"edges,omitempty"`
	// Cycles lists the elementary worker cycles present in the edge set,
	// each rotated to start at its smallest worker id and sorted.
	Cycles [][]int `json:"cycles,omitempty"`
	// Hot lists vertices ordered by In (most-blamed worker first).
	Hot []WaitForVertex `json:"hot,omitempty"`
}

// ContentionStats is the observatory's report, assembled from the
// per-worker shards at snapshot time and exported through obs.Snapshot.
type ContentionStats struct {
	// Algo is the engine's configured CC algorithm (every row repeats it so
	// rows from different runs can be merged downstream).
	Algo        string           `json:"algo"`
	Attribution []AttributionRow `json:"attribution,omitempty"`
	Heat        *HeatDump        `json:"heat,omitempty"`
	FlushAmp    []FlushAmpRow    `json:"flush_amp,omitempty"`
	// WALFlushLines counts log-region lines flushed by the WAL's own drain
	// path (persist trains and per-commit CLWBs); WALGroupWaitNanos the
	// virtual time spent stalled on group-commit slot reclaim.
	WALFlushLines     uint64 `json:"wal_flush_lines,omitempty"`
	WALGroupWaitNanos uint64 `json:"wal_group_wait_nanos,omitempty"`
	// BankEvictions counts XPBuffer evictions per bank (set index);
	// SetContention is the distribution of those per-bank counts — a wide
	// spread means a few sets take all the eviction pressure.
	BankEvictions []uint64      `json:"bank_evictions,omitempty"`
	SetContention HistogramDump `json:"set_contention,omitempty"`
	WaitFor       *WaitForDump  `json:"wait_for,omitempty"`
}

// TotalConflicts sums the attribution counters.
func (c *ContentionStats) TotalConflicts() uint64 {
	var n uint64
	for _, r := range c.Attribution {
		n += r.Conflicts
	}
	return n
}

// Sub returns the observation window s - o. The observatory is armed after
// the warmup baseline is taken, so o is normally nil and s passes through;
// a non-nil o diffs the counter tables row-wise (exemplars, heat sketches
// and graph dumps pass through from s — they are point-in-time captures).
func (c *ContentionStats) Sub(o *ContentionStats) *ContentionStats {
	if c == nil || o == nil {
		return c
	}
	key := func(r AttributionRow) string {
		return fmt.Sprintf("%s\x00%d\x00%s", r.Table, r.PopBucket, r.Kind)
	}
	prev := make(map[string]AttributionRow, len(o.Attribution))
	for _, r := range o.Attribution {
		prev[key(r)] = r
	}
	out := *c
	out.Attribution = make([]AttributionRow, 0, len(c.Attribution))
	for _, r := range c.Attribution {
		if p, ok := prev[key(r)]; ok {
			r.Conflicts -= p.Conflicts
			r.WaitNanos -= p.WaitNanos
		}
		if r.Conflicts > 0 || r.WaitNanos > 0 {
			out.Attribution = append(out.Attribution, r)
		}
	}
	out.WALFlushLines = c.WALFlushLines - o.WALFlushLines
	out.WALGroupWaitNanos = c.WALGroupWaitNanos - o.WALGroupWaitNanos
	return &out
}

// heatGlyphs renders relative density; index scales with count/max.
var heatGlyphs = []rune{'·', '░', '▒', '▓', '█'}

func glyph(count, max uint64) rune {
	if count == 0 || max == 0 {
		return ' '
	}
	i := int(count * uint64(len(heatGlyphs)-1) / max)
	if i == 0 {
		i = 1 // nonzero counts always render visibly
	}
	return heatGlyphs[i]
}

// HeatMarkdown renders the heat sketch as a markdown table: one row per
// density map, one column per ring bucket group, using block glyphs scaled
// to each map's own maximum. cols caps the table width; adjacent ring
// buckets are folded together to fit.
func (h *HeatDump) HeatMarkdown(cols int) string {
	if h == nil || h.Buckets == 0 {
		return ""
	}
	if cols <= 0 || cols > h.Buckets {
		cols = h.Buckets
	}
	fold := func(src []uint64) []uint64 {
		per := (h.Buckets + cols - 1) / cols
		out := make([]uint64, cols)
		for i, v := range src {
			out[i/per] += v
		}
		return out
	}
	var b strings.Builder
	b.WriteString("| map | ring (hash buckets, low→high) | total |\n")
	b.WriteString("|---|---|---|\n")
	for _, m := range []struct {
		name string
		data []uint64
	}{{"lock", h.Lock}, {"version", h.Version}, {"flush", h.Flush}} {
		folded := fold(m.data)
		var max, total uint64
		for _, v := range folded {
			total += v
			if v > max {
				max = v
			}
		}
		b.WriteString("| " + m.name + " | `")
		for _, v := range folded {
			b.WriteRune(glyph(v, max))
		}
		fmt.Fprintf(&b, "` | %d |\n", total)
	}
	return b.String()
}

// Text renders the report as an aligned block in the Snapshot.Text style.
func (c *ContentionStats) Text() string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "contend   algo %s  conflicts %d\n", c.Algo, c.TotalConflicts())
	top := c.Attribution
	if len(top) > 8 {
		top = top[:8]
	}
	for _, r := range top {
		fmt.Fprintf(&b, "  %-14s pop2^%-2d %-11s %8d", r.Table, r.PopBucket, r.Kind, r.Conflicts)
		if r.WaitNanos > 0 {
			fmt.Fprintf(&b, "  wait %d ns", r.WaitNanos)
		}
		b.WriteByte('\n')
	}
	for _, r := range c.FlushAmp {
		fmt.Fprintf(&b, "  flush-amp %-12s logical %d B  clwb %d  train %d  evict %d lines  xp %d/%d  amp %.2f\n",
			r.Table, r.LogicalBytes, r.ClwbLines, r.TrainLines, r.EvictLines,
			r.XPFullEvicts, r.XPPartialEvicts, r.Amplification())
	}
	if c.WALFlushLines > 0 || c.WALGroupWaitNanos > 0 {
		fmt.Fprintf(&b, "  wal       flush lines %d  group-wait %d ns\n", c.WALFlushLines, c.WALGroupWaitNanos)
	}
	if c.WaitFor != nil && len(c.WaitFor.Edges) > 0 {
		fmt.Fprintf(&b, "  wait-for  %d workers  %d edges  %d cycles  %d rounds\n",
			c.WaitFor.Workers, len(c.WaitFor.Edges), len(c.WaitFor.Cycles), c.WaitFor.Rounds)
	}
	return b.String()
}

// Autopsy renders the full human report for the -contend tool mode: top
// attribution buckets, heat tables, flush amplification, set contention,
// and the wait-for graph.
func (c *ContentionStats) Autopsy() string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "contention autopsy (%s): %d conflicts attributed\n", c.Algo, c.TotalConflicts())
	if len(c.Attribution) > 0 {
		b.WriteString("\ntop attribution buckets (table, popularity, kind):\n")
		top := c.Attribution
		if len(top) > 12 {
			top = top[:12]
		}
		for i, r := range top {
			fmt.Fprintf(&b, "  %2d. %-14s pop2^%-2d %-11s %8d conflicts", i+1, r.Table, r.PopBucket, r.Kind, r.Conflicts)
			if r.WaitNanos > 0 {
				fmt.Fprintf(&b, "  %d ns waited", r.WaitNanos)
			}
			if r.Exemplar != nil {
				fmt.Fprintf(&b, "  [exemplar: worker %d txn %d, %d ns, %d spans]",
					r.Exemplar.Worker, r.Exemplar.TID, r.Exemplar.End-r.Exemplar.Start, len(r.Exemplar.Events))
			}
			b.WriteByte('\n')
		}
	}
	if c.Heat != nil {
		b.WriteString("\nkey-space heat (lock vs version vs flush density):\n")
		b.WriteString(c.Heat.HeatMarkdown(64))
	}
	if len(c.FlushAmp) > 0 {
		b.WriteString("\nflush amplification per table:\n")
		b.WriteString("| table | logical B | clwb | train | evict | xp full/partial | amp |\n")
		b.WriteString("|---|---|---|---|---|---|---|\n")
		for _, r := range c.FlushAmp {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d/%d | %.2f |\n",
				r.Table, r.LogicalBytes, r.ClwbLines, r.TrainLines, r.EvictLines,
				r.XPFullEvicts, r.XPPartialEvicts, r.Amplification())
		}
	}
	if c.WALFlushLines > 0 || c.WALGroupWaitNanos > 0 {
		fmt.Fprintf(&b, "\nwal: %d flush lines, %d ns group-commit wait\n", c.WALFlushLines, c.WALGroupWaitNanos)
	}
	if c.SetContention.Count > 0 {
		fmt.Fprintf(&b, "\nxpbuffer set contention: %d banks, evictions/bank min %d max %d mean %.1f\n",
			c.SetContention.Count, c.SetContention.Min, c.SetContention.Max,
			float64(c.SetContention.Sum)/float64(c.SetContention.Count))
	}
	if c.WaitFor != nil {
		w := c.WaitFor
		fmt.Fprintf(&b, "\nwait-for graph: %d workers, %d edges", w.Workers, len(w.Edges))
		if w.Rounds > 0 {
			fmt.Fprintf(&b, ", %d det rounds", w.Rounds)
		}
		b.WriteByte('\n')
		for _, e := range w.Edges {
			fmt.Fprintf(&b, "  w%d -> w%d  ×%d", e.Waiter, e.Holder, e.Count)
			if e.Table != "" {
				fmt.Fprintf(&b, "  (last: %s slot %d)", e.Table, e.Slot)
			}
			b.WriteByte('\n')
		}
		for _, cyc := range w.Cycles {
			b.WriteString("  cycle:")
			for _, v := range cyc {
				fmt.Fprintf(&b, " w%d", v)
			}
			b.WriteByte('\n')
		}
		for _, v := range w.Hot {
			if v.In == 0 && v.Out == 0 {
				continue
			}
			fmt.Fprintf(&b, "  w%d blamed %d, suffered %d\n", v.Worker, v.In, v.Out)
		}
	}
	return b.String()
}

// DetectCycles finds the elementary cycles of the (small, worker-count
// sized) directed graph given as an edge list, each rotated to start at its
// minimum vertex, deduplicated and sorted. Exposed for the observatory's
// snapshot assembly and its tests.
func DetectCycles(workers int, edges []WaitForEdge) [][]int {
	adj := make([][]bool, workers)
	for i := range adj {
		adj[i] = make([]bool, workers)
	}
	for _, e := range edges {
		if e.Waiter >= 0 && e.Waiter < workers && e.Holder >= 0 && e.Holder < workers {
			adj[e.Waiter][e.Holder] = true
		}
	}
	seen := map[string]bool{}
	var cycles [][]int
	var path []int
	onPath := make([]bool, workers)
	var dfs func(start, v int)
	dfs = func(start, v int) {
		path = append(path, v)
		onPath[v] = true
		for next := 0; next < workers; next++ {
			if !adj[v][next] || next < start {
				continue // canonical: only walk cycles from their min vertex
			}
			if next == start {
				cyc := append([]int(nil), path...)
				k := fmt.Sprint(cyc)
				if !seen[k] {
					seen[k] = true
					cycles = append(cycles, cyc)
				}
				continue
			}
			if !onPath[next] {
				dfs(start, next)
			}
		}
		onPath[v] = false
		path = path[:len(path)-1]
	}
	for start := 0; start < workers; start++ {
		dfs(start, start)
	}
	sort.Slice(cycles, func(i, j int) bool {
		a, b := cycles[i], cycles[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return cycles
}
