package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4, the subset OpenMetrics accepts): counters get a
// `_total` suffix, histograms render cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`, and every family is announced by `# HELP` and
// `# TYPE` lines before its first sample. labels (optional) are attached to
// every sample — sweep tools label each cell so one scrape file carries the
// whole grid.
//
// The writer has no dependency on a Prometheus client library; the format
// is simple enough to emit (and grammar-check) directly.
func WritePrometheus(w io.Writer, s Snapshot, labels map[string]string) error {
	p := promWriter{w: w, base: formatLabels(labels)}
	promSnapshot(&p, s)
	return p.flush()
}

// NamedSnapshot labels one cell's snapshot for a multi-cell exposition.
type NamedSnapshot struct {
	Label string
	Snap  Snapshot
}

// WritePrometheusCells renders several labelled snapshots as ONE exposition:
// every sample carries a `cell` label, and each metric family is announced by
// a single HELP/TYPE header no matter how many cells contribute to it (the
// format forbids repeating a family's header mid-file, so concatenating
// per-cell WritePrometheus outputs would not parse).
func WritePrometheusCells(w io.Writer, cells []NamedSnapshot) error {
	var p promWriter
	p.w = w
	for _, c := range cells {
		p.base = formatLabels(map[string]string{"cell": c.Label})
		promSnapshot(&p, c.Snap)
	}
	return p.flush()
}

func promSnapshot(p *promWriter, s Snapshot) {
	p.counter("falcon_commits_total", "Committed transactions.", nil, s.Commits)
	p.counter("falcon_aborts_total", "Aborted transaction attempts.", nil, s.Aborts)
	for i, n := range s.AbortCounts {
		p.counter("falcon_aborts_by_reason_total", "Aborted attempts by taxonomy reason.",
			map[string]string{"reason": AbortReasonNames[i]}, n)
	}
	for i, n := range s.PhaseNanos {
		p.counter("falcon_phase_nanos_total", "Virtual nanoseconds per commit-path phase.",
			map[string]string{"phase": PhaseNames[i]}, n)
	}

	p.counter("falcon_wal_begins_total", "Claimed log-window transaction slots.", nil, s.WAL.Begins)
	p.counter("falcon_wal_wraps_total", "Slot claims that reused an occupied slot.", nil, s.WAL.Wraps)
	p.counter("falcon_wal_commits_total", "Published log records.", nil, s.WAL.Commits)
	p.counter("falcon_wal_aborts_total", "Discarded log records.", nil, s.WAL.Aborts)
	p.counter("falcon_wal_bytes_logged_total", "Record payload bytes appended.", nil, s.WAL.BytesLogged)
	p.counter("falcon_wal_overflows_total", "Records spilled to the overflow region.", nil, s.WAL.Overflows)
	p.gauge("falcon_wal_slot_bytes", "Configured per-slot log capacity.", nil, s.WAL.SlotBytes)
	p.gauge("falcon_wal_max_record_bytes", "Largest single log record.", nil, s.WAL.MaxRecordBytes)

	p.counter("falcon_hot_set_hits_total", "Selective-flush elisions (hot-set hits).", nil, s.Hot.Hits)
	p.counter("falcon_hot_set_misses_total", "Hot-set misses (tuples flushed).", nil, s.Hot.Misses)
	p.counter("falcon_hot_set_evictions_total", "Hot-set LRU evictions.", nil, s.Hot.Evictions)

	names := make([]string, 0, len(s.Tables))
	for name := range s.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.Tables[name]
		l := map[string]string{"table": name}
		p.counter("falcon_table_reads_total", "Tuple read attempts per table.", l, t.Reads)
		p.counter("falcon_table_writes_total", "Write-set entries applied per table.", l, t.Writes)
		p.counter("falcon_table_versions_total", "Versions installed per table.", l, t.Versions)
		p.counter("falcon_table_index_probes_total", "Index lookups per table.", l, t.IndexProbes)
	}

	p.counter("falcon_pmem_media_reads_total", "256B media block reads.", nil, s.Mem.MediaReads)
	p.counter("falcon_pmem_media_writes_total", "256B media block writes.", nil, s.Mem.MediaWrites)
	p.counter("falcon_pmem_full_block_writes_total", "Media writes with a fully buffered block.", nil, s.Mem.FullBlockWrites)
	p.counter("falcon_pmem_partial_block_writes_total", "Read-modify-write media writes.", nil, s.Mem.PartialBlockWrites)
	p.counter("falcon_pmem_cache_hits_total", "Persistent-cache line hits.", nil, s.Mem.CacheHits)
	p.counter("falcon_pmem_cache_misses_total", "Persistent-cache line misses.", nil, s.Mem.CacheMisses)
	p.counter("falcon_pmem_dirty_evictions_total", "Dirty lines written back by replacement.", nil, s.Mem.DirtyEvictions)
	p.counter("falcon_pmem_clwb_writebacks_total", "Dirty lines written back by explicit CLWB.", nil, s.Mem.ClwbWritebacks)
	p.counter("falcon_pmem_flush_trains_total", "Hinted multi-line flush trains.", nil, s.Mem.FlushTrains)
	p.counter("falcon_pmem_flush_train_lines_total", "Lines covered by flush trains.", nil, s.Mem.FlushTrainLines)
	p.counter("falcon_pmem_bytes_stored_total", "Application bytes stored.", nil, s.Mem.BytesStored)
	p.counter("falcon_pmem_bytes_to_media_total", "Bytes physically written to media.", nil, s.Mem.BytesToMedia)

	if s.Epochs.Records > 0 || s.Epochs.Sealed > 0 {
		p.counter("falcon_epochs_sealed_total", "Sealed group-commit durability epochs.", nil, s.Epochs.Sealed)
		p.counter("falcon_epochs_records_total", "Transactions published into epochs.", nil, s.Epochs.Records)
		p.counter("falcon_epochs_forced_seals_total", "Slot-reclaim waits that sealed an epoch early.", nil, s.Epochs.ForcedSeals)
		p.histogram("falcon_epoch_size_records", "Records per sealed durability epoch.", nil, s.Epochs.EpochSize)
		p.histogram("falcon_epoch_durable_lag_nanos", "Publish-to-seal virtual nanoseconds per record.", nil, s.Epochs.DurableLag)
	}

	if sv := s.Server; sv != nil {
		eps := make([]string, 0, len(sv.Endpoints))
		for name := range sv.Endpoints {
			eps = append(eps, name)
		}
		sort.Strings(eps)
		for _, name := range eps {
			ep := sv.Endpoints[name]
			l := map[string]string{"endpoint": name}
			p.counter("falcon_server_requests_total", "Requests that reached the endpoint (accepted or shed).", l, ep.Requests)
			p.counter("falcon_server_ok_total", "Requests answered successfully.", l, ep.OK)
			p.counter("falcon_server_errors_total", "Requests failed with an engine or protocol error.", l, ep.Errors)
			p.counter("falcon_server_shed_total", "Admission rejections by cause.",
				map[string]string{"endpoint": name, "reason": "queue"}, ep.ShedQueue)
			p.counter("falcon_server_shed_total", "Admission rejections by cause.",
				map[string]string{"endpoint": name, "reason": "deadline"}, ep.ShedDeadline)
			p.counter("falcon_server_shed_total", "Admission rejections by cause.",
				map[string]string{"endpoint": name, "reason": "draining"}, ep.ShedDraining)
			p.counter("falcon_server_expired_total", "Admitted requests whose deadline passed before completion.", l, ep.Expired)
			p.counter("falcon_server_replayed_total", "Retries answered from the idempotency table.", l, ep.Replayed)
			if ep.Latency.Count > 0 {
				p.histogram("falcon_server_latency_nanos", "Accepted-request service time in host nanoseconds.", l, ep.Latency)
			}
		}
		p.gauge("falcon_server_queue_depth", "Admission queue occupancy.", nil, sv.QueueDepth)
		p.gauge("falcon_server_queue_cap", "Admission queue bound.", nil, sv.QueueCap)
		p.gauge("falcon_server_workers", "Worker pool size.", nil, sv.Workers)
		p.gauge("falcon_server_est_service_nanos", "EWMA service-time estimate driving deadline-aware rejection.", nil, sv.EstServiceNanos)
		draining := uint64(0)
		if sv.Draining {
			draining = 1
		}
		p.gauge("falcon_server_draining", "1 while the server refuses new admissions.", nil, draining)
	}

	if c := s.Contend; c != nil {
		for _, r := range c.Attribution {
			l := map[string]string{
				"table": r.Table, "pop": fmt.Sprint(r.PopBucket), "algo": r.Algo, "kind": r.Kind,
			}
			p.counter("falcon_contend_conflicts_total", "Conflicts per (table, popularity, algo, kind).", l, r.Conflicts)
			if r.WaitNanos > 0 {
				p.counter("falcon_contend_wait_nanos_total", "Virtual nanoseconds stalled per attribution bucket.", l, r.WaitNanos)
			}
		}
		for _, r := range c.FlushAmp {
			l := map[string]string{"table": r.Table}
			p.counter("falcon_contend_logical_bytes_total", "Committed write-set payload bytes per table.", l, r.LogicalBytes)
			p.counter("falcon_contend_clwb_lines_total", "Explicit CLWB writeback lines per table.", l, r.ClwbLines)
			p.counter("falcon_contend_train_lines_total", "Flush-train writeback lines per table.", l, r.TrainLines)
			p.counter("falcon_contend_evict_lines_total", "Capacity-eviction writeback lines per table.", l, r.EvictLines)
			p.counter("falcon_contend_xp_evicts_total", "XPBuffer block evictions per table.",
				map[string]string{"table": r.Table, "mode": "full"}, r.XPFullEvicts)
			p.counter("falcon_contend_xp_evicts_total", "XPBuffer block evictions per table.",
				map[string]string{"table": r.Table, "mode": "partial"}, r.XPPartialEvicts)
		}
		p.counter("falcon_contend_wal_flush_lines_total", "Log-region lines flushed by the WAL drain path.", nil, c.WALFlushLines)
		p.counter("falcon_contend_wal_group_wait_nanos_total", "Virtual nanoseconds stalled on group-commit slot reclaim.", nil, c.WALGroupWaitNanos)
		if c.SetContention.Count > 0 {
			p.histogram("falcon_contend_xp_set_evictions", "Evictions per XPBuffer bank (set-contention spread).", nil, c.SetContention)
		}
		if c.WaitFor != nil {
			p.gauge("falcon_contend_waitfor_edges", "Edges in the worker wait-for graph.", nil, uint64(len(c.WaitFor.Edges)))
			p.gauge("falcon_contend_waitfor_cycles", "Elementary cycles in the wait-for graph.", nil, uint64(len(c.WaitFor.Cycles)))
			p.counter("falcon_contend_det_rounds_total", "Deterministic group-scheduler replay barriers observed.", nil, c.WaitFor.Rounds)
		}
	}
}

// promFamily buffers one metric family: its HELP/TYPE header and every
// sample line, so a family's samples render as one contiguous group no
// matter what order the snapshot walk produced them in (the exposition
// format requires all lines of a metric to appear together).
type promFamily struct {
	name, typ, help string
	lines           []string
}

// promWriter accumulates families in first-seen order and writes them out
// grouped on flush.
type promWriter struct {
	w        io.Writer
	base     string
	families []*promFamily
	byName   map[string]*promFamily
}

func (p *promWriter) family(name, typ, help string) *promFamily {
	if f, ok := p.byName[name]; ok {
		return f
	}
	if p.byName == nil {
		p.byName = map[string]*promFamily{}
	}
	f := &promFamily{name: name, typ: typ, help: help}
	p.byName[name] = f
	p.families = append(p.families, f)
	return f
}

func (p *promWriter) sample(f *promFamily, suffix string, labels map[string]string, v uint64) {
	l := mergeLabels(p.base, labels)
	if l != "" {
		f.lines = append(f.lines, fmt.Sprintf("%s%s{%s} %d", f.name, suffix, l, v))
	} else {
		f.lines = append(f.lines, fmt.Sprintf("%s%s %d", f.name, suffix, v))
	}
}

func (p *promWriter) counter(name, help string, labels map[string]string, v uint64) {
	p.sample(p.family(name, "counter", help), "", labels, v)
}

func (p *promWriter) gauge(name, help string, labels map[string]string, v uint64) {
	p.sample(p.family(name, "gauge", help), "", labels, v)
}

// histogram renders a HistogramDump as cumulative le-buckets. The dump's
// buckets are disjoint [Lo, Hi] ranges in ascending order, so the running
// sum gives the cumulative count at each upper bound.
func (p *promWriter) histogram(name, help string, labels map[string]string, d HistogramDump) {
	f := p.family(name, "histogram", help)
	withLE := func(le string) map[string]string {
		bl := map[string]string{"le": le}
		for k, v := range labels {
			bl[k] = v
		}
		return bl
	}
	var cum uint64
	for _, b := range d.Buckets {
		cum += b.Count
		p.sample(f, "_bucket", withLE(fmt.Sprint(b.Hi)), cum)
	}
	p.sample(f, "_bucket", withLE("+Inf"), d.Count)
	p.sample(f, "_sum", labels, d.Sum)
	p.sample(f, "_count", labels, d.Count)
}

func (p *promWriter) flush() error {
	for _, f := range p.families {
		if _, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(p.w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatLabels renders a label map in canonical (sorted-key) order.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	return b.String()
}

func mergeLabels(base string, extra map[string]string) string {
	e := formatLabels(extra)
	switch {
	case base == "":
		return e
	case e == "":
		return base
	default:
		return base + "," + e
	}
}

// escapeLabel escapes backslash, double-quote and newline per the format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
