package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestEndpointStatsAddSub(t *testing.T) {
	var h1, h2 Histogram
	h1.Observe(100)
	h1.Observe(200)
	h2.Observe(400)

	a := EndpointStats{Requests: 10, OK: 8, Errors: 1, ShedQueue: 1, Latency: h1.Dump()}
	b := EndpointStats{Requests: 4, OK: 3, ShedDeadline: 1, Replayed: 2, Latency: h2.Dump()}
	sum := a
	sum.Add(b)
	if sum.Requests != 14 || sum.OK != 11 || sum.Errors != 1 || sum.Replayed != 2 {
		t.Fatalf("Add: %+v", sum)
	}
	if sum.Shed() != 2 {
		t.Fatalf("Shed() = %d, want 2", sum.Shed())
	}
	if sum.Latency.Count != 3 || sum.Latency.Sum != 700 || sum.Latency.Min != 100 || sum.Latency.Max != 400 {
		t.Fatalf("merged latency: %+v", sum.Latency)
	}

	diff := sum.Sub(a)
	if diff.Requests != 4 || diff.OK != 3 || diff.ShedDeadline != 1 || diff.Replayed != 2 {
		t.Fatalf("Sub: %+v", diff)
	}
}

func TestHistogramDumpMerge(t *testing.T) {
	var h1, h2 Histogram
	for _, v := range []uint64{0, 1, 5, 5, 1000} {
		h1.Observe(v)
	}
	for _, v := range []uint64{5, 2000} {
		h2.Observe(v)
	}
	var ref Histogram
	ref.Merge(&h1)
	ref.Merge(&h2)
	got := h1.Dump().Merge(h2.Dump())
	want := ref.Dump()
	if got.Count != want.Count || got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("summary mismatch: got %+v want %+v", got, want)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("bucket count: got %d want %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range got.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: got %+v want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
	if d := (HistogramDump{}).Merge(HistogramDump{}); d.Count != 0 {
		t.Fatal("empty merge not empty")
	}
}

func TestServerStatsSubNilSafe(t *testing.T) {
	var nilStats *ServerStats
	if nilStats.Sub(nil) != nil {
		t.Fatal("nil.Sub(nil) != nil")
	}
	s := &ServerStats{Endpoints: map[string]EndpointStats{"/v1/txn": {Requests: 5}}}
	if got := s.Sub(nil); got != s {
		t.Fatal("s.Sub(nil) should pass s through")
	}
	base := &ServerStats{Endpoints: map[string]EndpointStats{"/v1/txn": {Requests: 2}}}
	diff := s.Sub(base)
	if diff.Endpoints["/v1/txn"].Requests != 3 {
		t.Fatalf("diff = %+v", diff.Endpoints["/v1/txn"])
	}
}

func TestSnapshotServerRendering(t *testing.T) {
	var s Snapshot
	s.Server = &ServerStats{
		Endpoints: map[string]EndpointStats{
			"/v1/txn": {Requests: 9, OK: 7, ShedQueue: 2},
		},
		QueueDepth: 1, QueueCap: 8, Workers: 2,
	}
	txt := s.Text()
	if !strings.Contains(txt, "server") || !strings.Contains(txt, "/v1/txn") {
		t.Fatalf("Text missing server block:\n%s", txt)
	}

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["server"]; !ok {
		t.Fatal("JSON missing server key")
	}

	// Snapshot.Sub must carry the server block through nil-safely.
	diff := s.Sub(Snapshot{})
	if diff.Server == nil || diff.Server.Endpoints["/v1/txn"].Requests != 9 {
		t.Fatalf("Sub dropped server stats: %+v", diff.Server)
	}
}

func TestWritePrometheusServerFamilies(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, promTestSnapshot(), nil); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`falcon_server_requests_total{endpoint="/v1/txn"} 500`,
		`falcon_server_shed_total{endpoint="/v1/txn",reason="queue"} 30`,
		`falcon_server_shed_total{endpoint="/v1/txn",reason="deadline"} 10`,
		`falcon_server_replayed_total{endpoint="/v1/txn"} 12`,
		`falcon_server_latency_nanos_count{endpoint="/v1/txn"} 5`,
		"falcon_server_queue_depth 7",
		"falcon_server_draining 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
