package obs

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(12345)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 12345 {
			t.Errorf("q=%v: got %d, want exact 12345 (min/max clamp)", q, got)
		}
	}
	if h.Mean() != 12345 {
		t.Errorf("mean = %d, want 12345", h.Mean())
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	if h.Quantile(0.95) != 0 || h.Mean() != 0 || h.Count() != 2 {
		t.Error("zero samples must stay zero")
	}
}

// TestHistogramQuantileWithinBucket checks the documented error bound: the
// histogram quantile lands within one log2 bucket of the exact nearest-rank
// quantile.
func TestHistogramQuantileWithinBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]uint64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Skewed latencies across several decades, like commit latencies.
		v := uint64(rng.ExpFloat64() * 50000)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := samples[int(float64(len(samples))*q)]
		got := h.Quantile(q)
		// One-bucket bound: got and exact share a bucket or are within 2x.
		if got > 2*exact+1 || exact > 2*got+1 {
			t.Errorf("q=%v: got %d, exact %d — outside one-bucket bound", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(1); i <= 100; i++ {
		a.Observe(i)
	}
	for i := uint64(101); i <= 200; i++ {
		b.Observe(i)
	}
	a.Merge(&b)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merge: count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	if got := a.Quantile(0.5); got < 64 || got > 200 {
		t.Errorf("median after merge = %d, want within a bucket of ~100", got)
	}
	var empty Histogram
	empty.Merge(&a)
	if empty.Count() != 200 || empty.Min() != 1 {
		t.Error("merge into empty must copy min/max")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Quantile(1) != 0 {
		t.Error("reset must clear everything")
	}
}

func TestHistogramDump(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 5, 300} {
		h.Observe(v)
	}
	d := h.Dump()
	if d.Count != 5 || d.Sum != 307 || d.Min != 0 || d.Max != 300 {
		t.Fatalf("summary = %+v", d)
	}
	// 0 → bucket [0,0]; 1,1 → [1,1]; 5 → [4,7]; 300 → [256,511].
	want := []HistBucket{{0, 0, 1}, {1, 1, 2}, {4, 7, 1}, {256, 511, 1}}
	if len(d.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", d.Buckets, want)
	}
	var total uint64
	for i, b := range d.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
		total += b.Count
	}
	if total != d.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, d.Count)
	}

	if empty := new(Histogram).Dump(); empty.Count != 0 || empty.Buckets != nil {
		t.Errorf("empty dump = %+v", empty)
	}
}
