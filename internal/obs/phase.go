// Package obs is the engine-wide observability layer: commit-path phase
// accounting in virtual nanoseconds, an abort-reason taxonomy, log2-bucketed
// latency histograms, and a unified registry that snapshots everything
// (including the pmem hardware counters) into one diffable struct.
//
// The paper's argument is an accounting argument — where commit-path
// nanoseconds go (log append vs. data flush) and where media writes come from
// (partial vs. full blocks, hot-tuple elision). This package is the
// instrument that makes those breakdowns observable without ad-hoc test code.
//
// Everything here follows the ownership rules of package sim: per-worker
// accumulators (PhaseSet, WALStats, HotSetStats) are written by exactly one
// worker goroutine and may be read by others only after the workers have
// stopped. Cross-worker counters (AbortCounts) are atomic.
package obs

import "falcon/internal/sim"

// Phase identifies one segment of a transaction's virtual-time budget. The
// phases partition a transaction completely: every virtual nanosecond a
// worker clock advances between Begin and commit/abort is attributed to
// exactly one phase, so the per-phase sums add up to the total transactional
// virtual time.
type Phase uint8

const (
	// PhaseExec is transaction execution: index probes, tuple reads, write
	// buffering, and everything not claimed by a more specific phase.
	PhaseExec Phase = iota
	// PhaseCC is concurrency control: lock acquisition, OCC validation, and
	// lock release.
	PhaseCC
	// PhaseLogAppend is redo-log work: window claim, op appends, and the
	// commit record (or the out-of-place commit marker, its moral equivalent).
	PhaseLogAppend
	// PhaseHeapWrite is applying the write set to the tuple heap: in-place
	// overwrites, out-of-place version materialization, timestamps, and
	// version-store publication/GC.
	PhaseHeapWrite
	// PhaseIndexUpdate is commit-time index maintenance: inserts, deletes,
	// and out-of-place repointing.
	PhaseIndexUpdate
	// PhaseFlush is the hinted data flush: clwb over touched tuples plus the
	// hot-set bookkeeping that decides whether to skip them.
	PhaseFlush
	// PhaseAbort is rollback work: log discard, lock restore, insert-slot
	// recycling, and the abort overhead charge.
	PhaseAbort
	// PhaseGroupWait is group-commit durability stalls: the bounded wait a
	// worker pays when it must reclaim a log slot whose record belongs to a
	// durability epoch that has not been sealed yet (the epoch timeout is the
	// bound), plus the forced seal that releases the slot.
	PhaseGroupWait

	// The remaining phases partition recovery (core.Recover) rather than a
	// transaction: restart-path virtual time reported from the same registry
	// as the commit path, so `falcon-recovery -stats` shows both.

	// PhaseRecCatalog is reading the durable catalog and reattaching table
	// heaps and log windows.
	PhaseRecCatalog
	// PhaseRecIndex is opening NVM indexes or allocating fresh DRAM ones.
	PhaseRecIndex
	// PhaseRecReplay is scanning log windows and replaying committed records.
	PhaseRecReplay
	// PhaseRecHeapScan is heap-order scanning: rebuilding DRAM indexes and
	// the out-of-place engines' full-heap recovery pass.
	PhaseRecHeapScan

	// NumPhases is the number of phases (array sizing).
	NumPhases = int(PhaseRecHeapScan) + 1
)

// PhaseNames maps Phase values to stable short names (rendering, JSON).
var PhaseNames = [NumPhases]string{
	"exec", "cc", "log-append", "heap-write", "index-update", "flush", "abort",
	"group-wait",
	"rec-catalog", "rec-index", "rec-replay", "rec-heap-scan",
}

func (p Phase) String() string {
	if int(p) < NumPhases {
		return PhaseNames[p]
	}
	return "unknown"
}

// PhaseSet accumulates virtual nanoseconds per phase for one worker. Like
// sim.Clock it is single-owner: only the owning worker updates it, and other
// goroutines may read it only once the worker has stopped. The padding keeps
// adjacent workers' sets off one cache line.
type PhaseSet struct {
	nanos [NumPhases]uint64
	_     [1]uint64
}

// Nanos returns the accumulated virtual nanoseconds for phase p.
func (s *PhaseSet) Nanos(p Phase) uint64 { return s.nanos[p] }

// Reset zeroes the accumulator (between benchmark phases).
func (s *PhaseSet) Reset() { s.nanos = [NumPhases]uint64{} }

// AddTo sums this set into dst (snapshot aggregation across workers).
func (s *PhaseSet) AddTo(dst *[NumPhases]uint64) {
	for i, n := range s.nanos {
		dst[i] += n
	}
}

// PhaseTimer attributes a worker clock's advances to phases. It is a plain
// value (zero allocations) wrapped around the existing sim.Clock: switching
// phases costs two clock reads and one add. A timer with a nil PhaseSet is
// inert — every method is a cheap no-op — so uninstrumented runs pay near
// nothing.
//
// Usage is a flat state machine, not nested scopes: Start opens accounting
// in PhaseExec, To(p) closes the current segment and opens the next, and
// Finish closes the last segment. Call sites that may run under several
// phases restore the previous phase with the value To returns.
type PhaseTimer struct {
	ps   *PhaseSet
	clk  *sim.Clock
	tr   *WorkerTracer
	cur  Phase
	mark uint64
}

// Start binds the timer to a worker's PhaseSet and clock and opens
// accounting in PhaseExec. Any attached tracer is cleared; AttachTrace must
// follow Start when span capture is wanted.
func (t *PhaseTimer) Start(ps *PhaseSet, clk *sim.Clock) {
	t.ps, t.clk, t.tr, t.cur, t.mark = ps, clk, nil, PhaseExec, clk.Nanos()
}

// AttachTrace routes every closed phase segment to tr as an EvPhase span.
// The timer already knows each segment's boundaries, so attaching here
// instruments all phases with no extra call sites. A nil tr (the common,
// unarmed case) costs one pointer test per transition.
func (t *PhaseTimer) AttachTrace(tr *WorkerTracer) { t.tr = tr }

// To closes the current segment (attributing its virtual time to the current
// phase), opens a segment in p, and returns the phase that was current —
// so callers can restore it.
func (t *PhaseTimer) To(p Phase) Phase {
	if t.ps == nil {
		return p
	}
	now := t.clk.Nanos()
	t.ps.nanos[t.cur] += now - t.mark
	if t.tr != nil {
		t.tr.PhaseSeg(t.cur, t.mark, now)
	}
	prev := t.cur
	t.cur, t.mark = p, now
	return prev
}

// Finish closes the last segment and detaches the timer.
func (t *PhaseTimer) Finish() {
	if t.ps == nil {
		return
	}
	now := t.clk.Nanos()
	t.ps.nanos[t.cur] += now - t.mark
	if t.tr != nil {
		t.tr.PhaseSeg(t.cur, t.mark, now)
		t.tr = nil
	}
	t.ps = nil
}
