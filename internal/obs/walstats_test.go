package obs

import "testing"

// TestWALStatsGaugeRoundTrip pins the gauge semantics that the snapshot
// diffing in bench.Run depends on: counters subtract cleanly, while
// MaxRecordBytes (a max gauge) and SlotBytes (a config gauge) pass through
// Add/Sub without being zeroed or doubled.
func TestWALStatsGaugeRoundTrip(t *testing.T) {
	var sum WALStats
	sum.Add(WALStats{Begins: 3, Commits: 2, BytesLogged: 100, MaxRecordBytes: 60, SlotBytes: 1024})
	sum.Add(WALStats{Begins: 5, Commits: 4, BytesLogged: 300, MaxRecordBytes: 40})
	if sum.Begins != 8 || sum.Commits != 6 || sum.BytesLogged != 400 {
		t.Fatalf("counter sums wrong: %+v", sum)
	}
	if sum.MaxRecordBytes != 60 {
		t.Fatalf("MaxRecordBytes = %d, want max 60", sum.MaxRecordBytes)
	}
	if sum.SlotBytes != 1024 {
		t.Fatalf("SlotBytes = %d, want last non-zero 1024", sum.SlotBytes)
	}
	// A later Add with a fresh SlotBytes overrides; a zero one does not.
	sum.Add(WALStats{SlotBytes: 2048})
	sum.Add(WALStats{Begins: 1})
	if sum.SlotBytes != 2048 {
		t.Fatalf("SlotBytes = %d after override, want 2048", sum.SlotBytes)
	}

	baseline := WALStats{Begins: 4, Commits: 3, BytesLogged: 150, MaxRecordBytes: 60, SlotBytes: 2048}
	diff := sum.Sub(baseline)
	if diff.Begins != 5 || diff.Commits != 3 || diff.BytesLogged != 250 {
		t.Fatalf("counter diff wrong: %+v", diff)
	}
	if diff.MaxRecordBytes != 60 || diff.SlotBytes != 2048 {
		t.Fatalf("gauges must pass through Sub: %+v", diff)
	}
	if got := diff.MeanRecordBytes(); got != 250/3 {
		t.Fatalf("MeanRecordBytes = %d, want %d", got, 250/3)
	}
}

func TestTableStatsAddSub(t *testing.T) {
	var sum TableStats
	sum.Add(TableStats{Reads: 10, Writes: 4, Versions: 2, IndexProbes: 12})
	sum.Add(TableStats{Reads: 5, Writes: 1, IndexProbes: 3})
	diff := sum.Sub(TableStats{Reads: 6, Writes: 2, Versions: 1, IndexProbes: 10})
	want := TableStats{Reads: 9, Writes: 3, Versions: 1, IndexProbes: 5}
	if diff != want {
		t.Fatalf("diff = %+v, want %+v", diff, want)
	}
}

// TestSnapshotTableDiff checks that registry snapshots diff the per-table
// map key-wise (the bench warmup-exclusion path).
func TestSnapshotTableDiff(t *testing.T) {
	a := Snapshot{Tables: map[string]TableStats{
		"kv":   {Reads: 20, Writes: 10},
		"acct": {Reads: 4},
	}}
	b := Snapshot{Tables: map[string]TableStats{
		"kv": {Reads: 5, Writes: 5},
	}}
	d := a.Sub(b)
	if got := d.Tables["kv"]; got != (TableStats{Reads: 15, Writes: 5}) {
		t.Fatalf("kv diff = %+v", got)
	}
	if got := d.Tables["acct"]; got != (TableStats{Reads: 4}) {
		t.Fatalf("acct diff = %+v", got)
	}
}
