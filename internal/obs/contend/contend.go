// Package contend is the contention & flush-amplification observatory: a
// sharded, allocation-free event layer the concurrency-control paths, the
// WAL, and the simulated memory system report into while armed.
//
// Like every accumulator in this codebase the recorder follows the
// single-owner discipline: one Worker per worker goroutine, written only by
// its owner, merged into a canonical report while the workers are quiescent.
// In deterministic group mode every recorded quantity derives from
// virtual-time state, so the merged report is byte-identical across host
// schedules and GOMAXPROCS settings.
package contend

import (
	"math/bits"
	"sort"

	"falcon/internal/obs"
	"falcon/internal/pmem"
)

const (
	// popSketchBits sizes the per-worker key-popularity sketch (2^14
	// counters, 64 KiB per worker). Collisions over-estimate popularity —
	// acceptable for an attribution bucket index.
	popSketchBits = 14
	popMask       = 1<<popSketchBits - 1
	// heatBits sizes the key-space heat rings (256 buckets renders as a
	// four-row markdown table).
	heatBits = 8
	heatMask = 1<<heatBits - 1
)

// Config describes the engine the observatory attaches to.
type Config struct {
	// Workers is the worker-goroutine count (one recorder shard each).
	Workers int
	// Algo names the CC algorithm, repeated on every attribution row.
	Algo string
	// Tables maps table id to name for attribution and logical-byte rows.
	Tables []string
	// Banks is the XPBuffer bank count for set-contention accounting.
	Banks int
}

// rangeEntry maps one address range [lo, hi) to a flush-amplification cell.
type rangeEntry struct {
	lo, hi uint64
	cell   int
}

// Observatory owns the per-worker recorders and the address-range map that
// attributes flush traffic to tables. Construction and AddRange happen
// before arming; after that the struct is immutable except through the
// single-owner Worker shards and the barrier-serialized round counter.
type Observatory struct {
	cfg     Config
	ranges  []rangeEntry
	cells   []string // flush-amp cell names, in registration order
	workers []Worker
	// rounds counts deterministic group-scheduler replay barriers. The
	// barrier body is mutually exclusive and ordered (the same contract that
	// lets applyWriteSet run there), so a plain counter suffices.
	rounds uint64
}

// New builds an observatory for cfg. Worker counts below 1 are clamped so
// anonymous (setup/recovery) clocks always have a shard to land on.
func New(cfg Config) *Observatory {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	o := &Observatory{cfg: cfg, workers: make([]Worker, cfg.Workers)}
	for i := range o.workers {
		w := &o.workers[i]
		w.o = o
		w.id = i
		w.conflicts = make([][]uint64, len(cfg.Tables))
		w.waits = make([][]uint64, len(cfg.Tables))
		for t := range cfg.Tables {
			w.conflicts[t] = make([]uint64, obs.NumPopBuckets*obs.NumConflictKinds)
			w.waits[t] = make([]uint64, obs.NumPopBuckets*obs.NumConflictKinds)
		}
		w.pop = make([]uint32, 1<<popSketchBits)
		w.lockHeat = make([]uint64, 1<<heatBits)
		w.verHeat = make([]uint64, 1<<heatBits)
		w.flushHeat = make([]uint64, 1<<heatBits)
		w.edges = make([]waitEdge, cfg.Workers)
		w.logical = make([]uint64, len(cfg.Tables))
		if cfg.Banks > 0 {
			w.bankEv = make([]uint64, cfg.Banks)
		}
		w.ex = make(map[uint32]*exEntry)
	}
	return o
}

// AddRange registers an address range for flush-traffic attribution. Ranges
// sharing a name share a flush-amp cell (a table's heap plus its overflow
// area, say). Must be called before arming.
func (o *Observatory) AddRange(name string, lo, hi uint64) {
	cell := -1
	for i, n := range o.cells {
		if n == name {
			cell = i
			break
		}
	}
	if cell < 0 {
		cell = len(o.cells)
		o.cells = append(o.cells, name)
		for i := range o.workers {
			o.workers[i].flush = append(o.workers[i].flush, [5]uint64{})
		}
	}
	o.ranges = append(o.ranges, rangeEntry{lo: lo, hi: hi, cell: cell})
}

// Worker returns shard i's recorder (nil when out of range, mirroring
// Tracer.Worker so callers arm exactly the workers they have).
func (o *Observatory) Worker(i int) *Worker {
	if o == nil || i < 0 || i >= len(o.workers) {
		return nil
	}
	return &o.workers[i]
}

// BarrierTick records one deterministic group-scheduler replay barrier. It
// must only be called from barrier context (mutually exclusive, ordered).
func (o *Observatory) BarrierTick() {
	if o != nil {
		o.rounds++
	}
}

// PmemContend matches pmem.ContendFn: it routes the flush event to the
// causing clock's shard, attributes the address to a registered range, and
// feeds the flush heat ring and the XPBuffer set-contention counters.
func (o *Observatory) PmemContend(shard uint64, kind pmem.ContendKind, addr uint64) {
	if o == nil {
		return
	}
	if shard >= uint64(len(o.workers)) {
		shard = 0
	}
	w := &o.workers[shard]
	for _, r := range o.ranges {
		if addr >= r.lo && addr < r.hi {
			w.flush[r.cell][kind]++
			break
		}
	}
	w.flushHeat[mixAddr(addr/pmem.LineSize)&heatMask]++
	if (kind == pmem.ContendXPEvictFull || kind == pmem.ContendXPEvictPartial) && len(w.bankEv) > 0 {
		w.bankEv[(addr/pmem.BlockSize)%uint64(len(w.bankEv))]++
	}
}

// waitEdge accumulates one out-edge of the wait-for graph from the owning
// worker's perspective: how often it conflicted against the holder, and the
// most recent conflicting tuple.
type waitEdge struct {
	count uint64
	table int32
	slot  uint64
}

// exEntry is the slowest-transaction exemplar for one attribution bucket.
type exEntry struct {
	dur uint64
	ex  obs.Exemplar
}

// Worker is one shard of the observatory. All methods are nil-receiver safe
// and allocation-free on the counting paths; only exemplar admission (rare,
// tracer-armed only) copies span stacks.
type Worker struct {
	o  *Observatory
	id int
	// tr, when set, provides mid-transaction exemplar capture.
	tr *obs.WorkerTracer
	// conflicts/waits are dense counters indexed [table][pop*K+kind].
	conflicts [][]uint64
	waits     [][]uint64
	// pop is the key-popularity sketch (saturating counts).
	pop []uint32
	// heat rings: lock conflicts, version conflicts, flush traffic.
	lockHeat, verHeat, flushHeat []uint64
	// edges[h] accumulates conflicts this worker suffered against holder h.
	edges []waitEdge
	// flush[cell][pmem.ContendKind] counts attributed writeback events;
	// logical[table] counts committed write-set payload bytes.
	flush   [][5]uint64
	logical []uint64
	// bankEv[bank] counts XPBuffer evictions per bank.
	bankEv        []uint64
	walFlushLines uint64
	walGroupWait  uint64
	// ex holds slowest-1 exemplars keyed by (table<<16 | pop<<8 | kind).
	ex map[uint32]*exEntry
	// pad keeps adjacent workers' hot state off one cache line.
	_ [4]uint64
}

// SetTracer attaches the worker's tracer for exemplar capture (nil detaches).
func (w *Worker) SetTracer(tr *obs.WorkerTracer) {
	if w != nil {
		w.tr = tr
	}
}

// mix is a splitmix64-style finalizer over (table, key) — the deterministic
// hash behind the popularity sketch and the heat rings.
func mix(table int, k uint64) uint64 {
	x := k ^ (uint64(table)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func mixAddr(a uint64) uint64 { return mix(0, a) }

// Touch feeds the popularity sketch: one access to key in table.
func (w *Worker) Touch(table int, key uint64) {
	if w == nil {
		return
	}
	s := &w.pop[mix(table, key)&popMask]
	if *s != ^uint32(0) {
		*s++
	}
}

// popBucket returns the log2 popularity bucket of key: 0 = never touched by
// this worker, i = touched [2^(i-1), 2^i) times.
func (w *Worker) popBucket(table int, key uint64) int {
	b := bits.Len32(w.pop[mix(table, key)&popMask])
	if b >= obs.NumPopBuckets {
		b = obs.NumPopBuckets - 1
	}
	return b
}

// Conflict records one contention event: kind against (table, key) at heap
// slot, attributed to the holder worker (-1 when unknown), with waitNanos of
// virtual stall (0 for pure abort-and-retry kinds) at virtual time now.
func (w *Worker) Conflict(table int, key, slot uint64, kind obs.ConflictKind, holder int, waitNanos, now uint64) {
	if w == nil || table < 0 || table >= len(w.conflicts) {
		return
	}
	pop := w.popBucket(table, key)
	idx := pop*obs.NumConflictKinds + int(kind)
	w.conflicts[table][idx]++
	w.waits[table][idx] += waitNanos

	h := mix(table, key) & heatMask
	switch kind {
	case obs.ConflictLockFail, obs.ConflictUpgrade, obs.ConflictSpinWait:
		w.lockHeat[h]++
	default:
		w.verHeat[h]++
	}

	if holder >= 0 && holder < len(w.edges) && holder != w.id {
		e := &w.edges[holder]
		e.count++
		e.table = int32(table)
		e.slot = slot
	}

	if w.tr != nil {
		if el := w.tr.TxnElapsed(now); el > 0 {
			k := uint32(table)<<16 | uint32(pop)<<8 | uint32(kind)
			ent := w.ex[k]
			if ent == nil {
				ent = &exEntry{}
				w.ex[k] = ent
			}
			if el > ent.dur && w.tr.CaptureCurrent(&ent.ex, now, kind.String()) {
				ent.dur = el
			}
		}
	}
}

// LogicalBytes records n committed write-set payload bytes against table —
// the denominator of the flush-amplification ratio.
func (w *Worker) LogicalBytes(table uint64, n uint64) {
	if w != nil && table < uint64(len(w.logical)) {
		w.logical[table] += n
	}
}

// WALFlushLines implements wal.ContendSink.
func (w *Worker) WALFlushLines(lines uint64) {
	if w != nil {
		w.walFlushLines += lines
	}
}

// WALGroupWaitNanos implements wal.ContendSink.
func (w *Worker) WALGroupWaitNanos(nanos uint64) {
	if w != nil {
		w.walGroupWait += nanos
	}
}

// Report merges every worker shard into the canonical ContentionStats. It
// must run while the workers are quiescent. The merge order is fixed
// (workers ascending, tables/buckets/kinds ascending, rows re-sorted by
// conflict count), so identical shard contents produce identical reports.
func (o *Observatory) Report() *obs.ContentionStats {
	if o == nil {
		return nil
	}
	c := &obs.ContentionStats{Algo: o.cfg.Algo}

	// Conflict attribution, densely merged then filtered to non-zero rows.
	cells := obs.NumPopBuckets * obs.NumConflictKinds
	for t, name := range o.cfg.Tables {
		for idx := 0; idx < cells; idx++ {
			var n, wait uint64
			for i := range o.workers {
				n += o.workers[i].conflicts[t][idx]
				wait += o.workers[i].waits[t][idx]
			}
			if n == 0 && wait == 0 {
				continue
			}
			pop := idx / obs.NumConflictKinds
			kind := obs.ConflictKind(idx % obs.NumConflictKinds)
			row := obs.AttributionRow{
				Table: name, PopBucket: pop, Algo: o.cfg.Algo,
				Kind: kind.String(), Conflicts: n, WaitNanos: wait,
			}
			// Slowest exemplar across workers; ties keep the lowest worker.
			key := uint32(t)<<16 | uint32(pop)<<8 | uint32(kind)
			var best *exEntry
			for i := range o.workers {
				if e := o.workers[i].ex[key]; e != nil && (best == nil || e.dur > best.dur) {
					best = e
				}
			}
			if best != nil {
				ex := best.ex
				ex.Events = append([]obs.Event(nil), best.ex.Events...)
				row.Exemplar = &ex
			}
			c.Attribution = append(c.Attribution, row)
		}
	}
	sort.SliceStable(c.Attribution, func(i, j int) bool {
		a, b := c.Attribution[i], c.Attribution[j]
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.PopBucket != b.PopBucket {
			return a.PopBucket < b.PopBucket
		}
		return a.Kind < b.Kind
	})

	// Heat rings.
	heat := &obs.HeatDump{
		Buckets: 1 << heatBits,
		Lock:    make([]uint64, 1<<heatBits),
		Version: make([]uint64, 1<<heatBits),
		Flush:   make([]uint64, 1<<heatBits),
	}
	var heatTotal uint64
	for i := range o.workers {
		w := &o.workers[i]
		for b := 0; b < 1<<heatBits; b++ {
			heat.Lock[b] += w.lockHeat[b]
			heat.Version[b] += w.verHeat[b]
			heat.Flush[b] += w.flushHeat[b]
			heatTotal += w.lockHeat[b] + w.verHeat[b] + w.flushHeat[b]
		}
	}
	if heatTotal > 0 {
		c.Heat = heat
	}

	// Flush amplification: join attributed writeback cells with per-table
	// logical bytes by name.
	amp := map[string]*obs.FlushAmpRow{}
	rowFor := func(name string) *obs.FlushAmpRow {
		r := amp[name]
		if r == nil {
			r = &obs.FlushAmpRow{Table: name}
			amp[name] = r
		}
		return r
	}
	for ci, name := range o.cells {
		r := rowFor(name)
		for i := range o.workers {
			f := &o.workers[i].flush[ci]
			r.ClwbLines += f[pmem.ContendClwbLine]
			r.TrainLines += f[pmem.ContendTrainLine]
			r.EvictLines += f[pmem.ContendEvictLine]
			r.XPFullEvicts += f[pmem.ContendXPEvictFull]
			r.XPPartialEvicts += f[pmem.ContendXPEvictPartial]
		}
	}
	for t, name := range o.cfg.Tables {
		var n uint64
		for i := range o.workers {
			n += o.workers[i].logical[t]
		}
		if n > 0 {
			rowFor(name).LogicalBytes = n
		}
	}
	names := make([]string, 0, len(amp))
	for name, r := range amp {
		if r.LogicalBytes > 0 || r.FlushedBytes() > 0 || r.XPFullEvicts > 0 || r.XPPartialEvicts > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		c.FlushAmp = append(c.FlushAmp, *amp[name])
	}

	// WAL contributions.
	for i := range o.workers {
		c.WALFlushLines += o.workers[i].walFlushLines
		c.WALGroupWaitNanos += o.workers[i].walGroupWait
	}

	// XPBuffer set contention.
	if o.cfg.Banks > 0 {
		banks := make([]uint64, o.cfg.Banks)
		var total uint64
		for i := range o.workers {
			for b, n := range o.workers[i].bankEv {
				banks[b] += n
				total += n
			}
		}
		if total > 0 {
			c.BankEvictions = banks
			var h obs.Histogram
			for _, n := range banks {
				h.Observe(n)
			}
			c.SetContention = h.Dump()
		}
	}

	// Wait-for graph.
	wf := &obs.WaitForDump{Workers: len(o.workers), Rounds: o.rounds}
	in := make([]uint64, len(o.workers))
	out := make([]uint64, len(o.workers))
	for i := range o.workers {
		w := &o.workers[i]
		for h := range w.edges {
			e := &w.edges[h]
			if e.count == 0 {
				continue
			}
			table := ""
			if int(e.table) < len(o.cfg.Tables) {
				table = o.cfg.Tables[e.table]
			}
			wf.Edges = append(wf.Edges, obs.WaitForEdge{
				Waiter: i, Holder: h, Count: e.count, Table: table, Slot: e.slot,
			})
			out[i] += e.count
			in[h] += e.count
		}
	}
	if len(wf.Edges) > 0 {
		wf.Cycles = obs.DetectCycles(len(o.workers), wf.Edges)
		for i := range o.workers {
			if in[i] == 0 && out[i] == 0 {
				continue
			}
			wf.Hot = append(wf.Hot, obs.WaitForVertex{Worker: i, In: in[i], Out: out[i]})
		}
		sort.SliceStable(wf.Hot, func(i, j int) bool { return wf.Hot[i].In > wf.Hot[j].In })
	}
	if len(wf.Edges) > 0 || wf.Rounds > 0 {
		c.WaitFor = wf
	}
	return c
}
