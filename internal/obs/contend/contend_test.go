package contend

import (
	"encoding/json"
	"runtime"
	"sync"
	"testing"

	"falcon/internal/obs"
	"falcon/internal/pmem"
)

func testConfig(workers int) Config {
	return Config{
		Workers: workers,
		Algo:    "2PL",
		Tables:  []string{"kv", "aux"},
		Banks:   8,
	}
}

// drive replays worker w's deterministic event stream into its recorder.
// The same function serves the concurrent hammer and the serial replay, so
// any divergence between the two reports is a merge bug, not a stream bug.
func drive(o *Observatory, w, events int) {
	rec := o.Worker(w)
	state := uint64(w)*0x9E3779B97F4A7C15 + 1
	rng := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < events; i++ {
		table := int(rng() % 2)
		key := rng() % 64 // small key space: popularity buckets fill up
		rec.Touch(table, key)
		switch rng() % 5 {
		case 0:
			rec.Conflict(table, key, key, obs.ConflictLockFail, int(rng()%4), 0, uint64(i))
		case 1:
			rec.Conflict(table, key, key, obs.ConflictTSOrder, -1, 0, uint64(i))
		case 2:
			rec.Conflict(table, key, key, obs.ConflictSpinWait, int(rng()%4), rng()%1000, uint64(i))
		case 3:
			o.PmemContend(uint64(w), pmem.ContendKind(rng()%5), rng()%(1<<20))
		case 4:
			rec.LogicalBytes(uint64(table), rng()%256)
		}
	}
	rec.WALFlushLines(uint64(w) + 1)
	rec.WALGroupWaitNanos(uint64(w) * 100)
}

// TestConcurrentMergeEqualsSerialReplay hammers the sharded recorders from
// GOMAXPROCS goroutines and checks the merged report is byte-identical to a
// serial replay of the same per-worker streams — the single-owner shard
// discipline holds and the merge is order-independent.
func TestConcurrentMergeEqualsSerialReplay(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const events = 20000

	conc := New(testConfig(workers))
	conc.AddRange("kv", 0, 1<<19)
	conc.AddRange("aux", 1<<19, 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drive(conc, w, events)
		}(w)
	}
	wg.Wait()

	serial := New(testConfig(workers))
	serial.AddRange("kv", 0, 1<<19)
	serial.AddRange("aux", 1<<19, 1<<20)
	for w := 0; w < workers; w++ {
		drive(serial, w, events)
	}

	got, err := json.Marshal(conc.Report())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial.Report())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("concurrent merge diverged from serial replay:\nconcurrent: %.400s\nserial:     %.400s", got, want)
	}
	if conc.Report().TotalConflicts() == 0 {
		t.Fatal("hammer recorded no conflicts; the test drove nothing")
	}
}

// TestPopularityBuckets checks the log2 bucketing: a key touched 2^k times
// lands in bucket k+1 and an untouched key in bucket 0.
func TestPopularityBuckets(t *testing.T) {
	o := New(testConfig(1))
	w := o.Worker(0)
	for i := 0; i < 8; i++ { // 8 = 2^3 touches → bits.Len32(8) = 4
		w.Touch(0, 42)
	}
	if got := w.popBucket(0, 42); got != 4 {
		t.Fatalf("popBucket(touched 8×) = %d, want 4", got)
	}
	if got := w.popBucket(0, 999); got != 0 {
		t.Fatalf("popBucket(untouched) = %d, want 0", got)
	}
}

// TestReportShape checks the merged report carries every section a driven
// observatory should produce, with attribution rows sorted by count.
func TestReportShape(t *testing.T) {
	o := New(testConfig(2))
	o.AddRange("kv", 0, 1<<16)
	w0, w1 := o.Worker(0), o.Worker(1)

	for i := 0; i < 10; i++ {
		w0.Touch(0, 7)
	}
	for i := 0; i < 10; i++ {
		w0.Conflict(0, 7, 7, obs.ConflictLockFail, 1, 0, uint64(i))
	}
	w1.Conflict(1, 3, 3, obs.ConflictValidation, 0, 0, 1)
	o.PmemContend(0, pmem.ContendClwbLine, 128)
	o.PmemContend(1, pmem.ContendXPEvictFull, 512)
	w0.LogicalBytes(0, 100)
	o.BarrierTick()
	o.BarrierTick()

	c := o.Report()
	if c.Algo != "2PL" {
		t.Fatalf("algo = %q", c.Algo)
	}
	if len(c.Attribution) != 2 {
		t.Fatalf("attribution rows = %d, want 2", len(c.Attribution))
	}
	top := c.Attribution[0]
	if top.Table != "kv" || top.Kind != "lock-fail" || top.Conflicts != 10 {
		t.Fatalf("top row = %+v", top)
	}
	if top.PopBucket == 0 {
		t.Fatal("hot key attributed to the never-seen popularity bucket")
	}
	if c.Heat == nil || c.Heat.Buckets == 0 {
		t.Fatal("missing heat dump")
	}
	if len(c.FlushAmp) == 0 || c.FlushAmp[0].Table != "kv" {
		t.Fatalf("flush-amp rows = %+v", c.FlushAmp)
	}
	if c.FlushAmp[0].LogicalBytes != 100 || c.FlushAmp[0].ClwbLines != 1 {
		t.Fatalf("flush-amp cell = %+v", c.FlushAmp[0])
	}
	if len(c.BankEvictions) != 8 || c.SetContention.Count != 8 {
		t.Fatalf("set contention: banks %d hist count %d", len(c.BankEvictions), c.SetContention.Count)
	}
	wf := c.WaitFor
	if wf == nil || wf.Rounds != 2 {
		t.Fatalf("wait-for = %+v", wf)
	}
	// w0→w1 and w1→w0 form a 2-cycle.
	if len(wf.Edges) != 2 || len(wf.Cycles) != 1 {
		t.Fatalf("edges %d cycles %d", len(wf.Edges), len(wf.Cycles))
	}
	if wf.Hot[0].Worker != 1 || wf.Hot[0].In != 10 {
		t.Fatalf("hot vertex = %+v", wf.Hot[0])
	}
}
