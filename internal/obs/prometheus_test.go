package obs

import (
	"regexp"
	"strings"
	"testing"
)

// promTestSnapshot builds a snapshot exercising every family the writer
// emits: counters, gauges, per-table labels, epoch histograms, and the
// contention observatory block.
func promTestSnapshot() Snapshot {
	var epochSize, lag, setHist Histogram
	for _, v := range []uint64{1, 3, 8, 8, 20} {
		epochSize.Observe(v)
		lag.Observe(v * 1000)
		setHist.Observe(v)
	}
	var s Snapshot
	s.Commits = 1000
	s.Aborts = 17
	for i := range s.AbortCounts {
		s.AbortCounts[i] = uint64(i)
	}
	for i := range s.PhaseNanos {
		s.PhaseNanos[i] = uint64(100 * (i + 1))
	}
	s.WAL = WALStats{Begins: 1000, Wraps: 2, Commits: 990, Aborts: 10,
		BytesLogged: 123456, MaxRecordBytes: 900, SlotBytes: 1024, Overflows: 3}
	s.Hot = HotSetStats{Hits: 400, Misses: 100, Evictions: 20}
	s.Tables = map[string]TableStats{
		"kv":    {Reads: 5000, Writes: 900, Versions: 10, IndexProbes: 5100},
		"order": {Reads: 100, Writes: 50, Versions: 2, IndexProbes: 120},
	}
	s.Epochs = EpochStats{Sealed: 40, Records: 990, ForcedSeals: 1,
		EpochSize: epochSize.Dump(), DurableLag: lag.Dump()}
	var lat Histogram
	for _, v := range []uint64{1000, 2000, 4000, 4000, 90000} {
		lat.Observe(v)
	}
	s.Server = &ServerStats{
		Endpoints: map[string]EndpointStats{
			"/v1/txn": {Requests: 500, OK: 450, Errors: 5, ShedQueue: 30,
				ShedDeadline: 10, ShedDraining: 5, Expired: 3, Replayed: 12, Latency: lat.Dump()},
			"/v1/read": {Requests: 100, OK: 100},
		},
		QueueDepth: 7, QueueCap: 64, Workers: 4, EstServiceNanos: 2500, Draining: true,
	}
	s.Contend = &ContentionStats{
		Algo: "occ",
		Attribution: []AttributionRow{
			{Table: "kv", PopBucket: 9, Algo: "occ", Kind: "lock-fail", Conflicts: 120, WaitNanos: 3000},
			{Table: "kv", PopBucket: 2, Algo: "occ", Kind: "validation", Conflicts: 4},
		},
		FlushAmp: []FlushAmpRow{
			{Table: "kv", LogicalBytes: 64000, ClwbLines: 1200, TrainLines: 300, EvictLines: 80, XPFullEvicts: 50, XPPartialEvicts: 9},
		},
		WALFlushLines:     777,
		WALGroupWaitNanos: 123,
		SetContention:     setHist.Dump(),
		WaitFor: &WaitForDump{Workers: 4, Rounds: 12,
			Edges:  []WaitForEdge{{Waiter: 0, Holder: 1, Count: 5}},
			Cycles: [][]int{{0, 1}}},
	}
	return s
}

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? ([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="((\\[\\"n])|[^"\\])*"$`)
)

// parseLabels splits a label body ("a=\"x\",b=\"y\"") respecting that our
// writer never emits commas inside label values unescaped... label values in
// this codebase are metric/table/kind names without commas, so a simple
// split is a valid grammar check here.
func parseLabels(t *testing.T, body string) map[string]string {
	t.Helper()
	out := map[string]string{}
	if body == "" {
		return out
	}
	for _, pair := range strings.Split(body, ",") {
		if !promLabelRe.MatchString(pair) {
			t.Fatalf("malformed label pair %q", pair)
		}
		eq := strings.IndexByte(pair, '=')
		out[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
	}
	return out
}

func TestWritePrometheusGrammar(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, promTestSnapshot(), map[string]string{"cell": "Falcon/YCSB-A/8"}); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if text == "" {
		t.Fatal("empty exposition")
	}

	type family struct {
		typ     string
		help    bool
		samples []string // sample metric names, in order
		done    bool     // a different family's sample appeared after this one
	}
	families := map[string]*family{}
	var last string

	// baseName strips histogram sample suffixes back to the family name.
	baseName := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := families[strings.TrimSuffix(name, suf)]; ok && f.typ == "histogram" {
				return strings.TrimSuffix(name, suf)
			}
		}
		return name
	}

	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if m := promHelpRe.FindStringSubmatch(line); m != nil {
			if f := families[m[1]]; f != nil && f.help {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, m[1])
			}
			if families[m[1]] == nil {
				families[m[1]] = &family{}
			}
			families[m[1]].help = true
			continue
		}
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			f := families[m[1]]
			if f == nil {
				t.Fatalf("line %d: TYPE before HELP for %s", ln+1, m[1])
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			f.typ = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unrecognized comment %q", ln+1, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: sample does not match grammar: %q", ln+1, line)
		}
		name, labelBody := m[1], m[3]
		fam := baseName(name)
		f := families[fam]
		if f == nil || f.typ == "" {
			t.Fatalf("line %d: sample %s before its TYPE declaration", ln+1, name)
		}
		if f.typ == "histogram" && !(name == fam+"_bucket" || name == fam+"_sum" || name == fam+"_count") {
			t.Fatalf("line %d: histogram %s has bare sample %s", ln+1, fam, name)
		}
		if f.typ != "histogram" && name != fam {
			t.Fatalf("line %d: %s sample name %s != family name", ln+1, f.typ, name)
		}
		if f.done {
			t.Fatalf("line %d: family %s has non-contiguous samples", ln+1, fam)
		}
		labels := parseLabels(t, labelBody)
		if labels["cell"] != "Falcon/YCSB-A/8" {
			t.Fatalf("line %d: base label missing: %v", ln+1, labels)
		}
		f.samples = append(f.samples, line)
		if last != "" && last != fam {
			if lf := families[last]; lf != nil {
				lf.done = true
			}
		}
		last = fam
	}

	// Counter families by convention end in _total.
	for name, f := range families {
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter %s lacks the _total suffix", name)
		}
		if f.typ == "" {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %s announced but has no samples", name)
		}
	}

	// Every histogram series-set must be cumulative with a trailing +Inf
	// equal to its _count.
	for name, f := range families {
		if f.typ != "histogram" {
			continue
		}
		// Group this family's bucket samples by their non-le label set.
		type series struct {
			prev    uint64
			infSeen bool
			inf     uint64
			count   uint64
		}
		bySeries := map[string]*series{}
		keyOf := func(labels map[string]string) string {
			delete(labels, "le")
			var parts []string
			for k, v := range labels {
				parts = append(parts, k+"="+v)
			}
			// order-independent key
			for i := 0; i < len(parts); i++ {
				for j := i + 1; j < len(parts); j++ {
					if parts[j] < parts[i] {
						parts[i], parts[j] = parts[j], parts[i]
					}
				}
			}
			return strings.Join(parts, ",")
		}
		for _, line := range f.samples {
			m := promSampleRe.FindStringSubmatch(line)
			labels := parseLabels(t, m[3])
			le, hasLE := labels["le"]
			k := keyOf(labels)
			s := bySeries[k]
			if s == nil {
				s = &series{}
				bySeries[k] = s
			}
			var v uint64
			for _, c := range m[4] {
				if c >= '0' && c <= '9' {
					v = v*10 + uint64(c-'0')
				}
			}
			switch {
			case m[1] == name+"_bucket" && hasLE && le == "+Inf":
				s.infSeen = true
				s.inf = v
			case m[1] == name+"_bucket" && hasLE:
				if v < s.prev {
					t.Fatalf("histogram %s: bucket counts not cumulative (%d after %d)", name, v, s.prev)
				}
				s.prev = v
			case m[1] == name+"_count":
				s.count = v
			}
		}
		for k, s := range bySeries {
			if !s.infSeen {
				t.Errorf("histogram %s{%s}: no +Inf bucket", name, k)
			}
			if s.inf != s.count {
				t.Errorf("histogram %s{%s}: +Inf bucket %d != count %d", name, k, s.inf, s.count)
			}
			if s.prev > s.inf {
				t.Errorf("histogram %s{%s}: last finite bucket %d exceeds +Inf %d", name, k, s.prev, s.inf)
			}
		}
	}

	// Spot-check: contention attribution made it through with its labels.
	if !strings.Contains(text, `falcon_contend_conflicts_total{cell="Falcon/YCSB-A/8",algo="occ",kind="lock-fail",pop="9",table="kv"} 120`) {
		t.Errorf("attribution sample missing or mislabeled:\n%s", text)
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	// No base labels: samples still match the grammar, and any label braces
	// come only from dimension labels (reason/phase), not a dangling comma
	// from the absent base set.
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("bare sample does not match grammar: %q", line)
		}
		if strings.Contains(line, "{,") || strings.Contains(line, ",}") {
			t.Fatalf("dangling label comma on %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	var sb strings.Builder
	err := WritePrometheus(&sb, Snapshot{}, map[string]string{"cell": `a"b\c` + "\nd"})
	if err != nil {
		t.Fatal(err)
	}
	want := `cell="a\"b\\c\nd"`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped label %s not found in output", want)
	}
}

func TestHeatMarkdownShape(t *testing.T) {
	h := &HeatDump{Buckets: 8,
		Lock:    []uint64{0, 5, 0, 0, 100, 0, 0, 1},
		Version: make([]uint64, 8),
		Flush:   []uint64{1, 1, 1, 1, 1, 1, 1, 1},
	}
	md := h.HeatMarkdown(8)
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	if len(lines) != 5 { // header, separator, lock, version, flush
		t.Fatalf("heat table has %d lines:\n%s", len(lines), md)
	}
	for _, l := range lines[2:] {
		if strings.Count(l, "|") != 4 {
			t.Fatalf("row %q is not a 3-column markdown row", l)
		}
	}
	if !strings.Contains(lines[2], "█") {
		t.Errorf("max bucket not rendered at full intensity: %q", lines[2])
	}
}

func TestDetectCycles(t *testing.T) {
	edges := []WaitForEdge{
		{Waiter: 0, Holder: 1}, {Waiter: 1, Holder: 0}, // 2-cycle
		{Waiter: 1, Holder: 2}, {Waiter: 2, Holder: 3}, {Waiter: 3, Holder: 1}, // 3-cycle
		{Waiter: 2, Holder: 2}, // self-loop
	}
	cycles := DetectCycles(4, edges)
	want := [][]int{{0, 1}, {1, 2, 3}, {2}}
	if len(cycles) != len(want) {
		t.Fatalf("cycles = %v, want %v", cycles, want)
	}
	for i := range want {
		if len(cycles[i]) != len(want[i]) {
			t.Fatalf("cycles = %v, want %v", cycles, want)
		}
		for j := range want[i] {
			if cycles[i][j] != want[i][j] {
				t.Fatalf("cycles = %v, want %v", cycles, want)
			}
		}
	}
	if got := DetectCycles(4, edges[2:3]); len(got) != 0 {
		t.Fatalf("acyclic graph reported cycles: %v", got)
	}
}
