package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NamedDump pairs a trace dump with the label of the run (engine/workload
// cell) that produced it. Exporting several dumps into one file puts each on
// its own Perfetto process track.
type NamedDump struct {
	Label string
	Dump  *TraceDump
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format" with a traceEvents array), which Perfetto and chrome://tracing
// load directly. Timestamps and durations are microseconds (doubles); we map
// virtual nanoseconds onto them so the UI's microsecond axis reads as
// virtual time.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// pids within one dump: main worker tracks, then the two exemplar tracks.
// Several dumps stack at pidStride intervals.
const (
	pidMain      = 1
	pidSlow      = 2
	pidAborted   = 3
	pidStride    = 4
	microPerNano = 1e-3
)

// WriteChromeTrace renders the dumps as Chrome trace-event JSON: per dump,
// one process with a thread per worker (virtual-time axis), plus separate
// processes carrying the slowest-K and aborted-transaction exemplars.
func WriteChromeTrace(w io.Writer, dumps []NamedDump) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ns"
	for i, nd := range dumps {
		if nd.Dump == nil {
			continue
		}
		base := i * pidStride
		out.TraceEvents = append(out.TraceEvents, chromeDumpEvents(base, nd)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

func chromeDumpEvents(base int, nd NamedDump) []chromeEvent {
	d := nd.Dump
	label := nd.Label
	if label == "" {
		label = "trace"
	}
	var evs []chromeEvent
	meta := func(pid int, name string) {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	meta(base+pidMain, label)
	threads := map[[2]int]bool{}
	thread := func(pid, tid int, name string) {
		key := [2]int{pid, tid}
		if threads[key] {
			return
		}
		threads[key] = true
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for w := 0; w < d.Workers; w++ {
		thread(base+pidMain, w, fmt.Sprintf("worker %d", w))
	}
	for i := range d.Events {
		evs = append(evs, chromeEventFor(base+pidMain, &d.Events[i]))
	}
	if len(d.Slow) > 0 {
		meta(base+pidSlow, label+" · slowest-K exemplars")
		for i := range d.Slow {
			ex := &d.Slow[i]
			thread(base+pidSlow, ex.Worker, fmt.Sprintf("worker %d", ex.Worker))
			evs = append(evs, chromeExemplarEvents(base+pidSlow, ex)...)
		}
	}
	if len(d.Aborted) > 0 {
		meta(base+pidAborted, label+" · aborted exemplars")
		for i := range d.Aborted {
			ex := &d.Aborted[i]
			thread(base+pidAborted, ex.Worker, fmt.Sprintf("worker %d", ex.Worker))
			evs = append(evs, chromeExemplarEvents(base+pidAborted, ex)...)
		}
	}
	return evs
}

func chromeExemplarEvents(pid int, ex *Exemplar) []chromeEvent {
	out := make([]chromeEvent, 0, len(ex.Events))
	for i := range ex.Events {
		ce := chromeEventFor(pid, &ex.Events[i])
		out = append(out, ce)
	}
	return out
}

func chromeEventFor(pid int, e *Event) chromeEvent {
	ce := chromeEvent{
		Cat: e.Kind.String(),
		Pid: pid,
		Tid: int(e.Worker),
		Ts:  float64(e.Start) * microPerNano,
		Args: map[string]any{
			"virtual_start_ns": e.Start,
			"host_ns":          e.Host,
		},
	}
	switch e.Kind {
	case EvTxn:
		ce.Name = fmt.Sprintf("txn %#x", e.TID)
		if e.Abort != 0 {
			ce.Name = fmt.Sprintf("txn %#x ABORT %s", e.TID, AbortReason(e.Abort-1))
			ce.Args["abort"] = AbortReason(e.Abort - 1).String()
		}
	case EvPhase:
		ce.Name = e.Phase.String()
	case EvLockWait:
		ce.Name = "lock-wait"
		ce.Args["slot"] = e.Arg
	case EvWALClaim:
		ce.Name = "wal-claim"
		if e.Arg2 != 0 {
			ce.Name = "wal-claim (wrap)"
		}
		ce.Args["slot"] = e.Arg
	case EvXPEvict:
		ce.Name = "xp-evict partial"
		if e.Arg != 0 {
			ce.Name = "xp-evict full"
		}
		ce.Args["block"] = e.Arg2
	case EvFlushTrain:
		ce.Name = fmt.Sprintf("flush-train (%d lines)", e.Arg)
		ce.Args["lines"] = e.Arg
		ce.Args["elided"] = e.Arg2
	case EvEpochSeal:
		ce.Name = fmt.Sprintf("epoch-seal #%d (%d records)", e.Arg, e.Arg2)
		ce.Args["epoch"] = e.Arg
		ce.Args["records"] = e.Arg2
	default:
		ce.Name = e.Kind.String()
	}
	if e.End > e.Start {
		ce.Ph = "X"
		dur := float64(e.End-e.Start) * microPerNano
		ce.Dur = &dur
	} else {
		ce.Ph = "i"
		ce.Scope = "t"
	}
	return ce
}

// ValidateChromeTrace checks that data parses as Chrome trace-event JSON:
// a traceEvents array whose entries carry the fields each phase type
// requires. It is the schema check shared by the golden test and the
// falcon-tracecheck tool.
func ValidateChromeTrace(data []byte) error {
	var raw struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("not JSON: %w", err)
	}
	if raw.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	if len(raw.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents array")
	}
	for i, ev := range raw.TraceEvents {
		var ph string
		if err := jsonField(ev, "ph", &ph); err != nil {
			return fmt.Errorf("event %d: %v", i, err)
		}
		var name string
		if err := jsonField(ev, "name", &name); err != nil {
			return fmt.Errorf("event %d (ph=%s): %v", i, ph, err)
		}
		var pid, tid float64
		if err := jsonField(ev, "pid", &pid); err != nil {
			return fmt.Errorf("event %d (%s): %v", i, name, err)
		}
		if err := jsonField(ev, "tid", &tid); err != nil {
			return fmt.Errorf("event %d (%s): %v", i, name, err)
		}
		switch ph {
		case "M":
			// Metadata events need args.name.
			var args struct {
				Name *string `json:"name"`
			}
			if err := json.Unmarshal(ev["args"], &args); err != nil || args.Name == nil {
				return fmt.Errorf("event %d: metadata without args.name", i)
			}
		case "X":
			var ts, dur float64
			if err := jsonField(ev, "ts", &ts); err != nil {
				return fmt.Errorf("event %d (%s): %v", i, name, err)
			}
			if err := jsonField(ev, "dur", &dur); err != nil {
				return fmt.Errorf("event %d (%s): %v", i, name, err)
			}
			if dur < 0 {
				return fmt.Errorf("event %d (%s): negative dur", i, name)
			}
		case "i", "I":
			var ts float64
			if err := jsonField(ev, "ts", &ts); err != nil {
				return fmt.Errorf("event %d (%s): %v", i, name, err)
			}
		default:
			return fmt.Errorf("event %d (%s): unsupported ph %q", i, name, ph)
		}
	}
	return nil
}

func jsonField(ev map[string]json.RawMessage, key string, dst any) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("bad %q: %v", key, err)
	}
	return nil
}

// Autopsy renders one exemplar as a compact text timeline: the transaction
// header (outcome, virtual window, duration) followed by each captured
// event, offset-relative so the commit path reads top to bottom.
func Autopsy(ex *Exemplar) string {
	var b strings.Builder
	outcome := "COMMIT"
	if ex.Abort != "" {
		outcome = "ABORT " + ex.Abort
	}
	fmt.Fprintf(&b, "txn %#x  worker %d  %s  virt [%d..%d]  dur %d ns\n",
		ex.TID, ex.Worker, outcome, ex.Start, ex.End, ex.Dur())
	evs := append([]Event(nil), ex.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	for i := range evs {
		e := &evs[i]
		off := int64(e.Start) - int64(ex.Start)
		switch e.Kind {
		case EvTxn:
			continue
		case EvPhase:
			fmt.Fprintf(&b, "  %+10d  %-14s %10d ns\n", off, e.Phase, e.End-e.Start)
		case EvLockWait:
			fmt.Fprintf(&b, "  %+10d  %-14s %10d ns  slot %d\n", off, "lock-wait", e.End-e.Start, e.Arg)
		case EvWALClaim:
			wrap := ""
			if e.Arg2 != 0 {
				wrap = " (wrap)"
			}
			fmt.Fprintf(&b, "  %+10d  wal-claim slot %d%s\n", off, e.Arg, wrap)
		case EvXPEvict:
			kind := "partial"
			if e.Arg != 0 {
				kind = "full"
			}
			fmt.Fprintf(&b, "  %+10d  xp-evict %s  block %#x\n", off, kind, e.Arg2)
		case EvFlushTrain:
			fmt.Fprintf(&b, "  %+10d  flush-train %d lines (%d elided)  %d ns\n",
				off, e.Arg, e.Arg2, e.End-e.Start)
		case EvEpochSeal:
			fmt.Fprintf(&b, "  %+10d  epoch-seal #%d  %d records  %d ns\n",
				off, e.Arg, e.Arg2, e.End-e.Start)
		default:
			fmt.Fprintf(&b, "  %+10d  %s\n", off, e.Kind)
		}
	}
	return b.String()
}

// AutopsyReport renders the dump's exemplars: the slowest-K transactions
// followed by up to maxAborts aborted ones (0 = all).
func AutopsyReport(d *TraceDump, maxAborts int) string {
	if d == nil {
		return ""
	}
	var b strings.Builder
	if len(d.Slow) > 0 {
		fmt.Fprintf(&b, "── slowest transactions (%d captured) ──\n", len(d.Slow))
		for i := range d.Slow {
			b.WriteString(Autopsy(&d.Slow[i]))
		}
	}
	if len(d.Aborted) > 0 {
		n := len(d.Aborted)
		if maxAborts > 0 && n > maxAborts {
			n = maxAborts
		}
		fmt.Fprintf(&b, "── aborted transactions (%d captured, showing %d) ──\n", len(d.Aborted), n)
		for i := 0; i < n; i++ {
			b.WriteString(Autopsy(&d.Aborted[i]))
		}
	}
	if d.Dropped > 0 {
		fmt.Fprintf(&b, "ring dropped %d events (raise -trace-sample or ring capacity)\n", d.Dropped)
	}
	return b.String()
}
