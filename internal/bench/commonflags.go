package bench

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"falcon/internal/obs"
)

// CommonFlags bundles the flag wiring the cmd tools used to repeat by hand:
// trace capture (-trace, -trace-sample, -trace-autopsy), leader-based group
// commit (-groupcommit, -epochns), per-cell observability snapshots (-stats),
// the contention & flush-amplification observatory (-contend), and Prometheus
// text exposition (-prom). Collect and CollectSnapshot are mutex-guarded, so
// parallel sweep runners may call them directly.
type CommonFlags struct {
	Trace TraceFlag
	Group GroupFlag
	// Stats is set by -stats: print each cell's observability snapshot.
	Stats bool
	// Contend is set by -contend: arm the contention & flush-amplification
	// observatory for every cell and print its autopsy report.
	Contend bool
	// PromPath is set by -prom: write every collected cell snapshot into one
	// Prometheus exposition file, samples distinguished by a `cell` label.
	PromPath string

	mu   sync.Mutex
	prom []obs.NamedSnapshot
}

// RegisterCommonFlags installs the shared tool flags on the default flag set
// and returns their holder. engine additionally installs the knobs that only
// make sense against a transactional engine (-groupcommit, -epochns,
// -contend); falcon-micro, which drives the pmem layer bare, leaves it off.
func RegisterCommonFlags(engine bool) *CommonFlags {
	f := &CommonFlags{}
	f.Trace.Register()
	if engine {
		f.Group.Register()
		flag.BoolVar(&f.Contend, "contend", false,
			"arm the contention & flush-amplification observatory for every cell and print its autopsy report (conflict attribution, key-space heat, wait-for graph, flush amplification)")
	}
	flag.BoolVar(&f.Stats, "stats", false, "print an observability snapshot per cell")
	flag.StringVar(&f.PromPath, "prom", "", "write per-cell snapshots in Prometheus text exposition format (0.0.4) to this file")
	return f
}

// Options decorates a cell's Options with the flag-driven knobs: trace
// capture and observatory arming. The other fields pass through untouched.
func (f *CommonFlags) Options(o Options) Options {
	o.Trace = f.Trace.Options()
	if f.Contend {
		o.Contend = true
	}
	return o
}

// Collect routes one finished cell into the trace file and the -prom export.
func (f *CommonFlags) Collect(label string, res *Result) {
	f.Trace.Collect(label, res.Trace)
	f.CollectSnapshot(label, res.Obs)
}

// CollectSnapshot records one labelled snapshot for the -prom export; a no-op
// when -prom is off. Tools without a bench.Result (falcon-micro) feed their
// snapshots here directly.
func (f *CommonFlags) CollectSnapshot(label string, snap obs.Snapshot) {
	if f.PromPath == "" {
		return
	}
	f.mu.Lock()
	f.prom = append(f.prom, obs.NamedSnapshot{Label: label, Snap: snap})
	f.mu.Unlock()
}

// CellText renders the per-cell text block the flags ask for: the -stats
// snapshot and/or the -contend autopsy. Empty when neither flag is set, so
// callers can print the result unconditionally.
func (f *CommonFlags) CellText(label string, res *Result) string {
	var b strings.Builder
	if f.Stats {
		fmt.Fprintf(&b, "--- stats: %s ---\n%s", label, res.Obs.Text())
	}
	if f.Contend && res.Obs.Contend != nil {
		fmt.Fprintf(&b, "--- contention: %s ---\n%s", label, res.Obs.Contend.Autopsy())
	}
	return b.String()
}

// Finish writes the trace file and the Prometheus export. Call once after all
// cells ran; exits nonzero on export errors, matching the tools' established
// behavior for -trace failures.
func (f *CommonFlags) Finish() {
	if err := f.Trace.Write(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.writeProm(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func (f *CommonFlags) writeProm() error {
	if f.PromPath == "" {
		return nil
	}
	f.mu.Lock()
	cells := f.prom
	f.mu.Unlock()
	if len(cells) == 0 {
		return fmt.Errorf("prom: no snapshots collected for %s", f.PromPath)
	}
	out, err := os.Create(f.PromPath)
	if err != nil {
		return err
	}
	if err := obs.WritePrometheusCells(out, cells); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "prom: %s (%d cells)\n", f.PromPath, len(cells))
	return nil
}
