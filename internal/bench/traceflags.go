package bench

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"falcon/internal/obs"
)

// TraceFlag is the shared -trace / -trace-sample wiring used by every cmd
// tool: Register installs the flags, Options feeds bench.Options.Trace (nil
// when tracing is off), Collect gathers each cell's dump, and Write renders
// everything as one Chrome trace-event JSON file (one Perfetto process per
// cell). Collect is mutex-guarded so parallel sweep runners may call it
// directly.
type TraceFlag struct {
	// Path is the output file (-trace); empty disables tracing.
	Path string
	// Sample is the head-sampling rate (-trace-sample): every Nth
	// transaction's spans are kept. Exemplars are captured regardless.
	Sample int
	// Autopsy prints the text autopsy report to stderr after Write
	// (-trace-autopsy).
	Autopsy bool

	mu    sync.Mutex
	dumps []obs.NamedDump
}

// Register installs -trace, -trace-sample and -trace-autopsy on the default
// flag set.
func (f *TraceFlag) Register() {
	flag.StringVar(&f.Path, "trace", "", "write a Chrome trace-event JSON file (load in Perfetto) of the measured phase")
	flag.IntVar(&f.Sample, "trace-sample", 1, "trace every Nth transaction (slow/aborted exemplars are always captured)")
	flag.BoolVar(&f.Autopsy, "trace-autopsy", false, "with -trace: print the slow/abort txn autopsy report to stderr")
}

// Enabled reports whether -trace was given.
func (f *TraceFlag) Enabled() bool { return f.Path != "" }

// Options returns the TraceOptions for bench.Options.Trace, or nil when
// tracing is off.
func (f *TraceFlag) Options() *obs.TraceOptions {
	if !f.Enabled() {
		return nil
	}
	return &obs.TraceOptions{Sample: f.Sample}
}

// Collect stores one labelled dump for the final file. nil dumps are
// ignored, so callers can pass res.Trace unconditionally.
func (f *TraceFlag) Collect(label string, d *obs.TraceDump) {
	if d == nil {
		return
	}
	f.mu.Lock()
	f.dumps = append(f.dumps, obs.NamedDump{Label: label, Dump: d})
	f.mu.Unlock()
}

// Write renders the collected dumps to Path. A no-op when tracing is off;
// an error when tracing was requested but no dump was collected.
func (f *TraceFlag) Write() error {
	if !f.Enabled() {
		return nil
	}
	f.mu.Lock()
	dumps := f.dumps
	f.mu.Unlock()
	if len(dumps) == 0 {
		return fmt.Errorf("trace: no dumps collected for %s", f.Path)
	}
	out, err := os.Create(f.Path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(out, dumps); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	var events int
	for _, nd := range dumps {
		events += len(nd.Dump.Events)
	}
	fmt.Fprintf(os.Stderr, "trace: %s (%d cells, %d events) — open in https://ui.perfetto.dev\n",
		f.Path, len(dumps), events)
	if f.Autopsy {
		for _, nd := range dumps {
			if rep := obs.AutopsyReport(nd.Dump, 4); rep != "" {
				fmt.Fprintf(os.Stderr, "══ %s ══\n%s", nd.Label, rep)
			}
		}
	}
	return nil
}
