package bench

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"falcon/internal/obs"
)

// GridCell is one sweep measurement destined for markdown rendering — the
// same shape falcon-sweep's -json export uses, minus the error rows.
type GridCell struct {
	Figure   string
	Workload string
	Engine   string
	Threads  int
	Extra    string // e.g. tuple size in the Figure 12 sweep
	Result   *Result
}

// commitPhases are the transaction phases shown in phase-share tables (the
// recovery phases never appear in a sweep measurement). Group-wait is zero
// outside group commit; with -groupcommit it carries the epoch-seal
// backpressure, so omitting it would make GC tables sum short of 100%.
var commitPhases = []obs.Phase{
	obs.PhaseExec, obs.PhaseCC, obs.PhaseLogAppend, obs.PhaseHeapWrite,
	obs.PhaseIndexUpdate, obs.PhaseFlush, obs.PhaseGroupWait, obs.PhaseAbort,
}

// PhaseShareMarkdown renders one markdown table per workload: each engine's
// commit-path phase shares (percent of transactional virtual time) at the
// highest measured thread count — the accounting behind Figure 11, in table
// form. Cells with errors (nil Result) are skipped.
func PhaseShareMarkdown(cells []GridCell) string {
	type key struct{ figure, workload string }
	groups := make(map[key][]GridCell)
	var order []key
	for _, c := range cells {
		if c.Result == nil {
			continue
		}
		k := key{c.Figure, c.Workload}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}

	var b strings.Builder
	for _, k := range order {
		group := groups[k]
		maxTh := 0
		for _, c := range group {
			if c.Threads > maxTh {
				maxTh = c.Threads
			}
		}
		var rows []GridCell
		for _, c := range group {
			if c.Threads == maxTh {
				rows = append(rows, c)
			}
		}
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Engine != rows[j].Engine {
				return false // preserve sweep order between engines
			}
			return rows[i].Extra < rows[j].Extra
		})

		fmt.Fprintf(&b, "#### Phase shares — %s (%d threads, Figure %s grid)\n\n",
			k.workload, maxTh, k.figure)
		b.WriteString("| engine | MTxn/s |")
		for _, p := range commitPhases {
			fmt.Fprintf(&b, " %s |", p)
		}
		// The WAL-path summary column: the share of virtual time spent
		// appending log records plus flushing — the cost group commit
		// coalesces, so before/after tables are compared on it directly.
		b.WriteString(" log+flush |")
		b.WriteString("\n|---|---:|")
		for range commitPhases {
			b.WriteString("---:|")
		}
		b.WriteString("---:|\n")
		for _, c := range rows {
			label := c.Engine
			if c.Extra != "" {
				label += " · " + c.Extra
			}
			snap := c.Result.Obs
			total := snap.TotalPhaseNanos()
			share := func(n uint64) float64 {
				if total == 0 {
					return 0
				}
				return 100 * float64(n) / float64(total)
			}
			fmt.Fprintf(&b, "| %s | %.3f |", label, c.Result.MTxnPerSec)
			for _, p := range commitPhases {
				fmt.Fprintf(&b, " %.1f%% |", share(snap.PhaseNanos[p]))
			}
			fmt.Fprintf(&b, " %.1f%% |\n",
				share(snap.PhaseNanos[obs.PhaseLogAppend]+snap.PhaseNanos[obs.PhaseFlush]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// spliceMarkers delimit a generated section inside a hand-written markdown
// file; everything between them is owned by the generator.
func spliceMarkers(name string) (begin, end string) {
	return "<!-- generated:" + name + ":begin -->", "<!-- generated:" + name + ":end -->"
}

// SpliceMarkdown installs content as the generated section name inside the
// markdown file at path: replacing an existing marker-delimited section,
// appending one when the file exists without markers, or creating the file.
func SpliceMarkdown(path, name, content string) error {
	begin, end := spliceMarkers(name)
	section := begin + "\n" + strings.TrimRight(content, "\n") + "\n" + end + "\n"

	old, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return os.WriteFile(path, []byte(section), 0o644)
	case err != nil:
		return err
	}
	text := string(old)
	bi := strings.Index(text, begin)
	ei := strings.Index(text, end)
	if bi >= 0 && ei > bi {
		text = text[:bi] + section + text[ei+len(end):]
		text = strings.TrimRight(text, "\n") + "\n"
	} else {
		text = strings.TrimRight(text, "\n") + "\n\n" + section
	}
	return os.WriteFile(path, []byte(text), 0o644)
}
