package bench

import (
	"errors"
	"sync/atomic"
	"testing"

	"falcon/internal/core"
	"falcon/internal/workload/ycsb"
)

func TestStopFlagNilAndZero(t *testing.T) {
	var nilFlag *StopFlag
	if nilFlag.Stopped() {
		t.Fatal("nil StopFlag reports stopped")
	}
	var f StopFlag
	if f.Stopped() {
		t.Fatal("zero StopFlag reports stopped")
	}
	f.Stop()
	f.Stop() // idempotent
	if !f.Stopped() {
		t.Fatal("Stop did not latch")
	}
}

// TestRunStopFlagDrains: raising the flag mid-run makes every worker exit
// after its current transaction and Run return ErrStopped well short of the
// configured transaction count.
func TestRunStopFlagDrains(t *testing.T) {
	ecfg := core.FalconConfig()
	ecfg.Threads = 2
	e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
	if err != nil {
		t.Fatal(err)
	}
	var stop StopFlag
	var executed atomic.Uint64
	const perWorker = 1_000_000 // far more than can run before the flag fires
	_, err = Run(e, "YCSB-A", Options{Workers: 2, TxnsPerWorker: perWorker, Stop: &stop},
		func(w int) (int, error) {
			if executed.Add(1) == 50 {
				stop.Stop()
			}
			return 0, d.Next(w)
		})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	// Each worker may finish the transaction it was inside, nothing more.
	if n := executed.Load(); n >= perWorker {
		t.Fatalf("executed %d txns after stop", n)
	}
	// The engine is quiescent: a snapshot here must be coherent.
	if snap := e.ObsSnapshot(); snap.Commits == 0 {
		t.Fatal("no commits recorded before drain")
	}
}
