package bench

import (
	"encoding/json"
	"io"
	"sync"

	"falcon/internal/obs"
)

// StreamWriter emits JSON lines to a shared sink. Parallel sweep runners
// write epoch snapshots through one StreamWriter, so Emit serializes whole
// lines under a mutex — consumers (tail -f, jq) always see complete JSON
// objects.
type StreamWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewStreamWriter wraps w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// Emit marshals v compactly and writes it as one line.
func (s *StreamWriter) Emit(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.w.Write(b)
	return err
}

// EpochLine is one streamed snapshot of a running cell: the cumulative
// post-warmup counters after an epoch, or the final line (Done) when the
// cell completes. Phase nanos are keyed by name so the lines are
// self-describing under jq.
type EpochLine struct {
	Schema       string            `json:"schema"`
	Cell         string            `json:"cell"`
	Epoch        int               `json:"epoch"`
	Done         bool              `json:"done,omitempty"`
	Commits      uint64            `json:"commits"`
	Aborts       uint64            `json:"aborts"`
	MTxnPerSec   float64           `json:"mtxn_per_sec,omitempty"`
	PhaseNanos   map[string]uint64 `json:"phase_nanos"`
	MediaWrites  uint64            `json:"media_writes"`
	MediaReads   uint64            `json:"media_reads"`
	VirtualNanos uint64            `json:"virtual_nanos,omitempty"`
}

// EpochSnapshotLine converts a registry snapshot into a stream line.
// Zero-valued phases are omitted to keep the lines compact.
func EpochSnapshotLine(cell string, epoch int, snap obs.Snapshot) EpochLine {
	phases := make(map[string]uint64, obs.NumPhases)
	for i, n := range snap.PhaseNanos {
		if n > 0 {
			phases[obs.PhaseNames[i]] = n
		}
	}
	return EpochLine{
		Schema:      StreamSchema,
		Cell:        cell,
		Epoch:       epoch,
		Commits:     snap.Commits,
		Aborts:      snap.Aborts,
		PhaseNanos:  phases,
		MediaWrites: snap.Mem.MediaWrites,
		MediaReads:  snap.Mem.MediaReads,
	}
}

// CellDoneLine is the final stream line for a completed cell.
func CellDoneLine(cell string, res *Result) EpochLine {
	line := EpochSnapshotLine(cell, 0, res.Obs)
	line.Done = true
	line.MTxnPerSec = res.MTxnPerSec
	line.VirtualNanos = res.VirtualNanos
	return line
}
