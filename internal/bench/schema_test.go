package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"falcon/internal/obs"
)

// TestSchemaConstantsShape guards the versioning convention itself: every
// schema tag is "falcon/<artifact>/v<N>" and the tags are distinct, so a
// consumer can dispatch on the string without ambiguity.
func TestSchemaConstantsShape(t *testing.T) {
	tags := []string{StreamSchema, SweepCellSchema, HostPerfSchema, obs.SnapshotSchema}
	seen := map[string]bool{}
	for _, tag := range tags {
		if !strings.HasPrefix(tag, "falcon/") || !strings.Contains(tag, "/v") {
			t.Errorf("schema tag %q does not follow falcon/<artifact>/v<N>", tag)
		}
		if seen[tag] {
			t.Errorf("schema tag %q reused by two artifact kinds", tag)
		}
		seen[tag] = true
	}
}

// TestStreamLineSchemaRoundTrip guards the streamed-JSON contract: every
// epoch line carries the schema stamp, and the stamp plus the payload
// survive a marshal/unmarshal round trip so offline consumers (jq, replay
// tooling) can rely on the field.
func TestStreamLineSchemaRoundTrip(t *testing.T) {
	var snap obs.Snapshot
	snap.Commits = 7
	snap.Aborts = 2
	snap.PhaseNanos[0] = 123
	snap.Mem.MediaWrites = 9

	line := EpochSnapshotLine("Falcon/YCSB-A/8", 3, snap)
	if line.Schema != StreamSchema {
		t.Fatalf("EpochSnapshotLine schema = %q, want %q", line.Schema, StreamSchema)
	}
	b, err := json.Marshal(line)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != StreamSchema {
		t.Fatalf("marshalled line schema key = %v, want %q", m["schema"], StreamSchema)
	}
	var back EpochLine
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != StreamSchema || back.Cell != line.Cell || back.Epoch != 3 ||
		back.Commits != 7 || back.Aborts != 2 || back.MediaWrites != 9 {
		t.Fatalf("round trip lost fields: %+v", back)
	}

	done := CellDoneLine("Falcon/YCSB-A/8", &Result{Obs: snap, MTxnPerSec: 1.5, VirtualNanos: 42})
	if done.Schema != StreamSchema {
		t.Fatalf("CellDoneLine schema = %q, want %q", done.Schema, StreamSchema)
	}
	if !done.Done || done.MTxnPerSec != 1.5 || done.VirtualNanos != 42 {
		t.Fatalf("CellDoneLine payload wrong: %+v", done)
	}
}

// TestObsSnapshotJSONSchema checks that the registry snapshot's JSON
// rendering carries its own schema stamp.
func TestObsSnapshotJSONSchema(t *testing.T) {
	var snap obs.Snapshot
	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != obs.SnapshotSchema {
		t.Fatalf("snapshot JSON schema key = %v, want %q", m["schema"], obs.SnapshotSchema)
	}
}
