// Package bench runs workloads against engine configurations and reports
// throughput and latency in virtual time (see package sim for why wall-clock
// measurement is meaningless on this host). It produces the rows and series
// behind every figure reproduced in EXPERIMENTS.md.
package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"falcon/internal/core"
	"falcon/internal/obs"
	"falcon/internal/sim"
)

// ErrStopped reports a run cut short by its Options.Stop flag (an external
// drain, not a worker failure): workers exited after their current
// transaction and the engine is quiescent.
var ErrStopped = errors.New("bench: run stopped")

// TxnFunc executes one transaction for worker w and returns a latency class
// (an arbitrary small int, e.g. the TPC-C transaction type) for percentile
// bookkeeping.
type TxnFunc func(w int) (class int, err error)

// Options parameterize a run.
type Options struct {
	// Workers is the number of worker threads; must not exceed the
	// engine's configured Threads.
	Workers int
	// TxnsPerWorker is the measured transaction count per worker.
	TxnsPerWorker int
	// WarmupPerWorker transactions run before counters/clocks reset.
	WarmupPerWorker int
	// Classes is the number of latency classes (max class + 1); 0 = 1.
	Classes int
	// Trace, when non-nil, arms transaction-level trace capture for the
	// measured phase (warmup is never traced); the dump lands on
	// Result.Trace.
	Trace *obs.TraceOptions
	// Contend arms the contention & flush-amplification observatory for the
	// measured phase (warmup is never attributed); the report lands on
	// Result.Obs.Contend.
	Contend bool
	// EpochTxns, with OnEpoch, splits the measured phase into epochs of
	// this many transactions per worker: after each epoch the workers
	// quiesce and OnEpoch receives the cumulative post-warmup snapshot —
	// the streaming-snapshot hook for watching long sweeps mid-flight.
	EpochTxns int
	// OnEpoch is called after each epoch (and is never called when
	// EpochTxns <= 0). The epoch counter starts at 1.
	OnEpoch func(epoch int, snap obs.Snapshot)
	// Stop, when non-nil, is an external cancellation flag polled alongside
	// the run's internal error-cancel check: once Stop.Stopped() reports
	// true, every worker exits after its current transaction and Run returns
	// ErrStopped. Used for SIGTERM drains that share one flag between a
	// benchmark phase and a serving front-end.
	Stop *StopFlag
	// ParWorkers runs the workers through the engine's deterministic group
	// scheduler (core.Engine.EnterGroup): real goroutines, virtual-time round
	// barriers, results independent of GOMAXPROCS and host schedule. Note
	// that group mode is a different simulated machine than free-running mode
	// (per-worker timing partitions, round-frozen conflict windows), so its
	// virtual numbers are not comparable with ParWorkers=false runs.
	ParWorkers bool
}

// Result is one measured configuration.
type Result struct {
	// Engine and Workload label the run.
	Engine   string
	Workload string
	// Workers actually used.
	Workers int
	// Committed transactions and aborted attempts during measurement.
	Committed uint64
	Aborted   uint64
	// VirtualNanos is the run's completion time (max worker clock).
	VirtualNanos uint64
	// MTxnPerSec is throughput in million transactions per virtual second —
	// the paper's reporting unit. It sums per-worker rates
	// (txns_w / clock_w), the fixed-duration estimator: a real benchmark
	// runs workers for equal time, not equal transaction counts.
	MTxnPerSec float64
	// LatAvgNanos and the quantile columns are per-class virtual latencies
	// recovered from log2-bucketed histograms (avg is exact; quantiles are
	// within one bucket of the sorted-sample value).
	LatAvgNanos []uint64
	LatP50Nanos []uint64
	LatP95Nanos []uint64
	LatP99Nanos []uint64
	// LatHists is the merged per-class latency distribution (log2 buckets),
	// for offline analysis beyond the fixed quantile columns above.
	LatHists []obs.HistogramDump
	// MediaWrites/MediaReads/WriteAmp summarize NVM traffic during the run.
	MediaWrites uint64
	MediaReads  uint64
	WriteAmp    float64
	// Obs is the full observability snapshot of the measured phase: commit
	// path phase nanos, abort taxonomy, WAL/hot-set gauges, and the pmem
	// counters diffed against the post-warmup baseline.
	Obs obs.Snapshot
	// Trace is the transaction-level trace of the measured phase, present
	// only when Options.Trace was set.
	Trace *obs.TraceDump `json:"Trace,omitempty"`
	// ParWorkers records that the run used the deterministic group scheduler.
	ParWorkers bool `json:"ParWorkers,omitempty"`
}

// Run executes the workload on the engine and measures it.
//
// Latency samples are accumulated into per-worker, per-class histograms of
// constant size, so memory does not grow with TxnsPerWorker and no sample
// slices outlive the run. Warmup exclusion is two-sided: the engine-owned
// counters are zeroed by ResetCounters, while the pmem hardware counters —
// owned by the shared simulated device, which warmup leaves warm — are
// excluded by diffing point-in-time snapshots (see the ResetCounters doc
// comment for why they cannot simply be reset).
func Run(e *core.Engine, workload string, opts Options, fn TxnFunc) (*Result, error) {
	if opts.Workers <= 0 || opts.Workers > e.Config().Threads {
		opts.Workers = e.Config().Threads
	}
	if opts.Classes <= 0 {
		opts.Classes = 1
	}

	// hists[w] is worker w's private per-class histogram row; workers never
	// share a histogram, so recording needs no synchronization.
	hists := make([][]obs.Histogram, opts.Workers)
	for w := range hists {
		hists[w] = make([]obs.Histogram, opts.Classes)
	}

	if opts.ParWorkers {
		e.EnterGroup()
		defer e.LeaveGroup()
	}

	runPhase := func(txns int, record bool) error {
		var wg sync.WaitGroup
		errs := make([]error, opts.Workers)
		// cancel aborts the whole phase promptly when any worker fails:
		// without it the failing worker returns while the others grind
		// through their full transaction count.
		var cancel atomic.Bool
		var g *sim.Group
		if opts.ParWorkers {
			g = e.Group()
			g.Begin(opts.Workers)
		}
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if g != nil {
					// Retire from the round scheduler on any exit path —
					// a worker that leaves without this parks the others
					// at the next barrier forever.
					defer g.Leave()
				}
				clk := e.Clock(w)
				for i := 0; i < txns; i++ {
					if cancel.Load() || opts.Stop.Stopped() {
						return
					}
					before := clk.Nanos()
					class, err := fn(w)
					if err != nil {
						errs[w] = fmt.Errorf("worker %d txn %d: %w", w, i, err)
						cancel.Store(true)
						return
					}
					if record {
						if class < 0 || class >= opts.Classes {
							class = 0
						}
						hists[w][class].Observe(clk.Nanos() - before)
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if opts.Stop.Stopped() {
			return ErrStopped
		}
		return nil
	}

	if opts.WarmupPerWorker > 0 {
		if err := runPhase(opts.WarmupPerWorker, false); err != nil {
			return nil, err
		}
	}
	e.ResetClocks()
	e.ResetCounters()
	obs0 := e.ObsSnapshot() // post-warmup baseline (pmem counters et al.)

	// Arm the tracer only for the measured phase: the workers are quiescent
	// here, the same window ResetCounters relies on.
	var tracer *obs.Tracer
	if opts.Trace != nil {
		tracer = obs.NewTracer(e.Config().Threads, *opts.Trace)
		e.SetTracer(tracer)
	}
	// The observatory is armed in the same quiescent window, after the tracer
	// so conflict exemplars can capture span stacks. obs0.Contend is nil, so
	// Sub passes the measured-phase report through untouched.
	if opts.Contend {
		e.SetContend(e.NewObservatory())
	}

	if opts.EpochTxns > 0 && opts.OnEpoch != nil {
		// Epoch streaming: run the measured phase in chunks; between chunks
		// the workers have joined, so the registry snapshot is coherent.
		for done, epoch := 0, 1; done < opts.TxnsPerWorker; epoch++ {
			chunk := opts.EpochTxns
			if done+chunk > opts.TxnsPerWorker {
				chunk = opts.TxnsPerWorker - done
			}
			if err := runPhase(chunk, true); err != nil {
				return nil, err
			}
			done += chunk
			opts.OnEpoch(epoch, e.ObsSnapshot().Sub(obs0))
		}
	} else if err := runPhase(opts.TxnsPerWorker, true); err != nil {
		return nil, err
	}

	snap := e.ObsSnapshot().Sub(obs0)
	res := &Result{
		Engine:       e.Config().Name,
		Workload:     workload,
		Workers:      opts.Workers,
		Committed:    e.Commits(),
		Aborted:      e.Aborts(),
		VirtualNanos: sim.MaxNanos(e.Clocks()),
		MediaWrites:  snap.Mem.MediaWrites,
		MediaReads:   snap.Mem.MediaReads,
		WriteAmp:     snap.Mem.WriteAmplification(),
		Obs:          snap,
		ParWorkers:   opts.ParWorkers,
	}
	for w := 0; w < opts.Workers; w++ {
		if n := e.Clock(w).Nanos(); n > 0 {
			res.MTxnPerSec += float64(opts.TxnsPerWorker) / (float64(n) / 1e9) / 1e6
		}
	}
	res.LatAvgNanos, res.LatP50Nanos, res.LatP95Nanos, res.LatP99Nanos, res.LatHists =
		percentiles(hists, opts.Classes)
	if tracer != nil {
		res.Trace = tracer.Dump()
		e.SetTracer(nil)
	}
	if opts.Contend {
		e.SetContend(nil)
	}
	return res, nil
}

// percentiles merges the per-worker histogram rows class-wise and extracts
// the mean, the p50/p95/p99 quantiles, and the full bucket dump per class.
func percentiles(hists [][]obs.Histogram, classes int) (avg, p50, p95, p99 []uint64, dumps []obs.HistogramDump) {
	avg = make([]uint64, classes)
	p50 = make([]uint64, classes)
	p95 = make([]uint64, classes)
	p99 = make([]uint64, classes)
	dumps = make([]obs.HistogramDump, classes)
	for c := 0; c < classes; c++ {
		var merged obs.Histogram
		for w := range hists {
			merged.Merge(&hists[w][c])
		}
		dumps[c] = merged.Dump()
		if merged.Count() == 0 {
			continue
		}
		avg[c] = merged.Mean()
		p50[c] = merged.Quantile(0.50)
		p95[c] = merged.Quantile(0.95)
		p99[c] = merged.Quantile(0.99)
	}
	return avg, p50, p95, p99, dumps
}

// FormatMTxn renders throughput the way the paper's axes do.
func FormatMTxn(v float64) string {
	return fmt.Sprintf("%.3f MTxn/s", v)
}
