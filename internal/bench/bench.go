// Package bench runs workloads against engine configurations and reports
// throughput and latency in virtual time (see package sim for why wall-clock
// measurement is meaningless on this host). It produces the rows and series
// behind every figure reproduced in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"falcon/internal/core"
	"falcon/internal/sim"
)

// TxnFunc executes one transaction for worker w and returns a latency class
// (an arbitrary small int, e.g. the TPC-C transaction type) for percentile
// bookkeeping.
type TxnFunc func(w int) (class int, err error)

// Options parameterize a run.
type Options struct {
	// Workers is the number of worker threads; must not exceed the
	// engine's configured Threads.
	Workers int
	// TxnsPerWorker is the measured transaction count per worker.
	TxnsPerWorker int
	// WarmupPerWorker transactions run before counters/clocks reset.
	WarmupPerWorker int
	// Classes is the number of latency classes (max class + 1); 0 = 1.
	Classes int
}

// Result is one measured configuration.
type Result struct {
	// Engine and Workload label the run.
	Engine   string
	Workload string
	// Workers actually used.
	Workers int
	// Committed transactions and aborted attempts during measurement.
	Committed uint64
	Aborted   uint64
	// VirtualNanos is the run's completion time (max worker clock).
	VirtualNanos uint64
	// MTxnPerSec is throughput in million transactions per virtual second —
	// the paper's reporting unit. It sums per-worker rates
	// (txns_w / clock_w), the fixed-duration estimator: a real benchmark
	// runs workers for equal time, not equal transaction counts.
	MTxnPerSec float64
	// LatAvgNanos / LatP95Nanos are per-class virtual latencies.
	LatAvgNanos []uint64
	LatP95Nanos []uint64
	// MediaWrites/MediaReads/WriteAmp summarize NVM traffic during the run.
	MediaWrites uint64
	MediaReads  uint64
	WriteAmp    float64
}

// Run executes the workload on the engine and measures it.
func Run(e *core.Engine, workload string, opts Options, fn TxnFunc) (*Result, error) {
	if opts.Workers <= 0 || opts.Workers > e.Config().Threads {
		opts.Workers = e.Config().Threads
	}
	if opts.Classes <= 0 {
		opts.Classes = 1
	}

	runPhase := func(txns int, record bool, samples [][]uint64) error {
		var wg sync.WaitGroup
		errs := make([]error, opts.Workers)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				clk := e.Clock(w)
				for i := 0; i < txns; i++ {
					before := clk.Nanos()
					class, err := fn(w)
					if err != nil {
						errs[w] = fmt.Errorf("worker %d txn %d: %w", w, i, err)
						return
					}
					if record {
						if class < 0 || class >= opts.Classes {
							class = 0
						}
						samples[w] = append(samples[w], uint64(class)<<56|(clk.Nanos()-before))
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if opts.WarmupPerWorker > 0 {
		if err := runPhase(opts.WarmupPerWorker, false, nil); err != nil {
			return nil, err
		}
	}
	e.ResetClocks()
	e.ResetCounters()
	stats0 := e.System().Dev.Stats().Snapshot()

	samples := make([][]uint64, opts.Workers)
	for w := range samples {
		samples[w] = make([]uint64, 0, opts.TxnsPerWorker)
	}
	if err := runPhase(opts.TxnsPerWorker, true, samples); err != nil {
		return nil, err
	}

	stats1 := e.System().Dev.Stats().Snapshot().Sub(stats0)
	res := &Result{
		Engine:       e.Config().Name,
		Workload:     workload,
		Workers:      opts.Workers,
		Committed:    e.Commits(),
		Aborted:      e.Aborts(),
		VirtualNanos: sim.MaxNanos(e.Clocks()),
		MediaWrites:  stats1.MediaWrites,
		MediaReads:   stats1.MediaReads,
		WriteAmp:     stats1.WriteAmplification(),
	}
	for w := 0; w < opts.Workers; w++ {
		if n := e.Clock(w).Nanos(); n > 0 {
			res.MTxnPerSec += float64(opts.TxnsPerWorker) / (float64(n) / 1e9) / 1e6
		}
	}
	res.LatAvgNanos, res.LatP95Nanos = percentiles(samples, opts.Classes)
	return res, nil
}

const latMask = (uint64(1) << 56) - 1

func percentiles(samples [][]uint64, classes int) (avg, p95 []uint64) {
	perClass := make([][]uint64, classes)
	for _, list := range samples {
		for _, s := range list {
			c := int(s >> 56)
			perClass[c] = append(perClass[c], s&latMask)
		}
	}
	avg = make([]uint64, classes)
	p95 = make([]uint64, classes)
	for c, list := range perClass {
		if len(list) == 0 {
			continue
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		var sum uint64
		for _, v := range list {
			sum += v
		}
		avg[c] = sum / uint64(len(list))
		p95[c] = list[(len(list)*95)/100]
	}
	return avg, p95
}

// FormatMTxn renders throughput the way the paper's axes do.
func FormatMTxn(v float64) string {
	return fmt.Sprintf("%.3f MTxn/s", v)
}
