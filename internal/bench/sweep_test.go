package bench

import (
	"fmt"
	"reflect"
	"testing"

	"falcon/internal/core"
	"falcon/internal/workload/ycsb"
)

// sweepCells builds a small grid of single-worker YCSB cells. Single-worker
// cells are bit-deterministic (one virtual clock, no cross-worker
// interleaving on shared simulated state), so they are the right probe for
// runner-order independence.
func sweepCells(t *testing.T) []Cell {
	t.Helper()
	var cells []Cell
	for _, ecfg := range []core.Config{core.FalconConfig(), core.InpConfig()} {
		for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			eng, d := ecfg, dist
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/%s", eng.Name, d),
				Run: func() (*Result, error) {
					cfg := eng
					cfg.Threads = 1
					e, drv, err := NewYCSB(cfg, ycsb.Config{
						Records: 4000, Workload: ycsb.A, Distribution: d,
					})
					if err != nil {
						return nil, err
					}
					return Run(e, "YCSB-A", Options{Workers: 1, TxnsPerWorker: 120, WarmupPerWorker: 30},
						func(w int) (int, error) { return 0, drv.Next(w) })
				},
			})
		}
	}
	return cells
}

// renderTable formats results the way falcon-sweep renders a figure row, so
// the comparison below is a byte-level "the printed tables match" check.
func renderTable(results []CellResult) string {
	s := ""
	for _, cr := range results {
		if cr.Err != nil {
			s += fmt.Sprintf("%-30s%10s\n", cr.Label, "ERR")
			continue
		}
		s += fmt.Sprintf("%-30s%10.3f%12d%14d\n",
			cr.Label, cr.Res.MTxnPerSec, cr.Res.Committed, cr.Res.VirtualNanos)
	}
	return s
}

// TestRunCellsParallelMatchesSequential is the determinism guarantee behind
// falcon-sweep -par: running the grid with concurrent cell runners must
// produce byte-identical tables to a sequential run.
func TestRunCellsParallelMatchesSequential(t *testing.T) {
	seq := RunCells(sweepCells(t), 1)
	par := RunCells(sweepCells(t), 4)

	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	if a, b := renderTable(seq), renderTable(par); a != b {
		t.Fatalf("parallel table differs from sequential:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("cell %d errored: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		a, b := seq[i].Res, par[i].Res
		if a.VirtualNanos != b.VirtualNanos || a.Committed != b.Committed || a.Aborted != b.Aborted {
			t.Errorf("cell %s: virtual results differ: %d/%d/%d vs %d/%d/%d",
				seq[i].Label, a.VirtualNanos, a.Committed, a.Aborted,
				b.VirtualNanos, b.Committed, b.Aborted)
		}
		if !reflect.DeepEqual(a.LatHists, b.LatHists) {
			t.Errorf("cell %s: latency histograms differ", seq[i].Label)
		}
	}
}

// TestRunCellsOrderAndLabels checks results come back in cell order even
// when completion order is scrambled by parallelism.
func TestRunCellsOrderAndLabels(t *testing.T) {
	cells := sweepCells(t)
	results := RunCells(cells, len(cells))
	for i := range cells {
		if results[i].Label != cells[i].Label {
			t.Fatalf("result %d is %q, want %q (order not preserved)", i, results[i].Label, cells[i].Label)
		}
	}
}
