package bench

import (
	"fmt"
	"strings"

	"falcon/internal/core"
	"falcon/internal/workload/ycsb"
)

// HeatTablesMarkdown runs the contention observatory over one Falcon YCSB-A
// cell per request distribution (Uniform vs Zipfian) and renders their
// key-space heat rings and top conflict-attribution buckets side by side —
// the EXPERIMENTS.md evidence that skew, not load, is what concentrates
// conflicts. The cells are independent of whatever grid was just swept, and
// run under the deterministic group scheduler: free-running workers on a
// small host can serialize and dodge every conflict, while group rounds
// force the overlap and make the rendered tables byte-stable across
// regenerations.
func HeatTablesMarkdown() (string, error) {
	const workers, txns, warmup, records = 8, 600, 150, 50_000
	var b strings.Builder
	fmt.Fprintf(&b, "#### Hot-key heat — YCSB-A Uniform vs Zipfian (Falcon, %d workers, %d txns/worker)\n\n",
		workers, txns)
	b.WriteString("Key-space heat rings from the contention observatory (`-contend`): every\n" +
		"conflicting or flushed tuple hashes to one ring bucket, and glyph density\n" +
		"scales with each map's own maximum. Uniform load spreads across the ring;\n" +
		"Zipfian(0.99) concentrates lock/version conflicts onto a few buckets while\n" +
		"flush traffic stays broad.\n\n")
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
		cfg := core.FalconConfig()
		cfg.Threads = workers
		e, d, err := NewYCSB(cfg, ycsb.Config{Records: records, Workload: ycsb.A, Distribution: dist})
		if err != nil {
			return "", fmt.Errorf("heat cell (%s): %w", dist, err)
		}
		res, err := Run(e, "YCSB-A",
			Options{Workers: workers, TxnsPerWorker: txns, WarmupPerWorker: warmup, Contend: true, ParWorkers: true},
			func(w int) (int, error) { return 0, d.Next(w) })
		if err != nil {
			return "", fmt.Errorf("heat cell (%s): %w", dist, err)
		}
		c := res.Obs.Contend
		if c == nil {
			return "", fmt.Errorf("heat cell (%s): observatory produced no report", dist)
		}
		fmt.Fprintf(&b, "**%s** — %d conflicts attributed\n\n", dist, c.TotalConflicts())
		b.WriteString(c.Heat.HeatMarkdown(48))
		top := c.Attribution
		if len(top) > 4 {
			top = top[:4]
		}
		if len(top) > 0 {
			b.WriteString("\n| table | key popularity | kind | conflicts |\n|---|---|---|---:|\n")
			for _, r := range top {
				fmt.Fprintf(&b, "| %s | ~2^%d touches | %s | %d |\n", r.Table, r.PopBucket, r.Kind, r.Conflicts)
			}
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n") + "\n", nil
}
