package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"falcon/internal/core"
	"falcon/internal/workload/ycsb"
)

// HostSpeedupMarkdown times one representative worker-parallel cell (YCSB-A,
// Zipfian, Falcon preset, 8 workers through the deterministic group
// scheduler) at each GOMAXPROCS setting in procs and renders the
// host-speedup-vs-cores table. Each setting is timed rounds times and the
// minimum kept, interleaved so ambient host noise hits every setting
// equally. The group scheduler makes virtual results identical at every
// setting — only host seconds move — so the table is purely a host-cost
// measurement. GOMAXPROCS is restored before returning.
func HostSpeedupMarkdown(procs []int, rounds int) (string, error) {
	const workers, txns, warmup, records = 8, 600, 150, 50_000
	if rounds < 1 {
		rounds = 1
	}
	cell := func() error {
		cfg := core.FalconConfig()
		cfg.Threads = workers
		e, d, err := NewYCSB(cfg, ycsb.Config{
			Records: records, Workload: ycsb.A, Distribution: ycsb.Zipfian,
		})
		if err != nil {
			return err
		}
		_, err = Run(e, "YCSB-A",
			Options{Workers: workers, TxnsPerWorker: txns, WarmupPerWorker: warmup, ParWorkers: true},
			func(w int) (int, error) { return 0, d.Next(w) })
		return err
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	best := make([]float64, len(procs))
	for i := range best {
		best[i] = -1
	}
	for r := 0; r < rounds; r++ {
		for i, p := range procs {
			runtime.GOMAXPROCS(p)
			start := time.Now()
			if err := cell(); err != nil {
				runtime.GOMAXPROCS(prev)
				return "", fmt.Errorf("host-speedup cell (gomaxprocs %d): %w", p, err)
			}
			s := time.Since(start).Seconds()
			if best[i] < 0 || s < best[i] {
				best[i] = s
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "#### Host speedup vs cores — worker-parallel YCSB-A cell (%d workers, %d txns/worker, best of %d)\n\n",
		workers, txns, rounds)
	b.WriteString("Virtual results are byte-identical across every row (deterministic group\nscheduler); only the host wall-clock changes.\n\n")
	b.WriteString("| GOMAXPROCS | cell host s | host speedup | host ns/txn |\n|---:|---:|---:|---:|\n")
	for i, p := range procs {
		speed := best[0] / best[i]
		fmt.Fprintf(&b, "| %d | %.3f | %.2fx | %.0f |\n",
			p, best[i], speed, best[i]*1e9/float64(workers*txns))
	}
	return b.String(), nil
}
