package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"falcon/internal/core"
	"falcon/internal/obs"
	"falcon/internal/workload/ycsb"
)

// TestRunEpochStreaming checks the chunked measured phase: OnEpoch fires on a
// quiescent engine with cumulative post-warmup snapshots, and the final
// result matches a monolithic run's accounting.
func TestRunEpochStreaming(t *testing.T) {
	ecfg := core.FalconConfig()
	ecfg.Threads = 2
	e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []obs.Snapshot
	res, err := Run(e, "YCSB-A", Options{
		Workers: 2, TxnsPerWorker: 100, WarmupPerWorker: 20,
		EpochTxns: 30,
		OnEpoch:   func(epoch int, snap obs.Snapshot) { snaps = append(snaps, snap) },
	}, func(w int) (int, error) { return 0, d.Next(w) })
	if err != nil {
		t.Fatal(err)
	}
	// 100 txns in chunks of 30 → epochs of 30, 30, 30, 10.
	if len(snaps) != 4 {
		t.Fatalf("epochs = %d, want 4", len(snaps))
	}
	var last uint64
	for i, s := range snaps {
		total := s.Commits + s.Aborts
		if total < last {
			t.Fatalf("epoch %d attempts %d < previous %d (must be cumulative)", i+1, total, last)
		}
		last = total
	}
	if snaps[3].Commits != res.Obs.Commits {
		t.Fatalf("final epoch commits %d != result commits %d", snaps[3].Commits, res.Obs.Commits)
	}
	if res.Committed+res.Aborted != uint64(2*100) {
		t.Fatalf("attempts = %d, want 200", res.Committed+res.Aborted)
	}
}

func TestStreamWriterLines(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	snap := obs.Snapshot{Commits: 10, Aborts: 2}
	snap.PhaseNanos[obs.PhaseExec] = 1234
	if err := sw.Emit(EpochSnapshotLine("cell-a", 1, snap)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Emit(CellDoneLine("cell-a", &Result{MTxnPerSec: 1.5, VirtualNanos: 99, Obs: snap})); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []EpochLine
	for sc.Scan() {
		var l EpochLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("line is not valid JSON: %v", err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if lines[0].Cell != "cell-a" || lines[0].Epoch != 1 || lines[0].Commits != 10 {
		t.Fatalf("epoch line = %+v", lines[0])
	}
	if lines[0].PhaseNanos["exec"] != 1234 {
		t.Fatalf("phase map = %+v", lines[0].PhaseNanos)
	}
	if !lines[1].Done || lines[1].MTxnPerSec != 1.5 || lines[1].VirtualNanos != 99 {
		t.Fatalf("done line = %+v", lines[1])
	}
}

// TestRunTraceCapture exercises the bench-level trace arming: the dump covers
// only the measured phase and exports as valid Chrome trace JSON.
func TestRunTraceCapture(t *testing.T) {
	ecfg := core.FalconConfig()
	ecfg.Threads = 2
	e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "YCSB-A",
		Options{Workers: 2, TxnsPerWorker: 50, WarmupPerWorker: 30, Trace: &obs.TraceOptions{Sample: 1}},
		func(w int) (int, error) { return 0, d.Next(w) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Options.Trace set but Result.Trace is nil")
	}
	var txns int
	for _, ev := range res.Trace.Events {
		if ev.Kind == obs.EvTxn {
			txns++
		}
	}
	// Warmup is untraced: exactly the measured transactions appear.
	if txns != 2*50 {
		t.Fatalf("traced txns = %d, want 100 (measured phase only)", txns)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, []obs.NamedDump{{Label: "t", Dump: res.Trace}}); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("bench trace fails Chrome validation: %v", err)
	}
}

func TestPhaseShareMarkdownAndSplice(t *testing.T) {
	res := &Result{MTxnPerSec: 2.5}
	res.Obs.PhaseNanos[obs.PhaseExec] = 750
	res.Obs.PhaseNanos[obs.PhaseFlush] = 250
	cells := []GridCell{
		{Figure: "11", Workload: "YCSB-A", Engine: "Falcon", Threads: 4, Result: res},
		{Figure: "11", Workload: "YCSB-A", Engine: "Inp", Threads: 2, Result: res}, // below max threads: excluded
		{Figure: "11", Workload: "YCSB-A", Engine: "Broken", Threads: 4, Result: nil},
	}
	md := PhaseShareMarkdown(cells)
	if !strings.Contains(md, "| Falcon | 2.500 | 75.0% |") {
		t.Fatalf("markdown lacks the Falcon row:\n%s", md)
	}
	if strings.Contains(md, "Inp") || strings.Contains(md, "Broken") {
		t.Fatalf("markdown includes excluded rows:\n%s", md)
	}

	path := filepath.Join(t.TempDir(), "EXP.md")
	if err := os.WriteFile(path, []byte("# Doc\n\nhand-written text\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SpliceMarkdown(path, "phase-shares", md); err != nil {
		t.Fatal(err)
	}
	// Re-splicing replaces the generated section, not duplicates it.
	if err := SpliceMarkdown(path, "phase-shares", "replaced-content\n"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(got)
	if !strings.Contains(text, "hand-written text") {
		t.Fatal("splice destroyed hand-written content")
	}
	if strings.Contains(text, "Falcon") || !strings.Contains(text, "replaced-content") {
		t.Fatalf("splice did not replace the generated section:\n%s", text)
	}
	if n := strings.Count(text, "generated:phase-shares:begin"); n != 1 {
		t.Fatalf("marker count = %d, want 1", n)
	}
}
