package bench

import "sync/atomic"

// StopFlag is a shared cancellation flag: one writer side (Stop) and any
// number of polling readers (Stopped). bench.Run's workers poll it between
// transactions — the same check that aborts a phase when a worker errors —
// and the serving layer polls it on admission, so a single flag drains both
// an in-flight benchmark phase and a server's request path (SIGTERM →
// Stop() → finish in-flight → seal the group-commit epoch).
//
// The zero value is a not-stopped flag, ready to use.
type StopFlag struct {
	stopped atomic.Bool
}

// Stop raises the flag. Idempotent; safe from any goroutine (including
// signal handlers' goroutines).
func (f *StopFlag) Stop() { f.stopped.Store(true) }

// Stopped reports whether Stop has been called. A nil receiver reports
// false, so optional wiring costs one pointer test.
func (f *StopFlag) Stopped() bool { return f != nil && f.stopped.Load() }
