package bench

import (
	"testing"

	"falcon/internal/core"
	"falcon/internal/workload/tpcc"
	"falcon/internal/workload/ycsb"
)

func TestRunTPCCSmoke(t *testing.T) {
	ecfg := core.FalconConfig()
	ecfg.Threads = 4
	e, d, err := NewTPCC(ecfg, tpcc.Config{Warehouses: 2, Items: 200, CustomersPerDistrict: 30})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "TPC-C", Options{Workers: 4, TxnsPerWorker: 50, WarmupPerWorker: 10, Classes: 5},
		func(w int) (int, error) {
			ty, err := d.NextTyped(w)
			return int(ty), err
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.MTxnPerSec <= 0 || res.VirtualNanos == 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.Committed < 200 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.LatAvgNanos[int(tpcc.TxnNewOrder)] == 0 {
		t.Fatal("NewOrder latency not measured")
	}
}

func TestRunYCSBSmoke(t *testing.T) {
	ecfg := core.ZenSConfig()
	ecfg.Threads = 2
	e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "YCSB-A", Options{Workers: 2, TxnsPerWorker: 100, WarmupPerWorker: 50},
		func(w int) (int, error) { return 0, d.Next(w) })
	if err != nil {
		t.Fatal(err)
	}
	if res.MTxnPerSec <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	// The attached snapshot covers exactly the measured phase: warmup
	// transactions must not leak into it.
	if res.Obs.Commits != res.Committed {
		t.Fatalf("snapshot commits = %d, result committed = %d", res.Obs.Commits, res.Committed)
	}
	if res.Obs.TotalPhaseNanos() == 0 {
		t.Fatal("snapshot has no phase time")
	}
	if res.LatP50Nanos[0] > res.LatP95Nanos[0] || res.LatP95Nanos[0] > res.LatP99Nanos[0] {
		t.Fatalf("quantiles not monotone: %d/%d/%d",
			res.LatP50Nanos[0], res.LatP95Nanos[0], res.LatP99Nanos[0])
	}
}

func TestEstimateDeviceBytesCoversLoad(t *testing.T) {
	// If the estimate were too small, NewTPCC/NewYCSB above would fail with
	// arena exhaustion; exercise a larger shape here.
	ecfg := core.OutpConfig()
	ecfg.Threads = 8
	_, _, err := NewTPCC(ecfg, tpcc.Config{Warehouses: 4, Items: 500, CustomersPerDistrict: 60})
	if err != nil {
		t.Fatal(err)
	}
}
