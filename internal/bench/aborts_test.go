package bench

import (
	"testing"

	"falcon/internal/core"
	"falcon/internal/obs"
	"falcon/internal/workload/ycsb"
)

// runContended runs a fixed, deterministic high-contention YCSB-A cell —
// Zipfian(0.99) keys over a tiny keyspace, four workers in group-scheduled
// rounds — and returns the measured phase's observability snapshot.
func runContended(t *testing.T, group bool) obs.Snapshot {
	t.Helper()
	ecfg := core.FalconConfig()
	ecfg.GroupCommit = group
	ecfg.Threads = 4
	e, d, err := NewYCSB(ecfg, ycsb.Config{
		Records: 200, Fields: 4, FieldBytes: 32,
		Workload: ycsb.A, Distribution: ycsb.Zipfian,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "YCSB-A", Options{Workers: 4, TxnsPerWorker: 300, WarmupPerWorker: 20, ParWorkers: true},
		func(w int) (int, error) { return 0, d.Next(w) })
	if err != nil {
		t.Fatal(err)
	}
	return res.Obs
}

// TestGroupCommitAbortTaxonomy pins the no-wait cost model of group commit:
// splitting commit into a publish point and a deferred durable point must not
// widen the conflict window. Locks release at publish, exactly where the
// per-commit path releases them after its drain, so under identical seeded
// high contention the conflict-abort counts (lock conflicts plus OCC
// validation failures) with group commit must stay within a factor of two of
// the per-commit baseline — and no abort may shift into an unrelated class.
// The cells run deterministically, so a regression here is a real change in
// the conflict window, not scheduling noise.
func TestGroupCommitAbortTaxonomy(t *testing.T) {
	base := runContended(t, false)
	gc := runContended(t, true)

	conflicts := func(s obs.Snapshot) uint64 {
		return s.AbortCounts[obs.AbortLockConflict] + s.AbortCounts[obs.AbortValidation]
	}
	b, g := conflicts(base), conflicts(gc)
	t.Logf("conflict aborts: per-commit %d (lock %d, validation %d) vs group commit %d (lock %d, validation %d)",
		b, base.AbortCounts[obs.AbortLockConflict], base.AbortCounts[obs.AbortValidation],
		g, gc.AbortCounts[obs.AbortLockConflict], gc.AbortCounts[obs.AbortValidation])

	if b == 0 {
		t.Fatal("baseline cell produced no conflict aborts; the contention knobs no longer bite and the comparison is vacuous")
	}
	const factor = 2.0
	if float64(g) > factor*float64(b) {
		t.Errorf("group commit conflict aborts (%d) exceed %.0fx the per-commit baseline (%d): the publish split widened the conflict window", g, factor, b)
	}
	if float64(b) > factor*float64(g) {
		t.Errorf("per-commit conflict aborts (%d) exceed %.0fx the group-commit count (%d): the cells no longer see comparable contention", b, factor, g)
	}

	// Group commit must not manufacture aborts in unrelated classes: resource
	// and fallback classes stay untouched by the WAL-path change.
	for _, r := range []obs.AbortReason{obs.AbortTableFull, obs.AbortLogFull, obs.AbortOther} {
		if gc.AbortCounts[r] != base.AbortCounts[r] {
			t.Errorf("%s aborts changed under group commit: %d vs baseline %d", r, gc.AbortCounts[r], base.AbortCounts[r])
		}
	}
}
