package bench

import (
	"falcon/internal/core"
	"falcon/internal/heap"
	"falcon/internal/index"
	"falcon/internal/pmem"
	"falcon/internal/wal"
	"falcon/internal/workload/tpcc"
	"falcon/internal/workload/ycsb"
)

// EngineConfigs lists the eight engines of the paper's Figures 7–9, in the
// legend's order.
func EngineConfigs() []core.Config {
	return []core.Config{
		core.FalconDRAMIndexConfig(),
		core.FalconConfig(),
		core.FalconAllFlushConfig(),
		core.FalconNoFlushConfig(),
		core.InpConfig(),
		core.OutpConfig(),
		core.ZenSNoFlushConfig(),
		core.ZenSConfig(),
	}
}

// AblationConfigs lists the five engines of Figures 10–11 (the individual
// optimization study).
func AblationConfigs() []core.Config {
	return []core.Config{
		core.InpConfig(),
		core.InpSmallLogWindowConfig(),
		core.InpNoFlushConfig(),
		core.InpHotTupleTrackingConfig(),
		core.FalconConfig(),
	}
}

// EstimateDeviceBytes sizes the simulated NVM device for an engine+tables
// combination, with headroom for windows, indexes and allocator slack.
func EstimateDeviceBytes(cfg core.Config, specs []core.TableSpec) uint64 {
	c := cfg
	if c.Threads == 0 {
		c.Threads = 4
	}
	headroom := cfg.VersionHeadroom
	if headroom == 0 {
		headroom = 4
	}
	var total uint64 = 16 << 20 // catalog, markers, slack
	// Per-thread log windows: Inp's large flushed-log regions with their
	// overflow areas are substantial at high thread counts.
	w := cfg.Window
	if w.Slots == 0 {
		if cfg.Log == core.SmallLogWindow {
			w.Slots = 3
		} else {
			w.Slots = 64
		}
	}
	if w.SlotBytes == 0 {
		w.SlotBytes = 4096
	}
	if w.OverflowBytes == 0 {
		w.OverflowBytes = 64 << 10
	}
	total += wal.BytesNeeded(w) * uint64(c.Threads)
	for _, spec := range specs {
		slots := spec.Capacity
		if cfg.Update == core.OutOfPlace {
			slots *= uint64(headroom)
			if min := uint64(c.Threads) * 128; slots < min {
				slots = min
			}
		}
		total += heap.BytesNeeded(heap.Config{
			SlotSize: spec.Schema.TupleSize(), NSlots: slots, NThreads: c.Threads,
		})
		idxCap := spec.Capacity * 11 / 10
		total += index.HashBytes(idxCap) + index.BTreeBytes(idxCap)
	}
	return total + total/4
}

// CacheBytesFor scales the simulated CPU cache with the worker count,
// approximating the paper's testbed where each of 48 cores contributes
// 1.25 MiB of L2 on top of a 39 MiB shared L3.
func CacheBytesFor(threads int) int {
	if threads <= 0 {
		threads = 4
	}
	return 2<<20 + threads*(256<<10)
}

// NewTPCC builds a loaded TPC-C engine+driver for the given engine config.
func NewTPCC(ecfg core.Config, wcfg tpcc.Config) (*core.Engine, *tpcc.Driver, error) {
	specs := tpcc.TableSpecs(wcfg)
	sys := pmem.NewSystem(pmem.Config{
		DeviceBytes: EstimateDeviceBytes(ecfg, specs),
		CacheBytes:  CacheBytesFor(ecfg.Threads),
	})
	e, err := core.New(sys, ecfg, specs)
	if err != nil {
		return nil, nil, err
	}
	if err := tpcc.Load(e, wcfg); err != nil {
		return nil, nil, err
	}
	d, err := tpcc.NewDriver(e, wcfg)
	if err != nil {
		return nil, nil, err
	}
	return e, d, nil
}

// NewYCSB builds a loaded YCSB engine+driver for the given engine config.
func NewYCSB(ecfg core.Config, wcfg ycsb.Config) (*core.Engine, *ycsb.Driver, error) {
	specs := ycsb.TableSpecs(wcfg)
	sys := pmem.NewSystem(pmem.Config{
		DeviceBytes: EstimateDeviceBytes(ecfg, specs),
		CacheBytes:  CacheBytesFor(ecfg.Threads),
	})
	e, err := core.New(sys, ecfg, specs)
	if err != nil {
		return nil, nil, err
	}
	if err := ycsb.Load(e, wcfg); err != nil {
		return nil, nil, err
	}
	d, err := ycsb.NewDriver(e, wcfg)
	if err != nil {
		return nil, nil, err
	}
	return e, d, nil
}
