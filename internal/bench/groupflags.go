package bench

import (
	"flag"
	"fmt"

	"falcon/internal/core"
	"falcon/internal/wal"
)

// GroupFlag is the shared -groupcommit / -epochns wiring used by the cmd
// tools: Register installs the flags, Apply rewrites an engine config to
// commit through leader-based group commit (durability epochs with coalesced
// flush trains). Out-of-place engines have no redo log to coalesce and are
// left untouched (core.Config.withDefaults clears the knob for them anyway).
type GroupFlag struct {
	// Enable is set by -groupcommit.
	Enable bool
	// EpochNs is set by -epochns; 0 selects wal.DefaultEpochNanos.
	EpochNs uint64
}

// Register installs -groupcommit and -epochns on the default flag set.
func (f *GroupFlag) Register() {
	flag.BoolVar(&f.Enable, "groupcommit", false,
		"commit in-place engines through leader-based group commit: transactions ack at the publish point and a lazy epoch leader seals durability epochs with coalesced flush trains")
	flag.Uint64Var(&f.EpochNs, "epochns", 0,
		fmt.Sprintf("with -groupcommit: durability epoch length in virtual nanoseconds, the bound on group-commit stalls (0 = default %d)", wal.DefaultEpochNanos))
}

// Apply returns cfg rewritten per the flags. In-place engines gain a "+GC"
// name suffix so result tables and trace labels distinguish the commit path.
func (f *GroupFlag) Apply(cfg core.Config) core.Config {
	if !f.Enable {
		return cfg
	}
	cfg.GroupCommit = true
	cfg.GroupEpochNanos = f.EpochNs
	if cfg.Update == core.InPlace {
		cfg.Name += "+GC"
	}
	return cfg
}
