package bench

import (
	"math/bits"
	"testing"

	"falcon/internal/obs"
)

// mkHists builds the per-worker, per-class histogram rows from literal
// (worker, class, latency) samples, mirroring what Run's record path does.
func mkHists(workers, classes int, samples [][3]uint64) [][]obs.Histogram {
	hists := make([][]obs.Histogram, workers)
	for w := range hists {
		hists[w] = make([]obs.Histogram, classes)
	}
	for _, s := range samples {
		hists[s[0]][s[1]].Observe(s[2])
	}
	return hists
}

// sameBucket reports whether two latencies fall in the same log2 histogram
// bucket — the resolution the quantiles are defined to.
func sameBucket(a, b uint64) bool { return bits.Len64(a) == bits.Len64(b) }

func TestPercentilesPerClass(t *testing.T) {
	// Two workers, two classes; class 1 strictly slower. Same sample set the
	// exact (sorted-slice) implementation was tested with: its p95 values
	// were 300 and 3000; the histogram quantiles must land in those buckets.
	hists := mkHists(2, 2, [][3]uint64{
		{0, 0, 100}, {0, 0, 200}, {0, 1, 1000},
		{1, 0, 300}, {1, 1, 3000}, {1, 1, 2000},
	})
	avg, p50, p95, p99, _ := percentiles(hists, 2)
	if avg[0] != 200 {
		t.Errorf("class 0 avg = %d, want 200 (mean is exact)", avg[0])
	}
	if avg[1] != 2000 {
		t.Errorf("class 1 avg = %d, want 2000 (mean is exact)", avg[1])
	}
	if !sameBucket(p95[0], 300) {
		t.Errorf("class 0 p95 = %d, want within one bucket of 300", p95[0])
	}
	if !sameBucket(p95[1], 3000) {
		t.Errorf("class 1 p95 = %d, want within one bucket of 3000", p95[1])
	}
	for c := 0; c < 2; c++ {
		if p50[c] > p95[c] || p95[c] > p99[c] {
			t.Errorf("class %d quantiles not monotone: p50=%d p95=%d p99=%d",
				c, p50[c], p95[c], p99[c])
		}
	}
}

func TestPercentilesEmptyClass(t *testing.T) {
	hists := mkHists(1, 3, [][3]uint64{{0, 0, 5}})
	avg, p50, p95, p99, _ := percentiles(hists, 3)
	for _, c := range []int{1, 2} {
		if avg[c] != 0 || p50[c] != 0 || p95[c] != 0 || p99[c] != 0 {
			t.Errorf("empty class %d must report all-zero, got avg=%d p50=%d p95=%d p99=%d",
				c, avg[c], p50[c], p95[c], p99[c])
		}
	}
	if avg[0] != 5 {
		t.Errorf("class 0 avg = %d, want 5", avg[0])
	}
}

func TestPercentilesSingleSample(t *testing.T) {
	// One sample: min == max clamping makes every quantile exact.
	hists := mkHists(1, 1, [][3]uint64{{0, 0, 777}})
	avg, p50, p95, p99, _ := percentiles(hists, 1)
	if avg[0] != 777 || p50[0] != 777 || p95[0] != 777 || p99[0] != 777 {
		t.Errorf("single sample must be exact at every quantile: avg=%d p50=%d p95=%d p99=%d",
			avg[0], p50[0], p95[0], p99[0])
	}
}

func TestPercentilesMergesAcrossWorkers(t *testing.T) {
	// The same values split across workers must yield the same class result
	// as one worker holding them all.
	split := mkHists(4, 1, [][3]uint64{
		{0, 0, 10}, {1, 0, 20}, {2, 0, 30}, {3, 0, 40},
	})
	whole := mkHists(1, 1, [][3]uint64{
		{0, 0, 10}, {0, 0, 20}, {0, 0, 30}, {0, 0, 40},
	})
	a1, b1, c1, d1, _ := percentiles(split, 1)
	a2, b2, c2, d2, _ := percentiles(whole, 1)
	if a1[0] != a2[0] || b1[0] != b2[0] || c1[0] != c2[0] || d1[0] != d2[0] {
		t.Errorf("worker split changed results: %v/%v/%v/%v vs %v/%v/%v/%v",
			a1[0], b1[0], c1[0], d1[0], a2[0], b2[0], c2[0], d2[0])
	}
}
