package bench

import "testing"

func TestPercentilesPerClass(t *testing.T) {
	// Two workers, two classes; class 1 strictly slower.
	samples := [][]uint64{
		{enc(0, 100), enc(0, 200), enc(1, 1000)},
		{enc(0, 300), enc(1, 3000), enc(1, 2000)},
	}
	avg, p95 := percentiles(samples, 2)
	if avg[0] != 200 {
		t.Errorf("class 0 avg = %d, want 200", avg[0])
	}
	if avg[1] != 2000 {
		t.Errorf("class 1 avg = %d, want 2000", avg[1])
	}
	if p95[0] != 300 || p95[1] != 3000 {
		t.Errorf("p95 = %d,%d", p95[0], p95[1])
	}
}

func TestPercentilesEmptyClass(t *testing.T) {
	avg, p95 := percentiles([][]uint64{{enc(0, 5)}}, 3)
	if avg[1] != 0 || p95[2] != 0 {
		t.Error("empty classes must report zero")
	}
}

func enc(class int, lat uint64) uint64 { return uint64(class)<<56 | lat }
