package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"falcon/internal/core"
	"falcon/internal/workload/tpcc"
	"falcon/internal/workload/ycsb"
)

// runParYCSB runs a fixed seeded YCSB-A cell through the deterministic group
// scheduler and returns the full Result serialized as JSON. With group set,
// the engine commits through leader-based group commit — epoch seals then
// ride the round barrier's canonical commit-tail order, which is exactly the
// mechanism these tests must pin down.
func runParYCSB(t *testing.T, procs int, group bool) []byte {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	ecfg := core.FalconConfig()
	ecfg.GroupCommit = group
	ecfg.Threads = 4
	e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "YCSB-A", Options{Workers: 4, TxnsPerWorker: 60, WarmupPerWorker: 10, ParWorkers: true},
		func(w int) (int, error) { return 0, d.Next(w) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runParTPCC is runParYCSB's TPC-C sibling: the full five-transaction mix,
// including inserts, deletes and scans, through the group scheduler.
func runParTPCC(t *testing.T, procs int, group bool) []byte {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	ecfg := core.FalconConfig()
	ecfg.GroupCommit = group
	ecfg.Threads = 4
	e, d, err := NewTPCC(ecfg, tpcc.Config{Warehouses: 2, Items: 200, CustomersPerDistrict: 30})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, "TPC-C", Options{Workers: 4, TxnsPerWorker: 30, WarmupPerWorker: 5, Classes: 5, ParWorkers: true},
		func(w int) (int, error) {
			ty, err := d.NextTyped(w)
			return int(ty), err
		})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParWorkersDeterministicJSON is the benchmark-level determinism gate:
// with worker-parallel cells enabled, the serialized Result must be
// byte-identical whether the host runs the workers on one core or four, for
// both YCSB-A and TPC-C.
func TestParWorkersDeterministicJSON(t *testing.T) {
	for _, group := range []bool{false, true} {
		name := func(s string) string {
			if group {
				return s + "+GC"
			}
			return s
		}
		group := group
		t.Run(name("YCSB-A"), func(t *testing.T) {
			serial := runParYCSB(t, 1, group)
			par := runParYCSB(t, 4, group)
			if string(serial) != string(par) {
				t.Fatalf("YCSB-A JSON differs across GOMAXPROCS:\n 1: %s\n 4: %s", serial, par)
			}
		})
		t.Run(name("TPC-C"), func(t *testing.T) {
			serial := runParTPCC(t, 1, group)
			par := runParTPCC(t, 4, group)
			if string(serial) != string(par) {
				t.Fatalf("TPC-C JSON differs across GOMAXPROCS:\n 1: %s\n 4: %s", serial, par)
			}
		})
	}
}

// TestRunCancelsPhaseOnWorkerError pins down the prompt-abort contract: when
// one worker's transaction function fails, the other workers must stop at
// their next transaction boundary instead of grinding through the full count.
// Group mode makes the bound tight — workers advance in lockstep rounds, so
// nobody can be more than a round or two past the failure point.
func TestRunCancelsPhaseOnWorkerError(t *testing.T) {
	const failAt = 5
	boom := errors.New("injected workload failure")

	t.Run("group", func(t *testing.T) {
		ecfg := core.FalconConfig()
		ecfg.Threads = 4
		e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
		if err != nil {
			t.Fatal(err)
		}
		var executed [4]int
		_, err = Run(e, "YCSB-A", Options{Workers: 4, TxnsPerWorker: 5000, ParWorkers: true},
			func(w int) (int, error) {
				executed[w]++
				if err := d.Next(w); err != nil {
					return 0, err
				}
				if w == 2 && executed[w] > failAt {
					return 0, boom
				}
				return 0, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("Run returned %v, want the injected error", err)
		}
		for w, n := range executed {
			if n > failAt+2 {
				t.Errorf("worker %d executed %d txns after worker 2 failed at %d; phase not cancelled promptly", w, n, failAt)
			}
		}
	})

	t.Run("free-running", func(t *testing.T) {
		ecfg := core.FalconConfig()
		ecfg.Threads = 4
		e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
		if err != nil {
			t.Fatal(err)
		}
		const total = 100_000
		var executed [4]int
		_, err = Run(e, "YCSB-A", Options{Workers: 4, TxnsPerWorker: total},
			func(w int) (int, error) {
				executed[w]++
				if w == 2 {
					return 0, fmt.Errorf("worker 2: %w", boom)
				}
				runtime.Gosched()
				return 0, d.Next(w)
			})
		if !errors.Is(err, boom) {
			t.Fatalf("Run returned %v, want the injected error", err)
		}
		for w, n := range executed {
			if n >= total {
				t.Errorf("worker %d ran its full %d transactions; cancellation never reached it", w, total)
			}
		}
	})
}

// TestSweepCellsDeterministicAcrossPar runs a small sweep grid twice — cells
// sequential, then cells concurrent — with worker-parallel execution inside
// each cell, and requires byte-identical JSON. This is the sweep-level
// determinism claim behind falcon-sweep's -parworkers flag.
func TestSweepCellsDeterministicAcrossPar(t *testing.T) {
	grid := func(par int) []byte {
		gcfg := core.FalconConfig()
		gcfg.GroupCommit = true
		gcfg.Name += "+GC"
		configs := []core.Config{core.FalconConfig(), core.InpConfig(), gcfg}
		var cells []Cell
		for _, ecfg := range configs {
			ecfg := ecfg
			ecfg.Threads = 4
			cells = append(cells, Cell{
				Label: ecfg.Name,
				Run: func() (*Result, error) {
					e, d, err := NewYCSB(ecfg, ycsb.Config{Records: 2000, Fields: 4, FieldBytes: 32, Workload: ycsb.A})
					if err != nil {
						return nil, err
					}
					return Run(e, "YCSB-A", Options{Workers: 4, TxnsPerWorker: 40, WarmupPerWorker: 10, ParWorkers: true},
						func(w int) (int, error) { return 0, d.Next(w) })
				},
			})
		}
		results := RunCells(cells, par)
		out := make([]*Result, len(results))
		for i := range results {
			if results[i].Err != nil {
				t.Fatal(results[i].Err)
			}
			out[i] = results[i].Res
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := grid(1)
	par := grid(4)
	if string(seq) != string(par) {
		t.Fatalf("sweep JSON differs between par=1 and par=4:\n seq: %s\n par: %s", seq, par)
	}
}
