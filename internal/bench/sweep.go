package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is one grid cell of a parameter sweep: an independent measurement
// with its own isolated engine. Run must build the engine itself (no state
// shared with other cells) so cells can execute concurrently; the virtual
// clocks inside a cell make its measured result independent of host
// scheduling for single-worker cells.
type Cell struct {
	// Label identifies the cell for reporting ("Falcon/TPC-C/8").
	Label string
	// Run builds the cell's engine, executes the workload, and returns the
	// measurement.
	Run func() (*Result, error)
}

// CellResult is the outcome of one Cell, delivered in original cell order.
type CellResult struct {
	Label string
	Res   *Result
	Err   error
}

// RunCells executes the cells with up to par concurrent runners and returns
// their results in the original cell order regardless of completion order.
// par <= 0 uses GOMAXPROCS. Each runner claims the next unstarted cell from
// a shared counter, so long cells don't strand idle runners the way a
// static partition would.
//
// Throughput and latency are measured in virtual time inside each cell, so
// running cells concurrently changes only host wall-clock, not results —
// except that multi-worker cells are host-schedule-dependent with or
// without cell parallelism (their workers interleave on shared simulated
// state). Single-worker cells are bit-deterministic under any par.
func RunCells(cells []Cell, par int) []CellResult {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}
	out := make([]CellResult, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < par; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				res, err := cells[i].Run()
				out[i] = CellResult{Label: cells[i].Label, Res: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
