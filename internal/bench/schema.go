package bench

// Schema identifiers stamped on the tools' JSON artifacts (alongside
// obs.SnapshotSchema for registry snapshots), so offline consumers can detect
// layout drift instead of silently misreading renamed fields. The formats
// only grow; a version bump signals a rename or semantic change, not an
// addition.
const (
	// StreamSchema marks -stream JSONL epoch lines (EpochLine).
	StreamSchema = "falcon/stream/v1"
	// SweepCellSchema marks falcon-sweep -json grid cells.
	SweepCellSchema = "falcon/sweep-cell/v1"
	// HostPerfSchema marks the falcon-hostbench baseline file
	// (BENCH_hostperf.json).
	HostPerfSchema = "falcon/hostperf/v1"
	// LoadgenSchema marks falcon-loadgen -json reports (loadgen.Report).
	LoadgenSchema = "falcon/loadgen/v1"
)
