package pmem

import (
	"sync"
	"testing"

	"falcon/internal/sim"
)

// TestStatsShardMergeUnderConcurrency drives the shared device from many
// workers with distinct shard ids (the engine wiring: one NewWorkerClock per
// worker) and checks Snapshot sums to exactly the event totals — the
// correctness condition behind the sharded counter blocks. Run under -race
// this also proves the shard selection and merge are race-free.
func TestStatsShardMergeUnderConcurrency(t *testing.T) {
	sys := testSystem(EADR)
	const workers = 8
	const storesPerWorker = 500

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := sim.NewWorkerClock(w)
			buf := make([]byte, LineSize)
			for i := 0; i < storesPerWorker; i++ {
				// Disjoint per-worker address ranges keep the workload simple;
				// the cache/XPBuffer state is still fully shared.
				addr := uint64(w)*256*1024 + uint64(i%512)*LineSize
				sys.Space.Write(clk, addr, buf)
			}
		}(w)
	}
	wg.Wait()

	st := sys.Dev.Stats().Snapshot()
	wantStores := uint64(workers * storesPerWorker)
	if st.BytesStored != wantStores*LineSize {
		t.Errorf("BytesStored = %d, want %d", st.BytesStored, wantStores*LineSize)
	}
	if st.CacheHits+st.CacheMisses != wantStores {
		t.Errorf("CacheHits+CacheMisses = %d, want %d (every line store is exactly one)",
			st.CacheHits+st.CacheMisses, wantStores)
	}

	// The events must actually be spread over multiple shards — otherwise the
	// sharding is wired up wrong and everything lands in shard 0.
	stats := sys.Dev.Stats()
	populated := 0
	for i := 0; i < stats.NumShards(); i++ {
		if stats.Shard(i).CacheHits.Load()+stats.Shard(i).CacheMisses.Load() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("events landed in %d shard(s); worker clocks should spread them", populated)
	}
}

// TestStatsShardForAnonymousClock checks nil and anonymous clocks fall back
// to shard 0 rather than panicking or scattering.
func TestStatsShardForAnonymousClock(t *testing.T) {
	var s Stats
	if s.ShardFor(nil) != s.Shard(0) {
		t.Error("nil clock must map to shard 0")
	}
	if s.ShardFor(sim.NewClock()) != s.Shard(0) {
		t.Error("anonymous clock must map to shard 0")
	}
	if s.ShardFor(sim.NewWorkerClock(5)) != s.Shard(5) {
		t.Error("worker clock 5 must map to shard 5")
	}
	if s.ShardFor(sim.NewWorkerClock(numStatShards+3)) != s.Shard(3) {
		t.Error("worker ids beyond the shard count must wrap")
	}
}

// TestFullLineStoreMissSkipsFill pins the write-allocate elision: a store
// covering a whole 64 B line that misses must not read the line from below
// (every byte is about to be overwritten), while a partial store must fill.
func TestFullLineStoreMissSkipsFill(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()

	full := make([]byte, LineSize)
	sys.Space.Write(clk, 0, full)
	if got := sys.Dev.Stats().Snapshot(); got.MediaReads != 0 || got.XPBufferHits != 0 {
		t.Errorf("full-line store miss read from below: MediaReads=%d XPBufferHits=%d",
			got.MediaReads, got.XPBufferHits)
	}

	partial := make([]byte, 8)
	sys.Space.Write(clk, 4096, partial)
	if got := sys.Dev.Stats().Snapshot(); got.MediaReads == 0 && got.XPBufferHits == 0 {
		t.Error("partial-line store miss must fill the line from below")
	}
}
