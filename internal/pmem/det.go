package pmem

import "falcon/internal/sim"

// Deterministic group mode (worker-parallel cells).
//
// In normal mode a cell's workers share one simulated cache and XPBuffer;
// the shared hit/miss/LRU state makes virtual results depend on the host's
// goroutine interleaving, which is why multi-worker cells were only
// repeatable under a fixed schedule. Group mode removes every cross-worker
// data dependency from the hot path:
//
//   - Each worker gets a private, *dataless* cache + XPBuffer partition
//     (1/Nth of the shared capacity) used purely for virtual-time charging:
//     hits, misses, evictions and media costs are all still modelled, but
//     line payloads are never stored.
//   - The device array holds the authoritative bytes. Reads copy straight
//     from it (RawRead, free of charge — the timing walk already charged the
//     access); writes go straight to it (RawWrite). The engine's scheduler
//     (sim.Group) guarantees writes to shared locations happen only at round
//     barriers, so direct device access is race-free.
//
// The partition is a different simulated machine than the shared-cache
// configuration (private slices instead of one contended cache), so group
// mode is opt-in per run; within group mode, results are byte-identical for
// any GOMAXPROCS and any host schedule.
type detPartition struct {
	caches []*Cache
}

// cacheFor routes by the clock's shard id — the same per-worker routing the
// sharded stats use. Anonymous clocks (setup, recovery) share partition 0.
func (p *detPartition) cacheFor(clk *sim.Clock) *Cache {
	s := clk.ShardID()
	if s >= uint64(len(p.caches)) {
		s = 0
	}
	return p.caches[s]
}

// EnterGroup switches the system's space into deterministic group mode for
// the given worker count. The caller must be quiescent. Dirty shared-cache
// state is flushed to the device first (making it authoritative), then the
// shared cache is invalidated so it cannot serve stale lines after the
// group's direct device writes.
func (s *System) EnterGroup(workers int) {
	if workers < 1 {
		workers = 1
	}
	clk := sim.NewClock()
	s.Cache.FlushAll(clk)
	s.Cache.invalidateAll()
	banks := s.cfg.XPBanks / workers
	if banks < 1 {
		banks = 1
	}
	caches := make([]*Cache, workers)
	for w := range caches {
		xpb := NewXPBuffer(s.Dev, s.cfg.XPBufferBytes/workers, banks, s.cfg.Cost)
		xpb.dataless = true
		xpb.trace = s.XPB.trace
		xpb.contend = s.XPB.contend
		c := newCache(xpb, &s.Dev.stats, s.cfg.Mode, s.cfg.CacheBytes/workers,
			s.cfg.CacheWays, s.Dev.Size(), s.cfg.Cost)
		c.dataless = true
		c.contend = s.Cache.contend
		caches[w] = c
	}
	s.Space.det = &detPartition{caches: caches}
}

// LeaveGroup returns the space to shared-cache mode. The shared cache starts
// cold (it was invalidated on entry), exactly like a freshly built system
// over the same device image.
func (s *System) LeaveGroup() { s.Space.det = nil }

// InGroup reports whether deterministic group mode is active.
func (s *System) InGroup() bool { return s.Space.det != nil }

// dramTimingBackend is the level beneath a group-mode DRAM partition cache:
// it charges DRAM latencies and carries no data (the DRAMSpace's flat array
// is accessed directly by the space).
type dramTimingBackend struct {
	cost sim.CostModel
}

func (d *dramTimingBackend) writeBackLine(clk *sim.Clock, lineAddr uint64, data *[LineSize]byte) {
	clk.Advance(d.cost.DRAMNextLine)
}

func (d *dramTimingBackend) fillLine(clk *sim.Clock, lineAddr uint64, dst *[LineSize]byte) {
	clk.Advance(d.cost.DRAMFirstLine)
}

func (d *dramTimingBackend) drain(clk *sim.Clock) {}

// EnterGroup switches the DRAM space into deterministic group mode: private
// dataless timing caches per worker over the shared flat array. See
// System.EnterGroup for the contract.
func (s *DRAMSpace) EnterGroup(workers int, cacheBytes, ways int, cost sim.CostModel) {
	if workers < 1 {
		workers = 1
	}
	clk := sim.NewClock()
	s.cache.FlushAll(clk) // push dirty line payloads into the flat array
	s.cache.invalidateAll()
	back := &dramTimingBackend{cost: cost}
	caches := make([]*Cache, workers)
	for w := range caches {
		c := newCache(back, s.cache.stats, ADR, cacheBytes/workers, ways, s.Size(), cost)
		c.dataless = true
		caches[w] = c
	}
	s.det = &detPartition{caches: caches}
}

// LeaveGroup returns the DRAM space to shared-cache mode (cold cache).
func (s *DRAMSpace) LeaveGroup() { s.det = nil }
