package pmem

import (
	"bytes"
	"math/rand"
	"testing"

	"falcon/internal/sim"
)

func testSystem(mode Mode) *System {
	return NewSystem(Config{
		Mode:          mode,
		DeviceBytes:   4 << 20,
		CacheBytes:    64 << 10,
		CacheWays:     8,
		XPBufferBytes: 8 << 10,
		XPBanks:       4,
	})
}

func TestStoreLoadRoundTrip(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	src := []byte("hello, persistent world")
	sys.Space.Write(clk, 100, src)
	dst := make([]byte, len(src))
	sys.Space.Read(clk, 100, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("read back %q, want %q", dst, src)
	}
}

func TestStoreDoesNotReachMediaUntilWriteback(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	src := bytes.Repeat([]byte{0xAB}, 64)
	sys.Space.Write(clk, 0, src)

	raw := make([]byte, 64)
	sys.Dev.RawRead(0, raw)
	if bytes.Equal(raw, src) {
		t.Fatal("store reached media without any write-back; cache is not functional")
	}

	sys.Space.CLWB(clk, 0, 64)
	sys.Space.SFence(clk)
	sys.XPB.Drain(clk)
	sys.Dev.RawRead(0, raw)
	if !bytes.Equal(raw, src) {
		t.Fatal("clwb+drain did not propagate data to media")
	}
}

func TestCrashEADRPersistsDirtyLines(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	src := bytes.Repeat([]byte{0x5C}, 300) // spans blocks
	sys.Space.Write(clk, 128, src)

	sys2 := sys.Crash()
	got := make([]byte, len(src))
	sys2.Dev.RawRead(128, got)
	if !bytes.Equal(got, src) {
		t.Fatal("eADR crash lost dirty cache lines; they must persist")
	}
}

func TestCrashADRDropsDirtyLines(t *testing.T) {
	sys := testSystem(ADR)
	clk := sim.NewClock()
	src := bytes.Repeat([]byte{0x77}, 64)
	sys.Space.Write(clk, 0, src)

	sys2 := sys.Crash()
	got := make([]byte, len(src))
	sys2.Dev.RawRead(0, got)
	if bytes.Equal(got, src) {
		t.Fatal("ADR crash preserved unflushed data; dirty lines must be lost")
	}
	if sys.Dev.Stats().Snapshot().CrashDroppedLines == 0 {
		t.Error("expected CrashDroppedLines > 0 under ADR")
	}
}

func TestCrashADRKeepsFlushedLines(t *testing.T) {
	sys := testSystem(ADR)
	clk := sim.NewClock()
	src := bytes.Repeat([]byte{0x31}, 128)
	sys.Space.Write(clk, 256, src)
	sys.Space.CLWB(clk, 256, len(src))
	sys.Space.SFence(clk)

	sys2 := sys.Crash()
	got := make([]byte, len(src))
	sys2.Dev.RawRead(256, got)
	if !bytes.Equal(got, src) {
		t.Fatal("ADR crash lost clwb-flushed data; flushed lines reach the WPQ/XPBuffer which is in the persistence domain")
	}
}

func TestReadAfterCrashGoesThroughFreshCache(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	src := []byte("survives the crash")
	sys.Space.Write(clk, 4096, src)
	sys2 := sys.Crash()

	dst := make([]byte, len(src))
	sys2.Space.Read(clk, 4096, dst)
	if !bytes.Equal(dst, src) {
		t.Fatalf("post-crash read = %q, want %q", dst, src)
	}
}

func TestUnalignedStoresPreserveNeighbours(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	// Seed media directly, then overwrite a sub-range through the cache.
	base := bytes.Repeat([]byte{0x11}, 256)
	sys.Space.BulkWrite(1024, base)

	patch := bytes.Repeat([]byte{0x22}, 30)
	sys.Space.Write(clk, 1024+50, patch)

	got := make([]byte, 256)
	sys.Space.Read(clk, 1024, got)
	want := append([]byte{}, base...)
	copy(want[50:80], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("partial-line store corrupted neighbouring bytes (write-allocate fill broken)")
	}
}

func TestPartialBlockEvictionIsAmplified(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	// Write a single 64B line in each of many distinct, distant blocks and
	// flush each immediately: every XPBuffer slot holds one line, so each
	// eviction must read-modify-write.
	for i := uint64(0); i < 512; i++ {
		addr := i * 4096
		sys.Space.Write(clk, addr, make([]byte, LineSize))
		sys.Space.CLWB(clk, addr, LineSize)
	}
	sys.XPB.Drain(clk)
	st := sys.Dev.Stats().Snapshot()
	if st.PartialBlockWrites == 0 {
		t.Fatal("single-line evictions should be partial-block (amplified) writes")
	}
	if st.FullBlockWrites != 0 {
		t.Errorf("expected no full-block writes, got %d", st.FullBlockWrites)
	}
	if wa := st.WriteAmplification(); wa < 3.5 {
		t.Errorf("write amplification for 64B scattered writes = %.2f, want ~4x", wa)
	}
}

func TestAdjacentClwbsMergeIntoFullBlockWrites(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	// Write full 256B blocks and flush all 4 lines together (hinted flush):
	// the XPBuffer should merge them into full-block writes.
	for i := uint64(0); i < 512; i++ {
		addr := i * BlockSize
		sys.Space.Write(clk, addr, make([]byte, BlockSize))
		sys.Space.SFence(clk)
		sys.Space.CLWB(clk, addr, BlockSize)
	}
	sys.XPB.Drain(clk)
	st := sys.Dev.Stats().Snapshot()
	if st.FullBlockWrites == 0 {
		t.Fatal("adjacent-line clwbs never merged into full-block writes")
	}
	if st.PartialBlockWrites > st.FullBlockWrites/10 {
		t.Errorf("too many partial writes (%d) vs full (%d); merge is not working",
			st.PartialBlockWrites, st.FullBlockWrites)
	}
	if wa := st.WriteAmplification(); wa > 1.2 {
		t.Errorf("write amplification for hinted 256B flushes = %.2f, want ~1x", wa)
	}
}

func TestXPBufferServesLoadsFromBufferedLines(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	src := bytes.Repeat([]byte{0x42}, LineSize)
	sys.Space.Write(clk, 0, src)
	sys.Space.CLWB(clk, 0, LineSize) // now in XPBuffer, not yet on media

	// Evict the line from the cache by filling its set with conflicting
	// lines, then load it back: the fill must be served by the XPBuffer.
	// Conflicting addresses: same set index => stride = nsets*LineSize.
	stride := uint64(sys.Cache.nsets) * LineSize
	for i := uint64(1); i <= uint64(sys.Cache.ways)+1; i++ {
		var b [1]byte
		sys.Space.Read(clk, i*stride, b[:])
	}
	before := sys.Dev.Stats().Snapshot().XPBufferHits
	dst := make([]byte, LineSize)
	sys.Space.Read(clk, 0, dst)
	if !bytes.Equal(dst, src) {
		t.Fatal("load returned stale data for a line buffered in the XPBuffer")
	}
	if sys.Dev.Stats().Snapshot().XPBufferHits == before {
		t.Log("note: load was served by cache (line not evicted); stats unchanged")
	}
}

func TestDRAMSpaceRoundTripAndVolatility(t *testing.T) {
	cost := sim.DefaultCostModel()
	d := NewDRAMSpace(1<<20, cost)
	clk := sim.NewClock()
	src := []byte("volatile")
	d.Write(clk, 10, src)
	dst := make([]byte, len(src))
	d.Read(clk, 10, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("DRAM round trip failed")
	}
	if d.Persistent() {
		t.Fatal("DRAMSpace must not report persistent")
	}
	if clk.Nanos() == 0 {
		t.Fatal("DRAM accesses must charge virtual time")
	}
}

func TestVirtualTimeMonotoneAndCharged(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	prev := clk.Nanos()
	for i := 0; i < 1000; i++ {
		addr := uint64(rand.Intn(1 << 18))
		sys.Space.Write(clk, addr&^63, make([]byte, 64))
		if clk.Nanos() < prev {
			t.Fatal("virtual clock went backwards")
		}
		prev = clk.Nanos()
	}
	if clk.Nanos() == 0 {
		t.Fatal("stores charged no virtual time")
	}
}

func TestBulkWriteBypassesSimulation(t *testing.T) {
	sys := testSystem(EADR)
	src := bytes.Repeat([]byte{9}, 1024)
	sys.Space.BulkWrite(0, src)
	st := sys.Dev.Stats().Snapshot()
	if st.MediaWrites != 0 || st.CacheMisses != 0 {
		t.Fatal("BulkWrite must not generate simulated traffic")
	}
	got := make([]byte, 1024)
	sys.Dev.RawRead(0, got)
	if !bytes.Equal(got, src) {
		t.Fatal("BulkWrite content missing from media")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	sys := testSystem(EADR)
	clk := sim.NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	sys.Space.Write(clk, sys.Space.Size()-1, make([]byte, 2))
}
