package pmem

import (
	"bytes"
	"testing"

	"falcon/internal/sim"
)

// TestFaultPlanFiresAtNthEvent: a plan armed on the Nth store panics with an
// InjectedCrash exactly there, and IsInjectedCrash recognises it.
func TestFaultPlanFiresAtNthEvent(t *testing.T) {
	sys := NewSystem(Config{DeviceBytes: 1 << 20})
	plan := &FaultPlan{Event: FaultStore, N: 3, Seed: 1}
	sys.SetFaults(plan)
	clk := sim.NewClock()

	var fired any
	stores := 0
	func() {
		defer func() { fired = recover() }()
		for i := 0; i < 10; i++ {
			var b [8]byte
			sys.Space.Write(clk, uint64(i)*64, b[:])
			stores++
		}
	}()
	if fired == nil {
		t.Fatal("plan never fired")
	}
	if !IsInjectedCrash(fired) {
		panic(fired) // a real bug, not an injection
	}
	if stores != 2 {
		t.Fatalf("crash fired after %d completed stores, want 2 (mid-3rd)", stores)
	}
	if !plan.Tripped() {
		t.Error("Tripped() false after firing")
	}
	// A tripped plan is disarmed: further events must not re-panic (the
	// crash flush itself performs stores and flushes).
	var b [8]byte
	sys.Space.Write(clk, 512, b[:])
}

// TestCountOnlyPlanIsInert: an armed plan with N == 0 counts events without
// ever firing, and perturbs neither virtual time nor simulated state —
// fault hooks must be zero-cost when not firing.
func TestCountOnlyPlanIsInert(t *testing.T) {
	run := func(plan *FaultPlan) (nanos uint64, img []byte) {
		sys := NewSystem(Config{DeviceBytes: 1 << 20, CacheBytes: 4 << 10, XPBufferBytes: 2 << 10, XPBanks: 2})
		if plan != nil {
			sys.SetFaults(plan)
		}
		clk := sim.NewClock()
		var b [64]byte
		for i := 0; i < 400; i++ {
			b[0] = byte(i)
			sys.Space.Write(clk, uint64(i%100)*64, b[:])
			if i%7 == 0 {
				sys.Space.CLWB(clk, uint64(i%100)*64, 64)
				sys.Space.SFence(clk)
			}
		}
		img = make([]byte, 100*64)
		sys.Crash().Dev.RawRead(0, img)
		return clk.Nanos(), img
	}

	plan := &FaultPlan{}
	armedNanos, armedImg := run(plan)
	nilNanos, nilImg := run(nil)
	if armedNanos != nilNanos {
		t.Errorf("virtual time differs: armed %d vs nil %d", armedNanos, nilNanos)
	}
	if !bytes.Equal(armedImg, nilImg) {
		t.Error("durable image differs between armed-unfired and nil plans")
	}
	counts := plan.Counts()
	if counts[FaultStore] == 0 || counts[FaultFlush] == 0 {
		t.Errorf("count-only plan saw no events: %v", counts)
	}
}

// TestXPBufferDrainsOnCrashBothModes pins the §4 contract that motivated the
// crash-flush audit: a line sitting only in the XPBuffer (the ADR
// persistence domain) must reach the media on crash in BOTH modes — the
// WPQ/XPBuffer drain is exactly what ADR hardware guarantees.
func TestXPBufferDrainsOnCrashBothModes(t *testing.T) {
	for _, mode := range []Mode{EADR, ADR} {
		sys := NewSystem(Config{Mode: mode, DeviceBytes: 1 << 20})
		clk := sim.NewClock()
		var line [LineSize]byte
		for i := range line {
			line[i] = byte(i + 1)
		}
		sys.XPB.WriteLine(clk, 4096, &line)

		var before [LineSize]byte
		sys.Dev.RawRead(4096, before[:])
		if bytes.Equal(before[:], line[:]) {
			t.Fatalf("mode %v: line reached media before crash (not buffered)", mode)
		}
		sys2 := sys.Crash()
		var after [LineSize]byte
		sys2.Dev.RawRead(4096, after[:])
		if !bytes.Equal(after[:], line[:]) {
			t.Errorf("mode %v: buffered line lost in crash: %x", mode, after[:8])
		}
	}
}

// TestTornWriteDropsLinesAtomically: torn injection on crash loses whole
// 64-byte lines of one buffered 256-byte block — surviving lines carry the
// new data, dropped lines keep the previous durable content, and at least
// one line of the block is dropped.
func TestTornWriteDropsLinesAtomically(t *testing.T) {
	sys := NewSystem(Config{Mode: ADR, DeviceBytes: 1 << 20})
	clk := sim.NewClock()
	const base = 8192 // block-aligned

	old := make([]byte, BlockSize)
	for i := range old {
		old[i] = 0xAA
	}
	sys.Dev.RawWrite(base, old)

	// Buffer all four lines of the block with new content.
	for l := 0; l < BlockSize/LineSize; l++ {
		var line [LineSize]byte
		for i := range line {
			line[i] = byte(0xB0 + l)
		}
		sys.XPB.WriteLine(clk, base+uint64(l)*LineSize, &line)
	}

	plan := &FaultPlan{Event: FaultStore, N: 1, Torn: true, Seed: 7}
	sys.SetFaults(plan)
	sys2 := sys.Crash()

	got := make([]byte, BlockSize)
	sys2.Dev.RawRead(base, got)
	dropped := 0
	for l := 0; l < BlockSize/LineSize; l++ {
		seg := got[l*LineSize : (l+1)*LineSize]
		switch {
		case bytes.Equal(seg, old[:LineSize]):
			dropped++
		case seg[0] == byte(0xB0+l):
			// intact new line; verify wholly new
			for i := 1; i < LineSize; i++ {
				if seg[i] != byte(0xB0+l) {
					t.Fatalf("line %d mixed old/new bytes — tearing is not line-atomic", l)
				}
			}
		default:
			t.Fatalf("line %d is neither old nor new: %x", l, seg[:8])
		}
	}
	if dropped == 0 {
		t.Error("torn injection dropped no lines")
	}
	if dropped == BlockSize/LineSize+1 {
		t.Error("unreachable") // placate exhaustiveness readers
	}
}

// TestCorruptionFlipsOneByteInRange: corruption injection flips exactly one
// byte, inside the configured range.
func TestCorruptionFlipsOneByteInRange(t *testing.T) {
	sys := NewSystem(Config{Mode: ADR, DeviceBytes: 1 << 20})
	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i)
	}
	sys.Dev.RawWrite(0, img)

	plan := &FaultPlan{Event: FaultStore, N: 1, Corrupt: true, CorruptLo: 1024, CorruptHi: 2048, Seed: 11}
	sys.SetFaults(plan)
	sys2 := sys.Crash()

	got := make([]byte, 4096)
	sys2.Dev.RawRead(0, got)
	diffs := 0
	for i := range img {
		if got[i] != img[i] {
			diffs++
			if i < 1024 || i >= 2048 {
				t.Errorf("corruption outside [1024,2048): offset %d", i)
			}
		}
	}
	if diffs != 1 {
		t.Errorf("corruption flipped %d bytes, want exactly 1", diffs)
	}
}
