package pmem

// ContendKind classifies one flush-traffic event reported to the contention
// observatory's hook. The kinds mirror the writeback paths of the simulated
// memory system: explicit CLWB, hinted flush trains, cache capacity
// evictions, and XPBuffer block evictions.
type ContendKind uint8

const (
	// ContendClwbLine is a dirty 64 B line written back by an explicit CLWB.
	ContendClwbLine ContendKind = iota
	// ContendTrainLine is a dirty line written back inside a CLWBTrain.
	ContendTrainLine
	// ContendEvictLine is a dirty line written back by cache replacement.
	ContendEvictLine
	// ContendXPEvictFull is a fully populated 256 B XPBuffer block eviction
	// (single media write).
	ContendXPEvictFull
	// ContendXPEvictPartial is a partial block eviction (read-modify-write).
	ContendXPEvictPartial
)

// ContendFn receives one flush-traffic event: the causing clock's shard id
// (= worker id, the routing every sharded accumulator here uses) and the
// event's line or block address. pmem sits below obs in the import graph,
// so — like TraceFn — the hook is a plain function type; the observatory in
// obs/contend provides an implementation. Implementations must be
// worker-local on shard: the hook runs under cache-set or buffer-bank
// spinlocks, so it must only touch shard-private state, never allocate, and
// never block.
type ContendFn func(shard uint64, kind ContendKind, addr uint64)

// Banks returns the number of independently locked buffer banks — the set
// count for the observatory's XPBuffer set-contention accounting.
func (b *XPBuffer) Banks() int { return len(b.banks) }
