package pmem

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"falcon/internal/sim"
)

// TestGroupModeDataAuthority checks that group mode serves the bytes written
// before entry (via the flushed shared cache) and after entry (via direct
// device writes), and that leaving the group returns a coherent shared-cache
// view of everything written in group mode.
func TestGroupModeDataAuthority(t *testing.T) {
	sys := NewSystem(Config{DeviceBytes: 1 << 20})
	clk := sim.NewClock()

	pre := []byte("written-before-group-entry......")
	sys.Space.Write(clk, 128, pre)

	sys.EnterGroup(4)
	if !sys.InGroup() {
		t.Fatal("InGroup() = false after EnterGroup")
	}
	got := make([]byte, len(pre))
	sys.Space.Read(clk, 128, got)
	if !bytes.Equal(got, pre) {
		t.Fatalf("group-mode read of pre-entry bytes = %q, want %q", got, pre)
	}

	in := []byte("written-inside-group-mode.......")
	w2 := sim.NewWorkerClock(2)
	sys.Space.Write(w2, 4096, in)
	sys.Space.Read(clk, 4096, got)
	if !bytes.Equal(got, in) {
		t.Fatalf("cross-partition read = %q, want %q", got, in)
	}
	if w2.Nanos() == 0 {
		t.Fatal("group-mode write charged no virtual time")
	}

	sys.LeaveGroup()
	sys.Space.Read(clk, 4096, got)
	if !bytes.Equal(got, in) {
		t.Fatalf("post-group read = %q, want %q", got, in)
	}
	sys.Space.Read(clk, 128, got)
	if !bytes.Equal(got, pre) {
		t.Fatalf("post-group read of pre-entry bytes = %q, want %q", got, pre)
	}
}

// TestGroupModeTimingDeterminism runs the same per-worker access pattern
// under two different parallel schedules and asserts the virtual clocks come
// out identical: partitioned timing state must make per-worker costs a pure
// function of that worker's access sequence.
func TestGroupModeTimingDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const workers = 4
	run := func() []uint64 {
		sys := NewSystem(Config{DeviceBytes: 8 << 20})
		sys.EnterGroup(workers)
		clks := make([]*sim.Clock, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			clks[w] = sim.NewWorkerClock(w)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, 64)
				// Private region per worker plus a shared read-only region.
				base := uint64(w+1) << 20
				for i := 0; i < 2000; i++ {
					sys.Space.Write(clks[w], base+uint64(i*64)%(1<<18), buf)
					sys.Space.Read(clks[w], uint64(i*64)%(1<<16), buf)
					if i%64 == 0 {
						sys.Space.CLWB(clks[w], base, 256)
						sys.Space.SFence(clks[w])
					}
				}
			}(w)
		}
		wg.Wait()
		out := make([]uint64, workers)
		for w := range clks {
			out[w] = clks[w].Nanos()
		}
		return out
	}
	a, b := run(), run()
	for w := range a {
		if a[w] != b[w] {
			t.Fatalf("worker %d virtual time differs across schedules: %d vs %d", w, a[w], b[w])
		}
	}
}

// TestGroupModeDRAM covers the DRAM-space variant: direct flat-array bytes
// with per-worker timing caches.
func TestGroupModeDRAM(t *testing.T) {
	cost := sim.DefaultCostModel()
	s := NewDRAMSpace(1<<20, cost)
	clk := sim.NewClock()
	pre := []byte("dram-pre-group..")
	s.Write(clk, 64, pre)

	s.EnterGroup(2, 1<<20, 8, cost)
	got := make([]byte, len(pre))
	s.Read(clk, 64, got)
	if !bytes.Equal(got, pre) {
		t.Fatalf("group-mode DRAM read = %q, want %q", got, pre)
	}
	in := []byte("dram-in-group...")
	w1 := sim.NewWorkerClock(1)
	s.Write(w1, 2048, in)
	s.Read(clk, 2048, got)
	if !bytes.Equal(got, in) {
		t.Fatalf("cross-partition DRAM read = %q, want %q", got, in)
	}
	s.LeaveGroup()
	s.Read(clk, 2048, got)
	if !bytes.Equal(got, in) {
		t.Fatalf("post-group DRAM read = %q, want %q", got, in)
	}
}
