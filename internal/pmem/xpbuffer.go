package pmem

import "falcon/internal/sim"

// TraceFn receives one XPBuffer eviction for trace capture: the causing
// clock's shard id (= worker id, the same routing the sharded counters use),
// the eviction's virtual-time window, whether the victim block was full
// (single media write) or partial (read-modify-write), and the block
// address. pmem sits below obs in the import graph, so the hook is a plain
// function type; obs.Tracer.PmemTrace matches it. Implementations must be
// worker-local on shard (the hook runs on the goroutine owning the clock).
type TraceFn func(shard uint64, start, end uint64, full bool, blockAddr uint64)

// XPBuffer models the write-combining buffer inside an Optane NVM module
// (paper §3.2, Figure 2). Incoming 64 B cache-line write-backs are staged in
// 256 B block slots. If neighbouring lines of the same block arrive while the
// slot is still resident, they merge and the eventual media write is a single
// full-block write. If a slot is evicted while only partially populated, the
// controller must read the block from the media, merge, and write it back —
// the read-modify-write amplification the paper's hinted flush avoids.
//
// The buffer is banked by block address so concurrent workers contend only
// when they touch nearby blocks, loosely modelling per-DIMM controllers.
type XPBuffer struct {
	dev   *Device
	cost  sim.CostModel
	banks []xpBank
	// faults, when non-nil, counts slot evictions for crash injection (see
	// FaultPlan). The buffer only notes events — it always runs under a bank
	// lock, so the panic fires later at a lock-free point in the cache.
	faults *FaultPlan
	// trace, when non-nil, receives every slot eviction (see TraceFn). The
	// unarmed fast path pays one pointer test per eviction.
	trace TraceFn
	// contend, when non-nil, receives every slot eviction for flush-traffic
	// attribution (see ContendFn). Same one-pointer-test discipline as trace.
	contend ContendFn
	// dataless marks a timing-only buffer (deterministic group mode): slot
	// occupancy, merge accounting and media-cost charging run as usual, but
	// no payload bytes are staged and — critically — evictions never write
	// to the device. In group mode the device bytes are maintained directly
	// by the space; a stale staged payload flushing over them would corrupt
	// the authoritative image, and the read-modify-write media read of a
	// partial eviction would race other workers' direct device writes.
	dataless bool
}

type xpSlot struct {
	blockAddr uint64
	mask      uint8 // bit i set => line i of the block holds valid data
	used      bool
	// LRU list links (indexes into the bank's slot array; -1 = none). The
	// next link doubles as the free-list link while the slot is unused.
	prev, next int
	data       [BlockSize]byte
}

type xpBank struct {
	mu    spinLock
	slots []xpSlot
	index map[uint64]int // blockAddr -> slot
	head  int            // most recently used
	tail  int            // least recently used
	free  int            // head of the unused-slot list (-1 = bank full)
}

// NewXPBuffer creates a buffer with the given total capacity in bytes spread
// over nbanks banks. Capacity is rounded so each bank holds at least one
// slot.
func NewXPBuffer(dev *Device, capacityBytes, nbanks int, cost sim.CostModel) *XPBuffer {
	if nbanks < 1 {
		nbanks = 1
	}
	slotsPerBank := capacityBytes / BlockSize / nbanks
	if slotsPerBank < 1 {
		slotsPerBank = 1
	}
	b := &XPBuffer{dev: dev, cost: cost, banks: make([]xpBank, nbanks)}
	for i := range b.banks {
		bank := &b.banks[i]
		bank.slots = make([]xpSlot, slotsPerBank)
		bank.index = make(map[uint64]int, slotsPerBank)
		bank.head, bank.tail = -1, -1
		// Chain all slots onto the free list through their next links.
		bank.free = 0
		for j := range bank.slots {
			bank.slots[j].prev = -1
			bank.slots[j].next = j + 1
		}
		bank.slots[slotsPerBank-1].next = -1
	}
	return b
}

func (b *XPBuffer) bankFor(blockAddr uint64) *xpBank {
	return &b.banks[(blockAddr/BlockSize)%uint64(len(b.banks))]
}

// WriteLine accepts one dirty 64 B line written back from the CPU cache and
// stages it in the buffer, evicting a victim block to the media if the bank
// is full. Costs are charged to clk (which may be nil during crash flushes).
func (b *XPBuffer) WriteLine(clk *sim.Clock, lineAddr uint64, data *[LineSize]byte) {
	blockAddr := blockFloor(lineAddr)
	lineIdx := int(lineAddr-blockAddr) / LineSize
	bank := b.bankFor(blockAddr)
	sh := b.dev.stats.ShardFor(clk)

	bank.mu.lock()

	if si, ok := bank.index[blockAddr]; ok {
		s := &bank.slots[si]
		if !b.dataless {
			copy(s.data[lineIdx*LineSize:(lineIdx+1)*LineSize], data[:])
		}
		if s.mask&(1<<lineIdx) == 0 {
			s.mask |= 1 << lineIdx
			sh.XPBufferMerges.Add(1)
		}
		bank.touch(si)
		bank.mu.unlock()
		return
	}

	si := bank.takeFreeSlot()
	if si < 0 {
		si = bank.tail
		b.evictSlotLocked(clk, sh, bank, si)
		// evictSlotLocked pushed the slot back on the free list; reclaim it.
		si = bank.takeFreeSlot()
	}
	s := &bank.slots[si]
	s.blockAddr = blockAddr
	s.mask = 1 << lineIdx
	s.used = true
	if !b.dataless {
		copy(s.data[lineIdx*LineSize:(lineIdx+1)*LineSize], data[:])
	}
	bank.index[blockAddr] = si
	bank.pushFront(si)
	bank.mu.unlock()
}

// ReadLine fills dst with the current content of the 64 B line at lineAddr,
// preferring buffered data over the media. It reports whether the XPBuffer
// had the line (so the caller can charge XPBufferHit instead of a media
// read).
func (b *XPBuffer) ReadLine(clk *sim.Clock, lineAddr uint64, dst *[LineSize]byte) (fromBuffer bool) {
	blockAddr := blockFloor(lineAddr)
	lineIdx := int(lineAddr-blockAddr) / LineSize
	bank := b.bankFor(blockAddr)
	sh := b.dev.stats.ShardFor(clk)

	bank.mu.lock()
	if si, ok := bank.index[blockAddr]; ok {
		s := &bank.slots[si]
		if s.mask&(1<<lineIdx) != 0 {
			if !b.dataless {
				copy(dst[:], s.data[lineIdx*LineSize:(lineIdx+1)*LineSize])
			}
			bank.mu.unlock()
			sh.XPBufferHits.Add(1)
			clk.Advance(b.cost.XPBufferHit)
			return true
		}
	}
	// The media read happens under the bank lock, like evictions' media
	// writes, so a fill can never observe a torn concurrent write-back.
	// Dataless buffers charge the read without touching device bytes (the
	// caller reads data straight from the device; see XPBuffer.dataless).
	if !b.dataless {
		b.dev.readLineInto(lineAddr, dst)
	}
	bank.mu.unlock()
	sh.MediaReads.Add(1)
	clk.Advance(b.cost.MediaReadBlock)
	return false
}

// evictSlotLocked writes the victim slot out to the media and returns it to
// the bank's free list. Full blocks cost a single media write; partial
// blocks cost a read-modify-write.
func (b *XPBuffer) evictSlotLocked(clk *sim.Clock, sh *StatShard, bank *xpBank, si int) {
	s := &bank.slots[si]
	if !s.used {
		return
	}
	if b.faults != nil {
		b.faults.note(FaultDrain) // under the bank lock: note only
	}
	evStart := clk.Nanos()
	full := s.mask == (1<<LinesPerBlock)-1
	if full {
		if !b.dataless {
			b.dev.writeBlock(s.blockAddr, s.data[:])
		}
		sh.FullBlockWrites.Add(1)
	} else {
		// Read-modify-write: fetch the block, merge the valid lines, write
		// the whole block back.
		sh.MediaReads.Add(1)
		clk.Advance(b.cost.MediaReadBlock)
		if !b.dataless {
			b.dev.writeLines(s.blockAddr, s.data[:], s.mask)
		}
		sh.PartialBlockWrites.Add(1)
	}
	sh.MediaWrites.Add(1)
	sh.BytesToMedia.Add(BlockSize)
	clk.Advance(b.cost.MediaWriteBlock)
	if b.trace != nil {
		// The hook appends to a worker-local buffer (no locks), so calling
		// it under the bank spinlock is safe.
		b.trace(clk.ShardID(), evStart, clk.Nanos(), full, s.blockAddr)
	}
	if b.contend != nil {
		kind := ContendXPEvictFull
		if !full {
			kind = ContendXPEvictPartial
		}
		b.contend(clk.ShardID(), kind, s.blockAddr)
	}

	delete(bank.index, s.blockAddr)
	bank.unlink(si)
	s.used = false
	s.mask = 0
	s.next = bank.free
	bank.free = si
}

// Drain writes every buffered block to the media. The memory controller is
// inside the persistence domain in both ADR and eADR, so Drain runs on every
// simulated crash; it is also used by Sync for clean shutdowns.
func (b *XPBuffer) Drain(clk *sim.Clock) {
	sh := b.dev.stats.ShardFor(clk)
	for i := range b.banks {
		bank := &b.banks[i]
		bank.mu.lock()
		for bank.tail != -1 {
			b.evictSlotLocked(clk, sh, bank, bank.tail)
		}
		bank.mu.unlock()
	}
}

// tearOne simulates a torn 256 B media write at crash time: one buffered
// block loses a pseudo-random nonempty subset of its valid lines before the
// crash drain. The lost lines keep their previous durable content on the
// media — line-granular tearing, the failure mode of a block write
// interrupted mid-transfer. Candidate selection is deterministic (banks and
// slots in index order) so a seed reproduces the same tear.
func (b *XPBuffer) tearOne(p *FaultPlan) {
	type cand struct {
		bank *xpBank
		si   int
	}
	var cands []cand
	for i := range b.banks {
		bank := &b.banks[i]
		for si := range bank.slots {
			if bank.slots[si].used {
				cands = append(cands, cand{bank, si})
			}
		}
	}
	if len(cands) == 0 {
		return
	}
	state := p.Seed ^ 0x7ea4
	c := cands[rng(&state)%uint64(len(cands))]
	s := &c.bank.slots[c.si]
	drop := uint8(rng(&state)) & s.mask
	if drop == 0 {
		drop = s.mask & (^s.mask + 1) // lowest valid line
	}
	s.mask &^= drop
	if s.mask == 0 {
		delete(c.bank.index, s.blockAddr)
		c.bank.unlink(c.si)
		s.used = false
		s.next = c.bank.free
		c.bank.free = c.si
	}
}

// backend interface adapters (see cache.go).

func (b *XPBuffer) writeBackLine(clk *sim.Clock, lineAddr uint64, data *[LineSize]byte) {
	b.WriteLine(clk, lineAddr, data)
}

func (b *XPBuffer) fillLine(clk *sim.Clock, lineAddr uint64, dst *[LineSize]byte) {
	b.ReadLine(clk, lineAddr, dst)
}

func (b *XPBuffer) drain(clk *sim.Clock) { b.Drain(clk) }

// ---- bank LRU / free-list helpers (caller holds bank.mu) ----

// takeFreeSlot pops the free-list head, replacing the former O(slots) scan
// for an unused slot with a constant-time unlink.
func (k *xpBank) takeFreeSlot() int {
	si := k.free
	if si >= 0 {
		k.free = k.slots[si].next
		k.slots[si].next = -1
	}
	return si
}

func (k *xpBank) pushFront(si int) {
	s := &k.slots[si]
	s.prev = -1
	s.next = k.head
	if k.head != -1 {
		k.slots[k.head].prev = si
	}
	k.head = si
	if k.tail == -1 {
		k.tail = si
	}
}

func (k *xpBank) unlink(si int) {
	s := &k.slots[si]
	if s.prev != -1 {
		k.slots[s.prev].next = s.next
	} else if k.head == si {
		k.head = s.next
	}
	if s.next != -1 {
		k.slots[s.next].prev = s.prev
	} else if k.tail == si {
		k.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

func (k *xpBank) touch(si int) {
	if k.head == si {
		return
	}
	k.unlink(si)
	k.pushFront(si)
}
