package pmem

import (
	"sync"

	"falcon/internal/sim"
)

// backend is the memory level beneath a Cache: the XPBuffer+media stack for
// NVM, or a flat DRAM array for volatile spaces. Write-backs and fills charge
// the backend's own latencies.
type backend interface {
	// writeBackLine accepts one dirty 64 B line written back from the cache.
	writeBackLine(clk *sim.Clock, lineAddr uint64, data *[LineSize]byte)
	// fillLine reads the current content of one 64 B line into dst.
	fillLine(clk *sim.Clock, lineAddr uint64, dst *[LineSize]byte)
	// drain propagates any buffered state to its durable/home location.
	drain(clk *sim.Clock)
}

// Cache is a functional set-associative CPU cache in front of a memory
// backend. Dirty lines hold the authoritative copy of their data: the
// backend only sees a line when it is written back by replacement, by CLWB,
// or by the eADR crash flush. This makes persistence behaviour — the entire
// subject of the paper — directly observable in tests.
type Cache struct {
	mode  Mode
	ways  int
	nsets uint64
	limit uint64
	sets  []cacheSet
	lower backend
	stats *Stats
	cost  sim.CostModel
}

type cacheLine struct {
	addr  uint64 // line-aligned address; meaningful only when state != lineInvalid
	state uint8
	lru   uint64 // last-access tick (per set)
	data  [LineSize]byte
}

const (
	lineInvalid uint8 = iota
	lineClean
	lineDirty
)

type cacheSet struct {
	mu   sync.Mutex
	tick uint64
	line []cacheLine
}

// newCache creates a cache of capacityBytes with the given associativity
// over the backend. The set count is rounded down to a power of two so set
// indexing is a mask. limit bounds valid addresses.
func newCache(lower backend, stats *Stats, mode Mode, capacityBytes, ways int, limit uint64, cost sim.CostModel) *Cache {
	if ways < 1 {
		ways = 1
	}
	nsets := uint64(capacityBytes / LineSize / ways)
	if nsets < 1 {
		nsets = 1
	}
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1 // round down to a power of two
	}
	c := &Cache{mode: mode, ways: ways, nsets: nsets, limit: limit, lower: lower, stats: stats, cost: cost}
	c.sets = make([]cacheSet, nsets)
	for i := range c.sets {
		c.sets[i].line = make([]cacheLine, ways)
	}
	return c
}

// Mode returns the persistence domain configuration.
func (c *Cache) Mode() Mode { return c.mode }

// setFor hashes the line address to a set. Real last-level caches hash
// their set index (Intel's slice/CBo hashing), which decorrelates the
// eviction times of adjacent lines; without this, a tuple's lines would be
// evicted together and merge in the XPBuffer even when never flushed,
// erasing the write-amplification effect the paper builds on (§3.3).
func (c *Cache) setFor(lineAddr uint64) *cacheSet {
	x := lineAddr / LineSize
	x ^= x >> 17
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return &c.sets[x&(c.nsets-1)]
}

func (c *Cache) checkRange(addr uint64, n int) {
	if addr+uint64(n) > c.limit {
		panic("pmem: access beyond space bounds")
	}
}

// Store writes src to [addr, addr+len(src)), installing the affected lines
// as dirty. The backend is not touched except through replacement
// write-backs.
func (c *Cache) Store(clk *sim.Clock, addr uint64, src []byte) {
	c.checkRange(addr, len(src))
	c.stats.BytesStored.Add(uint64(len(src)))
	for len(src) > 0 {
		la := lineFloor(addr)
		off := int(addr - la)
		n := LineSize - off
		if n > len(src) {
			n = len(src)
		}
		c.storeLine(clk, la, off, src[:n])
		addr += uint64(n)
		src = src[n:]
	}
}

func (c *Cache) storeLine(clk *sim.Clock, lineAddr uint64, off int, src []byte) {
	set := c.setFor(lineAddr)
	set.mu.Lock()
	defer set.mu.Unlock()

	if ln := set.find(lineAddr); ln != nil {
		copy(ln.data[off:off+len(src)], src)
		ln.state = lineDirty
		ln.lru = set.nextTick()
		c.stats.CacheHits.Add(1)
		clk.Advance(c.cost.CacheHitLine)
		return
	}

	ln := c.victimLocked(clk, set)
	ln.addr = lineAddr
	ln.lru = set.nextTick()
	c.stats.CacheMisses.Add(1)
	clk.Advance(c.cost.CacheMissLine)
	if off != 0 || len(src) != LineSize {
		// Write-allocate with fill: the untouched bytes of the line must
		// come from below.
		c.lower.fillLine(clk, lineAddr, &ln.data)
	}
	copy(ln.data[off:off+len(src)], src)
	ln.state = lineDirty
}

// Load reads [addr, addr+len(dst)) into dst through the cache, installing
// missing lines as clean.
func (c *Cache) Load(clk *sim.Clock, addr uint64, dst []byte) {
	c.checkRange(addr, len(dst))
	for len(dst) > 0 {
		la := lineFloor(addr)
		off := int(addr - la)
		n := LineSize - off
		if n > len(dst) {
			n = len(dst)
		}
		c.loadLine(clk, la, off, dst[:n])
		addr += uint64(n)
		dst = dst[n:]
	}
}

func (c *Cache) loadLine(clk *sim.Clock, lineAddr uint64, off int, dst []byte) {
	set := c.setFor(lineAddr)
	set.mu.Lock()
	defer set.mu.Unlock()

	if ln := set.find(lineAddr); ln != nil {
		copy(dst, ln.data[off:off+len(dst)])
		ln.lru = set.nextTick()
		c.stats.CacheHits.Add(1)
		clk.Advance(c.cost.CacheHitLine)
		return
	}

	ln := c.victimLocked(clk, set)
	ln.addr = lineAddr
	ln.lru = set.nextTick()
	c.stats.CacheMisses.Add(1)
	clk.Advance(c.cost.CacheMissLine)
	c.lower.fillLine(clk, lineAddr, &ln.data)
	ln.state = lineClean
	copy(dst, ln.data[off:off+len(dst)])
}

// CLWB writes back the lines covering [addr, addr+n) if they are present and
// dirty, leaving them resident and clean — the semantics of the clwb
// instruction. The issue cost is charged per line regardless of residency;
// the paper's hinted flush (<sfence + clwb*>) does not stall for completion,
// so no completion wait is charged.
func (c *Cache) CLWB(clk *sim.Clock, addr uint64, n int) {
	if n <= 0 {
		return
	}
	c.checkRange(addr, n)
	end := addr + uint64(n)
	for la := lineFloor(addr); la < end; la += LineSize {
		clk.Advance(c.cost.ClwbIssue)
		set := c.setFor(la)
		set.mu.Lock()
		if ln := set.find(la); ln != nil && ln.state == lineDirty {
			clk.Advance(c.cost.LineWriteback)
			c.lower.writeBackLine(clk, la, &ln.data)
			ln.state = lineClean
			c.stats.ClwbWritebacks.Add(1)
		}
		set.mu.Unlock()
	}
}

// SFence charges the fence cost. Ordering itself needs no modelling: the
// simulation executes each worker's operations in program order.
func (c *Cache) SFence(clk *sim.Clock) { clk.Advance(c.cost.Sfence) }

// FlushAll writes back every dirty line (clean shutdown / sync point). Lines
// remain resident and clean.
func (c *Cache) FlushAll(clk *sim.Clock) {
	for i := range c.sets {
		set := &c.sets[i]
		set.mu.Lock()
		for j := range set.line {
			ln := &set.line[j]
			if ln.state == lineDirty {
				c.lower.writeBackLine(clk, ln.addr, &ln.data)
				ln.state = lineClean
			}
		}
		set.mu.Unlock()
	}
	c.lower.drain(clk)
}

// CrashFlush simulates a power failure. Under eADR every dirty line reaches
// the backend (the cache is in the persistence domain); under ADR dirty
// lines are lost. In both modes buffered controller state drains (the
// WPQ/XPBuffer is inside the ADR domain). The cache is left empty either way
// — a restarted system boots cold.
func (c *Cache) CrashFlush() {
	clk := sim.NewClock() // crash flushing is not charged to any worker
	for i := range c.sets {
		set := &c.sets[i]
		set.mu.Lock()
		for j := range set.line {
			ln := &set.line[j]
			if ln.state == lineDirty {
				if c.mode == EADR {
					c.lower.writeBackLine(clk, ln.addr, &ln.data)
					c.stats.CrashFlushedLines.Add(1)
				} else {
					c.stats.CrashDroppedLines.Add(1)
				}
			}
			ln.state = lineInvalid
		}
		set.mu.Unlock()
	}
	c.lower.drain(clk)
}

// victimLocked returns a line slot to (re)use in the set, writing back the
// evicted line if it was dirty. Caller holds set.mu.
func (c *Cache) victimLocked(clk *sim.Clock, set *cacheSet) *cacheLine {
	var victim *cacheLine
	for i := range set.line {
		ln := &set.line[i]
		if ln.state == lineInvalid {
			return ln
		}
		if victim == nil || ln.lru < victim.lru {
			victim = ln
		}
	}
	if victim.state == lineDirty {
		clk.Advance(c.cost.LineWriteback)
		c.lower.writeBackLine(clk, victim.addr, &victim.data)
		c.stats.DirtyEvictions.Add(1)
	} else {
		c.stats.CleanEvictions.Add(1)
	}
	victim.state = lineInvalid
	return victim
}

func (s *cacheSet) find(lineAddr uint64) *cacheLine {
	for i := range s.line {
		ln := &s.line[i]
		if ln.state != lineInvalid && ln.addr == lineAddr {
			return ln
		}
	}
	return nil
}

func (s *cacheSet) nextTick() uint64 {
	s.tick++
	return s.tick
}
