package pmem

import "falcon/internal/sim"

// backend is the memory level beneath a Cache: the XPBuffer+media stack for
// NVM, or a flat DRAM array for volatile spaces. Write-backs and fills charge
// the backend's own latencies.
type backend interface {
	// writeBackLine accepts one dirty 64 B line written back from the cache.
	writeBackLine(clk *sim.Clock, lineAddr uint64, data *[LineSize]byte)
	// fillLine reads the current content of one 64 B line into dst.
	fillLine(clk *sim.Clock, lineAddr uint64, dst *[LineSize]byte)
	// drain propagates any buffered state to its durable/home location.
	drain(clk *sim.Clock)
}

// Cache is a functional set-associative CPU cache in front of a memory
// backend. Dirty lines hold the authoritative copy of their data: the
// backend only sees a line when it is written back by replacement, by CLWB,
// or by the eADR crash flush. This makes persistence behaviour — the entire
// subject of the paper — directly observable in tests.
//
// The store/load line paths are the hottest host-side code in the whole
// simulation (every simulated memory access funnels through them), so they
// are written lock-lean: a bare address-compare scan on the hit path with
// the victim walk deferred to misses, explicit unlocks instead of defer,
// and per-worker stats shards instead of shared counters.
type Cache struct {
	mode  Mode
	ways  int
	nsets uint64
	limit uint64
	sets  []cacheSet
	lower backend
	stats *Stats
	cost  sim.CostModel
	// faults, when non-nil, is the armed crash-injection plan (test
	// harnesses only; see FaultPlan). Nil on every production path, so the
	// hot loops pay a single predictable branch.
	faults *FaultPlan
	// contend, when non-nil, receives every dirty-line writeback for
	// flush-traffic attribution (see ContendFn). Writebacks are off the
	// hit path, so the disarmed cost is one pointer test per writeback.
	contend ContendFn
	// dataless marks a timing-only cache: hit/miss/eviction state and cost
	// charging run as usual, but line payloads are never copied in or out.
	// Deterministic worker-parallel mode uses one dataless cache per worker
	// for timing while the device holds the authoritative bytes (see
	// System.EnterGroup) — payload copies here would both waste host work
	// and race with other workers' direct device access.
	dataless bool
}

// lineMeta is the scanned-per-access part of a cache line. It is kept apart
// from the 64 B payloads so the way walk in findHit/victim streams over a
// compact array (24 B per way) instead of striding across payload data —
// with 8–16 ways that is the difference between one or two host cache lines
// and a dozen.
type lineMeta struct {
	addr  uint64 // line-aligned address; meaningful only when state != lineInvalid
	lru   uint64 // last-access tick (per set)
	state uint8
}

const (
	lineInvalid uint8 = iota
	lineClean
	lineDirty
)

// cacheSet occupies exactly one host cache line (4 B lock + padding + 8 B tick + two
// 24 B slice headers): its mutex and LRU tick are written on every access,
// and without that sizing adjacent sets would share a host cache line and
// bounce it between workers hitting different sets.
type cacheSet struct {
	mu   spinLock
	tick uint64
	meta []lineMeta
	data [][LineSize]byte
}

// newCache creates a cache of capacityBytes with the given associativity
// over the backend. The set count is rounded down to a power of two so set
// indexing is a mask. limit bounds valid addresses.
func newCache(lower backend, stats *Stats, mode Mode, capacityBytes, ways int, limit uint64, cost sim.CostModel) *Cache {
	if ways < 1 {
		ways = 1
	}
	nsets := uint64(capacityBytes / LineSize / ways)
	if nsets < 1 {
		nsets = 1
	}
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1 // round down to a power of two
	}
	c := &Cache{mode: mode, ways: ways, nsets: nsets, limit: limit, lower: lower, stats: stats, cost: cost}
	c.sets = make([]cacheSet, nsets)
	for i := range c.sets {
		c.sets[i].meta = make([]lineMeta, ways)
		c.sets[i].data = make([][LineSize]byte, ways)
	}
	return c
}

// Mode returns the persistence domain configuration.
func (c *Cache) Mode() Mode { return c.mode }

// setFor hashes the line address to a set. Real last-level caches hash
// their set index (Intel's slice/CBo hashing), which decorrelates the
// eviction times of adjacent lines; without this, a tuple's lines would be
// evicted together and merge in the XPBuffer even when never flushed,
// erasing the write-amplification effect the paper builds on (§3.3).
func (c *Cache) setFor(lineAddr uint64) *cacheSet {
	x := lineAddr / LineSize
	x ^= x >> 17
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return &c.sets[x&(c.nsets-1)]
}

func (c *Cache) checkRange(addr uint64, n int) {
	if addr+uint64(n) > c.limit {
		panic("pmem: access beyond space bounds")
	}
}

// Store writes src to [addr, addr+len(src)), installing the affected lines
// as dirty. The backend is not touched except through replacement
// write-backs.
func (c *Cache) Store(clk *sim.Clock, addr uint64, src []byte) {
	c.checkRange(addr, len(src))
	if c.faults != nil {
		c.faults.note(FaultStore)
		c.faults.check()
	}
	sh := c.stats.ShardFor(clk)
	sh.BytesStored.Add(uint64(len(src)))
	for len(src) > 0 {
		la := lineFloor(addr)
		off := int(addr - la)
		n := LineSize - off
		if n > len(src) {
			n = len(src)
		}
		c.storeLine(clk, sh, la, off, src[:n])
		if c.faults != nil {
			// A line store may have noted evictions/drains under the set
			// lock; fire the pending crash now that no lock is held.
			c.faults.check()
		}
		addr += uint64(n)
		src = src[n:]
	}
}

func (c *Cache) storeLine(clk *sim.Clock, sh *StatShard, lineAddr uint64, off int, src []byte) {
	set := c.setFor(lineAddr)
	set.mu.lock()

	if w := set.findHit(lineAddr); w >= 0 {
		if !c.dataless {
			copy(set.data[w][off:off+len(src)], src)
		}
		set.meta[w].state = lineDirty
		set.tick++
		set.meta[w].lru = set.tick
		set.mu.unlock()
		sh.CacheHits.Add(1)
		clk.Advance(c.cost.CacheHitLine)
		return
	}

	w := set.victim()
	c.evictLocked(clk, sh, set, w)
	m := &set.meta[w]
	m.addr = lineAddr
	set.tick++
	m.lru = set.tick
	sh.CacheMisses.Add(1)
	clk.Advance(c.cost.CacheMissLine)
	if off != 0 || len(src) != LineSize {
		// Write-allocate with fill: the untouched bytes of the line must
		// come from below. A store covering the whole line skips the fill —
		// every byte is about to be overwritten, so the read-modify-write
		// would be pure wasted host work and a spurious media/buffer read.
		c.lower.fillLine(clk, lineAddr, &set.data[w])
	}
	if !c.dataless {
		copy(set.data[w][off:off+len(src)], src)
	}
	m.state = lineDirty
	set.mu.unlock()
}

// Load reads [addr, addr+len(dst)) into dst through the cache, installing
// missing lines as clean.
func (c *Cache) Load(clk *sim.Clock, addr uint64, dst []byte) {
	c.checkRange(addr, len(dst))
	sh := c.stats.ShardFor(clk)
	for len(dst) > 0 {
		la := lineFloor(addr)
		off := int(addr - la)
		n := LineSize - off
		if n > len(dst) {
			n = len(dst)
		}
		c.loadLine(clk, sh, la, off, dst[:n])
		if c.faults != nil {
			c.faults.check() // evictions noted under the set lock
		}
		addr += uint64(n)
		dst = dst[n:]
	}
}

func (c *Cache) loadLine(clk *sim.Clock, sh *StatShard, lineAddr uint64, off int, dst []byte) {
	set := c.setFor(lineAddr)
	set.mu.lock()

	if w := set.findHit(lineAddr); w >= 0 {
		if !c.dataless {
			copy(dst, set.data[w][off:off+len(dst)])
		}
		set.tick++
		set.meta[w].lru = set.tick
		set.mu.unlock()
		sh.CacheHits.Add(1)
		clk.Advance(c.cost.CacheHitLine)
		return
	}

	w := set.victim()
	c.evictLocked(clk, sh, set, w)
	m := &set.meta[w]
	m.addr = lineAddr
	set.tick++
	m.lru = set.tick
	sh.CacheMisses.Add(1)
	clk.Advance(c.cost.CacheMissLine)
	c.lower.fillLine(clk, lineAddr, &set.data[w])
	m.state = lineClean
	if !c.dataless {
		copy(dst, set.data[w][off:off+len(dst)])
	}
	set.mu.unlock()
}

// CLWB writes back the lines covering [addr, addr+n) if they are present and
// dirty, leaving them resident and clean — the semantics of the clwb
// instruction. The issue cost is charged per line regardless of residency;
// the paper's hinted flush (<sfence + clwb*>) does not stall for completion,
// so no completion wait is charged.
func (c *Cache) CLWB(clk *sim.Clock, addr uint64, n int) {
	if n <= 0 {
		return
	}
	c.checkRange(addr, n)
	sh := c.stats.ShardFor(clk)
	end := addr + uint64(n)
	for la := lineFloor(addr); la < end; la += LineSize {
		if c.faults != nil {
			c.faults.note(FaultFlush)
			c.faults.check()
		}
		clk.Advance(c.cost.ClwbIssue)
		set := c.setFor(la)
		set.mu.lock()
		if w := set.findHit(la); w >= 0 && set.meta[w].state == lineDirty {
			clk.Advance(c.cost.LineWriteback)
			c.lower.writeBackLine(clk, la, &set.data[w])
			set.meta[w].state = lineClean
			sh.ClwbWritebacks.Add(1)
			if c.contend != nil {
				c.contend(clk.ShardID(), ContendClwbLine, la)
			}
		}
		set.mu.unlock()
		if c.faults != nil {
			c.faults.check() // drains noted under the bank lock
		}
	}
}

// Span is one contiguous byte range of a flush train.
type Span struct {
	Off uint64
	N   int
}

// Lines returns the number of 64 B cache lines the span covers.
func (s Span) Lines() int {
	if s.N <= 0 {
		return 0
	}
	first := lineFloor(s.Off)
	last := lineFloor(s.Off + uint64(s.N) - 1)
	return int((last-first)/LineSize) + 1
}

// CLWBTrain writes back the lines covering each span as one hinted
// multi-line flush train: the leading line of every span charges the full
// ClwbIssue, each further adjacent line only ClwbTrainNext — the coalesced
// persistence primitive behind leader-based group commit. Per-line write-back
// semantics are identical to CLWB (dirty resident lines go down and stay
// resident clean), and every line remains an individual FaultFlush point so
// mid-train crash seeds fall out of the existing fault calibration.
func (c *Cache) CLWBTrain(clk *sim.Clock, spans []Span) {
	sh := c.stats.ShardFor(clk)
	trained := false
	for _, sp := range spans {
		if sp.N <= 0 {
			continue
		}
		c.checkRange(sp.Off, sp.N)
		trained = true
		end := sp.Off + uint64(sp.N)
		first := true
		for la := lineFloor(sp.Off); la < end; la += LineSize {
			if c.faults != nil {
				c.faults.note(FaultFlush)
				c.faults.check()
			}
			if first {
				clk.Advance(c.cost.ClwbIssue)
				first = false
			} else {
				clk.Advance(c.cost.ClwbTrainNext)
			}
			sh.FlushTrainLines.Add(1)
			set := c.setFor(la)
			set.mu.lock()
			if w := set.findHit(la); w >= 0 && set.meta[w].state == lineDirty {
				clk.Advance(c.cost.LineWriteback)
				c.lower.writeBackLine(clk, la, &set.data[w])
				set.meta[w].state = lineClean
				sh.ClwbWritebacks.Add(1)
				if c.contend != nil {
					c.contend(clk.ShardID(), ContendTrainLine, la)
				}
			}
			set.mu.unlock()
			if c.faults != nil {
				c.faults.check() // drains noted under the bank lock
			}
		}
	}
	if trained {
		sh.FlushTrains.Add(1)
	}
}

// SFence charges the fence cost. Ordering itself needs no modelling: the
// simulation executes each worker's operations in program order.
func (c *Cache) SFence(clk *sim.Clock) { clk.Advance(c.cost.Sfence) }

// FlushAll writes back every dirty line (clean shutdown / sync point). Lines
// remain resident and clean.
func (c *Cache) FlushAll(clk *sim.Clock) {
	for i := range c.sets {
		set := &c.sets[i]
		set.mu.lock()
		for j := range set.meta {
			m := &set.meta[j]
			if m.state == lineDirty {
				c.lower.writeBackLine(clk, m.addr, &set.data[j])
				m.state = lineClean
			}
		}
		set.mu.unlock()
	}
	c.lower.drain(clk)
}

// CrashFlush simulates a power failure. Under eADR every dirty line reaches
// the backend (the cache is in the persistence domain); under ADR dirty
// lines are lost. In both modes buffered controller state drains (the
// WPQ/XPBuffer is inside the ADR domain). The cache is left empty either way
// — a restarted system boots cold.
func (c *Cache) CrashFlush() {
	clk := sim.NewClock() // crash flushing is not charged to any worker
	c.crashWriteback(clk)
	c.lower.drain(clk)
}

// crashWriteback runs the persistence-domain line sweep of CrashFlush
// without the backend drain, so a fault plan can tear buffered blocks
// between the two steps (System.Crash).
func (c *Cache) crashWriteback(clk *sim.Clock) {
	sh := c.stats.ShardFor(clk)
	for i := range c.sets {
		set := &c.sets[i]
		set.mu.lock()
		for j := range set.meta {
			m := &set.meta[j]
			if m.state == lineDirty {
				if c.mode == EADR {
					c.lower.writeBackLine(clk, m.addr, &set.data[j])
					sh.CrashFlushedLines.Add(1)
				} else {
					sh.CrashDroppedLines.Add(1)
				}
			}
			m.state = lineInvalid
		}
		set.mu.unlock()
	}
}

// evictLocked frees way w, writing back its line if dirty. Caller holds the
// set mutex and immediately reuses the slot.
func (c *Cache) evictLocked(clk *sim.Clock, sh *StatShard, set *cacheSet, w int) {
	m := &set.meta[w]
	if c.faults != nil && m.state != lineInvalid {
		c.faults.note(FaultEvict) // under the set lock: note only, no panic
	}
	switch m.state {
	case lineDirty:
		clk.Advance(c.cost.LineWriteback)
		c.lower.writeBackLine(clk, m.addr, &set.data[w])
		sh.DirtyEvictions.Add(1)
		if c.contend != nil {
			c.contend(clk.ShardID(), ContendEvictLine, m.addr)
		}
	case lineClean:
		sh.CleanEvictions.Add(1)
	}
	m.state = lineInvalid
}

// invalidateAll drops every resident line without writing anything back.
// Used when entering deterministic group mode: the device image has just
// been made authoritative (FlushAll), and any line left resident would go
// stale against the group's direct device writes.
func (c *Cache) invalidateAll() {
	for i := range c.sets {
		set := &c.sets[i]
		set.mu.lock()
		for j := range set.meta {
			set.meta[j].state = lineInvalid
		}
		set.mu.unlock()
	}
}

// findHit returns the way holding lineAddr, or -1. Hits are the common
// case, so this scan is kept to a bare address compare per way over the
// compact meta array; the victim walk runs separately and only on misses.
func (s *cacheSet) findHit(lineAddr uint64) int {
	for i := range s.meta {
		if s.meta[i].addr == lineAddr && s.meta[i].state != lineInvalid {
			return i
		}
	}
	return -1
}

// victim returns the replacement way for a miss: the first invalid slot if
// any, otherwise the least-recently-used line (strict <, walk order breaks
// ties — the same choice the pre-split single-pass lookup made).
func (s *cacheSet) victim() int {
	v := -1
	var vlru uint64
	for i := range s.meta {
		m := &s.meta[i]
		if m.state == lineInvalid {
			return i
		}
		if v < 0 || m.lru < vlru {
			v, vlru = i, m.lru
		}
	}
	return v
}
