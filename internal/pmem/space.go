package pmem

import (
	"encoding/binary"

	"falcon/internal/sim"
)

// Space is the memory abstraction the database engine is written against.
// The same engine code runs over a simulated-NVM space (charged through the
// cache/XPBuffer/media hierarchy) or a DRAM space (charged through a cache
// over DRAM latencies), which is how the paper's NVM-index vs DRAM-index
// configurations are expressed.
type Space interface {
	// Read copies len(dst) bytes at off into dst.
	Read(clk *sim.Clock, off uint64, dst []byte)
	// Write stores src at off.
	Write(clk *sim.Clock, off uint64, src []byte)
	// CLWB hints write-back of the cache lines covering [off, off+n).
	// It is a no-op on non-persistent spaces.
	CLWB(clk *sim.Clock, off uint64, n int)
	// CLWBTrain hints write-back of the lines covering each span as one
	// coalesced multi-line flush train: the first line of a span pays the
	// full clwb issue cost, each further adjacent line a reduced train cost.
	// It is a no-op on non-persistent spaces.
	CLWBTrain(clk *sim.Clock, spans []Span)
	// SFence orders preceding stores.
	SFence(clk *sim.Clock)
	// ReadU64 reads the little-endian uint64 at off — Read with an 8-byte
	// buffer. It is on the interface so the scratch word lives inside the
	// concrete implementation's stack frame: an 8-byte buffer handed
	// through an interface call heap-escapes, and per-word metadata access
	// (slot headers, thread cursors, log states) is hot enough on the sweep
	// path for that allocation to be measurable.
	ReadU64(clk *sim.Clock, off uint64) uint64
	// WriteU64 stores a little-endian uint64 at off (same single simulated
	// store as an 8-byte Write).
	WriteU64(clk *sim.Clock, off uint64, v uint64)
	// BulkWrite installs bytes without simulation cost; for initial loads
	// only. It must not touch ranges already accessed through the cache —
	// resident lines would go stale.
	BulkWrite(off uint64, src []byte)
	// BulkWriteU64 is BulkWrite of one little-endian word, scratch-free
	// like ReadU64/WriteU64.
	BulkWriteU64(off uint64, v uint64)
	// Size returns the capacity in bytes.
	Size() uint64
	// Persistent reports whether data written here survives a crash
	// (possibly requiring flushes, depending on the cache mode).
	Persistent() bool
}

// NVMSpace is a Space backed by the simulated persistent-memory hierarchy.
type NVMSpace struct {
	cache *Cache
	dev   *Device
	// det, when non-nil, routes accesses through per-worker dataless timing
	// caches with the device as the byte authority (deterministic group
	// mode; see det.go). Nil on the normal path — one predictable branch.
	det *detPartition
}

// NewNVMSpace wraps a cache+device pair as a Space.
func NewNVMSpace(cache *Cache, dev *Device) *NVMSpace {
	return &NVMSpace{cache: cache, dev: dev}
}

func (s *NVMSpace) Read(clk *sim.Clock, off uint64, dst []byte) {
	if s.det != nil {
		s.det.cacheFor(clk).Load(clk, off, dst) // timing only (dataless)
		s.dev.RawRead(off, dst)
		return
	}
	s.cache.Load(clk, off, dst)
}

func (s *NVMSpace) Write(clk *sim.Clock, off uint64, src []byte) {
	if s.det != nil {
		s.det.cacheFor(clk).Store(clk, off, src) // timing only (dataless)
		s.dev.RawWrite(off, src)
		return
	}
	s.cache.Store(clk, off, src)
}

func (s *NVMSpace) CLWB(clk *sim.Clock, off uint64, n int) {
	if s.det != nil {
		s.det.cacheFor(clk).CLWB(clk, off, n)
		return
	}
	s.cache.CLWB(clk, off, n)
}

func (s *NVMSpace) CLWBTrain(clk *sim.Clock, spans []Span) {
	if s.det != nil {
		s.det.cacheFor(clk).CLWBTrain(clk, spans)
		return
	}
	s.cache.CLWBTrain(clk, spans)
}

func (s *NVMSpace) SFence(clk *sim.Clock) {
	if s.det != nil {
		s.det.cacheFor(clk).SFence(clk)
		return
	}
	s.cache.SFence(clk)
}

func (s *NVMSpace) ReadU64(clk *sim.Clock, off uint64) uint64 {
	var b [8]byte
	s.Read(clk, off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (s *NVMSpace) WriteU64(clk *sim.Clock, off uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.Write(clk, off, b[:])
}

func (s *NVMSpace) BulkWrite(off uint64, src []byte) { s.dev.RawWrite(off, src) }

func (s *NVMSpace) BulkWriteU64(off uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.dev.RawWrite(off, b[:])
}
func (s *NVMSpace) Size() uint64     { return s.dev.Size() }
func (s *NVMSpace) Persistent() bool { return true }

// Device exposes the backing device (stats, raw post-crash inspection).
func (s *NVMSpace) Device() *Device { return s.dev }

// Cache exposes the simulated CPU cache.
func (s *NVMSpace) Cache() *Cache { return s.cache }

// dramBackend is the memory level beneath a DRAM space's cache: a flat
// volatile array with DRAM fill/write-back latencies.
type dramBackend struct {
	data []byte
	cost sim.CostModel
}

func (d *dramBackend) writeBackLine(clk *sim.Clock, lineAddr uint64, data *[LineSize]byte) {
	// DRAM write-backs are posted; charge the streaming cost only.
	clk.Advance(d.cost.DRAMNextLine)
	copy(d.data[lineAddr:lineAddr+LineSize], data[:])
}

func (d *dramBackend) fillLine(clk *sim.Clock, lineAddr uint64, dst *[LineSize]byte) {
	clk.Advance(d.cost.DRAMFirstLine)
	copy(dst[:], d.data[lineAddr:lineAddr+LineSize])
}

func (d *dramBackend) drain(clk *sim.Clock) {}

// DRAMSpace is a Space backed by volatile memory behind its own simulated
// cache partition: hot structures (index upper levels, tuple-cache entries)
// cost cache hits, cold ones cost DRAM latency — matching how the paper's
// DRAM-resident indexes actually behave. Contents do not survive Crash; the
// engine recreates DRAM structures during recovery.
type DRAMSpace struct {
	back  *dramBackend
	cache *Cache
	// det, when non-nil, is the deterministic group-mode partition (see
	// det.go): per-worker dataless timing caches over the flat array.
	det *detPartition
}

// NewDRAMSpace allocates a volatile space of the given size with a default
// cache partition.
func NewDRAMSpace(size uint64, cost sim.CostModel) *DRAMSpace {
	return NewDRAMSpaceCache(size, cost, 2<<20, 16)
}

// NewDRAMSpaceCache allocates a volatile space with an explicit cache
// partition size and associativity.
func NewDRAMSpaceCache(size uint64, cost sim.CostModel, cacheBytes, ways int) *DRAMSpace {
	back := &dramBackend{data: make([]byte, size), cost: cost}
	stats := &Stats{} // DRAM spaces keep private counters; media stats stay NVM-only
	return &DRAMSpace{
		back:  back,
		cache: newCache(back, stats, ADR, cacheBytes, ways, size, cost),
	}
}

func (s *DRAMSpace) Read(clk *sim.Clock, off uint64, dst []byte) {
	if s.det != nil {
		s.det.cacheFor(clk).Load(clk, off, dst) // timing only (dataless)
		copy(dst, s.back.data[off:off+uint64(len(dst))])
		return
	}
	s.cache.Load(clk, off, dst)
}

func (s *DRAMSpace) Write(clk *sim.Clock, off uint64, src []byte) {
	if s.det != nil {
		s.det.cacheFor(clk).Store(clk, off, src) // timing only (dataless)
		copy(s.back.data[off:off+uint64(len(src))], src)
		return
	}
	s.cache.Store(clk, off, src)
}

func (s *DRAMSpace) ReadU64(clk *sim.Clock, off uint64) uint64 {
	var b [8]byte
	s.Read(clk, off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (s *DRAMSpace) WriteU64(clk *sim.Clock, off uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.Write(clk, off, b[:])
}

func (s *DRAMSpace) CLWB(clk *sim.Clock, off uint64, n int) {}
func (s *DRAMSpace) CLWBTrain(clk *sim.Clock, spans []Span) {}
func (s *DRAMSpace) SFence(clk *sim.Clock)                  {}
func (s *DRAMSpace) BulkWrite(off uint64, src []byte) {
	copy(s.back.data[off:off+uint64(len(src))], src)
}

func (s *DRAMSpace) BulkWriteU64(off uint64, v uint64) {
	binary.LittleEndian.PutUint64(s.back.data[off:off+8], v)
}
func (s *DRAMSpace) Size() uint64     { return uint64(len(s.back.data)) }
func (s *DRAMSpace) Persistent() bool { return false }
