// Package pmem simulates the persistent-memory hardware the Falcon paper
// targets: a byte-addressable NVM device with 256 B media-access granularity,
// the XPBuffer write-combining layer found inside Intel Optane modules, and a
// set-associative CPU cache that can be placed inside (eADR) or outside (ADR)
// the persistence domain.
//
// The simulation is functional, not just statistical: a store installs its
// bytes into a simulated cache line and the backing media is NOT updated
// until that line is written back (by eviction, by CLWB, or by the crash
// flush that eADR performs). Consequently "is this data durable?" is a real,
// testable property of the simulation, which is exactly the property the
// paper's small-log-window and selective-flush designs manipulate.
//
// Virtual-time costs for every event are charged to the sim.Clock passed by
// the calling worker (see package sim).
package pmem

const (
	// LineSize is the CPU cache line size in bytes.
	LineSize = 64
	// BlockSize is the NVM media access granularity in bytes (256 B in
	// Intel Optane; the source of the granularity-mismatch write
	// amplification described in the paper's §3.2).
	BlockSize = 256
	// LinesPerBlock is the number of cache lines per media block.
	LinesPerBlock = BlockSize / LineSize
)

// Mode selects the persistence domain of the CPU cache.
type Mode int

const (
	// EADR places the CPU cache inside the persistence domain: dirty cache
	// lines are flushed to the NVM device when the system crashes.
	EADR Mode = iota
	// ADR places only the memory controller (here: the XPBuffer) inside the
	// persistence domain: dirty cache lines are LOST on crash. Data is
	// durable only once written back via eviction or explicit flush.
	ADR
)

func (m Mode) String() string {
	switch m {
	case EADR:
		return "eADR"
	case ADR:
		return "ADR"
	default:
		return "unknown"
	}
}

func lineFloor(addr uint64) uint64  { return addr &^ (LineSize - 1) }
func blockFloor(addr uint64) uint64 { return addr &^ (BlockSize - 1) }
