package pmem

import (
	"fmt"
	"sync/atomic"
)

// deviceChunkBytes is the host-allocation granularity of the media array.
// Chunks materialize on first write: a freshly created device owns no
// payload memory at all, which keeps per-sweep-cell setup from zeroing (and
// soft-faulting) hundreds of megabytes that the workload never touches —
// device capacity is estimated with generous headroom, so a large fraction
// of it stays virgin for the whole run.
const deviceChunkBytes = 1 << 20

type deviceChunk [deviceChunkBytes]byte

// Device is the simulated NVM storage media: a byte array accessed at
// BlockSize granularity, allocated sparsely in chunks. The array holds the
// durable image — what survives a crash (after the persistence-domain
// flushes defined by the Mode). Unwritten bytes read as zero, exactly as a
// flat zeroed array would.
//
// Chunk slots are installed with a CAS because XPBuffer banks lock per
// block, and blocks from different banks share a chunk; byte ranges inside
// a chunk are still protected by the callers' block/line locking, as they
// were with a flat array.
//
// Device methods do not charge virtual time themselves; latency accounting
// happens in the XPBuffer and Cache layers, which know *why* a media access
// happened.
type Device struct {
	size   uint64
	chunks []atomic.Pointer[deviceChunk]
	stats  Stats
}

// NewDevice creates a zeroed device of the given size, rounded up to a
// whole number of blocks. No payload memory is allocated until written.
func NewDevice(size uint64) *Device {
	size = (size + BlockSize - 1) &^ uint64(BlockSize-1)
	nchunks := (size + deviceChunkBytes - 1) / deviceChunkBytes
	return &Device{size: size, chunks: make([]atomic.Pointer[deviceChunk], nchunks)}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// Stats returns the device's event counters.
func (d *Device) Stats() *Stats { return &d.stats }

// chunkFor returns the chunk covering addr, or nil if it was never written.
func (d *Device) chunkFor(addr uint64) *deviceChunk {
	return d.chunks[addr/deviceChunkBytes].Load()
}

// ensureChunk returns the chunk covering addr, materializing it on first
// write. Concurrent installers race benignly: the loser discards its
// allocation and uses the winner's chunk.
func (d *Device) ensureChunk(addr uint64) *deviceChunk {
	slot := &d.chunks[addr/deviceChunkBytes]
	if ch := slot.Load(); ch != nil {
		return ch
	}
	fresh := new(deviceChunk)
	if slot.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return slot.Load()
}

// readBlockInto copies the durable content of the block containing addr into
// dst (len BlockSize). The caller is responsible for charging the media-read
// latency and holding whatever lock covers the block. Blocks are aligned and
// BlockSize divides the chunk size, so a block never straddles chunks.
func (d *Device) readBlockInto(blockAddr uint64, dst []byte) {
	ch := d.chunkFor(blockAddr)
	if ch == nil {
		clear(dst[:BlockSize])
		return
	}
	off := blockAddr & (deviceChunkBytes - 1)
	copy(dst[:BlockSize], ch[off:off+BlockSize])
}

// writeBlock stores a full block to the media.
func (d *Device) writeBlock(blockAddr uint64, src []byte) {
	off := blockAddr & (deviceChunkBytes - 1)
	copy(d.ensureChunk(blockAddr)[off:off+BlockSize], src[:BlockSize])
}

// writeLines stores the valid 64 B sub-lines of a block to the media
// according to mask (bit i covers bytes [i*64, (i+1)*64)). Used after a
// read-modify-write merge.
func (d *Device) writeLines(blockAddr uint64, src []byte, mask uint8) {
	ch := d.ensureChunk(blockAddr)
	base := blockAddr & (deviceChunkBytes - 1)
	for i := 0; i < LinesPerBlock; i++ {
		if mask&(1<<i) != 0 {
			off := base + uint64(i)*LineSize
			copy(ch[off:off+LineSize], src[i*LineSize:(i+1)*LineSize])
		}
	}
}

// readLineInto copies one 64 B line out of the media. Lines are aligned and
// never straddle a chunk, so this skips the span loop RawRead needs — it is
// the XPBuffer's fill path, hit on every cache miss the buffer can't serve.
func (d *Device) readLineInto(lineAddr uint64, dst *[LineSize]byte) {
	ch := d.chunkFor(lineAddr)
	if ch == nil {
		clear(dst[:])
		return
	}
	off := lineAddr & (deviceChunkBytes - 1)
	copy(dst[:], ch[off:off+LineSize])
}

// RawRead copies durable bytes out of the media without simulating the
// hierarchy. It is intended for test assertions and for inspecting the
// post-crash image; production code paths go through a Space.
func (d *Device) RawRead(off uint64, dst []byte) {
	d.checkRange(off, len(dst))
	for len(dst) > 0 {
		co := off & (deviceChunkBytes - 1)
		n := deviceChunkBytes - co
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if ch := d.chunkFor(off); ch != nil {
			copy(dst[:n], ch[co:co+n])
		} else {
			clear(dst[:n])
		}
		off += n
		dst = dst[n:]
	}
}

// RawWrite stores bytes directly to the media, bypassing the cache and the
// XPBuffer and charging no virtual time. It is used for bulk-loading initial
// database contents, which the paper also performs before measurement.
func (d *Device) RawWrite(off uint64, src []byte) {
	d.checkRange(off, len(src))
	for len(src) > 0 {
		co := off & (deviceChunkBytes - 1)
		n := deviceChunkBytes - co
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(d.ensureChunk(off)[co:co+n], src[:n])
		off += n
		src = src[n:]
	}
}

func (d *Device) checkRange(off uint64, n int) {
	if off+uint64(n) > d.size {
		panic(fmt.Sprintf("pmem: access [%d, %d) beyond device size %d", off, off+uint64(n), d.size))
	}
}
