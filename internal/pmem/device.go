package pmem

import "fmt"

// Device is the simulated NVM storage media: a flat byte array accessed at
// BlockSize granularity. The array holds the durable image — what survives a
// crash (after the persistence-domain flushes defined by the Mode).
//
// Device methods do not charge virtual time themselves; latency accounting
// happens in the XPBuffer and Cache layers, which know *why* a media access
// happened.
type Device struct {
	data  []byte
	stats Stats
}

// NewDevice allocates a zeroed device of the given size, rounded up to a
// whole number of blocks.
func NewDevice(size uint64) *Device {
	size = (size + BlockSize - 1) &^ uint64(BlockSize-1)
	return &Device{data: make([]byte, size)}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return uint64(len(d.data)) }

// Stats returns the device's event counters.
func (d *Device) Stats() *Stats { return &d.stats }

// readBlockInto copies the durable content of the block containing addr into
// dst (len BlockSize). The caller is responsible for charging the media-read
// latency and holding whatever lock covers the block.
func (d *Device) readBlockInto(blockAddr uint64, dst []byte) {
	copy(dst[:BlockSize], d.data[blockAddr:blockAddr+BlockSize])
}

// writeBlock stores a full block to the media.
func (d *Device) writeBlock(blockAddr uint64, src []byte) {
	copy(d.data[blockAddr:blockAddr+BlockSize], src[:BlockSize])
}

// writeLines stores the valid 64 B sub-lines of a block to the media
// according to mask (bit i covers bytes [i*64, (i+1)*64)). Used after a
// read-modify-write merge.
func (d *Device) writeLines(blockAddr uint64, src []byte, mask uint8) {
	for i := 0; i < LinesPerBlock; i++ {
		if mask&(1<<i) != 0 {
			off := blockAddr + uint64(i)*LineSize
			copy(d.data[off:off+LineSize], src[i*LineSize:(i+1)*LineSize])
		}
	}
}

// RawRead copies durable bytes out of the media without simulating the
// hierarchy. It is intended for test assertions and for inspecting the
// post-crash image; production code paths go through a Space.
func (d *Device) RawRead(off uint64, dst []byte) {
	copy(dst, d.data[off:off+uint64(len(dst))])
}

// RawWrite stores bytes directly to the media, bypassing the cache and the
// XPBuffer and charging no virtual time. It is used for bulk-loading initial
// database contents, which the paper also performs before measurement.
func (d *Device) RawWrite(off uint64, src []byte) {
	copy(d.data[off:off+uint64(len(src))], src)
}

func (d *Device) checkRange(off uint64, n int) {
	if off+uint64(n) > uint64(len(d.data)) {
		panic(fmt.Sprintf("pmem: access [%d, %d) beyond device size %d", off, off+uint64(n), len(d.data)))
	}
}
