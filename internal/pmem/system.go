package pmem

import "falcon/internal/sim"

// Config describes a simulated memory system.
type Config struct {
	// Mode selects eADR (persistent cache) or ADR (volatile cache).
	Mode Mode
	// DeviceBytes is the NVM capacity.
	DeviceBytes uint64
	// CacheBytes is the simulated CPU cache capacity (default 2 MiB).
	CacheBytes int
	// CacheWays is the associativity (default 16).
	CacheWays int
	// XPBufferBytes is the write-combining buffer capacity (default 64 KiB,
	// approximating the aggregate XPBuffer of an interleaved DIMM set).
	XPBufferBytes int
	// XPBanks is the number of independently locked buffer banks
	// (default 16).
	XPBanks int
	// Cost is the virtual-time latency model (default DefaultCostModel).
	Cost sim.CostModel
}

// withDefaults fills zero fields with default values.
func (c Config) withDefaults() Config {
	if c.DeviceBytes == 0 {
		c.DeviceBytes = 64 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 2 << 20
	}
	if c.CacheWays == 0 {
		c.CacheWays = 16
	}
	if c.XPBufferBytes == 0 {
		c.XPBufferBytes = 256 << 10
	}
	if c.XPBanks == 0 {
		c.XPBanks = 16
	}
	if c.Cost == (sim.CostModel{}) {
		c.Cost = sim.DefaultCostModel()
	}
	return c
}

// System bundles a device, its XPBuffer, the CPU cache and the NVM space —
// one simulated machine. Crash produces the successor System that a restarted
// process would see.
type System struct {
	cfg    Config
	Dev    *Device
	XPB    *XPBuffer
	Cache  *Cache
	Space  *NVMSpace
	faults *FaultPlan
}

// NewSystem builds a simulated machine from cfg.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	dev := NewDevice(cfg.DeviceBytes)
	return newSystemOn(cfg, dev)
}

func newSystemOn(cfg Config, dev *Device) *System {
	xpb := NewXPBuffer(dev, cfg.XPBufferBytes, cfg.XPBanks, cfg.Cost)
	cache := newCache(xpb, &dev.stats, cfg.Mode, cfg.CacheBytes, cfg.CacheWays, dev.Size(), cfg.Cost)
	return &System{cfg: cfg, Dev: dev, XPB: xpb, Cache: cache, Space: NewNVMSpace(cache, dev)}
}

// Config returns the (defaulted) configuration of the system.
func (s *System) Config() Config { return s.cfg }

// Cost returns the latency model in effect.
func (s *System) Cost() sim.CostModel { return s.cfg.Cost }

// SetFaults arms a crash-injection plan on the system's cache and XPBuffer
// (test harnesses only; see FaultPlan for the single-goroutine contract).
// Pass nil to disarm.
func (s *System) SetFaults(p *FaultPlan) {
	s.faults = p
	s.Cache.faults = p
	s.XPB.faults = p
}

// Faults returns the armed plan, or nil.
func (s *System) Faults() *FaultPlan { return s.faults }

// SetTrace arms an XPBuffer-eviction trace hook (see TraceFn). Pass nil to
// disarm. Like SetFaults, arming must happen while workers are quiescent.
// Live deterministic-group partitions (System.EnterGroup) pick up the hook
// too, so arming after group entry behaves the same as arming before.
func (s *System) SetTrace(fn TraceFn) {
	s.XPB.trace = fn
	if det := s.Space.det; det != nil {
		for _, c := range det.caches {
			if xpb, ok := c.lower.(*XPBuffer); ok {
				xpb.trace = fn
			}
		}
	}
}

// SetContend arms a flush-traffic attribution hook (see ContendFn) on the
// cache and the XPBuffer — and, like SetTrace, on any live deterministic
// group partitions. Pass nil to disarm; arming must happen while workers are
// quiescent.
func (s *System) SetContend(fn ContendFn) {
	s.Cache.contend = fn
	s.XPB.contend = fn
	if det := s.Space.det; det != nil {
		for _, c := range det.caches {
			c.contend = fn
			if xpb, ok := c.lower.(*XPBuffer); ok {
				xpb.contend = fn
			}
		}
	}
}

// Crash simulates a power failure: the persistence-domain flush runs
// according to the mode, and a fresh System (cold cache, empty XPBuffer) is
// returned over the same durable device image. The old System must not be
// used afterwards.
//
// The persistence domain spans the cache (eADR only) AND the memory
// controller's XPBuffer (both modes — the WPQ drain is what ADR itself
// guarantees), so the crash sequence is: line sweep per mode, then buffer
// drain. With an armed fault plan, torn-write injection runs between those
// two steps (a block write interrupted mid-drain) and byte corruption runs
// after (damage to the durable image itself); the successor system starts
// with no plan armed.
func (s *System) Crash() *System {
	if s.faults == nil {
		s.Cache.CrashFlush()
		return newSystemOn(s.cfg, s.Dev)
	}
	p := s.faults
	p.disarm() // crash-flush traffic must not re-trip the plan
	clk := sim.NewClock()
	s.Cache.crashWriteback(clk)
	if p.Torn {
		s.XPB.tearOne(p)
	}
	s.XPB.Drain(clk)
	if p.Corrupt {
		p.corruptDevice(s.Dev)
	}
	return newSystemOn(s.cfg, s.Dev)
}

// Sync flushes all dirty state down to the media (clean shutdown).
func (s *System) Sync(clk *sim.Clock) {
	s.Cache.FlushAll(clk)
}
