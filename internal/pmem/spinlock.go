package pmem

import (
	"runtime"
	"sync/atomic"
)

// spinLock is a 4-byte test-and-set lock for the simulation's hottest
// critical sections (cache sets, XPBuffer banks). Those sections run for
// tens of nanoseconds, the lock spaces are heavily striped (thousands of
// sets, 16 banks), and every simulated memory access takes one — at that
// grain sync.Mutex's unlock (an atomic add plus wake check) is a measurable
// slice of sweep host time, while a release store is nearly free.
//
// The slow path yields to the scheduler rather than parking: with critical
// sections this short, a contended acquirer is overwhelmingly likely to get
// the lock within a few spins, and on a single-core host Gosched lets the
// holder run instead of burning the preemption slice.
type spinLock struct {
	v atomic.Int32
}

// lock is split from lockSlow so the uncontended path — a single CAS —
// inlines into loadLine/storeLine; the loop would push it past the
// inlining budget.
func (l *spinLock) lock() {
	if !l.v.CompareAndSwap(0, 1) {
		l.lockSlow()
	}
}

func (l *spinLock) lockSlow() {
	for spins := 0; !l.v.CompareAndSwap(0, 1); spins++ {
		if spins >= 16 {
			runtime.Gosched()
			spins = 0
		}
	}
}

func (l *spinLock) unlock() {
	l.v.Store(0)
}
