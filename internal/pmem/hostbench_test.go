package pmem

import (
	"testing"

	"falcon/internal/sim"
)

// Host-cost benchmarks for the simulated memory system. Everything here
// measures HOST nanoseconds per simulated operation — the cost of running
// the simulation itself, which bounds how big a sweep fits in a CI budget.
// Virtual-time results are unaffected by any of this.
//
// The loop shapes (64 B ops striding a 32 MiB working set on a 64 MiB
// device) match cmd/falcon-hostbench so `go test -bench` and the tracked
// BENCH_hostperf.json baseline measure the same thing.

func hostbenchSystem() *System {
	return NewSystem(Config{DeviceBytes: 64 << 20, CacheBytes: 2 << 20})
}

func BenchmarkHostStore64(b *testing.B) {
	sys := hostbenchSystem()
	clk := sim.NewClock()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Space.Write(clk, uint64(i*64)%(32<<20), buf)
	}
}

func BenchmarkHostLoad64(b *testing.B) {
	sys := hostbenchSystem()
	clk := sim.NewClock()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Space.Read(clk, uint64(i*64)%(32<<20), buf)
	}
}

func BenchmarkHostStoreCLWB64(b *testing.B) {
	sys := hostbenchSystem()
	clk := sim.NewClock()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i*64) % (32 << 20)
		sys.Space.Write(clk, a, buf)
		sys.Space.CLWB(clk, a, 64)
	}
}

// BenchmarkHostStore64Hit keeps the working set inside the simulated cache,
// isolating the hit path (set lookup + copy) from eviction and fill.
func BenchmarkHostStore64Hit(b *testing.B) {
	sys := hostbenchSystem()
	clk := sim.NewClock()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Space.Write(clk, uint64(i*64)%(1<<20), buf)
	}
}
