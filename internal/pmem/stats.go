package pmem

import "sync/atomic"

// Stats counts simulated hardware events on an NVM device and its attached
// cache. All counters are cumulative and safe for concurrent update.
type Stats struct {
	// MediaReads counts 256 B block reads from the storage media, including
	// the reads issued by read-modify-write partial-block evictions.
	MediaReads atomic.Uint64
	// MediaWrites counts 256 B block writes to the storage media.
	MediaWrites atomic.Uint64
	// FullBlockWrites counts media writes whose block was fully populated in
	// the XPBuffer (no read-modify-write needed).
	FullBlockWrites atomic.Uint64
	// PartialBlockWrites counts media writes that required a
	// read-modify-write because only part of the block was buffered. These
	// are the amplified writes the paper's hinted flush tries to eliminate.
	PartialBlockWrites atomic.Uint64
	// XPBufferMerges counts 64 B line write-backs that merged into an
	// already-buffered block.
	XPBufferMerges atomic.Uint64
	// XPBufferHits counts load misses served by the XPBuffer.
	XPBufferHits atomic.Uint64
	// CacheHits / CacheMisses count per-line cache accesses.
	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64
	// DirtyEvictions counts dirty lines written back due to capacity
	// replacement; CleanEvictions counts replaced lines that cost nothing.
	DirtyEvictions atomic.Uint64
	CleanEvictions atomic.Uint64
	// ClwbWritebacks counts dirty lines written back by explicit CLWB.
	ClwbWritebacks atomic.Uint64
	// BytesStored counts application bytes passed to Write (store
	// granularity, before any amplification).
	BytesStored atomic.Uint64
	// BytesToMedia counts bytes physically written to the media
	// (MediaWrites * BlockSize). BytesToMedia / BytesStored is the write
	// amplification factor.
	BytesToMedia atomic.Uint64
	// CrashFlushedLines counts dirty lines persisted by the eADR crash
	// flush.
	CrashFlushedLines atomic.Uint64
	// CrashDroppedLines counts dirty lines discarded by an ADR crash.
	CrashDroppedLines atomic.Uint64
}

// Snapshot is a point-in-time copy of Stats, suitable for diffing.
type Snapshot struct {
	MediaReads         uint64
	MediaWrites        uint64
	FullBlockWrites    uint64
	PartialBlockWrites uint64
	XPBufferMerges     uint64
	XPBufferHits       uint64
	CacheHits          uint64
	CacheMisses        uint64
	DirtyEvictions     uint64
	CleanEvictions     uint64
	ClwbWritebacks     uint64
	BytesStored        uint64
	BytesToMedia       uint64
	CrashFlushedLines  uint64
	CrashDroppedLines  uint64
}

// Snapshot returns a copy of the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		MediaReads:         s.MediaReads.Load(),
		MediaWrites:        s.MediaWrites.Load(),
		FullBlockWrites:    s.FullBlockWrites.Load(),
		PartialBlockWrites: s.PartialBlockWrites.Load(),
		XPBufferMerges:     s.XPBufferMerges.Load(),
		XPBufferHits:       s.XPBufferHits.Load(),
		CacheHits:          s.CacheHits.Load(),
		CacheMisses:        s.CacheMisses.Load(),
		DirtyEvictions:     s.DirtyEvictions.Load(),
		CleanEvictions:     s.CleanEvictions.Load(),
		ClwbWritebacks:     s.ClwbWritebacks.Load(),
		BytesStored:        s.BytesStored.Load(),
		BytesToMedia:       s.BytesToMedia.Load(),
		CrashFlushedLines:  s.CrashFlushedLines.Load(),
		CrashDroppedLines:  s.CrashDroppedLines.Load(),
	}
}

// Sub returns the element-wise difference s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		MediaReads:         s.MediaReads - o.MediaReads,
		MediaWrites:        s.MediaWrites - o.MediaWrites,
		FullBlockWrites:    s.FullBlockWrites - o.FullBlockWrites,
		PartialBlockWrites: s.PartialBlockWrites - o.PartialBlockWrites,
		XPBufferMerges:     s.XPBufferMerges - o.XPBufferMerges,
		XPBufferHits:       s.XPBufferHits - o.XPBufferHits,
		CacheHits:          s.CacheHits - o.CacheHits,
		CacheMisses:        s.CacheMisses - o.CacheMisses,
		DirtyEvictions:     s.DirtyEvictions - o.DirtyEvictions,
		CleanEvictions:     s.CleanEvictions - o.CleanEvictions,
		ClwbWritebacks:     s.ClwbWritebacks - o.ClwbWritebacks,
		BytesStored:        s.BytesStored - o.BytesStored,
		BytesToMedia:       s.BytesToMedia - o.BytesToMedia,
		CrashFlushedLines:  s.CrashFlushedLines - o.CrashFlushedLines,
		CrashDroppedLines:  s.CrashDroppedLines - o.CrashDroppedLines,
	}
}

// WriteAmplification returns BytesToMedia / BytesStored, or 0 when nothing
// has been stored.
func (s Snapshot) WriteAmplification() float64 {
	if s.BytesStored == 0 {
		return 0
	}
	return float64(s.BytesToMedia) / float64(s.BytesStored)
}
