package pmem

import (
	"sync/atomic"

	"falcon/internal/sim"
)

// numStatShards is the number of per-worker counter blocks in a Stats. A
// power of two so shard selection is a single mask of the worker's shard id;
// workers beyond the shard count wrap around and share (still correct, the
// counters are atomic).
const numStatShards = 32

// StatShard is one worker's block of simulated-hardware event counters.
// Sharding exists purely for host-side performance: with a single shared
// counter block every worker's stores hit the same few cache lines, and the
// resulting false sharing dominates the simulation's host cost at high
// worker counts. Each worker instead updates its own block (selected by
// sim.Clock.ShardID), and Stats.Snapshot sums the blocks.
//
// The counters are atomics because nothing enforces distinct shard ids —
// anonymous clocks all map to shard 0 — but in the steady state a shard has
// one writer and the atomic adds never contend.
type StatShard struct {
	// MediaReads counts 256 B block reads from the storage media, including
	// the reads issued by read-modify-write partial-block evictions.
	MediaReads atomic.Uint64
	// MediaWrites counts 256 B block writes to the storage media.
	MediaWrites atomic.Uint64
	// FullBlockWrites counts media writes whose block was fully populated in
	// the XPBuffer (no read-modify-write needed).
	FullBlockWrites atomic.Uint64
	// PartialBlockWrites counts media writes that required a
	// read-modify-write because only part of the block was buffered. These
	// are the amplified writes the paper's hinted flush tries to eliminate.
	PartialBlockWrites atomic.Uint64
	// XPBufferMerges counts 64 B line write-backs that merged into an
	// already-buffered block.
	XPBufferMerges atomic.Uint64
	// XPBufferHits counts load misses served by the XPBuffer.
	XPBufferHits atomic.Uint64
	// CacheHits / CacheMisses count per-line cache accesses.
	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64
	// DirtyEvictions counts dirty lines written back due to capacity
	// replacement; CleanEvictions counts replaced lines that cost nothing.
	DirtyEvictions atomic.Uint64
	CleanEvictions atomic.Uint64
	// ClwbWritebacks counts dirty lines written back by explicit CLWB.
	ClwbWritebacks atomic.Uint64
	// BytesStored counts application bytes passed to Write (store
	// granularity, before any amplification).
	BytesStored atomic.Uint64
	// BytesToMedia counts bytes physically written to the media
	// (MediaWrites * BlockSize). BytesToMedia / BytesStored is the write
	// amplification factor.
	BytesToMedia atomic.Uint64
	// CrashFlushedLines counts dirty lines persisted by the eADR crash
	// flush.
	CrashFlushedLines atomic.Uint64
	// CrashDroppedLines counts dirty lines discarded by an ADR crash.
	CrashDroppedLines atomic.Uint64
	// FlushTrains counts hinted multi-line flush trains issued via CLWBTrain;
	// FlushTrainLines counts the lines those trains covered. Lines written
	// back by trains also count in ClwbWritebacks.
	FlushTrains     atomic.Uint64
	FlushTrainLines atomic.Uint64
	// pad rounds the block up to a multiple of the 64 B cache line size
	// (17 counters = 136 B -> 192 B) so adjacent shards never share a line.
	_ [56]byte
}

// Stats counts simulated hardware events on an NVM device and its attached
// cache, sharded into per-worker counter blocks. Writers pick their block
// with ShardFor; readers merge all blocks with Snapshot. All counters are
// cumulative and safe for concurrent update.
type Stats struct {
	shards [numStatShards]StatShard
}

// ShardFor returns the counter block for the worker owning clk. Nil and
// anonymous clocks (bulk loads, crash flushes, tests) map to shard 0.
func (s *Stats) ShardFor(clk *sim.Clock) *StatShard {
	return &s.shards[clk.ShardID()&(numStatShards-1)]
}

// Shard returns counter block i (tests and diagnostics).
func (s *Stats) Shard(i int) *StatShard {
	return &s.shards[uint64(i)&(numStatShards-1)]
}

// NumShards returns the number of counter blocks.
func (s *Stats) NumShards() int { return numStatShards }

// Snapshot is a point-in-time copy of Stats, suitable for diffing.
type Snapshot struct {
	MediaReads         uint64
	MediaWrites        uint64
	FullBlockWrites    uint64
	PartialBlockWrites uint64
	XPBufferMerges     uint64
	XPBufferHits       uint64
	CacheHits          uint64
	CacheMisses        uint64
	DirtyEvictions     uint64
	CleanEvictions     uint64
	ClwbWritebacks     uint64
	BytesStored        uint64
	BytesToMedia       uint64
	CrashFlushedLines  uint64
	CrashDroppedLines  uint64
	FlushTrains        uint64
	FlushTrainLines    uint64
}

// Snapshot returns the current counter values summed across all shards.
func (s *Stats) Snapshot() Snapshot {
	var out Snapshot
	for i := range s.shards {
		sh := &s.shards[i]
		out.MediaReads += sh.MediaReads.Load()
		out.MediaWrites += sh.MediaWrites.Load()
		out.FullBlockWrites += sh.FullBlockWrites.Load()
		out.PartialBlockWrites += sh.PartialBlockWrites.Load()
		out.XPBufferMerges += sh.XPBufferMerges.Load()
		out.XPBufferHits += sh.XPBufferHits.Load()
		out.CacheHits += sh.CacheHits.Load()
		out.CacheMisses += sh.CacheMisses.Load()
		out.DirtyEvictions += sh.DirtyEvictions.Load()
		out.CleanEvictions += sh.CleanEvictions.Load()
		out.ClwbWritebacks += sh.ClwbWritebacks.Load()
		out.BytesStored += sh.BytesStored.Load()
		out.BytesToMedia += sh.BytesToMedia.Load()
		out.CrashFlushedLines += sh.CrashFlushedLines.Load()
		out.CrashDroppedLines += sh.CrashDroppedLines.Load()
		out.FlushTrains += sh.FlushTrains.Load()
		out.FlushTrainLines += sh.FlushTrainLines.Load()
	}
	return out
}

// Sub returns the element-wise difference s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		MediaReads:         s.MediaReads - o.MediaReads,
		MediaWrites:        s.MediaWrites - o.MediaWrites,
		FullBlockWrites:    s.FullBlockWrites - o.FullBlockWrites,
		PartialBlockWrites: s.PartialBlockWrites - o.PartialBlockWrites,
		XPBufferMerges:     s.XPBufferMerges - o.XPBufferMerges,
		XPBufferHits:       s.XPBufferHits - o.XPBufferHits,
		CacheHits:          s.CacheHits - o.CacheHits,
		CacheMisses:        s.CacheMisses - o.CacheMisses,
		DirtyEvictions:     s.DirtyEvictions - o.DirtyEvictions,
		CleanEvictions:     s.CleanEvictions - o.CleanEvictions,
		ClwbWritebacks:     s.ClwbWritebacks - o.ClwbWritebacks,
		BytesStored:        s.BytesStored - o.BytesStored,
		BytesToMedia:       s.BytesToMedia - o.BytesToMedia,
		CrashFlushedLines:  s.CrashFlushedLines - o.CrashFlushedLines,
		CrashDroppedLines:  s.CrashDroppedLines - o.CrashDroppedLines,
		FlushTrains:        s.FlushTrains - o.FlushTrains,
		FlushTrainLines:    s.FlushTrainLines - o.FlushTrainLines,
	}
}

// WriteAmplification returns BytesToMedia / BytesStored, or 0 when nothing
// has been stored.
func (s Snapshot) WriteAmplification() float64 {
	if s.BytesStored == 0 {
		return 0
	}
	return float64(s.BytesToMedia) / float64(s.BytesStored)
}
