package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/sim"
)

// TestQuickCacheMatchesFlatMemory: under eADR, an arbitrary interleaving of
// stores, loads, clwbs, fences and a final crash must behave exactly like a
// flat byte array — the hierarchy may only change *when* bytes become
// durable, never their values.
func TestQuickCacheMatchesFlatMemory(t *testing.T) {
	const space = 1 << 20
	f := func(seed int64, opsRaw uint16) bool {
		ops := int(opsRaw)%400 + 50
		rng := rand.New(rand.NewSource(seed))
		sys := NewSystem(Config{
			Mode:          EADR,
			DeviceBytes:   space,
			CacheBytes:    16 << 10, // small: force evictions
			CacheWays:     4,
			XPBufferBytes: 2 << 10,
			XPBanks:       2,
		})
		ref := make([]byte, space)
		clk := sim.NewClock()
		buf := make([]byte, 512)
		for i := 0; i < ops; i++ {
			off := uint64(rng.Intn(space - 512))
			n := rng.Intn(511) + 1
			switch rng.Intn(5) {
			case 0, 1: // store
				for j := 0; j < n; j++ {
					buf[j] = byte(rng.Intn(256))
				}
				sys.Space.Write(clk, off, buf[:n])
				copy(ref[off:], buf[:n])
			case 2: // load and compare
				got := make([]byte, n)
				sys.Space.Read(clk, off, got)
				if !bytes.Equal(got, ref[off:off+uint64(n)]) {
					return false
				}
			case 3:
				sys.Space.CLWB(clk, off, n)
			case 4:
				sys.Space.SFence(clk)
			}
		}
		// After an eADR crash the durable image must equal the reference.
		sys2 := sys.Crash()
		got := make([]byte, space)
		sys2.Dev.RawRead(0, got)
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickMax(30)}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickADRCrashOnlyLosesUnflushedSuffix: under ADR, flushed ranges must
// survive a crash byte-for-byte (the WPQ/XPBuffer is in the persistence
// domain), whatever the op interleaving.
func TestQuickADRFlushedSurvives(t *testing.T) {
	const space = 1 << 18
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := NewSystem(Config{
			Mode:          ADR,
			DeviceBytes:   space,
			CacheBytes:    8 << 10,
			CacheWays:     4,
			XPBufferBytes: 1 << 10,
			XPBanks:       1,
		})
		clk := sim.NewClock()
		type flushed struct {
			off  uint64
			data []byte
		}
		var durable []flushed
		for i := 0; i < 100; i++ {
			off := uint64(rng.Intn(space - 256))
			n := rng.Intn(255) + 1
			data := make([]byte, n)
			rng.Read(data)
			sys.Space.Write(clk, off, data)
			// Any write (flushed or not) invalidates overlapping durable
			// records: their bytes are no longer authoritative.
			for j := 0; j < len(durable); {
				d := durable[j]
				if off < d.off+uint64(len(d.data)) && d.off < off+uint64(n) {
					durable = append(durable[:j], durable[j+1:]...)
				} else {
					j++
				}
			}
			if rng.Intn(2) == 0 {
				sys.Space.CLWB(clk, off, n)
				sys.Space.SFence(clk)
				durable = append(durable, flushed{off, data})
			}
		}
		sys2 := sys.Crash()
		for _, d := range durable {
			got := make([]byte, len(d.data))
			sys2.Dev.RawRead(d.off, got)
			if !bytes.Equal(got, d.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickMax(30)}); err != nil {
		t.Fatal(err)
	}
}

// quickMax trims property-check sample counts under -short (the
// race-enabled CI lane), keeping the properties exercised without paying
// the full sampling budget at race-detector speed.
func quickMax(full int) int {
	if testing.Short() {
		return full / 3
	}
	return full
}
