package pmem

import "fmt"

// FaultEvent identifies a class of simulated hardware event at which an
// injected crash can fire. Counting happens at the pmem layer — the layer
// whose persistence semantics the crash is meant to stress — so "the Nth
// store" means the Nth cache Store call, not the Nth engine operation.
type FaultEvent uint8

const (
	// FaultStore counts cache Store calls (one per Store, not per line).
	FaultStore FaultEvent = iota
	// FaultFlush counts CLWB line write-back attempts.
	FaultFlush
	// FaultEvict counts dirty/clean cache-line evictions on the miss path.
	FaultEvict
	// FaultDrain counts XPBuffer slot evictions to the media.
	FaultDrain

	// NumFaultEvents sizes per-event arrays.
	NumFaultEvents = int(FaultDrain) + 1
)

// FaultEventNames maps FaultEvent values to stable short names.
var FaultEventNames = [NumFaultEvents]string{"store", "flush", "evict", "drain"}

func (e FaultEvent) String() string {
	if int(e) < NumFaultEvents {
		return FaultEventNames[e]
	}
	return "unknown"
}

// FaultPlan is a seeded, deterministic crash-injection plan. Armed on a
// System via SetFaults, it counts pmem events and panics with *InjectedCrash
// when the Nth occurrence of Event is reached; the crashtest harness recovers
// the panic and runs System.Crash. With N == 0 the plan only counts, which is
// how a harness calibrates how many events a workload generates.
//
// Concurrency contract: the fields are plain (non-atomic) because fault
// injection is a single-goroutine test harness feature — the driver runs all
// transactions from one goroutine. Arming a plan on a system driven by
// concurrent workers is unsupported.
//
// Injection points are split in two halves so a panic can never unwind
// through a held spinlock (which would deadlock the crash flush): note()
// increments counters and may mark the plan tripped but never panics, so it
// is safe under cache-set and XPBuffer-bank locks; check() performs the
// actual panic and is called only at lock-free points.
type FaultPlan struct {
	// Event and N select the trigger: crash at the Nth occurrence of Event
	// (1-based). N == 0 disables tripping (count-only calibration mode).
	Event FaultEvent
	N     uint64
	// Torn injects a torn 256 B media write at crash time: one buffered
	// XPBuffer block loses a random nonempty subset of its valid lines
	// before the crash drain, so the media keeps the previous durable
	// content of the lost lines.
	Torn bool
	// Corrupt flips one durable byte in [CorruptLo, CorruptHi) on the device
	// after the crash drain — media corruption the WAL checksums must catch.
	Corrupt              bool
	CorruptLo, CorruptHi uint64
	// Seed drives the torn/corrupt pseudo-random choices.
	Seed uint64

	counts   [NumFaultEvents]uint64
	tripped  bool
	disarmed bool
}

// Counts returns the per-event occurrence counts accumulated so far.
func (p *FaultPlan) Counts() [NumFaultEvents]uint64 { return p.counts }

// Tripped reports whether the trigger condition has been reached.
func (p *FaultPlan) Tripped() bool { return p.tripped }

// note records one occurrence of e and arms the pending crash when the
// trigger is reached. It never panics, so it is safe to call while holding
// simulation spinlocks.
func (p *FaultPlan) note(e FaultEvent) {
	p.counts[e]++
	if !p.tripped && !p.disarmed && p.N != 0 && e == p.Event && p.counts[e] >= p.N {
		p.tripped = true
	}
}

// check fires the pending crash. Callers guarantee no simulation locks are
// held. The plan disarms itself so the panic fires exactly once — the crash
// flush that follows generates more events and must not re-trip.
func (p *FaultPlan) check() {
	if p.tripped && !p.disarmed {
		p.disarmed = true
		panic(&InjectedCrash{Event: p.Event, N: p.N})
	}
}

// disarm stops the plan from tripping or firing (called by Crash before the
// crash flush so drain traffic is not counted as new triggers).
func (p *FaultPlan) disarm() { p.disarmed = true }

// InjectedCrash is the panic value thrown at a fault-plan trigger point.
type InjectedCrash struct {
	Event FaultEvent
	N     uint64
}

func (c *InjectedCrash) Error() string {
	return fmt.Sprintf("pmem: injected crash at %s #%d", c.Event, c.N)
}

// IsInjectedCrash reports whether a recover() value is an injected crash.
func IsInjectedCrash(r any) bool {
	_, ok := r.(*InjectedCrash)
	return ok
}

// rng returns the next value of a splitmix64 stream threaded through *state.
func rng(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// corruptDevice flips one byte of the durable image inside
// [CorruptLo, CorruptHi), simulating media corruption that escaped the
// module's internal ECC. Runs after the crash drain, on raw device state.
func (p *FaultPlan) corruptDevice(dev *Device) {
	lo, hi := p.CorruptLo, p.CorruptHi
	if hi <= lo || hi > dev.Size() {
		return
	}
	state := p.Seed ^ 0xc0ffee
	off := lo + rng(&state)%(hi-lo)
	var b [1]byte
	dev.RawRead(off, b[:])
	flip := byte(rng(&state))
	if flip == 0 {
		flip = 0xff
	}
	b[0] ^= flip
	dev.RawWrite(off, b[:])
}
