package core

import (
	"errors"
	"runtime"
	"sort"

	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
	"falcon/internal/wal"
)

// ErrRollback is the caller-requested abort: Engine.Run aborts the
// transaction and returns ErrRollback without retrying (TPC-C NewOrder's 1%
// intentional rollbacks use this).
var ErrRollback = errors.New("core: rollback requested")

// Commit finishes the transaction. On ErrConflict the transaction is left
// for the caller to Abort (Engine.Run does this automatically).
func (tx *Txn) Commit() error {
	if tx.done {
		return errors.New("core: commit on finished transaction")
	}
	if tx.dt != nil {
		// Group mode: run the worker-side head, then submit to the round
		// barrier, which replays commit tails in canonical order (det.go).
		return tx.commitDet()
	}
	if tx.ro || (len(tx.writes) == 0 && len(tx.inserts) == 0) {
		tx.pt.To(obs.PhaseCC)
		tx.releaseLocksKeep()
		tx.finish(true)
		return nil
	}
	if tx.e.cfg.Update == OutOfPlace {
		return tx.commitOutOfPlace()
	}
	return tx.commitInPlace()
}

// commitInPlace is the paper's Algorithm 1: validate (OCC), publish old
// versions (MVCC), mark the write set COMMITTED (the durable point), apply
// the updates in place, fence, then run the selective data flush.
func (tx *Txn) commitInPlace() error {
	if tx.log.Full() {
		tx.setAbortCause(obs.AbortLogFull)
		return ErrTxnTooLarge
	}
	if tx.e.cfg.CC.Base() == cc.OCC {
		prev := tx.pt.To(obs.PhaseCC)
		ok := tx.occValidate()
		tx.pt.To(prev)
		if !ok {
			tx.setAbortCause(obs.AbortValidation)
			return ErrConflict
		}
	}
	tx.commitInPlaceTail()
	return nil
}

// commitInPlaceTail is the shared-state half of the in-place commit; group
// mode runs it inside the round barrier.
func (tx *Txn) commitInPlaceTail() {
	tx.publishVersions()

	if tx.e.board != nil {
		tx.commitGroupTail()
		return
	}

	// Durable commit point (Algorithm 1 line 2 + the write-set contents
	// already in the window).
	tx.pt.To(obs.PhaseLogAppend)
	tx.log.Commit(tx.clk)
	tx.pt.To(obs.PhaseHeapWrite)
	apply := tx.applyWriteSet()
	tx.e.nvm.SFence(tx.clk) // Algorithm 1 line 7

	tx.pt.To(obs.PhaseFlush)
	tx.selectiveFlush(apply)
	tx.pt.To(obs.PhaseCC)
	tx.releaseLocksCommitted()
	tx.finish(true)
}

// commitGroupTail is the in-place commit with group commit on. The commit
// splits: the *publish* point makes the record visible (and closes the
// conflict window — locks release and the caller proceeds), while the
// *durable* point is the epoch seal's coalesced drain. Nothing here fences
// or flushes on its own behalf: an unsealed epoch leaves no durable claim,
// so the crash outcome per epoch is all-or-nothing (recovery drops published
// records whose epoch the durable marker does not cover).
func (tx *Txn) commitGroupTail() {
	// Publish point (Algorithm 1 line 2, split from the drain): state word
	// ordered before the heap writes below, like the per-commit path.
	tx.pt.To(obs.PhaseLogAppend)
	epoch := tx.log.Publish(tx.clk)
	tx.pt.To(obs.PhaseHeapWrite)
	apply := tx.applyWriteSet()

	tx.pt.To(obs.PhaseFlush)
	tx.deferredFlush(apply, epoch)
	tx.e.windows[tx.worker].SealExpired(tx.clk) // lazy leader step
	tx.pt.To(obs.PhaseCC)
	tx.releaseLocksCommitted()
	tx.finish(true)
}

// applyWriteSet applies the write set to the tuple heap in log order (so
// later ops override earlier ones) and stamps durable writer timestamps,
// one per touched slot. Touched slots are tracked in first-touch order (a
// map here would iterate in random order, making the WriteTS sequence — and
// with it the simulated cache state — differ between identical runs).
func (tx *Txn) applyWriteSet() []applyEntry {
	apply := tx.applyOrder()
	type touchedSlot struct {
		t    *Table
		slot uint64
	}
	touched := make([]touchedSlot, 0, len(apply))
	markTouched := func(t *Table, slot uint64) {
		for i := range touched {
			if touched[i].t == t && touched[i].slot == slot {
				return
			}
		}
		touched = append(touched, touchedSlot{t, slot})
	}
	for _, a := range apply {
		if a.ins != nil {
			tx.applyInsert(a.ins)
			markTouched(a.ins.t, a.ins.slot)
			tx.tstat(a.ins.t).Writes++
			tx.cw.LogicalBytes(uint64(a.ins.t.id), uint64(a.ins.t.schema.TupleSize()))
			continue
		}
		w := a.w
		switch w.kind {
		case wal.OpUpdate:
			op, _ := tx.log.ReadOp(tx.clk, w.logPos)
			w.t.heap.WriteRange(tx.clk, w.slot, w.off, op.Data)
			markTouched(w.t, w.slot)
			tx.cw.LogicalBytes(uint64(w.t.id), uint64(w.n))
		case wal.OpDelete:
			tx.applyDelete(w)
		}
		tx.tstat(w.t).Writes++
	}
	// Durable writer timestamps, one per touched slot.
	for i := range touched {
		touched[i].t.heap.WriteTS(tx.clk, touched[i].slot, tx.tid)
	}
	return apply
}

type applyEntry struct {
	pos int
	w   *writeOp
	ins *insertOp
}

func (tx *Txn) applyOrder() []applyEntry {
	out := make([]applyEntry, 0, len(tx.writes)+len(tx.inserts))
	for i := range tx.writes {
		out = append(out, applyEntry{pos: tx.writes[i].logPos, w: &tx.writes[i]})
	}
	for i := range tx.inserts {
		out = append(out, applyEntry{pos: tx.inserts[i].logPos, ins: &tx.inserts[i]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func (tx *Txn) applyInsert(ins *insertOp) {
	t := ins.t
	var payload []byte
	if tx.e.cfg.Update == InPlace {
		op, _ := tx.log.ReadOp(tx.clk, ins.logPos)
		payload = op.Data
	} else {
		payload = ins.data
	}
	// Publish order: payload, then TID, then occupied LAST — the occupied
	// flag makes the slot visible to recovery scans, and a crash between
	// occupied and the TID store would expose the tuple with ts 0 (the
	// always-committed bulk-load stamp).
	t.heap.WritePayload(tx.clk, ins.slot, payload)
	t.heap.WriteTS(tx.clk, ins.slot, tx.tid)
	t.heap.SetOccupied(tx.clk, ins.slot)
	// Initialize the shadow word so future readers see our TID as writer.
	lock, _ := t.heap.Meta(ins.slot)
	if tx.e.cfg.CC.Base() == cc.TwoPL {
		lock.Store(tx.tid & cc.WTSMask2PL)
	} else {
		lock.Store(tx.tid & cc.WTSMaskTO)
	}
	prev := tx.pt.To(obs.PhaseIndexUpdate)
	t.primary.Insert(tx.clk, ins.key, ins.slot) // unique: reservation held
	if t.secondary != nil {
		secKey := t.schema.GetUint64(payload, t.secondaryCol)
		t.secondary.Insert(tx.clk, secKey, ins.slot)
	}
	tx.pt.To(prev)
	tx.releaseKey(t, ins.key)
	tx.e.tcPut(tx.clk, tx.worker, t.id, ins.key, payload)
}

func (tx *Txn) applyDelete(w *writeOp) {
	t := w.t
	// The durable timestamp is the deleting TID (replay guard); the reclaim
	// horizon is a fresh TID so in-flight readers that resolved this slot
	// drain before it is recycled.
	t.heap.Retire(tx.clk, w.slot, tx.tid, tx.e.gen.Next(tx.worker), false)
	prev := tx.pt.To(obs.PhaseIndexUpdate)
	t.primary.Delete(tx.clk, w.key)
	if t.secondary != nil {
		t.secondary.Delete(tx.clk, w.secKey)
	}
	tx.pt.To(prev)
	tx.e.tcInvalidate(tx.clk, t.id, w.key)
}

// selectiveFlush implements §4.4 / Algorithm 1 lines 8-11: hinted flushes
// (<sfence already issued> + clwb over the touched contiguous ranges),
// skipping hot tuples under FlushSelective.
func (tx *Txn) selectiveFlush(apply []applyEntry) {
	policy := tx.e.cfg.Flush
	if policy == FlushNone {
		return
	}
	flushStart := tx.clk.Nanos()
	var flushed, elided uint64
	hot := tx.e.hot[tx.worker]
	for _, a := range apply {
		var t *Table
		var slot uint64
		var off, n int
		switch {
		case a.ins != nil:
			t, slot, off, n = a.ins.t, a.ins.slot, 0, a.ins.t.schema.TupleSize()
		case a.w.kind == wal.OpUpdate:
			t, slot, off, n = a.w.t, a.w.slot, a.w.off, a.w.n
		default: // delete: header-only change
			t, slot, off, n = a.w.t, a.w.slot, 0, 0
		}
		if policy == FlushSelective {
			if hot.contains(tx.clk, t.id, slot) {
				elided++
				continue // hot tuples are never manually flushed
			}
			hot.add(tx.clk, t.id, slot)
		}
		t.heap.CLWBSlot(tx.clk, slot, off, n)
		flushed++
	}
	if tx.tr != nil && flushed+elided > 0 {
		tx.tr.Span(obs.EvFlushTrain, flushStart, tx.clk.Nanos(), flushed, elided)
	}
}

// deferredFlush is selectiveFlush's group-commit counterpart: the same
// hot-set policy decides which touched tuples need write-back hints, but
// instead of issuing per-commit clwbs the surviving ranges enlist on the
// record's epoch, where the seal batches adjacent lines into flush trains.
// Hot-set bookkeeping still runs here, at commit time, so elision behaviour
// matches the per-commit path.
func (tx *Txn) deferredFlush(apply []applyEntry, epoch uint64) {
	policy := tx.e.cfg.Flush
	if policy == FlushNone {
		return
	}
	var elided uint64
	hot := tx.e.hot[tx.worker]
	spans := make([]pmem.Span, 0, len(apply)+1)
	for _, a := range apply {
		var t *Table
		var slot uint64
		var off, n int
		switch {
		case a.ins != nil:
			t, slot, off, n = a.ins.t, a.ins.slot, 0, a.ins.t.schema.TupleSize()
		case a.w.kind == wal.OpUpdate:
			t, slot, off, n = a.w.t, a.w.slot, a.w.off, a.w.n
		default: // delete: header-only change
			t, slot, off, n = a.w.t, a.w.slot, 0, 0
		}
		if policy == FlushSelective {
			if hot.contains(tx.clk, t.id, slot) {
				elided++
				continue // hot tuples are never manually flushed
			}
			hot.add(tx.clk, t.id, slot)
		}
		spans = t.heap.FlushSpans(slot, off, n, spans)
	}
	tx.log.EnlistData(tx.clk, epoch, spans)
	_ = elided // counted in the hot-set stats, as on the per-commit path
}

// publishVersions copies the pre-images of updated/deleted tuples into the
// DRAM version heap before they are overwritten (in-place MVCC, §5.2.3).
func (tx *Txn) publishVersions() {
	if !tx.e.cfg.CC.MultiVersion() {
		return
	}
	prev := tx.pt.To(obs.PhaseHeapWrite)
	defer tx.pt.To(prev)
	seen := make(map[*Table]map[uint64]struct{}, 2)
	for i := range tx.writes {
		w := &tx.writes[i]
		m := seen[w.t]
		if m == nil {
			m = make(map[uint64]struct{}, 4)
			seen[w.t] = m
		}
		if _, dup := m[w.slot]; dup {
			continue
		}
		m[w.slot] = struct{}{}
		lock, _ := w.t.heap.Meta(w.slot)
		beginTS := tx.e.wtsOf(lock.Load())
		scratch := tx.e.scratchFor(tx.worker, w.t.schema.TupleSize())
		w.t.heap.ReadPayload(tx.clk, w.slot, scratch)
		w.t.versions.Publish(tx.clk, tx.worker, w.slot, beginTS, tx.tid, scratch)
		tx.tstat(w.t).Versions++
	}
}

// occValidate locks the write set and checks that every read version is
// unchanged (Silo-style; no-wait on conflicts).
func (tx *Txn) occValidate() bool {
	// Lock every written slot (validation locks are recorded as lockRefs so
	// the common release/abort paths apply).
	for i := range tx.occIntents {
		m := &tx.occIntents[i]
		lock, _ := tx.metaFor(m.t, m.slot)
		pre, ok := cc.TryLockTO(lock)
		if !ok {
			tx.noteConflict(m.t, m.key, m.slot, lock.Load(), obs.ConflictValidation)
			return false
		}
		tx.locks = append(tx.locks, lockRef{t: m.t, slot: m.slot, key: m.key, pre: pre, vt: tx.clk.Nanos()})
		if liveErr(m.t, tx.clk, m.slot) != nil {
			// Superseded or deleted while we ran.
			tx.noteConflict(m.t, m.key, m.slot, pre, obs.ConflictValidation)
			return false
		}
	}
	for i := range tx.reads {
		r := &tx.reads[i]
		lock, _ := tx.metaFor(r.t, r.slot)
		cur := lock.Load()
		if cur == r.word {
			continue
		}
		// Changed: acceptable only if the lock is ours and the version
		// matches what we read.
		if cc.Locked(cur) && cc.WTSTO(cur) == cc.WTSTO(r.word) && tx.selfLocked(r.t, r.slot) {
			continue
		}
		tx.noteConflict(r.t, r.key, r.slot, cur, obs.ConflictValidation)
		return false
	}
	return true
}

func (tx *Txn) selfLocked(t *Table, slot uint64) bool {
	for i := range tx.locks {
		l := &tx.locks[i]
		if l.t == t && l.slot == slot && !l.shared {
			return true
		}
	}
	return false
}

// releaseLocksKeep releases every held lock, preserving the pre-lock writer
// timestamps (read-only commit and abort paths).
func (tx *Txn) releaseLocksKeep() {
	if tx.dt != nil {
		// Group mode: locks were taken on the private overlay, which dies
		// with the transaction — nothing to undo on live words.
		tx.locks = tx.locks[:0]
		return
	}
	for i := range tx.locks {
		l := &tx.locks[i]
		lock, _ := l.t.heap.Meta(l.slot)
		switch {
		case l.shared:
			cc.ReadUnlock2PL(lock)
		case tx.e.cfg.CC.Base() == cc.TwoPL:
			cc.WriteUnlock2PLKeepTS(lock)
		default:
			cc.UnlockTOKeep(lock, l.pre)
		}
	}
	tx.locks = tx.locks[:0]
}

// releaseLocksCommitted installs the new writer TID and releases every lock.
func (tx *Txn) releaseLocksCommitted() {
	if tx.dt != nil {
		// Group mode: exclusive locks were taken on the overlay, so there is
		// nothing to unlock — but the new writer timestamp must land on the
		// LIVE word so later rounds observe this commit. Shared locks were
		// never reflected in the live word; skip them (a live ReadUnlock2PL
		// here would underflow the reader count).
		for i := range tx.locks {
			l := &tx.locks[i]
			if l.shared {
				continue
			}
			lock, _ := l.t.heap.Meta(l.slot)
			if tx.e.cfg.CC.Base() == cc.TwoPL {
				cc.WriteUnlock2PL(lock, tx.tid)
			} else {
				cc.UnlockTO(lock, tx.tid)
			}
		}
		tx.locks = tx.locks[:0]
		return
	}
	for i := range tx.locks {
		l := &tx.locks[i]
		lock, _ := l.t.heap.Meta(l.slot)
		if l.shared {
			cc.ReadUnlock2PL(lock)
			continue
		}
		if tx.e.cfg.CC.Base() == cc.TwoPL {
			cc.WriteUnlock2PL(lock, tx.tid)
		} else {
			cc.UnlockTO(lock, tx.tid)
		}
	}
	tx.locks = tx.locks[:0]
}

// Abort rolls back: locks release with their prior versions, reserved keys
// free, pre-allocated insert slots recycle, and the log record is discarded.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.pt.To(obs.PhaseAbort)
	if tx.log != nil {
		tx.log.Abort(tx.clk)
	}
	tx.releaseLocksKeep()
	for i := range tx.inserts {
		ins := &tx.inserts[i]
		tx.releaseKey(ins.t, ins.key)
		// The pre-allocated slot was never published; recycle it at once.
		ins.t.heap.Retire(tx.clk, ins.slot, 0, 0, false)
	}
	tx.clk.Advance(tx.e.sys.Cost().AbortOverhead)
	// A bare Abort with no recorded failure is a voluntary rollback.
	if !tx.causeSet {
		tx.cause = obs.AbortUserRollback
	}
	tx.e.abortReasons.Inc(tx.cause)
	tx.finish(false)
}

func (tx *Txn) finish(committed bool) {
	tx.e.active.Clear(tx.worker)
	if committed {
		tx.e.commits.Add(1)
	} else {
		tx.e.aborts.Add(1)
	}
	// Version-heap GC piggybacks on worker threads (§5.4: no dedicated
	// recycling threads).
	if tx.e.cfg.CC.MultiVersion() && committed {
		tx.pt.To(obs.PhaseHeapWrite)
		min := tx.e.active.Min()
		for _, t := range tx.e.tables {
			if t.versions != nil {
				t.versions.MaybeGC(tx.clk, tx.worker, min)
			}
		}
	}
	tx.pt.Finish()
	if tx.tr != nil {
		reason := -1
		if !committed {
			reason = int(tx.cause)
		}
		tx.tr.TxnEnd(tx.clk.Nanos(), reason)
		tx.tr = nil
	}
	tx.done = true
}

// Run executes fn inside a transaction on worker's thread, retrying on
// conflicts. fn may return ErrRollback to abort without retry.
func (e *Engine) Run(worker int, fn func(*Txn) error) error {
	return e.run(worker, false, nil, fn)
}

// RunRO executes fn inside a read-only transaction, retrying on conflicts.
func (e *Engine) RunRO(worker int, fn func(*Txn) error) error {
	return e.run(worker, true, nil, fn)
}

// RunCancelable is Run with a cancellation hook: canceled is polled before
// each attempt and at every operation entry point inside the transaction; a
// true return aborts the attempt (counted under the "canceled" abort reason)
// and RunCancelable returns ErrCanceled without retrying. The serving layer
// uses this to propagate per-request deadlines into transaction execution.
func (e *Engine) RunCancelable(worker int, canceled func() bool, fn func(*Txn) error) error {
	return e.run(worker, false, canceled, fn)
}

// RunROCancelable is RunRO with a cancellation hook (see RunCancelable).
func (e *Engine) RunROCancelable(worker int, canceled func() bool, fn func(*Txn) error) error {
	return e.run(worker, true, canceled, fn)
}

func (e *Engine) run(worker int, ro bool, canceled func() bool, fn func(*Txn) error) error {
	for {
		if canceled != nil && canceled() {
			return ErrCanceled
		}
		var tx *Txn
		if ro {
			tx = e.BeginRO(worker)
		} else {
			tx = e.Begin(worker)
		}
		tx.cancel = canceled
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		}
		if err == nil {
			return nil
		}
		tx.classifyAbort(err)
		tx.Abort()
		if errors.Is(err, ErrConflict) {
			if d := e.det; d != nil {
				// A conflict detected during execution (against round-frozen
				// state) waits out the current round with an empty attempt;
				// one detected at the barrier already consumed the round, so
				// retry immediately. Retried attempts draw strictly larger
				// TIDs, so a stale frozen timestamp eventually clears.
				if tx.dt == nil || !tx.dt.submitted {
					d.group.Submit(&sim.Attempt{Order: tx.tid})
				}
			} else {
				runtime.Gosched() // break retry lockstep between workers
			}
			continue
		}
		return err
	}
}

// Scan iterates tuples with primary key >= from in key order, invoking fn
// with the key and a scratch payload (valid only during the call), until fn
// returns false or limit tuples have been visited (limit <= 0 means no
// limit). The primary index must be a btree.
func (tx *Txn) Scan(t *Table, from uint64, limit int, fn func(key uint64, payload []byte) bool) (int, error) {
	return tx.scanIndex(t, t.primary, from, limit, fn)
}

// ScanSecondary iterates via the secondary index.
func (tx *Txn) ScanSecondary(t *Table, from uint64, limit int, fn func(secKey uint64, payload []byte) bool) (int, error) {
	if t.secondary == nil {
		return 0, index.ErrUnordered
	}
	return tx.scanIndex(t, t.secondary, from, limit, fn)
}

func (tx *Txn) scanIndex(t *Table, idx index.Index, from uint64, limit int, fn func(uint64, []byte) bool) (int, error) {
	// A private buffer: fn may issue reads that use the worker scratch.
	tx.tstat(t).IndexProbes++
	scratch := make([]byte, t.schema.TupleSize())
	visited := 0
	var scanErr error
	err := idx.Scan(tx.clk, from, func(key, slot uint64) bool {
		if limit > 0 && visited >= limit {
			return false
		}
		if err := tx.readSlot(t, key, slot, scratch); err != nil {
			if errors.Is(err, ErrNotFound) {
				return true // concurrently deleted; skip
			}
			scanErr = err
			return false
		}
		visited++
		return fn(key, scratch)
	})
	if err != nil {
		return visited, err
	}
	tx.detRecordScan(t)
	return visited, scanErr
}

// readSlot performs the CC read of an already-resolved slot (scan path).
func (tx *Txn) readSlot(t *Table, key, slot uint64, dst []byte) error {
	if err := tx.checkCancel(); err != nil {
		return err
	}
	tx.clk.Advance(tx.e.sys.Cost().OpOverhead)
	tx.tstat(t).Reads++
	tx.cw.Touch(int(t.id), key)
	return tx.readResolved(t, key, slot, 0, t.schema.TupleSize(), dst)
}
