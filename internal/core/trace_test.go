package core

import (
	"errors"
	"testing"

	"falcon/internal/obs"
)

// TestEngineTracingProducesEvents drives a traced engine through commits and
// a user rollback and checks the dump carries the whole story: txn spans,
// phase segments, WAL window claims, and the abort exemplar with its
// taxonomy reason.
func TestEngineTracingProducesEvents(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(1); k <= 50; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}

	tr := obs.NewTracer(e.Config().Threads, obs.TraceOptions{Sample: 1})
	e.SetTracer(tr)
	var v [8]byte
	for k := uint64(1); k <= 50; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.UpdateField(tbl, k, 1, v[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	err := e.Run(0, func(tx *Txn) error {
		if err := tx.UpdateField(tbl, 1, 1, v[:]); err != nil {
			return err
		}
		return ErrRollback
	})
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("rollback txn returned %v", err)
	}
	e.SetTracer(nil)

	d := tr.Dump()
	var kinds [obs.NumEventKinds]int
	for _, ev := range d.Events {
		kinds[ev.Kind]++
	}
	if kinds[obs.EvTxn] != 51 {
		t.Fatalf("txn events = %d, want 51", kinds[obs.EvTxn])
	}
	if kinds[obs.EvPhase] == 0 {
		t.Fatal("no phase segments traced")
	}
	if kinds[obs.EvWALClaim] == 0 {
		t.Fatal("no WAL window claims traced (Falcon logs every update)")
	}
	if len(d.Aborted) != 1 {
		t.Fatalf("aborted exemplars = %d, want 1", len(d.Aborted))
	}
	ab := d.Aborted[0]
	if ab.Abort != obs.AbortUserRollback.String() {
		t.Fatalf("abort exemplar reason = %q, want %q", ab.Abort, obs.AbortUserRollback)
	}
	if len(ab.Events) == 0 {
		t.Fatal("abort exemplar has no span stack")
	}
	if len(d.Slow) == 0 {
		t.Fatal("no slow exemplars kept")
	}

	// Disarming must stick: more transactions add no events.
	before := len(tr.Dump().Events)
	if err := e.Run(0, func(tx *Txn) error {
		return tx.UpdateField(tbl, 2, 1, v[:])
	}); err != nil {
		t.Fatal(err)
	}
	if after := len(tr.Dump().Events); after != before {
		t.Fatalf("disarmed tracer still recorded %d events", after-before)
	}
}

// TestEngineTableCounters checks the per-table heap/index counters flow from
// transaction paths into the registry snapshot, keyed by table name.
func TestEngineTableCounters(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(1); k <= 20; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, s.TupleSize())
	for k := uint64(1); k <= 20; k++ {
		if err := e.RunRO(1, func(tx *Txn) error {
			return tx.Read(tbl, k, buf)
		}); err != nil {
			t.Fatal(err)
		}
	}

	snap := e.ObsSnapshot()
	ts, ok := snap.Tables["kv"]
	if !ok {
		t.Fatalf("snapshot lacks table kv: %+v", snap.Tables)
	}
	if ts.Writes < 20 {
		t.Fatalf("kv writes = %d, want >= 20", ts.Writes)
	}
	if ts.Reads < 20 {
		t.Fatalf("kv reads = %d, want >= 20", ts.Reads)
	}
	if ts.IndexProbes < 20 {
		t.Fatalf("kv index probes = %d, want >= 20", ts.IndexProbes)
	}

	// ResetCounters must zero the rows like every other engine counter.
	e.ResetCounters()
	if ts := e.ObsSnapshot().Tables["kv"]; ts != (obs.TableStats{}) {
		t.Fatalf("table counters survived ResetCounters: %+v", ts)
	}
}
