package core

import (
	"errors"
	"math/rand"
	"testing"

	"falcon/internal/index"
	"falcon/internal/pmem"
)

// runAndCrash creates an engine, applies ops, optionally leaves an open
// uncommitted transaction, crashes, and recovers.
func recoverAfter(t *testing.T, cfg Config, prepare func(e *Engine)) (*Engine, *RecoveryReport) {
	t.Helper()
	cfg.Threads = 4
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := New(sys, cfg, kvSpec(index.Hash, 20000))
	if err != nil {
		t.Fatal(err)
	}
	prepare(e)
	sys2 := e.System().Crash()
	e2, rep, err := Recover(sys2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e2, rep
}

func TestRecoveryCommittedSurvivesAllVariants(t *testing.T) {
	for _, cfg := range allEngineConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			want := map[uint64]int64{}
			e2, _ := recoverAfter(t, cfg, func(e *Engine) {
				tbl := e.Table("kv")
				s := tbl.Schema()
				rng := rand.New(rand.NewSource(42))
				for i := 0; i < 300; i++ {
					k := uint64(rng.Intn(100))
					w := rng.Intn(4)
					switch {
					case w == 0 && want[k] != 0: // delete
						if err := e.Run(i%4, func(tx *Txn) error { return tx.Delete(tbl, k) }); err != nil {
							t.Fatal(err)
						}
						delete(want, k)
					case want[k] == 0: // insert
						v := int64(i + 1)
						if err := e.Run(i%4, func(tx *Txn) error {
							return tx.Insert(tbl, k, encodeKV(s, k, v))
						}); err != nil {
							t.Fatal(err)
						}
						want[k] = v
					default: // update
						v := int64(i + 1000)
						if err := e.Run(i%4, func(tx *Txn) error {
							var b [8]byte
							layoutPutI64(b[:], v)
							return tx.UpdateField(tbl, k, 1, b[:])
						}); err != nil {
							t.Fatal(err)
						}
						want[k] = v
					}
				}
			})
			tbl := e2.Table("kv")
			s := tbl.Schema()
			buf := make([]byte, s.TupleSize())
			for k := uint64(0); k < 100; k++ {
				err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, k, buf) })
				if v, live := want[k]; live {
					if err != nil {
						t.Fatalf("key %d lost after recovery: %v", k, err)
					}
					if got := s.GetInt64(buf, 1); got != v {
						t.Fatalf("key %d = %d after recovery, want %d", k, got, v)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("deleted/absent key %d resurfaced: err=%v", k, err)
				}
			}
		})
	}
}

func TestRecoveryUncommittedInvisible(t *testing.T) {
	for _, cfg := range []Config{FalconConfig(), FalconDRAMIndexConfig(), InpConfig(), OutpConfig(), ZenSConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			e2, _ := recoverAfter(t, cfg, func(e *Engine) {
				tbl := e.Table("kv")
				s := tbl.Schema()
				if err := e.Run(0, func(tx *Txn) error {
					return tx.Insert(tbl, 1, encodeKV(s, 1, 10))
				}); err != nil {
					t.Fatal(err)
				}
				// An in-flight transaction at crash time: updates buffered,
				// never committed.
				tx := e.Begin(1)
				var b [8]byte
				layoutPutI64(b[:], 999)
				if err := tx.UpdateField(tbl, 1, 1, b[:]); err != nil {
					t.Fatal(err)
				}
				if err := tx.Insert(tbl, 2, encodeKV(s, 2, 20)); err != nil {
					t.Fatal(err)
				}
				// crash now, tx never commits
			})
			tbl := e2.Table("kv")
			s := tbl.Schema()
			buf := make([]byte, s.TupleSize())
			if err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, 1, buf) }); err != nil {
				t.Fatal(err)
			}
			if got := s.GetInt64(buf, 1); got != 10 {
				t.Fatalf("uncommitted update leaked through crash: v = %d", got)
			}
			if err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, 2, buf) }); !errors.Is(err, ErrNotFound) {
				t.Fatalf("uncommitted insert visible after recovery: %v", err)
			}
		})
	}
}

func TestRecoveryMidCommitTornApply(t *testing.T) {
	// Crash immediately after the log's durable commit point but before the
	// in-place apply: the record is COMMITTED, tuples untouched. Recovery
	// must replay it. We emulate this by writing the log record manually
	// through a transaction whose apply we skip — easiest faithful stand-in:
	// commit normally, then verify replay idempotence by crashing right
	// after commit (the cache may hold both log and data; both flushed).
	cfg := FalconConfig()
	e2, rep := recoverAfter(t, cfg, func(e *Engine) {
		tbl := e.Table("kv")
		s := tbl.Schema()
		for k := uint64(0); k < 10; k++ {
			if err := e.Run(int(k)%4, func(tx *Txn) error {
				return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
			}); err != nil {
				t.Fatal(err)
			}
		}
	})
	if rep.RecordsReplayed == 0 {
		t.Fatal("no records replayed despite committed windows")
	}
	tbl := e2.Table("kv")
	s := tbl.Schema()
	buf := make([]byte, s.TupleSize())
	for k := uint64(0); k < 10; k++ {
		if err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, k, buf) }); err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if got := s.GetInt64(buf, 1); got != int64(k) {
			t.Fatalf("key %d = %d", k, got)
		}
	}
}

func TestRecoveryReplayGuardNoClobber(t *testing.T) {
	// Key scenario from the design: an old COMMITTED record must not
	// overwrite the effect of a newer transaction whose record was already
	// reused. Window has 3 slots; run 1 update from worker 0 (its record
	// stays), then many updates of the same key from worker 1 (its window
	// wraps). Replay must keep the newest value.
	cfg := FalconConfig()
	var wantFinal int64
	e2, _ := recoverAfter(t, cfg, func(e *Engine) {
		tbl := e.Table("kv")
		s := tbl.Schema()
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, 1, encodeKV(s, 1, 0))
		}); err != nil {
			t.Fatal(err)
		}
		// Worker 0 writes value 111; its record will stay in its window.
		if err := e.Run(0, func(tx *Txn) error {
			var b [8]byte
			layoutPutI64(b[:], 111)
			return tx.UpdateField(tbl, 1, 1, b[:])
		}); err != nil {
			t.Fatal(err)
		}
		// Worker 1 overwrites repeatedly; only its last records survive.
		for i := 0; i < 10; i++ {
			wantFinal = int64(1000 + i)
			if err := e.Run(1, func(tx *Txn) error {
				var b [8]byte
				layoutPutI64(b[:], wantFinal)
				return tx.UpdateField(tbl, 1, 1, b[:])
			}); err != nil {
				t.Fatal(err)
			}
		}
	})
	tbl := e2.Table("kv")
	s := tbl.Schema()
	buf := make([]byte, s.TupleSize())
	if err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, 1, buf) }); err != nil {
		t.Fatal(err)
	}
	if got := s.GetInt64(buf, 1); got != wantFinal {
		t.Fatalf("recovered value %d, want %d (old log record clobbered newer state)", got, wantFinal)
	}
}

func TestRecoveryReportShapes(t *testing.T) {
	// Falcon: no heap scan, replay only. ZenS: heap scan proportional to
	// data; Falcon recovery virtual time must be much smaller.
	load := func(e *Engine) {
		tbl := e.Table("kv")
		s := tbl.Schema()
		for k := uint64(0); k < 2000; k++ {
			if err := e.Run(int(k)%4, func(tx *Txn) error {
				return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, falconRep := recoverAfter(t, FalconConfig(), load)
	_, zensRep := recoverAfter(t, ZenSConfig(), load)

	if falconRep.TuplesScanned != 0 {
		t.Errorf("Falcon recovery scanned %d tuples; should scan none", falconRep.TuplesScanned)
	}
	if zensRep.TuplesScanned < 2000 {
		t.Errorf("ZenS recovery scanned %d tuples; must scan the heap", zensRep.TuplesScanned)
	}
	if falconRep.TotalNanos*10 > zensRep.TotalNanos {
		t.Errorf("Falcon recovery (%d ns) not ≫ faster than ZenS (%d ns)",
			falconRep.TotalNanos, zensRep.TotalNanos)
	}
}

func TestRecoveryTIDClockAdvances(t *testing.T) {
	cfg := FalconConfig()
	var lastTID uint64
	e2, _ := recoverAfter(t, cfg, func(e *Engine) {
		tbl := e.Table("kv")
		s := tbl.Schema()
		for i := 0; i < 20; i++ {
			if err := e.Run(0, func(tx *Txn) error {
				lastTID = tx.TID()
				return tx.Insert(tbl, uint64(i), encodeKV(s, uint64(i), 1))
			}); err != nil {
				t.Fatal(err)
			}
		}
	})
	tx := e2.Begin(0)
	defer tx.Abort()
	if tx.TID() <= lastTID {
		t.Fatalf("post-recovery TID %x not beyond pre-crash %x", tx.TID(), lastTID)
	}
}

func TestRecoveryDoubleCrash(t *testing.T) {
	// Crash, recover, write more, crash again, recover again.
	cfg := FalconConfig()
	cfg.Threads = 4
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := New(sys, cfg, kvSpec(index.Hash, 20000))
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(0); k < 10; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys = e.System().Crash()
	e, _, err = Recover(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl = e.Table("kv")
	for k := uint64(10); k < 20; k++ {
		if err := e.Run(1, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys = e.System().Crash()
	e, _, err = Recover(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl = e.Table("kv")
	buf := make([]byte, s.TupleSize())
	for k := uint64(0); k < 20; k++ {
		if err := e.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, k, buf) }); err != nil {
			t.Fatalf("key %d after double crash: %v", k, err)
		}
		if got := s.GetInt64(buf, 1); got != int64(k) {
			t.Fatalf("key %d = %d", k, got)
		}
	}
}

func TestBankTransferInvariantAcrossCrash(t *testing.T) {
	// The classic consistency check: concurrent transfers preserve the
	// total; a crash at an arbitrary quiescent point must too.
	for _, cfg := range []Config{FalconConfig(), OutpConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cfg.Threads = 4
			sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
			e, err := New(sys, cfg, kvSpec(index.Hash, 20000))
			if err != nil {
				t.Fatal(err)
			}
			tbl := e.Table("kv")
			s := tbl.Schema()
			const accounts = 20
			const initial = 1000
			for k := uint64(0); k < accounts; k++ {
				if err := e.Run(0, func(tx *Txn) error {
					return tx.Insert(tbl, k, encodeKV(s, k, initial))
				}); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 500; i++ {
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				amount := int64(rng.Intn(50))
				err := e.Run(i%4, func(tx *Txn) error {
					buf := make([]byte, s.TupleSize())
					if err := tx.Read(tbl, from, buf); err != nil {
						return err
					}
					fb := s.GetInt64(buf, 1)
					if fb < amount {
						return ErrRollback
					}
					if err := tx.Read(tbl, to, buf); err != nil {
						return err
					}
					tb := s.GetInt64(buf, 1)
					var b [8]byte
					layoutPutI64(b[:], fb-amount)
					if err := tx.UpdateField(tbl, from, 1, b[:]); err != nil {
						return err
					}
					layoutPutI64(b[:], tb+amount)
					return tx.UpdateField(tbl, to, 1, b[:])
				})
				if err != nil && !errors.Is(err, ErrRollback) {
					t.Fatal(err)
				}
			}
			sys2 := e.System().Crash()
			e2, _, err := Recover(sys2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tbl2 := e2.Table("kv")
			var total int64
			buf := make([]byte, s.TupleSize())
			for k := uint64(0); k < accounts; k++ {
				if err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl2, k, buf) }); err != nil {
					t.Fatal(err)
				}
				total += s.GetInt64(buf, 1)
			}
			if total != accounts*initial {
				t.Fatalf("money not conserved across crash: total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func TestRecoverRejectsMismatchedConfig(t *testing.T) {
	cfg := FalconConfig()
	cfg.Threads = 4
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	if _, err := New(sys, cfg, kvSpec(index.Hash, 1000)); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Update = OutOfPlace
	if _, _, err := Recover(sys.Crash(), bad); err == nil {
		t.Fatal("Recover accepted a mismatched update scheme")
	}
}

func TestRecoverOnEmptyDeviceFails(t *testing.T) {
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 16 << 20})
	if _, _, err := Recover(sys, FalconConfig()); err == nil {
		t.Fatal("Recover on an unformatted device should fail")
	}
}
