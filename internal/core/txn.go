package core

import (
	"errors"
	"fmt"
	"runtime"

	"falcon/internal/cc"
	"falcon/internal/heap"
	"falcon/internal/obs"
	"falcon/internal/obs/contend"
	"falcon/internal/sim"
	"falcon/internal/wal"
)

// ErrConflict reports a concurrency-control conflict; the transaction has
// been poisoned and must be aborted (Engine.Run does this automatically and
// retries).
var ErrConflict = errors.New("core: transaction conflict")

// ErrDuplicateKey reports an insert of an existing key.
var ErrDuplicateKey = errors.New("core: duplicate key")

// ErrNotFound reports an operation on a missing key.
var ErrNotFound = errors.New("core: key not found")

// ErrTxnTooLarge reports a redo log that exceeded the window's overflow
// capacity.
var ErrTxnTooLarge = errors.New("core: transaction exceeds log capacity")

// ErrReadOnly reports a write attempted in a read-only transaction.
var ErrReadOnly = errors.New("core: read-only transaction")

// ErrCanceled reports a transaction cut short by its cancellation hook: the
// request's deadline expired (or the caller withdrew it) while the
// transaction executed. The attempt is aborted and never retried.
var ErrCanceled = errors.New("core: transaction canceled")

// Txn is one transaction. It is bound to the worker thread that began it and
// must not be shared across goroutines.
type Txn struct {
	e      *Engine
	worker int
	tid    uint64
	clk    *sim.Clock
	ro     bool
	done   bool

	log *wal.TxnLog // in-place engines: the write set lives in the window

	// pt attributes this transaction's virtual time to commit-path phases;
	// cause records the abort reason determined at the failure site (see
	// setAbortCause), consumed by Abort.
	pt       obs.PhaseTimer
	cause    obs.AbortReason
	causeSet bool
	// tr is this worker's trace sink while the engine's tracer is armed
	// (nil otherwise — the instrumented sites pay one pointer test).
	tr *obs.WorkerTracer
	// cw is this worker's contention-observatory shard while armed (nil
	// otherwise — same one-pointer-test discipline as tr).
	cw *contend.Worker
	// dt is the deterministic group-mode state (nil in free-running mode —
	// the instrumented sites pay one pointer test). See det.go.
	dt *detTxn
	// cancel, when non-nil, is polled at operation entry points; a true
	// return makes the op fail with ErrCanceled (deadline propagation from
	// the serving layer — nil in the common embedded case, so the op path
	// pays one pointer test).
	cancel func() bool

	writes     []writeOp
	inserts    []insertOp
	reads      []readRef
	locks      []lockRef
	occIntents []lockRef // OCC write intents awaiting validation-time locks
}

// setAbortCause records why this transaction is about to abort. Later calls
// overwrite earlier ones: the error that finally forces the abort wins (a
// conflict swallowed and retried by the closure must not misattribute a
// subsequent user rollback).
func (tx *Txn) setAbortCause(r obs.AbortReason) {
	tx.cause, tx.causeSet = r, true
}

// classifyAbort maps the error that aborted the transaction onto the abort
// taxonomy. ErrConflict keeps a more specific cause recorded at the failure
// site (occValidate marks validation failures) and otherwise defaults to a
// lock conflict, which covers the exec-time no-wait CC rejections.
func (tx *Txn) classifyAbort(err error) {
	switch {
	case errors.Is(err, ErrRollback):
		tx.setAbortCause(obs.AbortUserRollback)
	case errors.Is(err, ErrTableFull):
		tx.setAbortCause(obs.AbortTableFull)
	case errors.Is(err, ErrTxnTooLarge):
		tx.setAbortCause(obs.AbortLogFull)
	case errors.Is(err, ErrCanceled):
		tx.setAbortCause(obs.AbortCanceled)
	case errors.Is(err, ErrConflict):
		if !tx.causeSet {
			tx.setAbortCause(obs.AbortLockConflict)
		}
	default:
		tx.setAbortCause(obs.AbortOther)
	}
}

// writeOp is one buffered update or delete.
type writeOp struct {
	t    *Table
	kind uint8 // wal.OpUpdate or wal.OpDelete
	slot uint64
	key  uint64
	off  int
	n    int
	// logPos locates the op in the log window (in-place engines).
	logPos int
	// data holds the post-image for out-of-place engines (DRAM buffered).
	data []byte
	// secKey caches the secondary key captured at buffering time (deletes).
	secKey uint64
}

// insertOp is one buffered insert; the slot is pre-allocated and private to
// the transaction until commit publishes it in the index.
type insertOp struct {
	t      *Table
	slot   uint64
	key    uint64
	logPos int
	data   []byte // out-of-place engines
}

// readRef records an OCC read for validation; group mode records every CC
// algorithm's reads here, stamped with their virtual time, for the round
// barrier's conflict windows.
type readRef struct {
	t    *Table
	slot uint64
	key  uint64 // primary key (contention attribution)
	word uint64
	vt   uint64 // read vtime (group-mode barrier validation)
}

// lockRef records a held lock for release at commit/abort.
type lockRef struct {
	t      *Table
	slot   uint64
	key    uint64 // primary key (contention attribution)
	shared bool   // 2PL read lock
	pre    uint64 // pre-lock word (TO/OCC restore on abort)
	vt     uint64 // acquisition vtime (group-mode barrier validation)
}

// Begin starts a read-write transaction on worker's thread.
func (e *Engine) Begin(worker int) *Txn {
	return e.begin(worker, false)
}

// BeginRO starts a read-only transaction. Under multi-version algorithms it
// reads a consistent snapshot without acquiring any locks; under
// single-version algorithms it is an ordinary transaction that happens not
// to write.
func (e *Engine) BeginRO(worker int) *Txn {
	return e.begin(worker, true)
}

func (e *Engine) begin(worker int, ro bool) *Txn {
	clk := e.clocks[worker]
	var tid uint64
	if e.det != nil {
		tid = e.detTID(worker, clk)
	} else {
		tid = e.gen.Next(worker)
	}
	e.active.Set(worker, tid)
	tx := &Txn{e: e, worker: worker, tid: tid, clk: clk, ro: ro}
	if e.det != nil {
		tx.dt = &detTxn{ov: make(map[detSlot]*ovEntry, 8)}
	}
	// Start the phase timer before charging the begin overhead so the phases
	// partition every transactional nanosecond (the overhead lands in exec).
	tx.pt.Start(&e.phases[worker], clk)
	if e.tracerW != nil {
		tx.tr = e.tracerW[worker]
		tx.tr.TxnBegin(tid, clk.Nanos())
		tx.pt.AttachTrace(tx.tr)
	}
	if e.contendW != nil {
		tx.cw = e.contendW[worker]
	}
	clk.Advance(e.sys.Cost().TxnOverhead)
	if e.cfg.Update == InPlace && !ro {
		if e.board != nil {
			// Group-commit backpressure: the next slot's record may belong
			// to an epoch that has not reached its durable point; wait out
			// the bounded epoch timeout before overwriting it.
			tx.pt.To(obs.PhaseGroupWait)
			e.windows[worker].GroupWait(clk)
		}
		tx.pt.To(obs.PhaseLogAppend)
		tx.log = e.windows[worker].Begin(clk, tid)
		tx.pt.To(obs.PhaseExec)
	}
	return tx
}

// TID returns the transaction id (also its snapshot timestamp).
func (tx *Txn) TID() uint64 { return tx.tid }

// snapshotRead reports whether reads bypass concurrency control via the
// version store.
func (tx *Txn) snapshotRead() bool { return tx.ro && tx.e.cfg.CC.MultiVersion() }

// wtsOf extracts the writer TID from a shadow word under the engine's CC
// encoding.
func (e *Engine) wtsOf(word uint64) uint64 {
	if e.cfg.CC.Base() == cc.TwoPL {
		return cc.WTS2PL(word)
	}
	return cc.WTSTO(word)
}

// ---- read path ----

// Read copies the tuple payload for key into dst (len >= tuple size). It
// returns ErrNotFound for missing keys and ErrConflict on CC conflicts.
func (tx *Txn) Read(t *Table, key uint64, dst []byte) error {
	return tx.read(t, key, 0, t.schema.TupleSize(), dst)
}

// ReadField copies one column of the tuple for key into dst.
func (tx *Txn) ReadField(t *Table, key uint64, col int, dst []byte) error {
	return tx.read(t, key, t.schema.Offset(col), t.schema.Column(col).Size, dst)
}

// tstat returns this worker's counter row for t. Single-owner like the
// phase sets: only the owning worker writes it.
func (tx *Txn) tstat(t *Table) *obs.TableStats {
	return &tx.e.tstats[tx.worker][t.id].TableStats
}

// checkCancel polls the cancellation hook; every operation entry point calls
// it so an expired deadline surfaces within one op, not one transaction.
func (tx *Txn) checkCancel() error {
	if tx.cancel != nil && tx.cancel() {
		return ErrCanceled
	}
	return nil
}

func (tx *Txn) read(t *Table, key uint64, off, n int, dst []byte) error {
	if err := tx.checkCancel(); err != nil {
		return err
	}
	tx.clk.Advance(tx.e.sys.Cost().OpOverhead)
	tx.tstat(t).Reads++
	tx.cw.Touch(int(t.id), key)

	// Read-your-own-insert.
	if ins := tx.findInsert(t, key); ins != nil {
		tx.copyPending(ins.t, ins.data, ins.logPos, off, n, dst)
		tx.overlayOwnWrites(t, ins.slot, off, n, dst)
		return nil
	}
	slot, ok := tx.resolve(t, key)
	if !ok {
		return ErrNotFound
	}
	return tx.readResolved(t, key, slot, off, n, dst)
}

// resolve looks key up in the primary index. When the engine distrusts its
// recovered NVM index (see Engine.validateHits) the hit is validated
// against the tuple's durable key column and flags: a key mismatch or a
// dead occupant means the entry is a stale survivor of a lost in-cache
// index update and is treated as a miss. (A key whose live version moved
// was repointed during recovery, so a surviving dead-slot entry can only
// belong to a key with no live version.)
func (tx *Txn) resolve(t *Table, key uint64) (uint64, bool) {
	tx.tstat(t).IndexProbes++
	slot, ok := t.primary.Get(tx.clk, key)
	if !ok {
		return 0, false
	}
	if tx.e.validateHits {
		if t.heap.ReadFlags(tx.clk, slot)&(heap.FlagDeleted|heap.FlagInvalidated) != 0 {
			return 0, false
		}
		if t.heap.ReadRangeU64(tx.clk, slot, t.schema.Offset(t.keyCol)) != key {
			return 0, false
		}
	}
	return slot, true
}

// readResolved is the concurrency-controlled read of an already-resolved
// heap slot, shared by point reads and scans.
func (tx *Txn) readResolved(t *Table, key, slot uint64, off, n int, dst []byte) error {
	if tx.snapshotRead() {
		return tx.snapshotReadSlot(t, key, slot, off, n, dst)
	}

	lock, _ := tx.metaFor(t, slot)

	// Read-your-own-write: the slot is already locked by us; read the base
	// tuple and overlay pending ops.
	if tx.ownsWrite(t, slot) {
		tx.readPayload(t, key, slot, off, n, dst)
		tx.overlayOwnWrites(t, slot, off, n, dst)
		return nil
	}

	switch tx.e.cfg.CC.Base() {
	case cc.TwoPL:
		if !tx.holdsShared(t, slot) {
			if !cc.TryReadLock2PL(lock) {
				return tx.ccConflict(t, key, slot, lock.Load(), obs.ConflictLockFail)
			}
			tx.locks = append(tx.locks, lockRef{t: t, slot: slot, key: key, shared: true, vt: tx.clk.Nanos()})
		}
		// The lock makes the flags stable.
		if err := liveErr(t, tx.clk, slot); err != nil {
			return err
		}
		tx.readPayload(t, key, slot, off, n, dst)
		tx.detRecordRead(t, slot, key)
		return nil

	case cc.TO:
		word := lock.Load()
		if cc.Locked(word) {
			return tx.ccConflict(t, key, slot, word, obs.ConflictLockFail)
		}
		if cc.WTSTO(word) > tx.tid {
			return tx.ccConflict(t, key, slot, word, obs.ConflictTSOrder)
		}
		flags := t.heap.ReadFlags(tx.clk, slot)
		_, readTS := tx.metaFor(t, slot)
		cc.MaxTS(readTS, tx.tid)
		tx.readPayload(t, key, slot, off, n, dst)
		if lock.Load() != word {
			// Concurrent writer slipped in: torn read.
			return tx.ccConflict(t, key, slot, lock.Load(), obs.ConflictTornRead)
		}
		if err := flagsErr(flags); err != nil {
			return err
		}
		tx.detRecordRead(t, slot, key)
		return nil

	default: // OCC
		word := lock.Load()
		if cc.Locked(word) {
			return tx.ccConflict(t, key, slot, word, obs.ConflictLockFail) // no-wait
		}
		flags := t.heap.ReadFlags(tx.clk, slot)
		tx.readPayload(t, key, slot, off, n, dst)
		if lock.Load() != word {
			return tx.ccConflict(t, key, slot, lock.Load(), obs.ConflictTornRead)
		}
		if err := flagsErr(flags); err != nil {
			return err
		}
		tx.reads = append(tx.reads, readRef{t: t, slot: slot, key: key, word: word, vt: tx.clk.Nanos()})
		return nil
	}
}

// flagsErr maps slot flags to read outcomes: deleted tuples read as absent;
// an invalidated (superseded out-of-place) version forces a retry so the
// reader re-resolves the index to the current version.
func flagsErr(flags uint8) error {
	if flags&heap.FlagDeleted != 0 {
		return ErrNotFound
	}
	if flags&heap.FlagInvalidated != 0 {
		return ErrConflict
	}
	return nil
}

func liveErr(t *Table, clk *sim.Clock, slot uint64) error {
	return flagsErr(t.heap.ReadFlags(clk, slot))
}

// liveIntent rejects write intents on dead slots — a writer may have raced
// us to this version and superseded it; the index must be re-resolved. The
// just-acquired lock stays tracked and is released on abort.
func (tx *Txn) liveIntent(t *Table, slot uint64) error {
	if err := liveErr(t, tx.clk, slot); err != nil {
		if errors.Is(err, ErrNotFound) {
			return err
		}
		return ErrConflict
	}
	return nil
}

// readPayload reads tuple bytes, consulting the ZenS tuple cache when
// enabled.
func (tx *Txn) readPayload(t *Table, key uint64, slot uint64, off, n int, dst []byte) {
	if tc := tx.tupleCache(); tc != nil {
		scratch := tx.e.scratchFor(tx.worker, t.schema.TupleSize())
		if tc.get(tx.clk, t.id, key, scratch) {
			copy(dst[:n], scratch[off:off+n])
			return
		}
		t.heap.ReadPayload(tx.clk, slot, scratch)
		tc.put(tx.clk, t.id, key, scratch)
		copy(dst[:n], scratch[off:off+n])
		return
	}
	t.heap.ReadRange(tx.clk, slot, off, dst[:n])
}

// snapshotReadSlot performs the MVCC read of Figure 6: try the in-NVM tuple
// with a seqlock check; fall back to the version chain. A snapshot newer
// than an in-flight writer must wait for that writer's in-place apply to
// finish (its chain only covers older intervals), so the loop spins briefly
// in that case — writers hold tuples only across the short apply phase.
func (tx *Txn) snapshotReadSlot(t *Table, key, slot uint64, off, n int, dst []byte) error {
	if tx.tr == nil && tx.cw == nil {
		return tx.snapshotReadSlotSpin(t, slot, off, n, dst, nil)
	}
	// Traced or observed: if the read had to spin behind a mid-apply writer,
	// record the stall as a lock-wait span / spin-wait conflict (start
	// approximates the first probe).
	var spins uint64
	start := tx.clk.Nanos()
	err := tx.snapshotReadSlotSpin(t, slot, off, n, dst, &spins)
	if spins > 0 {
		now := tx.clk.Nanos()
		if tx.tr != nil {
			tx.tr.Span(obs.EvLockWait, start, now, slot, spins)
		}
		if tx.cw != nil {
			// The word now carries the writer we waited behind.
			lock, _ := t.heap.Meta(slot)
			holder := -1
			if h := cc.HolderTID(tx.e.cfg.CC, lock.Load()); h != 0 {
				holder = cc.TIDWorker(h)
			}
			tx.cw.Conflict(int(t.id), key, slot, obs.ConflictSpinWait, holder, now-start, now)
		}
	}
	return err
}

func (tx *Txn) snapshotReadSlotSpin(t *Table, slot uint64, off, n int, dst []byte, spins *uint64) error {
	lock, _ := t.heap.Meta(slot)
	for {
		word := lock.Load()
		if !cc.Locked(word) && tx.e.wtsOf(word) <= tx.tid {
			flags := t.heap.ReadFlags(tx.clk, slot)
			t.heap.ReadRange(tx.clk, slot, off, dst[:n])
			if lock.Load() == word {
				if flags&heap.FlagDeleted != 0 {
					// Deleted at or before our snapshot.
					return ErrNotFound
				}
				if flags&heap.FlagInvalidated == 0 {
					return nil
				}
				// Superseded out-of-place version: consult the chain.
			} else {
				continue // torn read: retry
			}
		}
		if v := t.versions.ReadVisible(tx.clk, slot, tx.tid); v != nil {
			if v.SlotRef != 0 {
				t.heap.ReadRange(tx.clk, v.SlotRef-1, off, dst[:n])
			} else {
				copy(dst[:n], v.Data[off:off+n])
			}
			return nil
		}
		if word = lock.Load(); !cc.Locked(word) {
			flags := t.heap.ReadFlags(tx.clk, slot)
			if flags&heap.FlagInvalidated != 0 {
				// Stale out-of-place version whose chain migrated to its
				// successor; re-resolve through the index.
				return ErrConflict
			}
			if flags&heap.FlagDeleted != 0 {
				return ErrNotFound
			}
			if tx.e.wtsOf(word) > tx.tid {
				// Genuinely created after our snapshot.
				return ErrNotFound
			}
		}
		// A writer newer than every chained version but older than our
		// snapshot is mid-apply; wait for it.
		if spins != nil {
			*spins++
		}
		runtime.Gosched()
	}
}

// ---- write buffering ----

// Update overwrites payload bytes [off, off+len(data)) of the tuple for key.
func (tx *Txn) Update(t *Table, key uint64, off int, data []byte) error {
	if err := tx.checkCancel(); err != nil {
		return err
	}
	cost := tx.e.sys.Cost()
	tx.clk.Advance(cost.OpOverhead)
	if tx.ro {
		return ErrReadOnly
	}

	tx.cw.Touch(int(t.id), key)
	if ins := tx.findInsert(t, key); ins != nil {
		return tx.updatePendingInsert(ins, off, data)
	}
	slot, ok := tx.resolve(t, key)
	if !ok {
		return ErrNotFound
	}
	if err := tx.writeIntent(t, key, slot); err != nil {
		return err
	}
	return tx.bufferWrite(t, wal.OpUpdate, slot, key, off, data, 0)
}

// UpdateField overwrites one column.
func (tx *Txn) UpdateField(t *Table, key uint64, col int, data []byte) error {
	return tx.Update(t, key, t.schema.Offset(col), data)
}

// Delete removes the tuple for key at commit.
func (tx *Txn) Delete(t *Table, key uint64) error {
	if err := tx.checkCancel(); err != nil {
		return err
	}
	cost := tx.e.sys.Cost()
	tx.clk.Advance(cost.OpOverhead)
	if tx.ro {
		return ErrReadOnly
	}
	tx.cw.Touch(int(t.id), key)
	slot, ok := tx.resolve(t, key)
	if !ok {
		return ErrNotFound
	}
	if err := tx.writeIntent(t, key, slot); err != nil {
		return err
	}
	var secKey uint64
	if t.secondary != nil {
		secKey = t.heap.ReadRangeU64(tx.clk, slot, t.schema.Offset(t.secondaryCol))
	}
	return tx.bufferWrite(t, wal.OpDelete, slot, key, 0, nil, secKey)
}

// Insert adds a tuple with the given payload (len = tuple size). The key
// must equal the payload's key column; the slot becomes visible at commit.
func (tx *Txn) Insert(t *Table, key uint64, payload []byte) error {
	if err := tx.checkCancel(); err != nil {
		return err
	}
	cost := tx.e.sys.Cost()
	tx.clk.Advance(cost.OpOverhead)
	if tx.ro {
		return ErrReadOnly
	}
	tx.cw.Touch(int(t.id), key)
	if tx.findInsert(t, key) != nil {
		return ErrDuplicateKey
	}
	if !tx.reserveKey(t, key) {
		// Another in-flight insert holds the key latch.
		return tx.ccConflict(t, key, 0, 0, obs.ConflictLockFail)
	}
	if _, exists := tx.resolve(t, key); exists {
		tx.releaseKey(t, key)
		return ErrDuplicateKey
	}
	slot, err := t.heap.Alloc(tx.clk, tx.worker, tx.e.minActive())
	if err != nil {
		tx.releaseKey(t, key)
		if errors.Is(err, heap.ErrReclaimPending) {
			return ErrConflict // backpressure: retry once horizons advance
		}
		return fmt.Errorf("%w: %s (insert)", ErrTableFull, t.name)
	}
	ins := insertOp{t: t, slot: slot, key: key}
	if tx.e.cfg.Update == InPlace {
		pos := tx.logAppendInsert(t, slot, key, payload)
		if pos < 0 {
			tx.releaseKey(t, key)
			return ErrTxnTooLarge
		}
		ins.logPos = pos
	} else {
		ins.data = append([]byte(nil), payload[:t.schema.TupleSize()]...)
		chargeDRAMCopy(tx.clk, cost, len(ins.data))
	}
	tx.inserts = append(tx.inserts, ins)
	return nil
}

// writeIntent acquires the algorithm-specific right to write slot,
// attributing the acquisition to the CC phase.
func (tx *Txn) writeIntent(t *Table, key, slot uint64) error {
	prev := tx.pt.To(obs.PhaseCC)
	err := tx.writeIntentCC(t, key, slot)
	tx.pt.To(prev)
	return err
}

func (tx *Txn) writeIntentCC(t *Table, key, slot uint64) error {
	if tx.ownsWrite(t, slot) {
		return nil
	}
	lock, readTS := tx.metaFor(t, slot)
	switch tx.e.cfg.CC.Base() {
	case cc.TwoPL:
		if tx.holdsShared(t, slot) {
			if !cc.TryUpgrade2PL(lock) {
				return tx.ccConflict(t, key, slot, lock.Load(), obs.ConflictUpgrade)
			}
			tx.dropShared(t, slot)
			tx.locks = append(tx.locks, lockRef{t: t, slot: slot, key: key, vt: tx.clk.Nanos()})
			return tx.liveIntent(t, slot)
		}
		if !cc.TryWriteLock2PL(lock) {
			return tx.ccConflict(t, key, slot, lock.Load(), obs.ConflictLockFail)
		}
		tx.locks = append(tx.locks, lockRef{t: t, slot: slot, key: key, vt: tx.clk.Nanos()})
		return tx.liveIntent(t, slot)

	case cc.TO:
		pre, ok := cc.TryLockTO(lock)
		if !ok {
			return tx.ccConflict(t, key, slot, lock.Load(), obs.ConflictLockFail)
		}
		if cc.WTSTO(pre) > tx.tid || readTS.Load() > tx.tid {
			cc.UnlockTOKeep(lock, pre)
			return tx.ccConflict(t, key, slot, pre, obs.ConflictTSOrder)
		}
		tx.locks = append(tx.locks, lockRef{t: t, slot: slot, key: key, pre: pre, vt: tx.clk.Nanos()})
		return tx.liveIntent(t, slot)

	default: // OCC defers locking to validation
		tx.writesMark(t, key, slot)
		return nil
	}
}

// bufferWrite records the op in the write set (the log window for in-place
// engines, DRAM for out-of-place).
func (tx *Txn) bufferWrite(t *Table, kind uint8, slot, key uint64, off int, data []byte, secKey uint64) error {
	op := writeOp{t: t, kind: kind, slot: slot, key: key, off: off, n: len(data), secKey: secKey}
	if tx.e.cfg.Update == InPlace {
		var pos int
		if kind == wal.OpDelete {
			pos = tx.logAppendDelete(t, slot, key)
		} else {
			pos = tx.logAppendUpdate(t, slot, key, off, data)
		}
		if pos < 0 {
			return ErrTxnTooLarge
		}
		op.logPos = pos
	} else {
		if kind != wal.OpDelete {
			op.data = append([]byte(nil), data...)
			chargeDRAMCopy(tx.clk, tx.e.sys.Cost(), len(data))
		}
	}
	tx.writes = append(tx.writes, op)
	return nil
}

// updatePendingInsert folds an update into a not-yet-committed insert.
func (tx *Txn) updatePendingInsert(ins *insertOp, off int, data []byte) error {
	if tx.e.cfg.Update == OutOfPlace {
		copy(ins.data[off:off+len(data)], data)
		chargeDRAMCopy(tx.clk, tx.e.sys.Cost(), len(data))
		return nil
	}
	// In-place: append a follow-up update op on the same slot; replay order
	// preserves the final image.
	pos := tx.logAppendUpdate(ins.t, ins.slot, ins.key, off, data)
	if pos < 0 {
		return ErrTxnTooLarge
	}
	tx.writes = append(tx.writes, writeOp{
		t: ins.t, kind: wal.OpUpdate, slot: ins.slot, key: ins.key,
		off: off, n: len(data), logPos: pos,
	})
	return nil
}

// ---- log append helpers (in-place) ----
//
// Each helper attributes its window writes to the log-append phase before
// returning to the caller's phase.

func (tx *Txn) logAppendUpdate(t *Table, slot, key uint64, off int, data []byte) int {
	prev := tx.pt.To(obs.PhaseLogAppend)
	pos := tx.log.AppendUpdate(tx.clk, t.id, slot, key, off, data)
	tx.pt.To(prev)
	return pos
}

func (tx *Txn) logAppendInsert(t *Table, slot, key uint64, payload []byte) int {
	prev := tx.pt.To(obs.PhaseLogAppend)
	pos := tx.log.AppendInsert(tx.clk, t.id, slot, key, payload[:t.schema.TupleSize()])
	tx.pt.To(prev)
	return pos
}

func (tx *Txn) logAppendDelete(t *Table, slot, key uint64) int {
	prev := tx.pt.To(obs.PhaseLogAppend)
	pos := tx.log.AppendDelete(tx.clk, t.id, slot, key)
	tx.pt.To(prev)
	return pos
}

// ---- own-write bookkeeping ----

func (tx *Txn) findInsert(t *Table, key uint64) *insertOp {
	for i := range tx.inserts {
		ins := &tx.inserts[i]
		if ins.t == t && ins.key == key {
			return ins
		}
	}
	return nil
}

func (tx *Txn) ownsWrite(t *Table, slot uint64) bool {
	for i := range tx.locks {
		l := &tx.locks[i]
		if l.t == t && l.slot == slot && !l.shared {
			return true
		}
	}
	// OCC has no exec-time locks; check the write set.
	if tx.e.cfg.CC.Base() == cc.OCC {
		for i := range tx.writes {
			w := &tx.writes[i]
			if w.t == t && w.slot == slot {
				return true
			}
		}
		return tx.occMarked(t, slot)
	}
	return false
}

func (tx *Txn) holdsShared(t *Table, slot uint64) bool {
	for i := range tx.locks {
		l := &tx.locks[i]
		if l.t == t && l.slot == slot && l.shared {
			return true
		}
	}
	return false
}

func (tx *Txn) dropShared(t *Table, slot uint64) {
	for i := range tx.locks {
		l := &tx.locks[i]
		if l.t == t && l.slot == slot && l.shared {
			tx.locks = append(tx.locks[:i], tx.locks[i+1:]...)
			return
		}
	}
}

// occMarks tracks write intents under OCC before any op is buffered.
func (tx *Txn) writesMark(t *Table, key, slot uint64) {
	if !tx.occMarked(t, slot) {
		tx.occIntents = append(tx.occIntents, lockRef{t: t, slot: slot, key: key})
	}
}

func (tx *Txn) occMarked(t *Table, slot uint64) bool {
	for i := range tx.occIntents {
		m := &tx.occIntents[i]
		if m.t == t && m.slot == slot {
			return true
		}
	}
	return false
}

// overlayOwnWrites patches dst (payload range [off, off+n)) with this
// transaction's buffered updates to slot.
func (tx *Txn) overlayOwnWrites(t *Table, slot uint64, off, n int, dst []byte) {
	for i := range tx.writes {
		w := &tx.writes[i]
		if w.t != t || w.slot != slot || w.kind != wal.OpUpdate {
			continue
		}
		lo, hi := w.off, w.off+w.n
		if hi <= off || lo >= off+n {
			continue
		}
		data := w.data
		if tx.e.cfg.Update == InPlace {
			op, _ := tx.log.ReadOp(tx.clk, w.logPos)
			data = op.Data
		}
		s, d := 0, lo-off
		if d < 0 {
			s, d = -d, 0
		}
		end := hi
		if end > off+n {
			end = off + n
		}
		copy(dst[d:], data[s:s+(end-(lo+s))])
	}
}

// copyPending reads range [off, off+n) of a pending insert's payload.
func (tx *Txn) copyPending(t *Table, data []byte, logPos int, off, n int, dst []byte) {
	if tx.e.cfg.Update == OutOfPlace {
		copy(dst[:n], data[off:off+n])
		return
	}
	op, _ := tx.log.ReadOp(tx.clk, logPos)
	copy(dst[:n], op.Data[off:off+n])
}

func chargeDRAMCopy(clk *sim.Clock, cost sim.CostModel, n int) {
	lines := (n + 63) / 64
	if lines < 1 {
		lines = 1
	}
	clk.Advance(cost.DRAMFirstLine + uint64(lines-1)*cost.DRAMNextLine)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
