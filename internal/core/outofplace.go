package core

import (
	"errors"
	"fmt"

	"falcon/internal/cc"
	"falcon/internal/heap"
	"falcon/internal/obs"
	"falcon/internal/sim"
	"falcon/internal/wal"
)

// commitOutOfPlace implements the log-free commit of the out-of-place
// engines (Outp and ZenS, §2.1.2): each update materializes a complete new
// tuple version in a freshly allocated heap slot, the per-thread commit
// marker makes the transaction durable atomically, and the index is
// repointed afterwards.
//
// Durability protocol (what recovery relies on):
//
//  1. New versions (full payload + writer TID + occupied flag) are written
//     and, per the flush policy, clwb'd. Deletes durably set the deleted
//     flag + TID on the old slot.
//  2. sfence, then the thread's commit marker is set to the TID and flushed.
//     A version is committed iff its TID <= its writer thread's marker.
//  3. Indexes are repointed and old versions invalidated. These steps are
//     idempotently redone by the recovery heap scan, which is why
//     out-of-place recovery time is proportional to heap size (§5.4, §6.5).
func (tx *Txn) commitOutOfPlace() error {
	e := tx.e
	if e.cfg.CC.Base() == cc.OCC {
		prev := tx.pt.To(obs.PhaseCC)
		ok := tx.occValidate()
		tx.pt.To(prev)
		if !ok {
			tx.setAbortCause(obs.AbortValidation)
			return ErrConflict
		}
	}
	return tx.commitOutOfPlaceTail()
}

// commitOutOfPlaceTail is the shared-state half of the out-of-place commit;
// group mode runs it inside the round barrier.
func (tx *Txn) commitOutOfPlaceTail() error {
	e := tx.e

	// Group update ops by target slot: one new version per logical tuple.
	type group struct {
		t       *Table
		oldSlot uint64
		key     uint64
		newSlot uint64
		del     bool
		ops     []*writeOp
		// oldSec/newSec track the secondary key across the version move.
		oldSec, newSec uint64
	}
	var groups []*group
	byslot := make(map[*Table]map[uint64]*group, 2)
	for i := range tx.writes {
		w := &tx.writes[i]
		m := byslot[w.t]
		if m == nil {
			m = make(map[uint64]*group, 4)
			byslot[w.t] = m
		}
		g := m[w.slot]
		if g == nil {
			g = &group{t: w.t, oldSlot: w.slot, key: w.key}
			m[w.slot] = g
			groups = append(groups, g)
		}
		if w.kind == wal.OpDelete {
			g.del = true
		} else {
			g.ops = append(g.ops, w)
		}
	}

	// Phase 1: materialize new versions / durable delete records.
	tx.pt.To(obs.PhaseHeapWrite)
	for _, g := range groups {
		tx.tstat(g.t).Writes++
		if g.del {
			// The deleted flag + TID on the old slot is the durable delete
			// record; linking for recycling waits until after the marker so
			// an uncommitted delete can be rolled back by recovery.
			g.t.heap.MarkDeleted(tx.clk, g.oldSlot, tx.tid)
			if e.cfg.Flush != FlushNone {
				tx.pt.To(obs.PhaseFlush)
				g.t.heap.CLWBSlot(tx.clk, g.oldSlot, 0, 0)
				tx.pt.To(obs.PhaseHeapWrite)
			}
			continue
		}
		scratch := e.scratchFor(tx.worker, g.t.schema.TupleSize())
		g.t.heap.ReadPayload(tx.clk, g.oldSlot, scratch) // full-tuple copy (§6.2.2: write amplification of out-of-place)
		if e.cfg.OwnershipCopy && g.t.heap.Owner(g.oldSlot) != tx.worker {
			// Zen does not let a thread modify another thread's tuple
			// directly: it copies the tuple into its own pages and
			// invalidates the original first — extra reads that hurt under
			// contended (Zipfian) workloads (§6.2.3).
			g.t.heap.ReadPayload(tx.clk, g.oldSlot, scratch)
		}
		if g.t.secondary != nil {
			g.oldSec = g.t.schema.GetUint64(scratch, g.t.secondaryCol)
		}
		for _, w := range g.ops {
			copy(scratch[w.off:w.off+w.n], w.data)
			tx.cw.LogicalBytes(uint64(g.t.id), uint64(w.n))
		}
		if g.t.secondary != nil {
			g.newSec = g.t.schema.GetUint64(scratch, g.t.secondaryCol)
		}
		slot, err := g.t.heap.Alloc(tx.clk, tx.worker, e.minActive())
		if err != nil {
			retryable := errors.Is(err, heap.ErrReclaimPending)
			// Roll back versions already materialized in this phase so the
			// slots are not leaked.
			for _, rb := range groups {
				if rb == g {
					break
				}
				if !rb.del && rb.newSlot != 0 {
					rb.t.heap.Retire(tx.clk, rb.newSlot, 0, 0, true)
				}
			}
			if retryable {
				return ErrConflict // backpressure: retry once horizons advance
			}
			return fmt.Errorf("%w: %s (out-of-place version)", ErrTableFull, g.t.name)
		}
		g.newSlot = slot
		// Publish order: payload, then TID, then the occupied flag LAST. The
		// occupied flag is what makes the slot visible to the recovery scan;
		// were it written before the TID, a crash between the two stores
		// would expose an uncommitted version with ts 0 — indistinguishable
		// from bulk-loaded (always-committed) data.
		g.t.heap.WritePayload(tx.clk, slot, scratch)
		g.t.heap.WriteTS(tx.clk, slot, tx.tid)
		g.t.heap.SetOccupied(tx.clk, slot)
		if e.cfg.Flush != FlushNone {
			tx.pt.To(obs.PhaseFlush)
			g.t.heap.CLWBSlot(tx.clk, slot, 0, g.t.schema.TupleSize())
			tx.pt.To(obs.PhaseHeapWrite)
		}
		e.tcPut(tx.clk, tx.worker, g.t.id, g.key, scratch)
	}
	// Inserts: fresh slots, same durability rules.
	for i := range tx.inserts {
		ins := &tx.inserts[i]
		tx.tstat(ins.t).Writes++
		tx.cw.LogicalBytes(uint64(ins.t.id), uint64(ins.t.schema.TupleSize()))
		// Same publish order as above: occupied flag last.
		ins.t.heap.WritePayload(tx.clk, ins.slot, ins.data)
		ins.t.heap.WriteTS(tx.clk, ins.slot, tx.tid)
		ins.t.heap.SetOccupied(tx.clk, ins.slot)
		if e.cfg.Flush != FlushNone {
			tx.pt.To(obs.PhaseFlush)
			ins.t.heap.CLWBSlot(tx.clk, ins.slot, 0, ins.t.schema.TupleSize())
			tx.pt.To(obs.PhaseHeapWrite)
		}
	}

	// Phase 2: the commit marker — the out-of-place engines' durable point,
	// accounted as log work (it plays the commit record's role).
	tx.pt.To(obs.PhaseLogAppend)
	e.nvm.SFence(tx.clk)
	tx.writeMarker()

	// Phase 3: index repointing, version chains, invalidation.
	tx.pt.To(obs.PhaseIndexUpdate)
	for _, g := range groups {
		if g.del {
			g.t.primary.Delete(tx.clk, g.key)
			if g.t.secondary != nil {
				// The secondary key was captured at buffering time.
				for i := range tx.writes {
					w := &tx.writes[i]
					if w.t == g.t && w.slot == g.oldSlot && w.kind == wal.OpDelete {
						g.t.secondary.Delete(tx.clk, w.secKey)
						break
					}
				}
			}
			e.tcInvalidate(tx.clk, g.t.id, g.key)
			tx.pt.To(obs.PhaseHeapWrite)
			g.t.heap.Link(tx.clk, g.oldSlot, e.gen.Next(tx.worker))
			tx.pt.To(obs.PhaseIndexUpdate)
			continue
		}
		lock, _ := g.t.heap.Meta(g.oldSlot)
		beginTS := e.wtsOf(lock.Load())
		// Initialize the new slot's shadow word BEFORE the index publishes
		// the slot: once reachable, concurrent readers may lock it, and a
		// blind store would wipe their lock state.
		newLock, _ := g.t.heap.Meta(g.newSlot)
		if e.cfg.CC.Base() == cc.TwoPL {
			newLock.Store(tx.tid & cc.WTSMask2PL)
		} else {
			newLock.Store(tx.tid & cc.WTSMaskTO)
		}
		if g.t.versions != nil {
			tx.pt.To(obs.PhaseHeapWrite)
			g.t.versions.PublishRef(tx.clk, tx.worker, g.newSlot, beginTS, tx.tid, g.oldSlot)
			tx.pt.To(obs.PhaseIndexUpdate)
			tx.tstat(g.t).Versions++
		}
		g.t.primary.Update(tx.clk, g.key, g.newSlot)
		if g.t.secondary != nil {
			// The tuple moved; the secondary must follow. A changed
			// secondary key additionally relocates the entry.
			if g.oldSec == g.newSec {
				g.t.secondary.Update(tx.clk, g.newSec, g.newSlot)
			} else {
				g.t.secondary.Delete(tx.clk, g.oldSec)
				_ = g.t.secondary.Insert(tx.clk, g.newSec, g.newSlot)
			}
		}
		tx.pt.To(obs.PhaseHeapWrite)
		g.t.heap.Retire(tx.clk, g.oldSlot, tx.tid, e.gen.Next(tx.worker), true)
		tx.pt.To(obs.PhaseIndexUpdate)
	}
	for i := range tx.inserts {
		ins := &tx.inserts[i]
		lock, _ := ins.t.heap.Meta(ins.slot)
		if e.cfg.CC.Base() == cc.TwoPL {
			lock.Store(tx.tid & cc.WTSMask2PL)
		} else {
			lock.Store(tx.tid & cc.WTSMaskTO)
		}
		ins.t.primary.Insert(tx.clk, ins.key, ins.slot)
		if ins.t.secondary != nil {
			secKey := ins.t.schema.GetUint64(ins.data, ins.t.secondaryCol)
			ins.t.secondary.Insert(tx.clk, secKey, ins.slot)
		}
		tx.releaseKey(ins.t, ins.key)
		e.tcPut(tx.clk, tx.worker, ins.t.id, ins.key, ins.data)
	}

	tx.pt.To(obs.PhaseCC)
	tx.releaseLocksCommitted()
	tx.finish(true)
	return nil
}

// writeMarker durably records this thread's newest committed TID.
func (tx *Txn) writeMarker() {
	off := tx.e.markerBase + 64*uint64(tx.worker)
	tx.e.nvm.WriteU64(tx.clk, off, tx.tid)
	if tx.e.cfg.Flush != FlushNone {
		tx.e.nvm.CLWB(tx.clk, off, 8)
	}
	tx.e.nvm.SFence(tx.clk)
}

// readMarker returns thread t's newest committed TID from the durable image.
func (e *Engine) readMarker(clk *sim.Clock, t int) uint64 {
	return e.nvm.ReadU64(clk, e.markerBase+64*uint64(t))
}
