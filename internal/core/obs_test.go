package core

import (
	"errors"
	"testing"

	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/obs"
	"falcon/internal/pmem"
)

// reasonTotals sums the abort-reason counters and asserts they account for
// every abort exactly once.
func assertReasonsSumToAborts(t *testing.T, e *Engine) [obs.NumAbortReasons]uint64 {
	t.Helper()
	reasons := e.AbortReasons()
	var sum uint64
	for _, n := range reasons {
		sum += n
	}
	if sum != e.Aborts() {
		t.Fatalf("abort reasons sum to %d, want Aborts() = %d (%v)", sum, e.Aborts(), reasons)
	}
	return reasons
}

func TestAbortReasonLockConflict2PL(t *testing.T) {
	cfg := FalconConfig()
	cfg.CC = cc.TwoPL
	e := newKVEngine(t, cfg)
	tbl := e.Table("kv")
	s := tbl.Schema()
	if err := e.Run(0, func(tx *Txn) error {
		return tx.Insert(tbl, 1, encodeKV(s, 1, 10))
	}); err != nil {
		t.Fatal(err)
	}

	// Worker 0 holds the write lock; worker 1's update must fail no-wait.
	var v [8]byte
	tx0 := e.Begin(0)
	if err := tx0.UpdateField(tbl, 1, 1, v[:]); err != nil {
		t.Fatal(err)
	}
	tx1 := e.Begin(1)
	err := tx1.UpdateField(tbl, 1, 1, v[:])
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent update err = %v, want ErrConflict", err)
	}
	tx1.classifyAbort(err)
	tx1.Abort()
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}

	reasons := assertReasonsSumToAborts(t, e)
	if e.Aborts() != 1 || reasons[obs.AbortLockConflict] != 1 {
		t.Fatalf("aborts = %d, lock-conflict = %d, want 1/1 (%v)",
			e.Aborts(), reasons[obs.AbortLockConflict], reasons)
	}
}

func TestAbortReasonValidationOCC(t *testing.T) {
	cfg := FalconConfig()
	cfg.CC = cc.OCC
	e := newKVEngine(t, cfg)
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(1); k <= 2; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, 0))
		}); err != nil {
			t.Fatal(err)
		}
	}

	// tx reads key 1 and writes key 2; a concurrent commit on key 1 between
	// read and validation must fail validation, not look like a lock conflict.
	tx := e.Begin(0)
	buf := make([]byte, s.TupleSize())
	if err := tx.Read(tbl, 1, buf); err != nil {
		t.Fatal(err)
	}
	var v [8]byte
	if err := tx.UpdateField(tbl, 2, 1, v[:]); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1, func(other *Txn) error {
		return other.UpdateField(tbl, 1, 1, v[:])
	}); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("commit err = %v, want ErrConflict", err)
	}
	tx.classifyAbort(err)
	tx.Abort()

	reasons := assertReasonsSumToAborts(t, e)
	if e.Aborts() != 1 || reasons[obs.AbortValidation] != 1 {
		t.Fatalf("aborts = %d, validation = %d, want 1/1 (%v)",
			e.Aborts(), reasons[obs.AbortValidation], reasons)
	}
}

func TestAbortReasonUserRollback(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	err := e.Run(0, func(tx *Txn) error {
		if err := tx.Insert(tbl, 1, encodeKV(s, 1, 1)); err != nil {
			return err
		}
		return ErrRollback
	})
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
	reasons := assertReasonsSumToAborts(t, e)
	if e.Aborts() != 1 || reasons[obs.AbortUserRollback] != 1 {
		t.Fatalf("aborts = %d, user-rollback = %d, want 1/1 (%v)",
			e.Aborts(), reasons[obs.AbortUserRollback], reasons)
	}

	// A bare Abort with no error defaults to user rollback too.
	tx := e.Begin(0)
	tx.Abort()
	reasons = assertReasonsSumToAborts(t, e)
	if reasons[obs.AbortUserRollback] != 2 {
		t.Fatalf("bare Abort classified as %v, want user-rollback", reasons)
	}
}

func TestAbortReasonTableFull(t *testing.T) {
	cfg := FalconConfig()
	cfg.Threads = 2
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := New(sys, cfg, kvSpec(index.Hash, 32))
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Table("kv")
	s := tbl.Schema()
	var fullErr error
	for k := uint64(0); k < 100; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, 0))
		}); err != nil {
			fullErr = err
			break
		}
	}
	if !errors.Is(fullErr, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", fullErr)
	}
	reasons := assertReasonsSumToAborts(t, e)
	if e.Aborts() != 1 || reasons[obs.AbortTableFull] != 1 {
		t.Fatalf("aborts = %d, table-full = %d, want 1/1 (%v)",
			e.Aborts(), reasons[obs.AbortTableFull], reasons)
	}
}

func TestAbortReasonsSumUnderContention(t *testing.T) {
	// A contended workload (retried conflicts plus a rollback) must keep the
	// invariant: every abort has exactly one reason.
	for _, algo := range cc.All {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := FalconConfig()
			cfg.CC = algo
			e := newKVEngine(t, cfg)
			tbl := e.Table("kv")
			s := tbl.Schema()
			if err := e.Run(0, func(tx *Txn) error {
				return tx.Insert(tbl, 1, encodeKV(s, 1, 0))
			}); err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 100; i++ {
					_ = e.Run(1, func(tx *Txn) error {
						buf := make([]byte, s.TupleSize())
						if err := tx.Read(tbl, 1, buf); err != nil {
							return err
						}
						var v [8]byte
						layoutPutI64(v[:], s.GetInt64(buf, 1)+1)
						return tx.UpdateField(tbl, 1, 1, v[:])
					})
				}
			}()
			for i := 0; i < 100; i++ {
				var v [8]byte
				_ = e.Run(2, func(tx *Txn) error {
					if err := tx.UpdateField(tbl, 1, 1, v[:]); err != nil {
						return err
					}
					if i%10 == 0 {
						return ErrRollback
					}
					return nil
				})
			}
			<-done
			assertReasonsSumToAborts(t, e)
			if e.AbortReasons()[obs.AbortUserRollback] != 10 {
				t.Fatalf("user rollbacks = %d, want 10", e.AbortReasons()[obs.AbortUserRollback])
			}
		})
	}
}

func TestPhaseNanosPartitionClock(t *testing.T) {
	// The seven phases partition all transactional virtual time, so their sum
	// must track the worker clock to within the per-transaction begin overhead
	// (charged before the timer starts) — comfortably inside the 10% the
	// observability contract promises.
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(0); k < 200; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	var v [8]byte
	for k := uint64(0); k < 200; k++ { // updates exercise the CC phase
		if err := e.Run(0, func(tx *Txn) error {
			return tx.UpdateField(tbl, k, 1, v[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.ObsSnapshot()
	clock := e.Clock(0).Nanos()
	total := snap.TotalPhaseNanos()
	if total == 0 || total > clock {
		t.Fatalf("phase total %d vs clock %d", total, clock)
	}
	if float64(total) < 0.9*float64(clock) {
		t.Fatalf("phase total %d covers only %.1f%% of clock %d, want >= 90%%",
			total, 100*float64(total)/float64(clock), clock)
	}
	for _, p := range []obs.Phase{obs.PhaseCC, obs.PhaseLogAppend, obs.PhaseHeapWrite, obs.PhaseFlush} {
		if snap.PhaseNanos[p] == 0 {
			t.Errorf("phase %s saw no time on the insert+update path", obs.PhaseNames[p])
		}
	}
}

func TestResetCountersClearsObsButNotPmem(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(0); k < 50; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, 0))
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = e.Run(0, func(tx *Txn) error { return ErrRollback })

	e.ResetCounters()
	snap := e.ObsSnapshot()
	if snap.Commits != 0 || snap.Aborts != 0 || snap.TotalPhaseNanos() != 0 {
		t.Fatalf("engine counters survived reset: %+v", snap)
	}
	if snap.WAL.Begins != 0 || snap.Hot.Hits+snap.Hot.Misses != 0 {
		t.Fatalf("wal/hot-set counters survived reset: %+v", snap)
	}
	var reasonSum uint64
	for _, n := range snap.AbortCounts {
		reasonSum += n
	}
	if reasonSum != 0 {
		t.Fatalf("abort reasons survived reset: %v", snap.AbortCounts)
	}
	// The pmem hardware counters belong to the shared device and are
	// deliberately not reset (see ResetCounters); warmup exclusion for them
	// goes through Snapshot.Sub instead.
	if snap.Mem.CacheMisses == 0 {
		t.Fatal("pmem counters were unexpectedly reset")
	}
}

func TestWarmupExcludedViaSnapshotDiff(t *testing.T) {
	// The bench warmup protocol: reset engine counters, take a baseline
	// snapshot, measure, diff. Warmup transactions must not appear anywhere
	// in the diffed snapshot.
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(0); k < 100; k++ { // "warmup"
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, 0))
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.ResetCounters()
	base := e.ObsSnapshot()

	var v [8]byte
	for k := uint64(0); k < 20; k++ { // "measurement"
		if err := e.Run(0, func(tx *Txn) error {
			return tx.UpdateField(tbl, k, 1, v[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	diff := e.ObsSnapshot().Sub(base)
	if diff.Commits != 20 {
		t.Fatalf("diffed commits = %d, want 20 (warmup leaked)", diff.Commits)
	}
	if diff.WAL.Commits != 20 {
		t.Fatalf("diffed WAL commits = %d, want 20", diff.WAL.Commits)
	}
	if diff.TotalPhaseNanos() == 0 {
		t.Fatal("measurement phase time missing from diff")
	}
	if diff.Mem.MediaReads > e.ObsSnapshot().Mem.MediaReads {
		t.Fatal("pmem diff exceeds absolute counters")
	}
}
