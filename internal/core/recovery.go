package core

import (
	"errors"
	"fmt"
	"time"

	"falcon/internal/alloc"
	"falcon/internal/cc"
	"falcon/internal/heap"
	"falcon/internal/index"
	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
	"falcon/internal/version"
	"falcon/internal/wal"
)

// RecoveryReport breaks down where recovery time went, in virtual
// nanoseconds (the simulated machine's time) and host wall time.
type RecoveryReport struct {
	// CatalogNanos covers reading the catalog and reopening heaps/arena.
	CatalogNanos uint64
	// IndexNanos covers index recovery: ~zero for NVM indexes (instant
	// structural recovery), a full heap scan for DRAM indexes and
	// out-of-place engines.
	IndexNanos uint64
	// ReplayNanos covers redo-log replay (in-place engines).
	ReplayNanos uint64
	// TotalNanos is the end-to-end virtual recovery time.
	TotalNanos uint64
	// Wall is host wall-clock time (diagnostic only).
	Wall time.Duration
	// RecordsReplayed counts committed log records applied.
	RecordsReplayed int
	// TuplesScanned counts heap slots visited (index rebuild / version
	// cleanup paths).
	TuplesScanned int
	// VersionsInvalidated counts uncommitted out-of-place versions rolled
	// back.
	VersionsInvalidated int
	// TornRecords counts committed-state log records whose structure was
	// inconsistent (lost lines); they are skipped as uncommitted.
	TornRecords int
	// CorruptRecords counts structurally valid log records rejected by CRC
	// verification.
	CorruptRecords int
	// StaleFreeDropped counts deleted-list entries recovery discarded because
	// they aliased a live (re-inserted) slot — recycling them would clobber a
	// committed tuple.
	StaleFreeDropped int
	// DroppedUnsealed counts group-commit records published into epochs the
	// durable epoch marker never covered: their transactions reached the
	// publish point but not the durable point, so the whole epoch is dropped
	// (per-epoch all-or-nothing). Always zero under persistent cache, where
	// the publish point is itself durable.
	DroppedUnsealed int
}

// Recover reopens an engine from the post-crash durable image of sys. The
// caller passes the same Config the engine was created with (volatile
// choices like the CC algorithm live there); the persistent geometry comes
// from the catalog and is cross-checked.
func Recover(sys *pmem.System, cfg Config) (*Engine, *RecoveryReport, error) {
	start := time.Now()
	cfg = cfg.withDefaults()
	clk := sim.NewClock()
	rep := &RecoveryReport{}

	// Recovery reports its virtual time through the same phase machinery as
	// the commit path; the set is registered under "recovery" by initObs so
	// `falcon-recovery -stats` shows the restart breakdown.
	ps := &obs.PhaseSet{}
	var pt obs.PhaseTimer
	pt.Start(ps, clk)
	pt.To(obs.PhaseRecCatalog)

	img, err := readCatalog(sys.Space, clk)
	if err != nil {
		return nil, nil, err
	}
	if img.threads != cfg.Threads {
		return nil, nil, fmt.Errorf("core: catalog has %d threads, config %d", img.threads, cfg.Threads)
	}
	if img.update != cfg.Update {
		return nil, nil, fmt.Errorf("core: catalog update scheme %v, config %v", img.update, cfg.Update)
	}

	e := &Engine{
		cfg:    cfg,
		sys:    sys,
		nvm:    sys.Space,
		byName: make(map[string]*Table, len(img.tables)),
		active: cc.NewActiveSet(cfg.Threads),
		resv:   newReservations(sys.Cost()),
	}
	e.arena, err = alloc.OpenArena(sys.Space, clk, 0)
	if err != nil {
		return nil, nil, err
	}
	e.initWorkers()
	e.windowBase = img.windowBase
	e.markerBase = img.markerBase
	e.epochBase = img.epochBase
	// An NVM index that crashed with a volatile cache cannot be trusted
	// blindly: entries whose delete never reached the media may still map
	// dead keys to recycled slots. Hash indexes cannot be enumerated to
	// purge such entries, so instead every post-recovery lookup validates
	// the hit against the tuple's key column (see Engine.validateHits).
	e.validateHits = cfg.Index == IndexNVM && sys.Config().Mode == pmem.ADR

	// Reopen heaps; shadow CC metadata comes back zeroed — the paper's
	// "clear the lock bits" step.
	for _, ct := range img.tables {
		t := &Table{
			e:            e,
			id:           uint8(len(e.tables)),
			name:         ct.name,
			schema:       ct.schema,
			keyCol:       ct.keyCol,
			secondaryCol: ct.secondaryCol,
			capacity:     ct.capacity,
			heapBase:     ct.heapBase,
			priBase:      ct.priBase,
			secBase:      ct.secBase,
			indexKind:    index.Kind(ct.indexKind),
		}
		t.heap, err = heap.Open(e.nvm, clk, ct.heapBase)
		if err != nil {
			return nil, nil, fmt.Errorf("core: table %q heap: %w", ct.name, err)
		}
		if cfg.CC.MultiVersion() {
			// Old versions lived in DRAM and are gone; fresh empty store
			// (§5.2.3: "each thread only needs to create a new empty version
			// queue during recovery").
			t.versions = version.NewStore(t.heap.NSlots(), cfg.Threads, sys.Cost())
		}
		if cfg.TupleCacheBytes > 0 {
			e.ensureTupleCache(ct.schema.TupleSize())
		}
		e.addTable(t)
	}
	rep.CatalogNanos = clk.Nanos()

	// Index recovery step 1: NVM indexes reattach structurally ("instant
	// recovery"); DRAM indexes must be recreated and are filled below.
	pt.To(obs.PhaseRecIndex)
	mark := clk.Nanos()
	for _, t := range e.tables {
		if cfg.Index == IndexNVM {
			t.primary, err = e.openIndexOn(e.nvm, clk, t.priBase, t.indexKind)
			if err != nil {
				return nil, nil, err
			}
			if t.secondaryCol > 0 {
				t.secondary, err = e.openIndexOn(e.nvm, clk, t.secBase, index.BTree)
				if err != nil {
					return nil, nil, err
				}
			}
		} else {
			idxCap := t.capacity * 11 / 10
			t.primary, t.priBase, err = e.buildIndex(clk, t.indexKind, idxCap)
			if err != nil {
				return nil, nil, err
			}
			if t.secondaryCol > 0 {
				t.secondary, t.secBase, err = e.buildIndex(clk, index.BTree, idxCap)
				if err != nil {
					return nil, nil, err
				}
			}
		}
	}

	var maxTID uint64
	if cfg.Update == InPlace {
		// DRAM index rebuild needs the post-replay heap image, but replay
		// needs indexes for its idempotent fixups. Order: replay first with
		// NVM-index fixups; for DRAM indexes skip fixups and rebuild after.
		rep.IndexNanos = clk.Nanos() - mark

		pt.To(obs.PhaseRecReplay)
		mark = clk.Nanos()
		// Published-record gate: under persistent cache the publish point is
		// physically durable, so every published record replays; under ADR
		// only epochs the durable marker covers were sealed — records beyond
		// it are at most partially durable and the whole epoch drops.
		epochCutoff := ^uint64(0)
		if sys.Config().Mode == pmem.ADR {
			epochCutoff = e.nvm.ReadU64(clk, e.epochBase)
		}
		maxTID, err = e.replayLogs(clk, rep, cfg.Index == IndexNVM, epochCutoff)
		if err != nil {
			return nil, nil, err
		}
		rep.ReplayNanos = clk.Nanos() - mark

		if cfg.Index == IndexDRAM {
			pt.To(obs.PhaseRecHeapScan)
			mark = clk.Nanos()
			e.rebuildDRAMIndexes(clk, rep)
			rep.IndexNanos += clk.Nanos() - mark
		}
	} else {
		// Out-of-place: resolve committedness against the per-thread
		// markers, invalidate uncommitted versions, resurrect uncommitted
		// deletes, and (re)build the index over the newest committed
		// version of every key — one full heap scan, proportional to heap
		// size (§6.5: ZenS's 9.4 s vs Falcon's milliseconds).
		pt.To(obs.PhaseRecHeapScan)
		m, err2 := e.recoverOutOfPlace(clk, rep)
		if err2 != nil {
			return nil, nil, err2
		}
		maxTID = m
		rep.IndexNanos = clk.Nanos() - mark
	}

	// Restore the TID clock past everything ever issued.
	pt.To(obs.PhaseRecCatalog) // epoch bookkeeping: TID clock, fresh windows
	winBytes := wal.BytesNeeded(e.cfg.Window)
	for t := 0; t < cfg.Threads; t++ {
		if w := wal.MaxTID(e.nvm, clk, e.windowBase+uint64(t)*winBytes, e.cfg.Window); w > maxTID {
			maxTID = w
		}
		if m := e.readMarker(clk, t); m > maxTID {
			maxTID = m
		}
	}
	e.gen.Restore(maxTID)

	// Fresh windows for the new epoch.
	e.windows = make([]*wal.Window, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		e.windows[t] = wal.OpenWindow(e.nvm, e.windowBase+uint64(t)*winBytes, e.cfg.Window)
		e.windows[t].Reset(clk)
	}
	// Virtual clocks restart at zero, so durability epochs restart at 1; a
	// stale marker from the previous incarnation would falsely validate them.
	e.nvm.WriteU64(clk, e.epochBase, 0)
	e.nvm.CLWB(clk, e.epochBase, 8)
	e.nvm.SFence(clk)
	e.initGroupCommit()

	pt.Finish()
	e.recPhases = ps
	rep.TotalNanos = clk.Nanos()
	rep.Wall = time.Since(start)
	return e, rep, nil
}

func (e *Engine) openIndexOn(space pmem.Space, clk *sim.Clock, off uint64, kind index.Kind) (index.Index, error) {
	if kind == index.Hash {
		return index.OpenHash(space, clk, off)
	}
	return index.OpenBTree(space, clk, off)
}

// replayLogs reads every thread's window, sorts committed records by TID and
// applies them with the tuple-timestamp guard that makes replay idempotent
// and clobber-free (§5.3). epochCutoff gates group-commit records: published
// records tagged with an epoch beyond it never had their epoch sealed, so
// their durability is not guaranteed and the whole epoch is dropped. Legacy
// commit records carry epoch 0 and always replay.
func (e *Engine) replayLogs(clk *sim.Clock, rep *RecoveryReport, fixIndexes bool, epochCutoff uint64) (uint64, error) {
	// Under eADR the crash flush preserved every in-cache index mutation, so
	// the reattached NVM index is exactly the pre-crash state and must not
	// be second-guessed. Under ADR index mutations may have been lost, so
	// replay additionally repairs entries from the log (see the OpInsert and
	// OpDelete arms); entries whose records rotated out of the window are
	// caught lazily by Engine.validateHits.
	adrIndexFix := fixIndexes && e.sys.Config().Mode == pmem.ADR
	winBytes := wal.BytesNeeded(e.cfg.Window)
	var recs []wal.Record
	for t := 0; t < e.cfg.Threads; t++ {
		r, sr := wal.ReadRecords(e.nvm, clk, e.windowBase+uint64(t)*winBytes, e.cfg.Window)
		rep.TornRecords += sr.Torn
		rep.CorruptRecords += sr.Corrupt
		recs = append(recs, r...)
	}
	wal.SortRecords(recs)

	var maxTID uint64
	for _, rec := range recs {
		if rec.TID > maxTID {
			maxTID = rec.TID
		}
		if rec.Epoch > epochCutoff {
			rep.DroppedUnsealed++
			continue
		}
		rep.RecordsReplayed++
		for _, op := range rec.Ops {
			if int(op.Table) >= len(e.tables) {
				return 0, errors.New("core: log references unknown table")
			}
			t := e.tables[op.Table]
			if op.Type == wal.OpInsert {
				// The allocation cursor is cached state and may have
				// reverted past this slot; repair it (regardless of the
				// timestamp guard below — any durable occupant means the
				// cursor must already be past the slot).
				t.heap.EnsureCursorPast(clk, op.Slot)
			}
			// Guard: a tuple whose durable timestamp is newer than this
			// record was overwritten by a later committed transaction whose
			// record may be gone; replaying would clobber it.
			cur := t.heap.ReadTS(clk, op.Slot)
			if rec.TID < cur {
				// The slot was overwritten by a later committed transaction
				// (e.g. the delete's slot was recycled by a newer insert).
				// The heap write must be skipped, but under ADR a stale
				// index entry left by the lost in-cache delete may still map
				// the dead key to the recycled slot — serving another row's
				// tuple. Remove it iff it still points at this slot and the
				// slot's durable occupant is not a live newer version of the
				// same key (the key may have been re-inserted right back
				// into its recycled slot).
				if op.Type == wal.OpDelete && adrIndexFix {
					if s, ok := t.primary.Get(clk, op.Key); ok && s == op.Slot {
						var b [8]byte
						t.heap.ReadRange(clk, op.Slot, t.schema.Offset(t.keyCol), b[:])
						dead := t.heap.ReadFlags(clk, op.Slot)&(heap.FlagDeleted|heap.FlagInvalidated) != 0
						if leU64(b[:]) != op.Key || dead {
							t.primary.Delete(clk, op.Key)
						}
					}
				}
				continue
			}
			switch op.Type {
			case wal.OpUpdate:
				t.heap.WriteRange(clk, op.Slot, op.Off, op.Data)
				t.heap.WriteTS(clk, op.Slot, rec.TID)
			case wal.OpInsert:
				// Same publish order as the runtime: occupied flag last.
				t.heap.WritePayload(clk, op.Slot, op.Data)
				t.heap.WriteTS(clk, op.Slot, rec.TID)
				t.heap.SetOccupied(clk, op.Slot)
				if adrIndexFix {
					// Repoint rather than skip: the key may still carry a
					// stale entry from a lost in-cache index update.
					key := t.schema.GetUint64(op.Data, t.keyCol)
					if !t.primary.Update(clk, key, op.Slot) {
						_ = t.primary.Insert(clk, key, op.Slot)
					}
					if t.secondary != nil {
						secKey := t.schema.GetUint64(op.Data, t.secondaryCol)
						if !t.secondary.Update(clk, secKey, op.Slot) {
							_ = t.secondary.Insert(clk, secKey, op.Slot)
						}
					}
				} else if fixIndexes {
					key := t.schema.GetUint64(op.Data, t.keyCol)
					_ = t.primary.Insert(clk, key, op.Slot) // idempotent: duplicates ignored
					if t.secondary != nil {
						_ = t.secondary.Insert(clk, t.schema.GetUint64(op.Data, t.secondaryCol), op.Slot)
					}
				}
			case wal.OpDelete:
				// Skip if this exact delete already applied (its linkage is
				// durable and not idempotent).
				if cur == rec.TID && t.heap.IsDeleted(clk, op.Slot) {
					continue
				}
				var secKey uint64
				if t.secondary != nil {
					var b [8]byte
					t.heap.ReadRange(clk, op.Slot, t.schema.Offset(t.secondaryCol), b[:])
					secKey = leU64(b[:])
				}
				t.heap.Retire(clk, op.Slot, rec.TID, 0, false)
				if fixIndexes {
					t.primary.Delete(clk, op.Key)
					if t.secondary != nil {
						t.secondary.Delete(clk, secKey)
					}
				}
			}
		}
	}
	// Replay can leave live slots on the deleted lists: the OpDelete arm may
	// relink a slot that a later record re-inserts (its timestamp guard reads
	// the durable tuple, which cannot reflect heap writes that were still in
	// the lost cache when the re-inserting record was published), and under
	// ADR the durable lists themselves may be stale. Now that every durable
	// flag is final, drop any entry that aliases a live tuple.
	for _, t := range e.tables {
		rep.StaleFreeDropped += t.heap.ScrubDeletedLists(clk)
	}
	// Flush replayed state so a crash during recovery restarts cleanly.
	e.nvm.SFence(clk)
	return maxTID, nil
}

// rebuildDRAMIndexes scans every heap and reinserts live tuples — the slow
// path the paper attributes to DRAM-index engines.
func (e *Engine) rebuildDRAMIndexes(clk *sim.Clock, rep *RecoveryReport) {
	for _, t := range e.tables {
		t := t
		t.heap.Scan(clk, func(slot, ts uint64, flags uint8, payload []byte) {
			rep.TuplesScanned++
			if flags&(heap.FlagDeleted|heap.FlagInvalidated) != 0 {
				return
			}
			key := t.schema.GetUint64(payload, t.keyCol)
			_ = t.primary.Insert(clk, key, slot)
			if t.secondary != nil {
				_ = t.secondary.Insert(clk, t.schema.GetUint64(payload, t.secondaryCol), slot)
			}
		})
	}
}

// recoverOutOfPlace performs the full heap scan of log-free engines:
// commitedness is decided against the writer thread's marker; uncommitted
// versions roll back; the newest committed version of each key wins the
// index entry.
func (e *Engine) recoverOutOfPlace(clk *sim.Clock, rep *RecoveryReport) (uint64, error) {
	markers := make([]uint64, e.cfg.Threads)
	var maxTID uint64
	for t := 0; t < e.cfg.Threads; t++ {
		markers[t] = e.readMarker(clk, t)
		if markers[t] > maxTID {
			maxTID = markers[t]
		}
	}
	type best struct {
		slot uint64
		ts   uint64
	}
	for _, t := range e.tables {
		t := t
		newest := make(map[uint64]best, t.capacity/2+1)
		var stale []uint64
		// The durable deleted lists are cached state and may be stale on the
		// media after an ADR crash (they could even reference live slots).
		// Discard them and rebuild from the scan's classification below.
		t.heap.ResetDeletedLists(clk)
		// Full-range scan, not cursor-bounded: the allocation cursors are
		// cached state and may have reverted in the crash, hiding committed
		// versions past them. maxOcc tracks the highest occupied slot per
		// owning thread (as slot+1) so the cursors can be repaired after.
		maxOcc := make([]uint64, t.heap.NThreads())
		t.heap.ScanAll(clk, func(slot, ts uint64, flags uint8, payload []byte) {
			rep.TuplesScanned++
			if o := t.heap.Owner(slot); slot+1 > maxOcc[o] {
				maxOcc[o] = slot + 1
			}
			if ts > maxTID {
				maxTID = ts
			}
			// The writer thread is embedded in the TID's low byte (the
			// paper's {timestamp<<8 | thread_id} scheme); deletes stamp the
			// slot with the *deleter's* TID, which may not be the slot
			// owner, so committedness must be judged against the writer's
			// marker. Bulk-loaded tuples carry ts 0 and are always
			// committed.
			writer := int(ts & 0xFF)
			if writer >= len(markers) {
				writer = t.heap.Owner(slot)
			}
			committed := ts <= markers[writer]
			// dropEntry removes the key's index entry if it points at this
			// slot: rolling back a version must also roll back an index
			// repoint that already landed (a crash between the index update
			// and the marker, preserved verbatim by an eADR crash flush).
			// An insert's rolled-back version has no older version for the
			// repoint loop below to restore, so a dangling entry would
			// otherwise serve an invalidated slot forever.
			dropEntry := func() {
				key := t.schema.GetUint64(payload, t.keyCol)
				if s, ok := t.primary.Get(clk, key); ok && s == slot {
					t.primary.Delete(clk, key)
				}
			}
			if !committed {
				switch {
				case flags&heap.FlagDeleted != 0:
					// Uncommitted delete: resurrect the (committed) version
					// underneath and treat it as live below.
					t.heap.ClearDeleted(clk, slot)
					rep.VersionsInvalidated++
				case flags&heap.FlagInvalidated != 0:
					// Already rolled back (e.g. by a prior recovery); relink
					// onto the rebuilt list so the slot is recycled.
					dropEntry()
					t.heap.Link(clk, slot, 0)
					return
				default:
					// Uncommitted new version: roll back.
					t.heap.Retire(clk, slot, ts, 0, true)
					rep.VersionsInvalidated++
					dropEntry()
					return
				}
			} else if flags&(heap.FlagDeleted|heap.FlagInvalidated) != 0 {
				// Committed dead version: the crash may have beaten the
				// in-cache index removal; drop a still-pointing entry, then
				// relink the slot onto the rebuilt list.
				dropEntry()
				t.heap.Link(clk, slot, 0)
				return
			}
			key := t.schema.GetUint64(payload, t.keyCol)
			if b, ok := newest[key]; ok {
				if ts > b.ts {
					stale = append(stale, b.slot)
					newest[key] = best{slot, ts}
				} else {
					stale = append(stale, slot)
				}
			} else {
				newest[key] = best{slot, ts}
			}
		})
		for _, m := range maxOcc {
			if m > 0 {
				t.heap.EnsureCursorPast(clk, m-1)
			}
		}
		// Versions superseded by a newer committed version whose
		// invalidation did not land before the crash.
		for _, slot := range stale {
			t.heap.Retire(clk, slot, t.heap.ReadTS(clk, slot), 0, true)
		}
		for key, b := range newest {
			// NVM indexes may hold stale entries; repoint rather than skip.
			if !t.primary.Update(clk, key, b.slot) {
				_ = t.primary.Insert(clk, key, b.slot)
			}
			if t.secondary != nil {
				scratch := e.scratchFor(0, t.schema.TupleSize())
				t.heap.ReadPayload(clk, b.slot, scratch)
				secKey := t.schema.GetUint64(scratch, t.secondaryCol)
				if !t.secondary.Update(clk, secKey, b.slot) {
					_ = t.secondary.Insert(clk, secKey, b.slot)
				}
			}
		}
	}
	return maxTID, nil
}
