package core

import (
	"sync/atomic"

	"falcon/internal/cc"
	"falcon/internal/obs"
	"falcon/internal/sim"
	"falcon/internal/wal"
)

// Deterministic worker-parallel mode (the sim.Group scheduler, see
// internal/sim/group.go for the round model).
//
// In normal (free-running) mode, multi-worker cells are only repeatable under
// a fixed host schedule: workers race on the shared simulated cache, the CC
// shadow words, the tuple cache, and the TID generator, so virtual results
// depend on goroutine interleaving. Group mode removes every such race by
// construction:
//
//   - TIDs derive from virtual time: tid = (base + clk.Nanos()) << 8 | worker,
//     with a per-worker monotonic bump. Canonical merge order (ascending tid)
//     is therefore (virtual time, worker id) order.
//   - During a round, every access a transaction makes against shared state is
//     a pure read of round-frozen state. CC lock/read-timestamp words are
//     copied on first touch into a private overlay (Txn.metaFor); all six CC
//     algorithms run unchanged against the overlay. Live words are never
//     mutated mid-round.
//   - The commit is split: the head (log-capacity check, OCC validation over
//     the overlay) runs worker-side; the tail — version publish, log commit,
//     heap apply, index updates, flushes, lock release — runs inside the round
//     barrier, serially, in canonical order (detReplay).
//   - The barrier revalidates each attempt against what earlier-ordered
//     winners of the same round committed, using virtual-time windows: a read
//     at virtual time v conflicts with an earlier winner's write to the same
//     slot committed at time c iff v > c (the read should have seen it); a
//     write intent taken at v conflicts iff v < lastC (concurrent writers,
//     no-wait) or the slot changed structurally (delete / out-of-place
//     supersede); an insert conflicts on a duplicate key; a scan conflicts
//     with any structural change to its table committed before the scan's
//     virtual time. Conflicts abort exactly as in free-running mode (the
//     abort is charged, the transaction retries next round), preserving the
//     abort-retry cost model.
//
// Group mode is a *different simulated machine* than free-running mode
// (partitioned timing caches, round-frozen conflict windows), so its virtual
// numbers differ from legacy runs; within group mode they are byte-identical
// for any GOMAXPROCS and any host schedule.

// detSlot identifies a heap slot across tables.
type detSlot struct {
	table uint8
	slot  uint64
}

// detKey identifies a primary key across tables.
type detKey struct {
	table uint8
	key   uint64
}

// detWin is the virtual-time window of commits an earlier-ordered winner
// applied to one slot during the current round.
type detWin struct {
	firstC, lastC uint64
	// structural marks deletes and out-of-place supersedes: the slot was
	// retired, so any later write intent on it must abort (its apply would
	// target a recycled slot).
	structural bool
}

// detState is the engine's group-mode state. It is created quiescently by
// EnterGroup; during rounds workers only read it (min, tc routing), and the
// round maps are touched exclusively inside the barrier.
type detState struct {
	group   *sim.Group
	workers int
	// min is the frozen reclaim horizon used by exec-time heap allocation in
	// place of ActiveSet.Min (whose value depends on the host schedule
	// mid-round). It is a lower bound on every TID active in the current
	// round, refreshed at each barrier from the round's smallest submitted
	// TID (per-worker TIDs are strictly monotone, so the next round's minimum
	// can only be larger).
	min uint64
	// base offsets virtual-time TID sequences so they stay monotone across
	// clock resets; lastSeq enforces per-worker strict monotonicity.
	base    uint64
	lastSeq []uint64
	// tc holds the per-worker tuple caches replacing the shared ZenS cache
	// (nil when the config has no tuple cache).
	tc []*tupleCache
	// Round-scoped replay state (barrier-only).
	wrote   map[detSlot]*detWin
	insKeys map[detKey]struct{}
	tmods   map[uint8]uint64 // table id -> earliest structural-change vtime
}

// ovEntry is a private copy of one slot's CC metadata (lock word + read
// timestamp), initialized from the round-frozen live words on first touch.
type ovEntry struct {
	lock   atomic.Uint64
	readTS atomic.Uint64
}

// detTxn is the per-transaction group-mode state.
type detTxn struct {
	ov      map[detSlot]*ovEntry
	scanVts map[uint8]uint64 // table id -> latest scan vtime (phantom check)
	// submitted marks that this transaction already occupied a round (its
	// attempt reached the barrier), so a retry must not submit a second
	// placeholder for the same round.
	submitted bool
	// tailErr carries a barrier-side commit-tail failure (e.g. table full)
	// back to the parked worker.
	tailErr error
}

// EnterGroup switches the engine into deterministic worker-parallel mode.
// The caller must be quiescent (no transactions in flight). The pmem system
// and any DRAM spaces switch to per-worker timing partitions; the shared
// tuple cache is cleared and replaced by per-worker caches.
func (e *Engine) EnterGroup() {
	if e.det != nil {
		return
	}
	n := e.cfg.Threads
	d := &detState{
		workers: n,
		lastSeq: make([]uint64, n),
		wrote:   make(map[detSlot]*detWin),
		insKeys: make(map[detKey]struct{}),
		tmods:   make(map[uint8]uint64),
	}
	d.base = e.gen.Seq() + 1
	d.min = d.base << 8
	d.group = sim.NewGroup(e.detReplay)
	e.sys.EnterGroup(n)
	if e.dram != nil {
		e.dram.EnterGroup(n, 2<<20, 16, e.sys.Cost())
	}
	if e.board != nil {
		// Worker-side epoch sealing would mutate the board outside the round
		// barrier; defer all seals to the commit tails (SealExpired), which
		// replay serially in canonical order.
		e.board.EnterGroup()
	}
	if e.tcache != nil {
		// Entries cached before (or put after) group mode would go stale
		// against group-mode commits, which bypass the shared cache.
		e.tcache.clear()
		d.tc = make([]*tupleCache, n)
		for w := range d.tc {
			d.tc[w] = newTupleCache(e.cfg.TupleCacheBytes/n, e.tcache.slotBytes, e.sys.Cost())
		}
	}
	e.det = d
}

// LeaveGroup returns the engine to free-running mode, fast-forwarding the
// shared TID generator past every virtual-time TID issued in group mode.
func (e *Engine) LeaveGroup() {
	d := e.det
	if d == nil {
		return
	}
	var maxSeq uint64
	for _, s := range d.lastSeq {
		if s > maxSeq {
			maxSeq = s
		}
	}
	e.gen.Restore(maxSeq<<8 | 0xFF)
	e.sys.LeaveGroup()
	if e.dram != nil {
		e.dram.LeaveGroup()
	}
	if e.board != nil {
		e.board.LeaveGroup()
	}
	e.det = nil
}

// InGroup reports whether deterministic worker-parallel mode is active.
func (e *Engine) InGroup() bool { return e.det != nil }

// Group returns the round scheduler while in group mode (nil otherwise).
// Benchmark drivers call Group().Begin(n) at phase start and Group().Leave()
// when a worker retires.
func (e *Engine) Group() *sim.Group {
	if e.det == nil {
		return nil
	}
	return e.det.group
}

// detTID issues worker's next virtual-time TID.
func (e *Engine) detTID(worker int, clk *sim.Clock) uint64 {
	d := e.det
	seq := d.base + clk.Nanos()
	if seq <= d.lastSeq[worker] {
		seq = d.lastSeq[worker] + 1
	}
	d.lastSeq[worker] = seq
	return seq<<8 | uint64(worker&0xFF)
}

// minActive is the reclaim horizon for heap allocation: the live ActiveSet
// minimum in free-running mode, the frozen round horizon in group mode.
func (e *Engine) minActive() uint64 {
	if d := e.det; d != nil {
		return d.min
	}
	return e.active.Min()
}

// metaFor returns the CC metadata words for a slot: the live heap words in
// free-running mode, the transaction-private overlay in group mode. Overlay
// entries copy the round-frozen live words on first touch; the overlay is
// discarded with the transaction, and the commit tail writes final words back
// to the live slots (releaseLocksCommitted).
func (tx *Txn) metaFor(t *Table, slot uint64) (lock, readTS *atomic.Uint64) {
	dt := tx.dt
	if dt == nil {
		return t.heap.Meta(slot)
	}
	k := detSlot{t.id, slot}
	ov := dt.ov[k]
	if ov == nil {
		ll, lr := t.heap.Meta(slot)
		ov = &ovEntry{}
		ov.lock.Store(ll.Load())
		ov.readTS.Store(lr.Load())
		dt.ov[k] = ov
	}
	return &ov.lock, &ov.readTS
}

// detRecordRead records a non-OCC read for barrier validation (OCC reads are
// already recorded, with their vtime, for its own validation).
func (tx *Txn) detRecordRead(t *Table, slot, key uint64) {
	if tx.dt == nil {
		return
	}
	tx.reads = append(tx.reads, readRef{t: t, slot: slot, key: key, vt: tx.clk.Nanos()})
}

// detRecordScan records a table scan's completion vtime (phantom check).
func (tx *Txn) detRecordScan(t *Table) {
	if tx.dt == nil {
		return
	}
	if tx.dt.scanVts == nil {
		tx.dt.scanVts = make(map[uint8]uint64, 2)
	}
	if v := tx.clk.Nanos(); v > tx.dt.scanVts[t.id] {
		tx.dt.scanVts[t.id] = v
	}
}

// reserveKey claims an insert key latch. Group mode skips the shared latch
// table (duplicate inserts within a round are caught at the barrier) but
// charges the same probe cost.
func (tx *Txn) reserveKey(t *Table, key uint64) bool {
	if tx.dt != nil {
		tx.clk.Advance(tx.e.sys.Cost().DRAMFirstLine)
		return true
	}
	return tx.e.resv.tryReserve(tx.clk, t.id, key)
}

// releaseKey frees an insert key latch (no-op cost-charge in group mode).
func (tx *Txn) releaseKey(t *Table, key uint64) {
	if tx.dt != nil {
		tx.clk.Advance(tx.e.sys.Cost().DRAMFirstLine)
		return
	}
	tx.e.resv.release(tx.clk, t.id, key)
}

// tupleCache resolves the tuple cache serving this transaction's reads: the
// worker-private cache in group mode, the shared one otherwise.
func (tx *Txn) tupleCache() *tupleCache {
	if d := tx.e.det; d != nil {
		if d.tc == nil {
			return nil
		}
		return d.tc[tx.worker]
	}
	return tx.e.tcache
}

// tcPut installs a committed payload in the tuple cache. In group mode the
// committing worker's cache takes the payload and every other worker's cache
// drops the key — their entries would otherwise serve the superseded tuple.
func (e *Engine) tcPut(clk *sim.Clock, worker int, table uint8, key uint64, payload []byte) {
	if d := e.det; d != nil {
		if d.tc == nil {
			return
		}
		for w, c := range d.tc {
			if w == worker {
				c.put(clk, table, key, payload)
			} else {
				c.invalidate(clk, table, key)
			}
		}
		return
	}
	if e.tcache != nil {
		e.tcache.put(clk, table, key, payload)
	}
}

// tcInvalidate drops a key from the tuple cache (all workers' caches in
// group mode).
func (e *Engine) tcInvalidate(clk *sim.Clock, table uint8, key uint64) {
	if d := e.det; d != nil {
		for _, c := range d.tc {
			c.invalidate(clk, table, key)
		}
		return
	}
	if e.tcache != nil {
		e.tcache.invalidate(clk, table, key)
	}
}

// commitDet is the group-mode Commit: run the worker-side head (private-safe
// checks and overlay validation locking), then submit the transaction as this
// round's attempt and park until the barrier has replayed it.
func (tx *Txn) commitDet() error {
	e := tx.e
	if !tx.ro && (len(tx.writes) > 0 || len(tx.inserts) > 0) {
		if e.cfg.Update == InPlace && tx.log.Full() {
			tx.setAbortCause(obs.AbortLogFull)
			return ErrTxnTooLarge
		}
		if e.cfg.CC.Base() == cc.OCC {
			prev := tx.pt.To(obs.PhaseCC)
			ok := tx.occValidate()
			tx.pt.To(prev)
			if !ok {
				tx.setAbortCause(obs.AbortValidation)
				return ErrConflict
			}
		}
	}
	att := &sim.Attempt{Order: tx.tid, Data: tx}
	tx.dt.submitted = true
	e.det.group.Submit(att)
	if att.OK {
		return nil
	}
	if err := tx.dt.tailErr; err != nil && err != ErrConflict {
		return err
	}
	return ErrConflict
}

// detReplay is the round barrier: it runs on the last-arriving worker with
// every other worker parked, applying attempts in canonical (virtual time,
// worker) order. See the package comment at the top of this file.
func (e *Engine) detReplay(atts []*sim.Attempt) {
	d := e.det
	e.contendObs.BarrierTick()
	for k := range d.wrote {
		delete(d.wrote, k)
	}
	for k := range d.insKeys {
		delete(d.insKeys, k)
	}
	for k := range d.tmods {
		delete(d.tmods, k)
	}
	minTid, maxTid := ^uint64(0), uint64(0)
	for _, a := range atts {
		if a.Order < minTid {
			minTid = a.Order
		}
		if a.Order > maxTid {
			maxTid = a.Order
		}
	}
	// Horizon TIDs drawn inside the tail (delete reclaim stamps) must exceed
	// every TID of the round; the replay is serial, so gen is deterministic.
	e.gen.Restore(maxTid)
	for _, a := range atts {
		if a.Data == nil {
			continue // exec-aborted placeholder: only waited out the round
		}
		tx := a.Data.(*Txn)
		// Read timestamps advance for every attempt, committed or not, as
		// they do at read time in free-running TO (max is commutative, so
		// merge order is irrelevant).
		tx.detMergeReadTS()
		if reason, ok := d.validate(tx); !ok {
			tx.setAbortCause(reason)
			tx.Abort()
			continue // a.OK stays false
		}
		if err := tx.commitTail(); err != nil {
			tx.dt.tailErr = err
			tx.classifyAbort(err)
			tx.Abort()
			continue
		}
		d.noteCommitted(tx)
		a.OK = true
	}
	if len(atts) > 0 {
		d.min = minTid
	}
}

// validate checks one attempt against what earlier-ordered winners of this
// round committed (virtual-time window rules; see the file comment).
func (d *detState) validate(tx *Txn) (obs.AbortReason, bool) {
	reason := obs.AbortLockConflict
	if tx.e.cfg.CC.Base() == cc.OCC {
		reason = obs.AbortValidation
	}
	if tx.dt.scanVts != nil {
		for tab, svt := range tx.dt.scanVts {
			if first, ok := d.tmods[tab]; ok && svt > first {
				tx.noteConflict(tx.e.tables[tab], 0, 0, 0, obs.ConflictDetBarrier)
				return reason, false
			}
		}
	}
	for i := range tx.reads {
		r := &tx.reads[i]
		if w, ok := d.wrote[detSlot{r.t.id, r.slot}]; ok && r.vt > w.firstC {
			tx.noteConflict(r.t, r.key, r.slot, 0, obs.ConflictDetBarrier)
			return reason, false
		}
	}
	for i := range tx.locks {
		l := &tx.locks[i]
		if l.shared {
			continue
		}
		if w, ok := d.wrote[detSlot{l.t.id, l.slot}]; ok && (w.structural || l.vt < w.lastC) {
			tx.noteConflict(l.t, l.key, l.slot, 0, obs.ConflictDetBarrier)
			return reason, false
		}
	}
	for i := range tx.inserts {
		ins := &tx.inserts[i]
		if _, dup := d.insKeys[detKey{ins.t.id, ins.key}]; dup {
			tx.noteConflict(ins.t, ins.key, ins.slot, 0, obs.ConflictDetBarrier)
			return reason, false
		}
	}
	return 0, true
}

// noteCommitted folds a winner's effects into the round's conflict windows.
func (d *detState) noteCommitted(tx *Txn) {
	cvt := tx.clk.Nanos()
	outp := tx.e.cfg.Update == OutOfPlace
	for i := range tx.writes {
		w := &tx.writes[i]
		k := detSlot{w.t.id, w.slot}
		win := d.wrote[k]
		if win == nil {
			win = &detWin{firstC: cvt, lastC: cvt}
			d.wrote[k] = win
		}
		if cvt < win.firstC {
			win.firstC = cvt
		}
		if cvt > win.lastC {
			win.lastC = cvt
		}
		if outp || w.kind == wal.OpDelete {
			win.structural = true
		}
		if w.kind == wal.OpDelete {
			if f, ok := d.tmods[w.t.id]; !ok || cvt < f {
				d.tmods[w.t.id] = cvt
			}
		}
	}
	for i := range tx.inserts {
		ins := &tx.inserts[i]
		d.insKeys[detKey{ins.t.id, ins.key}] = struct{}{}
		if f, ok := d.tmods[ins.t.id]; !ok || cvt < f {
			d.tmods[ins.t.id] = cvt
		}
	}
}

// detMergeReadTS applies the transaction's overlay read-timestamp advances to
// the live words (TO-family only: the other algorithms never read them).
func (tx *Txn) detMergeReadTS() {
	if tx.e.cfg.CC.Base() != cc.TO {
		return
	}
	for i := range tx.reads {
		r := &tx.reads[i]
		_, rts := r.t.heap.Meta(r.slot)
		cc.MaxTS(rts, tx.tid)
	}
}

// commitTail is the shared-state half of Commit, run inside the barrier.
func (tx *Txn) commitTail() error {
	if tx.ro || (len(tx.writes) == 0 && len(tx.inserts) == 0) {
		tx.pt.To(obs.PhaseCC)
		tx.releaseLocksKeep()
		tx.finish(true)
		return nil
	}
	if tx.e.cfg.Update == OutOfPlace {
		return tx.commitOutOfPlaceTail()
	}
	tx.commitInPlaceTail()
	return nil
}
