package core

import (
	"bytes"
	"errors"
	"testing"

	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/layout"
	"falcon/internal/pmem"
)

// bigSchema has a payload much larger than the default window slot.
func bigSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "k", Kind: layout.Uint64},
		layout.Column{Name: "blob", Kind: layout.Bytes, Size: 12 << 10},
	)
}

// TestLogWindowSpillDurable covers the Figure 12 regime: a transaction whose
// redo exceeds the window slot spills into the flushed overflow region and
// must still be crash-durable.
func TestLogWindowSpillDurable(t *testing.T) {
	cfg := FalconConfig()
	cfg.Threads = 2
	cfg.Window.SlotBytes = 2048
	cfg.Window.OverflowBytes = 64 << 10
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := New(sys, cfg, []TableSpec{{
		Name: "big", Schema: bigSchema(), Capacity: 64, KeyCol: 0, IndexKind: index.Hash,
	}})
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Table("big")
	s := tbl.Schema()
	payload := make([]byte, s.TupleSize())
	s.PutUint64(payload, 0, 1)
	blob := bytes.Repeat([]byte{0x5A}, 12<<10)
	s.PutBytes(payload, 1, blob)

	if err := e.Run(0, func(tx *Txn) error {
		return tx.Insert(tbl, 1, payload) // ~12 KiB redo > 2 KiB slot
	}); err != nil {
		t.Fatal(err)
	}

	e2, rep, err := Recover(e.System().Crash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsReplayed == 0 {
		t.Fatal("spilled record not replayed")
	}
	buf := make([]byte, s.TupleSize())
	if err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(e2.Table("big"), 1, buf) }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.GetBytes(buf, 1), blob) {
		t.Fatal("spilled insert corrupted across crash")
	}
}

// TestTxnTooLargeSurfaced: exceeding even the overflow region must fail the
// transaction cleanly (ErrTxnTooLarge), leaving the engine usable.
func TestTxnTooLargeSurfaced(t *testing.T) {
	cfg := FalconConfig()
	cfg.Threads = 1
	cfg.Window.SlotBytes = 1024
	cfg.Window.OverflowBytes = 2048
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := New(sys, cfg, []TableSpec{{
		Name: "big", Schema: bigSchema(), Capacity: 64, KeyCol: 0, IndexKind: index.Hash,
	}})
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Table("big")
	payload := make([]byte, tbl.Schema().TupleSize())
	err = e.Run(0, func(tx *Txn) error { return tx.Insert(tbl, 1, payload) })
	if !errors.Is(err, ErrTxnTooLarge) {
		t.Fatalf("err = %v, want ErrTxnTooLarge", err)
	}
	// Engine still serves small transactions.
	small := kvSchema()
	_ = small
	if err := e.Run(0, func(tx *Txn) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestVersionGCRespectsSnapshots: an open snapshot pins old versions; once
// it commits, worker-driven GC reclaims them (§5.4).
func TestVersionGCRespectsSnapshots(t *testing.T) {
	cfg := FalconConfig()
	cfg.CC = cc.MVOCC
	cfg.Threads = 2
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 128 << 20})
	e, err := New(sys, cfg, kvSpec(index.Hash, 1000))
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Table("kv")
	s := tbl.Schema()
	if err := e.Run(0, func(tx *Txn) error {
		return tx.Insert(tbl, 1, encodeKV(s, 1, 0))
	}); err != nil {
		t.Fatal(err)
	}

	ro := e.BeginRO(1) // pins the horizon
	buf := make([]byte, s.TupleSize())
	if err := ro.Read(tbl, 1, buf); err != nil {
		t.Fatal(err)
	}
	base := s.GetInt64(buf, 1)

	for i := 0; i < 200; i++ {
		if err := e.Run(0, func(tx *Txn) error {
			var b [8]byte
			layoutPutI64(b[:], int64(i+1))
			return tx.UpdateField(tbl, 1, 1, b[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The pinned snapshot still reads its original value.
	if err := ro.Read(tbl, 1, buf); err != nil {
		t.Fatal(err)
	}
	if got := s.GetInt64(buf, 1); got != base {
		t.Fatalf("snapshot drifted: %d != %d", got, base)
	}
	slot, _ := tbl.primary.Get(e.Clock(0), 1)
	pinned := tbl.versions.ChainLen(slot)
	if pinned == 0 {
		t.Fatal("no versions retained for the open snapshot")
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	// More updates trigger worker GC with the horizon released.
	for i := 0; i < 100; i++ {
		if err := e.Run(0, func(tx *Txn) error {
			var b [8]byte
			layoutPutI64(b[:], int64(i))
			return tx.UpdateField(tbl, 1, 1, b[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	if after := tbl.versions.ChainLen(slot); after >= pinned {
		t.Fatalf("GC did not shrink the chain after snapshot release: %d -> %d", pinned, after)
	}
}
