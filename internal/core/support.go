package core

import (
	"sync"

	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// hotSet is the per-thread hot-tuple LRU used by selective data flush
// (§4.4): tuples present in the set are never manually flushed, so their
// dirty lines stay in the (persistent) cache until natural eviction —
// which for genuinely hot tuples means almost never.
//
// It is single-owner (one worker thread), so it needs no locking. Recency
// is an intrusive doubly-linked list over a fixed node array: once the set
// reaches capacity every add evicts, and the earlier find-min-sequence map
// scan made that O(cap) map iteration per tracked tuple — a measurable
// slice of TPC-C host time. The list evicts the same victim the scan chose
// (sequence order is recency order), so simulated behaviour is unchanged;
// the virtual cost charged is still one DRAM access per operation.
type hotSet struct {
	cap   int
	m     map[hotKey]int // key -> node index
	nodes []hotNode
	head  int // most recently used (-1 = empty)
	tail  int // least recently used (-1 = empty)
	free  int // free-list head through next links (-1 = full)
	cost  sim.CostModel
	// stats counts hits (flushes elided), misses (tuples newly tracked) and
	// evictions; single-owner like the set itself.
	stats obs.HotSetStats
}

type hotNode struct {
	key        hotKey
	prev, next int
}

type hotKey struct {
	table uint8
	slot  uint64
}

func newHotSet(capacity int, cost sim.CostModel) *hotSet {
	if capacity < 1 {
		capacity = 1
	}
	h := &hotSet{
		cap:   capacity,
		m:     make(map[hotKey]int, capacity+1),
		nodes: make([]hotNode, capacity),
		head:  -1,
		tail:  -1,
		cost:  cost,
	}
	for i := range h.nodes {
		h.nodes[i].next = i + 1
	}
	h.nodes[capacity-1].next = -1
	h.free = 0
	return h
}

// touchFront moves node i to the MRU end of the list.
func (h *hotSet) touchFront(i int) {
	if h.head == i {
		return
	}
	n := &h.nodes[i]
	if n.prev != -1 {
		h.nodes[n.prev].next = n.next
	}
	if n.next != -1 {
		h.nodes[n.next].prev = n.prev
	} else if h.tail == i {
		h.tail = n.prev
	}
	n.prev = -1
	n.next = h.head
	if h.head != -1 {
		h.nodes[h.head].prev = i
	}
	h.head = i
	if h.tail == -1 {
		h.tail = i
	}
}

// contains reports whether the tuple is tracked hot, refreshing its
// recency when present (Algorithm 1 line 9).
func (h *hotSet) contains(clk *sim.Clock, table uint8, slot uint64) bool {
	clk.Advance(h.cost.DRAMFirstLine)
	k := hotKey{table, slot}
	if i, ok := h.m[k]; ok {
		h.touchFront(i)
		h.stats.Hits++
		return true
	}
	h.stats.Misses++
	return false
}

// add tracks the tuple, evicting the least recently used entry when full
// (Algorithm 1 line 11).
func (h *hotSet) add(clk *sim.Clock, table uint8, slot uint64) {
	clk.Advance(h.cost.DRAMFirstLine)
	k := hotKey{table, slot}
	if i, ok := h.m[k]; ok {
		h.touchFront(i)
		return
	}
	i := h.free
	if i != -1 {
		h.free = h.nodes[i].next
	} else {
		// Full: reuse the LRU node. The new entry is by definition the most
		// recent, so it can never be its own victim.
		i = h.tail
		n := &h.nodes[i]
		delete(h.m, n.key)
		h.tail = n.prev
		if h.tail != -1 {
			h.nodes[h.tail].next = -1
		} else {
			h.head = -1
		}
		h.stats.Evictions++
	}
	n := &h.nodes[i]
	n.key = k
	n.prev = -1
	n.next = h.head
	if h.head != -1 {
		h.nodes[h.head].prev = i
	}
	h.head = i
	if h.tail == -1 {
		h.tail = i
	}
	h.m[k] = i
}

// reservations provides short-lived key latches for inserts: a transaction
// reserves (table, key) before buffering the insert, guaranteeing that the
// index insert performed after the durable commit point can never hit a
// duplicate. Reservations are volatile by design — after a crash no
// transaction is mid-insert.
type reservations struct {
	shards [64]resShard
	cost   sim.CostModel
}

type resShard struct {
	mu sync.Mutex
	m  map[resKey]struct{}
}

type resKey struct {
	table uint8
	key   uint64
}

func newReservations(cost sim.CostModel) *reservations {
	r := &reservations{cost: cost}
	for i := range r.shards {
		r.shards[i].m = make(map[resKey]struct{})
	}
	return r
}

func (r *reservations) shard(k resKey) *resShard {
	return &r.shards[(k.key^uint64(k.table))&63]
}

// tryReserve claims (table, key), failing if another in-flight transaction
// holds it.
func (r *reservations) tryReserve(clk *sim.Clock, table uint8, key uint64) bool {
	clk.Advance(r.cost.DRAMFirstLine)
	k := resKey{table, key}
	s := r.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.m[k]; taken {
		return false
	}
	s.m[k] = struct{}{}
	return true
}

// release frees a reservation.
func (r *reservations) release(clk *sim.Clock, table uint8, key uint64) {
	clk.Advance(r.cost.DRAMFirstLine)
	k := resKey{table, key}
	s := r.shard(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// tupleCache is the ZenS-style DRAM tuple cache: recently read tuples are
// kept in volatile memory so repeated reads skip NVM. Entries are keyed by
// (table, primary key), so they stay valid across out-of-place relocations;
// committed updates refresh the entry.
//
// Payloads live in a DRAMSpace so hits charge realistic DRAM/cache costs.
// Eviction is per-shard CLOCK.
type tupleCache struct {
	space     *pmem.DRAMSpace
	slotBytes int
	perShard  int
	shards    [64]tcShard
	cost      sim.CostModel
}

type tcShard struct {
	mu   sync.Mutex
	m    map[uint64]int // packed key -> entry index within shard
	keys []uint64       // entry -> packed key (0 = free)
	ref  []bool
	hand int
}

func newTupleCache(totalBytes, slotBytes int, cost sim.CostModel) *tupleCache {
	if slotBytes < 64 {
		slotBytes = 64
	}
	entries := totalBytes / slotBytes
	perShard := entries / len((&tupleCache{}).shards)
	if perShard < 4 {
		perShard = 4
	}
	c := &tupleCache{
		space:     pmem.NewDRAMSpace(uint64(64*perShard*slotBytes), cost),
		slotBytes: slotBytes,
		perShard:  perShard,
		cost:      cost,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]int, perShard)
		c.shards[i].keys = make([]uint64, perShard)
		c.shards[i].ref = make([]bool, perShard)
	}
	return c
}

func pack(table uint8, key uint64) uint64 {
	// Tables are few and keys rarely use the top byte; mix the table id in.
	return key ^ (uint64(table) << 56) ^ (uint64(table) * 0x9E3779B97F4A7C15)
}

func (c *tupleCache) offset(shard, entry int) uint64 {
	return uint64((shard*c.perShard + entry) * c.slotBytes)
}

// get copies a cached payload into dst, reporting a hit.
func (c *tupleCache) get(clk *sim.Clock, table uint8, key uint64, dst []byte) bool {
	pk := pack(table, key)
	sh := &c.shards[pk&63]
	clk.Advance(c.cost.DRAMFirstLine)
	sh.mu.Lock()
	i, ok := sh.m[pk]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	sh.ref[i] = true
	off := c.offset(int(pk&63), i)
	c.space.Read(clk, off, dst)
	sh.mu.Unlock()
	return true
}

// put installs or refreshes a cached payload.
func (c *tupleCache) put(clk *sim.Clock, table uint8, key uint64, payload []byte) {
	if len(payload) > c.slotBytes {
		return
	}
	pk := pack(table, key)
	sh := &c.shards[pk&63]
	clk.Advance(c.cost.DRAMFirstLine)
	sh.mu.Lock()
	i, ok := sh.m[pk]
	if !ok {
		i = sh.evictLocked()
		if old := sh.keys[i]; old != 0 {
			delete(sh.m, old)
		}
		sh.m[pk] = i
		sh.keys[i] = pk
	}
	sh.ref[i] = true
	c.space.Write(clk, c.offset(int(pk&63), i), payload)
	sh.mu.Unlock()
}

// invalidate drops a cached entry (delete path).
func (c *tupleCache) invalidate(clk *sim.Clock, table uint8, key uint64) {
	pk := pack(table, key)
	sh := &c.shards[pk&63]
	clk.Advance(c.cost.DRAMFirstLine)
	sh.mu.Lock()
	if i, ok := sh.m[pk]; ok {
		delete(sh.m, pk)
		sh.keys[i] = 0
		sh.ref[i] = false
	}
	sh.mu.Unlock()
}

// clear drops every cached entry (group-mode entry: the shared cache goes
// dormant while per-worker caches serve reads, and its contents would be
// stale on return). Payload bytes in the DRAM space need no scrubbing — an
// entry is live only while referenced from a shard map.
func (c *tupleCache) clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			delete(sh.m, k)
		}
		for j := range sh.keys {
			sh.keys[j] = 0
			sh.ref[j] = false
		}
		sh.hand = 0
		sh.mu.Unlock()
	}
}

// evictLocked runs CLOCK over the shard and returns a free entry index.
func (s *tcShard) evictLocked() int {
	for {
		i := s.hand
		s.hand = (s.hand + 1) % len(s.keys)
		if s.keys[i] == 0 {
			return i
		}
		if s.ref[i] {
			s.ref[i] = false
			continue
		}
		return i
	}
}
