package core

import (
	"bytes"
	"sync"
	"testing"

	"falcon/internal/sim"
)

func TestHotSetLRUEviction(t *testing.T) {
	h := newHotSet(3, sim.DefaultCostModel())
	clk := sim.NewClock()
	h.add(clk, 0, 1)
	h.add(clk, 0, 2)
	h.add(clk, 0, 3)
	if !h.contains(clk, 0, 1) {
		t.Fatal("entry 1 missing")
	}
	// Insert a 4th: LRU (2) must be evicted — 1 was refreshed by contains.
	h.add(clk, 0, 4)
	if h.contains(clk, 0, 2) {
		t.Fatal("LRU entry 2 survived past capacity")
	}
	if !h.contains(clk, 0, 1) || !h.contains(clk, 0, 3) || !h.contains(clk, 0, 4) {
		t.Fatal("wrong eviction victim")
	}
}

func TestHotSetDistinguishesTables(t *testing.T) {
	h := newHotSet(8, sim.DefaultCostModel())
	clk := sim.NewClock()
	h.add(clk, 1, 7)
	if h.contains(clk, 2, 7) {
		t.Fatal("slot 7 of table 2 confused with table 1")
	}
}

func TestHotSetChargesVirtualTime(t *testing.T) {
	h := newHotSet(4, sim.DefaultCostModel())
	clk := sim.NewClock()
	h.add(clk, 0, 1)
	h.contains(clk, 0, 1)
	if clk.Nanos() == 0 {
		t.Fatal("hot-set operations must charge DRAM costs")
	}
}

func TestReservationsExclusive(t *testing.T) {
	r := newReservations(sim.DefaultCostModel())
	clk := sim.NewClock()
	if !r.tryReserve(clk, 1, 100) {
		t.Fatal("first reserve failed")
	}
	if r.tryReserve(clk, 1, 100) {
		t.Fatal("double reserve succeeded")
	}
	if !r.tryReserve(clk, 2, 100) {
		t.Fatal("same key on another table blocked")
	}
	r.release(clk, 1, 100)
	if !r.tryReserve(clk, 1, 100) {
		t.Fatal("reserve after release failed")
	}
}

func TestReservationsConcurrent(t *testing.T) {
	r := newReservations(sim.DefaultCostModel())
	const workers = 8
	winners := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := sim.NewClock()
			for k := uint64(0); k < 1000; k++ {
				if r.tryReserve(clk, 0, k) {
					winners[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range winners {
		total += n
	}
	if total != 1000 {
		t.Fatalf("each key must have exactly one winner; got %d total", total)
	}
}

func TestTupleCachePutGetInvalidate(t *testing.T) {
	tc := newTupleCache(1<<20, 128, sim.DefaultCostModel())
	clk := sim.NewClock()
	payload := bytes.Repeat([]byte{0xAB}, 128)
	buf := make([]byte, 128)

	if tc.get(clk, 1, 42, buf) {
		t.Fatal("hit on empty cache")
	}
	tc.put(clk, 1, 42, payload)
	if !tc.get(clk, 1, 42, buf) || !bytes.Equal(buf, payload) {
		t.Fatal("miss or corruption after put")
	}
	// Refresh with new content.
	payload2 := bytes.Repeat([]byte{0xCD}, 128)
	tc.put(clk, 1, 42, payload2)
	tc.get(clk, 1, 42, buf)
	if !bytes.Equal(buf, payload2) {
		t.Fatal("refresh did not replace content")
	}
	tc.invalidate(clk, 1, 42)
	if tc.get(clk, 1, 42, buf) {
		t.Fatal("hit after invalidate")
	}
}

func TestTupleCacheEvictsUnderPressure(t *testing.T) {
	// Tiny cache: 64 shards × 4 entries × 64 B.
	tc := newTupleCache(16<<10, 64, sim.DefaultCostModel())
	clk := sim.NewClock()
	payload := make([]byte, 64)
	for k := uint64(0); k < 10_000; k++ {
		tc.put(clk, 0, k, payload)
	}
	buf := make([]byte, 64)
	hits := 0
	for k := uint64(0); k < 10_000; k++ {
		if tc.get(clk, 0, k, buf) {
			hits++
		}
	}
	if hits == 0 || hits > 2000 {
		t.Fatalf("hits = %d; CLOCK eviction not bounding the cache", hits)
	}
}

func TestTupleCacheRejectsOversizedPayload(t *testing.T) {
	tc := newTupleCache(1<<20, 64, sim.DefaultCostModel())
	clk := sim.NewClock()
	tc.put(clk, 0, 1, make([]byte, 65)) // silently ignored
	if tc.get(clk, 0, 1, make([]byte, 64)) {
		t.Fatal("oversized payload was cached")
	}
}
