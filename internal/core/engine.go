package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"falcon/internal/alloc"
	"falcon/internal/cc"
	"falcon/internal/heap"
	"falcon/internal/index"
	"falcon/internal/layout"
	"falcon/internal/obs"
	"falcon/internal/obs/contend"
	"falcon/internal/pmem"
	"falcon/internal/sim"
	"falcon/internal/version"
	"falcon/internal/wal"
)

// catalogBase/catalogBytes fix the persistent catalog region right after the
// arena header; the catalog is the recovery entry point (§5.1).
const (
	catalogBase  = alloc.HeaderBytes
	catalogBytes = 256 << 10
	arenaStart   = catalogBase + catalogBytes
)

// Engine is one OLTP storage engine instance over a simulated memory system.
// The Config decides which of the paper's engines it behaves as.
type Engine struct {
	cfg   Config
	sys   *pmem.System
	nvm   pmem.Space
	arena *alloc.Arena

	dram     *pmem.DRAMSpace
	dramNext uint64 // bump allocator over dram

	tables []*Table
	byName map[string]*Table

	windowBase uint64
	markerBase uint64
	// epochBase is the 64 B line holding the durable group-commit epoch
	// marker; board coordinates durability epochs when GroupCommit is on
	// (nil otherwise — call sites pay one pointer test).
	epochBase uint64
	board     *wal.EpochBoard
	windows   []*wal.Window

	gen    cc.TIDGen
	active *cc.ActiveSet
	hot    []*hotSet
	tcache *tupleCache
	resv   *reservations

	// det is non-nil while the engine runs in deterministic group mode
	// (EnterGroup/LeaveGroup, det.go): workers execute in parallel against
	// round-frozen shared state and merge at virtual-time barriers.
	det *detState

	clocks  []*sim.Clock
	scratch []workerScratch

	commits atomic.Uint64
	aborts  atomic.Uint64

	// phases holds the per-worker commit-path phase accumulators (same
	// single-owner contract as clocks); abortReasons is the cross-worker
	// abort taxonomy; reg is the unified stats registry over all of it.
	phases       []obs.PhaseSet
	abortReasons obs.AbortCounts
	reg          *obs.Registry
	// tstats holds per-worker × per-table activity counters (single-owner
	// rows, summed by the "tables" collector at snapshot time).
	tstats [][]paddedTableStats
	// tracer/tracerW arm transaction-level trace capture (SetTracer). Both
	// are nil in the common unarmed case, so the commit path pays only
	// nil pointer tests.
	tracer  *obs.Tracer
	tracerW []*obs.WorkerTracer
	// contendObs/contendW arm the contention & flush-amplification
	// observatory (SetContend). Both are nil in the common unarmed case, so
	// the instrumented sites pay only nil pointer tests.
	contendObs *contend.Observatory
	contendW   []*contend.Worker
	// recPhases holds the recovery-path phase accounting when this engine
	// was produced by Recover (nil for freshly created engines).
	recPhases *obs.PhaseSet
	// validateHits makes index lookups verify the tuple's key column and
	// treat mismatches as misses. Recover enables it for NVM-index engines
	// restarted under ADR: index mutations travel through the volatile
	// cache, so the media can retain an entry whose delete was lost and
	// whose slot has since been recycled by another row — following it
	// blindly would serve that row's tuple under the wrong key.
	validateHits bool
}

// workerScratch is a per-worker reusable payload buffer, padded against
// false sharing.
type workerScratch struct {
	buf []byte
	_   [5]uint64
}

// Table is one relation: a tuple heap plus its indexes and (for MVCC) the
// DRAM version store.
type Table struct {
	e            *Engine
	id           uint8
	name         string
	schema       *layout.Schema
	keyCol       int
	secondaryCol int
	capacity     uint64

	heap      *heap.Heap
	primary   index.Index
	secondary index.Index
	versions  *version.Store

	heapBase, priBase, secBase uint64
	indexKind                  index.Kind
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the tuple layout.
func (t *Table) Schema() *layout.Schema { return t.schema }

// Heap exposes the underlying tuple heap (diagnostics and tests).
func (t *Table) Heap() *heap.Heap { return t.heap }

// ErrTableFull is returned when a table cannot hold more tuples.
var ErrTableFull = errors.New("core: table full")

// New creates an engine with the given tables on a fresh memory system.
func New(sys *pmem.System, cfg Config, specs []TableSpec) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:    cfg,
		sys:    sys,
		nvm:    sys.Space,
		byName: make(map[string]*Table, len(specs)),
		active: cc.NewActiveSet(cfg.Threads),
		resv:   newReservations(sys.Cost()),
	}
	var err error
	e.arena, err = NewEngineArena(sys)
	if err != nil {
		return nil, err
	}
	e.initWorkers()

	clk := sim.NewClock() // setup costs are not attributed to workers
	// Per-thread log windows (in-place engines) and commit markers
	// (out-of-place engines) are allocated for every engine so the layout is
	// uniform.
	winBytes := wal.BytesNeeded(cfg.Window)
	e.windowBase, err = e.arena.Alloc(clk, winBytes*uint64(cfg.Threads), 64)
	if err != nil {
		return nil, err
	}
	e.markerBase, err = e.arena.Alloc(clk, 64*uint64(cfg.Threads), 64)
	if err != nil {
		return nil, err
	}
	e.epochBase, err = e.arena.Alloc(clk, 64, 64)
	if err != nil {
		return nil, err
	}
	var zero [8]byte
	e.nvm.BulkWrite(e.epochBase, zero[:])
	e.windows = make([]*wal.Window, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		e.windows[t] = wal.NewWindow(e.nvm, e.windowBase+uint64(t)*winBytes, cfg.Window)
		e.nvm.BulkWrite(e.markerBase+64*uint64(t), zero[:])
	}
	e.initGroupCommit()

	for _, spec := range specs {
		if _, err := e.createTable(clk, spec); err != nil {
			return nil, fmt.Errorf("core: table %q: %w", spec.Name, err)
		}
	}
	if err := e.writeCatalog(clk); err != nil {
		return nil, err
	}
	return e, nil
}

// initGroupCommit attaches the group-commit epoch board to every window
// (no-op unless the configuration enables group commit). Shared by the
// create and recovery paths; the durable marker at epochBase must already be
// zeroed.
func (e *Engine) initGroupCommit() {
	if !e.cfg.GroupCommit {
		return
	}
	e.board = wal.NewEpochBoard(e.nvm, e.epochBase, e.cfg.GroupEpochNanos)
	for _, w := range e.windows {
		w.SetBoard(e.board)
	}
}

// Board returns the group-commit epoch board, or nil when group commit is
// off (diagnostics and tests).
func (e *Engine) Board() *wal.EpochBoard { return e.board }

// NewEngineArena formats the engine's space arena (header + catalog region
// reserved).
func NewEngineArena(sys *pmem.System) (*alloc.Arena, error) {
	return alloc.NewArena(sys.Space, 0, arenaStart, sys.Space.Size())
}

func (e *Engine) initWorkers() {
	e.clocks = make([]*sim.Clock, e.cfg.Threads)
	e.hot = make([]*hotSet, e.cfg.Threads)
	e.scratch = make([]workerScratch, e.cfg.Threads)
	e.phases = make([]obs.PhaseSet, e.cfg.Threads)
	e.tstats = make([][]paddedTableStats, e.cfg.Threads)
	for i := range e.clocks {
		// Worker clocks carry the worker id as a shard hint so the pmem
		// layer can route each worker's event counters to its own shard.
		e.clocks[i] = sim.NewWorkerClock(i)
		e.hot[i] = newHotSet(e.cfg.HotTupleCap, e.sys.Cost())
	}
	e.initObs()
}

// initObs wires the unified stats registry. Collectors read the engine's
// live structures at snapshot time, so registration order and later window
// creation don't matter. Single-owner sources (phase sets, windows, hot
// sets) are coherent only while workers are quiescent — see obs.Registry.
func (e *Engine) initObs() {
	e.reg = obs.NewRegistry()
	e.reg.Register("engine", func(s *obs.Snapshot) {
		s.Commits += e.commits.Load()
		s.Aborts += e.aborts.Load()
		for i := range e.phases {
			e.phases[i].AddTo(&s.PhaseNanos)
		}
		reasons := e.abortReasons.Snapshot()
		for i, n := range reasons {
			s.AbortCounts[i] += n
		}
	})
	e.reg.Register("wal", func(s *obs.Snapshot) {
		for _, w := range e.windows {
			s.WAL.Add(w.Stats())
		}
	})
	e.reg.Register("group-commit", func(s *obs.Snapshot) {
		if e.board != nil {
			s.Epochs.Add(e.board.Stats())
		}
	})
	e.reg.Register("hot-set", func(s *obs.Snapshot) {
		for _, h := range e.hot {
			s.Hot.Add(h.stats)
		}
	})
	e.reg.Register("pmem", func(s *obs.Snapshot) {
		s.Mem = e.sys.Dev.Stats().Snapshot()
	})
	e.reg.Register("recovery", func(s *obs.Snapshot) {
		if e.recPhases != nil {
			e.recPhases.AddTo(&s.PhaseNanos)
		}
	})
	e.reg.Register("contend", func(s *obs.Snapshot) {
		if e.contendObs != nil {
			s.Contend = e.contendObs.Report()
		}
	})
	e.reg.Register("tables", func(s *obs.Snapshot) {
		if len(e.tables) == 0 {
			return
		}
		if s.Tables == nil {
			s.Tables = make(map[string]obs.TableStats, len(e.tables))
		}
		for _, t := range e.tables {
			agg := s.Tables[t.name]
			for w := range e.tstats {
				agg.Add(e.tstats[w][t.id].TableStats)
			}
			s.Tables[t.name] = agg
		}
	})
}

// paddedTableStats keeps one worker's counters for one table on a cache
// line of its own. TableStats is 32 B, so unpadded rows from different
// workers share lines and the per-op increments turn into cross-core
// traffic (measured ~40% on the host YCSB cell when this shipped unpadded).
type paddedTableStats struct {
	obs.TableStats
	_ [4]uint64
}

// addTable registers a fully built table with the engine, growing every
// worker's per-table counter row (both the create and the recovery path
// construct tables through here).
func (e *Engine) addTable(t *Table) {
	e.tables = append(e.tables, t)
	e.byName[t.name] = t
	for w := range e.tstats {
		e.tstats[w] = append(e.tstats[w], paddedTableStats{})
	}
}

// SetTracer arms transaction-level trace capture on the engine: worker w's
// trace events route to tr.Worker(w), the WAL windows report slot claims,
// and the pmem system reports XPBuffer evictions. Pass nil to disarm. Must
// be called while no transactions are in flight (between benchmark phases) —
// the same quiescence contract as ResetCounters.
func (e *Engine) SetTracer(tr *obs.Tracer) {
	e.tracer = tr
	if tr == nil {
		e.tracerW = nil
		for _, w := range e.windows {
			w.SetTrace(nil)
		}
		for _, cw := range e.contendW {
			cw.SetTracer(nil)
		}
		e.sys.SetTrace(nil)
		return
	}
	e.tracerW = make([]*obs.WorkerTracer, e.cfg.Threads)
	for i := range e.tracerW {
		e.tracerW[i] = tr.Worker(i)
	}
	for i, w := range e.windows {
		w.SetTrace(tr.Worker(i))
		// The observatory's exemplar capture rides on the worker tracers.
		if e.contendW != nil {
			e.contendW[i].SetTracer(e.tracerW[i])
		}
	}
	e.sys.SetTrace(tr.PmemTrace)
}

// Tracer returns the armed tracer, or nil.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// LogWindowRange returns the NVM address range [base, base+size) holding all
// threads' log windows — the region fault plans target for corruption
// injection (the durability chain's checksummed section).
func (e *Engine) LogWindowRange() (base, size uint64) {
	return e.windowBase, wal.BytesNeeded(e.cfg.Window) * uint64(e.cfg.Threads)
}

// scratchFor returns worker's reusable buffer of at least n bytes. Callers
// must finish with it before the next engine call on the same worker.
func (e *Engine) scratchFor(worker, n int) []byte {
	s := &e.scratch[worker]
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	return s.buf[:n]
}

// dramAlloc carves a region out of the engine's DRAM space, creating it on
// first use.
func (e *Engine) dramAlloc(n uint64) (uint64, error) {
	if e.dram == nil {
		e.dram = pmem.NewDRAMSpace(e.cfg.DRAMBytes, e.sys.Cost())
	}
	off := (e.dramNext + 63) &^ 63
	if off+n > e.dram.Size() {
		return 0, fmt.Errorf("core: DRAM space exhausted (need %d at %d)", n, off)
	}
	e.dramNext = off + n
	return off, nil
}

func (e *Engine) createTable(clk *sim.Clock, spec TableSpec) (*Table, error) {
	if len(e.tables) >= 250 {
		return nil, errors.New("core: too many tables")
	}
	if spec.Schema == nil || spec.Capacity == 0 {
		return nil, errors.New("core: table spec needs schema and capacity")
	}
	if spec.KeyCol < 0 || spec.KeyCol >= spec.Schema.NumColumns() {
		return nil, errors.New("core: bad key column")
	}
	t := &Table{
		e:            e,
		id:           uint8(len(e.tables)),
		name:         spec.Name,
		schema:       spec.Schema,
		keyCol:       spec.KeyCol,
		secondaryCol: spec.SecondaryCol,
		capacity:     spec.Capacity,
		indexKind:    spec.IndexKind,
	}
	slots := spec.Capacity
	if e.cfg.Update == OutOfPlace {
		slots *= uint64(e.cfg.VersionHeadroom)
		// Hot tiny tables (TPC-C warehouse/district) churn versions far
		// faster than proportional headroom suggests; guarantee a working
		// set of stale versions per thread.
		if min := uint64(e.cfg.Threads) * 128; slots < min {
			slots = min
		}
	}
	hcfg := heap.Config{SlotSize: spec.Schema.TupleSize(), NSlots: slots, NThreads: e.cfg.Threads}
	var err error
	t.heapBase, err = e.arena.Alloc(clk, heap.BytesNeeded(hcfg), 64)
	if err != nil {
		return nil, err
	}
	t.heap, err = heap.New(e.nvm, t.heapBase, hcfg)
	if err != nil {
		return nil, err
	}

	// Index capacity covers live tuples only (in-place) since stale
	// versions are removed from the index at update time.
	idxCap := spec.Capacity * 11 / 10
	t.primary, t.priBase, err = e.buildIndex(clk, spec.IndexKind, idxCap)
	if err != nil {
		return nil, err
	}
	if t.secondaryCol > 0 {
		t.secondary, t.secBase, err = e.buildIndex(clk, index.BTree, idxCap)
		if err != nil {
			return nil, err
		}
	}

	if e.cfg.CC.MultiVersion() {
		t.versions = version.NewStore(t.heap.NSlots(), e.cfg.Threads, e.sys.Cost())
	}
	if e.cfg.TupleCacheBytes > 0 {
		e.ensureTupleCache(spec.Schema.TupleSize())
	}

	e.addTable(t)
	return t, nil
}

func (e *Engine) ensureTupleCache(slotBytes int) {
	if e.tcache == nil || e.tcache.slotBytes < slotBytes {
		e.tcache = newTupleCache(e.cfg.TupleCacheBytes, slotBytes, e.sys.Cost())
	}
}

// buildIndex places an index on NVM or DRAM per the configuration.
func (e *Engine) buildIndex(clk *sim.Clock, kind index.Kind, capacity uint64) (index.Index, uint64, error) {
	var bytes uint64
	if kind == index.Hash {
		bytes = index.HashBytes(capacity)
	} else {
		bytes = index.BTreeBytes(capacity)
	}
	if e.cfg.Index == IndexDRAM {
		off, err := e.dramAlloc(bytes)
		if err != nil {
			return nil, 0, err
		}
		idx, err := e.newIndexOn(e.dram, off, kind, capacity)
		return idx, off, err
	}
	off, err := e.arena.Alloc(clk, bytes, 64)
	if err != nil {
		return nil, 0, err
	}
	idx, err := e.newIndexOn(e.nvm, off, kind, capacity)
	return idx, off, err
}

func (e *Engine) newIndexOn(space pmem.Space, off uint64, kind index.Kind, capacity uint64) (index.Index, error) {
	if kind == index.Hash {
		return index.NewHash(space, off, capacity)
	}
	return index.NewBTree(space, off, capacity)
}

// Table returns a table by name.
func (e *Engine) Table(name string) *Table { return e.byName[name] }

// Tables returns all tables in id order.
func (e *Engine) Tables() []*Table { return e.tables }

// Config returns the engine configuration (with defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// System returns the underlying simulated memory system.
func (e *Engine) System() *pmem.System { return e.sys }

// Clock returns worker w's virtual clock.
func (e *Engine) Clock(worker int) *sim.Clock { return e.clocks[worker] }

// Clocks returns all worker clocks (throughput accounting).
func (e *Engine) Clocks() []*sim.Clock { return e.clocks }

// ResetClocks rewinds all worker clocks (between benchmark phases).
func (e *Engine) ResetClocks() {
	if d := e.det; d != nil {
		// Group-mode TID sequences are base + virtual nanos; rewinding the
		// clocks would reissue past sequences, so lift the base above every
		// sequence drawn so far first.
		var maxSeq uint64
		for _, s := range d.lastSeq {
			if s > maxSeq {
				maxSeq = s
			}
		}
		d.base = maxSeq + 1
		d.min = d.base << 8
	}
	for _, c := range e.clocks {
		c.Reset()
	}
}

// Commits returns the number of committed transactions.
func (e *Engine) Commits() uint64 { return e.commits.Load() }

// Aborts returns the number of aborted transaction attempts.
func (e *Engine) Aborts() uint64 { return e.aborts.Load() }

// ResetCounters zeroes every engine-owned observability counter: commits,
// aborts, the abort-reason taxonomy, the per-worker phase accumulators, the
// WAL window gauges, and the hot-set counters. It must only run while no
// transactions are in flight (between benchmark phases).
//
// The pmem.Stats hardware counters are deliberately NOT reset here: they
// belong to the shared simulated device (Engine.System().Dev), which can
// outlive this engine and carries cache/XPBuffer state across phases —
// warmup-dirtied lines may write back during measurement, and zeroing the
// counters mid-stream would leave other holders of the same System with a
// corrupt baseline. Warmup exclusion for hardware events therefore diffs two
// point-in-time copies via pmem.Snapshot.Sub (see bench.Run and
// obs.Snapshot.Sub).
func (e *Engine) ResetCounters() {
	e.commits.Store(0)
	e.aborts.Store(0)
	e.abortReasons.Reset()
	for i := range e.phases {
		e.phases[i].Reset()
	}
	for _, w := range e.windows {
		w.ResetStats()
	}
	for _, h := range e.hot {
		h.stats = obs.HotSetStats{}
	}
	if e.board != nil {
		e.board.ResetStats()
	}
	for w := range e.tstats {
		for i := range e.tstats[w] {
			e.tstats[w][i] = paddedTableStats{}
		}
	}
}

// Obs returns the engine's unified stats registry.
func (e *Engine) Obs() *obs.Registry { return e.reg }

// ObsSnapshot assembles one observability snapshot (engine counters, phase
// accounting, abort taxonomy, WAL/hot-set gauges, pmem hardware counters).
// Workers must be quiescent.
func (e *Engine) ObsSnapshot() obs.Snapshot { return e.reg.Snapshot() }

// AbortReasons returns the per-reason abort counters; they sum to Aborts().
func (e *Engine) AbortReasons() [obs.NumAbortReasons]uint64 {
	return e.abortReasons.Snapshot()
}

// MinActive returns the oldest running TID (MaxUint64 when idle); exported
// for tests exercising GC behaviour.
func (e *Engine) MinActive() uint64 { return e.active.Min() }

// Sync flushes all dirty simulated state to the media (clean shutdown).
// With group commit on, every open durability epoch seals first so no
// published record is left behind its durable point.
func (e *Engine) Sync(clk *sim.Clock) {
	if e.board != nil {
		e.board.SealAll(clk, nil)
	}
	e.sys.Sync(clk)
}

// BulkIndexInsert installs an index entry during initial data load, charging
// no worker clock (pass nil clocks through; sim.Clock methods are nil-safe).
func (t *Table) BulkIndexInsert(key, slot uint64) error {
	if err := t.primary.Insert(nil, key, slot); err != nil {
		return fmt.Errorf("primary %v: %w", t.primary.Kind(), err)
	}
	if t.secondary != nil {
		sec := t.heap.ReadRangeU64(nil, slot, t.schema.Offset(t.secondaryCol))
		if err := t.secondary.Insert(nil, sec, slot); err != nil {
			return fmt.Errorf("secondary key %#x: %w", sec, err)
		}
	}
	return nil
}
