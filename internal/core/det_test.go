package core

import (
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// groupResult captures everything a deterministic run must reproduce: the
// per-worker virtual clocks, the commit/abort counters, the abort taxonomy,
// and a digest of the durable heap image (slots, timestamps, flags, payloads).
type groupResult struct {
	clocks   [4]uint64
	commits  uint64
	aborts   uint64
	reasons  [8]uint64
	heapHash uint64
}

// runGroupWorkload runs a seeded mixed workload (reads, updates, inserts,
// deletes, scans) on 4 group-mode workers under the given GOMAXPROCS and
// returns the result fingerprint.
func runGroupWorkload(t *testing.T, cfg Config, procs int) groupResult {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	const workers = 4
	cfg.Threads = workers
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := New(sys, cfg, kvSpec(index.Hash, 20000))
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Table("kv")
	s := tbl.Schema()

	// Preload a contended key range in free-running mode.
	for k := uint64(0); k < 64; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.ResetClocks()
	e.ResetCounters()

	e.EnterGroup()
	e.Group().Begin(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer e.Group().Leave()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			nextIns := uint64(1000 + 500*w)
			for i := 0; i < 120; i++ {
				op := rng.Intn(10)
				key := uint64(rng.Intn(80))
				switch {
				case op < 4: // field update
					var v [8]byte
					v[0] = byte(i)
					v[1] = byte(w)
					_ = e.Run(w, func(tx *Txn) error {
						return tx.UpdateField(tbl, key, 1, v[:])
					})
				case op < 7: // point read
					buf := make([]byte, s.TupleSize())
					_ = e.RunRO(w, func(tx *Txn) error {
						return tx.Read(tbl, key, buf)
					})
				case op == 7: // insert a fresh key
					k := nextIns
					nextIns++
					_ = e.Run(w, func(tx *Txn) error {
						return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
					})
				case op == 8: // delete
					_ = e.Run(w, func(tx *Txn) error {
						return tx.Delete(tbl, key)
					})
				default: // short scan
					_ = e.RunRO(w, func(tx *Txn) error {
						_, err := tx.Scan(tbl, key, 5, func(uint64, []byte) bool { return true })
						return err
					})
				}
			}
		}(w)
	}
	wg.Wait()
	e.LeaveGroup()

	var res groupResult
	for w := 0; w < workers; w++ {
		res.clocks[w] = e.Clock(w).Nanos()
	}
	res.commits = e.Commits()
	res.aborts = e.Aborts()
	for i, n := range e.AbortReasons() {
		if i < len(res.reasons) {
			res.reasons[i] = n
		}
	}
	h := fnv.New64a()
	var b [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	tbl.Heap().Scan(sim.NewClock(), func(slot, ts uint64, flags uint8, payload []byte) {
		putU64(slot)
		putU64(ts)
		h.Write([]byte{flags})
		h.Write(payload)
	})
	res.heapHash = h.Sum64()
	return res
}

// TestGroupModeDeterministicAcrossSchedules is the tentpole gate at engine
// level: group-mode runs must produce byte-identical virtual results whether
// the host executes the workers serially (GOMAXPROCS=1) or in parallel
// (GOMAXPROCS=4), for every engine preset.
func TestGroupModeDeterministicAcrossSchedules(t *testing.T) {
	for _, cfg := range allEngineConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			serial := runGroupWorkload(t, cfg, 1)
			par := runGroupWorkload(t, cfg, 4)
			par2 := runGroupWorkload(t, cfg, 4)
			if serial != par || par != par2 {
				t.Fatalf("group-mode results differ across host schedules:\n serial: %+v\n par:    %+v\n par2:   %+v", serial, par, par2)
			}
			if serial.commits == 0 {
				t.Fatal("workload committed nothing")
			}
		})
	}
}

// TestGroupModeDeterministicAllCC repeats the schedule-independence check for
// every concurrency-control algorithm (the overlay and barrier validation
// paths differ per algorithm).
func TestGroupModeDeterministicAllCC(t *testing.T) {
	anyAborts := false
	for _, algo := range cc.All {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := FalconConfig()
			cfg.CC = algo
			serial := runGroupWorkload(t, cfg, 1)
			par := runGroupWorkload(t, cfg, 4)
			if serial != par {
				t.Fatalf("group-mode results differ across host schedules:\n serial: %+v\n par:    %+v", serial, par)
			}
			if serial.aborts > 0 {
				anyAborts = true
			}
		})
	}
	if !anyAborts {
		t.Error("contended workload aborted nothing under any algorithm; barrier validation untested")
	}
}

// TestGroupModeVsLegacyVisibleState checks that group mode preserves engine
// semantics (not timing): a conflict-free partitioned workload must leave the
// same visible key/value state as the same workload run in free-running mode.
func TestGroupModeVsLegacyVisibleState(t *testing.T) {
	build := func(group bool) map[uint64]int64 {
		cfg := FalconConfig()
		cfg.Threads = 4
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
		e, err := New(sys, cfg, kvSpec(index.Hash, 20000))
		if err != nil {
			t.Fatal(err)
		}
		tbl := e.Table("kv")
		s := tbl.Schema()
		if group {
			e.EnterGroup()
			e.Group().Begin(4)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if group {
					defer e.Group().Leave()
				}
				base := uint64(w) * 100
				for i := uint64(0); i < 50; i++ {
					k := base + i
					if err := e.Run(w, func(tx *Txn) error {
						return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
					}); err != nil {
						t.Error(err)
						return
					}
					if i%3 == 0 {
						if err := e.Run(w, func(tx *Txn) error {
							return tx.Delete(tbl, k)
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if group {
			e.LeaveGroup()
		}
		out := make(map[uint64]int64)
		buf := make([]byte, s.TupleSize())
		for k := uint64(0); k < 400; k++ {
			if err := e.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, k, buf) }); err == nil {
				out[k] = s.GetInt64(buf, 1)
			}
		}
		return out
	}
	legacy := build(false)
	grouped := build(true)
	if len(legacy) != len(grouped) {
		t.Fatalf("visible key counts differ: legacy %d, group %d", len(legacy), len(grouped))
	}
	for k, v := range legacy {
		if gv, ok := grouped[k]; !ok || gv != v {
			t.Fatalf("key %d: legacy %d, group %v %v", k, v, gv, ok)
		}
	}
}
