package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"falcon/internal/layout"
	"falcon/internal/sim"
)

// The catalog (paper §5.1) records database metadata in NVM: table schemas,
// the addresses of heaps, indexes and per-thread log windows. It is the first
// thing recovery reads. Writes go through the simulated cache (durable under
// persistent cache; explicitly flushed otherwise) at creation time only.

const catalogMagic = 0xFA1C0CA7_00000003

type catalogTable struct {
	name         string
	keyCol       int
	secondaryCol int
	indexKind    uint8
	capacity     uint64
	heapBase     uint64
	priBase      uint64
	secBase      uint64
	schema       *layout.Schema
}

type catalogImage struct {
	threads                      int
	update                       UpdateScheme
	windowSlots, windowSlotBytes int
	windowOverflow               int
	windowFlush                  bool
	windowBase, markerBase       uint64
	epochBase                    uint64
	tables                       []catalogTable
}

func (e *Engine) writeCatalog(clk *sim.Clock) error {
	buf := make([]byte, 0, 4096)
	buf = binary.LittleEndian.AppendUint64(buf, catalogMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.cfg.Threads))
	buf = append(buf, byte(e.cfg.Update))
	if e.cfg.Window.Flush {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.cfg.Window.Slots))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.cfg.Window.SlotBytes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.cfg.Window.OverflowBytes))
	buf = binary.LittleEndian.AppendUint64(buf, e.windowBase)
	buf = binary.LittleEndian.AppendUint64(buf, e.markerBase)
	buf = binary.LittleEndian.AppendUint64(buf, e.epochBase)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.tables)))
	for _, t := range e.tables {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.name)))
		buf = append(buf, t.name...)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(t.keyCol))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(t.secondaryCol))
		buf = append(buf, byte(t.indexKind))
		buf = binary.LittleEndian.AppendUint64(buf, t.capacity)
		buf = binary.LittleEndian.AppendUint64(buf, t.heapBase)
		buf = binary.LittleEndian.AppendUint64(buf, t.priBase)
		buf = binary.LittleEndian.AppendUint64(buf, t.secBase)
		buf = t.schema.AppendBinary(buf)
	}
	if len(buf)+8 > catalogBytes {
		return fmt.Errorf("core: catalog needs %d bytes, region holds %d", len(buf), catalogBytes)
	}
	// Length prefix, then body; flushed so the catalog is durable even
	// without persistent cache.
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], uint64(len(buf)))
	e.nvm.Write(clk, catalogBase, lenb[:])
	e.nvm.Write(clk, catalogBase+8, buf)
	e.nvm.SFence(clk)
	e.nvm.CLWB(clk, catalogBase, len(buf)+8)
	e.nvm.SFence(clk)
	return nil
}

func readCatalog(space interface {
	Read(*sim.Clock, uint64, []byte)
}, clk *sim.Clock) (*catalogImage, error) {
	var lenb [8]byte
	space.Read(clk, catalogBase, lenb[:])
	n := binary.LittleEndian.Uint64(lenb[:])
	if n == 0 || n > catalogBytes {
		return nil, errors.New("core: no catalog found (was the engine ever created?)")
	}
	buf := make([]byte, n)
	space.Read(clk, catalogBase+8, buf)
	if binary.LittleEndian.Uint64(buf) != catalogMagic {
		return nil, errors.New("core: catalog magic mismatch")
	}
	img := &catalogImage{}
	pos := 8
	img.threads = int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	img.update = UpdateScheme(buf[pos])
	pos++
	img.windowFlush = buf[pos] != 0
	pos++
	img.windowSlots = int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	img.windowSlotBytes = int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	img.windowOverflow = int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	img.windowBase = binary.LittleEndian.Uint64(buf[pos:])
	pos += 8
	img.markerBase = binary.LittleEndian.Uint64(buf[pos:])
	pos += 8
	img.epochBase = binary.LittleEndian.Uint64(buf[pos:])
	pos += 8
	ntables := int(binary.LittleEndian.Uint16(buf[pos:]))
	pos += 2
	for i := 0; i < ntables; i++ {
		var ct catalogTable
		nameLen := int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		ct.name = string(buf[pos : pos+nameLen])
		pos += nameLen
		ct.keyCol = int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		ct.secondaryCol = int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		ct.indexKind = buf[pos]
		pos++
		ct.capacity = binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		ct.heapBase = binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		ct.priBase = binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		ct.secBase = binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		sch, consumed, err := layout.DecodeSchema(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("core: catalog table %d: %w", i, err)
		}
		pos += consumed
		ct.schema = sch
		img.tables = append(img.tables, ct)
	}
	return img, nil
}
