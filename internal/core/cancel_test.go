package core

import (
	"encoding/binary"
	"errors"
	"testing"

	"falcon/internal/obs"
)

func i64le(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// TestRunCancelablePreAttempt: a hook that is already true stops the loop
// before any transaction begins.
func TestRunCancelablePreAttempt(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	calls := 0
	err := e.RunCancelable(0, func() bool { return true }, func(tx *Txn) error {
		calls++
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times after pre-attempt cancel", calls)
	}
	if got := e.ObsSnapshot().Commits; got != 0 {
		t.Fatalf("commits = %d, want 0", got)
	}
}

// TestRunCancelableMidTxn: cancellation raised between operations aborts the
// attempt, rolls back its writes, and counts under the canceled abort reason.
func TestRunCancelableMidTxn(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	kv := e.Table("kv")
	s := kv.Schema()
	if err := e.Run(0, func(tx *Txn) error {
		return tx.Insert(kv, 1, encodeKV(s, 1, 100))
	}); err != nil {
		t.Fatal(err)
	}

	var fired bool
	err := e.RunCancelable(0, func() bool { return fired }, func(tx *Txn) error {
		if err := tx.Update(kv, 1, s.Offset(1), i64le(-5)); err != nil {
			return err
		}
		fired = true // the next op entry point must observe the cancel
		if err := tx.Update(kv, 1, s.Offset(1), i64le(-6)); err != nil {
			return err
		}
		t.Fatal("second Update succeeded after cancel fired")
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	snap := e.ObsSnapshot()
	if got := snap.AbortCounts[obs.AbortCanceled]; got != 1 {
		t.Fatalf("canceled aborts = %d, want 1", got)
	}
	// The canceled attempt's first Update must not be visible.
	var v int64
	if err := e.RunRO(0, func(tx *Txn) error {
		buf := make([]byte, s.TupleSize())
		if err := tx.Read(kv, 1, buf); err != nil {
			return err
		}
		v = s.GetInt64(buf, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Fatalf("value = %d after canceled txn, want 100", v)
	}
}

// TestRunCancelableNilHook: a nil hook degrades to plain Run.
func TestRunCancelableNilHook(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	kv := e.Table("kv")
	s := kv.Schema()
	if err := e.RunCancelable(0, nil, func(tx *Txn) error {
		return tx.Insert(kv, 7, encodeKV(s, 7, 7))
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunROCancelable(0, nil, func(tx *Txn) error {
		buf := make([]byte, s.TupleSize())
		return tx.Read(kv, 7, buf)
	}); err != nil {
		t.Fatal(err)
	}
}
