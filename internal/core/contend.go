package core

import (
	"falcon/internal/cc"
	"falcon/internal/heap"
	"falcon/internal/index"
	"falcon/internal/obs"
	"falcon/internal/obs/contend"
)

// NewObservatory builds a contention observatory shaped for this engine: one
// recorder shard per worker, the CC algorithm label, the table catalog, and
// the flush-attribution address map (each table's heap plus its NVM index
// regions under the table's name, every thread's log window under "(log)").
// Arm it with SetContend; its report lands in ObsSnapshot while armed.
func (e *Engine) NewObservatory() *contend.Observatory {
	names := make([]string, len(e.tables))
	for i, t := range e.tables {
		names[i] = t.name
	}
	o := contend.New(contend.Config{
		Workers: e.cfg.Threads,
		Algo:    e.cfg.CC.String(),
		Tables:  names,
		Banks:   e.sys.XPB.Banks(),
	})
	for _, t := range e.tables {
		hcfg := heap.Config{SlotSize: t.schema.TupleSize(), NSlots: t.heap.NSlots(), NThreads: e.cfg.Threads}
		o.AddRange(t.name, t.heapBase, t.heapBase+heap.BytesNeeded(hcfg))
		if e.cfg.Index == IndexNVM {
			idxCap := t.capacity * 11 / 10
			var pb uint64
			if t.indexKind == index.Hash {
				pb = index.HashBytes(idxCap)
			} else {
				pb = index.BTreeBytes(idxCap)
			}
			o.AddRange(t.name, t.priBase, t.priBase+pb)
			if t.secondary != nil {
				o.AddRange(t.name, t.secBase, t.secBase+index.BTreeBytes(idxCap))
			}
		}
	}
	base, size := e.LogWindowRange()
	o.AddRange("(log)", base, base+size)
	return o
}

// SetContend arms the contention observatory: worker w's conflict events
// route to o.Worker(w), the WAL windows report flush lines and group-commit
// waits, and the pmem system reports writeback and eviction traffic. Pass nil
// to disarm. Must be called while no transactions are in flight (between
// benchmark phases) — the same quiescence contract as SetTracer.
func (e *Engine) SetContend(o *contend.Observatory) {
	e.contendObs = o
	if o == nil {
		e.contendW = nil
		for _, w := range e.windows {
			w.SetContend(nil)
		}
		e.sys.SetContend(nil)
		return
	}
	e.contendW = make([]*contend.Worker, e.cfg.Threads)
	for i := range e.contendW {
		cw := o.Worker(i)
		e.contendW[i] = cw
		e.windows[i].SetContend(cw)
		if e.tracerW != nil {
			cw.SetTracer(e.tracerW[i])
		}
	}
	e.sys.SetContend(o.PmemContend)
}

// Contend returns the armed observatory, or nil.
func (e *Engine) Contend() *contend.Observatory { return e.contendObs }

// noteConflict reports one CC conflict to the armed observatory shard. word
// is the shadow word observed at the failure site; the writer TID it encodes
// attributes the conflict to the holding worker (a zero TID is the bulk-load
// stamp — no holder).
func (tx *Txn) noteConflict(t *Table, key, slot, word uint64, kind obs.ConflictKind) {
	if tx.cw == nil {
		return
	}
	holder := -1
	if h := cc.HolderTID(tx.e.cfg.CC, word); h != 0 {
		holder = cc.TIDWorker(h)
	}
	tx.cw.Conflict(int(t.id), key, slot, kind, holder, 0, tx.clk.Nanos())
}

// ccConflict is noteConflict returning ErrConflict, for failure-site returns.
func (tx *Txn) ccConflict(t *Table, key, slot, word uint64, kind obs.ConflictKind) error {
	tx.noteConflict(t, key, slot, word, kind)
	return ErrConflict
}
