package core

import (
	"falcon/internal/cc"
	"falcon/internal/obs"
)

// ReadForUpdate reads the tuple for key while acquiring write intent
// up-front (select-for-update). Read-modify-write code should prefer this
// over Read+Update: acquiring a shared lock first and upgrading later
// livelocks under no-wait 2PL when two writers collide on a hot tuple —
// e.g. TPC-C's warehouse and district rows.
func (tx *Txn) ReadForUpdate(t *Table, key uint64, dst []byte) error {
	return tx.readForUpdate(t, key, 0, t.schema.TupleSize(), dst)
}

// ReadFieldForUpdate is ReadForUpdate for a single column.
func (tx *Txn) ReadFieldForUpdate(t *Table, key uint64, col int, dst []byte) error {
	return tx.readForUpdate(t, key, t.schema.Offset(col), t.schema.Column(col).Size, dst)
}

func (tx *Txn) readForUpdate(t *Table, key uint64, off, n int, dst []byte) error {
	tx.clk.Advance(tx.e.sys.Cost().OpOverhead)
	if tx.ro {
		return ErrReadOnly
	}
	tx.cw.Touch(int(t.id), key)
	if ins := tx.findInsert(t, key); ins != nil {
		tx.copyPending(ins.t, ins.data, ins.logPos, off, n, dst)
		tx.overlayOwnWrites(t, ins.slot, off, n, dst)
		return nil
	}
	slot, ok := t.primary.Get(tx.clk, key)
	if !ok {
		return ErrNotFound
	}

	if tx.e.cfg.CC.Base() == cc.OCC {
		// OCC defers locking; the read must still be validated, so record
		// it like an ordinary read, then mark the write intent.
		lock, _ := t.heap.Meta(slot)
		if !tx.ownsWrite(t, slot) {
			word := lock.Load()
			if cc.Locked(word) {
				return tx.ccConflict(t, key, slot, word, obs.ConflictLockFail)
			}
			flags := t.heap.ReadFlags(tx.clk, slot)
			tx.readPayload(t, key, slot, off, n, dst)
			if lock.Load() != word {
				return tx.ccConflict(t, key, slot, lock.Load(), obs.ConflictTornRead)
			}
			if err := flagsErr(flags); err != nil {
				return err
			}
			tx.reads = append(tx.reads, readRef{t: t, slot: slot, key: key, word: word})
		} else {
			tx.readPayload(t, key, slot, off, n, dst)
		}
		tx.writesMark(t, key, slot)
		tx.overlayOwnWrites(t, slot, off, n, dst)
		return nil
	}

	// 2PL / TO: take the write lock first, then read under it.
	if err := tx.writeIntent(t, key, slot); err != nil {
		return err
	}
	if err := liveErr(t, tx.clk, slot); err != nil {
		return err
	}
	tx.readPayload(t, key, slot, off, n, dst)
	tx.overlayOwnWrites(t, slot, off, n, dst)
	return nil
}
