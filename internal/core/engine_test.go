package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/layout"
	"falcon/internal/pmem"
)

func kvSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "k", Kind: layout.Uint64},
		layout.Column{Name: "v", Kind: layout.Int64},
		layout.Column{Name: "pad", Kind: layout.Bytes, Size: 48},
	)
}

func kvSpec(kind index.Kind, capacity uint64) []TableSpec {
	return []TableSpec{{
		Name: "kv", Schema: kvSchema(), Capacity: capacity,
		KeyCol: 0, IndexKind: kind,
	}}
}

func newKVEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	cfg.Threads = 4
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	e, err := New(sys, cfg, kvSpec(index.Hash, 20000))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func encodeKV(s *layout.Schema, k uint64, v int64) []byte {
	buf := make([]byte, s.TupleSize())
	s.PutUint64(buf, 0, k)
	s.PutInt64(buf, 1, v)
	return buf
}

// allEngineConfigs enumerates every preset for matrix tests.
func allEngineConfigs() []Config {
	return []Config{
		FalconConfig(), FalconNoFlushConfig(), FalconAllFlushConfig(), FalconDRAMIndexConfig(),
		InpConfig(), InpNoFlushConfig(), InpSmallLogWindowConfig(), InpHotTupleTrackingConfig(),
		OutpConfig(), ZenSConfig(), ZenSNoFlushConfig(),
	}
}

func TestEngineBasicCRUDAllVariants(t *testing.T) {
	for _, cfg := range allEngineConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			e := newKVEngine(t, cfg)
			tbl := e.Table("kv")
			s := tbl.Schema()

			err := e.Run(0, func(tx *Txn) error {
				return tx.Insert(tbl, 7, encodeKV(s, 7, 100))
			})
			if err != nil {
				t.Fatal(err)
			}

			buf := make([]byte, s.TupleSize())
			if err := e.RunRO(0, func(tx *Txn) error {
				return tx.Read(tbl, 7, buf)
			}); err != nil {
				t.Fatal(err)
			}
			if s.GetInt64(buf, 1) != 100 {
				t.Fatalf("read v = %d, want 100", s.GetInt64(buf, 1))
			}

			// Field update.
			var val [8]byte
			s.PutInt64(val[:], 0, 0) // reuse buffer trick: encode -1 below
			if err := e.Run(1, func(tx *Txn) error {
				var v [8]byte
				for i := range v {
					v[i] = 0
				}
				v[0] = 200
				return tx.UpdateField(tbl, 7, 1, v[:])
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.RunRO(2, func(tx *Txn) error {
				return tx.Read(tbl, 7, buf)
			}); err != nil {
				t.Fatal(err)
			}
			if s.GetInt64(buf, 1) != 200 {
				t.Fatalf("after update v = %d, want 200", s.GetInt64(buf, 1))
			}

			// Delete.
			if err := e.Run(3, func(tx *Txn) error {
				return tx.Delete(tbl, 7)
			}); err != nil {
				t.Fatal(err)
			}
			err = e.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, 7, buf) })
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("read after delete err = %v, want ErrNotFound", err)
			}

			// Reinsert reuses the key.
			if err := e.Run(0, func(tx *Txn) error {
				return tx.Insert(tbl, 7, encodeKV(s, 7, 300))
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.RunRO(1, func(tx *Txn) error { return tx.Read(tbl, 7, buf) }); err != nil {
				t.Fatal(err)
			}
			if s.GetInt64(buf, 1) != 300 {
				t.Fatalf("after reinsert v = %d, want 300", s.GetInt64(buf, 1))
			}
			_ = val
		})
	}
}

func TestEngineAllCCAlgorithms(t *testing.T) {
	for _, algo := range cc.All {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := FalconConfig()
			cfg.CC = algo
			e := newKVEngine(t, cfg)
			tbl := e.Table("kv")
			s := tbl.Schema()
			for k := uint64(0); k < 50; k++ {
				if err := e.Run(0, func(tx *Txn) error {
					return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Read-modify-write increments.
			for i := 0; i < 100; i++ {
				k := uint64(i % 50)
				if err := e.Run(i%4, func(tx *Txn) error {
					buf := make([]byte, s.TupleSize())
					if err := tx.Read(tbl, k, buf); err != nil {
						return err
					}
					var v [8]byte
					s2 := s.GetInt64(buf, 1) + 1
					layoutPutI64(v[:], s2)
					return tx.UpdateField(tbl, k, 1, v[:])
				}); err != nil {
					t.Fatal(err)
				}
			}
			buf := make([]byte, s.TupleSize())
			for k := uint64(0); k < 50; k++ {
				if err := e.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, k, buf) }); err != nil {
					t.Fatal(err)
				}
				if got := s.GetInt64(buf, 1); got != int64(k)+2 {
					t.Fatalf("key %d = %d, want %d", k, got, k+2)
				}
			}
		})
	}
}

func layoutPutI64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func TestConcurrentCounterInvariant(t *testing.T) {
	// N workers increment disjoint-and-shared counters; the final sum must
	// equal the number of committed increments regardless of CC algorithm.
	for _, algo := range cc.All {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := FalconConfig()
			cfg.CC = algo
			e := newKVEngine(t, cfg)
			tbl := e.Table("kv")
			s := tbl.Schema()
			const keys = 8
			for k := uint64(0); k < keys; k++ {
				if err := e.Run(0, func(tx *Txn) error {
					return tx.Insert(tbl, k, encodeKV(s, k, 0))
				}); err != nil {
					t.Fatal(err)
				}
			}
			const workers, per = 4, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						k := uint64((w + i) % keys)
						err := e.Run(w, func(tx *Txn) error {
							buf := make([]byte, s.TupleSize())
							if err := tx.Read(tbl, k, buf); err != nil {
								return err
							}
							var v [8]byte
							layoutPutI64(v[:], s.GetInt64(buf, 1)+1)
							return tx.UpdateField(tbl, k, 1, v[:])
						})
						if err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			var sum int64
			buf := make([]byte, s.TupleSize())
			for k := uint64(0); k < keys; k++ {
				if err := e.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, k, buf) }); err != nil {
					t.Fatal(err)
				}
				sum += s.GetInt64(buf, 1)
			}
			if sum != workers*per {
				t.Fatalf("sum = %d, want %d (lost updates!)", sum, workers*per)
			}
		})
	}
}

func TestAbortRollsBack(t *testing.T) {
	for _, cfg := range []Config{FalconConfig(), OutpConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			e := newKVEngine(t, cfg)
			tbl := e.Table("kv")
			s := tbl.Schema()
			if err := e.Run(0, func(tx *Txn) error {
				return tx.Insert(tbl, 1, encodeKV(s, 1, 10))
			}); err != nil {
				t.Fatal(err)
			}
			// Explicit rollback: the update and the insert must both vanish.
			err := e.Run(0, func(tx *Txn) error {
				var v [8]byte
				layoutPutI64(v[:], 999)
				if err := tx.UpdateField(tbl, 1, 1, v[:]); err != nil {
					return err
				}
				if err := tx.Insert(tbl, 2, encodeKV(s, 2, 20)); err != nil {
					return err
				}
				return ErrRollback
			})
			if !errors.Is(err, ErrRollback) {
				t.Fatalf("err = %v", err)
			}
			buf := make([]byte, s.TupleSize())
			if err := e.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, 1, buf) }); err != nil {
				t.Fatal(err)
			}
			if s.GetInt64(buf, 1) != 10 {
				t.Fatalf("aborted update leaked: v = %d", s.GetInt64(buf, 1))
			}
			if err := e.RunRO(0, func(tx *Txn) error { return tx.Read(tbl, 2, buf) }); !errors.Is(err, ErrNotFound) {
				t.Fatalf("aborted insert leaked: err = %v", err)
			}
		})
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	for _, cfg := range []Config{FalconConfig(), OutpConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			e := newKVEngine(t, cfg)
			tbl := e.Table("kv")
			s := tbl.Schema()
			if err := e.Run(0, func(tx *Txn) error {
				return tx.Insert(tbl, 5, encodeKV(s, 5, 1))
			}); err != nil {
				t.Fatal(err)
			}
			err := e.Run(0, func(tx *Txn) error {
				var v [8]byte
				layoutPutI64(v[:], 42)
				if err := tx.UpdateField(tbl, 5, 1, v[:]); err != nil {
					return err
				}
				buf := make([]byte, s.TupleSize())
				if err := tx.Read(tbl, 5, buf); err != nil {
					return err
				}
				if got := s.GetInt64(buf, 1); got != 42 {
					return fmt.Errorf("own write invisible: v = %d", got)
				}
				// Pending insert must be visible too.
				if err := tx.Insert(tbl, 6, encodeKV(s, 6, 66)); err != nil {
					return err
				}
				if err := tx.Read(tbl, 6, buf); err != nil {
					return err
				}
				if got := s.GetInt64(buf, 1); got != 66 {
					return fmt.Errorf("own insert wrong: v = %d", got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSnapshotIsolationMVCC(t *testing.T) {
	for _, algo := range []cc.Algo{cc.MV2PL, cc.MVTO, cc.MVOCC} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := FalconConfig()
			cfg.CC = algo
			e := newKVEngine(t, cfg)
			tbl := e.Table("kv")
			s := tbl.Schema()
			if err := e.Run(0, func(tx *Txn) error {
				return tx.Insert(tbl, 1, encodeKV(s, 1, 100))
			}); err != nil {
				t.Fatal(err)
			}
			// Open a snapshot, then overwrite the tuple from another worker.
			ro := e.BeginRO(1)
			if err := e.Run(2, func(tx *Txn) error {
				var v [8]byte
				layoutPutI64(v[:], 200)
				return tx.UpdateField(tbl, 1, 1, v[:])
			}); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, s.TupleSize())
			if err := ro.Read(tbl, 1, buf); err != nil {
				t.Fatal(err)
			}
			if got := s.GetInt64(buf, 1); got != 100 {
				t.Fatalf("snapshot read %d, want pre-update 100", got)
			}
			if err := ro.Commit(); err != nil {
				t.Fatal(err)
			}
			// A fresh snapshot sees the new value.
			if err := e.RunRO(1, func(tx *Txn) error { return tx.Read(tbl, 1, buf) }); err != nil {
				t.Fatal(err)
			}
			if got := s.GetInt64(buf, 1); got != 200 {
				t.Fatalf("new snapshot read %d, want 200", got)
			}
		})
	}
}

func TestScanOrderedAndLimited(t *testing.T) {
	cfg := FalconConfig()
	sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
	cfg.Threads = 2
	e, err := New(sys, cfg, kvSpec(index.BTree, 10000))
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(0); k < 100; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k*2, encodeKV(s, k*2, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	err = e.Run(1, func(tx *Txn) error {
		keys = keys[:0]
		_, err := tx.Scan(tbl, 50, 10, func(key uint64, payload []byte) bool {
			keys = append(keys, key)
			return true
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0] != 50 || keys[9] != 68 {
		t.Fatalf("scan keys = %v", keys)
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	if err := e.Run(0, func(tx *Txn) error {
		return tx.Insert(tbl, 9, encodeKV(s, 9, 1))
	}); err != nil {
		t.Fatal(err)
	}
	err := e.Run(1, func(tx *Txn) error {
		return tx.Insert(tbl, 9, encodeKV(s, 9, 2))
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestCommitsAndAbortsCounted(t *testing.T) {
	e := newKVEngine(t, FalconConfig())
	tbl := e.Table("kv")
	s := tbl.Schema()
	for i := 0; i < 10; i++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, uint64(i), encodeKV(s, uint64(i), 0))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Commits() != 10 {
		t.Fatalf("commits = %d", e.Commits())
	}
	e.Run(0, func(tx *Txn) error { return ErrRollback })
	if e.Aborts() == 0 {
		t.Fatal("aborts not counted")
	}
}
