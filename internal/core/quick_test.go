package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/pmem"
)

// quickKVModel drives an engine with a random committed-op sequence and
// checks it against a map reference — both live and across a crash.
func quickKVModel(t *testing.T, cfg Config) {
	t.Helper()
	f := func(seed int64) bool {
		cfg := cfg
		cfg.Threads = 2
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 128 << 20})
		e, err := New(sys, cfg, kvSpec(index.Hash, 4000))
		if err != nil {
			t.Fatal(err)
		}
		tbl := e.Table("kv")
		s := tbl.Schema()
		rng := rand.New(rand.NewSource(seed))
		ref := map[uint64]int64{}

		for i := 0; i < 200; i++ {
			k := uint64(rng.Intn(60))
			w := rng.Intn(10)
			_, exists := ref[k]
			switch {
			case w < 4 && !exists: // insert
				v := int64(rng.Intn(1 << 30))
				if err := e.Run(i%2, func(tx *Txn) error {
					return tx.Insert(tbl, k, encodeKV(s, k, v))
				}); err != nil {
					t.Fatalf("insert: %v", err)
				}
				ref[k] = v
			case w < 7 && exists: // update
				v := int64(rng.Intn(1 << 30))
				if err := e.Run(i%2, func(tx *Txn) error {
					var b [8]byte
					layoutPutI64(b[:], v)
					return tx.UpdateField(tbl, k, 1, b[:])
				}); err != nil {
					t.Fatalf("update: %v", err)
				}
				ref[k] = v
			case w < 8 && exists: // delete
				if err := e.Run(i%2, func(tx *Txn) error { return tx.Delete(tbl, k) }); err != nil {
					t.Fatalf("delete: %v", err)
				}
				delete(ref, k)
			default: // read and verify live state
				buf := make([]byte, s.TupleSize())
				err := e.RunRO(i%2, func(tx *Txn) error { return tx.Read(tbl, k, buf) })
				if exists {
					if err != nil || s.GetInt64(buf, 1) != ref[k] {
						return false
					}
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			}
		}

		e2, _, err := Recover(e.System().Crash(), cfg)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		tbl2 := e2.Table("kv")
		buf := make([]byte, s.TupleSize())
		for k := uint64(0); k < 60; k++ {
			err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl2, k, buf) })
			if v, live := ref[k]; live {
				if err != nil || s.GetInt64(buf, 1) != v {
					return false
				}
			} else if !errors.Is(err, ErrNotFound) {
				return false
			}
		}
		return true
	}
	// Each iteration builds and crash-recovers a full engine; -short (the
	// race-enabled CI lane) keeps the property check but trims the sample
	// count so the five per-variant tests stay within the CI budget.
	max := 8
	if testing.Short() {
		max = 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKVModelFalcon(t *testing.T) { quickKVModel(t, FalconConfig()) }
func TestQuickKVModelInp(t *testing.T)    { quickKVModel(t, InpConfig()) }
func TestQuickKVModelOutp(t *testing.T)   { quickKVModel(t, OutpConfig()) }
func TestQuickKVModelZenS(t *testing.T)   { quickKVModel(t, ZenSConfig()) }
func TestQuickKVModelMVFalcon(t *testing.T) {
	cfg := FalconConfig()
	cfg.CC = cc.MV2PL
	quickKVModel(t, cfg)
}
