package core

import (
	"errors"
	"testing"

	"falcon/internal/index"
	"falcon/internal/pmem"
)

// TestADRLosesUnflushedCommits is the paper's central counterfactual: the
// small-log-window design is only correct under persistent cache. On an
// ADR machine (volatile cache) with all flushes removed, committed
// transactions whose log and data never left the cache are lost at a crash.
// This is why pre-eADR engines (Inp) must flush their logs — and the test
// confirms Inp survives the same crash.
func TestADRLosesUnflushedCommits(t *testing.T) {
	run := func(cfg Config) (lost int, err error) {
		cfg.Threads = 2
		sys := pmem.NewSystem(pmem.Config{DeviceBytes: 128 << 20, Mode: pmem.ADR})
		e, err := New(sys, cfg, kvSpec(index.Hash, 4000))
		if err != nil {
			return 0, err
		}
		tbl := e.Table("kv")
		s := tbl.Schema()
		const n = 50
		for k := uint64(0); k < n; k++ {
			if err := e.Run(int(k)%2, func(tx *Txn) error {
				return tx.Insert(tbl, k, encodeKV(s, k, int64(k)+1))
			}); err != nil {
				return 0, err
			}
		}
		e2, _, err := Recover(e.System().Crash(), cfg)
		if err != nil {
			return 0, err
		}
		tbl2 := e2.Table("kv")
		buf := make([]byte, s.TupleSize())
		for k := uint64(0); k < n; k++ {
			err := e2.RunRO(0, func(tx *Txn) error { return tx.Read(tbl2, k, buf) })
			if errors.Is(err, ErrNotFound) || (err == nil && s.GetInt64(buf, 1) != int64(k)+1) {
				lost++
			} else if err != nil && !errors.Is(err, ErrNotFound) {
				return 0, err
			}
		}
		return lost, nil
	}

	// Falcon's unflushed small log window on volatile-cache hardware: data
	// loss expected.
	falconLost, err := run(FalconNoFlushConfig())
	if err != nil {
		t.Fatalf("falcon-on-ADR run: %v", err)
	}
	if falconLost == 0 {
		t.Fatal("unflushed Falcon survived an ADR crash — the simulator is not modelling volatile cache")
	}

	// Inp flushes its log records and its data; everything must survive.
	inpLost, err := run(InpConfig())
	if err != nil {
		t.Fatalf("inp-on-ADR run: %v", err)
	}
	if inpLost != 0 {
		t.Fatalf("Inp (flushed log) lost %d committed transactions under ADR", inpLost)
	}
}
