// Package core implements the Falcon OLTP storage engine and the baseline
// engines the paper compares against (Inp, Outp, ZenS and the ablation
// variants), all as configurations of one code base — mirroring the paper's
// §6.2.1, where every engine shares the same tuple-heap design.
package core

import (
	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/layout"
	"falcon/internal/wal"
)

// UpdateScheme selects how committed writes reach the tuple heap.
type UpdateScheme uint8

const (
	// InPlace records redo logs, then overwrites tuples in place (§2.1.1).
	InPlace UpdateScheme = iota
	// OutOfPlace writes each update as a new tuple version and repoints the
	// index (§2.1.2, "log-free").
	OutOfPlace
)

func (u UpdateScheme) String() string {
	if u == OutOfPlace {
		return "out-of-place"
	}
	return "in-place"
}

// FlushPolicy selects the clwb strategy for tuple data (§4.4).
type FlushPolicy uint8

const (
	// FlushAll issues hinted flushes for every touched tuple.
	FlushAll FlushPolicy = iota
	// FlushNone never issues clwb (relies purely on eADR).
	FlushNone
	// FlushSelective issues hinted flushes except for tuples tracked hot —
	// Falcon's selective data flush.
	FlushSelective
)

func (f FlushPolicy) String() string {
	switch f {
	case FlushNone:
		return "none"
	case FlushSelective:
		return "selective"
	default:
		return "all"
	}
}

// IndexPlacement selects where indexes live.
type IndexPlacement uint8

const (
	// IndexNVM keeps indexes on the persistent space (instant recovery).
	IndexNVM IndexPlacement = iota
	// IndexDRAM keeps indexes in volatile memory (faster probes; rebuilt by
	// a heap scan during recovery).
	IndexDRAM
)

func (p IndexPlacement) String() string {
	if p == IndexDRAM {
		return "DRAM"
	}
	return "NVM"
}

// LogScheme selects the redo-log behaviour of in-place engines.
type LogScheme uint8

const (
	// SmallLogWindow is Falcon's design: tiny per-thread circular windows
	// (2–3 transactions), never flushed, kept cache-resident (§4.3).
	SmallLogWindow LogScheme = iota
	// FlushedLog is the classic design: a large per-thread log region whose
	// records are clwb'd at commit (Inp). Sequential flushes merge into
	// full-block media writes.
	FlushedLog
	// UnflushedLog is a large per-thread log region with the clwbs removed
	// (Inp (No Flush)): correct under eADR, but the cold log lines are
	// eventually evicted one by one, causing amplified partial-block writes.
	UnflushedLog
)

func (l LogScheme) String() string {
	switch l {
	case FlushedLog:
		return "flushed"
	case UnflushedLog:
		return "unflushed"
	default:
		return "small-window"
	}
}

// largeLogSlots is the slot count used by FlushedLog/UnflushedLog regions:
// big enough that slots are not promptly reused, so unflushed records cool
// down and get evicted — the behaviour of a conventional log.
const largeLogSlots = 64

// Config assembles an engine.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// Threads is the number of worker threads (TPC-C/YCSB terminals).
	Threads int
	// CC selects the concurrency-control algorithm.
	CC cc.Algo
	// Update selects in-place or out-of-place tuple updates.
	Update UpdateScheme
	// Log selects the redo-log scheme (in-place engines only).
	Log LogScheme
	// Flush selects the tuple-data clwb policy.
	Flush FlushPolicy
	// Index selects index placement.
	Index IndexPlacement
	// HotTupleCap is the per-thread hot-tuple LRU capacity used by
	// FlushSelective.
	HotTupleCap int
	// TupleCacheBytes enables the ZenS-style DRAM tuple cache when > 0.
	TupleCacheBytes int
	// OwnershipCopy charges Zen's copy-and-invalidate when a thread updates
	// a tuple version owned by another thread (§6.2.3 Zipfian discussion).
	OwnershipCopy bool
	// GroupCommit enables leader-based group commit on in-place engines:
	// commits publish into durability epochs and the per-commit drain moves
	// to the epoch seal's coalesced flush trains (ignored for OutOfPlace,
	// whose commit marker is its own durable point).
	GroupCommit bool
	// GroupEpochNanos is the durability-epoch length in virtual nanoseconds
	// (0 selects wal.DefaultEpochNanos). It bounds the group-commit timeout:
	// a singleton commit waits at most one epoch before its seal.
	GroupEpochNanos uint64
	// Window configures the per-thread log window (Slots is derived from
	// Log when zero).
	Window wal.Config
	// DRAMBytes sizes the volatile space used for DRAM indexes.
	DRAMBytes uint64
	// VersionHeadroom multiplies out-of-place heap capacity to leave room
	// for not-yet-recycled versions (default 4).
	VersionHeadroom int
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.HotTupleCap == 0 {
		c.HotTupleCap = 256
	}
	if c.Window.Slots == 0 {
		if c.Log == SmallLogWindow {
			c.Window.Slots = 3
		} else {
			c.Window.Slots = largeLogSlots
		}
	}
	if c.Window.SlotBytes == 0 {
		c.Window.SlotBytes = 4096
	}
	if c.Window.OverflowBytes == 0 {
		c.Window.OverflowBytes = 64 << 10
	}
	c.Window.Flush = c.Log == FlushedLog
	if c.Update == OutOfPlace {
		c.GroupCommit = false
	}
	if c.DRAMBytes == 0 {
		c.DRAMBytes = 512 << 20
	}
	if c.VersionHeadroom == 0 {
		c.VersionHeadroom = 4
	}
	return c
}

// ---- engine presets (paper Table 1 and Figure 10) ----

// FalconConfig is the full Falcon design: in-place updates, small log
// window, selective data flush, NVM indexes.
func FalconConfig() Config {
	return Config{Name: "Falcon", Update: InPlace, Log: SmallLogWindow,
		Flush: FlushSelective, Index: IndexNVM}
}

// FalconNoFlushConfig is Falcon with all clwb instructions removed.
func FalconNoFlushConfig() Config {
	c := FalconConfig()
	c.Name = "Falcon (No Flush)"
	c.Flush = FlushNone
	return c
}

// FalconAllFlushConfig is Falcon without hot-tuple tracking: every touched
// tuple is flushed.
func FalconAllFlushConfig() Config {
	c := FalconConfig()
	c.Name = "Falcon (All Flush)"
	c.Flush = FlushAll
	return c
}

// FalconDRAMIndexConfig is Falcon with indexes in DRAM instead of NVM.
func FalconDRAMIndexConfig() Config {
	c := FalconConfig()
	c.Name = "Falcon (DRAM Index)"
	c.Index = IndexDRAM
	return c
}

// InpConfig is the pure in-place baseline: flushed redo logs and hinted
// flushes for all data.
func InpConfig() Config {
	return Config{Name: "Inp", Update: InPlace, Log: FlushedLog,
		Flush: FlushAll, Index: IndexNVM}
}

// InpNoFlushConfig is Inp with every clwb removed (Figure 10's baseline).
func InpNoFlushConfig() Config {
	return Config{Name: "Inp (No Flush)", Update: InPlace, Log: UnflushedLog,
		Flush: FlushNone, Index: IndexNVM}
}

// InpSmallLogWindowConfig is Inp plus the small-log-window optimization.
func InpSmallLogWindowConfig() Config {
	return Config{Name: "Inp (Small Log Window)", Update: InPlace, Log: SmallLogWindow,
		Flush: FlushAll, Index: IndexNVM}
}

// InpHotTupleTrackingConfig is Inp plus the hot-tuple-tracking optimization.
func InpHotTupleTrackingConfig() Config {
	return Config{Name: "Inp (Hot Tuple Tracking)", Update: InPlace, Log: FlushedLog,
		Flush: FlushSelective, Index: IndexNVM}
}

// OutpConfig is the pure out-of-place baseline with NVM indexes.
func OutpConfig() Config {
	return Config{Name: "Outp", Update: OutOfPlace, Flush: FlushAll, Index: IndexNVM}
}

// ZenSConfig re-implements Zen's storage engine: out-of-place updates, DRAM
// index, DRAM tuple cache, thread-ownership copies.
func ZenSConfig() Config {
	return Config{Name: "ZenS", Update: OutOfPlace, Flush: FlushAll,
		Index: IndexDRAM, TupleCacheBytes: 64 << 20, OwnershipCopy: true}
}

// ZenSNoFlushConfig is ZenS with all flush instructions removed.
func ZenSNoFlushConfig() Config {
	c := ZenSConfig()
	c.Name = "ZenS (No Flush)"
	c.Flush = FlushNone
	return c
}

// TableSpec declares one table at engine creation; it is persisted in the
// catalog for recovery.
type TableSpec struct {
	// Name identifies the table.
	Name string
	// Schema is the fixed-width tuple layout.
	Schema *layout.Schema
	// Capacity is the maximum number of live tuples. Out-of-place engines
	// additionally reserve VersionHeadroom× slots for stale versions.
	Capacity uint64
	// KeyCol is the schema column (Uint64) holding the primary index key;
	// recovery uses it to rebuild DRAM indexes from payloads.
	KeyCol int
	// IndexKind selects hash (point lookups) or btree (ordered scans) for
	// the primary index.
	IndexKind index.Kind
	// SecondaryCol, when > 0, adds a secondary btree on that Uint64
	// column (column 0 — conventionally the primary key — cannot carry a
	// secondary). Secondary keys must be unique: pack a row uniquifier into
	// the low bits. Zero disables.
	SecondaryCol int
}
