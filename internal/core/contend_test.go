package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"falcon/internal/cc"
	"falcon/internal/obs"
)

// contendHotKey is the planted hot key every writer hammers; the observatory
// must attribute the bulk of the conflicts to it.
const contendHotKey = 3

// newContendEngine builds a preloaded kv engine with the contention
// observatory armed: 256 keys inserted in free-running mode, clocks and
// counters reset, then SetContend while quiescent.
func newContendEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := newKVEngine(t, cfg)
	tbl := e.Table("kv")
	s := tbl.Schema()
	for k := uint64(0); k < 256; k++ {
		if err := e.Run(0, func(tx *Txn) error {
			return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.ResetClocks()
	e.ResetCounters()
	e.SetContend(e.NewObservatory())
	return e
}

// contendHotKeyLoop is one worker's share of the planted-hot-key workload:
// mostly read-modify-writes of the hot key (guaranteed write-write contention
// under every CC algorithm), with uniform cold reads mixed in so the
// popularity buckets separate hot from cold. The Gosched between read and
// write parks the goroutine mid-transaction so the window overlaps other
// workers even on a single-CPU host.
func contendHotKeyLoop(e *Engine, w, iters int) {
	tbl := e.Table("kv")
	s := tbl.Schema()
	rng := rand.New(rand.NewSource(int64(w)*104729 + 7))
	buf := make([]byte, s.TupleSize())
	for i := 0; i < iters; i++ {
		if i%4 != 3 {
			var v [8]byte
			v[0] = byte(i)
			v[1] = byte(w)
			_ = e.Run(w, func(tx *Txn) error {
				if err := tx.ReadForUpdate(tbl, contendHotKey, buf); err != nil {
					return err
				}
				runtime.Gosched()
				return tx.UpdateField(tbl, contendHotKey, 1, v[:])
			})
		} else {
			key := uint64(rng.Intn(256))
			_ = e.RunRO(w, func(tx *Txn) error { return tx.Read(tbl, key, buf) })
		}
	}
}

// checkHotKeyReport asserts the observatory saw the planted contention and
// pinned it on the kv table at a high popularity bucket.
func checkHotKeyReport(t *testing.T, rep *obs.ContentionStats) {
	t.Helper()
	if rep == nil {
		t.Fatal("armed engine returned no contention report")
	}
	if rep.TotalConflicts() == 0 {
		t.Fatal("planted hot key produced zero attributed conflicts")
	}
	top := rep.Attribution[0]
	if top.Table != "kv" {
		t.Fatalf("top conflict row attributed to table %q, want kv", top.Table)
	}
	if top.Kind == "" {
		t.Error("top conflict row has no conflict kind")
	}
	// Popularity is bucketed at conflict time, so the hot key's conflicts
	// spread across buckets as its touch count climbs — but each worker
	// touches it ~100 times vs ~1 per cold key, so conflicts must reach a
	// bucket no cold key can (cold keys stay in buckets 0-2).
	maxBucket := 0
	for _, row := range rep.Attribution {
		if row.Table == "kv" && row.PopBucket > maxBucket {
			maxBucket = row.PopBucket
		}
	}
	if maxBucket < 3 {
		t.Errorf("hottest conflict bucket is %d; the planted hot key should push conflicts to bucket >= 3", maxBucket)
	}
}

// TestContendPlantedHotKeyAllCC runs the planted-hot-key workload
// free-running under every CC algorithm and checks the attribution report.
func TestContendPlantedHotKeyAllCC(t *testing.T) {
	for _, algo := range cc.All {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := FalconConfig()
			cfg.CC = algo
			e := newContendEngine(t, cfg)
			// A fully serialized host schedule can dodge conflicts; the
			// observatory accumulates, so re-run until contention appears.
			for round := 0; round < 3; round++ {
				var wg sync.WaitGroup
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						contendHotKeyLoop(e, w, 200)
					}(w)
				}
				wg.Wait()
				if e.Contend().Report().TotalConflicts() > 0 {
					break
				}
			}
			checkHotKeyReport(t, e.Contend().Report())
			e.SetContend(nil)
		})
	}
}

// contendGroupReport runs the planted-hot-key workload in deterministic group
// mode at the given GOMAXPROCS and returns the JSON-marshalled contention
// report. Group mode fully orders the schedule, so the report — conflict
// counts, wait nanos, heat rings, wait-for edges — must not depend on procs.
func contendGroupReport(t *testing.T, algo cc.Algo, procs int) ([]byte, *obs.ContentionStats) {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	cfg := FalconConfig()
	cfg.CC = algo
	e := newContendEngine(t, cfg)
	const workers = 4
	e.EnterGroup()
	e.Group().Begin(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer e.Group().Leave()
			contendHotKeyLoop(e, w, 120)
		}(w)
	}
	wg.Wait()
	e.LeaveGroup()
	rep := e.Contend().Report()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	e.SetContend(nil)
	return b, rep
}

// TestContendGroupModeDeterministicAllCC checks the observatory's
// determinism contract: in group mode the full contention report is
// byte-identical across host schedules (GOMAXPROCS 1 vs 4) for every CC
// algorithm, and the planted hot key is still attributed.
func TestContendGroupModeDeterministicAllCC(t *testing.T) {
	for _, algo := range cc.All {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			serial, rep := contendGroupReport(t, algo, 1)
			par, _ := contendGroupReport(t, algo, 4)
			if !bytes.Equal(serial, par) {
				t.Fatalf("contention report differs across host schedules (GOMAXPROCS 1 vs 4):\n%s\n--- vs ---\n%s", serial, par)
			}
			checkHotKeyReport(t, rep)
		})
	}
}

// TestContendDisarmedOverhead gates the nil-pointer degradation cost: an
// engine that was armed and then disarmed must run within 2% of one that
// was never armed. Host-time measurement, so it interleaves min-of-N rounds
// (min damps scheduler noise) and retries before failing.
func TestContendDisarmedOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("host-time gate; skipped under -short")
	}
	build := func(arm bool) *Engine {
		e := newKVEngine(t, FalconConfig())
		tbl := e.Table("kv")
		s := tbl.Schema()
		for k := uint64(0); k < 256; k++ {
			if err := e.Run(0, func(tx *Txn) error {
				return tx.Insert(tbl, k, encodeKV(s, k, int64(k)))
			}); err != nil {
				t.Fatal(err)
			}
		}
		if arm {
			e.SetContend(e.NewObservatory())
			e.SetContend(nil) // the disarmed state under test
		}
		return e
	}
	measure := func(e *Engine, txns int) time.Duration {
		tbl := e.Table("kv")
		var v [8]byte
		start := time.Now()
		for i := 0; i < txns; i++ {
			v[0] = byte(i)
			_ = e.Run(0, func(tx *Txn) error {
				return tx.UpdateField(tbl, uint64(i%256), 1, v[:])
			})
		}
		return time.Since(start)
	}
	never, disarmed := build(false), build(true)
	const txns, rounds, attempts = 4000, 6, 5
	measure(never, txns) // warm both paths before timing
	measure(disarmed, txns)
	worst := 0.0
	for a := 0; a < attempts; a++ {
		minNever, minDisarmed := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			if d := measure(never, txns); d < minNever {
				minNever = d
			}
			if d := measure(disarmed, txns); d < minDisarmed {
				minDisarmed = d
			}
		}
		ratio := float64(minDisarmed) / float64(minNever)
		if ratio <= 1.02 {
			return
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Errorf("disarmed observatory costs %.1f%% over never-armed (gate: 2%%)", (worst-1)*100)
}
