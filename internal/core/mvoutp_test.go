package core

import (
	"sync"
	"testing"

	"falcon/internal/cc"
	"falcon/internal/index"
	"falcon/internal/pmem"
)

// TestOutpMVSnapshotChurn exercises snapshot readers racing out-of-place
// writers (the chain-migration path) — a regression test for the stale
// invalidated-slot livelock.
func TestOutpMVSnapshotChurn(t *testing.T) {
	for _, algo := range []cc.Algo{cc.MV2PL, cc.MVTO, cc.MVOCC} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := OutpConfig()
			cfg.CC = algo
			cfg.Threads = 4
			sys := pmem.NewSystem(pmem.Config{DeviceBytes: 256 << 20})
			e, err := New(sys, cfg, kvSpec(index.Hash, 2000))
			if err != nil {
				t.Fatal(err)
			}
			tbl := e.Table("kv")
			s := tbl.Schema()
			for k := uint64(0); k < 16; k++ {
				if err := e.Run(int(k)%4, func(tx *Txn) error {
					return tx.Insert(tbl, k, encodeKV(s, k, 1))
				}); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					buf := make([]byte, s.TupleSize())
					for i := 0; i < 500; i++ {
						k := uint64(i % 16)
						var err error
						if w%2 == 0 { // writer
							err = e.Run(w, func(tx *Txn) error {
								var b [8]byte
								layoutPutI64(b[:], int64(i))
								return tx.UpdateField(tbl, k, 1, b[:])
							})
						} else { // snapshot reader
							err = e.RunRO(w, func(tx *Txn) error {
								return tx.Read(tbl, k, buf)
							})
						}
						if err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
		})
	}
}
