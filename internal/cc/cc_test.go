package cc

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAlgoProperties(t *testing.T) {
	if TwoPL.MultiVersion() || OCC.MultiVersion() {
		t.Error("single-version algo reports MultiVersion")
	}
	if !MV2PL.MultiVersion() || !MVOCC.MultiVersion() {
		t.Error("MV algo does not report MultiVersion")
	}
	if MV2PL.Base() != TwoPL || MVTO.Base() != TO || MVOCC.Base() != OCC {
		t.Error("Base mapping wrong")
	}
	if OCC.Base() != OCC {
		t.Error("Base of single-version algo must be itself")
	}
	if len(All) != 6 {
		t.Errorf("All has %d algorithms", len(All))
	}
}

func TestTIDGenUniqueMonotonePerThread(t *testing.T) {
	var g TIDGen
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		tid := g.Next(3)
		if tid <= prev {
			t.Fatal("TIDs not monotone")
		}
		if tid&0xFF != 3 {
			t.Fatalf("thread id not embedded: %x", tid)
		}
		prev = tid
	}
}

func TestTIDGenConcurrentUnique(t *testing.T) {
	var g TIDGen
	const workers, per = 8, 1000
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out[w] = append(out[w], g.Next(w))
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, list := range out {
		for _, tid := range list {
			if seen[tid] {
				t.Fatalf("duplicate TID %x", tid)
			}
			seen[tid] = true
		}
	}
}

func TestTIDGenRestore(t *testing.T) {
	var g TIDGen
	g.Restore(5000 << 8)
	if tid := g.Next(0); tid <= 5000<<8 {
		t.Fatalf("post-restore TID %x not beyond restored point", tid)
	}
	// Restore backwards must not rewind.
	g.Restore(10 << 8)
	if tid := g.Next(0); tid <= 5000<<8 {
		t.Fatal("Restore rewound the clock")
	}
}

func TestActiveSetMin(t *testing.T) {
	s := NewActiveSet(4)
	if s.Min() != math.MaxUint64 {
		t.Fatal("empty set should report MaxUint64")
	}
	s.Set(0, 100)
	s.Set(2, 50)
	if s.Min() != 50 {
		t.Fatalf("Min = %d", s.Min())
	}
	s.Clear(2)
	if s.Min() != 100 {
		t.Fatalf("Min after clear = %d", s.Min())
	}
}

func TestTwoPLReadersBlockWriters(t *testing.T) {
	var w atomic.Uint64
	if !TryReadLock2PL(&w) || !TryReadLock2PL(&w) {
		t.Fatal("shared read locks failed")
	}
	if TryWriteLock2PL(&w) {
		t.Fatal("write lock acquired over readers")
	}
	ReadUnlock2PL(&w)
	if TryUpgrade2PL(&w) != true {
		t.Fatal("sole reader failed to upgrade")
	}
	if TryReadLock2PL(&w) {
		t.Fatal("read lock acquired over writer")
	}
	WriteUnlock2PL(&w, 42)
	if WTS2PL(w.Load()) != 42 || Locked(w.Load()) {
		t.Fatalf("word after unlock = %x", w.Load())
	}
}

func TestTwoPLUpgradeFailsWithTwoReaders(t *testing.T) {
	var w atomic.Uint64
	TryReadLock2PL(&w)
	TryReadLock2PL(&w)
	if TryUpgrade2PL(&w) {
		t.Fatal("upgrade with a second reader present")
	}
}

func TestTwoPLWriterExcludesWriter(t *testing.T) {
	var w atomic.Uint64
	if !TryWriteLock2PL(&w) {
		t.Fatal("first write lock failed")
	}
	if TryWriteLock2PL(&w) {
		t.Fatal("double write lock")
	}
	WriteUnlock2PLKeepTS(&w)
	if Locked(w.Load()) {
		t.Fatal("unlock left lock bit")
	}
}

func TestTOLockPreservesVersionOnAbort(t *testing.T) {
	var w atomic.Uint64
	w.Store(77)
	pre, ok := TryLockTO(&w)
	if !ok || pre != 77 {
		t.Fatalf("lock = %d,%v", pre, ok)
	}
	if _, ok := TryLockTO(&w); ok {
		t.Fatal("double TO lock")
	}
	UnlockTOKeep(&w, pre)
	if w.Load() != 77 {
		t.Fatalf("abort path changed version to %d", w.Load())
	}
	pre, _ = TryLockTO(&w)
	UnlockTO(&w, 99)
	if WTSTO(w.Load()) != 99 {
		t.Fatalf("commit path version = %d", w.Load())
	}
	_ = pre
}

func TestMaxTSMonotone(t *testing.T) {
	var w atomic.Uint64
	MaxTS(&w, 10)
	MaxTS(&w, 5)
	if w.Load() != 10 {
		t.Fatalf("MaxTS regressed to %d", w.Load())
	}
	MaxTS(&w, 20)
	if w.Load() != 20 {
		t.Fatalf("MaxTS = %d", w.Load())
	}
}

func TestConcurrentLockStress(t *testing.T) {
	var w atomic.Uint64
	var holders atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if TryWriteLock2PL(&w) {
					if holders.Add(1) != 1 {
						t.Error("two writers inside the lock")
					}
					holders.Add(-1)
					WriteUnlock2PLKeepTS(&w)
				} else if TryReadLock2PL(&w) {
					if w.Load()&LockBit != 0 {
						t.Error("reader co-resident with writer")
					}
					ReadUnlock2PL(&w)
				}
			}
		}()
	}
	wg.Wait()
}
