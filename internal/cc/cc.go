// Package cc implements the concurrency-control algorithms Falcon supports
// (paper §5.2.1): two-phase locking with a no-wait policy, timestamp
// ordering, optimistic concurrency control, and the multi-version variants
// MV2PL, MVTO and MVOCC.
//
// Every algorithm here resolves conflicts by abort-and-retry rather than
// blocking. That matters for the virtual-time methodology: contention cost
// appears as retried (charged) work, never as an uncharged lock wait.
//
// The algorithms operate on the 8-byte shadow metadata word of each tuple
// slot (heap.Meta). Encodings:
//
//	2PL:    bit 63 = writer lock · bits 48..62 = reader count · bits 0..47 = writer TID
//	TO/OCC: bit 63 = writer lock · bits 0..62 = writer TID (the "version")
//
// The durable copy of the writer timestamp lives in the tuple header in NVM
// and is maintained by the engine at apply time; the shadow word is the
// working copy that supports atomic CAS.
package cc

import (
	"math"
	"sync/atomic"
)

// Algo selects a concurrency-control algorithm.
type Algo uint8

const (
	// TwoPL is two-phase locking with no-wait deadlock avoidance.
	TwoPL Algo = iota
	// TO is timestamp ordering.
	TO
	// OCC is optimistic concurrency control (Silo-style validation).
	OCC
	// MV2PL combines 2PL read-write transactions with snapshot reads.
	MV2PL
	// MVTO combines TO read-write transactions with snapshot reads.
	MVTO
	// MVOCC combines OCC read-write transactions with snapshot reads.
	MVOCC
)

// All enumerates every supported algorithm, in the order the paper's
// Figure 7 reports them.
var All = []Algo{TwoPL, TO, OCC, MV2PL, MVTO, MVOCC}

func (a Algo) String() string {
	switch a {
	case TwoPL:
		return "2PL"
	case TO:
		return "TO"
	case OCC:
		return "OCC"
	case MV2PL:
		return "MV2PL"
	case MVTO:
		return "MVTO"
	case MVOCC:
		return "MVOCC"
	default:
		return "cc?"
	}
}

// MultiVersion reports whether the algorithm keeps old versions for
// non-blocking read-only transactions.
func (a Algo) MultiVersion() bool { return a >= MV2PL }

// Base returns the single-version algorithm driving read-write transactions.
func (a Algo) Base() Algo {
	switch a {
	case MV2PL:
		return TwoPL
	case MVTO:
		return TO
	case MVOCC:
		return OCC
	default:
		return a
	}
}

// Shadow-word layout.
const (
	// LockBit marks a writer holding the tuple.
	LockBit = uint64(1) << 63

	readerShift = 48
	readerOne   = uint64(1) << readerShift
	readerMask  = uint64(0x7FFF) << readerShift
	// WTSMask2PL extracts the writer TID under the 2PL encoding.
	WTSMask2PL = readerOne - 1
	// WTSMaskTO extracts the writer TID under the TO/OCC encoding.
	WTSMaskTO = LockBit - 1
)

// HolderTID extracts the writer TID encoded in a shadow word under the
// algorithm's layout — the conflict observatory uses it to attribute a
// failed lock or version check to the holding transaction. Under 2PL the
// word carries a meaningful writer TID only while write-locked; for an
// unlocked word the returned value is the last writer's timestamp, which is
// still the right attribution for version conflicts.
func HolderTID(a Algo, word uint64) uint64 {
	if a.Base() == TwoPL {
		return word & WTSMask2PL
	}
	return word & WTSMaskTO
}

// TIDWorker recovers the worker thread id from a TID ({seq << 8 | thread},
// see TIDGen).
func TIDWorker(tid uint64) int { return int(tid & 0xFF) }

// TIDGen issues transaction IDs. Following the paper's footnote, a TID is
// {timestamp << 8 | thread_id}: the high bits come from a monotone clock, the
// low byte from the worker thread, so two threads can never draw the same
// TID. This reproduction uses a logical clock rather than clock_gettime — the
// paper itself notes that recovery re-derives a monotone clock from the logs
// when the hardware clock is untrustworthy, which is exactly what Restore
// implements.
type TIDGen struct {
	clock atomic.Uint64
}

// Next returns a fresh TID for thread.
func (g *TIDGen) Next(thread int) uint64 {
	return g.clock.Add(1)<<8 | uint64(thread&0xFF)
}

// Seq returns the current clock value: the sequence part (TID >> 8) of the
// most recently issued TID, 0 if none. Deterministic group mode uses it to
// base virtual-time TID sequences above every previously issued TID.
func (g *TIDGen) Seq() uint64 { return g.clock.Load() }

// Restore fast-forwards the clock so that every future TID exceeds seenTID.
// Recovery calls this with the largest TID found in the logs.
func (g *TIDGen) Restore(seenTID uint64) {
	seq := seenTID >> 8
	for {
		cur := g.clock.Load()
		if cur >= seq || g.clock.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// ActiveSet tracks the TID each worker is currently running, for MVCC
// visibility-horizon and garbage-collection decisions (§5.4).
type ActiveSet struct {
	slots []paddedU64
}

type paddedU64 struct {
	v atomic.Uint64
	_ [7]uint64
}

// NewActiveSet creates a registry for nthreads workers.
func NewActiveSet(nthreads int) *ActiveSet {
	return &ActiveSet{slots: make([]paddedU64, nthreads)}
}

// Set registers thread as running tid.
func (s *ActiveSet) Set(thread int, tid uint64) { s.slots[thread].v.Store(tid) }

// Clear unregisters thread.
func (s *ActiveSet) Clear(thread int) { s.slots[thread].v.Store(0) }

// Min returns the smallest running TID, or math.MaxUint64 when no
// transaction is active. Versions and deleted tuples with timestamps below
// Min are invisible to every current and future transaction.
func (s *ActiveSet) Min() uint64 {
	min := uint64(math.MaxUint64)
	for i := range s.slots {
		if v := s.slots[i].v.Load(); v != 0 && v < min {
			min = v
		}
	}
	return min
}
