package cc

import "sync/atomic"

// Primitive lock/timestamp operations on a tuple's shadow metadata word.
// All operations are lock-free CAS loops with no-wait semantics: they fail
// immediately on conflict instead of blocking.

// --- 2PL encoding ---

// TryReadLock2PL increments the reader count unless a writer holds the word.
func TryReadLock2PL(w *atomic.Uint64) bool {
	for {
		v := w.Load()
		if v&LockBit != 0 {
			return false
		}
		if w.CompareAndSwap(v, v+readerOne) {
			return true
		}
	}
}

// ReadUnlock2PL releases one read lock.
func ReadUnlock2PL(w *atomic.Uint64) {
	w.Add(^uint64(readerOne - 1)) // subtract readerOne
}

// TryWriteLock2PL acquires the writer bit when there are no readers and no
// writer.
func TryWriteLock2PL(w *atomic.Uint64) bool {
	for {
		v := w.Load()
		if v&(LockBit|readerMask) != 0 {
			return false
		}
		if w.CompareAndSwap(v, v|LockBit) {
			return true
		}
	}
}

// TryUpgrade2PL converts a read lock into a write lock when the caller is
// the sole reader.
func TryUpgrade2PL(w *atomic.Uint64) bool {
	for {
		v := w.Load()
		if v&LockBit != 0 || v&readerMask != readerOne {
			return false
		}
		if w.CompareAndSwap(v, (v-readerOne)|LockBit) {
			return true
		}
	}
}

// WriteUnlock2PL clears the writer bit and installs the new writer TID.
func WriteUnlock2PL(w *atomic.Uint64, newWTS uint64) {
	w.Store(newWTS & WTSMask2PL)
}

// WriteUnlock2PLKeepTS clears the writer bit, keeping the old TID (abort
// path).
func WriteUnlock2PLKeepTS(w *atomic.Uint64) {
	for {
		v := w.Load()
		if w.CompareAndSwap(v, v&^LockBit) {
			return
		}
	}
}

// WTS2PL extracts the writer TID from a 2PL word.
func WTS2PL(v uint64) uint64 { return v & WTSMask2PL }

// --- TO / OCC encoding ---

// TryLockTO sets the lock bit; it fails when already locked. It returns the
// pre-lock word (the current version) on success.
func TryLockTO(w *atomic.Uint64) (uint64, bool) {
	for {
		v := w.Load()
		if v&LockBit != 0 {
			return 0, false
		}
		if w.CompareAndSwap(v, v|LockBit) {
			return v, true
		}
	}
}

// UnlockTO clears the lock bit, installing the new writer TID (commit) .
func UnlockTO(w *atomic.Uint64, newWTS uint64) {
	w.Store(newWTS & WTSMaskTO)
}

// UnlockTOKeep clears the lock bit, restoring the pre-lock version (abort).
func UnlockTOKeep(w *atomic.Uint64, preLock uint64) {
	w.Store(preLock & WTSMaskTO)
}

// WTSTO extracts the writer TID from a TO/OCC word.
func WTSTO(v uint64) uint64 { return v & WTSMaskTO }

// Locked reports whether a writer holds the word (any encoding).
func Locked(v uint64) bool { return v&LockBit != 0 }

// MaxTS advances a read-timestamp word to at least ts.
func MaxTS(w *atomic.Uint64, ts uint64) {
	for {
		v := w.Load()
		if v >= ts || w.CompareAndSwap(v, ts) {
			return
		}
	}
}
