package crashtest

import (
	"encoding/binary"
	"testing"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/pmem"
	"falcon/internal/wal"
)

func seedsForTest(t *testing.T) int {
	if testing.Short() {
		return 12
	}
	return 200
}

// TestCrashMatrix is the acceptance gate: every engine preset under eADR and
// ADR must survive seeded mid-transaction crashes — including torn-write and
// flipped-byte corruption seeds under ADR — with its oracle intact.
func TestCrashMatrix(t *testing.T) {
	seeds := seedsForTest(t)
	for _, cell := range Matrix() {
		cell := cell
		t.Run(cell.String(), func(t *testing.T) {
			t.Parallel()
			res := RunCell(cell, Options{Seeds: seeds})
			if res.Crashes == 0 {
				t.Errorf("no injected crash ever fired across %d seeds", seeds)
			}
			if cell.Mode == pmem.ADR && res.Torn == 0 {
				t.Errorf("no torn-write seeds ran under ADR")
			}
			if cell.Mode == pmem.ADR && res.Corrupt == 0 {
				t.Errorf("no corruption seeds ran under ADR")
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s\n  repro: %s", v.Seed, v.Detail, cell.Repro(v.Seed))
			}
		})
	}
}

func matrixCell(t *testing.T, name string, mode pmem.Mode) Cell {
	t.Helper()
	for _, c := range Matrix() {
		if c.Config.Name == name && c.Mode == mode {
			return c
		}
	}
	t.Fatalf("no matrix cell %q / %s", name, ModeName(mode))
	return Cell{}
}

// TestGroupCommitMidEpochCrash pins the crash semantics of leader-based group
// commit. Under ADR an acknowledged transaction sits in an unsealed durability
// epoch until its leader seals — a crash landing in that window (including
// mid-seal, between the record-train flush and the marker publish) must drop
// the whole epoch tail, never a prefix of a transaction, and the containment
// oracle must hold throughout. The recovery reports prove the window was
// actually hit: DroppedUnsealed counts published records gated out by the
// recovered epoch marker. Under eADR the publish point is already durable, so
// the same seeds must replay everything (zero drops) against the strict
// oracle.
//
// The evidence cell is the flushed-log preset: its seal trains force record
// bytes to the media, so an unsealed record is visible to the recovery
// scanner. Small-log-window presets (Falcon) keep records cached by design —
// their unsealed records vanish wholesale under ADR instead of being gated,
// which the matrix covers but which leaves no drop counter to assert on.
func TestGroupCommitMidEpochCrash(t *testing.T) {
	seeds := seedsForTest(t)

	t.Run("ADR", func(t *testing.T) {
		t.Parallel()
		cell := matrixCell(t, "Inp+GC", pmem.ADR)
		if cell.Strict() {
			t.Fatalf("ADR group commit acks before the epoch seals; it must use the containment oracle")
		}
		res := RunCell(cell, Options{Seeds: seeds})
		for _, v := range res.Violations {
			t.Errorf("seed %d: %s\n  repro: %s", v.Seed, v.Detail, cell.Repro(v.Seed))
		}
		if res.Crashes == 0 {
			t.Fatalf("no injected crash fired across %d seeds", seeds)
		}
		if res.DroppedUnsealed == 0 {
			t.Errorf("no seed crashed mid-epoch across %d seeds: recovery never dropped an unsealed record, so the group-commit crash window went unexercised", seeds)
		}
	})

	t.Run("eADR", func(t *testing.T) {
		t.Parallel()
		cell := matrixCell(t, "Inp+GC", pmem.EADR)
		if !cell.Strict() {
			t.Fatalf("eADR group commit is physically durable at publish; it must be checked strictly")
		}
		res := RunCell(cell, Options{Seeds: seeds})
		for _, v := range res.Violations {
			t.Errorf("seed %d: %s\n  repro: %s", v.Seed, v.Detail, cell.Repro(v.Seed))
		}
		if res.DroppedUnsealed != 0 {
			t.Errorf("eADR recovery dropped %d published records; the persistent cache must make every publish durable", res.DroppedUnsealed)
		}
	})
}

func presetByName(t *testing.T, name string) core.Config {
	t.Helper()
	for _, cfg := range bench.EngineConfigs() {
		if cfg.Name == name {
			return cfg
		}
	}
	t.Fatalf("no preset %q", name)
	return core.Config{}
}

// findLastCommittedUpdate scans the log windows on the raw media for the
// committed record with the highest TID whose first op is an update, and
// returns the media offset of that op's first data byte. Targeting the
// highest TID guarantees no later record re-writes the same row during
// replay, so a flipped byte here must surface (absent checksums).
func findLastCommittedUpdate(dev *pmem.Device, ecfg core.Config, winBase uint64) (off uint64, ok bool) {
	const (
		hdrBytes   = 64 // record header: state, tid, counts, crc
		opHdrBytes = 28 // op header: type, table, pad, slot, key, off, len
	)
	perThread := wal.BytesNeeded(ecfg.Window)
	var bestTID uint64
	for th := 0; th < ecfg.Threads; th++ {
		for i := 0; i < ecfg.Window.Slots; i++ {
			slotBase := winBase + uint64(th)*perThread + uint64(i)*uint64(ecfg.Window.SlotBytes)
			var hdr [hdrBytes]byte
			dev.RawRead(slotBase, hdr[:])
			state := binary.LittleEndian.Uint64(hdr[0:])
			tid := binary.LittleEndian.Uint64(hdr[8:])
			nops := binary.LittleEndian.Uint32(hdr[16:])
			if state != wal.StateCommitted || nops == 0 {
				continue
			}
			var op [opHdrBytes]byte
			dev.RawRead(slotBase+hdrBytes, op[:])
			dataLen := binary.LittleEndian.Uint32(op[24:])
			if op[0] != wal.OpUpdate || dataLen == 0 {
				continue
			}
			if tid > bestTID {
				bestTID = tid
				off = slotBase + hdrBytes + opHdrBytes
				ok = true
			}
		}
	}
	return off, ok
}

// TestChecksumCatchesFlippedRecord corrupts one committed, media-resident
// log record post-crash and checks both sides of the checksum guarantee:
// with verification on, the record is classified corrupt and skipped without
// violating containment; with verification disabled, the garbage replays and
// the oracle demonstrably fails.
func TestChecksumCatchesFlippedRecord(t *testing.T) {
	cell := Cell{Config: presetByName(t, "Inp"), Mode: pmem.ADR}

	run := func(disable bool) (violations []string, corrupt int) {
		e, m, err := buildCell(cell)
		if err != nil {
			t.Fatal(err)
		}
		if crashed := runWorkload(e, m, genOps(1, txnBudget, cellThreads)); crashed {
			t.Fatal("unexpected crash without a fault plan")
		}
		ecfg := e.Config() // defaults applied: window geometry resolved
		winBase, _ := e.LogWindowRange()
		sys2 := e.System().Crash()

		off, ok := findLastCommittedUpdate(sys2.Dev, ecfg, winBase)
		if !ok {
			t.Fatal("no committed update record found in the window")
		}
		var b [1]byte
		sys2.Dev.RawRead(off, b[:])
		b[0] ^= 0x40
		sys2.Dev.RawWrite(off, b[:])

		if disable {
			wal.DisableChecksumVerify = true
			defer func() { wal.DisableChecksumVerify = false }()
		}
		e2, rep, err := core.Recover(sys2, cellConfig(cell.Config))
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		// A deliberately corrupted record voids exactness for its rows; the
		// containment oracle is what the checksum must preserve — and what
		// its absence must break.
		return verify(e2, m, false), rep.CorruptRecords
	}

	viol, corrupt := run(false)
	if corrupt == 0 {
		t.Errorf("checksum verification did not flag the flipped record")
	}
	if len(viol) != 0 {
		t.Errorf("containment violated with checksums on: %v", viol)
	}

	viol, _ = run(true)
	if len(viol) == 0 {
		t.Errorf("checksum-disabled recovery replayed a corrupt record without any oracle violation — the checksum is not load-bearing")
	}
}
