package crashtest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/obs"
	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// Cell is one point of the crash matrix: an engine preset under a
// persistence mode.
type Cell struct {
	Config core.Config
	Mode   pmem.Mode
}

// ModeName renders a pmem.Mode for cell labels and CLI flags.
func ModeName(m pmem.Mode) string {
	if m == pmem.EADR {
		return "eadr"
	}
	return "adr"
}

func (c Cell) String() string {
	return fmt.Sprintf("%s/%s", c.Config.Name, ModeName(c.Mode))
}

// Repro returns the one-line command that re-runs exactly this seed.
func (c Cell) Repro(seed uint64) string {
	return fmt.Sprintf("go run ./cmd/falcon-recovery -faults 1 -seed %d -preset %q -mode %s",
		seed, c.Config.Name, ModeName(c.Mode))
}

// Strict reports whether the cell promises strict durable linearizability:
// every acknowledged transaction survives the crash exactly. Under eADR the
// cache is in the persistence domain, so every preset is strict — including
// group commit, whose publish point is then physically durable. Under ADR
// only engines that flush their durability chain qualify: out-of-place
// engines with flushed version data and markers, and in-place engines with
// flushed logs plus flushed tuple data (whose log windows are deep enough —
// txnBudget < Threads × slots — that no acknowledged record is overwritten
// before the crash). Group commit under ADR acknowledges at the publish
// point, before the durability epoch seals, so a crash mid-epoch legitimately
// drops acknowledged tail transactions (per-epoch all-or-nothing) — those
// cells are checked against the weaker containment oracle. Everything else
// is containment too.
func (c Cell) Strict() bool {
	if c.Mode == pmem.EADR {
		return true
	}
	if c.Config.GroupCommit {
		return false
	}
	if c.Config.Update == core.OutOfPlace {
		return c.Config.Flush != core.FlushNone
	}
	return c.Config.Log == core.FlushedLog && c.Config.Flush == core.FlushAll
}

// Matrix returns the full preset × mode grid, plus a group-commit variant of
// every in-place preset (out-of-place engines have no redo log to coalesce).
func Matrix() []Cell {
	var cells []Cell
	for _, ecfg := range bench.EngineConfigs() {
		for _, mode := range []pmem.Mode{pmem.EADR, pmem.ADR} {
			cells = append(cells, Cell{Config: ecfg, Mode: mode})
		}
		if ecfg.Update == core.InPlace {
			gcfg := ecfg
			gcfg.GroupCommit = true
			gcfg.Name += "+GC"
			for _, mode := range []pmem.Mode{pmem.EADR, pmem.ADR} {
				cells = append(cells, Cell{Config: gcfg, Mode: mode})
			}
		}
	}
	return cells
}

// Options configures a cell run.
type Options struct {
	// Seeds is the number of crash seeds to run (default 1).
	Seeds int
	// FirstSeed is the first seed value (default 1); seeds are
	// FirstSeed..FirstSeed+Seeds-1 so a repro can name one directly.
	FirstSeed uint64
	// WorkloadSeed varies the transaction stream (default 1).
	WorkloadSeed uint64
	// TraceDir, when set, arms an unsampled tracer on every seed's engine
	// and, for seeds that violate their oracle, writes the pre-crash Chrome
	// trace there — the transaction history leading into the failing crash,
	// next to the one-line repro.
	TraceDir string
}

func (o Options) withDefaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 1
	}
	if o.FirstSeed == 0 {
		o.FirstSeed = 1
	}
	if o.WorkloadSeed == 0 {
		o.WorkloadSeed = 1
	}
	return o
}

// Violation is one oracle failure, tagged with the seed that produced it.
type Violation struct {
	Seed   uint64
	Detail string
	// TracePath is the pre-crash trace dump for this seed, present only when
	// Options.TraceDir was set and the dump was written.
	TracePath string
}

// CellResult summarizes one cell's run across all its seeds.
type CellResult struct {
	Cell    Cell
	Strict  bool
	Seeds   int
	Crashes int // seeds whose injected crash actually fired
	Torn    int // seeds run with torn-write injection
	Corrupt int // seeds run with flipped-byte corruption

	// DetectedTorn / DetectedCorrupt sum the recovery reports' taxonomy
	// counters across seeds — evidence the WAL scanner is classifying.
	DetectedTorn    int
	DetectedCorrupt int
	// DroppedUnsealed sums group-commit records dropped for sitting in an
	// unsealed durability epoch — evidence the mid-epoch crash window
	// (between the leader's train flush and the marker publish) was hit.
	DroppedUnsealed int

	Violations []Violation
}

// Passed reports whether every seed satisfied its oracle.
func (r CellResult) Passed() bool { return len(r.Violations) == 0 }

// cellConfig applies the harness geometry to a preset. Both the initial
// build and the post-crash Recover must use the identical config.
func cellConfig(preset core.Config) core.Config {
	cfg := preset
	cfg.Threads = cellThreads
	cfg.Window.SlotBytes = 1024
	cfg.Window.OverflowBytes = 8 << 10
	cfg.DRAMBytes = 4 << 20 // enough for the tiny indexes; keeps builds cheap
	if cfg.TupleCacheBytes > 1<<20 {
		cfg.TupleCacheBytes = 1 << 20
	}
	return cfg
}

func cellSpecs() []core.TableSpec {
	return []core.TableSpec{
		{Name: "kv", Schema: kvSchema(), Capacity: 2048, KeyCol: 0, IndexKind: index.Hash},
		{Name: "acct", Schema: acctSchema(), Capacity: 256, KeyCol: 0, IndexKind: index.Hash},
	}
}

// buildCell constructs a fresh engine for the cell, bulk-loads the initial
// rows, and syncs everything to the media. The fault plan must be armed only
// after this returns, so injected crashes always land mid-workload.
func buildCell(cell Cell) (*core.Engine, *model, error) {
	cfg := cellConfig(cell.Config)
	specs := cellSpecs()
	sys := pmem.NewSystem(pmem.Config{
		Mode:        cell.Mode,
		DeviceBytes: bench.EstimateDeviceBytes(cfg, specs),
		// A small cache and buffer force evictions and drains during the
		// 48-txn workload, so those fault events exist to crash on.
		CacheBytes:    64 << 10,
		CacheWays:     8,
		XPBufferBytes: 8 << 10,
		XPBanks:       2,
	})
	e, err := core.New(sys, cfg, specs)
	if err != nil {
		return nil, nil, fmt.Errorf("build %s: %w", cell, err)
	}
	m := newModel()
	if err := loadCell(e, m); err != nil {
		return nil, nil, fmt.Errorf("load %s: %w", cell, err)
	}
	e.Sync(sim.NewClock())
	return e, m, nil
}

func loadCell(e *core.Engine, m *model) error {
	type row struct {
		table string
		key   uint64
		val   int64
	}
	var rows []row
	for k := uint64(1); k <= kvKeys; k++ {
		rows = append(rows, row{"kv", k, int64(k * 10)})
	}
	for k := uint64(1); k <= acctKeys; k++ {
		rows = append(rows, row{"acct", k, acctInitBal})
	}
	th := 0
	for _, r := range rows {
		tbl := e.Table(r.table)
		s := tbl.Schema()
		buf := make([]byte, s.TupleSize())
		s.PutUint64(buf, 0, r.key)
		s.PutInt64(buf, 1, r.val)
		h := tbl.Heap()
		slot, err := h.Alloc(nil, th, 0)
		if err != nil {
			return err
		}
		h.BulkInstall(slot, 0, buf)
		if err := tbl.BulkIndexInsert(r.key, slot); err != nil {
			return err
		}
		m.loadRow(cellKey{r.table, r.key}, r.val)
		th = (th + 1) % cellThreads
	}
	return nil
}

// applyTxn executes one generated op inside a transaction.
func applyTxn(tx *core.Txn, e *core.Engine, op txnOp) error {
	kv := e.Table("kv")
	acct := e.Table("acct")
	var b [8]byte
	switch op.kind {
	case opUpdate:
		binary.LittleEndian.PutUint64(b[:], uint64(op.val))
		return tx.UpdateField(kv, op.k1, 1, b[:])
	case opTransfer:
		s := acct.Schema()
		buf := make([]byte, s.TupleSize())
		if err := tx.Read(acct, op.k1, buf); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(b[:], uint64(s.GetInt64(buf, 1)-op.val))
		if err := tx.UpdateField(acct, op.k1, 1, b[:]); err != nil {
			return err
		}
		if err := tx.Read(acct, op.k2, buf); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(b[:], uint64(s.GetInt64(buf, 1)+op.val))
		return tx.UpdateField(acct, op.k2, 1, b[:])
	case opInsert:
		s := kv.Schema()
		buf := make([]byte, s.TupleSize())
		s.PutUint64(buf, 0, op.k1)
		s.PutInt64(buf, 1, op.val)
		return tx.Insert(kv, op.k1, buf)
	case opDelete:
		return tx.Delete(kv, op.k1)
	default: // opRollback
		binary.LittleEndian.PutUint64(b[:], uint64(op.val))
		if err := tx.UpdateField(kv, op.k1, 1, b[:]); err != nil {
			return err
		}
		return core.ErrRollback
	}
}

// execOne runs a single transaction, updating the model. It reports whether
// an injected crash fired during the attempt (leaving the model's in-flight
// set populated for the oracle).
func execOne(e *core.Engine, m *model, op txnOp) (crashed bool) {
	m.begin(m.writesFor(op))
	defer func() {
		if r := recover(); r != nil {
			if pmem.IsInjectedCrash(r) {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	if err := e.Run(op.worker, func(tx *core.Txn) error { return applyTxn(tx, e, op) }); err == nil {
		m.ack()
	} else {
		m.abortAck()
	}
	return false
}

func runWorkload(e *core.Engine, m *model, ops []txnOp) (crashed bool) {
	for _, op := range ops {
		if execOne(e, m, op) {
			return true
		}
	}
	return false
}

// calibrate runs the cell's workload once with a count-only plan, returning
// the per-event fault-point totals and the log-window media range (the
// corruption target).
func calibrate(cell Cell, opts Options) (counts [pmem.NumFaultEvents]uint64, winBase, winSize uint64, err error) {
	e, m, err := buildCell(cell)
	if err != nil {
		return counts, 0, 0, err
	}
	plan := &pmem.FaultPlan{} // N == 0: count, never fire
	e.System().SetFaults(plan)
	runWorkload(e, m, genOps(opts.WorkloadSeed, txnBudget, cellThreads))
	winBase, winSize = e.LogWindowRange()
	return plan.Counts(), winBase, winSize, nil
}

// planForSeed derives the fault plan for one crash seed: which event class
// to crash on, the 1-based occurrence number, and (ADR only) whether to also
// tear the in-flight XPBuffer block or flip a byte in the log-window region.
func planForSeed(cell Cell, seed uint64, counts [pmem.NumFaultEvents]uint64, winBase, winSize uint64) *pmem.FaultPlan {
	st := seed ^ 0xfa57
	var evs []pmem.FaultEvent
	for ev := 0; ev < pmem.NumFaultEvents; ev++ {
		if counts[ev] > 0 {
			evs = append(evs, pmem.FaultEvent(ev))
		}
	}
	if len(evs) == 0 {
		return nil
	}
	ev := evs[splitmix(&st)%uint64(len(evs))]
	p := &pmem.FaultPlan{
		Event: ev,
		N:     1 + splitmix(&st)%counts[ev],
		Seed:  seed,
	}
	if cell.Mode == pmem.ADR {
		switch seed % 4 {
		case 0:
			p.Torn = true
		case 1:
			p.Corrupt = true
			p.CorruptLo = winBase
			p.CorruptHi = winBase + winSize
		}
	}
	return p
}

// runSeed executes one crash seed end to end and returns the oracle
// violations plus the recovery report (nil if the build failed). With
// opts.TraceDir set, a failing seed's pre-crash trace is written there and
// its path returned.
func runSeed(cell Cell, opts Options, seed uint64, counts [pmem.NumFaultEvents]uint64, winBase, winSize uint64) (viol []string, rep *core.RecoveryReport, plan *pmem.FaultPlan, crashed bool, tracePath string) {
	e, m, err := buildCell(cell)
	if err != nil {
		return []string{fmt.Sprintf("setup: %v", err)}, nil, nil, false, ""
	}
	// Arm an unsampled tracer so a violating seed's full transaction history
	// is available; the workload is sequential, so Dump after the crash is
	// safe.
	var tracer *obs.Tracer
	if opts.TraceDir != "" {
		tracer = obs.NewTracer(cellThreads, obs.TraceOptions{Sample: 1})
		e.SetTracer(tracer)
	}
	plan = planForSeed(cell, seed, counts, winBase, winSize)
	if plan == nil {
		return []string{"calibration found no fault points"}, nil, nil, false, ""
	}
	e.System().SetFaults(plan)
	crashed = runWorkload(e, m, genOps(opts.WorkloadSeed, txnBudget, cellThreads))

	sys2 := e.System().Crash()
	e2, r, err := core.Recover(sys2, cellConfig(cell.Config))
	if err != nil {
		viol = []string{fmt.Sprintf("recovery failed: %v", err)}
		return viol, nil, plan, crashed, dumpSeedTrace(opts.TraceDir, cell, seed, tracer)
	}
	rep = r

	// Torn and corrupted media void the strict guarantee by construction;
	// those seeds always use the containment oracle.
	strict := cell.Strict() && !plan.Torn && !plan.Corrupt
	viol = verify(e2, m, strict)

	// Post-recovery usability: the survivor must accept new commits. Under
	// the relaxed oracle a row can legitimately vanish wholesale (a torn
	// block or an arbitrary eviction order may persist an old version's
	// invalidation but not its replacement), so ErrNotFound on the update is
	// tolerated there — the worker then proves writability with a fresh
	// insert instead.
	for w := 0; w < cellThreads; w++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(5000+w))
		err := e2.Run(w, func(tx *core.Txn) error {
			return tx.UpdateField(e2.Table("acct"), uint64(w+1), 1, b[:])
		})
		if !strict && errors.Is(err, core.ErrNotFound) {
			err = e2.Run(w, func(tx *core.Txn) error {
				kv := e2.Table("kv")
				s := kv.Schema()
				buf := make([]byte, s.TupleSize())
				key := uint64(1)<<40 + uint64(w)
				s.PutUint64(buf, 0, key)
				s.PutInt64(buf, 1, int64(5000+w))
				return tx.Insert(kv, key, buf)
			})
		}
		if err != nil {
			viol = append(viol, fmt.Sprintf("post-recovery transaction on worker %d failed: %v", w, err))
		}
	}
	if len(viol) > 0 {
		tracePath = dumpSeedTrace(opts.TraceDir, cell, seed, tracer)
	}
	return viol, rep, plan, crashed, tracePath
}

// dumpSeedTrace writes a failing seed's pre-crash trace as Chrome trace JSON
// into dir and returns the file path ("" when tracing is off or the write
// fails — a trace dump must never turn a clean verdict into an error).
func dumpSeedTrace(dir string, cell Cell, seed uint64, tracer *obs.Tracer) string {
	if tracer == nil {
		return ""
	}
	name := fmt.Sprintf("crash-%s-%s-seed%d.json",
		sanitizeName(cell.Config.Name), ModeName(cell.Mode), seed)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	label := fmt.Sprintf("%s seed %d (pre-crash)", cell, seed)
	err = obs.WriteChromeTrace(f, []obs.NamedDump{{Label: label, Dump: tracer.Dump()}})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return ""
	}
	return path
}

// sanitizeName makes an engine preset name filesystem-safe ("Inp NoFlush" →
// "Inp-NoFlush").
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, s)
}

// RunCell runs the cell across opts.Seeds crash seeds and aggregates the
// verdict.
func RunCell(cell Cell, opts Options) CellResult {
	opts = opts.withDefaults()
	res := CellResult{Cell: cell, Strict: cell.Strict(), Seeds: opts.Seeds}
	if opts.TraceDir != "" {
		if err := os.MkdirAll(opts.TraceDir, 0o755); err != nil {
			res.Violations = append(res.Violations, Violation{Seed: 0, Detail: fmt.Sprintf("trace dir: %v", err)})
			return res
		}
	}
	counts, winBase, winSize, err := calibrate(cell, opts)
	if err != nil {
		res.Violations = append(res.Violations, Violation{Seed: 0, Detail: fmt.Sprintf("calibration: %v", err)})
		return res
	}
	for s := 0; s < opts.Seeds; s++ {
		seed := opts.FirstSeed + uint64(s)
		viol, rep, plan, crashed, tracePath := runSeed(cell, opts, seed, counts, winBase, winSize)
		if crashed {
			res.Crashes++
		}
		if plan != nil {
			if plan.Torn {
				res.Torn++
			}
			if plan.Corrupt {
				res.Corrupt++
			}
		}
		if rep != nil {
			res.DetectedTorn += rep.TornRecords
			res.DetectedCorrupt += rep.CorruptRecords
			res.DroppedUnsealed += rep.DroppedUnsealed
		}
		for _, v := range viol {
			res.Violations = append(res.Violations, Violation{Seed: seed, Detail: v, TracePath: tracePath})
		}
	}
	return res
}

// sortedTouched returns the model's touched keys in deterministic order.
func sortedTouched(m *model) []cellKey {
	keys := make([]cellKey, 0, len(m.touched))
	for ck := range m.touched {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].table != keys[j].table {
			return keys[i].table < keys[j].table
		}
		return keys[i].key < keys[j].key
	})
	return keys
}
