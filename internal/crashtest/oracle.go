package crashtest

import (
	"errors"
	"fmt"

	"falcon/internal/core"
)

// verify checks the recovered engine against the golden model.
//
// Strict oracle (durable linearizability): every acknowledged transaction's
// effects are present exactly; the single in-flight transaction is all-or-
// nothing (every row at pre, or every row at post); nothing else changed.
//
// Relaxed oracle (containment): a present row's value must be one the
// workload actually intended for it at some point — recovery may have lost
// acknowledged tail transactions (the cell's configuration never promised
// them durable), but it must never invent values or surface a row the
// workload never wrote.
//
// Both oracles additionally check index↔heap agreement: a row fetched by
// key k must carry k in its payload.
func verify(e *core.Engine, m *model, strict bool) []string {
	var viol []string

	readRow := func(ck cellKey) (val int64, found bool) {
		tbl := e.Table(ck.table)
		s := tbl.Schema()
		buf := make([]byte, s.TupleSize())
		err := e.RunRO(0, func(tx *core.Txn) error { return tx.Read(tbl, ck.key, buf) })
		switch {
		case errors.Is(err, core.ErrNotFound):
			return 0, false
		case err != nil:
			viol = append(viol, fmt.Sprintf("%s/%d: read failed: %v", ck.table, ck.key, err))
			return 0, false
		}
		if got := s.GetUint64(buf, 0); got != ck.key {
			viol = append(viol, fmt.Sprintf("%s/%d: index↔heap disagreement: payload key %d", ck.table, ck.key, got))
		}
		return s.GetInt64(buf, 1), true
	}

	matches := func(val int64, found bool, exp *int64) bool {
		if exp == nil {
			return !found
		}
		return found && val == *exp
	}

	inFl := make(map[cellKey]write, len(m.inFlight))
	for _, w := range m.inFlight {
		inFl[w.ck] = w
	}
	preOK, postOK := true, true

	for _, ck := range sortedTouched(m) {
		val, found := readRow(ck)
		if w, ok := inFl[ck]; ok && strict {
			// In-flight rows are judged as a group below.
			if !matches(val, found, w.pre) {
				preOK = false
			}
			if !matches(val, found, w.post) {
				postOK = false
			}
			continue
		}
		if strict {
			exp, ok := m.committed[ck]
			switch {
			case ok && !found:
				viol = append(viol, fmt.Sprintf("%s/%d: committed row missing (want %d)", ck.table, ck.key, exp))
			case ok && val != exp:
				viol = append(viol, fmt.Sprintf("%s/%d: committed value lost: got %d want %d", ck.table, ck.key, val, exp))
			case !ok && found:
				viol = append(viol, fmt.Sprintf("%s/%d: deleted/absent row resurfaced with %d", ck.table, ck.key, val))
			}
		} else if found {
			if !m.seen[ck][val] {
				viol = append(viol, fmt.Sprintf("%s/%d: invented value %d (never written)", ck.table, ck.key, val))
			}
		}
	}

	if strict && len(inFl) > 0 && !preOK && !postOK {
		viol = append(viol, fmt.Sprintf("in-flight transaction partially visible across %d rows", len(inFl)))
	}
	return viol
}
