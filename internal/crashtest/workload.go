// Package crashtest is the crash-consistency harness: it drives a seeded
// workload against every engine preset, injects a crash at a deterministic
// mid-transaction point (optionally with torn media writes or flipped-byte
// corruption), recovers, and checks the survivor against a golden model of
// acknowledged commits. Failures carry the seed and a one-line repro
// command.
//
// Determinism is the load-bearing property: the transaction stream is
// generated up front from a workload seed and never consults execution
// state, so a calibration run (counting fault events) and every fault run
// execute the identical simulated event sequence up to the crash point.
package crashtest

import (
	"falcon/internal/layout"
)

// Cell geometry: small enough that thousands of cells run in a test, large
// enough to exercise eviction, recycling and window behaviour.
const (
	cellThreads = 2
	txnBudget   = 48 // < Threads × largeLogSlots: FlushedLog records stay window-resident
	kvKeys      = 128
	acctKeys    = 8
	acctInitBal = 1000
	insertBase  = 1000 // inserted kv keys count up from here; never collides with 1..kvKeys
)

func kvSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "key", Kind: layout.Uint64},
		layout.Column{Name: "val", Kind: layout.Int64},
	)
}

func acctSchema() *layout.Schema {
	return layout.NewSchema(
		layout.Column{Name: "key", Kind: layout.Uint64},
		layout.Column{Name: "bal", Kind: layout.Int64},
	)
}

// splitmix advances a splitmix64 state and returns the next value.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type opKind uint8

const (
	opUpdate   opKind = iota // overwrite a kv value
	opTransfer               // move balance between two acct rows (multi-key atomicity probe)
	opInsert                 // insert a fresh kv key
	opDelete                 // delete a kv key (may be absent: no-op abort)
	opRollback               // update a kv value then return ErrRollback
)

type txnOp struct {
	kind   opKind
	worker int
	k1, k2 uint64
	val    int64 // update/insert value, or transfer amount
}

// genOps builds the cell's deterministic transaction sequence from the
// workload seed alone.
func genOps(wlSeed uint64, budget, threads int) []txnOp {
	st := wlSeed ^ 0x5eed
	ops := make([]txnOp, 0, budget)
	insertNext := uint64(insertBase)
	for i := 0; i < budget; i++ {
		op := txnOp{worker: i % threads}
		switch r := splitmix(&st) % 100; {
		case r < 55:
			op.kind = opUpdate
			op.k1 = 1 + splitmix(&st)%kvKeys
			op.val = int64(splitmix(&st) >> 8)
		case r < 75:
			op.kind = opTransfer
			op.k1 = 1 + splitmix(&st)%acctKeys
			b := 1 + splitmix(&st)%(acctKeys-1)
			if b >= op.k1 {
				b++
			}
			op.k2 = b
			op.val = int64(1 + splitmix(&st)%50)
		case r < 85:
			op.kind = opInsert
			op.k1 = insertNext
			op.val = int64(splitmix(&st) >> 8)
			insertNext++
		case r < 92:
			op.kind = opDelete
			op.k1 = 1 + splitmix(&st)%kvKeys
		default:
			op.kind = opRollback
			op.k1 = 1 + splitmix(&st)%kvKeys
			op.val = int64(splitmix(&st) >> 8)
		}
		ops = append(ops, op)
	}
	return ops
}

// cellKey names one logical row.
type cellKey struct {
	table string
	key   uint64
}

// write is one intended row mutation of an attempted transaction. pre is the
// expected value if the transaction did not commit, post if it did; nil
// means absent (not yet inserted, or deleted).
type write struct {
	ck        cellKey
	pre, post *int64
}

// model is the golden host-side truth the oracle checks recovery against.
type model struct {
	committed map[cellKey]int64         // exact value of every acked live row
	seen      map[cellKey]map[int64]bool // every value ever intended for the row (incl. load)
	touched   map[cellKey]bool
	inFlight  []write // write set of the attempt in progress; nil when quiescent
}

func newModel() *model {
	return &model{
		committed: make(map[cellKey]int64),
		seen:      make(map[cellKey]map[int64]bool),
		touched:   make(map[cellKey]bool),
	}
}

func (m *model) note(ck cellKey, v int64) {
	m.touched[ck] = true
	s := m.seen[ck]
	if s == nil {
		s = make(map[int64]bool)
		m.seen[ck] = s
	}
	s[v] = true
}

// loadRow records a bulk-loaded row (durable before the fault plan arms).
func (m *model) loadRow(ck cellKey, v int64) {
	m.committed[ck] = v
	m.note(ck, v)
}

func (m *model) get(ck cellKey) *int64 {
	if v, ok := m.committed[ck]; ok {
		c := v
		return &c
	}
	return nil
}

// writesFor derives op's intended write set from the current committed
// state. Rollback ops intend no durable change (pre == post), so a crash
// mid-rollback still demands the pre state.
func (m *model) writesFor(op txnOp) []write {
	switch op.kind {
	case opUpdate:
		v := op.val
		return []write{{ck: cellKey{"kv", op.k1}, pre: m.get(cellKey{"kv", op.k1}), post: &v}}
	case opTransfer:
		a, b := cellKey{"acct", op.k1}, cellKey{"acct", op.k2}
		pa, pb := m.get(a), m.get(b)
		if pa == nil || pb == nil {
			return nil // acct rows are never deleted; defensive
		}
		na, nb := *pa-op.val, *pb+op.val
		return []write{{ck: a, pre: pa, post: &na}, {ck: b, pre: pb, post: &nb}}
	case opInsert:
		v := op.val
		return []write{{ck: cellKey{"kv", op.k1}, pre: nil, post: &v}}
	case opDelete:
		return []write{{ck: cellKey{"kv", op.k1}, pre: m.get(cellKey{"kv", op.k1}), post: nil}}
	default: // opRollback
		pre := m.get(cellKey{"kv", op.k1})
		return []write{{ck: cellKey{"kv", op.k1}, pre: pre, post: pre}}
	}
}

// begin records the attempt's write set before the engine runs it; if the
// crash lands mid-transaction the oracle allows pre or post atomically.
func (m *model) begin(ws []write) {
	m.inFlight = ws
	for _, w := range ws {
		m.touched[w.ck] = true
		if w.post != nil {
			m.note(w.ck, *w.post)
		}
	}
}

// ack applies the in-flight write set: the engine acknowledged the commit.
func (m *model) ack() {
	for _, w := range m.inFlight {
		if w.post == nil {
			delete(m.committed, w.ck)
		} else {
			m.committed[w.ck] = *w.post
		}
	}
	m.inFlight = nil
}

// abortAck clears the in-flight set: the engine returned an error, so no
// durable change may be visible.
func (m *model) abortAck() { m.inFlight = nil }
