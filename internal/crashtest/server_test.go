package crashtest

import (
	"sync/atomic"
	"testing"
)

// strictCells returns the matrix cells whose configuration promises strict
// durable linearizability — the precondition for the exactly-once oracle.
func strictCells() []Cell {
	var out []Cell
	for _, c := range Matrix() {
		if c.Strict() {
			out = append(out, c)
		}
	}
	return out
}

// TestServerExactlyOnceAcrossCrashes is the serving-layer acceptance gate:
// crash mid-request, recover, retry under the original idempotency key — the
// retry must observe the original attempt's outcome (replay with identical
// digest if it committed, fresh exactly-once execution if not), and the final
// state of every touched row must match the golden model exactly. Runs at
// least 200 crash seeds across the strict matrix cells.
func TestServerExactlyOnceAcrossCrashes(t *testing.T) {
	cells := strictCells()
	if len(cells) == 0 {
		t.Fatal("no strict cells in the matrix")
	}
	// >= 200 seeds total in full mode (the acceptance bar); a light sweep
	// under -short.
	perCell := (200 + len(cells) - 1) / len(cells)
	if testing.Short() {
		perCell = 2
	}
	var totalCrashes, totalReplays, totalReexecs atomic.Int64
	for _, cell := range cells {
		cell := cell
		t.Run(cell.String(), func(t *testing.T) {
			t.Parallel()
			res := RunServerCell(cell, Options{Seeds: perCell})
			if res.Crashes == 0 {
				t.Errorf("no injected crash fired mid-request across %d seeds", perCell)
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s", v.Seed, v.Detail)
			}
			totalCrashes.Add(int64(res.Crashes))
			totalReplays.Add(int64(res.Replays))
			totalReexecs.Add(int64(res.Reexecs))
		})
	}
	t.Cleanup(func() {
		// Both post-crash retry paths must be exercised somewhere in the
		// matrix: replays prove idempotency records survive with their
		// effects; re-executions prove uncommitted attempts leave neither.
		if totalReplays.Load() == 0 {
			t.Errorf("no seed replayed a committed request after its crash (%d crashes)", totalCrashes.Load())
		}
		if totalReexecs.Load() == 0 {
			t.Errorf("no seed re-executed an uncommitted request after its crash (%d crashes)", totalCrashes.Load())
		}
	})
}

// TestServerCellRejectsRelaxedConfigs: the exactly-once oracle refuses cells
// that cannot support it, instead of reporting vacuous passes.
func TestServerCellRejectsRelaxedConfigs(t *testing.T) {
	for _, cell := range Matrix() {
		if cell.Strict() {
			continue
		}
		res := RunServerCell(cell, Options{Seeds: 1})
		if res.Passed() {
			t.Errorf("%s: relaxed cell accepted by the exactly-once harness", cell)
		}
		return // one representative is enough
	}
}
