package crashtest

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"falcon/internal/bench"
	"falcon/internal/core"
	"falcon/internal/index"
	"falcon/internal/pmem"
	"falcon/internal/server"
	"falcon/internal/sim"
)

// Server exactly-once cells: the same crash-at-Nth-event machinery as the
// transaction matrix, but the workload is a deterministic stream of serving
// requests executed through server.Apply — the idempotency record commits in
// the same transaction as the request's effects. A seed crashes mid-request,
// recovers, and retries the interrupted request under its original
// idempotency key. The oracle demands exactly-once: if the original attempt
// committed, the retry is answered from the idempotency table with the
// original digest; if it did not, the retry executes fresh — and either way
// the request's effects land exactly once, proven by a final strict
// comparison of every touched row against the golden model (`add`, the
// read-modify-write probe, makes a double execution visible as a double
// increment).
//
// Only strict cells participate: under a containment-only configuration an
// acknowledged commit may legitimately vanish in the crash, which would sever
// the record⟺effects equivalence the exactly-once argument rests on.

// svReq is one generated serving request with its fixed idempotency key.
type svReq struct {
	idem uint64
	req  server.TxnRequest
}

// svModel is the golden serving-state model: exact row values plus every key
// the stream ever touched.
type svModel struct {
	rows    map[uint64]int64
	touched map[uint64]bool
}

func newSvModel() *svModel {
	m := &svModel{rows: map[uint64]int64{}, touched: map[uint64]bool{}}
	for k := uint64(1); k <= kvKeys; k++ {
		m.rows[k] = int64(k * 10)
		m.touched[k] = true
	}
	return m
}

// expect computes the results the request must produce against the current
// state, plus the post-state — held back until the attempt's outcome is
// known, mirroring the engine's atomicity.
func (m *svModel) expect(req *server.TxnRequest) ([]server.OpResult, map[uint64]int64) {
	post := make(map[uint64]int64, len(m.rows))
	for k, v := range m.rows {
		post[k] = v
	}
	results := make([]server.OpResult, 0, len(req.Ops))
	for _, op := range req.Ops {
		m.touched[op.Key] = true
		var res server.OpResult
		switch op.Op {
		case "get":
			if v, ok := post[op.Key]; ok {
				res = server.OpResult{Val: v, Found: true}
			}
		case "put", "insert":
			post[op.Key] = op.Val
			res = server.OpResult{Val: op.Val, Found: true}
		case "add":
			v := post[op.Key] + op.Val
			post[op.Key] = v
			res = server.OpResult{Val: v, Found: true}
		case "delete":
			if _, ok := post[op.Key]; ok {
				delete(post, op.Key)
				res = server.OpResult{Found: true}
			}
		}
		results = append(results, res)
	}
	return results, post
}

// genServerReqs builds the deterministic request stream. The generator tracks
// key presence so every request is designed to succeed (inserts use fresh
// keys, adds target live rows): any runtime error is then itself a violation.
func genServerReqs(wlSeed uint64, budget int) []svReq {
	st := wlSeed ^ 0x5e4e
	present := map[uint64]bool{}
	for k := uint64(1); k <= kvKeys; k++ {
		present[k] = true
	}
	liveBase := func() (uint64, bool) {
		start := 1 + splitmix(&st)%kvKeys
		for i := uint64(0); i < kvKeys; i++ {
			k := 1 + (start-1+i)%kvKeys
			if present[k] {
				return k, true
			}
		}
		return 0, false
	}
	insertNext := uint64(insertBase)
	reqs := make([]svReq, 0, budget)
	for i := 0; i < budget; i++ {
		nops := 1
		if splitmix(&st)%100 < 30 {
			nops = 2 // multi-op requests probe per-request atomicity
		}
		var ops []server.Op
		for o := 0; o < nops; o++ {
			var op server.Op
			op.Table = "kv"
			switch r := splitmix(&st) % 100; {
			case r < 45: // add on a live row — the non-idempotent probe
				if k, ok := liveBase(); ok {
					op.Op, op.Key, op.Val = "add", k, int64(1+splitmix(&st)%100)
				} else {
					op.Op, op.Key, op.Val = "put", 1+splitmix(&st)%kvKeys, int64(splitmix(&st)>>8)
					present[op.Key] = true
				}
			case r < 65:
				op.Op, op.Key, op.Val = "put", 1+splitmix(&st)%kvKeys, int64(splitmix(&st)>>8)
				present[op.Key] = true
			case r < 75:
				op.Op, op.Key, op.Val = "insert", insertNext, int64(splitmix(&st)>>8)
				present[insertNext] = true
				insertNext++
			case r < 90:
				op.Op, op.Key = "get", 1+splitmix(&st)%kvKeys
			default:
				op.Op, op.Key = "delete", 1+splitmix(&st)%kvKeys
				delete(present, op.Key)
			}
			ops = append(ops, op)
		}
		reqs = append(reqs, svReq{idem: uint64(i + 1), req: server.TxnRequest{Ops: ops}})
	}
	return reqs
}

// buildServerCell constructs a fresh engine with the serving tables (kv plus
// the idempotency table), bulk-loads the initial rows, and syncs the media.
func buildServerCell(cell Cell) (*core.Engine, error) {
	cfg := cellConfig(cell.Config)
	specs := server.WithIdemTable([]core.TableSpec{{
		Name: "kv", Schema: server.ServeSchema(0), Capacity: 2048,
		KeyCol: 0, IndexKind: index.Hash,
	}}, 1024)
	sys := pmem.NewSystem(pmem.Config{
		Mode:        cell.Mode,
		DeviceBytes: bench.EstimateDeviceBytes(cfg, specs),
		// Same tight geometry as buildCell: force evictions and drains so
		// fault events exist mid-request.
		CacheBytes:    64 << 10,
		CacheWays:     8,
		XPBufferBytes: 8 << 10,
		XPBanks:       2,
	})
	e, err := core.New(sys, cfg, specs)
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", cell, err)
	}
	kv := e.Table("kv")
	s := kv.Schema()
	th := 0
	for k := uint64(1); k <= kvKeys; k++ {
		buf := make([]byte, s.TupleSize())
		s.PutUint64(buf, 0, k)
		s.PutInt64(buf, 1, int64(k*10))
		h := kv.Heap()
		slot, err := h.Alloc(nil, th, 0)
		if err != nil {
			return nil, err
		}
		h.BulkInstall(slot, 0, buf)
		if err := kv.BulkIndexInsert(k, slot); err != nil {
			return nil, err
		}
		th = (th + 1) % cellThreads
	}
	e.Sync(sim.NewClock())
	return e, nil
}

// svApply runs one request through server.Apply, converting an injected
// crash panic into a flag.
func svApply(e *core.Engine, worker int, idem uint64, req *server.TxnRequest) (resp *server.TxnResponse, err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if pmem.IsInjectedCrash(r) {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	resp, err = server.Apply(e, worker, idem, req, nil)
	return resp, err, false
}

// svCalibrate counts fault events over the full request stream.
func svCalibrate(cell Cell, wlSeed uint64) ([pmem.NumFaultEvents]uint64, error) {
	e, err := buildServerCell(cell)
	if err != nil {
		return [pmem.NumFaultEvents]uint64{}, err
	}
	plan := &pmem.FaultPlan{} // N == 0: count, never fire
	e.System().SetFaults(plan)
	for i, r := range genServerReqs(wlSeed, txnBudget) {
		if _, err, _ := svApply(e, i%cellThreads, r.idem, &r.req); err != nil {
			return plan.Counts(), fmt.Errorf("calibration request %d failed: %w", i, err)
		}
	}
	return plan.Counts(), nil
}

// svPlanForSeed picks the crash point for one seed. No torn or corrupt media:
// those void the strict guarantee the exactly-once oracle depends on.
func svPlanForSeed(seed uint64, counts [pmem.NumFaultEvents]uint64) *pmem.FaultPlan {
	st := seed ^ 0x1de4
	var evs []pmem.FaultEvent
	for ev := 0; ev < pmem.NumFaultEvents; ev++ {
		if counts[ev] > 0 {
			evs = append(evs, pmem.FaultEvent(ev))
		}
	}
	if len(evs) == 0 {
		return nil
	}
	ev := evs[splitmix(&st)%uint64(len(evs))]
	return &pmem.FaultPlan{Event: ev, N: 1 + splitmix(&st)%counts[ev], Seed: seed}
}

// ServerCellResult aggregates one server cell's seeds.
type ServerCellResult struct {
	Cell    Cell
	Seeds   int
	Crashes int // seeds whose injected crash fired mid-request
	// Replays counts post-crash retries answered from the idempotency table
	// (original attempt had committed); Reexecs counts retries that executed
	// fresh (it had not). Both must stay exactly-once either way.
	Replays    int
	Reexecs    int
	Violations []Violation
}

// Passed reports whether every seed satisfied the exactly-once oracle.
func (r ServerCellResult) Passed() bool { return len(r.Violations) == 0 }

// runServerSeed executes one crash seed end to end: run requests until the
// injected crash, recover, retry the interrupted request under its original
// idempotency key, finish the stream, and compare every touched row exactly.
func runServerSeed(cell Cell, seed, wlSeed uint64, counts [pmem.NumFaultEvents]uint64) (viol []string, crashed, replayed bool) {
	e, err := buildServerCell(cell)
	if err != nil {
		return []string{fmt.Sprintf("setup: %v", err)}, false, false
	}
	plan := svPlanForSeed(seed, counts)
	if plan == nil {
		return []string{"calibration found no fault points"}, false, false
	}
	e.System().SetFaults(plan)

	reqs := genServerReqs(wlSeed, txnBudget)
	m := newSvModel()
	digests := make([]string, len(reqs)) // acked requests' digests, for later replay probes
	crashIdx := -1
	var crashExp, lastExp []server.OpResult
	var crashPost map[uint64]int64
	for i := range reqs {
		exp, post := m.expect(&reqs[i].req)
		resp, err, c := svApply(e, i%cellThreads, reqs[i].idem, &reqs[i].req)
		if c {
			crashIdx, crashExp, crashPost = i, exp, post
			break
		}
		if err != nil {
			return []string{fmt.Sprintf("request %d failed pre-crash: %v", i, err)}, false, false
		}
		if resp.Replayed {
			return []string{fmt.Sprintf("request %d: first execution claims replay", i)}, false, false
		}
		if want := server.DigestOf(exp); resp.Digest != want {
			return []string{fmt.Sprintf("request %d: digest %s, model wants %s", i, resp.Digest, want)}, false, false
		}
		digests[i] = resp.Digest
		lastExp = exp
		m.rows = post
	}

	sys2 := e.System().Crash()
	e2, _, err := core.Recover(sys2, cellConfig(cell.Config))
	if err != nil {
		return []string{fmt.Sprintf("recovery failed: %v", err)}, crashIdx >= 0, false
	}

	// The probe request: the one interrupted by the crash, or — if the plan's
	// event never fired mid-request — the last acked one (its retry must
	// replay).
	k := crashIdx
	if k < 0 {
		// The plan's event never fired mid-request: probe the last acked
		// request instead — its model state is already committed.
		k = len(reqs) - 1
		crashExp, crashPost = lastExp, m.rows
	}
	wantDigest := server.DigestOf(crashExp)

	resp1, err, c := svApply(e2, k%cellThreads, reqs[k].idem, &reqs[k].req)
	if c || err != nil {
		return []string{fmt.Sprintf("post-crash retry of request %d failed: crash=%v err=%v", k, c, err)}, crashIdx >= 0, false
	}
	switch {
	case resp1.Replayed:
		// Original attempt committed: the stored digest must be the original
		// result's, and the effects must already be in place (checked below
		// by the final comparison against the committed post-state).
		if resp1.Digest != wantDigest {
			viol = append(viol, fmt.Sprintf("request %d: replayed digest %s != original %s", k, resp1.Digest, wantDigest))
		}
		m.rows = crashPost
	default:
		// Original attempt did not commit: the retry executes fresh, exactly
		// once, with the same results the model predicts.
		if crashIdx < 0 {
			viol = append(viol, fmt.Sprintf("request %d committed pre-crash but its retry re-executed (idempotency record lost)", k))
		}
		if resp1.Digest != wantDigest || !reflect.DeepEqual(resp1.Results, crashExp) {
			viol = append(viol, fmt.Sprintf("request %d: fresh retry diverged from model: digest %s want %s", k, resp1.Digest, wantDigest))
		}
		m.rows = crashPost
	}

	// Second retry must always replay with a stable digest.
	resp2, err, c := svApply(e2, k%cellThreads, reqs[k].idem, &reqs[k].req)
	if c || err != nil || !resp2.Replayed || resp2.Digest != resp1.Digest {
		viol = append(viol, fmt.Sprintf("request %d: second retry not an identical replay (err=%v replayed=%v digest %s vs %s)",
			k, err, resp2 != nil && resp2.Replayed, respDigest(resp2), resp1.Digest))
	}

	// A pre-crash acked request must also replay with its original digest.
	if crashIdx > 0 {
		j := int(seed) % crashIdx
		respJ, err, c := svApply(e2, j%cellThreads, reqs[j].idem, &reqs[j].req)
		if c || err != nil || !respJ.Replayed || respJ.Digest != digests[j] {
			viol = append(viol, fmt.Sprintf("request %d (acked pre-crash): retry not an identical replay (err=%v digest %s want %s)",
				j, err, respDigest(respJ), digests[j]))
		}
	}

	// Finish the stream on the survivor.
	for i := k + 1; i < len(reqs); i++ {
		exp, post := m.expect(&reqs[i].req)
		resp, err, c := svApply(e2, i%cellThreads, reqs[i].idem, &reqs[i].req)
		if c || err != nil {
			viol = append(viol, fmt.Sprintf("request %d failed post-recovery: crash=%v err=%v", i, c, err))
			return viol, crashIdx >= 0, resp1.Replayed
		}
		if want := server.DigestOf(exp); resp.Replayed || resp.Digest != want {
			viol = append(viol, fmt.Sprintf("request %d post-recovery: replayed=%v digest %s want %s", i, resp.Replayed, resp.Digest, want))
		}
		m.rows = post
	}

	// Strict final oracle: every touched row matches the model exactly — a
	// double-executed add or a lost committed put surfaces here.
	viol = append(viol, svVerify(e2, m)...)
	return viol, crashIdx >= 0, resp1.Replayed
}

func respDigest(r *server.TxnResponse) string {
	if r == nil {
		return "<nil>"
	}
	return r.Digest
}

// svVerify compares every touched key of the recovered engine against the
// model, exactly.
func svVerify(e *core.Engine, m *svModel) []string {
	var viol []string
	kv := e.Table("kv")
	s := kv.Schema()
	keys := make([]uint64, 0, len(m.touched))
	for k := range m.touched {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		buf := make([]byte, s.TupleSize())
		err := e.RunRO(0, func(tx *core.Txn) error { return tx.Read(kv, k, buf) })
		want, ok := m.rows[k]
		switch {
		case errors.Is(err, core.ErrNotFound):
			if ok {
				viol = append(viol, fmt.Sprintf("kv/%d: committed row missing (want %d)", k, want))
			}
		case err != nil:
			viol = append(viol, fmt.Sprintf("kv/%d: read failed: %v", k, err))
		case !ok:
			viol = append(viol, fmt.Sprintf("kv/%d: deleted/absent row resurfaced with %d", k, s.GetInt64(buf, 1)))
		case s.GetInt64(buf, 1) != want:
			viol = append(viol, fmt.Sprintf("kv/%d: got %d want %d (double or lost execution)", k, s.GetInt64(buf, 1), want))
		}
	}
	return viol
}

// RunServerCell runs the exactly-once oracle across opts.Seeds crash seeds.
// The cell must be strict (Cell.Strict).
func RunServerCell(cell Cell, opts Options) ServerCellResult {
	opts = opts.withDefaults()
	res := ServerCellResult{Cell: cell, Seeds: opts.Seeds}
	if !cell.Strict() {
		res.Violations = append(res.Violations, Violation{Detail: "server exactly-once cells require a strict configuration"})
		return res
	}
	counts, err := svCalibrate(cell, opts.WorkloadSeed)
	if err != nil {
		res.Violations = append(res.Violations, Violation{Detail: fmt.Sprintf("calibration: %v", err)})
		return res
	}
	for s := 0; s < opts.Seeds; s++ {
		seed := opts.FirstSeed + uint64(s)
		viol, crashed, replayed := runServerSeed(cell, seed, opts.WorkloadSeed, counts)
		if crashed {
			res.Crashes++
			if replayed {
				res.Replays++
			} else {
				res.Reexecs++
			}
		}
		for _, v := range viol {
			res.Violations = append(res.Violations, Violation{Seed: seed, Detail: v})
		}
	}
	return res
}
