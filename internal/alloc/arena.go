// Package alloc manages the simulated NVM address space. Following the
// paper's §5.1, storage is handed out in large pages (2 MiB) from a global
// arena; finer-grained allocation (tuple slots, log records) is performed by
// the owning subsystem inside its region, usually per thread to avoid
// contention.
//
// The arena's bump pointer is persisted through the simulated cache on every
// allocation. Under persistent cache (eADR) that store is durable the moment
// it executes, so allocation metadata survives crashes without explicit
// flushes — the same property Falcon relies on for its log windows.
package alloc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

// PageSize is the allocation granule of the global arena.
const PageSize = 2 << 20

// HeaderBytes is the space the arena reserves for its own persistent state.
const HeaderBytes = 64

const arenaMagic = 0xFA1C0A11_0C470500

// ErrOutOfSpace is returned when the arena cannot satisfy an allocation.
var ErrOutOfSpace = errors.New("alloc: arena out of space")

// Arena allocates regions of the NVM space. It is safe for concurrent use.
type Arena struct {
	space pmem.Space
	hdr   uint64 // offset of the persistent header
	limit uint64

	mu   sync.Mutex
	next uint64
}

// NewArena formats a new arena whose persistent header lives at hdrOff and
// which hands out bytes in [start, limit).
func NewArena(space pmem.Space, hdrOff, start, limit uint64) (*Arena, error) {
	if hdrOff+HeaderBytes > start || start > limit || limit > space.Size() {
		return nil, fmt.Errorf("alloc: bad arena geometry hdr=%d start=%d limit=%d size=%d",
			hdrOff, start, limit, space.Size())
	}
	a := &Arena{space: space, hdr: hdrOff, limit: limit, next: start}
	var buf [HeaderBytes]byte
	binary.LittleEndian.PutUint64(buf[0:], arenaMagic)
	binary.LittleEndian.PutUint64(buf[8:], start)
	binary.LittleEndian.PutUint64(buf[16:], limit)
	binary.LittleEndian.PutUint64(buf[24:], a.next)
	space.BulkWrite(hdrOff, buf[:])
	return a, nil
}

// OpenArena reopens an arena from its persistent header (recovery path).
func OpenArena(space pmem.Space, clk *sim.Clock, hdrOff uint64) (*Arena, error) {
	var buf [HeaderBytes]byte
	space.Read(clk, hdrOff, buf[:])
	if binary.LittleEndian.Uint64(buf[0:]) != arenaMagic {
		return nil, errors.New("alloc: no arena header found")
	}
	return &Arena{
		space: space,
		hdr:   hdrOff,
		limit: binary.LittleEndian.Uint64(buf[16:]),
		next:  binary.LittleEndian.Uint64(buf[24:]),
	}, nil
}

// Alloc returns an n-byte region aligned to align (a power of two; 0 means
// PageSize alignment for page-multiple requests, else 64).
func (a *Arena) Alloc(clk *sim.Clock, n uint64, align uint64) (uint64, error) {
	if align == 0 {
		if n%PageSize == 0 {
			align = PageSize
		} else {
			align = 64
		}
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("alloc: alignment %d is not a power of two", align)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	off := (a.next + align - 1) &^ (align - 1)
	if off+n > a.limit {
		return 0, fmt.Errorf("%w: need %d at %d, limit %d", ErrOutOfSpace, n, off, a.limit)
	}
	a.next = off + n
	a.persistNext(clk)
	return off, nil
}

// AllocPages returns npages contiguous pages.
func (a *Arena) AllocPages(clk *sim.Clock, npages int) (uint64, error) {
	return a.Alloc(clk, uint64(npages)*PageSize, PageSize)
}

// Remaining returns the bytes still available.
func (a *Arena) Remaining() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.next > a.limit {
		return 0
	}
	return a.limit - a.next
}

// Space returns the backing space.
func (a *Arena) Space() pmem.Space { return a.space }

func (a *Arena) persistNext(clk *sim.Clock) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], a.next)
	a.space.Write(clk, a.hdr+24, b[:])
	// The header line is hot and stays cached; under eADR the store above is
	// already durable. Under ADR an explicit flush is required.
	if !cachePersistent(a.space) {
		a.space.CLWB(clk, a.hdr+24, 8)
		a.space.SFence(clk)
	}
}

// cachePersistent reports whether stores to the space are durable without
// explicit flushes (eADR-backed NVM space).
func cachePersistent(s pmem.Space) bool {
	n, ok := s.(*pmem.NVMSpace)
	return ok && n.Cache().Mode() == pmem.EADR
}
