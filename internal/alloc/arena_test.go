package alloc

import (
	"errors"
	"sync"
	"testing"

	"falcon/internal/pmem"
	"falcon/internal/sim"
)

func testSpace() *pmem.System {
	return pmem.NewSystem(pmem.Config{DeviceBytes: 32 << 20})
}

func TestArenaAllocSequential(t *testing.T) {
	sys := testSpace()
	clk := sim.NewClock()
	a, err := NewArena(sys.Space, 0, 4096, sys.Space.Size())
	if err != nil {
		t.Fatal(err)
	}
	o1, err := a.Alloc(clk, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := a.Alloc(clk, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if o1 < 4096 || o2 <= o1 || o1%64 != 0 || o2%64 != 0 {
		t.Fatalf("bad offsets %d, %d", o1, o2)
	}
	if o2 < o1+100 {
		t.Fatal("allocations overlap")
	}
}

func TestArenaPageAlignment(t *testing.T) {
	sys := testSpace()
	clk := sim.NewClock()
	a, _ := NewArena(sys.Space, 0, 4096, sys.Space.Size())
	off, err := a.AllocPages(clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if off%PageSize != 0 {
		t.Fatalf("page allocation at %d not page-aligned", off)
	}
}

func TestArenaOutOfSpace(t *testing.T) {
	sys := testSpace()
	clk := sim.NewClock()
	a, _ := NewArena(sys.Space, 0, 4096, 8192)
	if _, err := a.Alloc(clk, 10000, 64); !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}

func TestArenaReopenAfterCrash(t *testing.T) {
	sys := testSpace()
	clk := sim.NewClock()
	a, _ := NewArena(sys.Space, 0, 4096, sys.Space.Size())
	o1, _ := a.Alloc(clk, 1000, 64)

	sys2 := sys.Crash()
	b, err := OpenArena(sys2.Space, clk, 0)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := b.Alloc(clk, 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if o2 < o1+1000 {
		t.Fatalf("post-crash allocation %d overlaps pre-crash region [%d,%d)", o2, o1, o1+1000)
	}
}

func TestArenaConcurrentAllocDisjoint(t *testing.T) {
	sys := testSpace()
	a, _ := NewArena(sys.Space, 0, 4096, sys.Space.Size())
	const workers, per = 8, 50
	offs := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := sim.NewClock()
			for i := 0; i < per; i++ {
				off, err := a.Alloc(clk, 256, 64)
				if err != nil {
					t.Error(err)
					return
				}
				offs[w] = append(offs[w], off)
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, list := range offs {
		for _, off := range list {
			if seen[off] {
				t.Fatalf("offset %d allocated twice", off)
			}
			seen[off] = true
		}
	}
}

func TestOpenArenaRejectsGarbage(t *testing.T) {
	sys := testSpace()
	if _, err := OpenArena(sys.Space, sim.NewClock(), 0); err == nil {
		t.Fatal("OpenArena accepted an unformatted device")
	}
}
