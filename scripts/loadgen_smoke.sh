#!/bin/sh -e
# End-to-end serving smoke: boot falcon-serve, wait for readiness, drive one
# closed-loop loadgen round, verify the falcon/loadgen/v1 report stamp and the
# Prometheus exposition, then SIGTERM the server and require a clean drain.
# CI runs this; so does `make loadgen-smoke`. Run from the repo root.
ADDR=${ADDR:-127.0.0.1:18080}
TMP=${TMPDIR:-/tmp}
OUT="$TMP/loadgen-smoke.json"

go build -o "$TMP/falcon-serve" ./cmd/falcon-serve
go build -o "$TMP/falcon-loadgen" ./cmd/falcon-loadgen

"$TMP/falcon-serve" -addr "$ADDR" -records 20000 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

ready=
for _ in $(seq 1 100); do
    if curl -fs "http://$ADDR/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
done
[ -n "$ready" ] || { echo "falcon-serve never became ready" >&2; exit 1; }

"$TMP/falcon-loadgen" -target "http://$ADDR" -scenario closed \
    -clients 4 -requests 200 -json "$OUT"
grep -q '"schema": "falcon/loadgen/v1"' "$OUT"
curl -fs "http://$ADDR/metrics" | grep -q '^falcon_'

# SIGTERM must drain in-flight work and exit 0.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "serving smoke ok: $OUT"
