// Quickstart: create a database on simulated eADR persistent memory, run
// transactions, crash the machine, and recover — the core Falcon workflow.
package main

import (
	"fmt"
	"log"

	"falcon"
)

func main() {
	// A schema is a fixed-width tuple layout. Column 0 holds the primary
	// index key by convention (recovery rebuilds DRAM indexes from it).
	schema := falcon.NewSchema(
		falcon.Column{Name: "id", Kind: falcon.Uint64},
		falcon.Column{Name: "balance", Kind: falcon.Int64},
		falcon.Column{Name: "owner", Kind: falcon.Bytes, Size: 24},
	)

	cfg := falcon.FalconConfig() // in-place updates + small log window + selective flush
	cfg.Threads = 2
	db, err := falcon.Open(falcon.Options{
		Config: cfg,
		Tables: []falcon.TableSpec{{
			Name:      "accounts",
			Schema:    schema,
			Capacity:  10_000,
			IndexKind: falcon.Hash,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	accounts := db.Table("accounts")

	// Insert a tuple inside a transaction (worker 0).
	payload := make([]byte, schema.TupleSize())
	schema.PutUint64(payload, 0, 42)
	schema.PutInt64(payload, 1, 1000)
	schema.PutString(payload, 2, "alice")
	if err := db.Run(0, func(tx *falcon.Txn) error {
		return tx.Insert(accounts, 42, payload)
	}); err != nil {
		log.Fatal(err)
	}

	// Read-modify-write with automatic conflict retry.
	if err := db.Run(0, func(tx *falcon.Txn) error {
		buf := make([]byte, schema.TupleSize())
		if err := tx.ReadForUpdate(accounts, 42, buf); err != nil {
			return err
		}
		var v [8]byte
		bal := schema.GetInt64(buf, 1) + 500
		for i := 0; i < 8; i++ {
			v[i] = byte(uint64(bal) >> (8 * i))
		}
		return tx.UpdateField(accounts, 42, 1, v[:])
	}); err != nil {
		log.Fatal(err)
	}

	// Pull the power. Under eADR the committed state — including the redo
	// log window that was never flushed — survives in the durable image.
	img := db.Crash()
	db2, report, err := falcon.Recover(img, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %.3f virtual ms (replayed %d log records, scanned %d tuples)\n",
		float64(report.TotalNanos)/1e6, report.RecordsReplayed, report.TuplesScanned)

	buf := make([]byte, schema.TupleSize())
	if err := db2.RunRO(0, func(tx *falcon.Txn) error {
		return tx.Read(db2.Table("accounts"), 42, buf)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("account 42: owner=%s balance=%d\n",
		schema.GetString(buf, 2), schema.GetInt64(buf, 1))
}
