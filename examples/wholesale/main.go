// Wholesale: a miniature order-processing application in the spirit of the
// TPC-C workload the paper evaluates with — demonstrating ordered (btree)
// indexes, range scans, secondary indexes, multi-table transactions and
// snapshot (read-only) analytics under MVCC.
package main

import (
	"fmt"
	"log"

	"falcon"
)

var (
	productSchema = falcon.NewSchema(
		falcon.Column{Name: "sku", Kind: falcon.Uint64},
		falcon.Column{Name: "stock", Kind: falcon.Int64},
		falcon.Column{Name: "price_cents", Kind: falcon.Int64},
		falcon.Column{Name: "name", Kind: falcon.Bytes, Size: 24},
	)
	orderSchema = falcon.NewSchema(
		falcon.Column{Name: "order_id", Kind: falcon.Uint64},
		falcon.Column{Name: "by_customer", Kind: falcon.Uint64}, // secondary key
		falcon.Column{Name: "sku", Kind: falcon.Int64},
		falcon.Column{Name: "qty", Kind: falcon.Int64},
		falcon.Column{Name: "total_cents", Kind: falcon.Int64},
	)
)

func main() {
	cfg := falcon.FalconConfig()
	cfg.CC = falcon.MVOCC // snapshot reads for the analytics queries
	cfg.Threads = 2
	db, err := falcon.Open(falcon.Options{
		Config: cfg,
		Tables: []falcon.TableSpec{
			{Name: "products", Schema: productSchema, Capacity: 4096, IndexKind: falcon.Hash},
			{Name: "orders", Schema: orderSchema, Capacity: 16384, IndexKind: falcon.BTree,
				SecondaryCol: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	products, orders := db.Table("products"), db.Table("orders")

	// Catalog.
	for sku := uint64(1); sku <= 100; sku++ {
		p := make([]byte, productSchema.TupleSize())
		productSchema.PutUint64(p, 0, sku)
		productSchema.PutInt64(p, 1, 50) // stock
		productSchema.PutInt64(p, 2, int64(sku*99))
		productSchema.PutString(p, 3, fmt.Sprintf("widget-%d", sku))
		if err := db.Run(int(sku)%2, func(tx *falcon.Txn) error {
			return tx.Insert(products, sku, p)
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Place orders: decrement stock and record the order atomically.
	nextOrder := uint64(1)
	placeOrder := func(worker int, customer, sku uint64, qty int64) error {
		id := nextOrder
		nextOrder++
		return db.Run(worker, func(tx *falcon.Txn) error {
			buf := make([]byte, productSchema.TupleSize())
			if err := tx.ReadForUpdate(products, sku, buf); err != nil {
				return err
			}
			stock := productSchema.GetInt64(buf, 1)
			if stock < qty {
				return falcon.ErrRollback
			}
			if err := tx.UpdateField(products, sku, 1, le(stock-qty)); err != nil {
				return err
			}
			price := productSchema.GetInt64(buf, 2)
			o := make([]byte, orderSchema.TupleSize())
			orderSchema.PutUint64(o, 0, id)
			// Secondary keys must be unique: customer in the high bits,
			// order id below.
			orderSchema.PutUint64(o, 1, customer<<32|id)
			orderSchema.PutInt64(o, 2, int64(sku))
			orderSchema.PutInt64(o, 3, qty)
			orderSchema.PutInt64(o, 4, price*qty)
			return tx.Insert(orders, id, o)
		})
	}

	for i := 0; i < 500; i++ {
		customer := uint64(i%7 + 1)
		sku := uint64(i%100 + 1)
		if err := placeOrder(i%2, customer, sku, int64(i%3+1)); err != nil &&
			err != falcon.ErrRollback {
			log.Fatal(err)
		}
	}

	// Analytics on a consistent snapshot: revenue by scanning all orders
	// (btree range scan), and one customer's order history via the
	// secondary index.
	var revenue int64
	var orderCount int
	if err := db.RunRO(0, func(tx *falcon.Txn) error {
		revenue, orderCount = 0, 0
		_, err := tx.Scan(orders, 0, 0, func(key uint64, payload []byte) bool {
			revenue += orderSchema.GetInt64(payload, 4)
			orderCount++
			return true
		})
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders placed: %d, revenue: $%d.%02d\n", orderCount, revenue/100, revenue%100)

	customer := uint64(3)
	var custOrders int
	if err := db.RunRO(1, func(tx *falcon.Txn) error {
		custOrders = 0
		_, err := tx.ScanSecondary(orders, customer<<32, 0, func(secKey uint64, payload []byte) bool {
			if secKey>>32 != customer {
				return false
			}
			custOrders++
			return true
		})
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer %d has %d orders\n", customer, custOrders)

	// Survive a crash.
	db2, rep, err := falcon.Recover(db.Crash(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	var after int
	if err := db2.RunRO(0, func(tx *falcon.Txn) error {
		after = 0
		_, err := tx.Scan(db2.Table("orders"), 0, 0, func(uint64, []byte) bool {
			after++
			return true
		})
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery (%.3f virtual ms): %d orders intact\n",
		float64(rep.TotalNanos)/1e6, after)
	if after != orderCount {
		log.Fatalf("lost orders: %d != %d", after, orderCount)
	}
}

func le(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
	return b
}
