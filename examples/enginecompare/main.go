// Enginecompare: run the same read-modify-write workload against the
// paper's engine designs and compare their virtual-time behaviour and NVM
// traffic — a miniature of the paper's evaluation, driven entirely through
// the public API.
package main

import (
	"fmt"
	"log"
	"sync"

	"falcon"
)

const (
	workers = 4
	keys    = 5_000
	txns    = 1_500 // per worker
)

func main() {
	fmt.Printf("%-24s %14s %14s %12s %10s\n",
		"engine", "virtual time", "media writes", "media reads", "write amp")
	for _, cfg := range []falcon.Config{
		falcon.FalconConfig(),
		falcon.FalconNoFlushConfig(),
		falcon.FalconAllFlushConfig(),
		falcon.InpConfig(),
		falcon.OutpConfig(),
		falcon.ZenSConfig(),
	} {
		run(cfg)
	}
}

func run(cfg falcon.Config) {
	schema := falcon.NewSchema(
		falcon.Column{Name: "k", Kind: falcon.Uint64},
		falcon.Column{Name: "payload", Kind: falcon.Bytes, Size: 248},
	)
	cfg.Threads = workers
	db, err := falcon.Open(falcon.Options{
		Config: cfg,
		Tables: []falcon.TableSpec{{
			Name: "data", Schema: schema, Capacity: keys * 2, IndexKind: falcon.Hash,
		}},
		Mem: falcon.MemConfig{DeviceBytes: 512 << 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl := db.Table("data")
	payload := make([]byte, schema.TupleSize())
	for k := uint64(0); k < keys; k++ {
		schema.PutUint64(payload, 0, k)
		if err := db.Run(int(k)%workers, func(tx *falcon.Txn) error {
			return tx.Insert(tbl, k, payload)
		}); err != nil {
			log.Fatal(err)
		}
	}
	db.ResetClocks()
	before := db.System().Dev.Stats().Snapshot()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w)*0x9E3779B97F4A7C15 + 1
			val := make([]byte, 248)
			for i := 0; i < txns; i++ {
				state ^= state >> 12
				state ^= state << 25
				state ^= state >> 27
				k := state * 2685821657736338717 % keys
				val[0] = byte(i)
				if err := db.Run(w, func(tx *falcon.Txn) error {
					return tx.UpdateField(tbl, k, 1, val)
				}); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	var maxNanos uint64
	for _, c := range db.Clocks() {
		if c.Nanos() > maxNanos {
			maxNanos = c.Nanos()
		}
	}
	d := db.System().Dev.Stats().Snapshot().Sub(before)
	fmt.Printf("%-24s %11.3f ms %14d %12d %10.2f\n",
		cfg.Name, float64(maxNanos)/1e6, d.MediaWrites, d.MediaReads, d.WriteAmplification())
}
