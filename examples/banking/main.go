// Banking: concurrent transfers between accounts under different
// concurrency-control algorithms, with a crash in the middle of the run.
// The invariant — total money is conserved — must hold before the crash and
// after recovery, for every algorithm.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"falcon"
)

const (
	accounts  = 64
	initial   = 1_000
	workers   = 4
	transfers = 400 // per worker
)

func main() {
	for _, algo := range []falcon.Config{
		withCC(falcon.TwoPL), withCC(falcon.TO), withCC(falcon.OCC), withCC(falcon.MVOCC),
	} {
		run(algo)
	}
}

func withCC(algo falcon.CCAlgo) falcon.Config {
	cfg := falcon.FalconConfig()
	cfg.Threads = workers
	cfg.CC = algo
	return cfg
}

func run(cfg falcon.Config) {
	schema := falcon.NewSchema(
		falcon.Column{Name: "id", Kind: falcon.Uint64},
		falcon.Column{Name: "balance", Kind: falcon.Int64},
	)
	db, err := falcon.Open(falcon.Options{
		Config: cfg,
		Tables: []falcon.TableSpec{{
			Name: "accounts", Schema: schema, Capacity: accounts * 2, IndexKind: falcon.Hash,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl := db.Table("accounts")

	payload := make([]byte, schema.TupleSize())
	for id := uint64(0); id < accounts; id++ {
		schema.PutUint64(payload, 0, id)
		schema.PutInt64(payload, 1, initial)
		// Spread inserts across workers: tuple slots are allocated from
		// per-thread ranges (the paper's NUMA-aware page ownership).
		if err := db.Run(int(id)%workers, func(tx *falcon.Txn) error {
			return tx.Insert(tbl, id, payload)
		}); err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			buf := make([]byte, schema.TupleSize())
			for i := 0; i < transfers; i++ {
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				amount := int64(rng.Intn(100))
				err := db.Run(w, func(tx *falcon.Txn) error {
					if err := tx.ReadForUpdate(tbl, from, buf); err != nil {
						return err
					}
					fb := schema.GetInt64(buf, 1)
					if fb < amount {
						return falcon.ErrRollback // insufficient funds
					}
					if err := tx.ReadForUpdate(tbl, to, buf); err != nil {
						return err
					}
					tb := schema.GetInt64(buf, 1)
					if err := tx.UpdateField(tbl, from, 1, i64(fb-amount)); err != nil {
						return err
					}
					return tx.UpdateField(tbl, to, 1, i64(tb+amount))
				})
				if err != nil && !errors.Is(err, falcon.ErrRollback) {
					log.Fatalf("%s transfer: %v", cfg.CC, err)
				}
			}
		}(w)
	}
	wg.Wait()

	before := total(db, schema)
	db2, _, err := falcon.Recover(db.Crash(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	after := total(db2, schema)

	status := "OK"
	if before != accounts*initial || after != accounts*initial {
		status = "VIOLATED"
	}
	fmt.Printf("%-6s total before crash: %6d  after recovery: %6d  invariant %s (commits=%d aborts=%d)\n",
		cfg.CC, before, after, status, db.Commits(), db.Aborts())
}

func total(db *falcon.DB, schema *falcon.Schema) int64 {
	tbl := db.Table("accounts")
	buf := make([]byte, schema.TupleSize())
	var sum int64
	for id := uint64(0); id < accounts; id++ {
		if err := db.RunRO(0, func(tx *falcon.Txn) error {
			return tx.Read(tbl, id, buf)
		}); err != nil {
			log.Fatal(err)
		}
		sum += schema.GetInt64(buf, 1)
	}
	return sum
}

func i64(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
	return b
}
